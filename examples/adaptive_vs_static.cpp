// Adaptive vs static: the paper's thesis in one table. Runs the adaptive BB
// and the classic (non-adaptive) Dolev-Strong BB over the same crash
// workloads and prints who pays what as the actual failure count varies —
// "make every word count" means paying for f, not for t.
#include <cstdio>
#include <vector>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"

int main() {
  using namespace mewc;

  constexpr std::uint32_t kT = 10;  // n = 21
  auto spec = harness::RunSpec::for_t(kT);
  const ProcessId sender = spec.n - 1;

  std::printf("adaptive BB (paper) vs Dolev-Strong BB (classic), n = %u\n\n",
              spec.n);
  std::printf("%4s | %14s | %16s | %7s\n", "f", "adaptive words",
              "Dolev-Strong wds", "factor");
  std::printf("-----+----------------+------------------+--------\n");

  bool all_valid = true;
  for (std::uint32_t f = 0; f <= spec.n - commit_quorum(spec.n, spec.t);
       ++f) {
    std::vector<ProcessId> victims;
    for (std::uint32_t i = 0; i < f; ++i) victims.push_back(i);

    adv::CrashAdversary a1(victims), a2(victims);
    const auto adaptive = harness::run_bb(spec, sender, Value(9), a1);
    const auto classic = harness::run_ds_bb(spec, sender, Value(9), a2);

    all_valid &= adaptive.agreement() && adaptive.decision() == Value(9);
    all_valid &= classic.agreement() && classic.decision() == Value(9);

    std::printf("%4u | %14llu | %16llu | %6.1fx\n", f,
                static_cast<unsigned long long>(adaptive.meter.words_correct),
                static_cast<unsigned long long>(classic.meter.words_correct),
                static_cast<double>(classic.meter.words_correct) /
                    static_cast<double>(adaptive.meter.words_correct));
  }

  std::printf(
      "\nThe classic protocol pays its worst case in every run; the\n"
      "adaptive protocol's bill grows with the failures that actually\n"
      "happened (O(n(f+1))), which is what the paper's title promises.\n");
  std::printf("all runs decided the sender's value: %s\n",
              all_valid ? "yes" : "NO");
  return all_valid ? 0 : 1;
}
