// Quickstart: broadcast one value through the adaptive Byzantine Broadcast
// (Algorithms 1 + 2) and inspect the outcome.
//
//   $ ./quickstart
//
// Walks through the full public API surface: trusted setup, protocol run
// via the harness, and the metered communication cost.
#include <cstdio>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"

int main() {
  using namespace mewc;

  // A system of n = 2t + 1 = 7 processes tolerating t = 3 Byzantine ones.
  auto spec = harness::RunSpec::for_t(3);
  std::printf("system: n = %u processes, t = %u tolerated faults\n", spec.n,
              spec.t);

  // Process 2 broadcasts the value 1234. No process actually misbehaves in
  // this run (try the other examples for Byzantine senders).
  adv::NullAdversary nobody_misbehaves;
  const harness::BbResult res =
      harness::run_bb(spec, /*sender=*/2, Value(1234), nobody_misbehaves);

  // Every correct process decided the sender's value.
  for (ProcessId p = 0; p < spec.n; ++p) {
    if (!res.stats[p]) continue;
    std::printf("process %u decided %llu\n", p,
                static_cast<unsigned long long>(res.stats[p]->decision.raw));
  }

  std::printf("\nagreement: %s, decision = %llu\n",
              res.agreement() ? "yes" : "NO",
              static_cast<unsigned long long>(res.decision().raw));
  std::printf("words sent by correct processes: %llu (%.1f per process)\n",
              static_cast<unsigned long long>(res.meter.words_correct),
              static_cast<double>(res.meter.words_correct) / spec.n);
  std::printf("fallback executed: %s (failure-free runs never fall back)\n",
              res.any_fallback() ? "yes" : "no");
  std::printf("rounds: %u\n", res.rounds);
  return res.agreement() ? 0 : 1;
}
