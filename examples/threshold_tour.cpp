// Threshold-cryptography tour: the substrate that makes "every word count".
//
// The paper's whole design space opens up because k signatures compress
// into one constant-size certificate (Section 2), and closes around one
// observation: at n = 2t+1 the familiar n-t certificate loses its
// intersection property, and ceil((n+t+1)/2) restores it (Section 6). This
// example walks both facts with the library's real Shamir/Lagrange backend.
#include <cstdio>
#include <vector>

#include "crypto/family.hpp"
#include "crypto/multisig.hpp"

int main() {
  using namespace mewc;

  constexpr std::uint32_t kT = 3;
  constexpr std::uint32_t kN = n_for_t(kT);  // 7

  // Trusted setup with the real Shamir backend: per-process keys plus
  // shares for the three thresholds the protocols use.
  ThresholdFamily family(kN, kT, ThresholdBackend::kShamir);
  std::vector<KeyBundle> bundles;
  for (ProcessId p = 0; p < kN; ++p) bundles.push_back(family.issue_bundle(p));

  std::printf("system: n = %u, t = %u\n\n", kN, kT);

  // 1. Individual signatures.
  const Digest d = DigestBuilder("tour.message").field(Value(42)).done();
  const Signature sig = bundles[2].signer().sign(d);
  std::printf("1. individual signature by p2: verifies = %s\n",
              family.pki().verify(sig) ? "yes" : "no");
  Signature forged = sig;
  forged.signer = 3;
  std::printf("   re-attributed to p3:        verifies = %s\n",
              family.pki().verify(forged) ? "yes" : "no");

  // 2. Multisignature aggregation (the Dolev-Strong chains): any set of
  //    signatures on one digest folds into a single tag.
  AggSignature agg =
      aggregate_start(family.pki(), bundles[0].signer().sign(d));
  for (ProcessId p = 1; p < kN; ++p) {
    aggregate_add(family.pki(), agg, bundles[p].signer().sign(d));
  }
  std::printf("\n2. aggregate of %u signatures: %zu words on the wire, "
              "verifies = %s\n",
              agg.signers.count(), agg.words(),
              aggregate_verify(family.pki(), agg) ? "yes" : "no");

  // 3. Threshold certificates: t+1 partial signatures -> one word.
  const std::uint32_t k = kT + 1;
  std::vector<PartialSig> partials;
  for (ProcessId p = 0; p < k; ++p) {
    partials.push_back(bundles[p].share(k).partial_sign(d));
  }
  const auto cert = family.scheme(k).combine(partials);
  std::printf("\n3. (%u,%u)-threshold certificate: %zu word(s), verifies = "
              "%s\n",
              k, kN, cert->words(),
              family.scheme(k).verify(*cert) ? "yes" : "no");

  // Lagrange magic: ANY k shares give the SAME certificate.
  std::vector<PartialSig> other;
  for (ProcessId p = kN - k; p < kN; ++p) {
    other.push_back(bundles[p].share(k).partial_sign(d));
  }
  const auto cert2 = family.scheme(k).combine(other);
  std::printf("   a disjoint share subset reconstructs the same tag: %s\n",
              cert->tag == cert2->tag ? "yes" : "no");

  // 4. The Section 6 quorum observation, demonstrated with real shares.
  //    With f = t corrupted shares signing both of two conflicting values,
  //    can the adversary assemble two certificates?
  auto try_conflicting = [&](std::uint32_t quorum) {
    SimThreshold scheme(quorum, kN, 0x70ab);
    const Digest dv = DigestBuilder("tour.conflict").field(1).done();
    const Digest dw = DigestBuilder("tour.conflict").field(2).done();
    std::vector<PartialSig> a, b;
    for (ProcessId p = 0; p < kT; ++p) {  // corrupted: sign both
      a.push_back(scheme.issue_share(p).partial_sign(dv));
      b.push_back(scheme.issue_share(p).partial_sign(dw));
    }
    ProcessId next = kT;  // correct processes vote once, split
    while (a.size() < quorum && next < kN) {
      a.push_back(scheme.issue_share(next++).partial_sign(dv));
    }
    while (b.size() < quorum && next < kN) {
      b.push_back(scheme.issue_share(next++).partial_sign(dw));
    }
    return scheme.combine(a).has_value() && scheme.combine(b).has_value();
  };
  std::printf("\n4. conflicting certificates with f = t corrupted shares:\n");
  std::printf("   quorum n-t = %u:            forged = %s  (unsafe!)\n",
              kN - kT, try_conflicting(kN - kT) ? "yes" : "no");
  std::printf("   quorum ceil((n+t+1)/2) = %u: forged = %s  (the paper's "
              "choice)\n",
              commit_quorum(kN, kT),
              try_conflicting(commit_quorum(kN, kT)) ? "yes" : "no");

  std::printf("\nEvery certificate above costs one word — that is what lets\n"
              "the protocols spend O(n(f+1)) words while still moving the\n"
              "Ω(nt) signatures Dolev-Reischuk proved unavoidable.\n");
  return 0;
}
