// BFT ledger: a replicated append-only log built on the smr::Ledger module
// — each slot is one adaptive Byzantine Broadcast with a rotating proposer,
// and every few committed entries a checkpoint is sealed with the binary
// strong BA of Algorithm 5. This is the workload the paper's introduction
// motivates: most slots are failure-free, and adaptivity makes those slots
// cost O(n) rather than the worst case.
//
// One replica is Byzantine: as a proposer it equivocates; its slot must
// still land identically everywhere (a common value, or the agreed ⊥
// "slot skipped" marker).
#include <cstdio>
#include <string>

#include "ba/adversaries/adversaries.hpp"
#include "smr/ledger.hpp"

int main() {
  using namespace mewc;

  smr::Ledger::Config config;
  config.t = 2;
  config.n = n_for_t(config.t);         // 5 replicas
  config.checkpoint_every = 3;           // seal every 3 committed entries

  constexpr ProcessId kByzantine = 3;
  constexpr std::uint32_t kSlots = 8;

  std::printf("replicated ledger: n = %u replicas, %u slots, replica %u is "
              "Byzantine, checkpoints every %u entries\n\n",
              config.n, kSlots, kByzantine, config.checkpoint_every);

  smr::Ledger ledger(config);

  // The Byzantine replica equivocates whenever the rotation makes it the
  // proposer; everyone else is honest.
  smr::Ledger::AdversaryFactory adversary =
      [&](std::uint64_t slot, ProcessId proposer) -> std::unique_ptr<Adversary> {
    if (proposer == kByzantine) {
      const std::uint64_t instance = config.base_instance + 2 * slot;
      const Value a{10 * (slot + 1)};
      const Value b{10 * (slot + 1) + 1};
      return std::make_unique<adv::BbEquivocatingSender>(
          proposer, instance, adv::SenderMode::kEquivocate, a, b);
    }
    return nullptr;
  };

  for (std::uint64_t slot = 0; slot < kSlots; ++slot) {
    const auto& rec = ledger.append(Value(10 * (slot + 1)), adversary);
    std::printf("slot %llu (proposer %u%s): %-7s %5llu words%s\n",
                static_cast<unsigned long long>(rec.slot), rec.proposer,
                rec.proposer == kByzantine ? ", Byzantine" : "",
                rec.skipped ? "<skip>"
                            : std::to_string(rec.value.raw).c_str(),
                static_cast<unsigned long long>(rec.words),
                rec.fallback ? " (fallback!)" : "");
  }

  std::printf("\ncheckpoints sealed: %zu\n", ledger.checkpoints().size());
  for (const auto& cp : ledger.checkpoints()) {
    std::printf("  after slot %llu: digest %016llx, %s, %llu words\n",
                static_cast<unsigned long long>(cp.after_slot),
                static_cast<unsigned long long>(cp.ledger_digest),
                cp.accepted ? "accepted" : "REJECTED",
                static_cast<unsigned long long>(cp.words));
  }

  const auto committed = ledger.committed();
  std::printf("\ncommitted entries: [");
  for (std::size_t i = 0; i < committed.size(); ++i) {
    std::printf("%s%llu", i ? ", " : "",
                static_cast<unsigned long long>(committed[i].raw));
  }
  std::printf("]\nledger digest: %016llx\n",
              static_cast<unsigned long long>(ledger.ledger_digest()));
  std::printf("healthy: %s — total %llu words (%.1f per slot per replica)\n",
              ledger.healthy() ? "yes" : "NO",
              static_cast<unsigned long long>(ledger.total_words()),
              static_cast<double>(ledger.total_words()) / kSlots / config.n);
  return ledger.healthy() ? 0 : 1;
}
