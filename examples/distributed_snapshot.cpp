// Distributed snapshot via interactive consistency: every node proposes
// its local reading (say, a sensor value or an account balance), and the
// system agrees on ONE consistent vector of all readings — Byzantine nodes
// cannot make two auditors see different snapshots, and crashed nodes show
// up as agreed-upon gaps rather than divergent guesses.
//
// Built from n parallel adaptive-BB lanes (src/ba/vector): the paper's BB
// doing component duty, with the adaptive cost profile carrying over —
// a failure-free snapshot costs Θ(n) per lane.
#include <cstdio>
#include <string>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"

int main() {
  using namespace mewc;

  auto spec = harness::RunSpec::for_t(2);  // 5 nodes
  std::printf("distributed snapshot: n = %u nodes, tolerating t = %u\n\n",
              spec.n, spec.t);

  // Local readings; node 3 is down.
  std::vector<Value> readings = {Value(210), Value(195), Value(230),
                                 Value(999) /*never heard*/, Value(204)};
  adv::CrashAdversary node3_down({3});

  const harness::IcResult res = harness::run_ic(spec, readings, node3_down);

  std::printf("agreement on the snapshot vector: %s\n",
              res.agreement() ? "yes" : "NO");
  const auto snapshot = res.vector();
  std::printf("\nsnapshot:\n");
  for (ProcessId node = 0; node < spec.n; ++node) {
    if (snapshot[node].is_bottom()) {
      std::printf("  node %u: <no reading — agreed unreachable>\n", node);
    } else {
      std::printf("  node %u: %llu\n", node,
                  static_cast<unsigned long long>(snapshot[node].raw));
    }
  }

  std::uint64_t sum = 0;
  std::uint32_t present = 0;
  for (const Value& v : snapshot) {
    if (!v.is_bottom()) {
      sum += v.raw;
      ++present;
    }
  }
  std::printf("\naggregate over the agreed snapshot: mean = %.1f over %u "
              "readings\n",
              static_cast<double>(sum) / present, present);
  std::printf("cost: %llu words total (%.1f per node)\n",
              static_cast<unsigned long long>(res.meter.words_correct),
              static_cast<double>(res.meter.words_correct) / spec.n);
  std::printf("\nEvery auditor that asks any correct node gets THIS vector —\n"
              "including the agreement that node 3 was down.\n");
  return res.agreement() ? 0 : 1;
}
