// Auditable committee voting: weak BA with the paper's Section 3 example
// predicate — a value is valid only with t+1 signed attestations that it
// was a committee member's actual input. Unique validity then behaves like
// strong unanimity on the attested ballots: the adversary cannot fabricate
// a ballot that was never cast, and ⊥ can only appear when the committee
// was genuinely split.
#include <cstdio>
#include <vector>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"

namespace {

using namespace mewc;

/// Collects t+1 attestations for `ballot` from distinct committee members
/// and wraps it as a certified wire value. (In a deployment this happens in
/// a gossip round; here the trusted setup mints it directly.)
WireValue attest(const ThresholdFamily& fam, std::uint64_t instance,
                 Value ballot, ProcessId first_attester) {
  std::vector<PartialSig> ps;
  for (ProcessId i = 0; i < fam.t() + 1; ++i) {
    const ProcessId member = (first_attester + i) % fam.n();
    ps.push_back(fam.scheme(fam.t() + 1)
                     .issue_share(member)
                     .partial_sign(input_attestation_digest(instance, ballot)));
  }
  auto qc = fam.scheme(fam.t() + 1).combine(ps);
  return WireValue::certified(ballot, *qc);
}

int run_round(const char* title, std::uint32_t f_crash, bool split_ballots) {
  auto spec = harness::RunSpec::for_t(3);  // 7-member committee
  std::printf("\n== %s ==\n", title);

  ThresholdFamily mint(spec.n, spec.t, spec.backend, spec.seed);
  std::vector<WireValue> ballots;
  for (ProcessId p = 0; p < spec.n; ++p) {
    const Value choice = split_ballots ? Value(p % 2) : Value(1);
    // A ballot is only proposable once t+1 members attest it was cast.
    ballots.push_back(attest(mint, spec.instance, choice, p));
  }

  harness::PredicateFactory factory = [](const ThresholdFamily& fam,
                                         std::uint64_t instance) {
    return std::make_shared<const InputCertified>(fam, instance);
  };

  std::vector<ProcessId> victims;
  for (std::uint32_t i = 0; i < f_crash; ++i) victims.push_back(i);
  adv::CrashAdversary adversary(victims);

  const auto res = harness::run_weak_ba(spec, ballots, factory, adversary);
  const WireValue outcome = res.decision();

  std::printf("crashed members: %u, agreement: %s\n", res.f(),
              res.agreement() ? "yes" : "NO");
  if (outcome.is_bottom()) {
    std::printf("outcome: no single auditable ballot (⊥) — committee split\n");
  } else {
    std::printf("outcome: ballot %llu, carried by a %u-of-%u attestation "
                "certificate (auditable)\n",
                static_cast<unsigned long long>(outcome.value.raw),
                spec.t + 1, spec.n);
  }
  std::printf("words: %llu, fallback: %s\n",
              static_cast<unsigned long long>(res.meter.words_correct),
              res.any_fallback() ? "yes" : "no");
  return res.agreement() ? 0 : 1;
}

}  // namespace

int main() {
  std::printf("auditable committee voting over weak BA (unique validity,\n"
              "Section 3 example predicate: t+1 input attestations)\n");

  int rc = 0;
  // Unanimous committee, no failures: the ballot must win, cheaply.
  rc |= run_round("unanimous ballots, f = 0", 0, false);
  // Unanimous committee, maximal crash: unique validity still forbids ⊥ —
  // the adversary cannot attest a ballot nobody cast.
  rc |= run_round("unanimous ballots, f = t crash", 3, false);
  // Split committee under crash: ⊥ (\"no auditable outcome\") is allowed,
  // but agreement must hold either way.
  rc |= run_round("split ballots, f = t crash", 3, true);
  return rc;
}
