// Wire-codec totality fuzzing: one exemplar of EVERY wire type, then
// systematic corruption — truncation at every prefix, a bit flip at every
// bit position, byte-value corruption (which hits every length field), and
// random bodies behind each valid tag. The decoder's contract is total:
// every input either parses into a well-formed payload or returns nullptr;
// it never crashes, never reads out of bounds, and anything it does accept
// must re-encode and re-parse identically (no half-valid states escape).
#include "wire/codec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ba/bb/bb.hpp"
#include "ba/fallback/dolev_strong.hpp"
#include "ba/strong_ba/strong_ba.hpp"
#include "ba/vector/interactive_consistency.hpp"
#include "ba/weak_ba/messages.hpp"
#include "common/rng.hpp"
#include "crypto/multisig.hpp"

namespace mewc {
namespace {

/// One encoded exemplar per wire type, carrying maximal optional content
/// (certificates, decisions, nested messages) so every field parser is on
/// the corruption path.
class CodecFuzzTest : public ::testing::Test {
 protected:
  CodecFuzzTest() : family_(5, 2) {
    for (ProcessId p = 0; p < 5; ++p) {
      bundles_.push_back(family_.issue_bundle(p));
    }
  }

  Signature sig(ProcessId p = 1) {
    return bundles_[p].signer().sign(DigestBuilder("z").field(1).done());
  }
  PartialSig partial(ProcessId p = 1, std::uint32_t k = 3) {
    return bundles_[p].share(k).partial_sign(DigestBuilder("z").field(2).done());
  }
  ThresholdSig threshold() {
    std::vector<PartialSig> ps;
    for (ProcessId p = 0; p < 3; ++p) ps.push_back(partial(p));
    return *family_.scheme(3).combine(ps);
  }
  WireValue signed_value() { return WireValue::signed_by(Value(7), sig()); }
  WireValue certified_value() {
    return WireValue::certified(Value(8), threshold(), 3);
  }

  struct Exemplar {
    std::string kind;
    std::vector<std::uint8_t> bytes;
  };

  /// Encodings of all twenty wire types, in WireType order.
  std::vector<Exemplar> all_exemplars() {
    std::vector<Exemplar> out;
    const auto add = [&](const Payload& p) {
      const auto bytes = wire::encode(p);
      EXPECT_TRUE(bytes.has_value()) << p.kind();
      out.push_back({p.kind(), *bytes});
    };

    wba::ProposeMsg propose;
    propose.phase = 3;
    propose.value = signed_value();
    add(propose);

    wba::VoteMsg vote;
    vote.phase = 2;
    vote.partial = partial();
    add(vote);

    wba::CommitMsg commit;
    commit.phase = 4;
    commit.value = certified_value();
    commit.level = 2;
    commit.qc = threshold();
    add(commit);

    wba::DecideMsg decide;
    decide.phase = 1;
    decide.partial = partial(2);
    add(decide);

    wba::FinalizedMsg finalized;
    finalized.phase = 1;
    finalized.value = certified_value();
    finalized.qc = threshold();
    add(finalized);

    wba::HelpReqMsg help_req;
    help_req.partial = partial(3);
    add(help_req);

    wba::HelpMsg help;
    help.value = signed_value();
    help.proof_phase = 7;
    help.decide_proof = threshold();
    add(help);

    wba::FallbackMsg fallback;
    fallback.fallback_qc = threshold();
    fallback.has_decision = true;
    fallback.value = certified_value();
    fallback.proof_phase = 2;
    fallback.decide_proof = threshold();
    add(fallback);

    bb::SenderValueMsg sender_value;
    sender_value.value = signed_value();
    add(sender_value);

    bb::HelpReqMsg bb_help_req;
    bb_help_req.phase = 9;
    add(bb_help_req);

    bb::ReplyValueMsg reply_value;
    reply_value.phase = 2;
    reply_value.value = certified_value();
    add(reply_value);

    bb::IdkMsg idk;
    idk.phase = 3;
    idk.partial = partial();
    add(idk);

    bb::LeaderValueMsg leader_value;
    leader_value.phase = 4;
    leader_value.value = certified_value();
    add(leader_value);

    sba::InputMsg input;
    input.value = Value(1);
    input.partial = partial();
    add(input);

    sba::ProposeCertMsg propose_cert;
    propose_cert.value = Value(0);
    propose_cert.qc = threshold();
    add(propose_cert);

    sba::DecideVoteMsg decide_vote;
    decide_vote.value = Value(1);
    decide_vote.partial = partial(4);
    add(decide_vote);

    sba::DecideCertMsg decide_cert;
    decide_cert.value = Value(1);
    decide_cert.qc = threshold();
    add(decide_cert);

    sba::FallbackMsg sba_fallback;
    sba_fallback.has_decision = true;
    sba_fallback.value = Value(0);
    sba_fallback.proof = threshold();
    add(sba_fallback);

    fallback::DsRelayMsg relay;
    relay.instance = 2;
    relay.value = WireValue::plain(Value(5));
    relay.chain = aggregate_start(family_.pki(), sig(2));
    aggregate_add(family_.pki(), relay.chain, sig(3));
    add(relay);

    auto inner = std::make_shared<bb::ReplyValueMsg>();
    inner->phase = 3;
    inner->value = signed_value();
    ic::MuxMsg mux;
    mux.lane = 4;
    mux.inner = inner;
    add(mux);

    EXPECT_EQ(out.size(), 20u);  // one per WireType
    return out;
  }

  /// The decoder may reject a corrupted buffer, but whatever it accepts
  /// must be a fully-formed payload: re-encodable, and byte-identical
  /// through a second round-trip (parse-repair states are forbidden).
  void expect_total(std::span<const std::uint8_t> bytes,
                    const std::string& context) {
    const PayloadPtr parsed = wire::decode(bytes);
    if (parsed == nullptr) return;
    const auto reencoded = wire::encode(*parsed);
    ASSERT_TRUE(reencoded.has_value()) << context;
    const PayloadPtr reparsed = wire::decode(*reencoded);
    ASSERT_NE(reparsed, nullptr) << context;
    EXPECT_EQ(wire::encode(*reparsed), reencoded) << context;
  }

  ThresholdFamily family_;
  std::vector<KeyBundle> bundles_;
};

TEST_F(CodecFuzzTest, EveryKindRoundTripsCanonically) {
  // encode -> decode -> encode is the identity on bytes for every kind:
  // canonical encodings are unique, so corruption tests below can compare
  // re-encodings byte-for-byte.
  for (const auto& ex : all_exemplars()) {
    const PayloadPtr parsed = wire::decode(ex.bytes);
    ASSERT_NE(parsed, nullptr) << ex.kind;
    EXPECT_EQ(parsed->kind(), ex.kind);
    const auto reencoded = wire::encode(*parsed);
    ASSERT_TRUE(reencoded.has_value()) << ex.kind;
    EXPECT_EQ(*reencoded, ex.bytes) << ex.kind;
  }
}

TEST_F(CodecFuzzTest, TruncationAtEveryPrefixOfEveryKindIsRejected) {
  for (const auto& ex : all_exemplars()) {
    for (std::size_t len = 0; len < ex.bytes.size(); ++len) {
      EXPECT_EQ(wire::decode(std::span(ex.bytes.data(), len)), nullptr)
          << ex.kind << " prefix " << len << "/" << ex.bytes.size();
    }
  }
}

TEST_F(CodecFuzzTest, SingleBitFlipAtEveryPositionOfEveryKindIsTotal) {
  // Exhaustive, not sampled: every bit of every exemplar. A flip may land
  // in a value field (still parses, new value) or a structural field
  // (rejected); either way the decoder stays total and consistent.
  for (const auto& ex : all_exemplars()) {
    for (std::size_t byte = 0; byte < ex.bytes.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        auto mutated = ex.bytes;
        mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
        expect_total(mutated, ex.kind + " bit " + std::to_string(byte * 8 + bit));
      }
    }
  }
}

TEST_F(CodecFuzzTest, ByteValueCorruptionCoversEveryLengthField) {
  // Overwrite each byte with the adversarial extremes 0x00 / 0xff / 0x01.
  // Length prefixes (signer sets, partial lists, nested payload sizes) all
  // live in some byte, so this drives every container parser through
  // zero-length, absurd-length, and off-by-everything counts.
  for (const auto& ex : all_exemplars()) {
    for (std::size_t byte = 0; byte < ex.bytes.size(); ++byte) {
      for (const std::uint8_t forced : {0x00, 0xff, 0x01}) {
        if (ex.bytes[byte] == forced) continue;
        auto mutated = ex.bytes;
        mutated[byte] = forced;
        expect_total(mutated, ex.kind + " byte " + std::to_string(byte) +
                                  "=" + std::to_string(forced));
      }
    }
  }
}

TEST_F(CodecFuzzTest, RandomBodiesBehindEveryValidTagAreTotal) {
  // Random soup rarely survives the tag check; forcing each valid tag puts
  // every per-kind body parser on the fuzzing path.
  Rng rng(0xfa22);
  for (std::uint8_t tag = 1; tag <= 20; ++tag) {
    for (int i = 0; i < 400; ++i) {
      std::vector<std::uint8_t> bytes(1 + rng.below(160));
      bytes[0] = tag;
      for (std::size_t j = 1; j < bytes.size(); ++j) {
        bytes[j] = static_cast<std::uint8_t>(rng.below(256));
      }
      expect_total(bytes, "tag " + std::to_string(tag));
    }
  }
}

TEST_F(CodecFuzzTest, SplicedMessagePairsAreTotal) {
  // Head of one kind grafted onto the tail of another: exercises parsers
  // that run out of, or into surplus, structured bytes mid-message.
  const auto exemplars = all_exemplars();
  Rng rng(0x511ce);
  for (int i = 0; i < 2000; ++i) {
    const auto& a = exemplars[rng.below(exemplars.size())].bytes;
    const auto& b = exemplars[rng.below(exemplars.size())].bytes;
    const std::size_t cut_a = rng.below(a.size() + 1);
    const std::size_t cut_b = rng.below(b.size() + 1);
    std::vector<std::uint8_t> spliced(a.begin(), a.begin() + cut_a);
    spliced.insert(spliced.end(), b.begin() + cut_b, b.end());
    expect_total(spliced, "splice " + std::to_string(i));
  }
}

}  // namespace
}  // namespace mewc
