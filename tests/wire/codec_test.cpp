// Wire codec: byte-level round-trips for every protocol message, total
// decoding on malformed inputs, and full protocol runs with the network
// re-encoding and re-parsing every message.
#include "wire/codec.hpp"

#include <gtest/gtest.h>

#include "ba/adversaries/adversaries.hpp"
#include "ba/adversaries/fuzzer.hpp"
#include "ba/bb/bb.hpp"
#include "ba/fallback/dolev_strong.hpp"
#include "ba/harness.hpp"
#include "ba/strong_ba/strong_ba.hpp"
#include "ba/vector/interactive_consistency.hpp"
#include "ba/weak_ba/messages.hpp"
#include "common/rng.hpp"
#include "crypto/multisig.hpp"

namespace mewc {
namespace {

class CodecTest : public ::testing::Test {
 protected:
  CodecTest() : family_(5, 2) {
    for (ProcessId p = 0; p < 5; ++p) {
      bundles_.push_back(family_.issue_bundle(p));
    }
  }

  Signature sig(ProcessId p = 1) {
    return bundles_[p].signer().sign(DigestBuilder("c").field(1).done());
  }
  PartialSig partial(ProcessId p = 1, std::uint32_t k = 3) {
    return bundles_[p].share(k).partial_sign(DigestBuilder("c").field(2).done());
  }
  ThresholdSig threshold() {
    std::vector<PartialSig> ps;
    for (ProcessId p = 0; p < 3; ++p) ps.push_back(partial(p));
    return *family_.scheme(3).combine(ps);
  }
  WireValue signed_value() { return WireValue::signed_by(Value(7), sig()); }
  WireValue certified_value() {
    return WireValue::certified(Value(8), threshold(), 3);
  }

  /// Encode, decode, and return the parsed payload (checked non-null).
  template <typename T>
  std::shared_ptr<const T> rt(const T& msg) {
    const auto bytes = wire::encode(msg);
    EXPECT_TRUE(bytes.has_value());
    PayloadPtr parsed = wire::decode(*bytes);
    EXPECT_NE(parsed, nullptr);
    auto typed = std::dynamic_pointer_cast<const T>(parsed);
    EXPECT_NE(typed, nullptr) << "decoded to a different type";
    return typed;
  }

  ThresholdFamily family_;
  std::vector<KeyBundle> bundles_;
};

TEST_F(CodecTest, WbaProposeRoundTrip) {
  wba::ProposeMsg m;
  m.phase = 3;
  m.value = signed_value();
  auto out = rt(m);
  EXPECT_EQ(out->phase, 3u);
  EXPECT_EQ(out->value, m.value);
  EXPECT_EQ(out->words(), m.words());
  EXPECT_EQ(out->logical_signatures(), m.logical_signatures());
}

TEST_F(CodecTest, WbaVoteRoundTrip) {
  wba::VoteMsg m;
  m.phase = 2;
  m.partial = partial();
  auto out = rt(m);
  EXPECT_EQ(out->partial.signer, m.partial.signer);
  EXPECT_EQ(out->partial.tag, m.partial.tag);
  EXPECT_EQ(out->partial.k, m.partial.k);
  EXPECT_TRUE(family_.scheme(3).verify_partial(out->partial));
}

TEST_F(CodecTest, WbaCommitRoundTrip) {
  wba::CommitMsg m;
  m.phase = 4;
  m.value = certified_value();
  m.level = 2;
  m.qc = threshold();
  auto out = rt(m);
  EXPECT_EQ(out->level, 2u);
  EXPECT_EQ(out->value, m.value);
  EXPECT_EQ(out->qc, m.qc);
}

TEST_F(CodecTest, WbaFinalizedAndDecideRoundTrip) {
  wba::FinalizedMsg f;
  f.phase = 1;
  f.value = WireValue::plain(Value(5));
  f.qc = threshold();
  EXPECT_EQ(rt(f)->qc, f.qc);

  wba::DecideMsg d;
  d.phase = 1;
  d.partial = partial(2);
  EXPECT_EQ(rt(d)->partial.signer, 2u);
}

TEST_F(CodecTest, WbaHelpMessagesRoundTrip) {
  wba::HelpReqMsg req;
  req.partial = partial(3);
  EXPECT_EQ(rt(req)->partial.signer, 3u);

  wba::HelpMsg help;
  help.value = signed_value();
  help.proof_phase = 7;
  help.decide_proof = threshold();
  auto out = rt(help);
  EXPECT_EQ(out->proof_phase, 7u);
  EXPECT_EQ(out->value, help.value);
}

TEST_F(CodecTest, WbaFallbackRoundTripBothShapes) {
  wba::FallbackMsg bare;
  bare.fallback_qc = threshold();
  bare.has_decision = false;
  auto out1 = rt(bare);
  EXPECT_FALSE(out1->has_decision);
  EXPECT_EQ(out1->fallback_qc, bare.fallback_qc);

  wba::FallbackMsg full = bare;
  full.has_decision = true;
  full.value = certified_value();
  full.proof_phase = 2;
  full.decide_proof = threshold();
  auto out2 = rt(full);
  EXPECT_TRUE(out2->has_decision);
  EXPECT_EQ(out2->value, full.value);
  EXPECT_EQ(out2->words(), full.words());
}

TEST_F(CodecTest, BbMessagesRoundTrip) {
  bb::SenderValueMsg sv;
  sv.value = signed_value();
  EXPECT_EQ(rt(sv)->value, sv.value);

  bb::HelpReqMsg hr;
  hr.phase = 9;
  EXPECT_EQ(rt(hr)->phase, 9u);

  bb::ReplyValueMsg rv;
  rv.phase = 2;
  rv.value = certified_value();
  EXPECT_EQ(rt(rv)->value, rv.value);

  bb::IdkMsg idk;
  idk.phase = 3;
  idk.partial = partial();
  EXPECT_EQ(rt(idk)->phase, 3u);

  bb::LeaderValueMsg lv;
  lv.phase = 4;
  lv.value = signed_value();
  EXPECT_EQ(rt(lv)->value, lv.value);
}

TEST_F(CodecTest, SbaMessagesRoundTrip) {
  sba::InputMsg in;
  in.value = Value(1);
  in.partial = partial();
  EXPECT_EQ(rt(in)->value, Value(1));

  sba::ProposeCertMsg pc;
  pc.value = Value(0);
  pc.qc = threshold();
  EXPECT_EQ(rt(pc)->qc, pc.qc);

  sba::DecideVoteMsg dv;
  dv.value = Value(1);
  dv.partial = partial(4);
  EXPECT_EQ(rt(dv)->partial.signer, 4u);

  sba::DecideCertMsg dc;
  dc.value = Value(1);
  dc.qc = threshold();
  EXPECT_EQ(rt(dc)->value, Value(1));

  sba::FallbackMsg fb;
  fb.has_decision = true;
  fb.value = Value(0);
  fb.proof = threshold();
  auto out = rt(fb);
  EXPECT_TRUE(out->has_decision);
  EXPECT_EQ(out->proof, fb.proof);
}

TEST_F(CodecTest, DsRelayRoundTripPreservesChainVerification) {
  fallback::DsRelayMsg m;
  m.instance = 2;
  m.value = WireValue::plain(Value(5));
  m.chain = aggregate_start(family_.pki(), sig(2));
  aggregate_add(family_.pki(), m.chain, sig(3));
  auto out = rt(m);
  EXPECT_EQ(out->instance, 2u);
  EXPECT_EQ(out->chain.signers.count(), 2u);
  EXPECT_TRUE(aggregate_verify(family_.pki(), out->chain));
}

TEST_F(CodecTest, IcMuxRoundTripNestsTheInnerMessage) {
  auto inner = std::make_shared<bb::ReplyValueMsg>();
  inner->phase = 3;
  inner->value = signed_value();
  ic::MuxMsg m;
  m.lane = 4;
  m.inner = inner;
  const auto bytes = wire::encode(m);
  ASSERT_TRUE(bytes.has_value());
  PayloadPtr parsed = wire::decode(*bytes);
  ASSERT_NE(parsed, nullptr);
  const auto* mux = payload_cast<ic::MuxMsg>(parsed);
  ASSERT_NE(mux, nullptr);
  EXPECT_EQ(mux->lane, 4u);
  const auto* rv = payload_cast<bb::ReplyValueMsg>(mux->inner);
  ASSERT_NE(rv, nullptr);
  EXPECT_EQ(rv->phase, 3u);
  EXPECT_EQ(rv->value, inner->value);
}

TEST_F(CodecTest, IcMuxRejectsNestedMux) {
  // Crafted mux-in-mux must be rejected up front (bounded recursion).
  auto innermost = std::make_shared<bb::HelpReqMsg>();
  innermost->phase = 1;
  auto inner_mux = std::make_shared<ic::MuxMsg>();
  inner_mux->lane = 0;
  inner_mux->inner = innermost;
  ic::MuxMsg outer;
  outer.lane = 1;
  outer.inner = inner_mux;
  const auto bytes = wire::encode(outer);
  ASSERT_TRUE(bytes.has_value());  // encodable...
  EXPECT_EQ(wire::decode(*bytes), nullptr);  // ...but never parseable
}

TEST_F(CodecTest, UnknownPayloadTypeHasNoWireForm) {
  struct Foreign final : Payload {
    std::size_t words() const override { return 1; }
    const char* kind() const override { return "foreign"; }
  } foreign;
  EXPECT_FALSE(wire::encode(foreign).has_value());
  // roundtrip passes such payloads through unchanged.
  auto p = std::make_shared<Foreign>();
  EXPECT_EQ(wire::roundtrip(p), p);
}

TEST_F(CodecTest, DecodeRejectsEmptyAndUnknownTag) {
  EXPECT_EQ(wire::decode({}), nullptr);
  const std::uint8_t bad[] = {0xff, 1, 2, 3};
  EXPECT_EQ(wire::decode(bad), nullptr);
  const std::uint8_t zero[] = {0x00};
  EXPECT_EQ(wire::decode(zero), nullptr);
}

TEST_F(CodecTest, DecodeRejectsTruncationAtEveryPrefix) {
  // Every proper prefix of every message type must fail to parse.
  std::vector<std::vector<std::uint8_t>> encodings;
  {
    wba::CommitMsg m;
    m.phase = 4;
    m.value = certified_value();
    m.level = 2;
    m.qc = threshold();
    encodings.push_back(*wire::encode(m));
  }
  {
    wba::FallbackMsg m;
    m.fallback_qc = threshold();
    m.has_decision = true;
    m.value = signed_value();
    m.proof_phase = 1;
    m.decide_proof = threshold();
    encodings.push_back(*wire::encode(m));
  }
  {
    bb::LeaderValueMsg m;
    m.phase = 2;
    m.value = certified_value();
    encodings.push_back(*wire::encode(m));
  }
  {
    sba::ProposeCertMsg m;
    m.value = Value(1);
    m.qc = threshold();
    encodings.push_back(*wire::encode(m));
  }
  {
    fallback::DsRelayMsg m;
    m.instance = 1;
    m.value = WireValue::plain(Value(2));
    m.chain = aggregate_start(family_.pki(), sig(1));
    encodings.push_back(*wire::encode(m));
  }
  for (const auto& bytes : encodings) {
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_EQ(wire::decode(std::span(bytes.data(), len)), nullptr)
          << "prefix of length " << len << "/" << bytes.size() << " parsed";
    }
  }
}

TEST_F(CodecTest, DecodeRejectsTrailingGarbage) {
  bb::HelpReqMsg m;
  m.phase = 1;
  auto bytes = *wire::encode(m);
  bytes.push_back(0x42);
  EXPECT_EQ(wire::decode(bytes), nullptr);
}

TEST_F(CodecTest, DecodeRejectsNonCanonicalProvenance) {
  // A signed value whose signature flag is cleared: prov says kSigned but
  // no signature follows.
  wba::ProposeMsg m;
  m.phase = 1;
  m.value = signed_value();
  auto bytes = *wire::encode(m);
  // Layout: tag(1) + phase(8) + value.raw(8) + prov(1) + aux(8) + has_sig(1)
  const std::size_t has_sig_off = 1 + 8 + 8 + 1 + 8;
  ASSERT_EQ(bytes[has_sig_off], 1u);
  bytes[has_sig_off] = 0;
  // Now the signature bytes become trailing garbage / field soup; decode
  // must reject either way.
  EXPECT_EQ(wire::decode(bytes), nullptr);
}

TEST_F(CodecTest, DecodeIsTotalOnRandomBytes) {
  // No crash, no UB: every random byte string either parses or returns
  // nullptr. (Run under the default build's assertions.)
  Rng rng(0xc0dec);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> bytes(rng.below(120));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    (void)wire::decode(bytes);
  }
  SUCCEED();
}

TEST_F(CodecTest, DecodeIsTotalOnBitFlippedRealMessages) {
  wba::FallbackMsg full;
  full.fallback_qc = threshold();
  full.has_decision = true;
  full.value = certified_value();
  full.proof_phase = 2;
  full.decide_proof = threshold();
  const auto bytes = *wire::encode(full);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    auto mutated = bytes;
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    (void)wire::decode(mutated);  // must not crash; may parse or reject
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// End-to-end: full protocol runs with every message round-tripped.
// ---------------------------------------------------------------------------

TEST(CodecEndToEnd, BbOverTheWire) {
  auto spec = harness::RunSpec::for_t(2);
  spec.codec_roundtrip = true;
  adv::CrashAdversary adv({1});
  const auto res = harness::run_bb(spec, 0, Value(12), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(12));
}

TEST(CodecEndToEnd, WeakBaOverTheWireIncludingFallback) {
  auto spec = harness::RunSpec::for_t(2);
  spec.codec_roundtrip = true;
  adv::CrashAdversary adv({0, 1});  // f = t: exercises the DS relays too
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(6))),
      harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision().value, Value(6));
}

TEST(CodecEndToEnd, StrongBaOverTheWire) {
  auto spec = harness::RunSpec::for_t(2);
  spec.codec_roundtrip = true;
  adv::Alg5Withhold adv(spec.instance, adv::Alg5Mode::kHideDecide, 1);
  const auto res = harness::run_strong_ba(
      spec, std::vector<Value>(spec.n, Value(1)), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(1));
}

TEST(CodecEndToEnd, WordCostsUnchangedByRoundTrip) {
  auto run = [](bool roundtrip) {
    auto spec = harness::RunSpec::for_t(3);
    spec.codec_roundtrip = roundtrip;
    adv::NullAdversary adv;
    return harness::run_bb(spec, 0, Value(3), adv).meter.words_correct;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(CodecEndToEnd, FuzzedRunOverTheWire) {
  auto spec = harness::RunSpec::for_t(3);
  spec.codec_roundtrip = true;
  adv::Fuzzer adv(spec.instance, 55, 2, 4, /*spare=*/0);
  const auto res = harness::run_bb(spec, 0, Value(9), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(9));
}

}  // namespace
}  // namespace mewc
