// Frame container: the torn-write detection unit every durable format
// (WAL records, snapshot blobs) is built on. A reader either gets a fully
// verified body back or learns exactly where the valid prefix ends; no
// truncation or single-byte corruption may ever surface a partial body.
#include "wire/frame.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mewc::wire {
namespace {

std::vector<std::uint8_t> body_of(std::initializer_list<int> bytes) {
  std::vector<std::uint8_t> out;
  for (int b : bytes) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

TEST(WireReaderWriter, FieldsRoundTripLittleEndian) {
  Writer w;
  w.u8(0xab);
  w.u32(0x01020304);
  w.u64(0x1122334455667788ull);
  w.boolean(true);
  w.boolean(false);
  const std::vector<std::uint8_t> bytes = w.take();
  // Little-endian layout is part of the durable format, so pin it.
  ASSERT_EQ(bytes.size(), 1u + 4 + 8 + 2);
  EXPECT_EQ(bytes[0], 0xab);
  EXPECT_EQ(bytes[1], 0x04);
  EXPECT_EQ(bytes[4], 0x01);
  EXPECT_EQ(bytes[5], 0x88);
  EXPECT_EQ(bytes[12], 0x11);

  Reader r(bytes);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0x01020304u);
  EXPECT_EQ(r.u64(), 0x1122334455667788ull);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.done());
}

TEST(WireReaderWriter, OverrunStickyFails) {
  Writer w;
  w.u32(7);
  const auto bytes = w.take();
  Reader r(bytes);
  (void)r.u32();
  (void)r.u8();  // past the end
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
  EXPECT_EQ(r.u64(), 0u);  // still failed, still safe
}

TEST(WireReaderWriter, NonCanonicalBooleanRejected) {
  const auto bytes = body_of({2});
  Reader r(bytes);
  (void)r.boolean();
  EXPECT_FALSE(r.ok());
}

TEST(WireChecksum, DeterministicAndContentSensitive) {
  const auto a = body_of({1, 2, 3});
  const auto b = body_of({1, 2, 4});
  const auto empty = body_of({});
  EXPECT_EQ(checksum(a), checksum(a));
  EXPECT_NE(checksum(a), checksum(b));
  // Length is mixed in, so a prefix never collides with the whole.
  const auto prefix = body_of({1, 2});
  EXPECT_NE(checksum(a), checksum(prefix));
  EXPECT_NE(checksum(empty), checksum(a));
}

TEST(WireFrame, RoundTripsBodies) {
  std::vector<std::uint8_t> log;
  const auto first = body_of({10, 20, 30});
  const auto second = body_of({});  // empty bodies are legal frames
  append_frame(log, first);
  append_frame(log, second);

  const auto f1 = read_frame(log, 0);
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(std::vector<std::uint8_t>(f1->body.begin(), f1->body.end()),
            first);
  EXPECT_EQ(f1->frame_size, kFrameHeader + first.size());

  const auto f2 = read_frame(log, f1->frame_size);
  ASSERT_TRUE(f2.has_value());
  EXPECT_TRUE(f2->body.empty());
  EXPECT_EQ(f1->frame_size + f2->frame_size, log.size());

  EXPECT_FALSE(read_frame(log, log.size()).has_value());  // clean end
}

TEST(WireFrame, EveryTruncationIsDetected) {
  std::vector<std::uint8_t> log;
  append_frame(log, body_of({1, 2, 3, 4, 5, 6, 7}));
  // No proper prefix of a frame may parse as a frame.
  for (std::size_t len = 0; len < log.size(); ++len) {
    const std::span<const std::uint8_t> torn(log.data(), len);
    EXPECT_FALSE(read_frame(torn, 0).has_value()) << "prefix length " << len;
  }
}

TEST(WireFrame, EverySingleByteCorruptionIsDetected) {
  std::vector<std::uint8_t> log;
  append_frame(log, body_of({9, 8, 7, 6, 5}));
  for (std::size_t i = 0; i < log.size(); ++i) {
    std::vector<std::uint8_t> bad = log;
    bad[i] ^= 0x5a;
    const auto frame = read_frame(bad, 0);
    // A flipped length makes the frame run past the buffer or cover the
    // wrong span; a flipped checksum/body byte fails verification. Either
    // way the corrupted frame must not be surfaced.
    EXPECT_FALSE(frame.has_value()) << "corrupt byte " << i;
  }
}

TEST(WireFrame, OversizedLengthRejectedWithoutReading) {
  // Hand-build a header claiming a body far past kMaxFrameBody: the reader
  // must reject it instead of chasing garbage.
  Writer w;
  w.u32(kMaxFrameBody + 1);
  w.u64(0);
  const auto bytes = w.take();
  EXPECT_FALSE(read_frame(bytes, 0).has_value());
}

}  // namespace
}  // namespace mewc::wire
