// Transport seam unit tests: LoopbackTransport instance demux and
// stale-drop, WatermarkTable monotonic advance and closure queries,
// TimeoutRoundSync's watermark fast path vs deadline fallback, and the
// threaded LoopbackHub round dance that mirrors how `mewc_node` replicas
// close rounds against each other.
#include "net/loopback.hpp"
#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace mewc::net {
namespace {

Envelope env(ProcessId from, ProcessId to, Round round,
             std::uint64_t instance) {
  Envelope e;
  e.from = from;
  e.to = to;
  e.round = round;
  e.instance = instance;
  return e;
}

TEST(LoopbackTransport, FifoWithinInstance) {
  LoopbackTransport tr;
  tr.send(env(0, 1, 1, 7));
  tr.send(env(2, 1, 1, 7));
  EXPECT_FALSE(tr.idle());

  Envelope out;
  ASSERT_TRUE(tr.receive(7, out, 0));
  EXPECT_EQ(out.from, 0u);
  ASSERT_TRUE(tr.receive(7, out, 0));
  EXPECT_EQ(out.from, 2u);
  EXPECT_FALSE(tr.receive(7, out, 0));
  EXPECT_TRUE(tr.idle());
}

TEST(LoopbackTransport, StaleInstancesDropOnReceive) {
  LoopbackTransport tr;
  tr.send(env(0, 1, 3, 5));   // old instance, never drained
  tr.send(env(0, 1, 1, 9));   // current instance
  Envelope out;
  ASSERT_TRUE(tr.receive(9, out, 0));
  EXPECT_EQ(out.instance, 9u);
  EXPECT_EQ(tr.dropped_stale(), 1u);
  EXPECT_TRUE(tr.idle());
}

TEST(LoopbackTransport, FutureInstanceIsBuffered) {
  LoopbackTransport tr;
  tr.send(env(0, 1, 1, 11));  // run-ahead peer: future instance
  Envelope out;
  EXPECT_FALSE(tr.receive(9, out, 0));  // not visible to instance 9
  EXPECT_FALSE(tr.idle());              // but not lost either
  ASSERT_TRUE(tr.receive(11, out, 0));
  EXPECT_EQ(out.instance, 11u);
}

TEST(WatermarkTable, AdvanceIsLexicographicMonotonic) {
  WatermarkTable marks(3);
  marks.advance(1, /*instance=*/4, /*round=*/2);
  marks.advance(1, 4, 1);  // lower round: ignored
  marks.advance(1, 3, 9);  // lower instance: ignored
  EXPECT_FALSE(marks.all_at_least(/*self=*/0, 4, 2));  // peer 2 unheard from
  marks.advance(2, 4, 2);
  EXPECT_TRUE(marks.all_at_least(0, 4, 2));
  EXPECT_FALSE(marks.all_at_least(0, 4, 3));
  // A mark in a later instance covers every earlier instance's rounds.
  marks.advance(1, 5, 1);
  marks.advance(2, 5, 1);
  EXPECT_TRUE(marks.all_at_least(0, 4, 99));
}

TEST(WatermarkTable, SelfIsExcluded) {
  WatermarkTable marks(2);
  // Only the peer matters: process 0 never marks, yet closure for 0 holds
  // once peer 1 is at the watermark.
  marks.advance(1, 1, 1);
  EXPECT_TRUE(marks.all_at_least(/*self=*/0, 1, 1));
  EXPECT_FALSE(marks.all_at_least(/*self=*/1, 1, 1));
}

TEST(TimeoutRoundSync, ClosesOnWatermarks) {
  WatermarkTable marks(3);
  TimeoutRoundSync sync(marks, /*self=*/0, std::chrono::milliseconds(10'000));
  sync.round_opened(1, 1);
  EXPECT_FALSE(sync.closed(1, 1));
  marks.advance(1, 1, 1);
  marks.advance(2, 1, 1);
  EXPECT_TRUE(sync.closed(1, 1));
  EXPECT_EQ(sync.timeouts(), 0u);
}

TEST(TimeoutRoundSync, FallsBackToDeadline) {
  WatermarkTable marks(3);
  TimeoutRoundSync sync(marks, /*self=*/0, std::chrono::milliseconds(5));
  sync.round_opened(1, 1);
  // Peers never mark; the deadline must eventually close the round.
  while (!sync.closed(1, 1)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(sync.timeouts(), 1u);
}

TEST(LoopbackHub, ThreadedRoundDance) {
  // Three endpoints run R rounds: each broadcasts one envelope per round,
  // marks, then drains until the watermark sync closes the round. Pins the
  // multi-threaded variant of the closure protocol mewc_node runs on TCP.
  constexpr std::uint32_t kN = 3;
  constexpr Round kRounds = 5;
  constexpr std::uint64_t kInstance = 42;
  LoopbackHub hub(kN);

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (ProcessId id = 0; id < kN; ++id) {
    threads.emplace_back([&, id] {
      Transport& tr = hub.endpoint(id);
      TimeoutRoundSync sync(hub.watermarks(), id,
                            std::chrono::milliseconds(10'000));
      // Peers may legitimately run one round ahead of us (they close round
      // r and broadcast r+1 while we are still draining r), so count
      // arrivals per round and audit after the dance.
      std::vector<std::uint32_t> got(kRounds + 1, 0);
      for (Round r = 1; r <= kRounds; ++r) {
        for (ProcessId to = 0; to < kN; ++to) {
          if (to == id) continue;
          tr.send(env(id, to, r, kInstance));
        }
        tr.mark(kInstance, r);
        sync.round_opened(kInstance, r);
        Envelope in;
        for (;;) {
          while (tr.receive(kInstance, in, 0)) ++got[in.round];
          if (sync.closed(kInstance, r)) break;
          if (tr.receive(kInstance, in, 1)) ++got[in.round];
        }
        // Post-closure sweep: marks are FIFO behind data, but the final
        // envelope may land between the last drain and closed().
        while (tr.receive(kInstance, in, 0)) ++got[in.round];
        // Closure promises this round's traffic is fully here (watermark
        // path; the 10s timeout never fires on loopback).
        if (got[r] != kN - 1) failed = true;
      }
      for (Round r = 1; r <= kRounds; ++r) {
        EXPECT_EQ(got[r], kN - 1) << "round " << r << " at endpoint " << id;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace mewc::net
