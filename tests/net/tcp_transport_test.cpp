// TcpTransport integration tests over real localhost sockets: directed
// connect topology, cluster-token handshake, authenticated from-stamping,
// envelope exchange in both directions, self-delivery without a socket,
// and mark frames feeding the watermark table.
#include "net/tcp.hpp"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <thread>

#include "ba/weak_ba/messages.hpp"
#include "net/arena.hpp"

namespace mewc::net {
namespace {

/// Reserves a free localhost port by binding an ephemeral socket, reading
/// the assignment back, and closing it. Racy in principle; fine in a test.
std::uint16_t probe_port() {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  close(fd);
  return ntohs(addr.sin_port);
}

PayloadPtr ping(std::uint64_t phase, Value v) {
  auto m = pool::make<wba::ProposeMsg>();
  m->phase = phase;
  m->value = WireValue::plain(v);
  return m;
}

Envelope env(ProcessId from, ProcessId to, Round round,
             std::uint64_t instance, PayloadPtr body) {
  Envelope e;
  e.from = from;
  e.to = to;
  e.round = round;
  e.instance = instance;
  e.body = std::move(body);
  return e;
}

TcpTransportConfig config_for(ProcessId self, std::uint16_t my_port,
                              std::uint16_t peer_port,
                              std::uint64_t token = 0xfeedu) {
  TcpTransportConfig c;
  c.self = self;
  c.n = 2;
  c.listen_port = my_port;
  c.peers = {{0, "127.0.0.1", self == 0 ? my_port : peer_port},
             {1, "127.0.0.1", self == 1 ? my_port : peer_port}};
  c.cluster_token = token;
  return c;
}

TEST(TcpTransport, PairExchangesEnvelopesAndMarks) {
  const std::uint16_t port_a = probe_port();
  const std::uint16_t port_b = probe_port();
  TcpTransport a(config_for(0, port_a, port_b));
  TcpTransport b(config_for(1, port_b, port_a));
  std::string error;
  ASSERT_TRUE(a.start(&error)) << error;
  ASSERT_TRUE(b.start(&error)) << error;
  ASSERT_TRUE(a.wait_connected(std::chrono::seconds(10)));
  ASSERT_TRUE(b.wait_connected(std::chrono::seconds(10)));

  // a -> b, and a self-delivery that must never cross a socket.
  a.send(env(0, 1, 1, 3, ping(1, Value(41))));
  a.send(env(0, 0, 1, 3, ping(2, Value(42))));
  b.send(env(1, 0, 1, 3, ping(3, Value(43))));

  Envelope in;
  ASSERT_TRUE(b.receive(3, in, 2000));
  EXPECT_EQ(in.from, 0u);  // stamped from the connection identity
  EXPECT_EQ(in.to, 1u);
  EXPECT_EQ(in.round, 1u);
  const auto* got = payload_cast<wba::ProposeMsg>(in.body);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->value.value.raw, 41u);

  // a's two inbound envelopes: the self-copy and b's message, in some
  // order (different sources, no cross-source ordering guarantee).
  std::uint64_t seen = 0;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(a.receive(3, in, 2000));
    const auto* p = payload_cast<wba::ProposeMsg>(in.body);
    ASSERT_NE(p, nullptr);
    seen |= 1u << p->phase;
    if (p->phase == 2) EXPECT_EQ(in.from, 0u);
    if (p->phase == 3) EXPECT_EQ(in.from, 1u);
  }
  EXPECT_EQ(seen, (1u << 2) | (1u << 3));

  // Marks feed the peer's watermark table.
  a.mark(3, 1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!b.watermarks().all_at_least(1, 3, 1)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "mark lost";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const TcpTransportStats sa = a.stats();
  EXPECT_EQ(sa.envelopes_sent, 1u);  // self-delivery is not a socket send
  EXPECT_EQ(sa.decode_drops, 0u);
  a.shutdown();
  b.shutdown();
}

TEST(TcpTransport, WrongClusterTokenNeverConnects) {
  const std::uint16_t port_a = probe_port();
  const std::uint16_t port_b = probe_port();
  TcpTransport a(config_for(0, port_a, port_b, /*token=*/1));
  TcpTransport b(config_for(1, port_b, port_a, /*token=*/2));
  std::string error;
  ASSERT_TRUE(a.start(&error)) << error;
  ASSERT_TRUE(b.start(&error)) << error;
  // Handshakes are refused, so the cluster never becomes ready.
  EXPECT_FALSE(a.wait_connected(std::chrono::milliseconds(400)));
  EXPECT_FALSE(b.wait_connected(std::chrono::milliseconds(400)));
  a.shutdown();
  b.shutdown();
}

TEST(TcpTransport, StaleInstanceEnvelopesAreShed) {
  const std::uint16_t port_a = probe_port();
  const std::uint16_t port_b = probe_port();
  TcpTransport a(config_for(0, port_a, port_b));
  TcpTransport b(config_for(1, port_b, port_a));
  std::string error;
  ASSERT_TRUE(a.start(&error)) << error;
  ASSERT_TRUE(b.start(&error)) << error;
  ASSERT_TRUE(a.wait_connected(std::chrono::seconds(10)));
  ASSERT_TRUE(b.wait_connected(std::chrono::seconds(10)));

  a.send(env(0, 1, 1, /*instance=*/4, ping(1, Value(1))));
  a.send(env(0, 1, 1, /*instance=*/9, ping(2, Value(2))));
  Envelope in;
  // Receiving instance 9 ratchets the floor; the instance-4 envelope is
  // dropped as stale, not delivered later.
  ASSERT_TRUE(b.receive(9, in, 2000));
  EXPECT_EQ(in.instance, 9u);
  EXPECT_FALSE(b.receive(4, in, 50));
  a.shutdown();
  b.shutdown();
}

}  // namespace
}  // namespace mewc::net
