#include "net/network.hpp"

#include <gtest/gtest.h>

namespace mewc {
namespace {

struct TestPayload final : Payload {
  std::size_t w;
  explicit TestPayload(std::size_t words) : w(words) {}
  [[nodiscard]] std::size_t words() const override { return w; }
  [[nodiscard]] const char* kind() const override { return "test"; }
};

PayloadPtr pl(std::size_t words = 1) {
  return std::make_shared<TestPayload>(words);
}

TEST(Outbox, UnicastAndBroadcast) {
  Outbox out(4);
  out.send(2, pl());
  EXPECT_EQ(out.sends().size(), 1u);
  out.broadcast(pl());
  EXPECT_EQ(out.sends().size(), 5u);  // 1 unicast + 4 broadcast copies
}

TEST(Outbox, OutOfRangeAddressDropped) {
  Outbox out(3);
  out.send(7, pl());
  EXPECT_TRUE(out.sends().empty());
}

TEST(SyncNetwork, DeliversWithinRound) {
  SyncNetwork net(3);
  Outbox out(3);
  out.send(1, pl());
  net.post(0, 1, out, true);
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].from, 0u);
  EXPECT_EQ(net.inbox(1)[0].round, 1u);
  EXPECT_TRUE(net.inbox(0).empty());
  EXPECT_TRUE(net.inbox(2).empty());
}

TEST(SyncNetwork, SenderIdentityIsStamped) {
  // Reliable authenticated links: the network stamps the true sender, so a
  // Byzantine process cannot spoof a correct one at the link level.
  SyncNetwork net(3);
  Outbox out(3);
  out.send(2, pl());
  net.post(1, 1, out, false);
  EXPECT_EQ(net.inbox(2)[0].from, 1u);
}

TEST(SyncNetwork, EndRoundClearsInboxes) {
  SyncNetwork net(2);
  Outbox out(2);
  out.send(1, pl());
  net.post(0, 1, out, true);
  net.end_round();
  EXPECT_TRUE(net.inbox(1).empty());
}

TEST(SyncNetwork, MetersCorrectSendersOnly) {
  SyncNetwork net(3);
  Outbox correct(3), byz(3);
  correct.send(1, pl(2));
  byz.send(1, pl(5));
  net.post(0, 1, correct, true);
  net.post(2, 1, byz, false);
  EXPECT_EQ(net.meter().words_correct, 2u);
  EXPECT_EQ(net.meter().words_byzantine, 5u);
  EXPECT_EQ(net.meter().messages_correct, 1u);
  EXPECT_EQ(net.meter().messages_byzantine, 1u);
}

TEST(SyncNetwork, SelfDeliveryIsFree) {
  // Broadcast includes the sender, but only link-crossing traffic counts.
  SyncNetwork net(3);
  Outbox out(3);
  out.broadcast(pl(1));
  net.post(0, 1, out, true);
  EXPECT_EQ(net.inbox(0).size(), 1u);       // delivered to self
  EXPECT_EQ(net.meter().words_correct, 2u); // but only 2 links crossed
}

TEST(SyncNetwork, MinimumOneWordPerMessage) {
  SyncNetwork net(2);
  Outbox out(2);
  out.send(1, pl(0));  // degenerate payload claims zero words
  net.post(0, 1, out, true);
  EXPECT_EQ(net.meter().words_correct, 1u);
}

TEST(SyncNetwork, OutOfRangeRecipientsDropped) {
  // Regression: an Outbox sized for a bigger system (the adversary can
  // build one) used to drive inboxes_[to] out of bounds. The network must
  // validate recipients itself and drop junk addressing — there is no link
  // to process 7 in a 3-process system, and no words cross one.
  SyncNetwork net(3);
  Outbox out(8);  // oversized: its own bounds check would pass to = 7
  out.send(7, pl(4));
  out.send(1, pl(1));
  net.post(0, 1, out, true);
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.meter().words_correct, 1u);  // the junk send was not metered
  EXPECT_EQ(net.meter().messages_correct, 1u);
}

TEST(SyncNetwork, OutOfRangeByzantineRecipientsDropped) {
  SyncNetwork net(2);
  Outbox out(16);
  out.send(9, pl(3));
  net.post(1, 1, out, false);
  EXPECT_EQ(net.meter().words_byzantine, 0u);
  EXPECT_EQ(net.meter().messages_byzantine, 0u);
  EXPECT_TRUE(net.inbox(0).empty());
  EXPECT_TRUE(net.inbox(1).empty());
}

TEST(SyncNetwork, PostedThisRoundIsTheDeliveredView) {
  // The rushing view holds the post-transform messages exactly as
  // delivered and metered, self-copies included, correct senders only.
  SyncNetwork net(3);
  Outbox correct(3), byz(3);
  correct.broadcast(pl(2));
  byz.send(0, pl(9));
  net.post(1, 4, correct, true);
  net.post(2, 4, byz, false);
  ASSERT_EQ(net.posted_this_round().size(), 3u);  // n copies, incl. self
  for (const Message& m : net.posted_this_round()) {
    EXPECT_EQ(m.from, 1u);
    EXPECT_EQ(m.round, 4u);
    EXPECT_EQ(m.words, 2u);
  }
  net.begin_sends();
  EXPECT_TRUE(net.posted_this_round().empty());
}

TEST(SyncNetwork, PerRoundBreakdown) {
  SyncNetwork net(2);
  for (Round r = 1; r <= 3; ++r) {
    Outbox out(2);
    out.send(1, pl(r));  // r words in round r
    net.post(0, r, out, true);
    net.end_round();
  }
  EXPECT_EQ(net.meter().words_in_rounds(1, 2), 1u);
  EXPECT_EQ(net.meter().words_in_rounds(2, 4), 5u);
  EXPECT_EQ(net.meter().words_in_rounds(1, 4), 6u);
}

}  // namespace
}  // namespace mewc
