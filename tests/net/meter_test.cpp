#include "net/meter.hpp"

#include <gtest/gtest.h>

namespace mewc {
namespace {

TEST(Meter, StartsEmpty) {
  Meter m(3);
  EXPECT_EQ(m.words_correct, 0u);
  EXPECT_EQ(m.words_byzantine, 0u);
  EXPECT_EQ(m.words_by_process.size(), 3u);
}

TEST(Meter, RecordsCorrectTraffic) {
  Meter m(3);
  m.record(0, 1, 4, 1, "a", true);
  m.record(1, 2, 6, 2, "b", true);
  EXPECT_EQ(m.words_correct, 10u);
  EXPECT_EQ(m.messages_correct, 2u);
  EXPECT_EQ(m.words_by_process[0], 4u);
  EXPECT_EQ(m.words_by_process[1], 6u);
  EXPECT_EQ(m.words_by_process[2], 0u);
}

TEST(Meter, ByzantineTrafficKeptSeparate) {
  // The paper's communication complexity counts correct senders only; the
  // Byzantine bucket exists for diagnostics and must never leak across.
  Meter m(2);
  m.record(0, 1, 100, 9, "a", false);
  EXPECT_EQ(m.words_correct, 0u);
  EXPECT_EQ(m.words_byzantine, 100u);
  EXPECT_EQ(m.words_by_process[0], 0u);
  EXPECT_EQ(m.words_in_rounds(0, 10), 0u);
}

TEST(Meter, RoundWindowIsHalfOpen) {
  Meter m(1);
  m.record(0, 1, 1, 0, "a", true);
  m.record(0, 2, 2, 0, "a", true);
  m.record(0, 3, 4, 0, "b", true);
  EXPECT_EQ(m.words_in_rounds(2, 3), 2u);
  EXPECT_EQ(m.words_in_rounds(2, 2), 0u);
  EXPECT_EQ(m.words_in_rounds(0, 100), 7u);  // beyond-range is safe
}

TEST(Meter, KindBreakdown) {
  Meter m(2);
  m.record(0, 1, 3, 0, "wba.vote", true);
  m.record(1, 1, 2, 0, "wba.vote", true);
  m.record(0, 2, 5, 0, "wba.commit", true);
  m.record(0, 2, 9, 0, "wba.commit", false);  // Byzantine: excluded
  EXPECT_EQ(m.words_by_kind().at("wba.vote"), 5u);
  EXPECT_EQ(m.words_by_kind().at("wba.commit"), 5u);
  EXPECT_EQ(m.words_by_kind().size(), 2u);
}

TEST(Meter, RoundVectorGrowsOnDemand) {
  Meter m(1);
  m.record(0, 17, 3, 0, nullptr, true);
  ASSERT_GE(m.words_by_round.size(), 18u);
  EXPECT_EQ(m.words_by_round[17], 3u);
}

TEST(Meter, DefaultConstructedMeterStillAttributesPerProcess) {
  // Regression: a default-constructed (n = 0) meter used to silently drop
  // every per-process sample behind a bounds guard, so breakdowns copied
  // out of a run could come back empty. Sizing is a reservation, never a
  // filter: the vector grows to fit any sender it sees.
  Meter m;
  m.record(4, 1, 7, 0, "a", true);
  m.record(0, 1, 2, 0, "a", true);
  ASSERT_EQ(m.words_by_process.size(), 5u);
  EXPECT_EQ(m.words_by_process[4], 7u);
  EXPECT_EQ(m.words_by_process[0], 2u);
  EXPECT_EQ(m.words_by_process[1], 0u);
  EXPECT_EQ(m.words_correct, 9u);
}

TEST(Meter, KindInterningDedupesByContent) {
  // kinds are interned by id with a pointer-keyed fast path; equal names
  // arriving at distinct addresses (inline kind() across TUs) must land in
  // one bucket.
  Meter m(2);
  const char a[] = "wba.vote";
  const char b[] = "wba.vote";  // same content, different address
  m.record(0, 1, 3, 0, a, true);
  m.record(1, 1, 4, 0, b, true);
  EXPECT_EQ(m.words_by_kind().at("wba.vote"), 7u);
  EXPECT_EQ(m.words_by_kind().size(), 1u);
}

}  // namespace
}  // namespace mewc
