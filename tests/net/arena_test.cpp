// Payload arena thread model (net/arena.hpp): free lists are thread-local;
// a block may be released on a different thread than allocated it (joining
// the releasing thread's list), or after the releasing thread's lists are
// already destroyed (falling through to ::operator delete). The header
// documents this model; these tests exercise each path explicitly — they
// are the coverage the TSan campaign job leans on.
#include "net/arena.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace mewc::pool {
namespace {

// Payload-sized object: combined with its shared_ptr control block it lands
// in a small bucket, like the real protocol messages.
struct Block {
  std::uint64_t words[4] = {0, 0, 0, 0};
};

TEST(ArenaStats, StatsScopeReportsOnlyItsOwnWindow) {
  if (!enabled()) GTEST_SKIP() << "payload pooling disabled";
  // Warm the pool so the scope below sees steady-state reuse, then verify
  // the scoped delta counts exactly the allocations inside the window.
  { auto warm = make<Block>(); }
  const Stats before = thread_stats();
  const StatsScope scope;
  constexpr int kAllocs = 8;
  for (int i = 0; i < kAllocs; ++i) {
    auto p = make<Block>();
    ASSERT_NE(p, nullptr);
  }
  const Stats delta = scope.delta();
  EXPECT_EQ(delta.reused + delta.fresh, kAllocs);
  // The thread-lifetime counters kept growing; the scope must not have
  // reset them (other scopes may be live concurrently).
  const Stats after = thread_stats();
  EXPECT_EQ(after.reused + after.fresh,
            before.reused + before.fresh + kAllocs);
}

TEST(ArenaCrossThread, BlockAllocatedOnWorkerIsReusableByReleasingThread) {
  if (!enabled()) GTEST_SKIP() << "payload pooling disabled";
  // Worker A allocates; this thread releases. The blocks must join *this*
  // thread's free lists (ownership is transferable — all blocks originate
  // from ::operator new) and serve this thread's next allocations.
  constexpr int kBlocks = 16;
  std::vector<std::shared_ptr<Block>> handoff;
  std::thread worker([&] {
    for (int i = 0; i < kBlocks; ++i) handoff.push_back(make<Block>());
  });
  worker.join();

  handoff.clear();  // release on this thread -> this thread's free list
  const StatsScope scope;
  std::vector<std::shared_ptr<Block>> again;
  for (int i = 0; i < kBlocks; ++i) again.push_back(make<Block>());
  // Every allocation is served from the blocks the worker allocated.
  EXPECT_EQ(scope.delta().reused, kBlocks);
  EXPECT_EQ(scope.delta().fresh, 0u);
}

TEST(ArenaCrossThread, WorkerReleasingMainBlocksKeepsThemOnWorker) {
  if (!enabled()) GTEST_SKIP() << "payload pooling disabled";
  // This thread allocates; worker B releases and then allocates — B must
  // reuse the released blocks from its own (now stocked) free list.
  constexpr int kBlocks = 16;
  std::vector<std::shared_ptr<Block>> handoff;
  for (int i = 0; i < kBlocks; ++i) handoff.push_back(make<Block>());

  std::uint64_t worker_reused = 0;
  std::thread worker([&] {
    handoff.clear();  // release on B
    const StatsScope scope;
    std::vector<std::shared_ptr<Block>> again;
    for (int i = 0; i < kBlocks; ++i) again.push_back(make<Block>());
    worker_reused = scope.delta().reused;
  });
  worker.join();
  EXPECT_EQ(worker_reused, kBlocks);
}

// Destruction-order canary: a thread_local holder constructed BEFORE the
// arena's free lists is destroyed AFTER them (TLS destructors run in
// reverse construction order), so its payload is released while
// g_tls_alive is already false — the documented fall-through to
// ::operator delete. A bug on that path is a crash/UAF, which ASan builds
// of this suite turn into a hard failure.
std::atomic<int> g_canary_destroyed{0};

struct Canary {
  std::uint64_t words[4] = {0, 0, 0, 0};
  ~Canary() { g_canary_destroyed.fetch_add(1); }
};

struct LateHolder {
  std::shared_ptr<Canary> held;
};

TEST(ArenaCrossThread, ReleaseAfterOwningThreadFreeListsAreDestroyed) {
  if (!enabled()) GTEST_SKIP() << "payload pooling disabled";
  g_canary_destroyed.store(0);
  std::thread worker([] {
    // Touch the holder FIRST so it outlives the free lists created by the
    // make<Canary> call below.
    thread_local LateHolder holder;
    holder.held = make<Canary>();
  });
  worker.join();
  // The canary was destroyed during thread teardown, after the worker's
  // free lists were gone; surviving the join proves the fall-through path.
  EXPECT_EQ(g_canary_destroyed.load(), 1);
}

TEST(ArenaBypass, OversizedAllocationsSkipThePoolAndItsCounters) {
  if (!enabled()) GTEST_SKIP() << "payload pooling disabled";
  // Oversized requests bypass the pool and must not perturb the stats.
  struct Huge {
    std::uint8_t bytes[4096] = {};
  };
  const StatsScope scope;
  { auto p = make<Huge>(); }
  const Stats delta = scope.delta();
  EXPECT_EQ(delta.reused + delta.fresh, 0u);
}

}  // namespace
}  // namespace mewc::pool
