// Reproducibility: the simulator is deterministic — identical RunSpecs and
// adversaries produce bit-identical outcomes (decisions, meters, digests).
// This is what makes every number in EXPERIMENTS.md regenerable.
#include <gtest/gtest.h>

#include "ba/adversaries/adversaries.hpp"
#include "ba/adversaries/fuzzer.hpp"
#include "ba/harness.hpp"
#include "smr/ledger.hpp"

namespace mewc {
namespace {

using harness::RunSpec;

TEST(Determinism, WeakBaRunsAreBitIdentical) {
  auto run = [] {
    auto spec = RunSpec::for_t(3);
    adv::CrashAdversary adv({1, 4});
    return harness::run_weak_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(7))),
        harness::always_valid_factory(), adv);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.meter.words_correct, b.meter.words_correct);
  EXPECT_EQ(a.meter.logical_sigs_correct, b.meter.logical_sigs_correct);
  EXPECT_EQ(a.meter.words_by_round, b.meter.words_by_round);
  EXPECT_TRUE(a.decision() == b.decision());
}

TEST(Determinism, FuzzedRunsAreSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    auto spec = RunSpec::for_t(3);
    adv::Fuzzer adv(spec.instance, seed, 2, 4);
    return harness::run_bb(spec, 0, Value(5), adv);
  };
  const auto a = run(99);
  const auto b = run(99);
  const auto c = run(100);
  EXPECT_EQ(a.meter.words_correct, b.meter.words_correct);
  EXPECT_EQ(a.meter.words_byzantine, b.meter.words_byzantine);
  EXPECT_EQ(a.decision(), b.decision());
  // A different fuzz seed changes the Byzantine traffic pattern...
  EXPECT_NE(a.meter.words_byzantine, c.meter.words_byzantine);
  // ...but never the protocol outcome for a correct sender.
  EXPECT_EQ(a.decision(), c.decision());
}

TEST(Determinism, CryptoSeedChangesTagsNotOutcomes) {
  auto run = [](std::uint64_t seed) {
    auto spec = RunSpec::for_t(2);
    spec.seed = seed;
    adv::NullAdversary adv;
    return harness::run_strong_ba(spec, std::vector<Value>(spec.n, Value(1)),
                                  adv);
  };
  const auto a = run(1);
  const auto b = run(2);
  EXPECT_EQ(a.decision(), b.decision());
  EXPECT_EQ(a.meter.words_correct, b.meter.words_correct);
}

TEST(Determinism, LedgersReplayIdentically) {
  auto run = [] {
    smr::Ledger::Config c;
    c.t = 2;
    c.n = n_for_t(c.t);
    c.checkpoint_every = 2;
    smr::Ledger ledger(c);
    smr::Ledger::AdversaryFactory factory =
        [](std::uint64_t slot,
           ProcessId proposer) -> std::unique_ptr<Adversary> {
      if (slot % 3 == 1) {
        return std::make_unique<adv::CrashAdversary>(
            std::vector<ProcessId>{proposer});
      }
      return nullptr;
    };
    for (std::uint64_t s = 0; s < 5; ++s) ledger.append(Value(s + 1), factory);
    return ledger.ledger_digest();
  };
  EXPECT_EQ(run(), run());
}

TEST(Determinism, ShamirBackendMatchesSimBackendOutcomes) {
  // The two crypto backends must be behaviorally interchangeable: same
  // decisions, same word counts (certificates cost one word either way).
  for (auto backend : {ThresholdBackend::kSim, ThresholdBackend::kShamir}) {
    auto spec = RunSpec::for_t(2);
    spec.backend = backend;
    adv::CrashAdversary adv({0});
    const auto res = harness::run_weak_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(4))),
        harness::always_valid_factory(), adv);
    EXPECT_TRUE(res.agreement());
    EXPECT_EQ(res.decision().value, Value(4));
    EXPECT_EQ(res.meter.words_correct > 0, true);
  }
  auto words_for = [](ThresholdBackend backend) {
    auto spec = RunSpec::for_t(2);
    spec.backend = backend;
    adv::NullAdversary adv;
    return harness::run_weak_ba(
               spec,
               std::vector<WireValue>(spec.n, WireValue::plain(Value(4))),
               harness::always_valid_factory(), adv)
        .meter.words_correct;
  };
  EXPECT_EQ(words_for(ThresholdBackend::kSim),
            words_for(ThresholdBackend::kShamir));
}

}  // namespace
}  // namespace mewc
