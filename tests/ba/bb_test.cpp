// Adaptive Byzantine Broadcast (Algorithms 1 + 2): BB validity with a
// correct sender under every adversary, agreement for Byzantine senders
// (equivocation, partial delivery, silence), the idk-certificate path, and
// silent-phase behaviour.
#include "ba/bb/bb.hpp"

#include <gtest/gtest.h>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"

namespace mewc {
namespace {

using harness::RunSpec;

TEST(Bb, CorrectSenderFailureFree) {
  auto spec = RunSpec::for_t(2);
  adv::NullAdversary adv;
  const auto res = harness::run_bb(spec, /*sender=*/1, Value(7), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(7));
  // Everyone adopted in round 1, so every vetting phase is silent.
  EXPECT_EQ(res.nonsilent_leaders(), 0u);
  EXPECT_FALSE(res.any_fallback());
  for (const auto& s : res.stats) {
    ASSERT_TRUE(s.has_value());
    EXPECT_TRUE(s->adopted_from_sender);
  }
}

TEST(Bb, CorrectSenderWithCrashes) {
  // Validity: with a correct sender, crashes of others must not change the
  // decision (Lemma 12).
  auto spec = RunSpec::for_t(5);  // n = 11; adaptive boundary f <= 2
  ASSERT_TRUE(adaptive_regime(spec.n, spec.t, 2));
  adv::CrashAdversary adv({2, 5});
  const auto res = harness::run_bb(spec, 0, Value(13), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(13));
  EXPECT_FALSE(res.any_fallback());
}

TEST(Bb, CorrectSenderWithMaximalCrash) {
  // f = t crashes (not the sender): the weak BA falls back, but unique
  // validity with BB_valid still forces the sender's value.
  auto spec = RunSpec::for_t(3);
  adv::CrashAdversary adv({1, 2, 3});
  const auto res = harness::run_bb(spec, 0, Value(21), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(21));
}

TEST(Bb, SilentSenderDecidesBottomViaIdkCertificate) {
  // The sender never speaks: the first correct leader batches t+1 idk
  // partials into an idk certificate, which the weak BA decides, and the
  // BB output is ⊥ everywhere.
  auto spec = RunSpec::for_t(2);
  adv::CrashAdversary adv({3});  // process 3 is the (silent) sender
  const auto res = harness::run_bb(spec, 3, Value(9), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_TRUE(res.decision().is_bottom());
  // Exactly one non-silent vetting phase: p0's, which rescued everyone.
  EXPECT_EQ(res.nonsilent_leaders(), 1u);
}

TEST(Bb, EquivocatingSenderStillAgrees) {
  // The sender signs 40 for even processes and 41 for odd ones. Both are
  // BB_valid, so the weak BA may decide either — but all correct processes
  // must decide the same one.
  auto spec = RunSpec::for_t(2);
  adv::BbEquivocatingSender adv(2, spec.instance, adv::SenderMode::kEquivocate,
                                Value(40), Value(41));
  const auto res = harness::run_bb(spec, 2, Value(40), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  const Value d = res.decision();
  EXPECT_TRUE(d == Value(40) || d == Value(41)) << d.raw;
}

TEST(Bb, PartialSenderValueSpreadsThroughVetting) {
  // The Byzantine sender tells only two processes. A correct value-less
  // leader's phase relays the sender-signed value to everyone (Lemma 9),
  // and the run decides it.
  auto spec = RunSpec::for_t(2);
  adv::BbEquivocatingSender adv(4, spec.instance, adv::SenderMode::kPartial,
                                Value(50), Value(0), /*reach=*/2);
  const auto res = harness::run_bb(spec, 4, Value(50), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(50));
}

TEST(Bb, SilentSenderPlusCrashesStillTerminates) {
  // Sender silent + two more crashes = f = t = 3 at n = 7: deep fallback
  // territory; agreement and termination must survive, decision is ⊥.
  auto spec = RunSpec::for_t(3);
  adv::CrashAdversary adv({0, 4, 6});  // 0 is the sender
  const auto res = harness::run_bb(spec, 0, Value(3), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_TRUE(res.decision().is_bottom());
}

TEST(Bb, AdaptiveLeaderKillerBurnsPhasesButValidityHolds) {
  // Silent sender + adversary that corrupts each upcoming vetting leader
  // right before it would broadcast the rescue value: every burned phase is
  // non-silent (the help_req went out) yet completes nothing. The first
  // unkilled correct leader finishes the job.
  auto spec = RunSpec::for_t(3);  // n = 7, t = 3
  std::vector<std::unique_ptr<Adversary>> parts;
  parts.push_back(std::make_unique<adv::CrashAdversary>(
      std::vector<ProcessId>{6}));  // sender p6 silent
  // BB phases: phase j occupies rounds 3(j-1)+2 .. 3(j-1)+4; corrupt the
  // leader right before its relay round (local round 3).
  parts.push_back(std::make_unique<adv::AdaptiveLeaderCrash>(
      /*first_phase_round=*/4, /*phase_len=*/3, spec.n, /*budget=*/2));
  adv::Composite adv(std::move(parts));
  const auto res = harness::run_bb(spec, 6, Value(5), adv);
  EXPECT_EQ(res.f(), 3u);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_TRUE(res.decision().is_bottom());  // sender never spoke
  // Leaders p0 and p1 initiated phases before being killed; p2 finished.
  EXPECT_GE(res.nonsilent_leaders(), 1u);
}

TEST(Bb, IdkCertificateRelayAcrossPhases) {
  // NOTE-1 regression: processes that adopt an idk certificate in an early
  // phase reply with it later; a correct leader must be able to relay it
  // (generalized line 23) so late value-less processes return a valid value.
  auto spec = RunSpec::for_t(2);  // n = 5
  // Sender p0 silent; additionally crash p1 mid-run so p1's phase (phase 2)
  // is dead and phase 3's leader p2 must rely on relayed certificates.
  std::vector<std::unique_ptr<Adversary>> parts;
  parts.push_back(
      std::make_unique<adv::CrashAdversary>(std::vector<ProcessId>{0}));
  parts.push_back(std::make_unique<adv::CrashAdversary>(
      std::vector<ProcessId>{1}, /*from_round=*/3));
  adv::Composite adv(std::move(parts));
  const auto res = harness::run_bb(spec, 0, Value(9), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_TRUE(res.decision().is_bottom());
}

TEST(Bb, Note1PartialIdkRelayHealsTheSplit) {
  // NOTE-1 end to end: the sender is silent and the Byzantine phase-1
  // leader mints a real idk certificate but reveals it only to the two
  // highest-id correct processes. The next correct value-less leader (p1)
  // receives that certificate as a reply and must relay it — the
  // generalized Algorithm 2 line 23 — after which everyone holds a valid
  // value, the weak BA decides the certified idk, and BB outputs ⊥.
  auto spec = RunSpec::for_t(2);  // n = 5
  std::vector<std::unique_ptr<Adversary>> parts;
  parts.push_back(std::make_unique<adv::CrashAdversary>(
      std::vector<ProcessId>{4}));  // silent sender p4
  parts.push_back(
      std::make_unique<adv::BbPartialRelay>(spec.instance, 1, /*reach=*/2));
  adv::Composite adv(std::move(parts));
  const auto res = harness::run_bb(spec, 4, Value(9), adv);
  EXPECT_EQ(res.f(), 2u);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_TRUE(res.decision().is_bottom());
  // p1 could not have minted a fresh certificate (the reached processes
  // answered with the certificate instead of idk, leaving only 1 < t+1 idk
  // partials), so termination here proves the relay path ran.
  for (const auto& s : res.stats) {
    if (!s) continue;
    EXPECT_TRUE(s->decided);
  }
}

TEST(Bb, DecisionNeverFabricatedForCorrectSender) {
  // Sweep senders and crash patterns: with a correct sender the decision is
  // always exactly the sender's value (never ⊥, never anything else).
  for (std::uint32_t t : {1u, 2u, 3u}) {
    auto spec = RunSpec::for_t(t);
    for (ProcessId sender = 0; sender < spec.n; sender += 2) {
      std::vector<ProcessId> victims;
      for (ProcessId v = 0; victims.size() < t && v < spec.n; ++v) {
        if (v != sender) victims.push_back(v);
      }
      adv::CrashAdversary adv(victims);
      const auto res = harness::run_bb(spec, sender, Value(1000 + sender), adv);
      EXPECT_TRUE(res.all_decided()) << "t=" << t << " sender=" << sender;
      EXPECT_TRUE(res.agreement()) << "t=" << t << " sender=" << sender;
      EXPECT_EQ(res.decision(), Value(1000 + sender))
          << "t=" << t << " sender=" << sender;
    }
  }
}

TEST(Bb, RoundScheduleIsExact) {
  EXPECT_EQ(bb::BbProcess::total_rounds(5, 2),
            1 + 3 * 5 + wba::WeakBaProcess::total_rounds(5, 2));
  EXPECT_EQ(bb::BbProcess::leader_of(1, 5), 0u);
  EXPECT_EQ(bb::BbProcess::leader_of(5, 5), 4u);
}

}  // namespace
}  // namespace mewc
