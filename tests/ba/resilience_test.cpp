// Generalized resilience n >= 2t+1 (paper Section 8): the BB and weak BA
// constructions only need the quorum intersection property, which
// ceil((n+t+1)/2) certificates provide at any n >= 2t+1 — and a wider gap
// n - 2t widens the adaptive regime. At n = 3t+1 the weak BA is adaptive
// for EVERY f <= t (n - ceil((n+t+1)/2) = t), which is the regime
// Spiegelman (DISC 2021) considers.
#include <gtest/gtest.h>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"

namespace mewc {
namespace {

using harness::RunSpec;

std::vector<ProcessId> first_f(std::uint32_t f) {
  std::vector<ProcessId> v;
  for (std::uint32_t i = 0; i < f; ++i) v.push_back(i);
  return v;
}

TEST(Resilience, QuorumIntersectionHoldsForAnyGap) {
  for (std::uint32_t t = 1; t <= 20; ++t) {
    for (std::uint32_t n = 2 * t + 1; n <= 4 * t + 2; n += t) {
      const std::uint32_t q = commit_quorum(n, t);
      EXPECT_GE(2 * q, n + t + 1) << "n=" << n << " t=" << t;
    }
  }
}

TEST(Resilience, AtThreeTPlusOneAdaptiveForAllF) {
  const std::uint32_t t = 4;
  const std::uint32_t n = 3 * t + 1;  // 13
  for (std::uint32_t f = 0; f <= t; ++f) {
    EXPECT_TRUE(adaptive_regime(n, t, f)) << "f=" << f;
  }
}

struct ResilienceParam {
  std::uint32_t n;
  std::uint32_t t;
  std::uint32_t f;
};

class ResilienceSweep : public ::testing::TestWithParam<ResilienceParam> {};

TEST_P(ResilienceSweep, WeakBaCorrectAtWiderResilience) {
  const auto [n, t, f] = GetParam();
  auto spec = RunSpec::with(n, t);
  adv::CrashAdversary adv(first_f(f));
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(3))),
      harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision().value, Value(3));
  if (adaptive_regime(n, t, f)) {
    EXPECT_FALSE(res.any_fallback());
  }
}

TEST_P(ResilienceSweep, BbCorrectAtWiderResilience) {
  const auto [n, t, f] = GetParam();
  auto spec = RunSpec::with(n, t);
  const ProcessId sender = n - 1;  // outside the crash set
  adv::CrashAdversary adv(first_f(f));
  const auto res = harness::run_bb(spec, sender, Value(17), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(17));
}

TEST_P(ResilienceSweep, StrongBaCorrectAtWiderResilience) {
  const auto [n, t, f] = GetParam();
  auto spec = RunSpec::with(n, t);
  adv::CrashAdversary adv(first_f(f));
  const auto res =
      harness::run_strong_ba(spec, std::vector<Value>(spec.n, Value(1)), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(1));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ResilienceSweep,
    ::testing::Values(ResilienceParam{7, 2, 0},    // n = 3t+1
                      ResilienceParam{7, 2, 2},    // fully adaptive at f=t
                      ResilienceParam{13, 4, 0}, ResilienceParam{13, 4, 2},
                      ResilienceParam{13, 4, 4},   // f = t, still adaptive
                      ResilienceParam{8, 2, 2},    // even n
                      ResilienceParam{10, 3, 3},   // n = 3t+1
                      ResilienceParam{16, 3, 3},   // n = 5t+1
                      ResilienceParam{21, 4, 4}),  // n = 5t+1
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_t" +
             std::to_string(info.param.t) + "_f" +
             std::to_string(info.param.f);
    });

TEST(Resilience, ThreeTPlusOneNeverFallsBackEvenAtMaxF) {
  // The paper's Section 8 observation made concrete: with n = 3t+1, even
  // f = t crashes keep the weak BA fully adaptive — zero fallback traffic.
  const std::uint32_t t = 4;
  auto spec = RunSpec::with(3 * t + 1, t);
  adv::CrashAdversary adv(first_f(t));
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(8))),
      harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_FALSE(res.any_fallback());
  EXPECT_EQ(res.help_reqs_sent(), 0u);
  EXPECT_EQ(res.decision().value, Value(8));
}

TEST(Resilience, WiderGapShrinksWorstCaseCost) {
  // Same t, same f = t crash pattern: at n = 2t+1 the run needs the
  // fallback; at n = 3t+1 it stays in the cheap adaptive path.
  const std::uint32_t t = 3;
  adv::CrashAdversary a1(first_f(t)), a2(first_f(t));
  const auto tight = harness::run_weak_ba(
      RunSpec::for_t(t),
      std::vector<WireValue>(n_for_t(t), WireValue::plain(Value(8))),
      harness::always_valid_factory(), a1);
  const auto wide = harness::run_weak_ba(
      RunSpec::with(3 * t + 1, t),
      std::vector<WireValue>(3 * t + 1, WireValue::plain(Value(8))),
      harness::always_valid_factory(), a2);
  EXPECT_TRUE(tight.any_fallback());
  EXPECT_FALSE(wide.any_fallback());
  EXPECT_LT(wide.meter.words_correct, tight.meter.words_correct);
}

}  // namespace
}  // namespace mewc
