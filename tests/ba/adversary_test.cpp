// Direct mechanics tests for the adversary library: each strategy must do
// exactly what its protocol tests assume (verified via the message
// recorder rather than inferred from outcomes).
#include "ba/adversaries/adversaries.hpp"

#include <gtest/gtest.h>

#include <map>

#include "ba/adversaries/fuzzer.hpp"
#include "ba/harness.hpp"

namespace mewc {
namespace {

using harness::RunSpec;

/// Collects Byzantine traffic per (round, kind).
struct ByzProbe {
  std::map<std::string, std::uint32_t> kind_counts;
  std::map<ProcessId, std::uint32_t> sender_counts;
  std::uint32_t total = 0;

  harness::RunSpec attach(harness::RunSpec spec) {
    spec.recorder = [this](const Message& m, bool correct) {
      if (correct) return;
      ++kind_counts[m.body->kind()];
      ++sender_counts[m.from];
      ++total;
    };
    return spec;
  }
};

TEST(AdversaryMechanics, CrashVictimsNeverSend) {
  ByzProbe probe;
  auto spec = probe.attach(RunSpec::for_t(2));
  adv::CrashAdversary adv({1, 3});
  const auto res = harness::run_bb(spec, 0, Value(1), adv);
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(probe.total, 0u);  // crash = silence, not noise
}

TEST(AdversaryMechanics, EquivocatingSenderSendsBothSignedValues) {
  ByzProbe probe;
  auto spec = probe.attach(RunSpec::for_t(2));
  adv::BbEquivocatingSender adv(2, spec.instance,
                                adv::SenderMode::kEquivocate, Value(10),
                                Value(11));
  const auto res = harness::run_bb(spec, 2, Value(10), adv);
  EXPECT_TRUE(res.agreement());
  // One sender_value per process (n of them), all from the sender.
  EXPECT_EQ(probe.kind_counts["bb.sender_value"], spec.n - 1);  // no self
  EXPECT_EQ(probe.sender_counts.size(), 1u);
  EXPECT_EQ(probe.sender_counts.begin()->first, 2u);
}

TEST(AdversaryMechanics, PartialSenderReachesOnlyRequestedProcesses) {
  ByzProbe probe;
  auto spec = probe.attach(RunSpec::for_t(2));
  adv::BbEquivocatingSender adv(4, spec.instance, adv::SenderMode::kPartial,
                                Value(10), Value(0), /*reach=*/2);
  const auto res = harness::run_bb(spec, 4, Value(10), adv);
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(probe.kind_counts["bb.sender_value"], 2u);
}

TEST(AdversaryMechanics, CertSplitEmitsTheExpectedCertificates) {
  ByzProbe probe;
  auto spec = probe.attach(RunSpec::for_t(2));
  adv::WbaCertSplit adv(spec.instance, 1, WireValue::plain(Value(7)), 0, 1);
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(3))),
      harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.agreement());
  // Leader's phase: one propose broadcast (n-1 link crossings), one commit
  // broadcast, exactly ONE finalize unicast.
  EXPECT_EQ(probe.kind_counts["wba.propose"], spec.n - 1);
  EXPECT_EQ(probe.kind_counts["wba.commit"], spec.n - 1);
  EXPECT_EQ(probe.kind_counts["wba.finalized"], 1u);
}

TEST(AdversaryMechanics, HelpSpamSendsOnlyInTheHelpWindow) {
  ByzProbe probe;
  auto spec = probe.attach(RunSpec::for_t(3));
  const Round help_round = 5 * spec.n + 1;
  adv::WbaHelpSpam adv(spec.instance, help_round, 2, false, 0);
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(3))),
      harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(probe.kind_counts["wba.help_req"], 2u * (spec.n - 1));
  EXPECT_EQ(probe.kind_counts.size(), 1u);  // nothing else, ever
}

TEST(AdversaryMechanics, FuzzerEmitsConfiguredVolume) {
  ByzProbe probe;
  auto spec = probe.attach(RunSpec::for_t(2));
  adv::Fuzzer adv(spec.instance, 5, /*corruptions=*/1,
                  /*messages_per_round=*/2);
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(3))),
      harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.agreement());
  // 2 messages per round, mixed unicast/broadcast: at least 2 link
  // crossings per round, at most 2n.
  EXPECT_GE(probe.total, 2u * res.rounds);
  EXPECT_LE(probe.total, 2u * res.rounds * spec.n);
}

TEST(AdversaryMechanics, CompositeRunsAllParts) {
  ByzProbe probe;
  auto spec = probe.attach(RunSpec::for_t(3));
  std::vector<std::unique_ptr<Adversary>> parts;
  parts.push_back(std::make_unique<adv::BbEquivocatingSender>(
      0, spec.instance, adv::SenderMode::kEquivocate, Value(1), Value(2)));
  parts.push_back(std::make_unique<adv::CrashAdversary>(
      std::vector<ProcessId>{5}));
  adv::Composite adv(std::move(parts));
  const auto res = harness::run_bb(spec, 0, Value(1), adv);
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.f(), 2u);  // both strategies corrupted their victims
  EXPECT_GT(probe.kind_counts["bb.sender_value"], 0u);
}

TEST(AdversaryMechanics, AdaptiveLeaderCrashRespectsBudgetAcrossPhases) {
  auto spec = RunSpec::for_t(4);  // n = 9
  adv::AdaptiveLeaderCrash adv(1, 5, spec.n, /*budget=*/3);
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(3))),
      harness::always_valid_factory(), adv);
  EXPECT_EQ(res.f(), 3u);
  EXPECT_EQ(res.corrupted, (std::vector<ProcessId>{0, 1, 2}));
}

}  // namespace
}  // namespace mewc
