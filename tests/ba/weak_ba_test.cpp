// Adaptive weak BA (Algorithms 3 + 4): agreement, termination, unique
// validity, commit-level safety, silent phases, the help round and the
// fallback cascade, under the full adversary library.
#include "ba/weak_ba/weak_ba.hpp"

#include <gtest/gtest.h>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"

namespace mewc {
namespace {

using harness::RunSpec;

std::vector<WireValue> uniform_inputs(std::uint32_t n, std::uint64_t raw) {
  return std::vector<WireValue>(n, WireValue::plain(Value(raw)));
}

std::vector<WireValue> indexed_inputs(std::uint32_t n) {
  std::vector<WireValue> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(WireValue::plain(Value(100 + i)));
  }
  return out;
}

TEST(WeakBa, FailureFreeDecidesInFirstPhase) {
  auto spec = RunSpec::for_t(2);
  adv::NullAdversary adv;
  const auto res = harness::run_weak_ba(spec, indexed_inputs(5),
                                        harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  // Phase 1's leader is p0; its proposal is everyone's decision.
  EXPECT_EQ(res.decision().value, Value(100));
  for (const auto& s : res.stats) {
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->decided_phase, 1u);
  }
  EXPECT_FALSE(res.any_fallback());
  EXPECT_EQ(res.help_reqs_sent(), 0u);
  EXPECT_EQ(res.nonsilent_leaders(), 1u);  // only p0 spoke
}

TEST(WeakBa, CrashedFirstLeadersAreSkippedSilently) {
  // n = 11: the adaptive boundary is f <= 2, so two crashed leaders keep
  // the run in the adaptive regime (at n = 7 it would already fall back).
  auto spec = RunSpec::for_t(5);
  ASSERT_TRUE(adaptive_regime(spec.n, spec.t, 2));
  adv::CrashAdversary adv({0, 1});
  const auto res = harness::run_weak_ba(spec, indexed_inputs(spec.n),
                                        harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  // Phases 1-2 are dead; p2's phase decides with p2's input.
  EXPECT_EQ(res.decision().value, Value(102));
  EXPECT_FALSE(res.any_fallback());
  EXPECT_EQ(res.nonsilent_leaders(), 1u);
}

TEST(WeakBa, AdaptiveRegimeNeverFallsBack) {
  // Lemma 6: f below the quorum boundary => the fallback never runs.
  for (std::uint32_t f = 0; f <= 2; ++f) {
    auto spec = RunSpec::for_t(5);  // n = 11, quorum 9, boundary f < 3
    ASSERT_TRUE(adaptive_regime(spec.n, spec.t, f));
    std::vector<ProcessId> victims;
    for (std::uint32_t i = 0; i < f; ++i) victims.push_back(i);
    adv::CrashAdversary adv(victims);
    const auto res = harness::run_weak_ba(
        spec, indexed_inputs(11), harness::always_valid_factory(), adv);
    EXPECT_TRUE(res.all_decided()) << "f=" << f;
    EXPECT_TRUE(res.agreement()) << "f=" << f;
    EXPECT_FALSE(res.any_fallback()) << "f=" << f;
    EXPECT_EQ(res.help_reqs_sent(), 0u) << "f=" << f;
  }
}

TEST(WeakBa, MaximalCrashTriggersFallbackAndStillAgrees) {
  auto spec = RunSpec::for_t(3);  // n = 7
  adv::CrashAdversary adv({0, 1, 2});
  ASSERT_FALSE(adaptive_regime(spec.n, spec.t, 3));
  const auto res = harness::run_weak_ba(spec, uniform_inputs(7, 55),
                                        harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_TRUE(res.any_fallback());
  // Unanimous valid inputs: the fallback preserves them (Lemma 22's
  // contrapositive — ⊥ would require a second valid value).
  EXPECT_EQ(res.decision().value, Value(55));
}

TEST(WeakBa, MaximalCrashMixedInputsDecideValidOrBottom) {
  auto spec = RunSpec::for_t(3);
  adv::CrashAdversary adv({4, 5, 6});
  const auto res = harness::run_weak_ba(spec, indexed_inputs(7),
                                        harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  // Unique validity: the decision is a valid value or ⊥ (and here several
  // valid values exist, so ⊥ is permitted).
  const WireValue d = res.decision();
  EXPECT_TRUE(d.is_bottom() || AlwaysValid{}.validate(d));
}

TEST(WeakBa, CertSplitCreatesEarlyDeciderThenHeals) {
  // Byzantine phase-1 leader finalizes for a single correct process; the
  // next correct leader's phase must re-commit the same value via the
  // commit-info echo (Lemma 15 mechanics) so everyone agrees with the early
  // decider.
  auto spec = RunSpec::for_t(2);  // n = 5, quorum 4
  adv::WbaCertSplit adv(spec.instance, 1, WireValue::plain(Value(777)),
                        /*extra_corruptions=*/0, /*finalize_recipients=*/1);
  const auto res = harness::run_weak_ba(spec, indexed_inputs(5),
                                        harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision().value, Value(777));
  // p1 decided in phase 1 off the Byzantine finalize certificate.
  ASSERT_TRUE(res.stats[1].has_value());
  EXPECT_EQ(res.stats[1]->decided_phase, 1u);
}

TEST(WeakBa, HelpRoundRescuesStrandedProcesses) {
  // CertSplit plus two extra silent corruptions: quorums are dead after
  // phase 1, so the one early decider is the only decider and must rescue
  // everyone else through the help round — without any fallback.
  auto spec = RunSpec::for_t(3);  // n = 7, quorum 6
  adv::WbaCertSplit adv(spec.instance, 1, WireValue::plain(Value(888)),
                        /*extra_corruptions=*/2, /*finalize_recipients=*/1);
  const auto res = harness::run_weak_ba(spec, indexed_inputs(7),
                                        harness::always_valid_factory(), adv);
  EXPECT_EQ(res.f(), 3u);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision().value, Value(888));
  EXPECT_FALSE(res.any_fallback());       // < t+1 help requests
  EXPECT_EQ(res.help_reqs_sent(), 3u);    // the three stranded processes
}

TEST(WeakBa, HelpSpamForcesAnswersButNotDisagreement) {
  // Everyone decides in phase 1; one Byzantine process then spams help_req
  // (silent-from-setup spammers count toward f, so stay within the
  // adaptive boundary). Decided processes answer (the O(nf) cost) and
  // nothing else changes.
  auto spec = RunSpec::for_t(3);
  const Round help_round = 5 * spec.n + 1;
  adv::WbaHelpSpam adv(spec.instance, help_round, /*corruptions=*/1,
                       /*form_certificate=*/false, 0);
  const auto res = harness::run_weak_ba(spec, indexed_inputs(7),
                                        harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_FALSE(res.any_fallback());
  // Help answers are unicasts from each decided process to each spammer.
  EXPECT_GT(res.meter.words_in_rounds(help_round + 1, help_round + 2), 0u);
}

TEST(WeakBa, ByzantineFallbackCertificateDragsEveryoneIn) {
  // The adversary mints a fallback certificate (its own t partials plus one
  // stolen correct help_req) and reveals it to one process: the echo rule
  // (Alg 3 line 22) must pull every correct process into A_fallback and
  // agreement must survive.
  auto spec = RunSpec::for_t(3);  // n = 7
  const Round help_round = 5 * spec.n + 1;
  // Strand some processes first so a correct help_req exists: corrupt the
  // phase-1 leader path via cert split with extras (2 corruptions), plus
  // one spammer = 3 = t total.
  std::vector<std::unique_ptr<Adversary>> parts;
  parts.push_back(std::make_unique<adv::WbaCertSplit>(
      spec.instance, 1, WireValue::plain(Value(99)), 1, 1));
  parts.push_back(std::make_unique<adv::WbaHelpSpam>(
      spec.instance, help_round, 1, /*form_certificate=*/true,
      /*cert_recipients=*/1));
  adv::Composite adv(std::move(parts));
  const auto res = harness::run_weak_ba(spec, indexed_inputs(7),
                                        harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision().value, Value(99));
}

TEST(WeakBa, AdaptiveLeaderCrashMaximizesNonsilentPhasesButAgrees) {
  auto spec = RunSpec::for_t(4);  // n = 9, quorum 7, boundary f < 3
  adv::AdaptiveLeaderCrash adv(1, 5, spec.n, /*budget=*/2);
  const auto res = harness::run_weak_ba(spec, indexed_inputs(9),
                                        harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_FALSE(res.any_fallback());
  // Leaders p0 and p1 were corrupted just in time; p2 decides the run.
  EXPECT_EQ(res.decision().value, Value(102));
}

TEST(WeakBa, UniqueValidityWithUnforgeablePredicate) {
  // Section 3's example predicate: values need t+1 input attestations. All
  // correct processes attest only v, so the adversary cannot mint a second
  // valid value, and even a maximal crash must decide v — never ⊥.
  auto spec = RunSpec::for_t(2);  // n = 5
  ThresholdFamily mint(spec.n, spec.t, spec.backend, spec.seed);
  std::vector<PartialSig> ps;
  for (ProcessId p = 0; p < spec.t + 1; ++p) {
    ps.push_back(mint.scheme(spec.t + 1).issue_share(p).partial_sign(
        input_attestation_digest(spec.instance, Value(5))));
  }
  auto qc = mint.scheme(spec.t + 1).combine(ps);
  ASSERT_TRUE(qc.has_value());
  const WireValue attested = WireValue::certified(Value(5), *qc);

  harness::PredicateFactory factory = [](const ThresholdFamily& fam,
                                         std::uint64_t instance) {
    return std::make_shared<const InputCertified>(fam, instance);
  };
  adv::CrashAdversary adv({0, 1});  // f = t: forces the fallback
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, attested), factory, adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision().value, Value(5));
  EXPECT_FALSE(res.decision().is_bottom());
}

TEST(WeakBa, DecidedPhaseLeadersStaySilent) {
  // After phase 1 decides, every later correct leader's phase is silent:
  // exactly one non-silent leader in a failure-free run.
  auto spec = RunSpec::for_t(4);
  adv::NullAdversary adv;
  const auto res = harness::run_weak_ba(spec, indexed_inputs(9),
                                        harness::always_valid_factory(), adv);
  EXPECT_EQ(res.nonsilent_leaders(), 1u);
  // And the phase window after phase 1 carries zero correct words.
  EXPECT_EQ(res.meter.words_in_rounds(6, 5 * spec.n + 1), 0u);
}

TEST(WeakBa, RoundScheduleIsExact) {
  auto spec = RunSpec::for_t(1);  // n = 3, t = 1
  EXPECT_EQ(wba::WeakBaProcess::total_rounds(3, 1), 5u * 3 + 4 + 2);
  EXPECT_EQ(wba::WeakBaProcess::leader_of(1, 3), 0u);
  EXPECT_EQ(wba::WeakBaProcess::leader_of(3, 3), 2u);
  EXPECT_EQ(wba::WeakBaProcess::leader_of(4, 3), 0u);
  (void)spec;
}

}  // namespace
}  // namespace mewc
