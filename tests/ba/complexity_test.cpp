// Communication-complexity envelope tests: the Table 1 bounds, asserted as
// hard envelopes on metered words (benches measure the curves; these tests
// pin the asymptotic shape so regressions fail loudly).
#include <gtest/gtest.h>

#include "ba/adversaries/adversaries.hpp"
#include "ba/fallback/cost_model.hpp"
#include "ba/harness.hpp"
#include "common/stats.hpp"

namespace mewc {
namespace {

using harness::RunSpec;

std::vector<ProcessId> first_f(std::uint32_t f) {
  std::vector<ProcessId> v;
  for (std::uint32_t i = 0; i < f; ++i) v.push_back(i);
  return v;
}

// ---------------------------------------------------------------------------
// BB: O(n(f+1)) in the adaptive regime; O(n) when failure-free.
// ---------------------------------------------------------------------------

TEST(Complexity, BbFailureFreeIsLinear) {
  for (std::uint32_t t : {2u, 5u, 10u, 20u}) {
    auto spec = RunSpec::for_t(t);
    adv::NullAdversary adv;
    const auto res = harness::run_bb(spec, 0, Value(1), adv);
    ASSERT_TRUE(res.agreement());
    // Dissemination (n-1 x 2 words) + one weak-BA phase (4 leader rounds of
    // <= 3-word messages) + self-costs: comfortably under 16n.
    EXPECT_LE(res.meter.words_correct, 16ull * spec.n) << "t=" << t;
  }
}

TEST(Complexity, BbAdaptiveEnvelope) {
  // Words <= C * n * (f+1) across the adaptive regime, C fixed across n and
  // f — the paper's O(n(f+1)) with an explicit constant.
  constexpr std::uint64_t kC = 30;
  for (std::uint32_t t : {4u, 8u, 12u}) {
    auto spec = RunSpec::for_t(t);
    const std::uint32_t boundary = spec.n - commit_quorum(spec.n, spec.t);
    for (std::uint32_t f = 0; f <= boundary; f += 2) {
      adv::CrashAdversary adv(first_f(f));
      const auto res = harness::run_bb(spec, spec.n - 1, Value(3), adv);
      ASSERT_TRUE(res.agreement()) << "t=" << t << " f=" << f;
      EXPECT_LE(res.meter.words_correct, kC * spec.n * (f + 1))
          << "t=" << t << " f=" << f;
    }
  }
}

TEST(Complexity, BbNonsilentPhasesLinearInF) {
  // Section 5.1: after the first non-silent correct-leader phase, all later
  // correct phases are silent, so non-silent leaders <= f + 1.
  for (std::uint32_t f : {0u, 2u, 4u}) {
    auto spec = RunSpec::for_t(6);  // n = 13
    adv::CrashAdversary adv(first_f(f));  // crash the first f leaders
    const auto res = harness::run_bb(spec, spec.n - 1, Value(3), adv);
    ASSERT_TRUE(res.agreement());
    EXPECT_LE(res.nonsilent_leaders(), f + 1) << "f=" << f;
  }
}

// ---------------------------------------------------------------------------
// Weak BA: O(n(f+1)) in the adaptive regime; fallback only beyond it.
// ---------------------------------------------------------------------------

TEST(Complexity, WeakBaAdaptiveEnvelope) {
  constexpr std::uint64_t kC = 30;
  for (std::uint32_t t : {4u, 8u, 12u}) {
    auto spec = RunSpec::for_t(t);
    const std::uint32_t boundary = spec.n - commit_quorum(spec.n, spec.t);
    for (std::uint32_t f = 0; f <= boundary; f += 2) {
      adv::CrashAdversary adv(first_f(f));
      const auto res = harness::run_weak_ba(
          spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(2))),
          harness::always_valid_factory(), adv);
      ASSERT_TRUE(res.agreement()) << "t=" << t << " f=" << f;
      EXPECT_FALSE(res.any_fallback()) << "t=" << t << " f=" << f;
      EXPECT_LE(res.meter.words_correct, kC * spec.n * (f + 1))
          << "t=" << t << " f=" << f;
    }
  }
}

TEST(Complexity, WeakBaWorstCaseLeaderKiller) {
  // The adaptive adversary corrupts each upcoming leader just in time:
  // every corrupted leader burns one silent phase, and the envelope must
  // still hold with f+1 non-silent phases.
  auto spec = RunSpec::for_t(10);  // n = 21, boundary f < ~5
  const std::uint32_t f = 4;
  adv::AdaptiveLeaderCrash adv(1, 5, spec.n, f);
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(2))),
      harness::always_valid_factory(), adv);
  ASSERT_TRUE(res.agreement());
  EXPECT_FALSE(res.any_fallback());
  EXPECT_LE(res.meter.words_correct, 30ull * spec.n * (f + 1));
}

TEST(Complexity, SilentPhasesCostNothing) {
  // A silent phase sends zero correct words: phases 2..n in a failure-free
  // run are completely quiet.
  auto spec = RunSpec::for_t(8);
  adv::NullAdversary adv;
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(2))),
      harness::always_valid_factory(), adv);
  EXPECT_EQ(res.meter.words_in_rounds(6, 5 * spec.n + 1), 0u);
}

// ---------------------------------------------------------------------------
// Strong BA (Algorithm 5): O(n) at f = 0, fallback otherwise.
// ---------------------------------------------------------------------------

TEST(Complexity, StrongBaFailureFreeExactlyFourLeaderRounds) {
  auto spec = RunSpec::for_t(10);  // n = 21
  adv::NullAdversary adv;
  const auto res =
      harness::run_strong_ba(spec, std::vector<Value>(spec.n, Value(1)), adv);
  ASSERT_TRUE(res.all_fast());
  // Rounds 1-4 carry all traffic; rounds 5+ (fallback machinery) are quiet.
  EXPECT_GT(res.meter.words_in_rounds(1, 5), 0u);
  EXPECT_EQ(res.meter.words_in_rounds(5, res.rounds + 1), 0u);
  EXPECT_LE(res.meter.words_correct, 10ull * spec.n);
}

TEST(Complexity, StrongBaLinearScalingAtFZero) {
  // Doubling n must roughly double the failure-free cost (not quadruple):
  // the words/n ratio stays within a tight band.
  adv::NullAdversary adv;
  auto words_at = [&](std::uint32_t t) {
    auto spec = RunSpec::for_t(t);
    const auto res = harness::run_strong_ba(
        spec, std::vector<Value>(spec.n, Value(0)), adv);
    return static_cast<double>(res.meter.words_correct) / spec.n;
  };
  const double small = words_at(5), large = words_at(20);
  EXPECT_LT(large / small, 1.5);  // per-process cost is flat in n
}

// ---------------------------------------------------------------------------
// Dolev-Reischuk separation (E8): logical signatures vs words at f = 0.
// ---------------------------------------------------------------------------

TEST(Complexity, SignatureWordSeparationFailureFree) {
  // The paper's starting point: Omega(nt) signatures are inevitable, but
  // threshold certificates pack them into O(n) words. Our failure-free BB
  // transfers Theta(n*t) logical signatures in Theta(n) words.
  auto spec = RunSpec::for_t(15);  // n = 31
  adv::NullAdversary adv;
  const auto res = harness::run_bb(spec, 0, Value(1), adv);
  ASSERT_TRUE(res.agreement());
  const std::uint64_t nt =
      static_cast<std::uint64_t>(spec.n) * commit_quorum(spec.n, spec.t);
  EXPECT_GE(res.meter.logical_sigs_correct, nt / 2);  // Theta(nt) transferred
  EXPECT_LE(res.meter.words_correct, 16ull * spec.n); // in Theta(n) words
}

// ---------------------------------------------------------------------------
// Baseline comparisons: who wins, by what factor.
// ---------------------------------------------------------------------------

TEST(Complexity, AdaptiveBbBeatsDolevStrongFailureFree) {
  auto spec = RunSpec::for_t(10);  // n = 21
  adv::NullAdversary adv1, adv2;
  const auto adaptive = harness::run_bb(spec, 0, Value(1), adv1);
  const auto classic = harness::run_ds_bb(spec, 0, Value(1), adv2);
  ASSERT_TRUE(adaptive.agreement());
  ASSERT_TRUE(classic.agreement());
  // Θ(n) vs Θ(n^2): at n = 21 the adaptive protocol must win by a wide
  // margin (the paper's Table 1 separation).
  EXPECT_LT(adaptive.meter.words_correct * 3, classic.meter.words_correct);
}

TEST(Complexity, ModeledFallbackCostIsQuadratic) {
  EXPECT_EQ(fallback::modeled_momose_ren_words(10), 1200u);
  EXPECT_EQ(fallback::modeled_momose_ren_words(20) /
                fallback::modeled_momose_ren_words(10),
            4u);
}

// ---------------------------------------------------------------------------
// Growth-order fits: the measured exponents of words-vs-n curves must match
// the Table 1 orders (linear adaptive protocols, quadratic Dolev-Strong
// baseline, cubic substituted fallback).
// ---------------------------------------------------------------------------

TEST(GrowthOrder, WeakBaFailureFreeIsLinearInN) {
  std::vector<double> ns, words;
  for (std::uint32_t t : {5u, 10u, 20u, 40u}) {
    auto spec = RunSpec::for_t(t);
    adv::NullAdversary adv;
    const auto res = harness::run_weak_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(2))),
        harness::always_valid_factory(), adv);
    ns.push_back(spec.n);
    words.push_back(static_cast<double>(res.meter.words_correct));
  }
  const auto fit = stats::fit_power_law(ns, words);
  EXPECT_NEAR(fit.slope, 1.0, 0.1) << "words ~ n^" << fit.slope;
  EXPECT_GT(fit.r2, 0.999);
}

TEST(GrowthOrder, DolevStrongBaselineIsQuadraticInN) {
  std::vector<double> ns, words;
  for (std::uint32_t t : {5u, 10u, 20u}) {
    auto spec = RunSpec::for_t(t);
    adv::NullAdversary adv;
    const auto res = harness::run_ds_bb(spec, 0, Value(1), adv);
    ns.push_back(spec.n);
    words.push_back(static_cast<double>(res.meter.words_correct));
  }
  const auto fit = stats::fit_power_law(ns, words);
  EXPECT_NEAR(fit.slope, 2.0, 0.25) << "words ~ n^" << fit.slope;
}

TEST(GrowthOrder, SubstitutedFallbackIsCubicInN) {
  std::vector<double> ns, words;
  for (std::uint32_t t : {2u, 5u, 10u}) {
    auto spec = RunSpec::for_t(t);
    adv::NullAdversary adv;
    const auto res = harness::run_fallback_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(1))),
        adv);
    ns.push_back(spec.n);
    words.push_back(static_cast<double>(res.meter.words_correct));
  }
  const auto fit = stats::fit_power_law(ns, words);
  EXPECT_NEAR(fit.slope, 3.0, 0.25) << "words ~ n^" << fit.slope;
}

TEST(GrowthOrder, WeakBaKillerSweepIsLinearInF) {
  // Mid-phase leader killer: words as a function of f fit a line with
  // positive slope and excellent r^2 — O(n(f+1)) observed as a curve.
  auto spec = RunSpec::for_t(10);  // n = 21
  std::vector<double> fs, words;
  for (std::uint32_t f = 0; f <= 5; ++f) {
    adv::AdaptiveLeaderCrash adv(3, 5, spec.n, f);
    const auto res = harness::run_weak_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(2))),
        harness::always_valid_factory(), adv);
    ASSERT_FALSE(res.any_fallback());
    fs.push_back(res.f());
    words.push_back(static_cast<double>(res.meter.words_correct));
  }
  const auto fit = stats::fit_linear(fs, words);
  EXPECT_GT(fit.slope, spec.n);       // each failure costs at least n words
  EXPECT_LT(fit.slope, 10.0 * spec.n);
  EXPECT_GT(fit.r2, 0.99);
}

// ---------------------------------------------------------------------------
// Early stopping: rounds-to-decision adapts to f even though the static
// schedule is Θ(n) rounds (the Section 4 "early stopping" discussion).
// ---------------------------------------------------------------------------

TEST(EarlyStopping, WeakBaDecisionRoundTracksF) {
  auto spec = RunSpec::for_t(10);
  for (std::uint32_t f = 0; f <= 4; f += 2) {
    adv::AdaptiveLeaderCrash adv(3, 5, spec.n, f);
    const auto res = harness::run_weak_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(2))),
        harness::always_valid_factory(), adv);
    for (const auto& s : res.stats) {
      if (!s) continue;
      ASSERT_TRUE(s->decided);
      // Decision lands at the end of phase f+1: round 5(f+1).
      EXPECT_EQ(s->decided_round, 5u * (f + 1)) << "f=" << f;
    }
  }
}

TEST(EarlyStopping, StrongBaFastPathDecidesInRoundFour) {
  auto spec = RunSpec::for_t(5);
  adv::NullAdversary adv;
  const auto res =
      harness::run_strong_ba(spec, std::vector<Value>(spec.n, Value(1)), adv);
  for (const auto& s : res.stats) {
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->decided_round, 4u);
  }
}

TEST(EarlyStopping, BbFailureFreeDecidesInFirstWbaPhase) {
  auto spec = RunSpec::for_t(5);
  adv::NullAdversary adv;
  const auto res = harness::run_bb(spec, 0, Value(1), adv);
  const Round wba_first = 1 + 3 * spec.n + 1;
  for (const auto& s : res.stats) {
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->decided_round, wba_first - 1 + 5);  // end of wba phase 1
  }
}

}  // namespace
}  // namespace mewc
