// Failure injection: every protocol must keep its invariants under a
// Byzantine traffic fuzzer that floods random malformed, forged, replayed
// and type-confused messages every round.
#include "ba/adversaries/fuzzer.hpp"

#include <gtest/gtest.h>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"

namespace mewc {
namespace {

using harness::RunSpec;

struct FuzzParam {
  std::uint32_t t;
  std::uint32_t corruptions;
  std::uint64_t seed;
};

std::vector<FuzzParam> fuzz_grid() {
  std::vector<FuzzParam> out;
  for (std::uint32_t t : {2u, 3u, 5u}) {
    for (std::uint32_t c : {1u, 2u}) {
      for (std::uint64_t seed : {101u, 202u, 303u}) {
        out.push_back({t, c, seed});
      }
    }
  }
  return out;
}

std::string fuzz_name(const ::testing::TestParamInfo<FuzzParam>& info) {
  return "t" + std::to_string(info.param.t) + "_c" +
         std::to_string(info.param.corruptions) + "_s" +
         std::to_string(info.param.seed);
}

class FuzzSweep : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(FuzzSweep, WeakBaSurvivesFuzzing) {
  const auto [t, c, seed] = GetParam();
  auto spec = RunSpec::for_t(t);
  adv::Fuzzer adv(spec.instance, seed, c, /*messages_per_round=*/4);
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(5))),
      harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  // A corrupted phase leader may legitimately get its own (random) proposal
  // decided — AlwaysValid admits any non-bottom value — so the assertable
  // invariant is unique validity: the decision is a valid value or ⊥.
  const WireValue d = res.decision();
  EXPECT_TRUE(d.is_bottom() || AlwaysValid{}.validate(d));
}

TEST_P(FuzzSweep, BbWithCorrectSenderSurvivesFuzzing) {
  const auto [t, c, seed] = GetParam();
  auto spec = RunSpec::for_t(t);
  const ProcessId sender = 0;
  adv::Fuzzer adv(spec.instance, seed, c, 4, /*spare=*/sender);
  const auto res = harness::run_bb(spec, sender, Value(77), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  // BB validity with a correct sender is unconditional: whatever the
  // fuzzer does, the decision is the sender's value.
  EXPECT_EQ(res.decision(), Value(77));
}

TEST_P(FuzzSweep, StrongBaSurvivesFuzzing) {
  const auto [t, c, seed] = GetParam();
  auto spec = RunSpec::for_t(t);
  adv::Fuzzer adv(spec.instance, seed, c, 4);
  const auto res = harness::run_strong_ba(
      spec, std::vector<Value>(spec.n, Value(1)), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(1));  // strong unanimity under fuzzing
}

TEST_P(FuzzSweep, FallbackBaSurvivesFuzzing) {
  const auto [t, c, seed] = GetParam();
  auto spec = RunSpec::for_t(t);
  adv::Fuzzer adv(spec.instance, seed, c, 4);
  const auto res = harness::run_fallback_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(9))), adv);
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision().value, Value(9));
}

TEST_P(FuzzSweep, FuzzPlusCrashComposition) {
  const auto [t, c, seed] = GetParam();
  if (c + 1 > t) GTEST_SKIP();
  auto spec = RunSpec::for_t(t);
  std::vector<std::unique_ptr<Adversary>> parts;
  parts.push_back(std::make_unique<adv::Fuzzer>(spec.instance, seed, c, 3,
                                                /*spare=*/0));
  parts.push_back(std::make_unique<adv::CrashAdversary>(
      std::vector<ProcessId>{static_cast<ProcessId>(spec.n - 1)}));
  adv::Composite adv(std::move(parts));
  const auto res = harness::run_bb(spec, 0, Value(11), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(11));
}

INSTANTIATE_TEST_SUITE_P(Grid, FuzzSweep, ::testing::ValuesIn(fuzz_grid()),
                         fuzz_name);

}  // namespace
}  // namespace mewc
