// Failure injection, expressed as campaign grids over the check:: engine:
// every protocol must keep its invariants under a Byzantine traffic fuzzer
// that floods random malformed, forged, replayed and type-confused messages
// every round. Each cell runs the full default checker stack, so fuzzing is
// checked against agreement, validity, termination, the word budget and
// certificate well-formedness at once — including general resilience
// n > 2t+1, which the old hand-rolled loops never reached.
#include <gtest/gtest.h>

#include "check/campaign.hpp"

namespace mewc {
namespace {

std::string failure_label(const check::CampaignReport& report) {
  const auto* f = report.first_failure();
  if (f == nullptr) return {};
  std::string out = f->cell.label();
  for (const auto& v : f->violations) {
    out += "\n  [" + v.checker + "] " + v.detail;
  }
  return out;
}

void expect_all_pass(const check::GridSpec& grid) {
  const auto report = check::run_campaign(grid);
  ASSERT_GT(report.cells_total, 0u);
  EXPECT_EQ(report.cells_passed, report.cells_total) << failure_label(report);
}

TEST(FuzzSweep, AllProtocolsSurviveFuzzing) {
  check::GridSpec grid;
  grid.protocols = check::all_protocols();
  grid.sizes = {{0, 2}, {0, 3}, {0, 5}};
  grid.fs = {1, 2};  // fuzzer corruption budget
  grid.adversaries = {"fuzz"};
  grid.seeds = {101, 202, 303};
  expect_all_pass(grid);
}

TEST(FuzzSweep, WideSystemsSurviveFuzzing) {
  // General resilience n > 2t+1: extra correct processes must not open new
  // attack surface for forged traffic.
  check::GridSpec grid;
  grid.protocols = {check::Protocol::kBb, check::Protocol::kWeakBa,
                    check::Protocol::kStrongBa};
  grid.sizes = {{9, 2}, {13, 3}};
  grid.fs = {1, 2};
  grid.adversaries = {"fuzz"};
  grid.seeds = {101, 202};
  expect_all_pass(grid);
}

TEST(FuzzSweep, FuzzPlusCrashComposition) {
  // Composite adversary: f-1 fuzzed processes plus a crashed one. Needs
  // f >= 2 to compose both parts within the corruption budget.
  check::GridSpec grid;
  grid.protocols = check::all_protocols();
  grid.sizes = {{0, 2}, {0, 3}, {0, 5}};
  grid.fs = {2, 3};
  grid.adversaries = {"fuzz-crash"};
  grid.seeds = {101, 202, 303};
  expect_all_pass(grid);
}

TEST(FuzzSweep, FuzzingUnderCodecRoundTrip) {
  // Forged bytes must not confuse the codec path either: every message is
  // encoded and decoded before dispatch.
  check::GridSpec grid;
  grid.protocols = check::all_protocols();
  grid.sizes = {{0, 2}};
  grid.fs = {1, 2};
  grid.adversaries = {"fuzz"};
  grid.seeds = {7, 8};
  grid.codec_roundtrip = true;
  expect_all_pass(grid);
}

}  // namespace
}  // namespace mewc
