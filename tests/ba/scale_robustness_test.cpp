// Scale smoke tests (n up to 101) and graceful-degradation checks for
// out-of-contract inputs.
#include <gtest/gtest.h>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"
#include "smr/ledger.hpp"

namespace mewc {
namespace {

using harness::RunSpec;

TEST(Scale, WeakBaAtHundredProcesses) {
  auto spec = RunSpec::for_t(50);  // n = 101
  adv::CrashAdversary adv({0, 1});
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(3))),
      harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_FALSE(res.any_fallback());
  EXPECT_EQ(res.decision().value, Value(3));
  // Adaptive bill at scale: well under the worst case.
  EXPECT_LE(res.meter.words_correct, 30ull * spec.n * 3);
}

TEST(Scale, BbAtHundredProcessesFailureFree) {
  auto spec = RunSpec::for_t(50);
  adv::NullAdversary adv;
  const auto res = harness::run_bb(spec, 100, Value(9), adv);
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(9));
  EXPECT_LE(res.meter.words_correct, 16ull * spec.n);
}

TEST(Scale, StrongBaAtTwoHundredProcesses) {
  auto spec = RunSpec::for_t(100);  // n = 201
  adv::NullAdversary adv;
  const auto res =
      harness::run_strong_ba(spec, std::vector<Value>(spec.n, Value(1)), adv);
  EXPECT_TRUE(res.all_fast());
  EXPECT_LE(res.meter.words_correct, 10ull * spec.n);
}

TEST(Scale, LeaderKillerAtScaleStaysLinear) {
  auto spec = RunSpec::for_t(40);  // n = 81, boundary f <= 20
  const std::uint32_t f = 10;
  adv::AdaptiveLeaderCrash adv(3, 5, spec.n, f);
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(3))),
      harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.agreement());
  EXPECT_FALSE(res.any_fallback());
  EXPECT_LE(res.meter.words_correct, 30ull * spec.n * (f + 1));
}

TEST(Robustness, WeakBaWithPredicateInvalidInputsStillTerminates) {
  // Out of contract: the paper's precondition is that correct processes
  // propose valid values. Violate it (a predicate nothing satisfies is
  // simulated by proposing ⊥ under AlwaysValid): nobody can ever vote, so
  // the run must flow through help/fallback and still agree — on ⊥.
  auto spec = RunSpec::for_t(2);
  adv::NullAdversary adv;
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, bottom_value()),
      harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_TRUE(res.decision().is_bottom());
  EXPECT_TRUE(res.any_fallback());
}

TEST(Robustness, MixedValidityInputsDegradeGracefully) {
  // Some processes propose valid values, others ⊥: phases led by
  // ⊥-holders cannot certify, valid-holders' phases can.
  auto spec = RunSpec::for_t(2);
  std::vector<WireValue> inputs = {bottom_value(), WireValue::plain(Value(4)),
                                   bottom_value(), WireValue::plain(Value(5)),
                                   bottom_value()};
  adv::NullAdversary adv;
  const auto res = harness::run_weak_ba(spec, inputs,
                                        harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  // p0's ⊥ phase fails; p1's phase certifies 4.
  EXPECT_EQ(res.decision().value, Value(4));
}

TEST(Robustness, ApiMisuseAborts) {
  // The library refuses nonsensical configurations loudly.
  EXPECT_DEATH(ThresholdFamily(4, 2), "2t");          // n < 2t+1
  EXPECT_DEATH((void)harness::RunSpec::with(4, 2), ""); // same via harness
  EXPECT_DEATH(
      {
        smr::Ledger::Config c;
        c.n = 3;
        c.t = 2;
        smr::Ledger ledger(c);
      },
      "");
}

TEST(Robustness, SenderIndexOutOfRangeAborts) {
  ThresholdFamily family(5, 2);
  KeyBundle bundle = family.issue_bundle(0);
  ProtocolContext ctx;
  ctx.id = 0;
  ctx.n = 5;
  ctx.t = 2;
  ctx.crypto = &family;
  ctx.keys = &bundle;
  EXPECT_DEATH(bb::BbProcess(ctx, /*sender=*/7, Value(1)), "");
}

}  // namespace
}  // namespace mewc
