// Strong binary BA (Algorithm 5): the failure-free fast path, strong
// unanimity and agreement across leader misbehaviour and crashes, and the
// fallback cascade with the 2δ window adoption.
#include "ba/strong_ba/strong_ba.hpp"

#include <gtest/gtest.h>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"

namespace mewc {
namespace {

using harness::RunSpec;

std::vector<Value> binary_inputs(std::initializer_list<int> bits) {
  std::vector<Value> out;
  for (int b : bits) out.push_back(Value(static_cast<std::uint64_t>(b)));
  return out;
}

std::vector<Value> uniform_bits(std::uint32_t n, int b) {
  return std::vector<Value>(n, Value(static_cast<std::uint64_t>(b)));
}

TEST(StrongBa, FailureFreeUnanimousDecidesFast) {
  auto spec = RunSpec::for_t(2);
  adv::NullAdversary adv;
  const auto res = harness::run_strong_ba(spec, uniform_bits(5, 1), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(1));
  EXPECT_TRUE(res.all_fast());            // all via the decide certificate
  EXPECT_FALSE(res.any_fallback());       // Lemma 8
}

TEST(StrongBa, FailureFreeMixedDecidesMajorityCertifiedValue) {
  auto spec = RunSpec::for_t(2);
  adv::NullAdversary adv;
  const auto res =
      harness::run_strong_ba(spec, binary_inputs({1, 1, 0, 1, 0}), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(1));  // 1 has t+1 = 3 supporters
  EXPECT_TRUE(res.all_fast());
}

TEST(StrongBa, FailureFreeWordsAreLinear) {
  // The Section 7 headline: f = 0 costs O(n) words end to end.
  for (std::uint32_t t : {2u, 5u, 10u}) {
    auto spec = RunSpec::for_t(t);
    adv::NullAdversary adv;
    const auto res = harness::run_strong_ba(spec, uniform_bits(spec.n, 0), adv);
    EXPECT_TRUE(res.all_fast());
    EXPECT_LE(res.meter.words_correct, 10ull * spec.n) << "t=" << t;
  }
}

TEST(StrongBa, SingleCrashForcesFallbackButPreservesUnanimity) {
  // The (n, n) decide certificate needs every process: one crash kills the
  // fast path, and strong unanimity must survive the fallback.
  auto spec = RunSpec::for_t(2);
  adv::CrashAdversary adv({3});
  const auto res = harness::run_strong_ba(spec, uniform_bits(5, 1), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(1));
  EXPECT_TRUE(res.any_fallback());
}

TEST(StrongBa, CrashedLeaderStillTerminates) {
  auto spec = RunSpec::for_t(2);
  adv::CrashAdversary adv({sba::StrongBaProcess::kLeader});
  const auto res = harness::run_strong_ba(spec, uniform_bits(5, 0), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(0));
  EXPECT_TRUE(res.any_fallback());
}

TEST(StrongBa, MaximalCrashUnanimity) {
  auto spec = RunSpec::for_t(3);  // n = 7
  adv::CrashAdversary adv({0, 2, 4});
  const auto res = harness::run_strong_ba(spec, uniform_bits(7, 1), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(1));
}

TEST(StrongBa, SilentByzantineLeaderUnanimity) {
  auto spec = RunSpec::for_t(2);
  adv::Alg5Withhold adv(spec.instance, adv::Alg5Mode::kSilent);
  const auto res = harness::run_strong_ba(spec, uniform_bits(5, 1), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(1));
}

TEST(StrongBa, SplitProposeCertificatesStillAgree) {
  // Byzantine leader certifies both values (possible with split inputs plus
  // its own signature) and shows different certificates to different halves.
  // The n-of-n decide certificate then cannot form and everyone falls back.
  auto spec = RunSpec::for_t(2);
  adv::Alg5Withhold adv(spec.instance, adv::Alg5Mode::kSplitPropose);
  const auto res =
      harness::run_strong_ba(spec, binary_inputs({0, 0, 1, 1, 0}), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  const Value d = res.decision();
  EXPECT_TRUE(d == Value(0) || d == Value(1));
}

TEST(StrongBa, HiddenDecideCertificateAdoptedInWindow) {
  // The leader completes the protocol but shows the decide certificate to a
  // single correct process, which decides fast. Everyone else broadcasts
  // fallback; the fast decider echoes its proof in the window; all adopt it
  // and the fallback confirms the same value (Lemma 26).
  auto spec = RunSpec::for_t(2);
  adv::Alg5Withhold adv(spec.instance, adv::Alg5Mode::kHideDecide,
                        /*reach=*/1);
  const auto res = harness::run_strong_ba(spec, uniform_bits(5, 1), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(1));
  // Exactly one process decided via the certificate.
  std::uint32_t fast = 0;
  for (const auto& s : res.stats) fast += (s && s->decided_fast) ? 1 : 0;
  EXPECT_EQ(fast, 1u);
}

TEST(StrongBa, SplitInputsWithByzantineLeaderNeverLeaveDomain) {
  // Whatever the adversary does, a binary BA decision stays in {0, 1}.
  auto spec = RunSpec::for_t(3);
  adv::Alg5Withhold adv(spec.instance, adv::Alg5Mode::kSplitPropose);
  const auto res =
      harness::run_strong_ba(spec, binary_inputs({0, 1, 0, 1, 0, 1, 0}), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_LE(res.decision().raw, 1u);
}

struct UnanimityParam {
  std::uint32_t t;
  std::uint32_t f;
  int bit;
};

class StrongBaUnanimitySweep
    : public ::testing::TestWithParam<UnanimityParam> {};

TEST_P(StrongBaUnanimitySweep, CrashPatternsPreserveUnanimity) {
  const auto [t, f, bit] = GetParam();
  auto spec = RunSpec::for_t(t);
  std::vector<ProcessId> victims;
  for (std::uint32_t i = 0; i < f; ++i) {
    victims.push_back((i * 3 + 1) % spec.n);
  }
  adv::CrashAdversary adv(victims);
  const auto res = harness::run_strong_ba(spec, uniform_bits(spec.n, bit), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(static_cast<std::uint64_t>(bit)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StrongBaUnanimitySweep,
    ::testing::Values(UnanimityParam{1, 1, 0}, UnanimityParam{2, 1, 1},
                      UnanimityParam{2, 2, 0}, UnanimityParam{3, 1, 1},
                      UnanimityParam{3, 3, 0}, UnanimityParam{4, 2, 1},
                      UnanimityParam{4, 4, 1}, UnanimityParam{5, 5, 0}),
    [](const auto& info) {
      return "t" + std::to_string(info.param.t) + "_f" +
             std::to_string(info.param.f) + "_v" +
             std::to_string(info.param.bit);
    });

TEST(StrongBa, RoundScheduleIsExact) {
  EXPECT_EQ(sba::StrongBaProcess::total_rounds(2), 6u + 3u);
  EXPECT_EQ(sba::StrongBaProcess::total_rounds(5), 6u + 6u);
}

}  // namespace
}  // namespace mewc
