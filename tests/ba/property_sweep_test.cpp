// Randomized property sweeps: protocols x adversaries x (n, f) x seeds.
// Every run must satisfy Agreement and Termination; Validity is asserted in
// its protocol-conditional form (BB validity for a correct sender, strong
// unanimity for unanimous inputs, unique validity for weak BA).
#include <gtest/gtest.h>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"
#include "common/rng.hpp"

namespace mewc {
namespace {

using harness::RunSpec;

struct SweepParam {
  std::uint32_t t;
  std::uint32_t f;
  std::uint64_t seed;
};

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return "t" + std::to_string(info.param.t) + "_f" +
         std::to_string(info.param.f) + "_s" +
         std::to_string(info.param.seed);
}

std::vector<SweepParam> grid() {
  std::vector<SweepParam> out;
  for (std::uint32_t t : {1u, 2u, 3u, 4u}) {
    for (std::uint32_t f = 0; f <= t; ++f) {
      for (std::uint64_t seed : {11u, 23u}) {
        out.push_back({t, f, seed});
      }
    }
  }
  return out;
}

/// Random crash set of size f (never including `spare` when it matters).
std::vector<ProcessId> random_victims(Rng& rng, std::uint32_t n,
                                      std::uint32_t f,
                                      std::optional<ProcessId> spare = {}) {
  std::vector<ProcessId> all;
  for (ProcessId p = 0; p < n; ++p) {
    if (!spare || p != *spare) all.push_back(p);
  }
  std::vector<ProcessId> out;
  for (std::uint32_t i = 0; i < f && !all.empty(); ++i) {
    const std::size_t idx = rng.below(all.size());
    out.push_back(all[idx]);
    all.erase(all.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Weak BA sweep
// ---------------------------------------------------------------------------

class WeakBaSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(WeakBaSweep, AgreementTerminationUniqueValidity) {
  const auto [t, f, seed] = GetParam();
  auto spec = RunSpec::for_t(t);
  Rng rng(seed * 1000 + t * 10 + f);

  std::vector<WireValue> inputs;
  for (std::uint32_t i = 0; i < spec.n; ++i) {
    inputs.push_back(WireValue::plain(Value(rng.below(3) + 1)));
  }
  adv::CrashAdversary adv(random_victims(rng, spec.n, f));
  const auto res = harness::run_weak_ba(spec, inputs,
                                        harness::always_valid_factory(), adv);

  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  const WireValue d = res.decision();
  EXPECT_TRUE(d.is_bottom() || AlwaysValid{}.validate(d));
  if (adaptive_regime(spec.n, spec.t, res.f())) {
    EXPECT_FALSE(res.any_fallback());  // Lemma 6
    EXPECT_FALSE(d.is_bottom());       // some phase certified a real value
  }
}

TEST_P(WeakBaSweep, UnanimityImpliesNoBottomWithUnforgeablePredicate) {
  const auto [t, f, seed] = GetParam();
  auto spec = RunSpec::for_t(t);
  spec.seed = seed;
  Rng rng(seed * 77 + t + f);

  // All correct processes propose the same attested value; the adversary
  // cannot attest anything else, so unique validity forbids ⊥.
  ThresholdFamily mint(spec.n, spec.t, spec.backend, spec.seed);
  std::vector<PartialSig> ps;
  for (ProcessId p = 0; p < spec.t + 1; ++p) {
    ps.push_back(mint.scheme(spec.t + 1).issue_share(p).partial_sign(
        input_attestation_digest(spec.instance, Value(6))));
  }
  auto qc = mint.scheme(spec.t + 1).combine(ps);
  ASSERT_TRUE(qc.has_value());
  const WireValue attested = WireValue::certified(Value(6), *qc);

  harness::PredicateFactory factory = [](const ThresholdFamily& fam,
                                         std::uint64_t instance) {
    return std::make_shared<const InputCertified>(fam, instance);
  };
  adv::CrashAdversary adv(random_victims(rng, spec.n, f));
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, attested), factory, adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision().value, Value(6));
}

INSTANTIATE_TEST_SUITE_P(Grid, WeakBaSweep, ::testing::ValuesIn(grid()),
                         sweep_name);

// ---------------------------------------------------------------------------
// BB sweep
// ---------------------------------------------------------------------------

class BbSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(BbSweep, CorrectSenderValidity) {
  const auto [t, f, seed] = GetParam();
  auto spec = RunSpec::for_t(t);
  Rng rng(seed * 31 + t * 7 + f);
  const auto sender = static_cast<ProcessId>(rng.below(spec.n));
  adv::CrashAdversary adv(random_victims(rng, spec.n, f, sender));
  const auto res = harness::run_bb(spec, sender, Value(500 + seed), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(500 + seed));
}

TEST_P(BbSweep, ByzantineSenderAgreement) {
  const auto [t, f, seed] = GetParam();
  if (f == 0) GTEST_SKIP() << "needs a Byzantine sender";
  auto spec = RunSpec::for_t(t);
  Rng rng(seed * 13 + t * 3 + f);
  const auto sender = static_cast<ProcessId>(rng.below(spec.n));

  std::vector<std::unique_ptr<Adversary>> parts;
  const auto mode = static_cast<adv::SenderMode>(rng.below(3));
  parts.push_back(std::make_unique<adv::BbEquivocatingSender>(
      sender, spec.instance, mode, Value(70), Value(71),
      static_cast<std::uint32_t>(rng.below(spec.n))));
  if (f > 1) {
    parts.push_back(std::make_unique<adv::CrashAdversary>(
        random_victims(rng, spec.n, f - 1, sender)));
  }
  adv::Composite adv(std::move(parts));
  const auto res = harness::run_bb(spec, sender, Value(70), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  // Byzantine sender: any common decision is fine; it must be one of the
  // signed values or ⊥.
  const Value d = res.decision();
  EXPECT_TRUE(d == Value(70) || d == Value(71) || d.is_bottom()) << d.raw;
}

INSTANTIATE_TEST_SUITE_P(Grid, BbSweep, ::testing::ValuesIn(grid()),
                         sweep_name);

// ---------------------------------------------------------------------------
// Strong BA sweep
// ---------------------------------------------------------------------------

class StrongBaSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(StrongBaSweep, RandomBinaryInputs) {
  const auto [t, f, seed] = GetParam();
  auto spec = RunSpec::for_t(t);
  Rng rng(seed * 91 + t * 5 + f);

  std::vector<Value> inputs;
  bool all_same = true;
  for (std::uint32_t i = 0; i < spec.n; ++i) {
    inputs.push_back(Value(rng.below(2)));
    all_same &= (inputs[i] == inputs[0]);
  }
  adv::CrashAdversary adv(random_victims(rng, spec.n, f));
  const auto res = harness::run_strong_ba(spec, inputs, adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_LE(res.decision().raw, 1u);

  // Strong unanimity, restricted to the surviving (correct) processes'
  // inputs: if all correct inputs agree, that value must win.
  std::optional<Value> common;
  bool correct_unanimous = true;
  for (ProcessId p = 0; p < spec.n; ++p) {
    if (res.is_corrupted(p)) continue;
    if (!common) {
      common = inputs[p];
    } else if (*common != inputs[p]) {
      correct_unanimous = false;
    }
  }
  if (correct_unanimous && common) {
    EXPECT_EQ(res.decision(), *common);
  }
  (void)all_same;
}

INSTANTIATE_TEST_SUITE_P(Grid, StrongBaSweep, ::testing::ValuesIn(grid()),
                         sweep_name);

// ---------------------------------------------------------------------------
// Adaptive mid-run corruption sweep: random processes crash at random
// rounds (the Section 2 adaptive adversary in its rawest form).
// ---------------------------------------------------------------------------

class AdaptiveCrashSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AdaptiveCrashSweep, WeakBaSurvivesRandomMidRunCrashes) {
  const auto [t, f, seed] = GetParam();
  auto spec = RunSpec::for_t(t);
  const Round horizon = wba::WeakBaProcess::total_rounds(spec.n, spec.t);
  adv::RandomAdaptiveCrash adv(seed * 313 + t + f, f, horizon);
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(6))),
      harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision().value, Value(6));  // unanimous valid inputs
}

TEST_P(AdaptiveCrashSweep, BbSurvivesRandomMidRunCrashes) {
  const auto [t, f, seed] = GetParam();
  auto spec = RunSpec::for_t(t);
  const ProcessId sender = spec.n - 1;
  const Round horizon = bb::BbProcess::total_rounds(spec.n, spec.t);
  adv::RandomAdaptiveCrash adv(seed * 131 + t + f, f, horizon,
                               /*spare=*/sender);
  const auto res = harness::run_bb(spec, sender, Value(44), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(44));  // validity: the sender is spared
}

TEST_P(AdaptiveCrashSweep, StrongBaSurvivesRandomMidRunCrashes) {
  const auto [t, f, seed] = GetParam();
  auto spec = RunSpec::for_t(t);
  adv::RandomAdaptiveCrash adv(seed * 717 + t + f, f,
                               sba::StrongBaProcess::total_rounds(spec.t));
  const auto res = harness::run_strong_ba(
      spec, std::vector<Value>(spec.n, Value(1)), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(1));
}

INSTANTIATE_TEST_SUITE_P(Grid, AdaptiveCrashSweep, ::testing::ValuesIn(grid()),
                         sweep_name);

// ---------------------------------------------------------------------------
// Fallback BA sweep with Shamir backend: the real threshold math must
// carry the protocols end to end, not just unit tests.
// ---------------------------------------------------------------------------

class ShamirBackendSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ShamirBackendSweep, WeakBaRunsOnRealThresholdCrypto) {
  const auto [t, f, seed] = GetParam();
  if (t > 3) GTEST_SKIP() << "keep Shamir runs small";
  auto spec = RunSpec::for_t(t);
  spec.backend = ThresholdBackend::kShamir;
  Rng rng(seed + t + f);
  adv::CrashAdversary adv(random_victims(rng, spec.n, f));
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(4))),
      harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision().value, Value(4));
}

INSTANTIATE_TEST_SUITE_P(Grid, ShamirBackendSweep,
                         ::testing::ValuesIn(grid()), sweep_name);

}  // namespace
}  // namespace mewc
