// Randomized property sweeps, expressed as campaign grids over the check::
// engine: protocols x adversaries x (n, t, f) x seeds, including general
// resilience n > 2t+1. Every cell runs the full default checker stack
// (agreement, validity, termination, the Table 1 word budget, certificate
// well-formedness), so these sweeps assert strictly more than the
// hand-rolled loops they replace. The one property the engine cannot
// express — unique validity under an unforgeable input predicate — keeps
// its hand-rolled test at the bottom.
#include <gtest/gtest.h>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"
#include "check/campaign.hpp"
#include "common/rng.hpp"

namespace mewc {
namespace {

using harness::RunSpec;

std::string failure_label(const check::CampaignReport& report) {
  const auto* f = report.first_failure();
  if (f == nullptr) return {};
  std::string out = f->cell.label();
  for (const auto& v : f->violations) {
    out += "\n  [" + v.checker + "] " + v.detail;
  }
  return out;
}

void expect_all_pass(const check::GridSpec& grid) {
  const auto report = check::run_campaign(grid);
  ASSERT_GT(report.cells_total, 0u);
  EXPECT_EQ(report.cells_passed, report.cells_total) << failure_label(report);
}

// ---------------------------------------------------------------------------
// Crash sweeps: every protocol, minimal and general resilience, f = 0..t.
// Unique validity, BB sender validity and the adaptive-regime word budget
// are all enforced by the default checkers.
// ---------------------------------------------------------------------------

TEST(PropertySweep, CrashAcrossAllProtocols) {
  check::GridSpec grid;
  grid.protocols = check::all_protocols();
  grid.sizes = {{0, 1}, {0, 2}, {0, 3}, {0, 4}};
  grid.fs = {0, 1, 2, 3, 4};  // enumerate() drops f > t per size
  grid.adversaries = {"crash"};
  grid.seeds = {11, 23};
  expect_all_pass(grid);
}

TEST(PropertySweep, GeneralResilienceWideSystems) {
  // n strictly above 2t+1: the regime where the adaptive envelope does the
  // most work (n - f >= commit_quorum holds for larger f).
  check::GridSpec grid;
  grid.protocols = {check::Protocol::kBb, check::Protocol::kWeakBa,
                    check::Protocol::kStrongBa};
  grid.sizes = {{9, 2}, {11, 3}, {13, 3}};
  grid.fs = {0, 1, 2, 3};
  grid.adversaries = {"crash", "crash-late"};
  grid.seeds = {11, 23};
  expect_all_pass(grid);
}

// ---------------------------------------------------------------------------
// Byzantine sender sweeps: equivocation and partial sends against BB.
// ---------------------------------------------------------------------------

TEST(PropertySweep, ByzantineSenderFamilies) {
  check::GridSpec grid;
  grid.protocols = {check::Protocol::kBb, check::Protocol::kDsBb};
  grid.sizes = {{0, 1}, {0, 2}, {0, 4}, {9, 2}};
  grid.fs = {1, 2};
  grid.adversaries = {"equivocate", "partial-sender", "silent-sender"};
  grid.seeds = {13, 29, 31};
  expect_all_pass(grid);
}

// ---------------------------------------------------------------------------
// Adaptive mid-run corruption: random processes crash at random rounds
// (the Section 2 adaptive adversary in its rawest form), plus the
// phase-leader killer and help-round spam.
// ---------------------------------------------------------------------------

TEST(PropertySweep, AdaptiveMidRunCorruption) {
  check::GridSpec grid;
  grid.protocols = {check::Protocol::kBb, check::Protocol::kWeakBa,
                    check::Protocol::kStrongBa};
  grid.sizes = {{0, 1}, {0, 2}, {0, 4}, {11, 2}};
  grid.fs = {0, 1, 2, 4};
  grid.adversaries = {"random-adaptive", "killer", "help-spam"};
  grid.seeds = {313, 131, 717};
  expect_all_pass(grid);
}

// ---------------------------------------------------------------------------
// Shamir backend: the real threshold math must carry the protocols end to
// end — certificate observations are verified against live Shamir schemes.
// ---------------------------------------------------------------------------

TEST(PropertySweep, ShamirBackendCarriesProtocols) {
  check::GridSpec grid;
  grid.protocols = check::all_protocols();
  grid.sizes = {{0, 1}, {0, 2}, {0, 3}};  // keep Shamir runs small
  grid.fs = {0, 1, 2};
  grid.adversaries = {"crash"};
  grid.seeds = {5};
  grid.backends = {ThresholdBackend::kShamir};
  expect_all_pass(grid);
}

// ---------------------------------------------------------------------------
// Unique validity under an unforgeable predicate. This one stays
// hand-rolled: it mints a (t+1)-attested input certificate out of band and
// installs a restrictive predicate, which a declarative grid cell cannot
// express.
// ---------------------------------------------------------------------------

struct SweepParam {
  std::uint32_t t;
  std::uint32_t f;
  std::uint64_t seed;
};

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return "t" + std::to_string(info.param.t) + "_f" +
         std::to_string(info.param.f) + "_s" +
         std::to_string(info.param.seed);
}

std::vector<SweepParam> grid() {
  std::vector<SweepParam> out;
  for (std::uint32_t t : {1u, 2u, 3u, 4u}) {
    for (std::uint32_t f = 0; f <= t; ++f) {
      for (std::uint64_t seed : {11u, 23u}) {
        out.push_back({t, f, seed});
      }
    }
  }
  return out;
}

/// Random crash set of size f (never including `spare` when it matters).
std::vector<ProcessId> random_victims(Rng& rng, std::uint32_t n,
                                      std::uint32_t f,
                                      std::optional<ProcessId> spare = {}) {
  std::vector<ProcessId> all;
  for (ProcessId p = 0; p < n; ++p) {
    if (!spare || p != *spare) all.push_back(p);
  }
  std::vector<ProcessId> out;
  for (std::uint32_t i = 0; i < f && !all.empty(); ++i) {
    const std::size_t idx = rng.below(all.size());
    out.push_back(all[idx]);
    all.erase(all.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return out;
}

class WeakBaSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(WeakBaSweep, UnanimityImpliesNoBottomWithUnforgeablePredicate) {
  const auto [t, f, seed] = GetParam();
  auto spec = RunSpec::for_t(t);
  spec.seed = seed;
  Rng rng(seed * 77 + t + f);

  // All correct processes propose the same attested value; the adversary
  // cannot attest anything else, so unique validity forbids ⊥.
  ThresholdFamily mint(spec.n, spec.t, spec.backend, spec.seed);
  std::vector<PartialSig> ps;
  for (ProcessId p = 0; p < spec.t + 1; ++p) {
    ps.push_back(mint.scheme(spec.t + 1).issue_share(p).partial_sign(
        input_attestation_digest(spec.instance, Value(6))));
  }
  auto qc = mint.scheme(spec.t + 1).combine(ps);
  ASSERT_TRUE(qc.has_value());
  const WireValue attested = WireValue::certified(Value(6), *qc);

  harness::PredicateFactory factory = [](const ThresholdFamily& fam,
                                         std::uint64_t instance) {
    return std::make_shared<const InputCertified>(fam, instance);
  };
  adv::CrashAdversary adv(random_victims(rng, spec.n, f));
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, attested), factory, adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision().value, Value(6));
}

INSTANTIATE_TEST_SUITE_P(Grid, WeakBaSweep, ::testing::ValuesIn(grid()),
                         sweep_name);

}  // namespace
}  // namespace mewc
