// Direct process-level unit tests for the BB vetting machinery
// (Algorithm 2): reply selection, idk partial emission, certificate
// formation, NOTE-1 relay preference, and adoption rules.
#include <gtest/gtest.h>

#include "ba/bb/bb.hpp"

namespace mewc {
namespace {

constexpr std::uint32_t kT = 2;
constexpr std::uint32_t kN = 5;
constexpr std::uint64_t kInstance = 4;
constexpr ProcessId kSender = 4;

class BbUnit : public ::testing::Test {
 protected:
  BbUnit() : family_(kN, kT) {
    for (ProcessId p = 0; p < kN; ++p) {
      bundles_.push_back(family_.issue_bundle(p));
    }
  }

  ProtocolContext ctx(ProcessId id) {
    ProtocolContext c;
    c.id = id;
    c.n = kN;
    c.t = kT;
    c.instance = kInstance;
    c.crypto = &family_;
    c.keys = &bundles_[id];
    return c;
  }

  bb::BbProcess make(ProcessId id, Value input = Value(9)) {
    return bb::BbProcess(ctx(id), kSender, input);
  }

  static Message msg(ProcessId from, Round r, PayloadPtr body) {
    Message m;
    m.from = from;
    m.to = 0;
    m.round = r;
    m.words = Message::cost_of(*body);
    m.body = std::move(body);
    return m;
  }

  std::vector<std::pair<ProcessId, PayloadPtr>> drive(
      bb::BbProcess& proc, Round r, std::vector<Message> inbox = {}) {
    Outbox out(kN);
    proc.on_send(r, out);
    proc.on_receive(r, inbox);
    return out.sends();
  }

  WireValue sender_signed(Value v) {
    return WireValue::signed_by(
        v, bundles_[kSender].signer().sign(bb_sender_digest(kInstance, v)));
  }

  WireValue idk_cert(std::uint64_t phase) {
    std::vector<PartialSig> ps;
    for (ProcessId p = 0; p < kT + 1; ++p) {
      ps.push_back(family_.scheme(kT + 1).issue_share(p).partial_sign(
          bb_idk_digest(kInstance, phase)));
    }
    return WireValue::certified(kIdkValue,
                                *family_.scheme(kT + 1).combine(ps), phase);
  }

  PayloadPtr sender_value_msg(const WireValue& v) {
    auto m = std::make_shared<bb::SenderValueMsg>();
    m->value = v;
    return m;
  }

  PayloadPtr help_req(std::uint64_t phase) {
    auto m = std::make_shared<bb::HelpReqMsg>();
    m->phase = phase;
    return m;
  }

  template <typename T>
  static const T* find_sent(
      const std::vector<std::pair<ProcessId, PayloadPtr>>& sends) {
    for (const auto& [to, body] : sends) {
      if (const T* p = payload_cast<T>(body)) return p;
    }
    return nullptr;
  }

  ThresholdFamily family_;
  std::vector<KeyBundle> bundles_;
};

TEST_F(BbUnit, SenderBroadcastsSignedValueInRoundOne) {
  auto proc = make(kSender, Value(33));
  auto sends = drive(proc, 1);
  const auto* sv = find_sent<bb::SenderValueMsg>(sends);
  ASSERT_NE(sv, nullptr);
  EXPECT_EQ(sv->value.value, Value(33));
  EXPECT_EQ(sv->value.prov, Provenance::kSigned);
  BbValid pred(family_, kInstance, kSender);
  EXPECT_TRUE(pred.validate(sv->value));
  EXPECT_EQ(sends.size(), kN);
}

TEST_F(BbUnit, NonSenderSilentInRoundOne) {
  auto proc = make(1);
  EXPECT_TRUE(drive(proc, 1).empty());
}

TEST_F(BbUnit, IgnoresSenderValueFromWrongProcess) {
  auto proc = make(1);
  // p2 forwards a validly-signed sender value in round 1 — but round 1
  // adoption only listens to the sender's own link (Algorithm 1 line 3).
  drive(proc, 1, {msg(2, 1, sender_value_msg(sender_signed(Value(9))))});
  // p1 leads phase... p0 does; p1's phase is phase 2. Value-less processes
  // reply idk when asked; check via a help request from phase 1's leader.
  drive(proc, 2, {msg(0, 2, help_req(1))});
  auto sends = drive(proc, 3);
  EXPECT_NE(find_sent<bb::IdkMsg>(sends), nullptr)
      << "should still be value-less";
}

TEST_F(BbUnit, IgnoresBadlySignedSenderValue) {
  auto proc = make(1);
  WireValue forged = sender_signed(Value(9));
  forged.value = Value(10);  // signature covers 9
  drive(proc, 1, {msg(kSender, 1, sender_value_msg(forged))});
  drive(proc, 2, {msg(0, 2, help_req(1))});
  auto sends = drive(proc, 3);
  EXPECT_NE(find_sent<bb::IdkMsg>(sends), nullptr);
}

TEST_F(BbUnit, ValueHolderRepliesWithValueNotIdk) {
  auto proc = make(1);
  drive(proc, 1, {msg(kSender, 1, sender_value_msg(sender_signed(Value(9))))});
  drive(proc, 2, {msg(0, 2, help_req(1))});
  auto sends = drive(proc, 3);
  const auto* rv = find_sent<bb::ReplyValueMsg>(sends);
  ASSERT_NE(rv, nullptr);
  EXPECT_EQ(rv->value.value, Value(9));
  EXPECT_EQ(find_sent<bb::IdkMsg>(sends), nullptr);
  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends[0].first, 0u);  // unicast to the asking leader
}

TEST_F(BbUnit, NoReplyWithoutHelpRequest) {
  auto proc = make(1);
  drive(proc, 1);
  drive(proc, 2);  // leader p0 never asked
  EXPECT_TRUE(drive(proc, 3).empty());
}

TEST_F(BbUnit, HelpRequestFromNonLeaderIgnored) {
  auto proc = make(1);
  drive(proc, 1);
  drive(proc, 2, {msg(3, 2, help_req(1))});  // p3 is not phase 1's leader
  EXPECT_TRUE(drive(proc, 3).empty());
}

TEST_F(BbUnit, ValuelessLeaderAsksForHelp) {
  auto proc = make(0);  // p0 leads phase 1
  drive(proc, 1);
  auto sends = drive(proc, 2);
  const auto* h = find_sent<bb::HelpReqMsg>(sends);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->phase, 1u);
  EXPECT_EQ(sends.size(), kN);
}

TEST_F(BbUnit, LeaderWithValueStaysSilent) {
  auto proc = make(0);
  drive(proc, 1, {msg(kSender, 1, sender_value_msg(sender_signed(Value(9))))});
  EXPECT_TRUE(drive(proc, 2).empty());
}

TEST_F(BbUnit, LeaderBatchesIdkCertificateFromTPlusOnePartials) {
  auto proc = make(0);
  drive(proc, 1);
  drive(proc, 2);  // leader broadcasts help_req (and self-delivers it)
  // Hand-deliver the help request to itself plus idk replies from p1, p2.
  std::vector<Message> replies;
  for (ProcessId p : {1u, 2u}) {
    auto idk = std::make_shared<bb::IdkMsg>();
    idk->phase = 1;
    idk->partial =
        bundles_[p].share(kT + 1).partial_sign(bb_idk_digest(kInstance, 1));
    replies.push_back(msg(p, 3, idk));
  }
  // The leader's own reply must arrive too (self-delivery in real runs).
  {
    auto own = std::make_shared<bb::IdkMsg>();
    own->phase = 1;
    own->partial =
        bundles_[0].share(kT + 1).partial_sign(bb_idk_digest(kInstance, 1));
    replies.push_back(msg(0, 3, own));
  }
  // Round 2 receive didn't include its own help_req: simulate it arriving.
  auto proc2 = make(0);
  drive(proc2, 1);
  drive(proc2, 2, {msg(0, 2, help_req(1))});
  drive(proc2, 3, std::move(replies));
  auto sends = drive(proc2, 4);
  const auto* lv = find_sent<bb::LeaderValueMsg>(sends);
  ASSERT_NE(lv, nullptr);
  EXPECT_TRUE(lv->value.value.is_idk());
  BbValid pred(family_, kInstance, kSender);
  EXPECT_TRUE(pred.validate(lv->value));
}

TEST_F(BbUnit, LeaderPrefersSenderSignedOverCertificate) {
  auto proc = make(0);
  drive(proc, 1);
  drive(proc, 2, {msg(0, 2, help_req(1))});
  auto reply_cert = std::make_shared<bb::ReplyValueMsg>();
  reply_cert->phase = 1;
  reply_cert->value = idk_cert(1);
  auto reply_signed = std::make_shared<bb::ReplyValueMsg>();
  reply_signed->phase = 1;
  reply_signed->value = sender_signed(Value(9));
  drive(proc, 3, {msg(1, 3, reply_cert), msg(2, 3, reply_signed)});
  auto sends = drive(proc, 4);
  const auto* lv = find_sent<bb::LeaderValueMsg>(sends);
  ASSERT_NE(lv, nullptr);
  EXPECT_EQ(lv->value.prov, Provenance::kSigned);  // NOTE-1 preference
  EXPECT_EQ(lv->value.value, Value(9));
}

TEST_F(BbUnit, LeaderRelaysCertificateWhenNoSignedValueExists) {
  auto proc = make(0);
  drive(proc, 1);
  drive(proc, 2, {msg(0, 2, help_req(1))});
  auto reply_cert = std::make_shared<bb::ReplyValueMsg>();
  reply_cert->phase = 1;
  reply_cert->value = idk_cert(1);
  drive(proc, 3, {msg(1, 3, reply_cert)});
  auto sends = drive(proc, 4);
  const auto* lv = find_sent<bb::LeaderValueMsg>(sends);
  ASSERT_NE(lv, nullptr);  // NOTE-1: relayable despite no fresh t+1 idks
  EXPECT_EQ(lv->value.prov, Provenance::kCertified);
}

TEST_F(BbUnit, LeaderIgnoresInvalidReplies) {
  auto proc = make(0);
  drive(proc, 1);
  drive(proc, 2, {msg(0, 2, help_req(1))});
  auto junk = std::make_shared<bb::ReplyValueMsg>();
  junk->phase = 1;
  junk->value = WireValue::plain(Value(9));  // BB_valid rejects plain
  drive(proc, 3, {msg(1, 3, junk)});
  EXPECT_TRUE(drive(proc, 4).empty());  // nothing relayable, < t+1 idks
}

TEST_F(BbUnit, ProcessAdoptsValidLeaderValue) {
  auto proc = make(3);
  drive(proc, 1);
  drive(proc, 2);
  drive(proc, 3);
  auto lv = std::make_shared<bb::LeaderValueMsg>();
  lv->phase = 1;
  lv->value = sender_signed(Value(9));
  drive(proc, 4, {msg(0, 4, lv)});
  // Now a later phase's help request is answered with the adopted value.
  drive(proc, 5, {msg(1, 5, help_req(2))});
  auto sends = drive(proc, 6);
  const auto* rv = find_sent<bb::ReplyValueMsg>(sends);
  ASSERT_NE(rv, nullptr);
  EXPECT_EQ(rv->value.value, Value(9));
}

TEST_F(BbUnit, ProcessRejectsLeaderValueFromNonLeader) {
  auto proc = make(3);
  drive(proc, 1);
  drive(proc, 2);
  drive(proc, 3);
  auto lv = std::make_shared<bb::LeaderValueMsg>();
  lv->phase = 1;
  lv->value = sender_signed(Value(9));
  drive(proc, 4, {msg(2, 4, lv)});  // p2 is not phase 1's leader
  drive(proc, 5, {msg(1, 5, help_req(2))});
  auto sends = drive(proc, 6);
  EXPECT_NE(find_sent<bb::IdkMsg>(sends), nullptr);  // still value-less
}

TEST_F(BbUnit, ProcessRejectsInvalidLeaderValue) {
  auto proc = make(3);
  drive(proc, 1);
  drive(proc, 2);
  drive(proc, 3);
  auto lv = std::make_shared<bb::LeaderValueMsg>();
  lv->phase = 1;
  WireValue bad = idk_cert(1);
  bad.aux = 2;  // certificate bound to phase 1, claims phase 2
  lv->value = bad;
  drive(proc, 4, {msg(0, 4, lv)});
  drive(proc, 5, {msg(1, 5, help_req(2))});
  auto sends = drive(proc, 6);
  EXPECT_NE(find_sent<bb::IdkMsg>(sends), nullptr);
}

}  // namespace
}  // namespace mewc
