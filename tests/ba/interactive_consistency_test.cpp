// Interactive consistency over n parallel BB lanes: vector agreement,
// per-slot validity for correct senders, Byzantine/crashed slots, lane
// isolation (no cross-lane signature replay), and wire-codec transport.
#include "ba/vector/interactive_consistency.hpp"

#include <gtest/gtest.h>

#include "ba/adversaries/adversaries.hpp"
#include "ba/adversaries/fuzzer.hpp"
#include "ba/harness.hpp"

namespace mewc {
namespace {

using harness::RunSpec;

std::vector<Value> indexed(std::uint32_t n) {
  std::vector<Value> out;
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(Value(100 + i));
  return out;
}

TEST(InteractiveConsistency, FailureFreeFullVector) {
  auto spec = RunSpec::for_t(2);
  adv::NullAdversary adv;
  const auto res = harness::run_ic(spec, indexed(spec.n), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  const auto vec = res.vector();
  ASSERT_EQ(vec.size(), spec.n);
  for (ProcessId i = 0; i < spec.n; ++i) {
    EXPECT_EQ(vec[i], Value(100 + i)) << "slot " << i;
  }
}

TEST(InteractiveConsistency, CrashedProcessesYieldBottomSlots) {
  auto spec = RunSpec::for_t(2);
  adv::CrashAdversary adv({1, 3});
  const auto res = harness::run_ic(spec, indexed(spec.n), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  const auto vec = res.vector();
  EXPECT_TRUE(vec[1].is_bottom());
  EXPECT_TRUE(vec[3].is_bottom());
  // Correct slots keep BB validity.
  EXPECT_EQ(vec[0], Value(100));
  EXPECT_EQ(vec[2], Value(102));
  EXPECT_EQ(vec[4], Value(104));
}

TEST(InteractiveConsistency, EquivocatorSlotIsCommonAcrossReplicas) {
  auto spec = RunSpec::for_t(2);
  // The equivocator signs different values in its own lane. Lane instances
  // are hashed, so compute lane 2's instance the way the module does.
  const std::uint64_t lane_instance = hash_combine(spec.instance, 0x1c0ull + 2);
  adv::BbEquivocatingSender adv(2, lane_instance,
                                adv::SenderMode::kEquivocate, Value(70),
                                Value(71));
  const auto res = harness::run_ic(spec, indexed(spec.n), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  const auto vec = res.vector();
  EXPECT_TRUE(vec[2] == Value(70) || vec[2] == Value(71) ||
              vec[2].is_bottom());
  // Other slots unaffected (lane isolation).
  EXPECT_EQ(vec[0], Value(100));
  EXPECT_EQ(vec[4], Value(104));
}

TEST(InteractiveConsistency, SurvivesFuzzing) {
  auto spec = RunSpec::for_t(2);
  adv::Fuzzer adv(spec.instance, 77, 1, 3);
  const auto res = harness::run_ic(spec, indexed(spec.n), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  // Correct lanes must still deliver their senders' values (fuzzer
  // corrupted exactly one process; its own slot is unconstrained).
  const auto vec = res.vector();
  for (ProcessId i = 0; i < spec.n; ++i) {
    if (res.is_corrupted(i)) continue;
    EXPECT_EQ(vec[i], Value(100 + i)) << "slot " << i;
  }
}

TEST(InteractiveConsistency, OverTheWireCodec) {
  auto spec = RunSpec::for_t(2);
  spec.codec_roundtrip = true;
  adv::CrashAdversary adv({0});
  const auto res = harness::run_ic(spec, indexed(spec.n), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_TRUE(res.vector()[0].is_bottom());
  EXPECT_EQ(res.vector()[1], Value(101));
}

TEST(InteractiveConsistency, CostIsQuadraticFailureFree) {
  // n lanes each O(n): total Θ(n^2) failure-free.
  std::vector<double> ns, words;
  for (std::uint32_t t : {2u, 4u, 8u}) {
    auto spec = RunSpec::for_t(t);
    adv::NullAdversary adv;
    const auto res = harness::run_ic(spec, indexed(spec.n), adv);
    EXPECT_TRUE(res.agreement());
    ns.push_back(spec.n);
    words.push_back(static_cast<double>(res.meter.words_correct));
  }
  // Doubling n roughly quadruples the cost.
  const double ratio = words[2] / words[1];
  const double n_ratio = ns[2] / ns[1];
  EXPECT_NEAR(ratio, n_ratio * n_ratio, 1.2);
}

TEST(InteractiveConsistency, MuxRejectsMalformedLanes) {
  // Direct check of the demux guard: a mux with an out-of-range lane or a
  // null inner payload must be dropped, not crash.
  ThresholdFamily family(5, 2);
  std::vector<KeyBundle> bundles;
  for (ProcessId p = 0; p < 5; ++p) bundles.push_back(family.issue_bundle(p));
  ProtocolContext ctx;
  ctx.id = 1;
  ctx.n = 5;
  ctx.t = 2;
  ctx.instance = 3;
  ctx.crypto = &family;
  ctx.keys = &bundles[1];
  ic::InteractiveConsistencyProcess proc(ctx, Value(1));

  Outbox out(5);
  proc.on_send(1, out);
  auto bad = std::make_shared<ic::MuxMsg>();
  bad->lane = 99;
  bad->inner = std::make_shared<ic::MuxMsg>();
  Message m;
  m.from = 2;
  m.to = 1;
  m.round = 1;
  m.words = 1;
  m.body = bad;
  std::vector<Message> inbox = {m};
  proc.on_receive(1, inbox);  // must not crash
  SUCCEED();
}

}  // namespace
}  // namespace mewc
