// A_fallback (Dolev-Strong based strong BA) and the classic single-sender
// Dolev-Strong BB baseline: agreement, strong unanimity, termination and
// equivocation handling under crash and active-Byzantine adversaries.
#include "ba/fallback/dolev_strong.hpp"

#include <gtest/gtest.h>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"
#include "crypto/multisig.hpp"

namespace mewc {
namespace {

using harness::RunSpec;

std::vector<WireValue> plain_inputs(std::initializer_list<std::uint64_t> raws) {
  std::vector<WireValue> out;
  for (auto r : raws) out.push_back(WireValue::plain(Value(r)));
  return out;
}

std::vector<WireValue> uniform_inputs(std::uint32_t n, std::uint64_t raw) {
  return std::vector<WireValue>(n, WireValue::plain(Value(raw)));
}

TEST(FallbackBa, UnanimousFailureFree) {
  auto spec = RunSpec::for_t(2);
  adv::NullAdversary adv;
  const auto res = harness::run_fallback_ba(spec, uniform_inputs(5, 9), adv);
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision().value, Value(9));
}

TEST(FallbackBa, MixedInputsAgreeOnSomeInput) {
  auto spec = RunSpec::for_t(2);
  adv::NullAdversary adv;
  const auto res =
      harness::run_fallback_ba(spec, plain_inputs({1, 2, 1, 2, 1}), adv);
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision().value, Value(1));  // raw-majority 3 vs 2
}

TEST(FallbackBa, UnanimityUnderMaximalCrash) {
  // f = t silent processes: the remaining t+1 correct slots still dominate.
  auto spec = RunSpec::for_t(3);  // n = 7
  adv::CrashAdversary adv({0, 2, 4});
  const auto res = harness::run_fallback_ba(spec, uniform_inputs(7, 5), adv);
  EXPECT_EQ(res.f(), 3u);
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision().value, Value(5));
}

TEST(FallbackBa, AgreementUnderCrashWithSplitInputs) {
  auto spec = RunSpec::for_t(3);
  adv::CrashAdversary adv({1, 3, 5});
  const auto res =
      harness::run_fallback_ba(spec, plain_inputs({0, 0, 0, 1, 1, 1, 1}), adv);
  EXPECT_TRUE(res.agreement());
  // Surviving slots: p0=0, p2=0, p4=1, p6=1 — deterministic tie-break on
  // the smaller raw.
  EXPECT_EQ(res.decision().value, Value(0));
}

TEST(FallbackBa, MidRunCrashKeepsAgreement) {
  auto spec = RunSpec::for_t(3);
  adv::CrashAdversary adv({0, 1}, /*from_round=*/2);
  const auto res =
      harness::run_fallback_ba(spec, plain_inputs({7, 7, 7, 8, 8, 7, 8}), adv);
  EXPECT_TRUE(res.agreement());
}

/// Byzantine DS sender: starts its own instance with different values for
/// different recipients (classic equivocation).
class DsEquivocator final : public Adversary {
 public:
  DsEquivocator(std::uint64_t instance, ProcessId who, Value v0, Value v1)
      : instance_(instance), who_(who), v0_(v0), v1_(v1) {}

  void setup(AdversaryControl& ctrl) override { ctrl.corrupt(who_); }

  void act(Round r, AdversaryControl& ctrl) override {
    if (r != 1) return;
    const auto& key = ctrl.bundle(who_).signer();
    auto relay_for = [&](Value v) {
      auto msg = std::make_shared<fallback::DsRelayMsg>();
      msg->instance = who_;
      msg->value = WireValue::plain(v);
      msg->chain = aggregate_start(
          ctrl.crypto().pki(),
          key.sign(fallback::ds_relay_digest(instance_, who_, msg->value)));
      return msg;
    };
    const auto m0 = relay_for(v0_);
    const auto m1 = relay_for(v1_);
    for (ProcessId p = 0; p < ctrl.n(); ++p) {
      ctrl.send_as(who_, p, (p % 2 == 0) ? PayloadPtr(m0) : PayloadPtr(m1));
    }
  }

 private:
  std::uint64_t instance_;
  ProcessId who_;
  Value v0_;
  Value v1_;
};

TEST(FallbackBa, EquivocatingInstanceIsNeutralized) {
  // The equivocator's slot must extract two values at every correct process
  // (hence ⊥), and the correct slots decide the run.
  auto spec = RunSpec::for_t(2);  // n = 5
  DsEquivocator adv(spec.instance, 0, Value(100), Value(200));
  const auto res = harness::run_fallback_ba(spec, uniform_inputs(5, 3), adv);
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision().value, Value(3));
}

TEST(FallbackBa, DecideAtMostOnceAndSlotsConsistent) {
  auto spec = RunSpec::for_t(2);
  adv::NullAdversary adv;
  const auto res = harness::run_fallback_ba(spec, uniform_inputs(5, 4), adv);
  for (const auto& d : res.decisions) {
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->value, Value(4));
  }
}

// ---------------------------------------------------------------------------
// Classic Dolev-Strong BB baseline
// ---------------------------------------------------------------------------

TEST(DsBbBaseline, CorrectSenderDelivers) {
  auto spec = RunSpec::for_t(2);
  adv::NullAdversary adv;
  const auto res = harness::run_ds_bb(spec, 1, Value(77), adv);
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(77));
}

TEST(DsBbBaseline, SilentSenderYieldsBottomEverywhere) {
  auto spec = RunSpec::for_t(2);
  adv::CrashAdversary adv({0});
  const auto res = harness::run_ds_bb(spec, 0, Value(77), adv);
  EXPECT_TRUE(res.agreement());
  EXPECT_TRUE(res.decision().is_bottom());
}

TEST(DsBbBaseline, EquivocatingSenderStillAgrees) {
  auto spec = RunSpec::for_t(2);
  DsEquivocator adv(spec.instance, 2, Value(5), Value(6));
  const auto res = harness::run_ds_bb(spec, 2, Value(5), adv);
  EXPECT_TRUE(res.agreement());  // all ⊥ or all the same extracted value
}

TEST(DsBbBaseline, CorrectSenderUnderMaxCrashOfOthers) {
  auto spec = RunSpec::for_t(3);  // n = 7
  adv::CrashAdversary adv({1, 2, 3});
  const auto res = harness::run_ds_bb(spec, 0, Value(12), adv);
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(12));
}

TEST(DsBbBaseline, QuadraticCostEvenFailureFree) {
  // The baseline motivation: Θ(n^2) words with f = 0, where the adaptive BB
  // costs O(n).
  auto spec = RunSpec::for_t(5);  // n = 11
  adv::NullAdversary adv;
  const auto res = harness::run_ds_bb(spec, 0, Value(1), adv);
  // Sender broadcast (n words min) plus every process relaying once.
  EXPECT_GE(res.meter.words_correct,
            static_cast<std::uint64_t>(spec.n) * (spec.n - 1));
}

// ---------------------------------------------------------------------------
// Direct engine unit tests: the Dolev-Strong acceptance rules.
// ---------------------------------------------------------------------------

class DsEngineUnit : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kT = 2;
  static constexpr std::uint32_t kN = 5;
  static constexpr std::uint64_t kInstance = 1;

  DsEngineUnit() : family_(kN, kT) {
    for (ProcessId p = 0; p < kN; ++p) {
      bundles_.push_back(family_.issue_bundle(p));
    }
  }

  ProtocolContext ctx(ProcessId id) {
    ProtocolContext c;
    c.id = id;
    c.n = kN;
    c.t = kT;
    c.instance = kInstance;
    c.crypto = &family_;
    c.keys = &bundles_[id];
    return c;
  }

  /// A relay for `instance` carrying `v` signed by `signers`.
  PayloadPtr relay(ProcessId instance, const WireValue& v,
                   std::initializer_list<ProcessId> signers) {
    auto m = std::make_shared<fallback::DsRelayMsg>();
    m->instance = instance;
    m->value = v;
    const Digest d = fallback::ds_relay_digest(kInstance, instance, v);
    bool first = true;
    for (ProcessId s : signers) {
      const Signature sig = bundles_[s].signer().sign(d);
      if (first) {
        m->chain = aggregate_start(family_.pki(), sig);
        first = false;
      } else {
        aggregate_add(family_.pki(), m->chain, sig);
      }
    }
    return m;
  }

  static Message msg(ProcessId from, Round r, PayloadPtr body) {
    Message m;
    m.from = from;
    m.to = 0;
    m.round = r;
    m.words = Message::cost_of(*body);
    m.body = std::move(body);
    return m;
  }

  ThresholdFamily family_;
  std::vector<KeyBundle> bundles_;
};

TEST_F(DsEngineUnit, AcceptsRoundOneSingleSignature) {
  fallback::DolevStrongEngine e(ctx(0));
  e.activate();
  const WireValue v = WireValue::plain(Value(3));
  std::vector<Message> inbox = {msg(1, 1, relay(1, v, {1}))};
  e.on_receive(1, inbox);
  EXPECT_EQ(e.slot(1), v);
}

TEST_F(DsEngineUnit, RejectsUndersizedChainInLaterRound) {
  fallback::DolevStrongEngine e(ctx(0));
  e.activate();
  const WireValue v = WireValue::plain(Value(3));
  // Round 2 requires two distinct signers; only the owner signed.
  std::vector<Message> inbox = {msg(1, 2, relay(1, v, {1}))};
  e.on_receive(2, inbox);
  EXPECT_TRUE(e.slot(1).is_bottom());
}

TEST_F(DsEngineUnit, RejectsChainMissingInstanceOwner) {
  fallback::DolevStrongEngine e(ctx(0));
  e.activate();
  const WireValue v = WireValue::plain(Value(3));
  // Two signers, neither is the claimed instance owner 1.
  std::vector<Message> inbox = {msg(2, 2, relay(1, v, {2, 3}))};
  e.on_receive(2, inbox);
  EXPECT_TRUE(e.slot(1).is_bottom());
}

TEST_F(DsEngineUnit, RejectsChainSignedOverOtherValue) {
  fallback::DolevStrongEngine e(ctx(0));
  e.activate();
  const WireValue v = WireValue::plain(Value(3));
  auto m = std::static_pointer_cast<const fallback::DsRelayMsg>(
      relay(1, v, {1, 2}));
  auto tampered = std::make_shared<fallback::DsRelayMsg>(*m);
  tampered->value = WireValue::plain(Value(4));  // chain covers 3, not 4
  std::vector<Message> inbox = {msg(1, 2, tampered)};
  e.on_receive(2, inbox);
  EXPECT_TRUE(e.slot(1).is_bottom());
}

TEST_F(DsEngineUnit, SecondValueProvesInstanceByzantine) {
  fallback::DolevStrongEngine e(ctx(0));
  e.activate();
  const WireValue a = WireValue::plain(Value(3));
  const WireValue b = WireValue::plain(Value(4));
  std::vector<Message> inbox = {msg(1, 1, relay(1, a, {1})),
                                msg(1, 1, relay(1, b, {1}))};
  e.on_receive(1, inbox);
  EXPECT_TRUE(e.slot(1).is_bottom());  // |W| = 2 extracts nothing
}

TEST_F(DsEngineUnit, AcceptedValueIsRelayedWithOwnSignature) {
  fallback::DolevStrongEngine e(ctx(0));
  e.activate();
  const WireValue v = WireValue::plain(Value(3));
  std::vector<Message> inbox = {msg(1, 1, relay(1, v, {1}))};
  e.on_receive(1, inbox);
  Outbox out(kN);
  e.on_send(2, out);
  // Own instance start was round 1; round 2 carries the relay of p1's
  // value with our signature appended.
  bool found = false;
  for (const auto& [to, body] : out.sends()) {
    const auto* r = payload_cast<fallback::DsRelayMsg>(body);
    if (r == nullptr || r->instance != 1) continue;
    EXPECT_TRUE(r->chain.signers.contains(0));
    EXPECT_TRUE(r->chain.signers.contains(1));
    EXPECT_TRUE(aggregate_verify(family_.pki(), r->chain));
    found = true;
    break;
  }
  EXPECT_TRUE(found);
}

TEST_F(DsEngineUnit, InactiveEngineIgnoresEverything) {
  fallback::DolevStrongEngine e(ctx(0));
  const WireValue v = WireValue::plain(Value(3));
  std::vector<Message> inbox = {msg(1, 1, relay(1, v, {1}))};
  e.on_receive(1, inbox);
  EXPECT_TRUE(e.slot(1).is_bottom());
  Outbox out(kN);
  e.on_send(1, out);
  EXPECT_TRUE(out.sends().empty());
}

TEST_F(DsEngineUnit, NonBroadcasterDoesNotStartOwnInstance) {
  fallback::DolevStrongEngine e(ctx(0));
  e.activate();
  e.set_broadcaster(false);
  Outbox out(kN);
  e.on_send(1, out);
  EXPECT_TRUE(out.sends().empty());
}

// ---------------------------------------------------------------------------
// Parameterized sweep: sizes x crash patterns, unanimity must always hold.
// ---------------------------------------------------------------------------

struct SweepParam {
  std::uint32_t t;
  std::uint32_t f;
};

class FallbackSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FallbackSweep, UnanimityAndAgreementUnderCrash) {
  const auto [t, f] = GetParam();
  auto spec = RunSpec::for_t(t);
  std::vector<ProcessId> victims;
  for (std::uint32_t i = 0; i < f; ++i) victims.push_back(i * 2 % spec.n);
  adv::CrashAdversary adv(victims);
  const auto res =
      harness::run_fallback_ba(spec, uniform_inputs(spec.n, 42), adv);
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision().value, Value(42));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FallbackSweep,
    ::testing::Values(SweepParam{1, 0}, SweepParam{1, 1}, SweepParam{2, 0},
                      SweepParam{2, 1}, SweepParam{2, 2}, SweepParam{3, 0},
                      SweepParam{3, 2}, SweepParam{3, 3}, SweepParam{5, 0},
                      SweepParam{5, 3}, SweepParam{5, 5}),
    [](const auto& info) {
      return "t" + std::to_string(info.param.t) + "_f" +
             std::to_string(info.param.f);
    });

}  // namespace
}  // namespace mewc
