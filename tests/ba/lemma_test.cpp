// The paper's appendix, executable: one named test per lemma, asserting
// the lemma's statement over adversarial runs (and, where a lemma's
// premise is unreachable by any real adversary, over omnisciently crafted
// inputs). Lemma numbers follow the arXiv v2 text.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"
#include "ba/weak_ba/weak_ba.hpp"
#include "check/runner.hpp"
#include "common/rng.hpp"

namespace mewc {
namespace {

using harness::RunSpec;

std::vector<ProcessId> first_f(std::uint32_t f) {
  std::vector<ProcessId> v;
  for (std::uint32_t i = 0; i < f; ++i) v.push_back(i);
  return v;
}

std::vector<WireValue> plain_inputs(std::uint32_t n) {
  std::vector<WireValue> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(WireValue::plain(Value(100 + i)));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Appendix A — adaptive Byzantine Broadcast.
// ---------------------------------------------------------------------------

TEST(LemmaSuite, Lemma9_NonSilentCorrectLeaderPhaseRescuesEveryone) {
  // "If a phase is non-silent and its leader is correct, then all correct
  // processes return a valid value." Observable: with a silent sender, the
  // FIRST correct leader's phase gives everyone a value, so exactly one
  // vetting phase is ever non-silent.
  auto spec = RunSpec::for_t(3);
  adv::CrashAdversary adv({0});  // sender p0 silent; leader p0's phase dead
  const auto res = harness::run_bb(spec, 0, Value(5), adv);
  EXPECT_TRUE(res.agreement());
  // Phase 1's leader is the crashed sender; phase 2's leader p1 rescues.
  EXPECT_EQ(res.nonsilent_leaders(), 1u);
}

TEST(LemmaSuite, Lemma10_CorrectSenderPreventsIdkCertificates) {
  // "If all correct processes invoke a phase with value v != ⊥, there does
  // not exist a value signed by t+1 processes." With a correct sender,
  // every correct process has the value from round 1, so no idk message is
  // ever sent — let alone certified.
  for (std::uint32_t f : {0u, 2u}) {
    auto spec = RunSpec::for_t(5);
    adv::CrashAdversary adv(first_f(f));  // sender is n-1
    const auto res = harness::run_bb(spec, spec.n - 1, Value(5), adv);
    EXPECT_TRUE(res.agreement());
    EXPECT_EQ(res.meter.words_by_kind().count("bb.idk"), 0u) << "f=" << f;
  }
}

TEST(LemmaSuite, Lemma11_AllCorrectEnterWeakBaWithValidInputs) {
  // "All correct processes execute line 9 with a valid initial value."
  // Observable consequence: the weak BA (and hence BB) always terminates
  // with a BB_valid-or-⊥ decision, even for the nastiest sender behaviors.
  auto spec = RunSpec::for_t(2);
  for (auto mode : {adv::SenderMode::kSilent, adv::SenderMode::kEquivocate,
                    adv::SenderMode::kPartial}) {
    adv::BbEquivocatingSender adv(1, spec.instance, mode, Value(5), Value(6),
                                  2);
    const auto res = harness::run_bb(spec, 1, Value(5), adv);
    EXPECT_TRUE(res.all_decided());
    EXPECT_TRUE(res.agreement());
  }
}

TEST(LemmaSuite, Lemma12_Validity_CorrectSenderValueAlwaysWins) {
  // "If sender is correct, then all correct processes decide v_sender."
  for (std::uint32_t t : {2u, 3u, 5u}) {
    auto spec = RunSpec::for_t(t);
    adv::CrashAdversary adv(first_f(t));  // maximal crash, sender spared
    const auto res = harness::run_bb(spec, spec.n - 1, Value(31), adv);
    EXPECT_TRUE(res.all_decided()) << "t=" << t;
    EXPECT_TRUE(res.agreement()) << "t=" << t;
    EXPECT_EQ(res.decision(), Value(31)) << "t=" << t;
  }
}

// ---------------------------------------------------------------------------
// Appendix B — adaptive weak BA.
// ---------------------------------------------------------------------------

TEST(LemmaSuite, Lemma14_UpdatedDecisionsAreValid) {
  // "If a correct process updates decision during invokePhase, then v is a
  // valid decision value." The Byzantine cert-split leader drives the most
  // adversarial decision path; the decided value must pass the predicate.
  auto spec = RunSpec::for_t(2);
  adv::WbaCertSplit adv(spec.instance, 1, WireValue::plain(Value(44)), 0, 1);
  const auto res = harness::run_weak_ba(spec, plain_inputs(spec.n),
                                        harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.agreement());
  EXPECT_TRUE(AlwaysValid{}.validate(res.decision()));
}

TEST(LemmaSuite, Lemma15_AtMostOneFinalizeCertificateEver) {
  // "All correct processes that update decision during invokePhase return
  // the same decision; at most one finalize certificate can be formed."
  // The cert-split adversary plus later honest phases is exactly the
  // scenario the lemma guards: the early decider and late deciders must
  // agree on the same finalized value.
  for (std::uint32_t recipients : {1u, 2u, 3u}) {
    auto spec = RunSpec::for_t(3);
    adv::WbaCertSplit adv(spec.instance, 1, WireValue::plain(Value(50)), 1,
                          recipients);
    const auto res = harness::run_weak_ba(
        spec, plain_inputs(spec.n), harness::always_valid_factory(), adv);
    EXPECT_TRUE(res.all_decided()) << recipients;
    EXPECT_TRUE(res.agreement()) << recipients;
    EXPECT_EQ(res.decision().value, Value(50)) << recipients;
  }
}

TEST(LemmaSuite, Lemma15_AnyTwoCommitQuorumCertificatesShareTplus1Signers) {
  // The arithmetic heart of Lemma 15: two sets of ⌈(n+t+1)/2⌉ signers
  // intersect in at least t+1 processes, hence at least one correct one —
  // which is why two conflicting finalize certificates can never both form.
  // Checked three ways across the grid n = 2t+1 … 2t+9: the pigeonhole
  // worst case, real certificates combined from the two extremal subsets,
  // and randomized quorum subsets.
  for (std::uint32_t t = 1; t <= 6; ++t) {
    for (std::uint32_t n = 2 * t + 1; n <= 2 * t + 9; ++n) {
      const std::uint32_t q = commit_quorum(n, t);
      // Worst-case overlap of any two q-subsets of n is 2q - n.
      ASSERT_GE(2 * q, n);
      EXPECT_GE(2 * q - n, t + 1) << "n=" << n << " t=" << t;
    }
  }

  // Constructive: the two maximally-disjoint quorums, as actual threshold
  // certificates over the same digest. Both must combine (they are real
  // quorums), a sub-quorum must not, and their signer intersection is
  // exactly the pigeonhole bound.
  for (std::uint32_t t : {2u, 3u}) {
    for (std::uint32_t n : {2 * t + 1, 2 * t + 4, 2 * t + 9}) {
      ThresholdFamily family(n, t);
      const std::uint32_t q = commit_quorum(n, t);
      const Digest digest =
          wba::finalize_digest(/*instance=*/9, /*phase=*/1, Digest{0xabc});
      const auto cert_from = [&](std::uint32_t first, std::uint32_t count)
          -> std::optional<ThresholdSig> {
        std::vector<PartialSig> parts;
        for (std::uint32_t p = first; p < first + count; ++p) {
          parts.push_back(family.scheme(q)
                              .issue_share(static_cast<ProcessId>(p))
                              .partial_sign(digest));
        }
        return family.scheme(q).combine(parts);
      };
      const auto low = cert_from(0, q);        // signers {0 .. q-1}
      const auto high = cert_from(n - q, q);   // signers {n-q .. n-1}
      ASSERT_TRUE(low.has_value()) << "n=" << n << " t=" << t;
      ASSERT_TRUE(high.has_value()) << "n=" << n << " t=" << t;
      EXPECT_TRUE(family.scheme(q).verify(*low));
      EXPECT_TRUE(family.scheme(q).verify(*high));
      // Overlap of {0..q-1} and {n-q..n-1} is 2q - n: even the extremal
      // pair shares t+1 signers.
      EXPECT_GE(2 * q - n, t + 1) << "n=" << n << " t=" << t;
      // One signer short of a quorum must not certify.
      EXPECT_FALSE(cert_from(0, q - 1).has_value()) << "n=" << n;
    }
  }

  // Randomized quorum subsets: no draw can dodge the intersection bound.
  Rng rng(0x15ec7);
  for (std::uint32_t t : {2u, 4u}) {
    for (std::uint32_t n = 2 * t + 1; n <= 2 * t + 9; ++n) {
      const std::uint32_t q = commit_quorum(n, t);
      const auto quorum_subset = [&] {
        std::vector<std::uint32_t> ids(n);
        std::iota(ids.begin(), ids.end(), 0u);
        for (std::uint32_t i = 0; i < q; ++i) {
          std::swap(ids[i], ids[i + rng.below(n - i)]);
        }
        return std::set<std::uint32_t>(ids.begin(), ids.begin() + q);
      };
      for (int trial = 0; trial < 25; ++trial) {
        const auto a = quorum_subset();
        const auto b = quorum_subset();
        std::uint32_t common = 0;
        for (const std::uint32_t id : a) common += b.count(id);
        EXPECT_GE(common, t + 1) << "n=" << n << " t=" << t;
      }
    }
  }
}

TEST(LemmaSuite, Lemma15_RecordedStreamsCarryAtMostOneFinalizeCertificate) {
  // Lemma 15 end to end, over recorded campaign streams: in every run,
  // every finalize-shaped certificate a correct process ever puts on the
  // wire — in <finalized>, in <help> replies, or attached to <fallback>
  // announcements — certifies one single (phase, value). The adversaries
  // below are the ones that mint, withhold, split and leak certificates.
  constexpr std::uint32_t kN = 7, kT = 3;
  constexpr std::uint64_t kInstance = 1;  // run_cell's harness default
  std::size_t runs_with_finalize = 0;
  for (const char* adversary : {"none", "crash", "cert-split", "poison-help",
                                "covert-spam", "help-spam"}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      check::CellSpec cell;
      cell.protocol = check::Protocol::kWeakBa;
      cell.n = kN;
      cell.t = kT;
      cell.f = kT;
      cell.adversary = adversary;
      cell.seed = seed;
      const auto record = check::run_cell(cell, {});

      std::set<std::uint64_t> finalize_digests;
      std::set<std::uint64_t> finalized_values;
      const auto note = [&](const ThresholdSig& qc, std::uint64_t phase,
                            const WireValue& v) {
        // A finalize certificate is a commit-quorum signature on the
        // finalize digest of its claimed (phase, value); anything else
        // (commit QCs, fallback QCs, garbage) does not qualify.
        if (qc.k != commit_quorum(kN, kT)) return;
        if (qc.digest !=
            wba::finalize_digest(kInstance, phase, v.content_digest())) {
          return;
        }
        finalize_digests.insert(qc.digest.bits);
        finalized_values.insert(v.content_digest().bits);
      };
      for (const auto& m : record.log.messages) {
        if (!m.correct) continue;  // Byzantine bytes need not be coherent
        if (const auto* fz = payload_cast<wba::FinalizedMsg>(m.body)) {
          note(fz->qc, fz->phase, fz->value);
        } else if (const auto* h = payload_cast<wba::HelpMsg>(m.body)) {
          note(h->decide_proof, h->proof_phase, h->value);
        } else if (const auto* fb = payload_cast<wba::FallbackMsg>(m.body)) {
          if (fb->has_decision) note(fb->decide_proof, fb->proof_phase,
                                     fb->value);
        }
      }
      EXPECT_LE(finalize_digests.size(), 1u)
          << adversary << " seed " << seed;
      EXPECT_LE(finalized_values.size(), 1u)
          << adversary << " seed " << seed;
      runs_with_finalize += finalize_digests.size();
    }
  }
  // Non-vacuity: the happy paths finalize out loud.
  EXPECT_GT(runs_with_finalize, 0u);
}

TEST(LemmaSuite, Lemma15_TwoPhaseConflictCannotDoubleFinalize) {
  // The strongest Lemma 15 attack we can mount: commit v in phase 1 (real
  // certificate, revealed to 2 of 5 correct processes, finalize withheld),
  // then drive w through phase 2 using the 3 correct processes that never
  // saw the v-commit plus all 4 corrupted shares. Both COMMIT certificates
  // form — the paper allows that — but only one FINALIZE can, and everyone
  // must follow it.
  auto spec = RunSpec::for_t(4);  // n = 9, quorum 7
  adv::WbaTwoPhaseConflict adv(spec.instance, 1, WireValue::plain(Value(71)),
                               WireValue::plain(Value(72)),
                               /*extra=*/2, /*reveal=*/2);
  const auto res = harness::run_weak_ba(spec, plain_inputs(spec.n),
                                        harness::always_valid_factory(), adv);
  EXPECT_TRUE(adv.committed_v());   // the v-commit certificate was real
  EXPECT_TRUE(adv.committed_w());   // and so was the conflicting w-commit
  EXPECT_TRUE(adv.finalized_w());   // w finalized (v never can now)
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision().value, Value(72));
}

TEST(LemmaSuite, Lemma15_WideCommitRevealBlocksTheConflictingCommit) {
  // Same attack, but the v-commit reaches 4 of the 5 correct processes:
  // now at least (n-t+1)/2 correct are locked on v, the w-commit quorum is
  // unreachable, and the run degrades safely into the fallback.
  auto spec = RunSpec::for_t(4);
  adv::WbaTwoPhaseConflict adv(spec.instance, 1, WireValue::plain(Value(71)),
                               WireValue::plain(Value(72)),
                               /*extra=*/2, /*reveal=*/4);
  const auto res = harness::run_weak_ba(spec, plain_inputs(spec.n),
                                        harness::always_valid_factory(), adv);
  EXPECT_TRUE(adv.committed_v());
  EXPECT_FALSE(adv.committed_w());  // the Section 6 arithmetic held
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
}

TEST(LemmaSuite, Lemma16_CorrectLeaderPhaseDecidesEveryoneInRegime) {
  // "If a correct leader invokes invokePhase in phase k and f < (n-t-1)/2,
  // then all correct processes return the same valid decision by the end
  // of the phase." Crash the first f leaders: everyone decides in phase
  // f+1 exactly.
  auto spec = RunSpec::for_t(5);  // boundary f <= 2
  for (std::uint32_t f = 0; f <= 2; ++f) {
    adv::CrashAdversary adv(first_f(f));
    const auto res = harness::run_weak_ba(
        spec, plain_inputs(spec.n), harness::always_valid_factory(), adv);
    for (const auto& s : res.stats) {
      if (!s) continue;
      EXPECT_EQ(s->decided_phase, f + 1) << "f=" << f;
    }
  }
}

TEST(LemmaSuite, Lemma17_FallbackParticipationIsAllOrNothing) {
  // "If some correct process executes the fallback algorithm, all correct
  // processes do so." Sweep fallback-triggering crash patterns.
  for (std::uint32_t t : {2u, 3u, 4u}) {
    auto spec = RunSpec::for_t(t);
    adv::CrashAdversary adv(first_f(t));
    const auto res = harness::run_weak_ba(
        spec, plain_inputs(spec.n), harness::always_valid_factory(), adv);
    bool any = false, all = true;
    for (const auto& s : res.stats) {
      if (!s) continue;
      any |= s->fallback_participant;
      all &= s->fallback_participant;
    }
    EXPECT_TRUE(any) << "t=" << t;   // f = t is beyond the boundary
    EXPECT_EQ(any, all) << "t=" << t;
  }
}

TEST(LemmaSuite, Lemma19_PreFallbackDecisionSurvivesTheFallback) {
  // "If some correct process decides v before executing the fallback
  // algorithm, then all correct processes decide v." Cert-split with one
  // early decider plus enough silent corruption to force the fallback.
  auto spec = RunSpec::for_t(2);  // n = 5, boundary f <= 1
  adv::WbaCertSplit adv(spec.instance, 1, WireValue::plain(Value(61)),
                        /*extra=*/1, /*finalize_recipients=*/1);
  // f = 2 > boundary: the run must fall back, and the early decider's
  // value must win through the safety-window adoption.
  const auto res = harness::run_weak_ba(spec, plain_inputs(spec.n),
                                        harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision().value, Value(61));
}

TEST(LemmaSuite, Lemma19_PoisonHelpCannotStrandTheLoneDecider) {
  // NOTE-2 regression (the sharpest Lemma 19 corner): with f = t the
  // coalition mints a finalize certificate no correct process ever saw
  // (half the correct processes committed, none decided), lets everyone
  // enter the help round undecided, and then discloses the proof through a
  // <help> message to EXACTLY ONE process — after that process already
  // broadcast its decision-less fallback certificate. Without the
  // decide-time re-broadcast inside the window, the lone decider keeps the
  // Byzantine-proposed value while the fallback majority decides the
  // common input: a genuine agreement violation in the pseudocode as
  // literally written. The completion (weak_ba.cpp NOTE-2) must drag
  // everyone to the disclosed value instead.
  auto spec = RunSpec::for_t(4);  // n = 9, quorum 7, f = 3 (< t, but past
                                  // the boundary 2: fallback regime)
  adv::WbaCertSplit adv(spec.instance, 1, WireValue::plain(Value(77)),
                        /*extra=*/2, /*finalize_recipients=*/0,
                        /*poison_help=*/true);
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(5))),
      harness::always_valid_factory(), adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_TRUE(res.agreement());
  // The disclosed decision must win everywhere (not just at the victim).
  EXPECT_EQ(res.decision().value, Value(77));
  std::uint32_t deciders_77 = 0;
  for (const auto& s : res.stats) {
    if (s && s->decision.value == Value(77)) ++deciders_77;
  }
  EXPECT_EQ(deciders_77, spec.n - res.f());
}

TEST(LemmaSuite, Lemma21_Termination_EveryCorrectProcessDecides) {
  for (std::uint32_t t : {1u, 2u, 3u, 4u}) {
    for (std::uint32_t f = 0; f <= t; ++f) {
      auto spec = RunSpec::for_t(t);
      adv::CrashAdversary adv(first_f(f));
      const auto res = harness::run_weak_ba(
          spec, plain_inputs(spec.n), harness::always_valid_factory(), adv);
      EXPECT_TRUE(res.all_decided()) << "t=" << t << " f=" << f;
    }
  }
}

TEST(LemmaSuite, Lemma22_BottomOnlyWhenMultipleValidValuesExist) {
  // Unique validity, contrapositive: with a predicate the adversary cannot
  // satisfy for any second value, ⊥ never appears — even in the deepest
  // fallback.
  auto spec = RunSpec::for_t(3);
  ThresholdFamily mint(spec.n, spec.t, spec.backend, spec.seed);
  std::vector<PartialSig> ps;
  for (ProcessId p = 0; p < spec.t + 1; ++p) {
    ps.push_back(mint.scheme(spec.t + 1).issue_share(p).partial_sign(
        input_attestation_digest(spec.instance, Value(9))));
  }
  const WireValue attested =
      WireValue::certified(Value(9), *mint.scheme(spec.t + 1).combine(ps));
  harness::PredicateFactory factory = [](const ThresholdFamily& fam,
                                         std::uint64_t instance) {
    return std::make_shared<const InputCertified>(fam, instance);
  };
  adv::CrashAdversary adv(first_f(3));
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, attested), factory, adv);
  EXPECT_TRUE(res.all_decided());
  EXPECT_FALSE(res.decision().is_bottom());
  EXPECT_EQ(res.decision().value, Value(9));
}

TEST(LemmaSuite, Lemma23_DecideAtMostOnce) {
  // "All correct processes decide at most once." Omniscient premise: feed
  // a process two finalize certificates for different phases/values (a
  // real adversary cannot mint the second, but the guard must hold
  // regardless). The first decision sticks.
  constexpr std::uint32_t kT = 2, kN = 5, kInstance = 8;
  ThresholdFamily family(kN, kT);
  std::vector<KeyBundle> bundles;
  for (ProcessId p = 0; p < kN; ++p) bundles.push_back(family.issue_bundle(p));
  ProtocolContext ctx;
  ctx.id = 3;
  ctx.n = kN;
  ctx.t = kT;
  ctx.instance = kInstance;
  ctx.crypto = &family;
  ctx.keys = &bundles[3];
  wba::WeakBaProcess proc(ctx, std::make_shared<const AlwaysValid>(),
                          WireValue::plain(Value(1)));

  auto finalize_for = [&](std::uint64_t phase, Value v) {
    const WireValue wv = WireValue::plain(v);
    const std::uint32_t q = commit_quorum(kN, kT);
    std::vector<PartialSig> parts;
    for (ProcessId p = 0; p < q; ++p) {
      parts.push_back(family.scheme(q).issue_share(p).partial_sign(
          wba::finalize_digest(kInstance, phase, wv.content_digest())));
    }
    auto m = std::make_shared<wba::FinalizedMsg>();
    m->phase = phase;
    m->value = wv;
    m->qc = *family.scheme(q).combine(parts);
    return m;
  };
  auto deliver = [&](Round r, std::uint64_t phase, Value v,
                     ProcessId leader) {
    Outbox out(kN);
    proc.on_send(r, out);
    Message m;
    m.from = leader;
    m.to = 3;
    m.round = r;
    m.body = finalize_for(phase, v);
    m.words = 1;
    std::vector<Message> inbox = {m};
    proc.on_receive(r, inbox);
  };
  for (Round r = 1; r <= 4; ++r) {
    Outbox out(kN);
    proc.on_send(r, out);
    proc.on_receive(r, {});
  }
  deliver(5, 1, Value(7), /*leader=*/0);
  ASSERT_TRUE(proc.decided());
  ASSERT_EQ(proc.decision().value, Value(7));
  for (Round r = 6; r <= 9; ++r) {
    Outbox out(kN);
    proc.on_send(r, out);
    proc.on_receive(r, {});
  }
  deliver(10, 2, Value(8), /*leader=*/1);  // second "finalize": ignored
  EXPECT_EQ(proc.decision().value, Value(7));
  EXPECT_EQ(proc.stats().decided_phase, 1u);
}

// ---------------------------------------------------------------------------
// Section 6.1 / Section 7 — complexity lemmas.
// ---------------------------------------------------------------------------

TEST(LemmaSuite, Lemma6_NoFallbackBelowTheBoundary) {
  // "If f < (n-t-1)/2, correct processes never perform the fallback."
  for (std::uint32_t t : {4u, 6u, 8u}) {
    auto spec = RunSpec::for_t(t);
    const std::uint32_t boundary = spec.n - commit_quorum(spec.n, spec.t);
    for (std::uint32_t f = 0; f <= boundary; ++f) {
      adv::CrashAdversary adv(first_f(f));
      const auto res = harness::run_weak_ba(
          spec, plain_inputs(spec.n), harness::always_valid_factory(), adv);
      EXPECT_FALSE(res.any_fallback()) << "t=" << t << " f=" << f;
    }
  }
}

TEST(LemmaSuite, Lemma8_FailureFreeAlgorithm5NeverFallsBack) {
  // "If f = 0, correct processes never perform the fallback algorithm."
  for (std::uint32_t t : {2u, 5u, 10u}) {
    auto spec = RunSpec::for_t(t);
    adv::NullAdversary adv;
    const auto res = harness::run_strong_ba(
        spec, std::vector<Value>(spec.n, Value(t % 2)), adv);
    EXPECT_FALSE(res.any_fallback()) << "t=" << t;
    EXPECT_TRUE(res.all_fast()) << "t=" << t;
  }
}

// ---------------------------------------------------------------------------
// Appendix C — Algorithm 5.
// ---------------------------------------------------------------------------

TEST(LemmaSuite, Lemma26_Agreement_HiddenCertificateCannotSplit) {
  // "All correct processes decide on the same value" — including when the
  // decide certificate reaches only some processes before the fallback.
  for (std::uint32_t reach : {1u, 2u, 4u}) {
    auto spec = RunSpec::for_t(2);
    adv::Alg5Withhold adv(spec.instance, adv::Alg5Mode::kHideDecide, reach);
    const auto res = harness::run_strong_ba(
        spec, std::vector<Value>(spec.n, Value(1)), adv);
    EXPECT_TRUE(res.all_decided()) << reach;
    EXPECT_TRUE(res.agreement()) << reach;
    EXPECT_EQ(res.decision(), Value(1)) << reach;
  }
}

TEST(LemmaSuite, Lemma27_Termination_AllAdversaries) {
  auto spec = RunSpec::for_t(3);
  for (auto mode : {adv::Alg5Mode::kSilent, adv::Alg5Mode::kSplitPropose,
                    adv::Alg5Mode::kHideDecide}) {
    adv::Alg5Withhold adv(spec.instance, mode, 1);
    std::vector<Value> mixed;
    for (std::uint32_t i = 0; i < spec.n; ++i) mixed.push_back(Value(i % 2));
    const auto res = harness::run_strong_ba(spec, mixed, adv);
    EXPECT_TRUE(res.all_decided());
    EXPECT_TRUE(res.agreement());
  }
}

TEST(LemmaSuite, Lemma28_StrongUnanimity) {
  // "If all correct processes propose the same value v, the output is v."
  for (int bit : {0, 1}) {
    for (std::uint32_t f : {0u, 1u, 3u}) {
      auto spec = RunSpec::for_t(3);
      adv::CrashAdversary adv(first_f(f));
      const auto res = harness::run_strong_ba(
          spec, std::vector<Value>(spec.n, Value(bit)), adv);
      EXPECT_EQ(res.decision(), Value(bit)) << "bit=" << bit << " f=" << f;
    }
  }
}

}  // namespace
}  // namespace mewc
