#include "ba/validity/predicate.hpp"

#include <gtest/gtest.h>

namespace mewc {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kT = 2;
  static constexpr std::uint32_t kN = 5;
  static constexpr std::uint64_t kInstance = 42;
  static constexpr ProcessId kSender = 1;

  ThresholdFamily fam_{kN, kT};
  BbValid bb_{fam_, kInstance, kSender};
  InputCertified ic_{fam_, kInstance};

  WireValue sender_signed(Value v, ProcessId signer = kSender) {
    return WireValue::signed_by(
        v, fam_.pki().issue_key(signer).sign(bb_sender_digest(kInstance, v)));
  }

  WireValue idk_cert(std::uint64_t j, std::uint32_t signers = kT + 1) {
    std::vector<PartialSig> ps;
    for (ProcessId p = 0; p < signers; ++p) {
      ps.push_back(fam_.scheme(kT + 1).issue_share(p).partial_sign(
          bb_idk_digest(kInstance, j)));
    }
    auto qc = fam_.scheme(kT + 1).combine(ps);
    return WireValue::certified(kIdkValue, qc.value_or(ThresholdSig{}), j);
  }
};

TEST_F(PredicateTest, AlwaysValidAcceptsNonBottom) {
  AlwaysValid av;
  EXPECT_TRUE(av.validate(WireValue::plain(Value(0))));
  EXPECT_FALSE(av.validate(bottom_value()));
}

TEST_F(PredicateTest, BbValidAcceptsSenderSignedValue) {
  EXPECT_TRUE(bb_.validate(sender_signed(Value(7))));
}

TEST_F(PredicateTest, BbValidRejectsNonSenderSignature) {
  // Signed, but by process 3, not the designated sender.
  EXPECT_FALSE(bb_.validate(sender_signed(Value(7), 3)));
}

TEST_F(PredicateTest, BbValidRejectsWrongInstance) {
  WireValue w = WireValue::signed_by(
      Value(7),
      fam_.pki().issue_key(kSender).sign(bb_sender_digest(kInstance + 1,
                                                          Value(7))));
  EXPECT_FALSE(bb_.validate(w));
}

TEST_F(PredicateTest, BbValidRejectsValueSwap) {
  // Take a real sender signature on 7 and claim it covers 8.
  WireValue w = sender_signed(Value(7));
  w.value = Value(8);
  EXPECT_FALSE(bb_.validate(w));
}

TEST_F(PredicateTest, BbValidRejectsPlainAndBottom) {
  EXPECT_FALSE(bb_.validate(WireValue::plain(Value(7))));
  EXPECT_FALSE(bb_.validate(bottom_value()));
}

TEST_F(PredicateTest, BbValidAcceptsIdkCertificate) {
  EXPECT_TRUE(bb_.validate(idk_cert(3)));
}

TEST_F(PredicateTest, BbValidRejectsIdkCertWithWrongPhaseClaim) {
  WireValue w = idk_cert(3);
  w.aux = 4;  // certificate was formed for phase 3
  EXPECT_FALSE(bb_.validate(w));
}

TEST_F(PredicateTest, BbValidRejectsIdkCertOnNonIdkValue) {
  WireValue w = idk_cert(3);
  w.value = Value(9);
  EXPECT_FALSE(bb_.validate(w));
}

TEST_F(PredicateTest, BbValidRejectsUndersizedIdkCert) {
  // combine() already fails below t+1; a zeroed cert must not verify.
  WireValue w = idk_cert(3, kT);  // cert field is defaulted garbage
  EXPECT_FALSE(bb_.validate(w));
}

TEST_F(PredicateTest, InputCertifiedAcceptsAttestedValue) {
  std::vector<PartialSig> ps;
  for (ProcessId p = 0; p < kT + 1; ++p) {
    ps.push_back(fam_.scheme(kT + 1).issue_share(p).partial_sign(
        input_attestation_digest(kInstance, Value(5))));
  }
  auto qc = fam_.scheme(kT + 1).combine(ps);
  ASSERT_TRUE(qc.has_value());
  EXPECT_TRUE(ic_.validate(WireValue::certified(Value(5), *qc)));
}

TEST_F(PredicateTest, InputCertifiedRejectsValueSwap) {
  std::vector<PartialSig> ps;
  for (ProcessId p = 0; p < kT + 1; ++p) {
    ps.push_back(fam_.scheme(kT + 1).issue_share(p).partial_sign(
        input_attestation_digest(kInstance, Value(5))));
  }
  auto qc = fam_.scheme(kT + 1).combine(ps);
  ASSERT_TRUE(qc.has_value());
  EXPECT_FALSE(ic_.validate(WireValue::certified(Value(6), *qc)));
}

TEST_F(PredicateTest, InputCertifiedRejectsPlainValues) {
  EXPECT_FALSE(ic_.validate(WireValue::plain(Value(5))));
}

TEST_F(PredicateTest, NamesAreStable) {
  EXPECT_STREQ(bb_.name(), "bb_valid");
  EXPECT_STREQ(ic_.name(), "input_certified");
  EXPECT_STREQ(AlwaysValid{}.name(), "always_valid");
}

}  // namespace
}  // namespace mewc
