// Direct process-level unit tests for Algorithm 5's acceptance rules.
#include <gtest/gtest.h>

#include "ba/strong_ba/strong_ba.hpp"

namespace mewc {
namespace {

constexpr std::uint32_t kT = 2;
constexpr std::uint32_t kN = 5;
constexpr std::uint64_t kInstance = 6;

class StrongBaUnit : public ::testing::Test {
 protected:
  StrongBaUnit() : family_(kN, kT) {
    for (ProcessId p = 0; p < kN; ++p) {
      bundles_.push_back(family_.issue_bundle(p));
    }
  }

  ProtocolContext ctx(ProcessId id) {
    ProtocolContext c;
    c.id = id;
    c.n = kN;
    c.t = kT;
    c.instance = kInstance;
    c.crypto = &family_;
    c.keys = &bundles_[id];
    return c;
  }

  sba::StrongBaProcess make(ProcessId id, Value input = Value(1)) {
    return sba::StrongBaProcess(ctx(id), input);
  }

  static Message msg(ProcessId from, Round r, PayloadPtr body) {
    Message m;
    m.from = from;
    m.to = 1;
    m.round = r;
    m.words = Message::cost_of(*body);
    m.body = std::move(body);
    return m;
  }

  std::vector<std::pair<ProcessId, PayloadPtr>> drive(
      sba::StrongBaProcess& proc, Round r, std::vector<Message> inbox = {}) {
    Outbox out(kN);
    proc.on_send(r, out);
    proc.on_receive(r, inbox);
    return out.sends();
  }

  ThresholdSig propose_qc(Value v) {
    std::vector<PartialSig> ps;
    for (ProcessId p = 0; p < kT + 1; ++p) {
      ps.push_back(family_.scheme(kT + 1).issue_share(p).partial_sign(
          sba::propose_digest(kInstance, v)));
    }
    return *family_.scheme(kT + 1).combine(ps);
  }

  ThresholdSig decide_qc(Value v) {
    std::vector<PartialSig> ps;
    for (ProcessId p = 0; p < kN; ++p) {
      ps.push_back(family_.scheme(kN).issue_share(p).partial_sign(
          sba::decide_digest(kInstance, v)));
    }
    return *family_.scheme(kN).combine(ps);
  }

  PayloadPtr propose_cert(Value v) {
    auto m = std::make_shared<sba::ProposeCertMsg>();
    m->value = v;
    m->qc = propose_qc(v);
    return m;
  }

  PayloadPtr decide_cert(Value v) {
    auto m = std::make_shared<sba::DecideCertMsg>();
    m->value = v;
    m->qc = decide_qc(v);
    return m;
  }

  template <typename T>
  static const T* find_sent(
      const std::vector<std::pair<ProcessId, PayloadPtr>>& sends) {
    for (const auto& [to, body] : sends) {
      if (const T* p = payload_cast<T>(body)) return p;
    }
    return nullptr;
  }

  ThresholdFamily family_;
  std::vector<KeyBundle> bundles_;
};

TEST_F(StrongBaUnit, EveryoneSendsInputToLeader) {
  auto proc = make(3, Value(0));
  auto sends = drive(proc, 1);
  const auto* in = find_sent<sba::InputMsg>(sends);
  ASSERT_NE(in, nullptr);
  EXPECT_EQ(in->value, Value(0));
  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends[0].first, sba::StrongBaProcess::kLeader);
}

TEST_F(StrongBaUnit, RejectsNonBinaryInput) {
  EXPECT_DEATH(make(0, Value(2)), "binary");
}

TEST_F(StrongBaUnit, VotesDecideForValidProposeCert) {
  auto proc = make(3);
  drive(proc, 1);
  drive(proc, 2, {msg(0, 2, propose_cert(Value(1)))});
  auto sends = drive(proc, 3);
  const auto* d = find_sent<sba::DecideVoteMsg>(sends);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->value, Value(1));
  EXPECT_EQ(d->partial.k, kN);  // (n, n) scheme
}

TEST_F(StrongBaUnit, IgnoresProposeCertFromNonLeader) {
  auto proc = make(3);
  drive(proc, 1);
  drive(proc, 2, {msg(2, 2, propose_cert(Value(1)))});
  EXPECT_TRUE(drive(proc, 3).empty());
}

TEST_F(StrongBaUnit, IgnoresProposeCertWithWrongValueBinding) {
  auto proc = make(3);
  drive(proc, 1);
  auto m = std::make_shared<sba::ProposeCertMsg>();
  m->value = Value(0);
  m->qc = propose_qc(Value(1));  // certificate covers 1
  drive(proc, 2, {msg(0, 2, m)});
  EXPECT_TRUE(drive(proc, 3).empty());
}

TEST_F(StrongBaUnit, SignsDecideForAtMostOneProposal) {
  auto proc = make(3);
  drive(proc, 1);
  drive(proc, 2, {msg(0, 2, propose_cert(Value(0))),
                  msg(0, 2, propose_cert(Value(1)))});
  auto sends = drive(proc, 3);
  std::size_t decide_votes = 0;
  for (const auto& [to, body] : sends) {
    decide_votes += payload_cast<sba::DecideVoteMsg>(body) != nullptr;
  }
  EXPECT_EQ(decide_votes, 1u);
}

TEST_F(StrongBaUnit, ValidDecideCertDecidesFast) {
  auto proc = make(3);
  for (Round r = 1; r <= 3; ++r) drive(proc, r);
  drive(proc, 4, {msg(0, 4, decide_cert(Value(1)))});
  EXPECT_TRUE(proc.decided());
  EXPECT_EQ(proc.decision(), Value(1));
  EXPECT_TRUE(proc.stats().decided_fast);
  EXPECT_EQ(proc.stats().decided_round, 4u);
  // A decided process does not raise the alarm in round 5.
  EXPECT_TRUE(drive(proc, 5).empty());
}

TEST_F(StrongBaUnit, RejectsDecideCertWithWrongScheme) {
  auto proc = make(3);
  for (Round r = 1; r <= 3; ++r) drive(proc, r);
  auto m = std::make_shared<sba::DecideCertMsg>();
  m->value = Value(1);
  m->qc = propose_qc(Value(1));  // (t+1)-certificate, not (n, n)
  drive(proc, 4, {msg(0, 4, m)});
  EXPECT_FALSE(proc.decided());
}

TEST_F(StrongBaUnit, UndecidedProcessBroadcastsFallbackAlarm) {
  auto proc = make(3);
  for (Round r = 1; r <= 4; ++r) drive(proc, r);
  auto sends = drive(proc, 5);
  const auto* f = find_sent<sba::FallbackMsg>(sends);
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->has_decision);
  EXPECT_EQ(sends.size(), kN);
}

TEST_F(StrongBaUnit, DecidedProcessEchoesProofWhenAlarmed) {
  auto proc = make(3);
  for (Round r = 1; r <= 3; ++r) drive(proc, r);
  drive(proc, 4, {msg(0, 4, decide_cert(Value(1)))});
  // Another process's alarm arrives in round 5; the decided process echoes
  // its decision and proof in round 6 (Algorithm 5 lines 25-27).
  auto alarm = std::make_shared<sba::FallbackMsg>();
  drive(proc, 5, {msg(2, 5, alarm)});
  auto sends = drive(proc, 6);
  const auto* f = find_sent<sba::FallbackMsg>(sends);
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->has_decision);
  EXPECT_EQ(f->value, Value(1));
  EXPECT_EQ(f->proof.k, kN);
}

TEST_F(StrongBaUnit, QuietDecidedProcessNeverSpeaksAgain) {
  auto proc = make(3);
  for (Round r = 1; r <= 3; ++r) drive(proc, r);
  drive(proc, 4, {msg(0, 4, decide_cert(Value(1)))});
  for (Round r = 5; r <= sba::StrongBaProcess::total_rounds(kT); ++r) {
    EXPECT_TRUE(drive(proc, r).empty()) << "round " << r;
  }
  EXPECT_EQ(proc.decision(), Value(1));
}

}  // namespace
}  // namespace mewc
