#include "ba/value.hpp"

#include <gtest/gtest.h>

#include "crypto/family.hpp"

namespace mewc {
namespace {

TEST(Value, BottomAndIdkAreDistinguished) {
  EXPECT_TRUE(kBottom.is_bottom());
  EXPECT_FALSE(kBottom.is_idk());
  EXPECT_TRUE(kIdkValue.is_idk());
  EXPECT_FALSE(kIdkValue.is_bottom());
  EXPECT_NE(kBottom, kIdkValue);
}

TEST(ModelParams, QuorumIntersectionProperty) {
  // ceil((n+t+1)/2): two quorums overlap in >= t+1 processes (Section 6).
  for (std::uint32_t t = 1; t <= 50; ++t) {
    const std::uint32_t n = n_for_t(t);
    const std::uint32_t q = commit_quorum(n, t);
    EXPECT_GE(2 * q, n + t + 1) << "t=" << t;       // overlap >= t+1
    EXPECT_LT(2 * (q - 1), n + t + 1) << "t=" << t; // and q is minimal
  }
}

TEST(ModelParams, AdaptiveRegimeBoundary) {
  // n - f >= quorum iff the paper's phases can certify from correct votes.
  const std::uint32_t t = 10, n = n_for_t(t);  // n=21, quorum=16
  EXPECT_EQ(commit_quorum(n, t), 16u);
  EXPECT_TRUE(adaptive_regime(n, t, 0));
  EXPECT_TRUE(adaptive_regime(n, t, 5));
  EXPECT_FALSE(adaptive_regime(n, t, 6));
  EXPECT_FALSE(adaptive_regime(n, t, t));
}

class WireValueTest : public ::testing::Test {
 protected:
  ThresholdFamily fam_{5, 2};
};

TEST_F(WireValueTest, PlainRoundTrip) {
  const WireValue w = WireValue::plain(Value(7));
  EXPECT_EQ(w.prov, Provenance::kPlain);
  EXPECT_EQ(w.words(), 1u);
  EXPECT_FALSE(w.is_bottom());
  EXPECT_TRUE(bottom_value().is_bottom());
}

TEST_F(WireValueTest, AttachmentsCostWords) {
  const Signature sig =
      fam_.pki().issue_key(0).sign(DigestBuilder("x").done());
  EXPECT_EQ(WireValue::signed_by(Value(1), sig).words(), 2u);

  ThresholdSig cert;
  EXPECT_EQ(WireValue::certified(Value(1), cert).words(), 2u);
}

TEST_F(WireValueTest, ContentDigestBindsProvenance) {
  // The certified object is the signed value itself: stripping or swapping
  // provenance must change the digest, or certificates could be re-attached.
  const Signature sig =
      fam_.pki().issue_key(0).sign(DigestBuilder("x").done());
  const WireValue plain = WireValue::plain(Value(1));
  const WireValue signed_v = WireValue::signed_by(Value(1), sig);
  EXPECT_NE(plain.content_digest(), signed_v.content_digest());

  // The binding is by attestation identity (who signed which digest), not
  // by tag bytes: swapping the signer or the signed digest re-attaches
  // different provenance and must change the content digest...
  Signature other_signer = sig;
  other_signer.signer = 1;
  EXPECT_NE(signed_v.content_digest(),
            WireValue::signed_by(Value(1), other_signer).content_digest());
  Signature other_digest = sig;
  other_digest.digest.bits ^= 1;
  EXPECT_NE(signed_v.content_digest(),
            WireValue::signed_by(Value(1), other_digest).content_digest());

  // ...while the tag is a deterministic function of that identity in every
  // backend (and is verified before adoption), so it contributes nothing:
  // this is what keeps content digests identical across crypto backends,
  // which the ideal <-> real differential harness pins grid-wide.
  Signature other_tag = sig;
  other_tag.tag ^= 1;
  EXPECT_EQ(signed_v.content_digest(),
            WireValue::signed_by(Value(1), other_tag).content_digest());
}

TEST_F(WireValueTest, ContentDigestBindsAux) {
  ThresholdSig cert;
  const WireValue a = WireValue::certified(kIdkValue, cert, 1);
  const WireValue b = WireValue::certified(kIdkValue, cert, 2);
  EXPECT_NE(a.content_digest(), b.content_digest());
}

TEST_F(WireValueTest, EqualityIsFullContent) {
  const Signature sig =
      fam_.pki().issue_key(0).sign(DigestBuilder("x").done());
  const WireValue a = WireValue::signed_by(Value(1), sig);
  WireValue b = a;
  EXPECT_EQ(a, b);
  b.value = Value(2);
  EXPECT_NE(a, b);
  WireValue c = a;
  c.prov = Provenance::kPlain;
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace mewc
