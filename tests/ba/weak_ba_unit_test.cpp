// Direct process-level unit tests for Algorithm 4's subtle acceptance
// rules: each test drives a single WeakBaProcess with hand-crafted inboxes
// and checks exactly which messages it emits. This pins the validation
// branches (wrong leader, invalid proposal, stale or future commit levels,
// forged certificates) that integration runs only exercise incidentally.
#include <gtest/gtest.h>

#include "ba/weak_ba/weak_ba.hpp"
#include "crypto/signer_set.hpp"

namespace mewc {
namespace {

constexpr std::uint32_t kT = 2;
constexpr std::uint32_t kN = 5;
constexpr std::uint64_t kInstance = 9;

class WeakBaUnit : public ::testing::Test {
 protected:
  WeakBaUnit() : family_(kN, kT) {
    for (ProcessId p = 0; p < kN; ++p) {
      bundles_.push_back(family_.issue_bundle(p));
    }
  }

  ProtocolContext ctx(ProcessId id) {
    ProtocolContext c;
    c.id = id;
    c.n = kN;
    c.t = kT;
    c.instance = kInstance;
    c.crypto = &family_;
    c.keys = &bundles_[id];
    return c;
  }

  wba::WeakBaProcess make(ProcessId id, Value input = Value(7)) {
    return wba::WeakBaProcess(ctx(id),
                              std::make_shared<const AlwaysValid>(),
                              WireValue::plain(input));
  }

  static Message msg(ProcessId from, ProcessId to, Round r, PayloadPtr body) {
    Message m;
    m.from = from;
    m.to = to;
    m.round = r;
    m.words = Message::cost_of(*body);
    m.body = std::move(body);
    return m;
  }

  /// Runs one round: send step (returning what was sent), then delivery.
  std::vector<std::pair<ProcessId, PayloadPtr>> drive(
      wba::WeakBaProcess& proc, Round r, std::vector<Message> inbox = {}) {
    Outbox out(kN);
    proc.on_send(r, out);
    proc.on_receive(r, inbox);
    return out.sends();
  }

  /// A correct commit certificate on (value, level).
  ThresholdSig commit_qc(const WireValue& v, std::uint64_t level) {
    const std::uint32_t q = commit_quorum(kN, kT);
    const Digest d = wba::commit_digest(kInstance, level, v.content_digest());
    std::vector<PartialSig> ps;
    for (ProcessId p = 0; p < q; ++p) {
      ps.push_back(family_.scheme(q).issue_share(p).partial_sign(d));
    }
    return *family_.scheme(q).combine(ps);
  }

  ThresholdSig finalize_qc(const WireValue& v, std::uint64_t phase) {
    const std::uint32_t q = commit_quorum(kN, kT);
    const Digest d =
        wba::finalize_digest(kInstance, phase, v.content_digest());
    std::vector<PartialSig> ps;
    for (ProcessId p = 0; p < q; ++p) {
      ps.push_back(family_.scheme(q).issue_share(p).partial_sign(d));
    }
    return *family_.scheme(q).combine(ps);
  }

  static PayloadPtr propose(std::uint64_t phase, const WireValue& v) {
    auto m = std::make_shared<wba::ProposeMsg>();
    m->phase = phase;
    m->value = v;
    return m;
  }

  PayloadPtr commit_msg(std::uint64_t phase, const WireValue& v,
                        std::uint64_t level) {
    auto m = std::make_shared<wba::CommitMsg>();
    m->phase = phase;
    m->value = v;
    m->level = level;
    m->qc = commit_qc(v, level);
    return m;
  }

  template <typename T>
  static const T* find_sent(
      const std::vector<std::pair<ProcessId, PayloadPtr>>& sends) {
    for (const auto& [to, body] : sends) {
      if (const T* p = payload_cast<T>(body)) return p;
    }
    return nullptr;
  }

  ThresholdFamily family_;
  std::vector<KeyBundle> bundles_;
};

TEST_F(WeakBaUnit, UndecidedLeaderProposesItsInput) {
  auto leader = make(0, Value(42));  // p0 leads phase 1
  auto sends = drive(leader, 1);
  const auto* p = find_sent<wba::ProposeMsg>(sends);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->phase, 1u);
  EXPECT_EQ(p->value.value, Value(42));
  EXPECT_EQ(sends.size(), kN);  // broadcast
}

TEST_F(WeakBaUnit, NonLeaderStaysSilentInProposeRound) {
  auto proc = make(1);
  EXPECT_TRUE(drive(proc, 1).empty());
}

TEST_F(WeakBaUnit, VotesForValidLeaderProposal) {
  auto proc = make(1);
  drive(proc, 1, {msg(0, 1, 1, propose(1, WireValue::plain(Value(5))))});
  auto sends = drive(proc, 2);
  const auto* v = find_sent<wba::VoteMsg>(sends);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->partial.signer, 1u);
  EXPECT_EQ(v->partial.k, commit_quorum(kN, kT));
  EXPECT_TRUE(family_.scheme(commit_quorum(kN, kT))
                  .verify_partial(v->partial));
  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends[0].first, 0u);  // unicast to the leader
}

TEST_F(WeakBaUnit, IgnoresProposalFromNonLeader) {
  auto proc = make(1);
  drive(proc, 1, {msg(2, 1, 1, propose(1, WireValue::plain(Value(5))))});
  EXPECT_TRUE(drive(proc, 2).empty());
}

TEST_F(WeakBaUnit, IgnoresProposalWithWrongPhase) {
  auto proc = make(1);
  drive(proc, 1, {msg(0, 1, 1, propose(2, WireValue::plain(Value(5))))});
  EXPECT_TRUE(drive(proc, 2).empty());
}

TEST_F(WeakBaUnit, DoesNotVoteForInvalidProposal) {
  auto proc = make(1);
  // AlwaysValid rejects bottom.
  drive(proc, 1, {msg(0, 1, 1, propose(1, bottom_value()))});
  EXPECT_TRUE(drive(proc, 2).empty());
}

TEST_F(WeakBaUnit, VotesOnlyForFirstProposalOfAPhase) {
  auto proc = make(1);
  drive(proc, 1, {msg(0, 1, 1, propose(1, WireValue::plain(Value(5)))),
                  msg(0, 1, 1, propose(1, WireValue::plain(Value(6))))});
  auto sends = drive(proc, 2);
  const auto* v = find_sent<wba::VoteMsg>(sends);
  ASSERT_NE(v, nullptr);
  const WireValue first = WireValue::plain(Value(5));
  EXPECT_EQ(v->partial.digest,
            wba::commit_digest(kInstance, 1, first.content_digest()));
}

TEST_F(WeakBaUnit, AcceptsValidCommitAndSendsDecideVote) {
  auto proc = make(1);
  drive(proc, 1);
  drive(proc, 2);
  const WireValue v = WireValue::plain(Value(5));
  drive(proc, 3, {msg(0, 1, 3, commit_msg(1, v, 1))});
  auto sends = drive(proc, 4);
  const auto* d = find_sent<wba::DecideMsg>(sends);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->partial.digest,
            wba::finalize_digest(kInstance, 1, v.content_digest()));
}

TEST_F(WeakBaUnit, RejectsCommitFromNonLeader) {
  auto proc = make(1);
  drive(proc, 1);
  drive(proc, 2);
  drive(proc, 3,
        {msg(3, 1, 3, commit_msg(1, WireValue::plain(Value(5)), 1))});
  EXPECT_TRUE(drive(proc, 4).empty());
}

TEST_F(WeakBaUnit, RejectsFutureLevelCommit) {
  auto proc = make(1);
  drive(proc, 1);
  drive(proc, 2);
  // A certificate claiming it was formed in phase 3, delivered in phase 1.
  drive(proc, 3,
        {msg(0, 1, 3, commit_msg(1, WireValue::plain(Value(5)), 3))});
  EXPECT_TRUE(drive(proc, 4).empty());
}

TEST_F(WeakBaUnit, RejectsStaleCommitBelowOwnLevel) {
  auto proc = make(3);
  const WireValue v2 = WireValue::plain(Value(6));
  // Phase 1: silent for this process. Phase 2 (leader p1): commit at
  // level 2 — proc's commit_level becomes 2.
  for (Round r = 1; r <= 5; ++r) drive(proc, r);
  drive(proc, 6);
  drive(proc, 7);
  drive(proc, 8, {msg(1, 3, 8, commit_msg(2, v2, 2))});
  ASSERT_FALSE(drive(proc, 9).empty());  // decide vote for phase 2

  // Phase 3 (leader p2): echoes an older level-1 certificate on another
  // value. Level 1 < commit_level 2: must be rejected (Algorithm 4 line 43).
  const WireValue v1 = WireValue::plain(Value(5));
  drive(proc, 10);
  drive(proc, 11);
  drive(proc, 12);
  drive(proc, 13, {msg(2, 3, 13, commit_msg(3, v1, 1))});
  EXPECT_TRUE(drive(proc, 14).empty());
}

TEST_F(WeakBaUnit, RejectsCommitWithMismatchedCertificate) {
  auto proc = make(1);
  drive(proc, 1);
  drive(proc, 2);
  // Certificate formed over value 5, message claims value 6.
  auto m = std::make_shared<wba::CommitMsg>();
  m->phase = 1;
  m->value = WireValue::plain(Value(6));
  m->level = 1;
  m->qc = commit_qc(WireValue::plain(Value(5)), 1);
  drive(proc, 3, {msg(0, 1, 3, m)});
  EXPECT_TRUE(drive(proc, 4).empty());
}

TEST_F(WeakBaUnit, ValidFinalizeDecides) {
  auto proc = make(1);
  for (Round r = 1; r <= 4; ++r) drive(proc, r);
  const WireValue v = WireValue::plain(Value(5));
  auto m = std::make_shared<wba::FinalizedMsg>();
  m->phase = 1;
  m->value = v;
  m->qc = finalize_qc(v, 1);
  drive(proc, 5, {msg(0, 1, 5, m)});
  EXPECT_TRUE(proc.decided());
  EXPECT_EQ(proc.decision().value, Value(5));
  EXPECT_EQ(proc.stats().decided_phase, 1u);
}

TEST_F(WeakBaUnit, RejectsFinalizeWithWrongPhaseBinding) {
  auto proc = make(1);
  for (Round r = 1; r <= 4; ++r) drive(proc, r);
  const WireValue v = WireValue::plain(Value(5));
  auto m = std::make_shared<wba::FinalizedMsg>();
  m->phase = 1;
  m->value = v;
  m->qc = finalize_qc(v, 2);  // certificate bound to phase 2
  drive(proc, 5, {msg(0, 1, 5, m)});
  EXPECT_FALSE(proc.decided());
}

TEST_F(WeakBaUnit, DecidedProcessDoesNotProposeItsPhase) {
  auto proc = make(1);  // p1 leads phase 2
  for (Round r = 1; r <= 4; ++r) drive(proc, r);
  const WireValue v = WireValue::plain(Value(5));
  auto m = std::make_shared<wba::FinalizedMsg>();
  m->phase = 1;
  m->value = v;
  m->qc = finalize_qc(v, 1);
  drive(proc, 5, {msg(0, 1, 5, m)});
  ASSERT_TRUE(proc.decided());
  // Phase 2's propose round: silent (Algorithm 4 line 31).
  EXPECT_TRUE(drive(proc, 6).empty());
}

TEST_F(WeakBaUnit, CommittedProcessReportsCommitInsteadOfVoting) {
  auto proc = make(1);
  drive(proc, 1);
  drive(proc, 2);
  const WireValue v = WireValue::plain(Value(5));
  drive(proc, 3, {msg(0, 1, 3, commit_msg(1, v, 1))});
  drive(proc, 4);
  drive(proc, 5);
  // Phase 2, new proposal from p1: the committed process must answer with
  // its commit info, not a vote (Algorithm 4 lines 35-36).
  drive(proc, 6, {msg(1, 1, 6, propose(2, WireValue::plain(Value(8))))});
  auto sends = drive(proc, 7);
  EXPECT_EQ(find_sent<wba::VoteMsg>(sends), nullptr);
  const auto* c = find_sent<wba::CommitMsg>(sends);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value.value, Value(5));
  EXPECT_EQ(c->level, 1u);
}

TEST_F(WeakBaUnit, UndecidedProcessBroadcastsHelpRequest) {
  auto proc = make(1);
  const Round help = 5 * kN + 1;
  for (Round r = 1; r < help; ++r) drive(proc, r);
  auto sends = drive(proc, help);
  const auto* h = find_sent<wba::HelpReqMsg>(sends);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->partial.k, kT + 1);
  EXPECT_EQ(sends.size(), kN);
}

TEST_F(WeakBaUnit, HelpRequestWithWrongSchemePartialIgnored) {
  auto proc = make(1);
  const Round help = 5 * kN + 1;
  for (Round r = 1; r <= 4; ++r) drive(proc, r);
  const WireValue v = WireValue::plain(Value(5));
  auto fin = std::make_shared<wba::FinalizedMsg>();
  fin->phase = 1;
  fin->value = v;
  fin->qc = finalize_qc(v, 1);
  drive(proc, 5, {msg(0, 1, 5, fin)});
  for (Round r = 6; r < help; ++r) drive(proc, r);
  // The partial is minted under the quorum scheme instead of (t+1, n).
  auto req = std::make_shared<wba::HelpReqMsg>();
  req->partial = bundles_[3].share(commit_quorum(kN, kT)).partial_sign(
      wba::help_req_digest(kInstance));
  drive(proc, help, {msg(3, 1, help, req)});
  auto sends = drive(proc, help + 1);
  EXPECT_EQ(find_sent<wba::HelpMsg>(sends), nullptr);
}

TEST_F(WeakBaUnit, HelpAcceptedOnlyInTheReplyRound) {
  // NOTE-2: a help message delivered in a later window round must NOT mint
  // a decision (too late to re-broadcast it inside the window).
  auto proc = make(1);
  const Round help = 5 * kN + 1;
  for (Round r = 1; r <= help + 1; ++r) drive(proc, r);
  const WireValue v = WireValue::plain(Value(5));
  auto h = std::make_shared<wba::HelpMsg>();
  h->value = v;
  h->proof_phase = 1;
  h->decide_proof = finalize_qc(v, 1);
  drive(proc, help + 2, {msg(2, 1, help + 2, h)});  // adopt round: too late
  EXPECT_FALSE(proc.decided());
}

TEST_F(WeakBaUnit, FallbackMsgWithInvalidProofStillActivatesButNoAdoption) {
  auto proc = make(1);
  const Round help = 5 * kN + 1;
  for (Round r = 1; r <= help; ++r) drive(proc, r);
  // Valid (t+1) certificate over help_req, but garbage decision proof.
  std::vector<PartialSig> ps;
  for (ProcessId p = 0; p < kT + 1; ++p) {
    ps.push_back(bundles_[p].share(kT + 1).partial_sign(
        wba::help_req_digest(kInstance)));
  }
  auto fb = std::make_shared<wba::FallbackMsg>();
  fb->fallback_qc = *family_.scheme(kT + 1).combine(ps);
  fb->has_decision = true;
  fb->value = WireValue::plain(Value(9));
  fb->proof_phase = 1;
  fb->decide_proof = ThresholdSig{};  // junk
  drive(proc, help + 1, {msg(2, 1, help + 1, fb)});
  // The certificate is real, so the process echoes next round...
  auto sends = drive(proc, help + 2);
  const auto* echoed = find_sent<wba::FallbackMsg>(sends);
  ASSERT_NE(echoed, nullptr);
  // ...but it adopted nothing: its own echo carries no decision.
  EXPECT_FALSE(echoed->has_decision);
}

TEST_F(WeakBaUnit, DecidedProcessAnswersHelpRequests) {
  auto proc = make(1);
  for (Round r = 1; r <= 4; ++r) drive(proc, r);
  const WireValue v = WireValue::plain(Value(5));
  auto fin = std::make_shared<wba::FinalizedMsg>();
  fin->phase = 1;
  fin->value = v;
  fin->qc = finalize_qc(v, 1);
  drive(proc, 5, {msg(0, 1, 5, fin)});

  const Round help = 5 * kN + 1;
  for (Round r = 6; r < help; ++r) drive(proc, r);
  // p3's help request arrives.
  auto req = std::make_shared<wba::HelpReqMsg>();
  req->partial = bundles_[3].share(kT + 1).partial_sign(
      wba::help_req_digest(kInstance));
  drive(proc, help, {msg(3, 1, help, req)});
  auto sends = drive(proc, help + 1);
  const auto* h = find_sent<wba::HelpMsg>(sends);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->value.value, Value(5));
  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends[0].first, 3u);  // unicast to the requester only
}

}  // namespace
}  // namespace mewc
