// Multi-valued strong BA from interactive consistency: agreement, strong
// unanimity over an arbitrary value domain, and the plurality rule.
#include "ba/vector/multivalued_ba.hpp"

#include <gtest/gtest.h>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"

namespace mewc {
namespace {

using harness::RunSpec;

/// Local mini-harness (the protocol is an extension, not part of the main
/// harness surface).
struct MvbaResult {
  std::vector<std::optional<Value>> decisions;
  std::vector<ProcessId> corrupted;
  Meter meter;

  [[nodiscard]] bool agreement() const {
    std::optional<Value> seen;
    for (const auto& d : decisions) {
      if (!d) continue;
      if (!seen) {
        seen = *d;
      } else if (*seen != *d) {
        return false;
      }
    }
    return true;
  }
  [[nodiscard]] Value decision() const {
    for (const auto& d : decisions) {
      if (d) return *d;
    }
    return kBottom;
  }
};

MvbaResult run_mvba(const RunSpec& spec, const std::vector<Value>& inputs,
                    Adversary& adversary) {
  ThresholdFamily family(spec.n, spec.t, spec.backend, spec.seed);
  std::vector<KeyBundle> bundles;
  for (ProcessId p = 0; p < spec.n; ++p) {
    bundles.push_back(family.issue_bundle(p));
  }
  std::vector<std::unique_ptr<IProcess>> procs;
  for (ProcessId p = 0; p < spec.n; ++p) {
    ProtocolContext ctx;
    ctx.id = p;
    ctx.n = spec.n;
    ctx.t = spec.t;
    ctx.instance = spec.instance;
    ctx.crypto = &family;
    ctx.keys = &bundles[p];
    procs.push_back(std::make_unique<ic::MultiValuedBaProcess>(ctx, inputs[p]));
  }
  Executor exec(family, std::move(bundles), std::move(procs), adversary);
  exec.run(ic::MultiValuedBaProcess::total_rounds(spec.n, spec.t));

  MvbaResult res;
  res.meter = exec.meter();
  res.corrupted = exec.corrupted();
  for (ProcessId p = 0; p < spec.n; ++p) {
    if (exec.is_corrupted(p)) {
      res.decisions.push_back(std::nullopt);
    } else {
      const auto& proc =
          static_cast<const ic::MultiValuedBaProcess&>(exec.process(p));
      EXPECT_TRUE(proc.stats().decided);
      res.decisions.push_back(proc.decision());
    }
  }
  return res;
}

TEST(MultiValuedBa, UnanimityOverArbitraryDomain) {
  auto spec = RunSpec::for_t(2);
  adv::NullAdversary adv;
  const auto res =
      run_mvba(spec, std::vector<Value>(spec.n, Value(0xabcdef)), adv);
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(0xabcdef));
}

TEST(MultiValuedBa, UnanimitySurvivesMaximalCrash) {
  auto spec = RunSpec::for_t(2);
  adv::CrashAdversary adv({0, 2});
  const auto res = run_mvba(spec, std::vector<Value>(spec.n, Value(500)), adv);
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(500));
}

TEST(MultiValuedBa, MixedInputsAgreeOnPlurality) {
  auto spec = RunSpec::for_t(2);
  adv::NullAdversary adv;
  const auto res =
      run_mvba(spec, {Value(7), Value(8), Value(7), Value(9), Value(7)}, adv);
  EXPECT_TRUE(res.agreement());
  EXPECT_EQ(res.decision(), Value(7));  // plurality 3/5
}

TEST(MultiValuedBa, EquivocatorCannotBreakAgreement) {
  auto spec = RunSpec::for_t(2);
  const std::uint64_t lane1 = hash_combine(spec.instance, 0x1c0ull + 1);
  adv::BbEquivocatingSender adv(1, lane1, adv::SenderMode::kEquivocate,
                                Value(60), Value(61));
  const auto res =
      run_mvba(spec, std::vector<Value>(spec.n, Value(60)), adv);
  EXPECT_TRUE(res.agreement());
  // 4 correct lanes say 60; the equivocator's lane adds at most one more
  // slot of anything: plurality is 60.
  EXPECT_EQ(res.decision(), Value(60));
}

TEST(MultiValuedBa, PluralityRuleIsDeterministic) {
  using P = ic::MultiValuedBaProcess;
  EXPECT_EQ(P::plurality({Value(3), Value(3), Value(5)}), Value(3));
  EXPECT_EQ(P::plurality({Value(5), Value(3)}), Value(3));  // tie: smaller
  EXPECT_EQ(P::plurality({kBottom, kBottom}), kBottom);
  EXPECT_EQ(P::plurality({kBottom, Value(9)}), Value(9));
  EXPECT_EQ(P::plurality({}), kBottom);
}

}  // namespace
}  // namespace mewc
