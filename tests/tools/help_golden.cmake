# --help golden check: the tool's --help output must match the checked-in
# text byte for byte (so flag renames/removals are a deliberate, reviewed
# diff). Regenerate with:  <tool> --help > tests/tools/<tool>_help.txt
#   cmake -DTOOL=<binary> -DGOLDEN=<file> -P help_golden.cmake

if(NOT DEFINED TOOL OR NOT DEFINED GOLDEN)
  message(FATAL_ERROR
          "usage: cmake -DTOOL=<binary> -DGOLDEN=<file> -P help_golden.cmake")
endif()

execute_process(COMMAND ${TOOL} --help
                OUTPUT_VARIABLE actual
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${TOOL} --help exited ${rc}")
endif()

file(READ "${GOLDEN}" expected)
if(NOT actual STREQUAL expected)
  message(FATAL_ERROR
          "--help output diverged from ${GOLDEN}; regenerate it if the "
          "change is deliberate.\n--- actual ---\n${actual}")
endif()

message(STATUS "--help matches ${GOLDEN}")
