// Verifiable secret sharing: Feldman share verification, Chaum-Pedersen
// DLEQ partial verification (all public, no dealer trapdoor), and Lagrange
// recombination in the exponent.
#include "crypto/vss.hpp"

#include <gtest/gtest.h>

namespace mewc {
namespace {

Digest d(std::uint64_t x) { return DigestBuilder("vss").field(x).done(); }

TEST(VssGroup, ParametersAreConsistent) {
  // q = 2r + 1 and g generates the order-r subgroup.
  EXPECT_EQ(vss::kQ, 2 * vss::kR + 1);
  EXPECT_EQ(vss::pow_q(vss::kG, vss::kR), 1u);
  EXPECT_NE(vss::kG, 1u);
}

TEST(VssGroup, ExponentFieldInverse) {
  for (std::uint64_t x :
       {std::uint64_t{2}, std::uint64_t{3}, std::uint64_t{12345},
        vss::kR - 1}) {
    EXPECT_EQ(vss::mul_r(x, vss::inv_r(x)), 1u) << x;
  }
}

TEST(VssGroup, MessageBaseInSubgroupAndNonIdentity) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    const std::uint64_t hm = vss::message_base(d(i));
    EXPECT_NE(hm, 1u);
    EXPECT_EQ(vss::pow_q(hm, vss::kR), 1u);  // order divides r
  }
}

class VssDealing : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kK = 3, kN = 7;
  vss::Dealing dealing_{kK, kN, 0xabc};

  std::vector<std::uint64_t> pubs() const {
    std::vector<std::uint64_t> out;
    for (ProcessId p = 0; p < kN; ++p) out.push_back(dealing_.share(p).pub);
    return out;
  }
};

TEST_F(VssDealing, EveryShareVerifiesAgainstTheCommitments) {
  for (ProcessId p = 0; p < kN; ++p) {
    EXPECT_TRUE(
        vss::Dealing::verify_share(dealing_.commitments(), dealing_.share(p)))
        << "share " << p;
  }
}

TEST_F(VssDealing, TamperedShareFailsPublicVerification) {
  vss::Share s = dealing_.share(2);
  s.secret = vss::add_r(s.secret, 1);
  EXPECT_FALSE(vss::Dealing::verify_share(dealing_.commitments(), s));

  vss::Share s2 = dealing_.share(2);
  s2.owner = 3;  // right value, wrong point
  EXPECT_FALSE(vss::Dealing::verify_share(dealing_.commitments(), s2));
}

TEST_F(VssDealing, TamperedCommitmentsRejectHonestShares) {
  auto commitments = dealing_.commitments();
  commitments[1] = vss::mul_q(commitments[1], vss::kG);
  std::uint32_t rejected = 0;
  for (ProcessId p = 0; p < kN; ++p) {
    rejected +=
        vss::Dealing::verify_share(commitments, dealing_.share(p)) ? 0 : 1;
  }
  EXPECT_EQ(rejected, kN);  // a corrupted dealing convinces nobody
}

TEST_F(VssDealing, PartialSignatureVerifiesPublicly) {
  const auto p = vss::Dealing::partial_sign(dealing_.share(1), d(5), 99);
  EXPECT_TRUE(vss::Dealing::verify_partial(p, dealing_.share(1).pub));
}

TEST_F(VssDealing, DleqProofBindsEverything) {
  auto p = vss::Dealing::partial_sign(dealing_.share(1), d(5), 99);
  {
    auto bad = p;
    bad.sigma = vss::mul_q(bad.sigma, vss::kG);  // wrong signature value
    EXPECT_FALSE(vss::Dealing::verify_partial(bad, dealing_.share(1).pub));
  }
  {
    auto bad = p;
    bad.z = vss::add_r(bad.z, 1);  // tampered response
    EXPECT_FALSE(vss::Dealing::verify_partial(bad, dealing_.share(1).pub));
  }
  {
    auto bad = p;
    bad.digest = d(6);  // proof replayed onto another message
    EXPECT_FALSE(vss::Dealing::verify_partial(bad, dealing_.share(1).pub));
  }
  // Claimed under another signer's public key.
  EXPECT_FALSE(vss::Dealing::verify_partial(p, dealing_.share(2).pub));
}

TEST_F(VssDealing, ProofIsNotSignerTransferable) {
  // A signer cannot mint a partial for someone else's share: the proof is
  // bound to y_i, and sigma under a different y fails.
  const auto p1 = vss::Dealing::partial_sign(dealing_.share(1), d(5), 7);
  auto forged = p1;
  forged.signer = 4;
  EXPECT_FALSE(vss::Dealing::verify_partial(forged, dealing_.share(4).pub));
}

TEST_F(VssDealing, AnyKSubsetRecombinesToTheSameSignature) {
  const Digest msg = d(11);
  const std::uint64_t expected = dealing_.expected_signature(msg);
  const auto keys = pubs();
  for (ProcessId a = 0; a < kN; ++a) {
    for (ProcessId b = a + 1; b < kN; ++b) {
      for (ProcessId c = b + 1; c < kN; ++c) {
        std::vector<vss::VerifiablePartial> parts = {
            vss::Dealing::partial_sign(dealing_.share(a), msg, 1),
            vss::Dealing::partial_sign(dealing_.share(b), msg, 2),
            vss::Dealing::partial_sign(dealing_.share(c), msg, 3)};
        const auto sig = vss::Dealing::combine(kK, parts, keys);
        ASSERT_TRUE(sig.has_value());
        EXPECT_EQ(*sig, expected)
            << "subset {" << a << "," << b << "," << c << "}";
      }
    }
  }
}

TEST_F(VssDealing, CombineFiltersForgedPartials) {
  const Digest msg = d(12);
  const auto keys = pubs();
  std::vector<vss::VerifiablePartial> parts = {
      vss::Dealing::partial_sign(dealing_.share(0), msg, 1),
      vss::Dealing::partial_sign(dealing_.share(1), msg, 2)};
  auto forged = vss::Dealing::partial_sign(dealing_.share(1), msg, 3);
  forged.signer = 2;  // claims to be p2's
  parts.push_back(forged);
  EXPECT_FALSE(vss::Dealing::combine(kK, parts, keys).has_value());

  // Replacing the forgery with a real third share fixes it.
  parts.back() = vss::Dealing::partial_sign(dealing_.share(2), msg, 4);
  EXPECT_TRUE(vss::Dealing::combine(kK, parts, keys).has_value());
}

TEST_F(VssDealing, CombineRejectsDuplicateSigners) {
  const Digest msg = d(13);
  const auto keys = pubs();
  std::vector<vss::VerifiablePartial> parts = {
      vss::Dealing::partial_sign(dealing_.share(0), msg, 1),
      vss::Dealing::partial_sign(dealing_.share(0), msg, 2),
      vss::Dealing::partial_sign(dealing_.share(0), msg, 3)};
  EXPECT_FALSE(vss::Dealing::combine(kK, parts, keys).has_value());
}

TEST_F(VssDealing, DifferentNoncesSameStatementBothVerify) {
  const auto p1 = vss::Dealing::partial_sign(dealing_.share(3), d(9), 1);
  const auto p2 = vss::Dealing::partial_sign(dealing_.share(3), d(9), 2);
  EXPECT_NE(p1.big_a, p2.big_a);  // fresh prover randomness
  EXPECT_EQ(p1.sigma, p2.sigma);  // same deterministic signature value
  EXPECT_TRUE(vss::Dealing::verify_partial(p1, dealing_.share(3).pub));
  EXPECT_TRUE(vss::Dealing::verify_partial(p2, dealing_.share(3).pub));
}

TEST(VssDealingShapes, FullRangeOfThresholds) {
  for (std::uint32_t k : {1u, 2u, 5u, 9u}) {
    vss::Dealing dealing(k, 9, k * 31);
    std::vector<std::uint64_t> keys;
    std::vector<vss::VerifiablePartial> parts;
    for (ProcessId p = 0; p < 9; ++p) {
      keys.push_back(dealing.share(p).pub);
      EXPECT_TRUE(
          vss::Dealing::verify_share(dealing.commitments(), dealing.share(p)));
    }
    const Digest msg = DigestBuilder("vss.k").field(k).done();
    for (ProcessId p = 0; p < k; ++p) {
      parts.push_back(vss::Dealing::partial_sign(dealing.share(p), msg, p));
    }
    const auto sig = vss::Dealing::combine(k, parts, keys);
    ASSERT_TRUE(sig.has_value()) << "k=" << k;
    EXPECT_EQ(*sig, dealing.expected_signature(msg)) << "k=" << k;
  }
}

}  // namespace
}  // namespace mewc
