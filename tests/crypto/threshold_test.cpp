// Backend-parameterized tests of the (k, n)-threshold scheme contract: both
// SimThreshold and ShamirThreshold must satisfy every property here.
#include "crypto/threshold.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "crypto/shamir.hpp"

namespace mewc {
namespace {

Digest d(std::uint64_t x) { return DigestBuilder("th").field(x).done(); }

enum class Backend { kSim, kShamir };

struct Params {
  Backend backend;
  std::uint32_t k;
  std::uint32_t n;
};

class ThresholdContractTest : public ::testing::TestWithParam<Params> {
 protected:
  void SetUp() override {
    const Params p = GetParam();
    if (p.backend == Backend::kSim) {
      scheme_ = std::make_unique<SimThreshold>(p.k, p.n, 0xabc);
    } else {
      scheme_ = std::make_unique<ShamirThreshold>(p.k, p.n, 0xabc);
    }
  }

  std::vector<PartialSig> partials(std::uint64_t msg, std::uint32_t count,
                                   std::uint32_t first = 0) {
    std::vector<PartialSig> out;
    for (std::uint32_t i = 0; i < count; ++i) {
      out.push_back(
          scheme_->issue_share((first + i) % scheme_->n()).partial_sign(d(msg)));
    }
    return out;
  }

  std::unique_ptr<ThresholdScheme> scheme_;
};

TEST_P(ThresholdContractTest, PartialSignVerifies) {
  const PartialSig p = scheme_->issue_share(0).partial_sign(d(1));
  EXPECT_TRUE(scheme_->verify_partial(p));
  EXPECT_EQ(p.k, scheme_->k());
}

TEST_P(ThresholdContractTest, TamperedPartialRejected) {
  PartialSig p = scheme_->issue_share(0).partial_sign(d(1));
  p.tag ^= 1;
  EXPECT_FALSE(scheme_->verify_partial(p));
}

TEST_P(ThresholdContractTest, ReattributedPartialRejected) {
  // Degenerate Shamir k=1 has a constant polynomial: every share IS the
  // group secret, so shares are interchangeable by construction. Any real
  // (1, n) threshold scheme has this property; skip that shape.
  if (GetParam().backend == Backend::kShamir && scheme_->k() == 1) {
    GTEST_SKIP();
  }
  PartialSig p = scheme_->issue_share(0).partial_sign(d(1));
  if (scheme_->n() > 1) {
    p.signer = 1;
    EXPECT_FALSE(scheme_->verify_partial(p));
  }
}

TEST_P(ThresholdContractTest, ExactlyKPartialsCombine) {
  const auto sig = scheme_->combine(partials(1, scheme_->k()));
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(scheme_->verify(*sig));
  EXPECT_EQ(sig->k, scheme_->k());
  EXPECT_EQ(sig->words(), 1u);  // constant size: the paper's key tool
}

TEST_P(ThresholdContractTest, FewerThanKPartialsFail) {
  if (scheme_->k() == 1) GTEST_SKIP();
  EXPECT_FALSE(scheme_->combine(partials(1, scheme_->k() - 1)).has_value());
}

TEST_P(ThresholdContractTest, DuplicateSignersDoNotCount) {
  if (scheme_->k() < 2) GTEST_SKIP();
  // k copies of the same signer's partial: must not combine.
  std::vector<PartialSig> same;
  for (std::uint32_t i = 0; i < scheme_->k(); ++i) {
    same.push_back(scheme_->issue_share(0).partial_sign(d(1)));
  }
  EXPECT_FALSE(scheme_->combine(same).has_value());
}

TEST_P(ThresholdContractTest, InvalidPartialsAreFilteredOut) {
  auto ps = partials(1, scheme_->k());
  ps.front().tag ^= 1;  // now only k-1 valid
  if (scheme_->k() <= scheme_->n() - 1) {
    // add a fresh valid one: combine succeeds by filtering the bad partial
    ps.push_back(scheme_->issue_share(scheme_->k()).partial_sign(d(1)));
    const auto sig = scheme_->combine(ps);
    ASSERT_TRUE(sig.has_value());
    EXPECT_TRUE(scheme_->verify(*sig));
  } else {
    EXPECT_FALSE(scheme_->combine(ps).has_value());
  }
}

TEST_P(ThresholdContractTest, MixedDigestsDoNotCombine) {
  if (scheme_->k() < 2) GTEST_SKIP();
  auto ps = partials(1, scheme_->k() - 1);
  ps.push_back(scheme_->issue_share(scheme_->k() - 1).partial_sign(d(2)));
  EXPECT_FALSE(scheme_->combine(ps).has_value());
}

TEST_P(ThresholdContractTest, CombinedSigIndependentOfShareChoice) {
  // Real threshold schemes produce the same group signature from any k
  // shares; protocols rely on this for deterministic certificates.
  if (scheme_->k() > scheme_->n() - 1) GTEST_SKIP();
  const auto sig1 = scheme_->combine(partials(1, scheme_->k(), 0));
  const auto sig2 = scheme_->combine(partials(1, scheme_->k(), 1));
  ASSERT_TRUE(sig1 && sig2);
  EXPECT_EQ(sig1->tag, sig2->tag);
}

TEST_P(ThresholdContractTest, VerifyRejectsTamperedCombined) {
  auto sig = scheme_->combine(partials(1, scheme_->k()));
  ASSERT_TRUE(sig.has_value());
  sig->tag ^= 1;
  EXPECT_FALSE(scheme_->verify(*sig));
}

TEST_P(ThresholdContractTest, VerifyRejectsWrongDigest) {
  auto sig = scheme_->combine(partials(1, scheme_->k()));
  ASSERT_TRUE(sig.has_value());
  sig->digest = d(2);
  EXPECT_FALSE(scheme_->verify(*sig));
}

TEST_P(ThresholdContractTest, VerifyRejectsWrongThresholdClaim) {
  auto sig = scheme_->combine(partials(1, scheme_->k()));
  ASSERT_TRUE(sig.has_value());
  sig->k += 1;
  EXPECT_FALSE(scheme_->verify(*sig));
}

TEST_P(ThresholdContractTest, EmptyInputFails) {
  EXPECT_FALSE(scheme_->combine({}).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAndShapes, ThresholdContractTest,
    ::testing::Values(
        Params{Backend::kSim, 1, 3}, Params{Backend::kSim, 2, 3},
        Params{Backend::kSim, 3, 3}, Params{Backend::kSim, 4, 7},
        Params{Backend::kSim, 6, 7}, Params{Backend::kSim, 11, 21},
        Params{Backend::kShamir, 1, 3}, Params{Backend::kShamir, 2, 3},
        Params{Backend::kShamir, 3, 3}, Params{Backend::kShamir, 4, 7},
        Params{Backend::kShamir, 6, 7}, Params{Backend::kShamir, 11, 21}),
    [](const auto& info) {
      const Params& p = info.param;
      return std::string(p.backend == Backend::kSim ? "Sim" : "Shamir") + "_k" +
             std::to_string(p.k) + "_n" + std::to_string(p.n);
    });

TEST(ThresholdCrossScheme, PartialsFromOtherSchemeRejected) {
  // Partials minted under threshold k must never count toward a scheme with
  // a different k (the paper uses t+1, ceil((n+t+1)/2) and n side by side).
  SimThreshold a(3, 7, 0xabc), b(4, 7, 0xabc);
  const PartialSig p = a.issue_share(0).partial_sign(d(1));
  EXPECT_FALSE(b.verify_partial(p));
}

TEST(ThresholdCrossScheme, CombinedSigFromOtherSchemeRejected) {
  SimThreshold a(3, 7, 0xabc), b(4, 7, 0xabc);
  std::vector<PartialSig> ps;
  for (ProcessId i = 0; i < 3; ++i) {
    ps.push_back(a.issue_share(i).partial_sign(d(1)));
  }
  const auto sig = a.combine(ps);
  ASSERT_TRUE(sig.has_value());
  EXPECT_FALSE(b.verify(*sig));
}

}  // namespace
}  // namespace mewc
