#include "crypto/multisig.hpp"

#include <gtest/gtest.h>

namespace mewc {
namespace {

Digest d(std::uint64_t x) { return DigestBuilder("ms").field(x).done(); }

class MultisigTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kN = 7;
  Pki pki_{kN};

  Signature sig(ProcessId p, std::uint64_t x) {
    return pki_.issue_key(p).sign(d(x));
  }
};

TEST_F(MultisigTest, SingleSignerAggregateVerifies) {
  const AggSignature agg = aggregate_start(pki_, sig(0, 1));
  EXPECT_EQ(agg.signers.count(), 1u);
  EXPECT_TRUE(aggregate_verify(pki_, agg));
}

TEST_F(MultisigTest, ManySignersAggregateVerifies) {
  AggSignature agg = aggregate_start(pki_, sig(0, 1));
  for (ProcessId p = 1; p < kN; ++p) {
    EXPECT_TRUE(aggregate_add(pki_, agg, sig(p, 1)));
  }
  EXPECT_EQ(agg.signers.count(), kN);
  EXPECT_TRUE(aggregate_verify(pki_, agg));
}

TEST_F(MultisigTest, DuplicateSignerRejected) {
  AggSignature agg = aggregate_start(pki_, sig(0, 1));
  EXPECT_FALSE(aggregate_add(pki_, agg, sig(0, 1)));
  EXPECT_EQ(agg.signers.count(), 1u);
  EXPECT_TRUE(aggregate_verify(pki_, agg));  // unchanged, still valid
}

TEST_F(MultisigTest, DigestMismatchRejected) {
  AggSignature agg = aggregate_start(pki_, sig(0, 1));
  EXPECT_FALSE(aggregate_add(pki_, agg, sig(1, 2)));
}

TEST_F(MultisigTest, ClaimingExtraSignerFailsVerification) {
  // The forgery the Dolev-Strong chains must resist: adding a signer to the
  // bitmap without folding in its (unknown) MAC.
  AggSignature agg = aggregate_start(pki_, sig(0, 1));
  aggregate_add(pki_, agg, sig(1, 1));
  agg.signers.insert(2);
  EXPECT_FALSE(aggregate_verify(pki_, agg));
}

TEST_F(MultisigTest, DroppingSignerFailsVerification) {
  AggSignature agg = aggregate_start(pki_, sig(0, 1));
  aggregate_add(pki_, agg, sig(1, 1));
  AggSignature shrunk;
  shrunk.digest = agg.digest;
  shrunk.signers = SignerSet(kN);
  shrunk.signers.insert(0);
  shrunk.tag = agg.tag;  // tag still covers both
  EXPECT_FALSE(aggregate_verify(pki_, shrunk));
}

TEST_F(MultisigTest, TamperedTagFailsVerification) {
  AggSignature agg = aggregate_start(pki_, sig(0, 1));
  agg.tag ^= 0xdead;
  EXPECT_FALSE(aggregate_verify(pki_, agg));
}

TEST_F(MultisigTest, WordCostIsTagPlusBitmap) {
  AggSignature agg = aggregate_start(pki_, sig(0, 1));
  EXPECT_EQ(agg.words(), 1u + (kN + 63) / 64);
}

TEST(SignerSet, InsertContainsCount) {
  SignerSet s(130);  // spans three 64-bit limbs
  EXPECT_TRUE(s.insert(0));
  EXPECT_TRUE(s.insert(64));
  EXPECT_TRUE(s.insert(129));
  EXPECT_FALSE(s.insert(64));
  EXPECT_EQ(s.count(), 3u);
  EXPECT_TRUE(s.contains(129));
  EXPECT_FALSE(s.contains(128));
  EXPECT_FALSE(s.contains(1000));
  EXPECT_EQ(s.words(), 3u);
}

TEST(SignerSet, MembersRoundTrip) {
  SignerSet s(10);
  s.insert(3);
  s.insert(7);
  s.insert(9);
  EXPECT_EQ(s.members(), (std::vector<ProcessId>{3, 7, 9}));
}

}  // namespace
}  // namespace mewc
