// Differential harness pinning real <-> ideal backend equivalence. The real
// backend must be a drop-in: same protocol decisions, same rounds, same word
// counts, same message stream — the ONLY wire bytes allowed to differ are
// the signature/certificate tags (a MAC under the ideal backends, a
// compressed curve point under kReal), which is exactly what
// MessageLog::semantic_digest() masks. Every cell of the DST smoke grid is
// run under both backends and compared field by field, so any divergence
// names the first cell and field that split.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/campaign.hpp"
#include "check/crash.hpp"
#include "check/json.hpp"
#include "check/runner.hpp"
#include "crypto/keys.hpp"
#include "smr/engine.hpp"
#include "smr/recovery.hpp"

namespace mewc {
namespace {

using check::CellSpec;
using check::GridSpec;
using check::RunRecord;

GridSpec load_smoke_grid() {
  std::string error;
  const auto v = check::json::read_file(MEWC_GRID_DIR "/smoke.json", &error);
  EXPECT_TRUE(v.has_value()) << error;
  GridSpec grid;
  EXPECT_TRUE(GridSpec::from_json(*v, &grid, &error)) << error;
  return grid;
}

/// Tag-free projection of one decision. Everything except the tag must be
/// bit-identical across backends; the tag is checked only for presence.
std::string decision_key(const WireValue& w) {
  std::ostringstream os;
  os << w.value.raw << '/' << static_cast<int>(w.prov) << '/' << w.aux;
  if (w.sig) os << "/sig:" << w.sig->signer << ':' << w.sig->digest.bits;
  if (w.cert) os << "/cert:" << w.cert->k << ':' << w.cert->digest.bits;
  return os.str();
}

/// Compares the sim and real runs of one cell; appends one line per
/// mismatching field to *out (empty == equivalent).
void compare_runs(const CellSpec& cell, const RunRecord& sim,
                  const RunRecord& real, std::vector<std::string>* out) {
  const std::string where = cell.label();
  auto fail = [&](const std::string& what) { out->push_back(where + ": " + what); };

  if (sim.rounds != real.rounds) fail("rounds diverge");
  if (sim.any_fallback != real.any_fallback) fail("fallback flag diverges");
  if (sim.corrupted != real.corrupted) fail("corruption masks diverge");
  if (sim.decided != real.decided) fail("decided vectors diverge");
  if (sim.signatures_issued != real.signatures_issued) {
    fail("signatures_issued diverges");
  }
  if (sim.meter.words_correct != real.meter.words_correct ||
      sim.meter.messages_correct != real.meter.messages_correct ||
      sim.meter.logical_sigs_correct != real.meter.logical_sigs_correct) {
    fail("word/message/sig meters diverge");
  }
  if (sim.decisions.size() == real.decisions.size()) {
    for (std::size_t i = 0; i < sim.decisions.size(); ++i) {
      if (!sim.decided[i]) continue;
      if (decision_key(sim.decisions[i]) != decision_key(real.decisions[i])) {
        fail("decision of process " + std::to_string(i) + " diverges");
      }
    }
  } else {
    fail("decision vector sizes diverge");
  }

  // Per-message metadata first (cheap, names the offending message), then
  // the masked byte-level fingerprint (catches payload-field divergence the
  // metadata cannot see).
  if (sim.log.messages.size() != real.log.messages.size()) {
    fail("stream lengths diverge");
    return;
  }
  for (std::size_t i = 0; i < sim.log.messages.size(); ++i) {
    const auto& a = sim.log.messages[i];
    const auto& b = real.log.messages[i];
    if (a.from != b.from || a.to != b.to || a.round != b.round ||
        a.kind != b.kind || a.words != b.words || a.correct != b.correct) {
      fail("message " + std::to_string(i) + " metadata diverges (" + a.kind +
           " vs " + b.kind + ")");
      return;
    }
  }
  if (sim.log.semantic_digest() != real.log.semantic_digest()) {
    fail("semantic stream digests diverge (non-tag payload bytes differ)");
  }
}

// Every smoke-grid cell, sim vs real, full transcript comparison. The grid
// is embarrassingly parallel, so the pairs are spread over a worker pool;
// each worker runs both variants of its cell back to back (the pair shares
// nothing, determinism comes from the cell seed alone).
TEST(Differential, RealMatchesSimAcrossSmokeGrid) {
  GridSpec grid = load_smoke_grid();
  grid.backends = {ThresholdBackend::kSim};
  const std::vector<CellSpec> cells = grid.enumerate();
  ASSERT_FALSE(cells.empty());

  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::vector<std::string> failures;

  const unsigned jobs = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (unsigned w = 0; w < jobs; ++w) {
    workers.emplace_back([&] {
      check::RunOptions opts;
      opts.record_messages = true;
      std::vector<std::string> local;
      for (std::size_t i = next.fetch_add(1); i < cells.size();
           i = next.fetch_add(1)) {
        CellSpec cell = cells[i];
        cell.backend = ThresholdBackend::kSim;
        const RunRecord sim = check::run_cell(cell, opts);
        cell.backend = ThresholdBackend::kReal;
        const RunRecord real = check::run_cell(cell, opts);
        compare_runs(cell, sim, real, &local);
      }
      if (!local.empty()) {
        const std::lock_guard<std::mutex> lock(mu);
        failures.insert(failures.end(), local.begin(), local.end());
      }
    });
  }
  for (auto& t : workers) t.join();

  for (const std::string& f : failures) ADD_FAILURE() << f;
  EXPECT_TRUE(failures.empty())
      << failures.size() << " of " << cells.size() << " cells diverged";
}

// The sim<->shamir direction rides the same harness: all three backends are
// one equivalence class, not just the pair the tentpole names.
TEST(Differential, ShamirMatchesSimOnWeakBaSlice) {
  GridSpec grid = load_smoke_grid();
  grid.backends = {ThresholdBackend::kSim};
  std::vector<CellSpec> cells = grid.enumerate();
  check::RunOptions opts;
  opts.record_messages = true;
  std::vector<std::string> failures;
  std::size_t compared = 0;
  for (CellSpec cell : cells) {
    // One protocol, first seed per configuration keeps this slice cheap;
    // the full cross product already ran in RealMatchesSimAcrossSmokeGrid.
    if (cell.protocol != check::Protocol::kWeakBa || cell.seed != 1) continue;
    cell.backend = ThresholdBackend::kSim;
    const RunRecord sim = check::run_cell(cell, opts);
    cell.backend = ThresholdBackend::kShamir;
    const RunRecord shamir = check::run_cell(cell, opts);
    compare_runs(cell, sim, shamir, &failures);
    ++compared;
  }
  EXPECT_GT(compared, 0u);
  for (const std::string& f : failures) ADD_FAILURE() << f;
}

// SMR pipeline under both backends: identical kv digests, ledger digests
// and slot outcomes, and the amortization counters prove the real lane did
// its verification through the batch/memo path rather than pairing per
// certificate.
TEST(Differential, EngineKvDigestMatchesAcrossBackends) {
  struct Outcome {
    std::uint64_t kv_digest = 0;
    std::uint64_t ledger_digest = 0;
    std::uint64_t words = 0;
    std::vector<std::uint64_t> values;
    smr::EngineStats stats;
  };
  constexpr std::uint64_t kOps = 48;
  auto run = [&](ThresholdBackend backend) {
    smr::EngineConfig c;
    c.n = 5;
    c.t = 2;
    c.backend = backend;
    c.workers = 4;
    c.checkpoint_every = 8;
    smr::Store store;
    smr::Durability dur(&store);
    c.durability = &dur;
    smr::Engine engine(c);
    std::vector<smr::Command> cmds;
    for (std::uint64_t i = 0; i < kOps; i += 4) {
      cmds.clear();
      for (std::uint64_t j = i; j < i + 4; ++j) {
        cmds.push_back(check::crash_proposal(c.seed, j));
      }
      engine.submit_batch(cmds);
    }
    engine.finish();
    Outcome out;
    out.kv_digest = dur.kv().digest();
    out.ledger_digest = engine.ledger().ledger_digest();
    out.words = engine.ledger().total_words();
    for (const auto& slot : engine.ledger().slots()) {
      out.values.push_back(slot.value.raw);
    }
    out.stats = engine.stats();
    return out;
  };

  const Outcome sim = run(ThresholdBackend::kSim);
  const Outcome real = run(ThresholdBackend::kReal);
  EXPECT_EQ(sim.kv_digest, real.kv_digest);
  EXPECT_EQ(sim.ledger_digest, real.ledger_digest);
  EXPECT_EQ(sim.words, real.words);
  EXPECT_EQ(sim.values, real.values);
  EXPECT_EQ(sim.stats.committed, real.stats.committed);
  EXPECT_EQ(sim.stats.fallbacks, real.stats.fallbacks);

  // Ideal backends never touch the pairing; the real lane must, and the
  // memo must be earning its keep (every BB instance re-verifies the same
  // handful of certificates, so hits should dominate cold pairings).
  EXPECT_EQ(sim.stats.crypto_pairings, 0u);
  EXPECT_EQ(sim.stats.crypto_memo_hits, 0u);
  EXPECT_GT(real.stats.crypto_pairings, 0u);
  EXPECT_GT(real.stats.crypto_memo_hits, 0u);
}

}  // namespace
}  // namespace mewc
