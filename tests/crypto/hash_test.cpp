#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "crypto/digest.hpp"

namespace mewc {
namespace {

TEST(Mix64, IsDeterministic) {
  EXPECT_EQ(mix64(0), mix64(0));
  EXPECT_EQ(mix64(12345), mix64(12345));
}

TEST(Mix64, ZeroDoesNotMapToZero) { EXPECT_NE(mix64(0), 0u); }

TEST(Mix64, AdjacentInputsDiverge) {
  // splitmix64 avalanche: neighbouring inputs should differ in many bits.
  for (std::uint64_t x = 0; x < 64; ++x) {
    const std::uint64_t diff = mix64(x) ^ mix64(x + 1);
    EXPECT_GE(__builtin_popcountll(diff), 16) << "x=" << x;
  }
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

TEST(Hasher, FieldBoundariesMatter) {
  // ("ab", "c") must differ from ("a", "bc").
  Hasher h1;
  h1.feed("ab").feed("c");
  Hasher h2;
  h2.feed("a").feed("bc");
  EXPECT_NE(h1.digest(), h2.digest());
}

TEST(Hasher, EmptyStringContributes) {
  Hasher h1;
  h1.feed("");
  Hasher h2;
  EXPECT_NE(h1.digest(), h2.digest());
}

TEST(DigestBuilder, DomainSeparation) {
  const Digest a = DigestBuilder("domain.a").field(std::uint64_t{7}).done();
  const Digest b = DigestBuilder("domain.b").field(std::uint64_t{7}).done();
  EXPECT_NE(a, b);
}

TEST(DigestBuilder, FieldOrderMatters) {
  const Digest a =
      DigestBuilder("d").field(std::uint64_t{1}).field(std::uint64_t{2}).done();
  const Digest b =
      DigestBuilder("d").field(std::uint64_t{2}).field(std::uint64_t{1}).done();
  EXPECT_NE(a, b);
}

TEST(DigestBuilder, ValueFieldUsesRaw) {
  const Digest a = DigestBuilder("d").field(Value(3)).done();
  const Digest b = DigestBuilder("d").field(std::uint64_t{3}).done();
  EXPECT_EQ(a, b);
}

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c;
  }
  Rng d(42), e(43);
  bool diverged = false;
  for (int i = 0; i < 10; ++i) diverged |= (d.next() != e.next());
  EXPECT_TRUE(diverged);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(13), 13u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ChanceExtremes) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0, 10));
    EXPECT_TRUE(r.chance(10, 10));
  }
}

}  // namespace
}  // namespace mewc
