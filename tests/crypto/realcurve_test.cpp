// The toy pairing curve behind ThresholdBackend::kReal: group law, subgroup
// structure, pairing bilinearity, the strict compressed encoding, and
// known-answer vectors in tests/crypto/golden/ pinning the exact bytes
// (any drift is a wire-format break for every real-backend tag — regenerate
// with MEWC_UPDATE_GOLDEN=1 only when deliberate).
#include "crypto/realcurve.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace mewc::rc {
namespace {

// ---------------------------------------------------------------------------
// Group structure.
// ---------------------------------------------------------------------------

TEST(RealCurve, ParametersAreTheDocumentedOnes) {
  EXPECT_EQ(kP, 2305843009213682923ULL);
  EXPECT_EQ(kP % 4, 3u);
  EXPECT_EQ(kP + 1, 4 * kQ);  // cofactor 4
}

TEST(RealCurve, GeneratorHasExactOrderQ) {
  EXPECT_TRUE(on_curve(kG));
  EXPECT_FALSE(kG.inf);
  EXPECT_TRUE(scalar_mul(kQ, kG).inf);
  // q is prime, so exact order q follows from q*G == inf and G != inf; pin
  // a couple of proper divisor-free checks anyway (q odd, so q/2 rounds).
  EXPECT_FALSE(scalar_mul(kQ / 2, kG).inf);
  EXPECT_FALSE(scalar_mul(2, kG).inf);
  EXPECT_TRUE(in_subgroup(kG));
}

TEST(RealCurve, GroupLawIdentities) {
  const Point p = scalar_mul(12345, kG);
  const Point q = scalar_mul(67890, kG);
  const Point inf;  // default-constructed = infinity

  EXPECT_EQ(point_add(p, inf), p);
  EXPECT_EQ(point_add(inf, p), p);
  EXPECT_TRUE(point_add(p, point_neg(p)).inf);
  EXPECT_EQ(point_add(p, q), point_add(q, p));
  EXPECT_EQ(point_add(p, p), point_dbl(p));
  // Associativity spot check: (p + q) + p == p + (q + p).
  EXPECT_EQ(point_add(point_add(p, q), p), point_add(p, point_add(q, p)));
}

TEST(RealCurve, LadderMatchesNaiveAddition) {
  Point naive;
  for (int i = 0; i < 257; ++i) naive = point_add(naive, kG);
  EXPECT_EQ(scalar_mul(257, kG), naive);
  EXPECT_TRUE(scalar_mul(0, kG).inf);
  EXPECT_EQ(scalar_mul(1, kG), kG);
  // Scalars reduce mod the group order.
  EXPECT_EQ(scalar_mul(kQ + 7, kG), scalar_mul(7, kG));
}

TEST(RealCurve, HashToPointLandsInSubgroup) {
  for (std::uint64_t h : {0ULL, 1ULL, 0xdeadbeefULL, ~0ULL}) {
    const Point p = hash_to_point(h);
    EXPECT_FALSE(p.inf);
    EXPECT_TRUE(on_curve(p));
    EXPECT_TRUE(in_subgroup(p)) << "h=" << h;
  }
  // Try-and-increment means adjacent inputs can legitimately land on the
  // same x (callers always pre-hash with domain separation); far-apart
  // inputs must not — a collision there means the scan is degenerate.
  EXPECT_NE(hash_to_point(0x1111111111ULL), hash_to_point(0x2222222222ULL));
}

TEST(RealCurve, CofactorClearingRejectsSmallOrderComponent) {
  // A random curve point (pre-clearing) generally has order 4q; the
  // subgroup check must reject points with a surviving 4-torsion component.
  // Find one by taking hash_to_point's pre-cleared x candidates: scan for a
  // curve point NOT in the subgroup.
  bool found = false;
  for (std::uint64_t x = 2; x < 200 && !found; ++x) {
    const std::uint64_t rhs = add(mul(mul(x, x), x), x);  // x^3 + x
    if (!is_square(rhs)) continue;
    const std::uint64_t y = sqrt(rhs);
    if (mul(y, y) != rhs) continue;
    const Point p{x, y, false};
    if (!in_subgroup(p)) {
      found = true;
      // Clearing the cofactor lands it in the subgroup.
      const Point cleared = scalar_mul(4, p);
      EXPECT_TRUE(cleared.inf || in_subgroup(cleared));
    }
  }
  EXPECT_TRUE(found) << "no 4-torsion-bearing point in scan range";
}

// ---------------------------------------------------------------------------
// Pairing.
// ---------------------------------------------------------------------------

TEST(RealCurve, PairingBilinearAndNondegenerate) {
  const Point h = hash_to_point(123456789);
  const Fp2 e = pairing(kG, h);
  EXPECT_FALSE(e == fp2_one()) << "degenerate pairing";
  EXPECT_EQ(fp2_pow(e, kQ), fp2_one()) << "pairing value not order q";

  const std::uint64_t a = 987654321, b = 55555;
  EXPECT_EQ(pairing(scalar_mul(a, kG), scalar_mul(b, h)),
            fp2_pow(e, q_mul(a, b)));
  // Linearity in each slot separately.
  EXPECT_EQ(pairing(scalar_mul(a, kG), h), fp2_pow(e, a));
  EXPECT_EQ(pairing(kG, scalar_mul(b, h)), fp2_pow(e, b));
}

TEST(RealCurve, PairingOfInfinityIsOne) {
  const Point inf;
  EXPECT_EQ(pairing(inf, kG), fp2_one());
  EXPECT_EQ(pairing(kG, inf), fp2_one());
}

// ---------------------------------------------------------------------------
// Compressed encoding: strict decoder edge cases. Every rejected class here
// is an attacker-controlled wire byte pattern — the decoder must refuse it,
// not canonicalize it.
// ---------------------------------------------------------------------------

TEST(RealCurveEncoding, RoundTripsEveryPointShape) {
  for (std::uint64_t k :
       std::initializer_list<std::uint64_t>{1, 2, 3, 977, kQ - 1}) {
    const Point p = scalar_mul(k, kG);
    Point back;
    ASSERT_TRUE(decompress(compress(p), &back)) << "k=" << k;
    EXPECT_EQ(back, p) << "k=" << k;
  }
  // Infinity has exactly one encoding.
  const Point inf;
  Point back;
  EXPECT_EQ(compress(inf), kInfBit);
  ASSERT_TRUE(decompress(kInfBit, &back));
  EXPECT_TRUE(back.inf);
}

TEST(RealCurveEncoding, RejectsNonCanonicalX) {
  Point out;
  // x >= p with valid flag bits: must be rejected, not reduced.
  EXPECT_FALSE(decompress(kP, &out));
  EXPECT_FALSE(decompress(kP + 1, &out));
  EXPECT_FALSE(decompress((1ULL << 61) - 1, &out));
}

TEST(RealCurveEncoding, RejectsReservedAndMalformedInfinityBits) {
  Point out;
  const std::uint64_t good = compress(kG);
  EXPECT_FALSE(decompress(good | (1ULL << 63), &out)) << "reserved bit";
  EXPECT_FALSE(decompress(good | kInfBit, &out)) << "inf bit plus payload";
  EXPECT_FALSE(decompress(kInfBit | 1, &out)) << "non-canonical infinity";
  EXPECT_FALSE(decompress(kInfBit | kSignBit, &out)) << "signed infinity";
  EXPECT_FALSE(decompress(kBadEncoding, &out)) << "poison sentinel decoded";
}

TEST(RealCurveEncoding, RejectsXOffCurve) {
  // Find an x in range whose x^3 + x is a non-residue: no curve point.
  bool tested = false;
  for (std::uint64_t x = 2; x < 100; ++x) {
    if (is_square(add(mul(mul(x, x), x), x))) continue;
    Point out;
    EXPECT_FALSE(decompress(x, &out)) << "x=" << x;
    EXPECT_FALSE(decompress(x | kSignBit, &out)) << "x=" << x;
    tested = true;
    break;
  }
  EXPECT_TRUE(tested);
}

TEST(RealCurveEncoding, SignBitSelectsTheParity) {
  const Point p = scalar_mul(7, kG);
  const Point n = point_neg(p);
  EXPECT_NE(compress(p), compress(n));
  Point back_p, back_n;
  ASSERT_TRUE(decompress(compress(p), &back_p));
  ASSERT_TRUE(decompress(compress(n), &back_n));
  EXPECT_EQ(back_p, p);
  EXPECT_EQ(back_n, n);
}

// ---------------------------------------------------------------------------
// Known-answer vectors: the exact u64 encodings of derived points. These are
// the real backend's wire bytes; a drift here silently breaks every recorded
// replay file and golden transcript that embeds a real tag.
// ---------------------------------------------------------------------------

void expect_matches_golden(const char* name, const std::string& text) {
  const std::string path = std::string(MEWC_CRYPTO_GOLDEN_DIR) + "/" + name;
  if (std::getenv("MEWC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << text;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with MEWC_UPDATE_GOLDEN=1)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), text)
      << "real-backend encoding drifted from " << path
      << " — every recorded real tag breaks; if deliberate, regenerate "
         "with MEWC_UPDATE_GOLDEN=1";
}

TEST(RealCurveGolden, CurveVectorsMatchCheckedInFixture) {
  std::ostringstream os;
  os << "G " << compress(kG) << "\n";
  for (std::uint64_t k :
       std::initializer_list<std::uint64_t>{2, 3, 1000, kQ - 1}) {
    os << k << "G " << compress(scalar_mul(k, kG)) << "\n";
  }
  for (std::uint64_t h : {0ULL, 1ULL, 0x123456789ULL}) {
    os << "H(" << h << ") " << compress(hash_to_point(h)) << "\n";
  }
  const Fp2 e = pairing(kG, hash_to_point(1));
  os << "e(G,H(1)) " << e.re << " " << e.im << "\n";
  expect_matches_golden("realcurve_v1.txt", os.str());
}

}  // namespace
}  // namespace mewc::rc
