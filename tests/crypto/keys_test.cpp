#include "crypto/keys.hpp"

#include <gtest/gtest.h>

#include "crypto/digest.hpp"

namespace mewc {
namespace {

Digest d(std::uint64_t x) {
  return DigestBuilder("test").field(x).done();
}

TEST(Pki, SignVerifyRoundTrip) {
  Pki pki(5);
  const PrivateKey key = pki.issue_key(2);
  const Signature sig = key.sign(d(1));
  EXPECT_EQ(sig.signer, 2u);
  EXPECT_TRUE(pki.verify(sig));
}

TEST(Pki, TamperedDigestFailsVerification) {
  Pki pki(5);
  Signature sig = pki.issue_key(0).sign(d(1));
  sig.digest = d(2);
  EXPECT_FALSE(pki.verify(sig));
}

TEST(Pki, TamperedTagFailsVerification) {
  Pki pki(5);
  Signature sig = pki.issue_key(0).sign(d(1));
  sig.tag ^= 1;
  EXPECT_FALSE(pki.verify(sig));
}

TEST(Pki, ReattributedSignerFailsVerification) {
  // A signature by p0 claimed to be from p1 must not verify: per-process
  // secrets differ.
  Pki pki(5);
  Signature sig = pki.issue_key(0).sign(d(1));
  sig.signer = 1;
  EXPECT_FALSE(pki.verify(sig));
}

TEST(Pki, OutOfRangeSignerRejected) {
  Pki pki(3);
  Signature sig = pki.issue_key(0).sign(d(1));
  sig.signer = 99;
  EXPECT_FALSE(pki.verify(sig));
}

TEST(Pki, SignaturesDifferAcrossPkis) {
  // Different trusted setups (seeds) must yield unrelated signatures.
  Pki a(3, 1), b(3, 2);
  const Signature sig = a.issue_key(0).sign(d(1));
  EXPECT_FALSE(b.verify(sig));
}

TEST(Pki, DeterministicForSameSeed) {
  Pki a(3, 7), b(3, 7);
  EXPECT_EQ(a.issue_key(1).sign(d(9)).tag, b.issue_key(1).sign(d(9)).tag);
}

TEST(Pki, CountsIssuedSignatures) {
  Pki pki(4);
  const PrivateKey k0 = pki.issue_key(0);
  const PrivateKey k1 = pki.issue_key(1);
  EXPECT_EQ(pki.signatures_issued(), 0u);
  (void)k0.sign(d(1));
  (void)k0.sign(d(2));
  (void)k1.sign(d(3));
  EXPECT_EQ(pki.signatures_issued(), 3u);
  EXPECT_EQ(pki.signatures_issued_by(0), 2u);
  EXPECT_EQ(pki.signatures_issued_by(1), 1u);
  pki.reset_signature_counters();
  EXPECT_EQ(pki.signatures_issued(), 0u);
  EXPECT_EQ(pki.signatures_issued_by(0), 0u);
}

TEST(Pki, SameMessageSameSignerStableSignature) {
  // MAC determinism: signing twice yields an identical signature, which is
  // what makes WireValue content digests stable.
  Pki pki(3);
  const PrivateKey key = pki.issue_key(1);
  EXPECT_EQ(key.sign(d(5)).tag, key.sign(d(5)).tag);
}

TEST(Pki, DistinctMessagesDistinctTags) {
  Pki pki(3);
  const PrivateKey key = pki.issue_key(1);
  EXPECT_NE(key.sign(d(5)).tag, key.sign(d(6)).tag);
}

}  // namespace
}  // namespace mewc
