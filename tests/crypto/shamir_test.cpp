// Field arithmetic and Shamir/Lagrange properties specific to the real
// threshold backend (the contract tests in threshold_test.cpp cover the
// scheme-level behaviour).
#include "crypto/shamir.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/field.hpp"

namespace mewc {
namespace {

TEST(Field, AddWraps) {
  EXPECT_EQ(fp::add(fp::kP - 1, 1), 0u);
  EXPECT_EQ(fp::add(fp::kP - 1, 2), 1u);
  EXPECT_EQ(fp::add(3, 4), 7u);
}

TEST(Field, SubWraps) {
  EXPECT_EQ(fp::sub(0, 1), fp::kP - 1);
  EXPECT_EQ(fp::sub(5, 3), 2u);
}

TEST(Field, MulMatchesSmallCases) {
  EXPECT_EQ(fp::mul(3, 4), 12u);
  EXPECT_EQ(fp::mul(fp::kP - 1, fp::kP - 1), 1u);  // (-1)^2 = 1
  EXPECT_EQ(fp::mul(0, 12345), 0u);
}

TEST(Field, ReduceCanonicalizes) {
  EXPECT_EQ(fp::reduce(fp::kP), 0u);
  EXPECT_EQ(fp::reduce(fp::kP + 5), 5u);
  EXPECT_EQ(fp::reduce(2 * fp::kP + 1), 1u);
}

TEST(Field, PowBasics) {
  EXPECT_EQ(fp::pow(2, 10), 1024u);
  EXPECT_EQ(fp::pow(7, 0), 1u);
  EXPECT_EQ(fp::pow(0, 5), 0u);
}

TEST(Field, FermatLittleTheorem) {
  // x^(p-1) = 1 for x != 0.
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t x = rng.below(fp::kP - 1) + 1;
    EXPECT_EQ(fp::pow(x, fp::kP - 1), 1u) << x;
  }
}

TEST(Field, InverseProperty) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t x = rng.below(fp::kP - 1) + 1;
    EXPECT_EQ(fp::mul(x, fp::inv(x)), 1u) << x;
  }
}

TEST(Field, DistributivityRandomized) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t a = rng.below(fp::kP);
    const std::uint64_t b = rng.below(fp::kP);
    const std::uint64_t c = rng.below(fp::kP);
    EXPECT_EQ(fp::mul(a, fp::add(b, c)),
              fp::add(fp::mul(a, b), fp::mul(a, c)));
  }
}

TEST(Field, HashPointNeverZero) {
  EXPECT_EQ(fp::hash_point(0), 1u);
  EXPECT_EQ(fp::hash_point(fp::kP), 1u);  // reduces to zero, mapped to one
  EXPECT_EQ(fp::hash_point(5), 5u);
}

class ShamirSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShamirSeedTest, AnyKSubsetReconstructsSameSignature) {
  // The Lagrange-at-zero identity: every k-subset of shares yields the same
  // group signature, across random polynomials (seeds).
  const std::uint32_t k = 3, n = 7;
  ShamirThreshold scheme(k, n, GetParam());
  const Digest d = DigestBuilder("sh").field(GetParam()).done();

  std::optional<std::uint64_t> tag;
  for (ProcessId a = 0; a < n; ++a) {
    for (ProcessId b = a + 1; b < n; ++b) {
      for (ProcessId c = b + 1; c < n; ++c) {
        std::vector<PartialSig> ps = {scheme.issue_share(a).partial_sign(d),
                                      scheme.issue_share(b).partial_sign(d),
                                      scheme.issue_share(c).partial_sign(d)};
        const auto sig = scheme.combine(ps);
        ASSERT_TRUE(sig.has_value());
        EXPECT_TRUE(scheme.verify(*sig));
        if (!tag) {
          tag = sig->tag;
        } else {
          EXPECT_EQ(*tag, sig->tag) << "subset {" << a << "," << b << "," << c
                                    << "} disagreed";
        }
      }
    }
  }
}

TEST_P(ShamirSeedTest, KMinusOneSharesGiveNoInformationAboutTag) {
  // Forgery attempt: combine k-1 real shares with one fabricated share; the
  // result must not verify (except with negligible probability).
  const std::uint32_t k = 3, n = 7;
  ShamirThreshold scheme(k, n, GetParam());
  const Digest d = DigestBuilder("sh2").field(GetParam()).done();

  std::vector<PartialSig> ps = {scheme.issue_share(0).partial_sign(d),
                                scheme.issue_share(1).partial_sign(d)};
  PartialSig forged = scheme.issue_share(1).partial_sign(d);
  forged.signer = 2;
  forged.tag = fp::add(forged.tag, 1);
  ps.push_back(forged);
  // combine() verifies partials, so the forged share is filtered and the
  // batch is one short.
  EXPECT_FALSE(scheme.combine(ps).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShamirSeedTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 0xdeadbeefu));

TEST(Shamir, DifferentDigestsDifferentSignatures) {
  ShamirThreshold scheme(2, 5, 9);
  auto sig_for = [&](std::uint64_t x) {
    const Digest d = DigestBuilder("sh3").field(x).done();
    std::vector<PartialSig> ps = {scheme.issue_share(0).partial_sign(d),
                                  scheme.issue_share(1).partial_sign(d)};
    return *scheme.combine(ps);
  };
  EXPECT_NE(sig_for(1).tag, sig_for(2).tag);
}

TEST(Shamir, FullNOfNWorks) {
  const std::uint32_t n = 5;
  ShamirThreshold scheme(n, n, 11);
  const Digest d = DigestBuilder("sh4").field(1).done();
  std::vector<PartialSig> ps;
  for (ProcessId i = 0; i < n; ++i) {
    ps.push_back(scheme.issue_share(i).partial_sign(d));
  }
  const auto sig = scheme.combine(ps);
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(scheme.verify(*sig));
}

}  // namespace
}  // namespace mewc
