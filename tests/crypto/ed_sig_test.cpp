// Schnorr signatures over the real curve: determinism, strictness
// (non-canonical encodings and s >= q rejected — the non-malleability
// property), forgery rejection, and known-answer vectors. These signatures
// certify the BLS keys at trusted setup, so a silent behavioral change here
// reopens the rogue-key attack.
#include "crypto/ed_sig.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace mewc {
namespace {

std::vector<std::uint8_t> msg_bytes(std::initializer_list<std::uint8_t> b) {
  return std::vector<std::uint8_t>(b);
}

TEST(EdSig, SignVerifyRoundTrip) {
  const EdKeyPair kp = ed_keygen(42);
  const auto msg = msg_bytes({1, 2, 3, 4});
  const EdSig sig = ed_sign(kp, msg);
  EXPECT_TRUE(ed_verify(kp.pk_enc, msg, sig));
}

TEST(EdSig, DeterministicPerKeyAndMessage) {
  const EdKeyPair kp = ed_keygen(7);
  const auto msg = msg_bytes({9, 9, 9});
  const EdSig a = ed_sign(kp, msg);
  const EdSig b = ed_sign(kp, msg);
  EXPECT_EQ(a.r_enc, b.r_enc);
  EXPECT_EQ(a.s, b.s);
  // Different message, different nonce commitment (with overwhelming
  // probability; equality would mean the nonce ignores the message).
  const EdSig c = ed_sign(kp, msg_bytes({9, 9, 8}));
  EXPECT_NE(a.r_enc, c.r_enc);
}

TEST(EdSig, KeygenIsSeedDeterministicAndSeedSeparated) {
  const EdKeyPair a1 = ed_keygen(1234);
  const EdKeyPair a2 = ed_keygen(1234);
  EXPECT_EQ(a1.sk, a2.sk);
  EXPECT_EQ(a1.pk_enc, a2.pk_enc);
  EXPECT_NE(ed_keygen(1235).pk_enc, a1.pk_enc);
  // sk is canonical and usable: in [1, q).
  EXPECT_GE(a1.sk, 1u);
  EXPECT_LT(a1.sk, rc::kQ);
}

TEST(EdSig, RejectsWrongMessageKeyOrSignature) {
  const EdKeyPair kp = ed_keygen(42);
  const EdKeyPair other = ed_keygen(43);
  const auto msg = msg_bytes({1, 2, 3, 4});
  const EdSig sig = ed_sign(kp, msg);

  EXPECT_FALSE(ed_verify(kp.pk_enc, msg_bytes({1, 2, 3, 5}), sig));
  EXPECT_FALSE(ed_verify(other.pk_enc, msg, sig));
  EXPECT_FALSE(ed_verify(kp.pk_enc, msg_bytes({}), sig));
}

TEST(EdSig, EveryBitFlipOfTheSignatureIsRejected) {
  const EdKeyPair kp = ed_keygen(0xfeed);
  const auto msg = msg_bytes({0xaa, 0xbb, 0xcc});
  const EdSig sig = ed_sign(kp, msg);
  ASSERT_TRUE(ed_verify(kp.pk_enc, msg, sig));
  for (int bit = 0; bit < 64; ++bit) {
    EdSig r_flip = sig;
    r_flip.r_enc ^= 1ULL << bit;
    EXPECT_FALSE(ed_verify(kp.pk_enc, msg, r_flip)) << "R bit " << bit;
    EdSig s_flip = sig;
    s_flip.s ^= 1ULL << bit;
    EXPECT_FALSE(ed_verify(kp.pk_enc, msg, s_flip)) << "s bit " << bit;
  }
}

TEST(EdSig, RejectsMalleatedScalar) {
  const EdKeyPair kp = ed_keygen(5);
  const auto msg = msg_bytes({1});
  EdSig sig = ed_sign(kp, msg);
  ASSERT_LT(sig.s, rc::kQ) << "signer emitted non-canonical s";
  // s + q is the classic malleation: same algebra mod q, different bytes.
  // Strict verification must reject it outright.
  sig.s += rc::kQ;
  EXPECT_FALSE(ed_verify(kp.pk_enc, msg, sig));
  sig.s = rc::kQ;  // exactly q (== 0 mod q, but non-canonical)
  EXPECT_FALSE(ed_verify(kp.pk_enc, msg, sig));
}

TEST(EdSig, RejectsNonCanonicalCommitmentEncoding) {
  const EdKeyPair kp = ed_keygen(5);
  const auto msg = msg_bytes({1});
  EdSig sig = ed_sign(kp, msg);
  // Setting the reserved bit re-encodes R without changing any decoded
  // value a lax decoder would produce; strictness means rejection.
  sig.r_enc |= 1ULL << 63;
  EXPECT_FALSE(ed_verify(kp.pk_enc, msg, sig));
}

TEST(EdSig, RejectsGarbagePublicKey) {
  const EdKeyPair kp = ed_keygen(11);
  const auto msg = msg_bytes({1, 2});
  const EdSig sig = ed_sign(kp, msg);
  EXPECT_FALSE(ed_verify(rc::kBadEncoding, msg, sig));
  EXPECT_FALSE(ed_verify(rc::kInfBit, msg, sig));  // identity as pk
  EXPECT_FALSE(ed_verify(rc::kP, msg, sig));       // non-canonical x
}

// Known-answer vectors for the setup-certification signatures.
TEST(EdSigGolden, VectorsMatchCheckedInFixture) {
  std::ostringstream os;
  for (std::uint64_t seed : {1ULL, 42ULL, 0xed90bULL}) {
    const EdKeyPair kp = ed_keygen(seed);
    const auto msg = msg_bytes({0x6d, 0x65, 0x77, 0x63});  // "mewc"
    const EdSig sig = ed_sign(kp, msg);
    os << "seed=" << seed << " pk=" << kp.pk_enc << " R=" << sig.r_enc
       << " s=" << sig.s << "\n";
  }
  const std::string path =
      std::string(MEWC_CRYPTO_GOLDEN_DIR) + "/ed_sig_v1.txt";
  if (std::getenv("MEWC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << os.str();
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with MEWC_UPDATE_GOLDEN=1)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), os.str())
      << "signature bytes drifted — setup certification is no longer "
         "reproducible; if deliberate, regenerate with MEWC_UPDATE_GOLDEN=1";
}

}  // namespace
}  // namespace mewc
