// Adversarial property tests for the real (pairing-verified) backend: BLS
// signatures, aggregate multisignatures, and the RealThreshold scheme.
// Every forgery class the design claims to close is exercised directly —
// bit-flipped tags, rogue keys without proofs of possession, k-1 share
// coalitions, batch-verification smuggling — plus a codec_fuzz-style
// corruption sweep over wire payloads carrying real certificates: whatever
// the decoder accepts must still fail verification unless it is the
// original certificate, and nothing may crash (the ASan/UBSan preset runs
// this file; see CMakePresets.json).
#include "crypto/agg_threshold.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "ba/weak_ba/messages.hpp"
#include "crypto/family.hpp"
#include "crypto/multisig.hpp"
#include "wire/codec.hpp"

namespace mewc {
namespace {

Digest digest_of(std::uint64_t bits) { return Digest{bits}; }

// ---------------------------------------------------------------------------
// BLS primitives.
// ---------------------------------------------------------------------------

TEST(BlsPrimitives, SignVerifyAndDomainSeparation) {
  const std::uint64_t sk = 0x5ecce7;
  const rc::Point pk = rc::scalar_mul(sk, rc::kG);
  const rc::Point h = bls_message_point("mewc.test", 0x1234);
  const std::uint64_t tag = bls_sign_at(sk, h);
  CryptoVerifyStats stats;
  EXPECT_TRUE(bls_verify_at(pk, h, tag, &stats));
  EXPECT_GT(stats.pairings, 0u);

  // Same bits, different domain: different message point, so the signature
  // must not transfer.
  const rc::Point other = bls_message_point("mewc.other", 0x1234);
  EXPECT_FALSE(bls_verify_at(pk, other, tag, nullptr));
  // Domain-separated hashes differ (a collision here would let one
  // protocol's certificate replay into another's).
  EXPECT_FALSE(h == other);
}

TEST(BlsPrimitives, EveryBitFlipOfTheTagIsRejected) {
  const std::uint64_t sk = 0xabcdef;
  const rc::Point pk = rc::scalar_mul(sk, rc::kG);
  const rc::Point h = bls_message_point("mewc.test", 99);
  const std::uint64_t tag = bls_sign_at(sk, h);
  for (int bit = 0; bit < 64; ++bit) {
    EXPECT_FALSE(bls_verify_at(pk, h, tag ^ (1ULL << bit), nullptr))
        << "bit " << bit;
  }
  EXPECT_FALSE(bls_verify_at(pk, h, rc::kBadEncoding, nullptr));
  EXPECT_FALSE(bls_verify_at(pk, h, rc::kInfBit, nullptr)) << "identity tag";
}

// ---------------------------------------------------------------------------
// Individual signatures through the Pki, and aggregates.
// ---------------------------------------------------------------------------

class RealPkiTest : public ::testing::Test {
 protected:
  RealPkiTest() : family_(5, 2, ThresholdBackend::kReal, 0xcafe) {
    for (ProcessId p = 0; p < 5; ++p) {
      bundles_.push_back(family_.issue_bundle(p));
    }
  }

  ThresholdFamily family_;
  std::vector<KeyBundle> bundles_;
};

TEST_F(RealPkiTest, SignatureTagCorruptionSweep) {
  const Signature sig = bundles_[1].signer().sign(digest_of(0x777));
  ASSERT_TRUE(family_.pki().verify(sig));
  for (int bit = 0; bit < 64; ++bit) {
    Signature bad = sig;
    bad.tag ^= 1ULL << bit;
    EXPECT_FALSE(family_.pki().verify(bad)) << "tag bit " << bit;
  }
  // Signer swap and digest swap: the signature binds both.
  Signature wrong_signer = sig;
  wrong_signer.signer = 2;
  EXPECT_FALSE(family_.pki().verify(wrong_signer));
  Signature wrong_digest = sig;
  wrong_digest.digest = digest_of(0x778);
  EXPECT_FALSE(family_.pki().verify(wrong_digest));
}

TEST_F(RealPkiTest, AggregateVerifiesAndRejectsCorruption) {
  const Digest d = digest_of(0x777);
  AggSignature agg = aggregate_start(family_.pki(), bundles_[0].signer().sign(d));
  ASSERT_TRUE(aggregate_add(family_.pki(), agg, bundles_[1].signer().sign(d)));
  ASSERT_TRUE(aggregate_add(family_.pki(), agg, bundles_[3].signer().sign(d)));
  ASSERT_TRUE(aggregate_verify(family_.pki(), agg));

  for (int bit = 0; bit < 64; ++bit) {
    AggSignature bad = agg;
    bad.tag ^= 1ULL << bit;
    EXPECT_FALSE(aggregate_verify(family_.pki(), bad)) << "agg bit " << bit;
  }
  // Claiming an extra signer (or dropping one) without adjusting the point
  // breaks the pairing equation against the summed public keys.
  AggSignature extra = agg;
  ASSERT_TRUE(extra.signers.insert(2));
  EXPECT_FALSE(aggregate_verify(family_.pki(), extra));
  AggSignature fewer = agg;
  fewer.signers = SignerSet(5);
  ASSERT_TRUE(fewer.signers.insert(0));
  ASSERT_TRUE(fewer.signers.insert(1));
  EXPECT_FALSE(aggregate_verify(family_.pki(), fewer));
}

TEST_F(RealPkiTest, UndecodableTagPoisonsTheAggregate) {
  const Digest d = digest_of(0x9a9a);
  Signature garbage = bundles_[0].signer().sign(d);
  garbage.tag = rc::kBadEncoding;
  AggSignature agg = aggregate_start(family_.pki(), garbage);
  // Folding further valid signatures cannot launder the poison back into a
  // verifying aggregate.
  ASSERT_TRUE(aggregate_add(family_.pki(), agg, bundles_[1].signer().sign(d)));
  EXPECT_FALSE(aggregate_verify(family_.pki(), agg));
}

TEST_F(RealPkiTest, RogueKeyWithoutProofOfPossessionIsRejected) {
  const Pki& pki = family_.pki();
  // The classic rogue-key setup: the attacker registers pk_rogue chosen as
  // a function of the victims' keys (here: the negated sum, so the summed
  // aggregate key collapses to the identity). The defense is the setup-time
  // proof of possession, which the attacker cannot produce without the
  // discrete log of pk_rogue — and cannot transplant from a real key.
  rc::Point sum{};  // infinity
  for (ProcessId p = 0; p < 5; ++p) {
    rc::Point pk;
    ASSERT_TRUE(rc::decompress(pki.bls_pk_enc(p), &pk));
    sum = rc::point_add(sum, pk);
  }
  const std::uint64_t rogue_enc = rc::compress(rc::point_neg(sum));

  // Process 0's genuine PoP does not certify the rogue key.
  EXPECT_TRUE(pki.verify_pop(0, pki.bls_pk_enc(0), pki.pop_of(0)));
  EXPECT_FALSE(pki.verify_pop(0, rogue_enc, pki.pop_of(0)));
  // Nor does a self-made PoP under a key the attacker does control: the
  // verifier checks against process 0's identity key, not the attacker's.
  const EdKeyPair attacker = ed_keygen(0x5ca1ab1e);
  std::vector<std::uint8_t> msg(8);
  for (int i = 0; i < 8; ++i) {
    msg[i] = static_cast<std::uint8_t>(rogue_enc >> (8 * i));
  }
  const EdSig forged_pop = ed_sign(attacker, msg);
  EXPECT_FALSE(pki.verify_pop(0, rogue_enc, forged_pop));
}

// ---------------------------------------------------------------------------
// RealThreshold.
// ---------------------------------------------------------------------------

class RealThresholdTest : public ::testing::Test {
 protected:
  RealThresholdTest() : scheme_(3, 5, 0xabc) {
    for (ProcessId p = 0; p < 5; ++p) {
      keys_.push_back(scheme_.issue_share(p));
    }
  }

  std::vector<PartialSig> partials(Digest d) {
    std::vector<PartialSig> out;
    for (const ShareKey& k : keys_) out.push_back(k.partial_sign(d));
    return out;
  }

  RealThreshold scheme_;
  std::vector<ShareKey> keys_;
};

TEST_F(RealThresholdTest, AnyKSharesCombineToTheSameSignature) {
  const Digest d = digest_of(0x1234);
  const auto parts = partials(d);
  for (const PartialSig& p : parts) EXPECT_TRUE(scheme_.verify_partial(p));

  const auto sig135 = scheme_.combine({parts.begin() + 1, 3});
  const auto sig024 = scheme_.combine(
      std::span<const PartialSig>{std::array{parts[0], parts[2], parts[4]}});
  ASSERT_TRUE(sig135.has_value());
  ASSERT_TRUE(sig024.has_value());
  // Share-set independence: Lagrange in the exponent reconstructs the one
  // group signature whichever quorum combines.
  EXPECT_EQ(sig135->tag, sig024->tag);
  EXPECT_TRUE(scheme_.verify(*sig135));
}

TEST_F(RealThresholdTest, KMinusOneSharesNeverReconstruct) {
  const Digest d = digest_of(0x1234);
  const auto parts = partials(d);
  EXPECT_FALSE(scheme_.combine({parts.begin(), 2}).has_value());
  EXPECT_FALSE(scheme_.combine({parts.begin(), 0}).has_value());
  // Duplicated signers do not count toward the threshold.
  const std::array dup{parts[0], parts[0], parts[0]};
  EXPECT_FALSE(scheme_.combine(std::span<const PartialSig>{dup}).has_value());
}

TEST_F(RealThresholdTest, PartialAndGroupTagCorruptionSweeps) {
  const Digest d = digest_of(0x4444);
  const auto parts = partials(d);
  const auto sig = scheme_.combine({parts.begin(), 3});
  ASSERT_TRUE(sig.has_value());

  for (int bit = 0; bit < 64; ++bit) {
    PartialSig bad_p = parts[0];
    bad_p.tag ^= 1ULL << bit;
    EXPECT_FALSE(scheme_.verify_partial(bad_p)) << "partial bit " << bit;
    ThresholdSig bad_g = *sig;
    bad_g.tag ^= 1ULL << bit;
    EXPECT_FALSE(scheme_.verify(bad_g)) << "group bit " << bit;
  }
  // Digest substitution under a valid tag.
  ThresholdSig replayed = *sig;
  replayed.digest = digest_of(0x4445);
  EXPECT_FALSE(scheme_.verify(replayed));
  // A partial from a different signer under signer 0's identity.
  PartialSig stolen = parts[1];
  stolen.signer = 0;
  EXPECT_FALSE(scheme_.verify_partial(stolen));
}

TEST_F(RealThresholdTest, BatchVerificationAdmitsNoSmuggling) {
  const Digest d1 = digest_of(0xd1);
  const Digest d2 = digest_of(0xd2);
  const auto s1 = scheme_.combine({partials(d1).data(), 3});
  const auto s2 = scheme_.combine({partials(d2).data(), 3});
  ASSERT_TRUE(s1 && s2);

  EXPECT_TRUE(scheme_.verify_batch(std::array{*s1, *s2}));
  EXPECT_TRUE(scheme_.verify_batch(std::array{*s1}));
  EXPECT_TRUE(scheme_.verify_batch(std::span<const ThresholdSig>{}));

  ThresholdSig bad = *s1;
  bad.tag ^= 2;
  EXPECT_FALSE(scheme_.verify_batch(std::array{bad}));
  EXPECT_FALSE(scheme_.verify_batch(std::array{*s1, bad}));
  EXPECT_FALSE(scheme_.verify_batch(std::array{bad, *s2}));
  // Two corruptions must not cancel: same forged delta on both entries.
  ThresholdSig bad2 = *s2;
  bad2.tag ^= 2;
  EXPECT_FALSE(scheme_.verify_batch(std::array{bad, bad2}));
  EXPECT_FALSE(scheme_.verify_batch(std::array{bad, bad}));
}

TEST_F(RealThresholdTest, MemoServesRepeatVerificationsWithoutPairings) {
  const Digest d = digest_of(0x3333);
  const auto sig = scheme_.combine({partials(d).data(), 3});
  ASSERT_TRUE(sig.has_value());
  scheme_.reset_verify_stats();
  ASSERT_TRUE(scheme_.verify(*sig));
  const std::uint64_t cold = scheme_.verify_stats().pairings;
  EXPECT_GT(cold, 0u);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(scheme_.verify(*sig));
  EXPECT_EQ(scheme_.verify_stats().pairings, cold)
      << "repeat verifications should be memo hits, not pairings";
  EXPECT_EQ(scheme_.verify_stats().memo_hits, 10u);
  // Negative results are memoized too (a Byzantine cert replayed to every
  // process must not cost a pairing per replay).
  ThresholdSig bad = *sig;
  bad.tag ^= 1;
  EXPECT_FALSE(scheme_.verify(bad));
  const std::uint64_t after_bad = scheme_.verify_stats().pairings;
  EXPECT_FALSE(scheme_.verify(bad));
  EXPECT_EQ(scheme_.verify_stats().pairings, after_bad);
}

// ---------------------------------------------------------------------------
// Wire-level corruption sweep (the codec_fuzz discipline pointed at real
// certificates): encode a payload carrying a real quorum certificate, flip
// every byte, decode, and verify whatever still parses. Nothing may crash;
// nothing that decodes to a different certificate may verify.
// ---------------------------------------------------------------------------

TEST_F(RealPkiTest, CorruptedWireCertificatesNeverVerify) {
  const std::uint32_t k = 3;  // t+1 scheme of the (5, 2) family
  std::vector<PartialSig> parts;
  const Digest d = digest_of(0xc0ffee);
  for (ProcessId p = 0; p < k; ++p) {
    parts.push_back(bundles_[p].share(k).partial_sign(d));
  }
  const auto qc = family_.scheme(k).combine(parts);
  ASSERT_TRUE(qc.has_value());
  ASSERT_TRUE(family_.scheme(k).verify(*qc));

  wba::CommitMsg commit;
  commit.phase = 2;
  commit.value = WireValue::certified(Value(8), *qc, 1);
  commit.level = 1;
  commit.qc = *qc;
  const auto bytes = wire::encode(commit);
  ASSERT_TRUE(bytes.has_value());

  // The thresholds the family provisions; a decoded certificate claiming
  // any other k is unverifiable by construction (scheme() aborts), which is
  // exactly how the live scanner treats it.
  const auto provisioned = [&](std::uint32_t kk) {
    return kk == 3 || kk == 4 || kk == 5;  // t+1, ceil((n+t+1)/2), n
  };

  std::size_t parsed_variants = 0;
  for (std::size_t byte = 0; byte < bytes->size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mutated = *bytes;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const PayloadPtr decoded = wire::decode(mutated);
      if (decoded == nullptr) continue;
      const auto* c = payload_cast<wba::CommitMsg>(decoded);
      if (c == nullptr) continue;  // flipped into another kind entirely
      ++parsed_variants;
      if (!(c->qc == *qc) && provisioned(c->qc.k)) {
        EXPECT_FALSE(family_.scheme(c->qc.k).verify(c->qc))
            << "byte " << byte << " bit " << bit;
      }
      if (c->value.cert && !(*c->value.cert == *qc) &&
          provisioned(c->value.cert->k)) {
        EXPECT_FALSE(family_.scheme(c->value.cert->k).verify(*c->value.cert))
            << "value.cert byte " << byte << " bit " << bit;
      }
    }
  }
  // The sweep must actually have exercised decoded-but-corrupt payloads.
  EXPECT_GT(parsed_variants, 0u);
}

}  // namespace
}  // namespace mewc
