#!/usr/bin/env bash
# node-smoke ctest gate: a real 4-process mewc_node cluster on localhost,
# driven by mewc_loadgen, must (a) complete every slot on every node,
# (b) ack every client op, and (c) converge to ONE kv digest and ONE
# ledger digest across all four nodes. The latency JSON the loadgen writes
# is the CI artifact (NODE_latency.json).
#
#   node_smoke.sh <mewc_node> <mewc_loadgen> <scratch_dir>
set -u

node_bin=${1:?usage: node_smoke.sh <mewc_node> <mewc_loadgen> <scratch_dir>}
loadgen_bin=${2:?missing mewc_loadgen path}
scratch=${3:?missing scratch dir}

rm -rf "$scratch"
mkdir -p "$scratch"

n=4
slots=64
ops=48
# Randomize the port window so parallel ctest invocations (and leftover
# TIME_WAIT sockets from a previous run) do not collide.
base_port=$((20000 + RANDOM % 20000))

pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill "$pid" 2>/dev/null
  done
}
trap cleanup EXIT

for ((i = 0; i < n; ++i)); do
  "$node_bin" --id "$i" --n "$n" --t 1 --base-port "$base_port" \
    --slots "$slots" --checkpoint-every 8 --seed 0xabc \
    > "$scratch/node$i.log" 2>&1 &
  pids+=($!)
done

targets=""
for ((i = 0; i < n; ++i)); do
  targets+="${targets:+,}127.0.0.1:$((base_port + n + i))"
done

"$loadgen_bin" --targets "$targets" --ops "$ops" --rate 200 \
  --drain-ms 60000 --json "$scratch/NODE_latency.json" \
  > "$scratch/loadgen.log" 2>&1
loadgen_rc=$?

node_rc=0
for pid in "${pids[@]}"; do
  wait "$pid" || node_rc=1
done
pids=()

echo "--- loadgen ---"
cat "$scratch/loadgen.log"
echo "--- nodes ---"
grep -h "slots=\|client ops\|timeouts\|digest" "$scratch"/node*.log

fail=0
if ((node_rc != 0)); then
  echo "FAIL: a node exited non-zero" >&2
  fail=1
fi
if ((loadgen_rc != 0)); then
  echo "FAIL: loadgen exited $loadgen_rc (unacked ops?)" >&2
  fail=1
fi

# Every node ran every slot.
if [[ $(grep -hc "slots=$slots " "$scratch"/node*.log | sort -u) != "1" ]]; then
  echo "FAIL: not every node completed $slots slots" >&2
  fail=1
fi

# The agreement audit: exactly one distinct kv digest and one distinct
# ledger digest across the cluster.
kv=$(grep -h "kv digest:" "$scratch"/node*.log | awk '{print $NF}' | sort -u)
ledger=$(grep -h "ledger digest:" "$scratch"/node*.log | awk '{print $NF}' | sort -u)
if [[ $(grep -h "kv digest:" "$scratch"/node*.log | wc -l) -ne $n ]]; then
  echo "FAIL: expected $n kv digest lines" >&2
  fail=1
fi
if [[ $(wc -l <<< "$kv") -ne 1 || -z $kv ]]; then
  echo "FAIL: kv digests diverged: $kv" >&2
  fail=1
fi
if [[ $(wc -l <<< "$ledger") -ne 1 || -z $ledger ]]; then
  echo "FAIL: ledger digests diverged: $ledger" >&2
  fail=1
fi

if ((fail == 0)); then
  echo "node smoke converged: kv $kv ledger $ledger"
fi
exit $fail
