// The coverage map is part of the determinism contract: a CellSpec fully
// determines its run, so it fully determines which paper-line sites the run
// reaches. These tests pin that — identical cells give identical bitmaps,
// scopes never bleed across threads (the property the campaign workers and
// the fuzzer lean on), and a known happy-path BB run covers exactly the
// sites the paper's fast path predicts, no more.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "check/adversary_registry.hpp"
#include "check/coverage.hpp"
#include "check/mutator.hpp"
#include "check/runner.hpp"

namespace mewc::check {
namespace {

cov::CoverageMap covered_map(const CellSpec& cell) {
  const cov::CoverageScope scope;
  (void)run_cell(cell, {});
  return scope.map();
}

std::set<std::string> covered_names(const cov::Bitmap& bm) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < cov::kSiteCount; ++i) {
    const auto site = static_cast<cov::Site>(i);
    if (bm.test(site)) names.insert(std::string(cov::site_name(site)));
  }
  return names;
}

TEST(CoverageSites, NamesAndIndicesRoundTrip) {
  for (std::size_t i = 0; i < cov::kSiteCount; ++i) {
    const auto site = static_cast<cov::Site>(i);
    const std::string_view name = cov::site_name(site);
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(cov::site_index_of(name), i) << name;
  }
  EXPECT_EQ(cov::site_index_of("no_such_site"), cov::kSiteCount);
  EXPECT_EQ(cov::site_index_of(""), cov::kSiteCount);
}

TEST(CoverageSites, HitWithoutScopeIsANoOp) {
  // The protocol modules run outside any scope in production; the macro
  // must be inert there (this is the zero-cost-when-disabled contract).
  MEWC_COV(alg1_line2_sender_broadcast);
  const cov::CoverageScope scope;
  EXPECT_EQ(scope.map().total_hits(), 0u);
}

TEST(CoverageSites, ScopesNestAndRestore) {
  const cov::CoverageScope outer;
  MEWC_COV(alg1_line2_sender_broadcast);
  {
    const cov::CoverageScope inner;
    MEWC_COV(alg1_line13_decide_bottom);
    EXPECT_EQ(inner.map().count(cov::Site::alg1_line13_decide_bottom), 1u);
    EXPECT_EQ(inner.map().count(cov::Site::alg1_line2_sender_broadcast), 0u);
  }
  MEWC_COV(alg1_line2_sender_broadcast);
  EXPECT_EQ(outer.map().count(cov::Site::alg1_line2_sender_broadcast), 2u);
  EXPECT_EQ(outer.map().count(cov::Site::alg1_line13_decide_bottom), 0u);
}

TEST(CoverageBitmap, MergeMinusCoversCount) {
  cov::Bitmap a;
  a.set(cov::Site::alg1_line2_sender_broadcast);
  a.set(cov::Site::afb_accept);
  cov::Bitmap b;
  b.set(cov::Site::afb_accept);
  b.set(cov::Site::afb_relay);

  cov::Bitmap merged = a;
  EXPECT_TRUE(merged.merge(b));  // afb_relay is new
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_FALSE(merged.merge(b));  // nothing new the second time

  const cov::Bitmap novel = b.minus(a);
  EXPECT_EQ(novel.count(), 1u);
  EXPECT_TRUE(novel.test(cov::Site::afb_relay));

  EXPECT_TRUE(merged.covers(a));
  EXPECT_TRUE(merged.covers(b));
  EXPECT_FALSE(a.covers(b));
  EXPECT_TRUE(a.any());
  EXPECT_FALSE(cov::Bitmap{}.any());
}

TEST(CoverageDeterminism, SameCellProducesIdenticalMaps) {
  for (const Protocol proto : all_protocols()) {
    CellSpec cell;
    cell.protocol = proto;
    cell.n = 5;
    cell.t = 2;
    cell.f = 2;
    cell.adversary = "fuzz-crash";
    cell.seed = 0xc0feULL;
    const cov::CoverageMap first = covered_map(cell);
    const cov::CoverageMap second = covered_map(cell);
    EXPECT_EQ(first, second) << protocol_name(proto);
    EXPECT_GT(first.total_hits(), 0u) << protocol_name(proto);
  }
}

TEST(CoverageScoping, ParallelWorkersDoNotBleed) {
  // One worker per protocol, all running concurrently under their own
  // scope: each must observe exactly what its own solo run observes —
  // the same no-bleed discipline pool::StatsScope guarantees.
  const std::vector<Protocol> protos = all_protocols();
  std::vector<cov::CoverageMap> parallel_maps(protos.size());
  std::vector<cov::CoverageMap> solo_maps(protos.size());

  const auto cell_for = [](Protocol proto) {
    CellSpec cell;
    cell.protocol = proto;
    cell.n = 5;
    cell.t = 2;
    cell.f = 1;
    cell.adversary = "crash";
    cell.seed = 7;
    return cell;
  };

  std::vector<std::thread> workers;
  workers.reserve(protos.size());
  for (std::size_t i = 0; i < protos.size(); ++i) {
    workers.emplace_back([&, i] {
      parallel_maps[i] = covered_map(cell_for(protos[i]));
    });
  }
  for (auto& w : workers) w.join();
  for (std::size_t i = 0; i < protos.size(); ++i) {
    solo_maps[i] = covered_map(cell_for(protos[i]));
  }
  for (std::size_t i = 0; i < protos.size(); ++i) {
    EXPECT_EQ(parallel_maps[i], solo_maps[i]) << protocol_name(protos[i]);
  }
}

TEST(CoverageKnownPath, HappyPathBbCoversExactlyTheFastPathSites) {
  // f = 0 BB: the sender signs and broadcasts, everyone adopts, the weak-BA
  // phases decide in one pass, the help round stays silent, and nothing is
  // ever rejected. The exact site set is the paper's fast path; a diff here
  // means a protocol change moved the happy path and this pin must be
  // reviewed, not silenced.
  CellSpec cell;
  cell.protocol = Protocol::kBb;
  cell.n = 5;
  cell.t = 2;
  cell.f = 0;
  cell.adversary = "none";
  cell.seed = 1;
  const std::set<std::string> expected = {
      "alg1_line2_sender_broadcast",
      "alg1_line4_adopt_sender_value",
      "alg1_line9_enter_weak_ba",
      "alg1_line11_decide_signed",
      "alg2_line15_silent_phase",
      "bbvalid_signed_accept",
      "alg4_line31_propose",
      "alg4_line31_silent_decided",
      "alg4_line34_vote_scheduled",
      "alg4_line38_vote_collected",
      "alg4_line41_leader_fresh_qc",
      "alg4_line43_adopt_commit",
      "alg4_line49_decide_collected",
      "alg4_line50_finalize",
      "alg4_line53_decide_finalize",
      "alg3_line5_silent_decided",
  };
  EXPECT_EQ(covered_names(cov::to_bitmap(covered_map(cell))), expected);
}

TEST(Mutators, EveryMutantIsAValidCell) {
  // Whatever sequence of operators fires, the mutant must stay runnable:
  // t >= 1, n >= 2t+1, f <= t, a registry adversary, within the limits.
  const MutationLimits limits;
  Rng rng(42);
  std::vector<CellSpec> corpus = fuzz_seed_corpus();
  ASSERT_FALSE(corpus.empty());
  for (int i = 0; i < 2000; ++i) {
    const CellSpec& base = corpus[rng.below(corpus.size())];
    const CellSpec& donor = corpus[rng.below(corpus.size())];
    Mutator used{};
    CellSpec mutant = mutate(base, donor, rng, &used, limits);
    ASSERT_GE(mutant.t, 1u);
    ASSERT_LE(mutant.t, limits.max_t);
    ASSERT_GE(mutant.n, 2 * mutant.t + 1);
    ASSERT_LE(mutant.n, 2 * mutant.t + 1 + limits.max_extra_n);
    ASSERT_LE(mutant.f, mutant.t);
    AdversaryParams params;
    params.protocol = mutant.protocol;
    params.n = mutant.n;
    params.t = mutant.t;
    params.f = mutant.f;
    params.seed = mutant.seed;
    params.value = mutant.value;
    ASSERT_NE(make_adversary(mutant.adversary, params), nullptr)
        << mutant.adversary;
    ASSERT_LT(static_cast<std::size_t>(used), kMutatorCount);
    corpus.push_back(std::move(mutant));  // mutate mutants too
  }
}

TEST(Mutators, SameRngStreamProducesSameMutants) {
  const std::vector<CellSpec> corpus = fuzz_seed_corpus();
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 200; ++i) {
    const CellSpec& base = corpus[a.below(corpus.size())];
    (void)b.below(corpus.size());
    const CellSpec& donor = corpus[a.below(corpus.size())];
    (void)b.below(corpus.size());
    Mutator used_a{};
    Mutator used_b{};
    const CellSpec ma = mutate(base, donor, a, &used_a);
    const CellSpec mb = mutate(base, donor, b, &used_b);
    EXPECT_EQ(used_a, used_b);
    EXPECT_EQ(ma.label(), mb.label());
  }
}

TEST(Mutators, SeedCorpusSweepsProtocolsAdversariesAndBudgets) {
  const std::vector<CellSpec> corpus = fuzz_seed_corpus(2, 7, 1);
  std::set<std::string> advs;
  std::set<Protocol> protos;
  std::set<std::uint32_t> fs;
  std::set<std::uint64_t> seeds;
  for (const CellSpec& cell : corpus) {
    advs.insert(cell.adversary);
    protos.insert(cell.protocol);
    fs.insert(cell.f);
    seeds.insert(cell.seed);
    EXPECT_EQ(cell.n, 5u);
    EXPECT_EQ(cell.t, 2u);
  }
  EXPECT_EQ(advs.size(), adversary_names().size());
  EXPECT_EQ(protos.size(), all_protocols().size());
  EXPECT_EQ(fs, (std::set<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(seeds, (std::set<std::uint64_t>{1, 2, 3}));
}

}  // namespace
}  // namespace mewc::check
