// Campaign engine: grid parsing, cell enumeration, parallel execution, and
// the JSON report. The sweeps here subsume the hand-rolled adversary loops
// the property tests used to carry, including general resilience n > 2t+1.
#include "check/campaign.hpp"

#include <gtest/gtest.h>

#include "net/arena.hpp"

namespace mewc::check {
namespace {

json::Value parse_or_die(const std::string& text) {
  std::string error;
  auto v = json::parse(text, &error);
  EXPECT_TRUE(v.has_value()) << error;
  return v.value_or(json::Value());
}

TEST(GridSpec, ParsesFullGridJson) {
  const auto v = parse_or_die(R"({
    "protocols": ["weak-ba", "bb"],
    "sizes": [{"t": 2}, {"n": 9, "t": 2}],
    "fs": [0, 1, 2],
    "adversaries": ["none", "crash"],
    "seeds": [7, 8],
    "backend": "shamir",
    "codec_roundtrip": true,
    "value": 9,
    "word_budget_c": 40
  })");
  GridSpec grid;
  std::string error;
  ASSERT_TRUE(GridSpec::from_json(v, &grid, &error)) << error;
  EXPECT_EQ(grid.protocols,
            (std::vector<Protocol>{Protocol::kWeakBa, Protocol::kBb}));
  EXPECT_EQ(grid.sizes.size(), 2u);
  EXPECT_EQ(grid.backends,
            std::vector<ThresholdBackend>{ThresholdBackend::kShamir});
  EXPECT_TRUE(grid.codec_roundtrip);
  EXPECT_EQ(grid.value, 9u);
  EXPECT_EQ(grid.checkers.word_budget_c, 40u);

  // 2 protocols x 2 sizes x 3 fs x 2 adversaries x 2 seeds.
  const auto cells = grid.enumerate();
  EXPECT_EQ(cells.size(), 2u * 2 * 3 * 2 * 2);
  // n == 0 sizes resolve to 2t+1.
  EXPECT_EQ(cells.front().n, 5u);
}

TEST(GridSpec, SeedsCountShorthandAndAllProtocols) {
  const auto v = parse_or_die(
      R"({"protocols": ["all"], "sizes": [{"t": 1}], "seeds": 16})");
  GridSpec grid;
  std::string error;
  ASSERT_TRUE(GridSpec::from_json(v, &grid, &error)) << error;
  EXPECT_EQ(grid.protocols.size(), all_protocols().size());
  ASSERT_EQ(grid.seeds.size(), 16u);
  EXPECT_EQ(grid.seeds.front(), 1u);
  EXPECT_EQ(grid.seeds.back(), 16u);
}

TEST(GridSpec, SkipsCellsWithFAboveT) {
  GridSpec grid;
  grid.protocols = {Protocol::kWeakBa};
  grid.sizes = {{0, 1}, {0, 3}};
  grid.fs = {0, 2};
  const auto cells = grid.enumerate();
  // t = 1 admits only f = 0; t = 3 admits both.
  EXPECT_EQ(cells.size(), 3u);
}

TEST(GridSpec, RejectsUnknownNamesAndBadSizes) {
  GridSpec grid;
  std::string error;
  EXPECT_FALSE(GridSpec::from_json(
      parse_or_die(R"({"protocols": ["raft"], "sizes": [{"t": 1}]})"), &grid,
      &error));
  EXPECT_NE(error.find("unknown protocol"), std::string::npos) << error;
  EXPECT_FALSE(GridSpec::from_json(
      parse_or_die(R"({"protocols": ["bb"], "sizes": [{"t": 1}],
                       "adversaries": ["ddos"]})"),
      &grid, &error));
  EXPECT_NE(error.find("unknown adversary"), std::string::npos) << error;
  EXPECT_FALSE(GridSpec::from_json(
      parse_or_die(R"({"protocols": ["bb"], "sizes": [{"n": 4, "t": 2}]})"),
      &grid, &error));
  EXPECT_NE(error.find("2t+1"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Crash / killer / random-adaptive sweeps through the campaign engine,
// including general resilience n > 2t+1 (paper Section 8).
// ---------------------------------------------------------------------------

TEST(CampaignSweep, CrashFamilyAcrossAllProtocolsAndWideSystems) {
  GridSpec grid;
  grid.protocols = all_protocols();
  grid.sizes = {{0, 1}, {0, 2}, {9, 2}, {13, 3}};
  grid.fs = {0, 1, 2};
  grid.adversaries = {"none", "crash", "crash-late", "silent-sender"};
  grid.seeds = {11, 23};
  const auto report = run_campaign(grid);
  EXPECT_GT(report.cells_total, 0u);
  EXPECT_EQ(report.cells_passed, report.cells_total) << [&] {
    const auto* f = report.first_failure();
    return f != nullptr ? f->cell.label() : std::string();
  }();
}

TEST(CampaignSweep, AdaptiveAdversariesStayWithinTheWordEnvelope) {
  GridSpec grid;
  grid.protocols = {Protocol::kBb, Protocol::kWeakBa, Protocol::kStrongBa};
  grid.sizes = {{0, 2}, {0, 4}, {11, 2}};
  grid.fs = {0, 1, 2};
  grid.adversaries = {"killer", "random-adaptive", "help-spam"};
  grid.seeds = {5, 6, 7};
  const auto report = run_campaign(grid);
  EXPECT_EQ(report.cells_passed, report.cells_total) << [&] {
    const auto* f = report.first_failure();
    return f != nullptr ? f->cell.label() : std::string();
  }();
  // The adaptive regime must actually be exercised, or the word-budget
  // checker was vacuous.
  bool any_adaptive = false;
  for (const auto& r : report.results) any_adaptive |= r.adaptive;
  EXPECT_TRUE(any_adaptive);
}

TEST(CampaignSweep, ShamirBackendCarriesTheProtocolsEndToEnd) {
  GridSpec grid;
  grid.protocols = {Protocol::kWeakBa, Protocol::kStrongBa};
  grid.sizes = {{0, 1}, {0, 2}};
  grid.fs = {0, 1};
  grid.adversaries = {"crash"};
  grid.seeds = {3};
  grid.backends = {ThresholdBackend::kShamir};
  const auto report = run_campaign(grid);
  EXPECT_EQ(report.cells_passed, report.cells_total);
}

TEST(CampaignSweep, ParallelAndSerialRunsAgree) {
  GridSpec grid;
  grid.protocols = {Protocol::kWeakBa};
  grid.sizes = {{0, 2}};
  grid.fs = {0, 1, 2};
  grid.adversaries = {"crash", "killer"};
  grid.seeds = {1, 2, 3, 4};
  const auto serial = run_campaign(grid, /*jobs=*/1);
  const auto parallel = run_campaign(grid, /*jobs=*/4);
  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.results[i].words_correct,
              parallel.results[i].words_correct);
    EXPECT_EQ(serial.results[i].passed(), parallel.results[i].passed());
  }
}

TEST(CampaignReport, PerCellPoolStatsDoNotBleedAcrossCells) {
  if (!pool::enabled()) GTEST_SKIP() << "payload pooling disabled";
  // Two identical cells on one worker thread: each performs the same number
  // of payload allocations, so the per-cell deltas must match. Before the
  // scoped delta, the second cell reported the worker's *cumulative*
  // lifetime stats (~2x the first cell's).
  GridSpec grid;
  grid.protocols = {Protocol::kWeakBa};
  grid.sizes = {{0, 2}};
  grid.fs = {1};
  grid.adversaries = {"crash"};
  grid.seeds = {9, 9};
  const auto report = run_campaign(grid, /*jobs=*/1);
  ASSERT_EQ(report.results.size(), 2u);
  const auto& a = report.results[0];
  const auto& b = report.results[1];
  ASSERT_GT(a.pool_reused + a.pool_fresh, 0u);
  EXPECT_EQ(a.pool_reused + a.pool_fresh, b.pool_reused + b.pool_fresh);
  // The first cell on a cold worker allocates fresh blocks; the second
  // reuses what the first released. Reuse must not regress to zero.
  EXPECT_GT(b.pool_reused, 0u);

  // The JSON report surfaces the summed reuse counters.
  std::string error;
  const auto parsed = json::parse(report.to_json().dump(2), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ((*parsed)["pool"]["reused"].as_u64(),
            a.pool_reused + b.pool_reused);
  EXPECT_EQ((*parsed)["pool"]["fresh"].as_u64(), a.pool_fresh + b.pool_fresh);
  EXPECT_GT((*parsed)["pool"]["reuse_rate"].as_double(), 0.0);
}

TEST(CampaignReport, JsonRoundTripsAndCountsFailures) {
  GridSpec grid;
  grid.protocols = {Protocol::kBb};
  grid.sizes = {{0, 1}};
  grid.adversaries = {"none"};
  grid.seeds = {1, 2};
  grid.checkers.word_budget_c = 1;  // plant: every cell overshoots
  const auto report = run_campaign(grid);
  EXPECT_EQ(report.cells_passed, 0u);
  EXPECT_EQ(report.cells_failed(), report.cells_total);

  std::string error;
  const auto parsed = json::parse(report.to_json().dump(2), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ((*parsed)["cells_total"].as_u64(), report.cells_total);
  EXPECT_EQ((*parsed)["cells_failed"].as_u64(), report.cells_total);
  EXPECT_EQ((*parsed)["failures"].as_array().size(), report.cells_total);
  const auto& group = (*parsed)["groups"]["bb/none"];
  ASSERT_TRUE(group.is_object());
  EXPECT_GT(group["words_max"].as_u64(), 0u);
  EXPECT_GE(group["words_max"].as_u64(), group["words_p50"].as_u64());
}

}  // namespace
}  // namespace mewc::check
