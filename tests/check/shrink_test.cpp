// Shrinking and replay: a planted word-budget violation must shrink to the
// smallest configuration that still fails the same checker, and the replay
// file must reproduce the verdict bit-for-bit after a JSON round trip.
#include "check/shrink.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace mewc::check {
namespace {

// The acceptance-criteria plant: C = 1 is below any real run's word cost,
// so every cell fails the word-budget checker.
CheckerOptions planted_options() {
  CheckerOptions opts;
  opts.word_budget_c = 1;
  return opts;
}

CellSpec failing_cell() {
  CellSpec cell;
  cell.protocol = Protocol::kBb;
  cell.n = 7;
  cell.t = 3;
  cell.f = 1;  // keeps n - f >= commit_quorum: the budget-checked regime
  cell.adversary = "crash";
  cell.seed = 41;
  return cell;
}

TEST(Shrink, PlantedViolationIsDetected) {
  const auto violations = violations_of(failing_cell(), planted_options());
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().checker, "word-budget");
}

TEST(Shrink, ReducesToMinimalCellFailingTheSameChecker) {
  const auto result = shrink_failure(failing_cell(), planted_options());
  EXPECT_EQ(result.checker, "word-budget");
  EXPECT_GT(result.runs, 0u);
  EXPECT_GT(result.steps, 0u);

  // C = 1 fails everywhere, so the greedy shrink must reach the floor of
  // every axis: the smallest system, no corruption, seed zero.
  EXPECT_EQ(result.minimal.t, 1u);
  EXPECT_EQ(result.minimal.n, 3u);
  EXPECT_EQ(result.minimal.f, 0u);
  EXPECT_EQ(result.minimal.seed, 0u);
  EXPECT_EQ(result.minimal.protocol, Protocol::kBb);
  EXPECT_EQ(result.minimal.adversary, "crash");

  // Minimality is only meaningful if the shrunk cell still fails.
  const auto violations = violations_of(result.minimal, planted_options());
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().checker, "word-budget");
}

TEST(Shrink, RespectsTheRunBudget) {
  ShrinkOptions shrink;
  shrink.max_runs = 2;
  const auto result =
      shrink_failure(failing_cell(), planted_options(), shrink);
  EXPECT_LE(result.runs, 2u);
  // Whatever it returns must still be a failing cell.
  EXPECT_FALSE(violations_of(result.minimal, planted_options()).empty());
}

TEST(Replay, JsonRoundTripPreservesEverything) {
  Replay replay;
  replay.cell = failing_cell();
  replay.cell.backend = ThresholdBackend::kShamir;
  replay.cell.codec_roundtrip = true;
  replay.cell.value = 9;
  replay.checkers = planted_options();
  replay.expected = violations_of(replay.cell, replay.checkers);
  ASSERT_FALSE(replay.expected.empty());

  Replay loaded;
  std::string error;
  ASSERT_TRUE(Replay::from_json(replay.to_json(), &loaded, &error)) << error;
  EXPECT_EQ(loaded.cell.protocol, replay.cell.protocol);
  EXPECT_EQ(loaded.cell.n, replay.cell.n);
  EXPECT_EQ(loaded.cell.t, replay.cell.t);
  EXPECT_EQ(loaded.cell.f, replay.cell.f);
  EXPECT_EQ(loaded.cell.adversary, replay.cell.adversary);
  EXPECT_EQ(loaded.cell.seed, replay.cell.seed);
  EXPECT_EQ(loaded.cell.backend, replay.cell.backend);
  EXPECT_EQ(loaded.cell.codec_roundtrip, replay.cell.codec_roundtrip);
  EXPECT_EQ(loaded.cell.value, replay.cell.value);
  EXPECT_EQ(loaded.checkers.word_budget_c, replay.checkers.word_budget_c);
  ASSERT_EQ(loaded.expected.size(), replay.expected.size());
  for (std::size_t i = 0; i < loaded.expected.size(); ++i) {
    EXPECT_EQ(loaded.expected[i].checker, replay.expected[i].checker);
    EXPECT_EQ(loaded.expected[i].detail, replay.expected[i].detail);
  }

  // The re-run verdict matches the recording — the --replay contract.
  const auto rerun = violations_of(loaded.cell, loaded.checkers);
  ASSERT_EQ(rerun.size(), loaded.expected.size());
  for (std::size_t i = 0; i < rerun.size(); ++i) {
    EXPECT_EQ(rerun[i].checker, loaded.expected[i].checker);
    EXPECT_EQ(rerun[i].detail, loaded.expected[i].detail);
  }
}

TEST(Replay, SaveLoadRoundTripsThroughDisk) {
  const char* path = "shrink_test_replay.json";
  Replay replay;
  replay.cell = failing_cell();
  replay.checkers = planted_options();
  replay.expected = violations_of(replay.cell, replay.checkers);
  ASSERT_TRUE(replay.save(path));

  Replay loaded;
  std::string error;
  ASSERT_TRUE(Replay::load(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.cell.label(), replay.cell.label());
  EXPECT_EQ(loaded.expected.size(), replay.expected.size());
  std::remove(path);
}

TEST(Replay, RejectsMalformedFiles) {
  Replay loaded;
  std::string error;
  EXPECT_FALSE(Replay::load("does-not-exist.json", &loaded, &error));
  const auto bad = json::parse(R"({"mewc_replay": 1, "cell": {
      "protocol": "bb", "n": 4, "t": 2, "f": 0, "adversary": "crash",
      "seed": 1}})");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(Replay::from_json(*bad, &loaded, &error));  // n < 2t+1
}

}  // namespace
}  // namespace mewc::check
