// Adversarial self-test of the invariant checkers: every checker must fire
// on a record with a known planted violation, and stay quiet on a clean
// run. A checker that cannot fail would make the whole campaign engine
// vacuous, so this is the first thing the DST suite verifies.
#include "check/checkers.hpp"

#include <gtest/gtest.h>

#include "check/runner.hpp"

namespace mewc::check {
namespace {

CellSpec weak_ba_cell() {
  CellSpec cell;
  cell.protocol = Protocol::kWeakBa;
  cell.n = 5;
  cell.t = 2;
  return cell;
}

RunRecord clean_record(const CellSpec& cell) {
  RunOptions opts;
  opts.record_messages = false;
  return run_cell(cell, opts);
}

bool fires(const RunRecord& record, const char* checker,
           const CheckerOptions& opts = {}) {
  for (const auto& v : run_checkers(record, opts)) {
    if (v.checker == checker) return true;
  }
  return false;
}

TEST(CheckerSelfTest, CleanRunPassesAllCheckers) {
  const auto record = clean_record(weak_ba_cell());
  EXPECT_TRUE(run_checkers(record, CheckerOptions{}).empty());
}

TEST(CheckerSelfTest, ForgedDisagreementFailsAgreement) {
  auto record = clean_record(weak_ba_cell());
  ASSERT_GE(record.cell.n, 2u);
  record.decisions[1] = WireValue::plain(Value(record.cell.value + 41));
  EXPECT_TRUE(fires(record, "agreement"));
}

TEST(CheckerSelfTest, UndecidedProcessFailsTermination) {
  auto record = clean_record(weak_ba_cell());
  record.decided[2] = false;
  EXPECT_TRUE(fires(record, "termination"));
  EXPECT_FALSE(fires(clean_record(weak_ba_cell()), "termination"));
}

TEST(CheckerSelfTest, WordOvershootFailsBudget) {
  auto record = clean_record(weak_ba_cell());
  ASSERT_TRUE(record.adaptive());
  record.meter.words_correct = 31ull * record.cell.n * (record.f() + 1) + 1;
  EXPECT_TRUE(fires(record, "word-budget"));
}

TEST(CheckerSelfTest, LowBudgetConstantFailsBudget) {
  const auto record = clean_record(weak_ba_cell());
  CheckerOptions opts;
  opts.word_budget_c = 1;  // deliberately below any real run's cost
  EXPECT_TRUE(fires(record, "word-budget", opts));
  EXPECT_FALSE(fires(record, "word-budget"));  // default C passes
}

TEST(CheckerSelfTest, FallbackInAdaptiveRegimeFailsBudget) {
  auto record = clean_record(weak_ba_cell());
  ASSERT_TRUE(record.adaptive());
  record.any_fallback = true;
  EXPECT_TRUE(fires(record, "word-budget"));
}

TEST(CheckerSelfTest, CertificateOneSignatureShortFailsCertificates) {
  auto record = clean_record(weak_ba_cell());
  CertObservation obs;
  obs.round = 3;
  obs.from = 0;
  obs.kind = "wba.commit";
  obs.field = "qc";
  obs.required_k = commit_quorum(record.cell.n, record.cell.t);
  obs.k = obs.required_k - 1;  // one signature short
  obs.verified = true;
  record.certs.push_back(obs);
  EXPECT_TRUE(fires(record, "certificates"));
}

TEST(CheckerSelfTest, UnverifiedCertificateFailsCertificates) {
  auto record = clean_record(weak_ba_cell());
  CertObservation obs;
  obs.kind = "wba.finalized";
  obs.field = "qc";
  obs.k = commit_quorum(record.cell.n, record.cell.t);
  obs.required_k = obs.k;
  obs.verified = false;  // forged: right threshold, bad tag
  record.certs.push_back(obs);
  EXPECT_TRUE(fires(record, "certificates"));
}

TEST(CheckerSelfTest, WrongDecisionAgainstCorrectSenderFailsValidity) {
  CellSpec cell;
  cell.protocol = Protocol::kBb;
  cell.n = 5;
  cell.t = 2;
  auto record = clean_record(cell);
  ASSERT_TRUE(record.sender_correct());
  const auto wrong = WireValue::plain(Value(cell.value + 1));
  for (ProcessId p = 0; p < cell.n; ++p) record.decisions[p] = wrong;
  EXPECT_TRUE(fires(record, "validity"));
  EXPECT_FALSE(fires(record, "agreement"));  // unanimous, just wrong
}

TEST(CheckerSelfTest, NonBinaryStrongBaDecisionFailsValidity) {
  CellSpec cell;
  cell.protocol = Protocol::kStrongBa;
  cell.n = 5;
  cell.t = 2;
  auto record = clean_record(cell);
  for (ProcessId p = 0; p < cell.n; ++p) {
    record.decisions[p] = WireValue::plain(Value(7));
  }
  EXPECT_TRUE(fires(record, "validity"));
}

TEST(CheckerSelfTest, EveryDefaultCheckerHasAFailingRecordAbove) {
  // Registry completeness guard: a new checker added to default_checkers()
  // must come with a planted-violation test here.
  std::vector<std::string> names;
  for (const auto& c : default_checkers()) names.push_back(c->name());
  EXPECT_EQ(names, (std::vector<std::string>{
                       "agreement", "validity", "termination", "word-budget",
                       "certificates"}));
}

}  // namespace
}  // namespace mewc::check
