// Determinism regression: a CellSpec fully determines the run, so the same
// (spec, seed) must produce byte-identical recorded message streams and
// identical meter totals — the property the whole replay/shrink machinery
// rests on. Exercised with and without the codec round-trip, which must
// cost time, not behaviour.
#include <gtest/gtest.h>

#include "check/runner.hpp"

namespace mewc::check {
namespace {

RunRecord recorded_run(const CellSpec& cell) {
  RunOptions opts;
  opts.record_messages = true;
  return run_cell(cell, opts);
}

void expect_identical(const RunRecord& a, const RunRecord& b) {
  EXPECT_EQ(a.log.stream_digest(), b.log.stream_digest());
  EXPECT_EQ(a.log.size(), b.log.size());
  EXPECT_EQ(a.meter.words_correct, b.meter.words_correct);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.decided, b.decided);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.certs.size(), b.certs.size());
}

class StreamDeterminism : public ::testing::TestWithParam<Protocol> {};

TEST_P(StreamDeterminism, SameCellTwiceIsByteIdentical) {
  CellSpec cell;
  cell.protocol = GetParam();
  cell.n = 7;
  cell.t = 3;
  cell.f = 2;
  cell.adversary = "fuzz";  // the adversary with the most freedom to diverge
  cell.seed = 0xfeedULL;
  expect_identical(recorded_run(cell), recorded_run(cell));
}

TEST_P(StreamDeterminism, CodecRoundTripChangesNothing) {
  CellSpec cell;
  cell.protocol = GetParam();
  cell.n = 5;
  cell.t = 2;
  cell.f = 1;
  cell.adversary = "crash";
  cell.seed = 0xc0deULL;

  auto roundtrip = cell;
  roundtrip.codec_roundtrip = true;
  // Round-tripped runs are deterministic among themselves...
  expect_identical(recorded_run(roundtrip), recorded_run(roundtrip));
  // ...and indistinguishable from the direct-dispatch run: the codec is
  // canonical, so decode(encode(m)) puts the same bytes on the wire.
  expect_identical(recorded_run(cell), recorded_run(roundtrip));
}

TEST_P(StreamDeterminism, DifferentSeedsDiverge) {
  CellSpec cell;
  cell.protocol = GetParam();
  cell.n = 5;
  cell.t = 2;
  cell.f = 2;
  cell.adversary = "fuzz";
  cell.seed = 1;
  auto other = cell;
  other.seed = 2;
  // The fuzzer draws from the seed, so different seeds must leave different
  // fingerprints — otherwise the digest is not actually reading the bytes.
  EXPECT_NE(recorded_run(cell).log.stream_digest(),
            recorded_run(other).log.stream_digest());
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, StreamDeterminism,
                         ::testing::ValuesIn(all_protocols()),
                         [](const auto& info) {
                           std::string name = protocol_name(info.param);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace mewc::check
