// The payload pool is an allocator, not a semantic layer: running the same
// cell with pooling on and off must be byte-identical — same recorded
// message stream, same digests, same meter totals. This is the guard that
// lets the kill-switch exist at all (and lets a bisection blame the pool if
// it ever breaks).
#include <gtest/gtest.h>

#include "check/runner.hpp"
#include "net/arena.hpp"

namespace mewc::check {
namespace {

RunRecord recorded_run(const CellSpec& cell, bool pooled) {
  const bool was = pool::enabled();
  pool::set_enabled(pooled);
  RunOptions opts;
  opts.record_messages = true;
  RunRecord rec = run_cell(cell, opts);
  pool::set_enabled(was);
  return rec;
}

class PoolingTransparency : public ::testing::TestWithParam<Protocol> {};

TEST_P(PoolingTransparency, PooledAndUnpooledRunsAreByteIdentical) {
  CellSpec cell;
  cell.protocol = GetParam();
  cell.n = 7;
  cell.t = 3;
  cell.f = 2;
  cell.adversary = "fuzz";  // most allocation-heavy injection pattern
  cell.seed = 0x900dULL;

  const RunRecord pooled = recorded_run(cell, /*pooled=*/true);
  const RunRecord fresh = recorded_run(cell, /*pooled=*/false);
  EXPECT_EQ(pooled.log.stream_digest(), fresh.log.stream_digest());
  EXPECT_EQ(pooled.log.size(), fresh.log.size());
  EXPECT_EQ(pooled.meter.words_correct, fresh.meter.words_correct);
  EXPECT_EQ(pooled.meter.words_byzantine, fresh.meter.words_byzantine);
  EXPECT_EQ(pooled.meter.words_by_kind(), fresh.meter.words_by_kind());
  EXPECT_EQ(pooled.rounds, fresh.rounds);
  EXPECT_EQ(pooled.decided, fresh.decided);
  EXPECT_EQ(pooled.decisions, fresh.decisions);
}

TEST_P(PoolingTransparency, PooledCodecRoundTripMatchesUnpooledDirect) {
  // Cross the two orthogonal substrate toggles: recycled payload blocks
  // under the wire codec still put the same bytes on the wire as fresh
  // blocks with direct dispatch.
  CellSpec cell;
  cell.protocol = GetParam();
  cell.n = 5;
  cell.t = 2;
  cell.f = 1;
  cell.adversary = "equivocate";
  cell.seed = 0x5eedULL;
  auto roundtrip = cell;
  roundtrip.codec_roundtrip = true;

  const RunRecord pooled_rt = recorded_run(roundtrip, /*pooled=*/true);
  const RunRecord fresh_direct = recorded_run(cell, /*pooled=*/false);
  EXPECT_EQ(pooled_rt.log.stream_digest(), fresh_direct.log.stream_digest());
  EXPECT_EQ(pooled_rt.meter.words_correct, fresh_direct.meter.words_correct);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, PoolingTransparency,
                         ::testing::ValuesIn(all_protocols()),
                         [](const auto& info) {
                           std::string name = protocol_name(info.param);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace mewc::check
