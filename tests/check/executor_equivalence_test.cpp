// Lockstep <-> event-driven executor equivalence over the DST smoke grid.
//
// The executor API contract (sim/executor.hpp, DESIGN.md §14) is that both
// IExecutor implementations are *bit-identical*: same decisions, same
// corruption masks, same meters, same signature counts, and the same byte
// stream on the wire. This suite pins that contract across every cell of
// tools/grids/smoke.json — protocols x sizes x fs x adversaries x seeds —
// by running each cell twice, flipping only CellSpec::executor, and
// comparing the full RunRecord including the unmasked stream digest.
//
// This is the satellite guarantee that makes the event path (and with it
// the `mewc_node` deployment, which shares EventExecutor verbatim) safe to
// trust: any drift in round phasing, delivery order, rushing-view
// bookkeeping, metering, or hook application shows up here as a digest
// mismatch with the offending cell named.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/campaign.hpp"
#include "check/json.hpp"
#include "check/runner.hpp"

namespace mewc {
namespace {

using check::CellSpec;
using check::GridSpec;
using check::RunRecord;

GridSpec load_smoke_grid() {
  std::string error;
  const auto v = check::json::read_file(MEWC_GRID_DIR "/smoke.json", &error);
  EXPECT_TRUE(v.has_value()) << error;
  GridSpec grid;
  EXPECT_TRUE(GridSpec::from_json(*v, &grid, &error)) << error;
  return grid;
}

std::string decision_key(const WireValue& w) {
  std::ostringstream os;
  os << w.value.raw << '/' << static_cast<int>(w.prov) << '/' << w.aux;
  if (w.sig) os << "/sig:" << w.sig->signer << ':' << w.sig->digest.bits;
  if (w.cert) os << "/cert:" << w.cert->k << ':' << w.cert->digest.bits;
  return os.str();
}

/// Appends one line per mismatching field to *out (empty == bit-identical).
void compare_runs(const CellSpec& cell, const RunRecord& lock,
                  const RunRecord& event, std::vector<std::string>* out) {
  const std::string where = cell.label();
  auto fail = [&](const std::string& what) {
    out->push_back(where + ": " + what);
  };

  if (lock.rounds != event.rounds) fail("rounds diverge");
  if (lock.any_fallback != event.any_fallback) fail("fallback flag diverges");
  if (lock.corrupted != event.corrupted) fail("corruption masks diverge");
  if (lock.decided != event.decided) fail("decided vectors diverge");
  if (lock.signatures_issued != event.signatures_issued) {
    fail("signatures_issued diverges");
  }
  if (lock.meter.words_correct != event.meter.words_correct ||
      lock.meter.messages_correct != event.meter.messages_correct ||
      lock.meter.words_byzantine != event.meter.words_byzantine ||
      lock.meter.messages_byzantine != event.meter.messages_byzantine ||
      lock.meter.logical_sigs_correct != event.meter.logical_sigs_correct) {
    fail("meters diverge");
  }
  if (lock.meter.words_by_process != event.meter.words_by_process) {
    fail("per-process word attribution diverges");
  }
  if (lock.decisions.size() != event.decisions.size()) {
    fail("decision vector sizes diverge");
  } else {
    for (std::size_t i = 0; i < lock.decisions.size(); ++i) {
      if (!lock.decided[i]) continue;
      if (decision_key(lock.decisions[i]) != decision_key(event.decisions[i])) {
        fail("decision of process " + std::to_string(i) + " diverges");
      }
    }
  }

  // The strongest check last: both executors must put bit-identical bytes
  // on the wire, in the same global order. Unmasked digest — the executors
  // share the backend, so even the signature tags must match.
  if (lock.log.messages.size() != event.log.messages.size()) {
    fail("stream lengths diverge (" + std::to_string(lock.log.messages.size()) +
         " vs " + std::to_string(event.log.messages.size()) + ")");
  } else if (lock.log.stream_digest().bits != event.log.stream_digest().bits) {
    fail("stream digests diverge");
  }
}

TEST(ExecutorEquivalence, SmokeGridBitIdentical) {
  const GridSpec grid = load_smoke_grid();
  const auto cells = grid.enumerate();
  ASSERT_FALSE(cells.empty());

  check::RunOptions opts;
  opts.record_messages = true;

  std::vector<std::string> mismatches;
  std::uint64_t compared = 0;
  for (const CellSpec& base : cells) {
    CellSpec lock_cell = base;
    lock_cell.executor = ExecutorKind::kLockstep;
    CellSpec event_cell = base;
    event_cell.executor = ExecutorKind::kEvent;

    const RunRecord lock = check::run_cell(lock_cell, opts);
    const RunRecord event = check::run_cell(event_cell, opts);
    compare_runs(base, lock, event, &mismatches);
    ++compared;
    if (mismatches.size() > 16) break;  // enough to diagnose; stop the spam
  }

  std::string joined;
  for (const auto& m : mismatches) joined += "\n  " + m;
  EXPECT_TRUE(mismatches.empty())
      << mismatches.size() << " executor-equivalence mismatches:" << joined;
  EXPECT_EQ(compared, cells.size());
}

}  // namespace
}  // namespace mewc
