// Crash-injection cells: convergence across every tear mode, run
// determinism, grid enumeration/validation, campaign parallelism
// equivalence, shrinking, and the mewc_crash_replay round trip. Suite
// names all start with "Crash" so the crash_unit_smoke ctest entry
// (--gtest_filter=Crash*.*) picks up exactly these.
#include "check/crash.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mewc::check {
namespace {

/// A cell small enough that a full reference+crash+catch-up pair runs in
/// milliseconds, but with a cadence that seals checkpoints before and
/// after the crash point.
CrashCellSpec small_cell() {
  CrashCellSpec cell;
  cell.n = 4;
  cell.t = 1;
  cell.f = 0;
  cell.adversary = "none";
  cell.slots = 6;
  cell.checkpoint_every = 2;
  cell.crash_slot = 3;
  cell.workers = 2;
  cell.seed = 1455;
  cell.tear = TearMode::kTruncate;
  cell.tear_seed = 0;
  return cell;
}

TEST(CrashCell, EveryTearModeConvergesOnTheReference) {
  for (TearMode tear :
       {TearMode::kNone, TearMode::kTruncate, TearMode::kCorrupt}) {
    for (bool after_cp : {false, true}) {
      CrashCellSpec cell = small_cell();
      cell.tear = tear;
      cell.after_checkpoint = after_cp;
      const CrashRunRecord record = run_crash_cell(cell);
      const auto violations = check_crash_run(record);
      for (const Violation& v : violations) {
        ADD_FAILURE() << cell.label() << ": " << v.checker << ": " << v.detail;
      }
      // Convergence in the strongest form: the continued run's durable log
      // is bit-identical to one that never crashed.
      EXPECT_EQ(record.final_wal, record.ref_wal) << cell.label();
      EXPECT_EQ(record.final_digest, record.ref_digest) << cell.label();
    }
  }
}

TEST(CrashCell, RunsAreDeterministic) {
  const CrashCellSpec cell = small_cell();
  const CrashRunRecord a = run_crash_cell(cell);
  const CrashRunRecord b = run_crash_cell(cell);
  EXPECT_EQ(a.ref_digest, b.ref_digest);
  EXPECT_EQ(a.ref_wal, b.ref_wal);
  EXPECT_EQ(a.tear_offset, b.tear_offset);
  EXPECT_EQ(a.torn_record_offset, b.torn_record_offset);
  EXPECT_EQ(a.recovered_slots, b.recovered_slots);
  EXPECT_EQ(a.recovered_digest, b.recovered_digest);
  EXPECT_EQ(a.final_wal, b.final_wal);
  EXPECT_EQ(a.final_kv_digest, b.final_kv_digest);
  EXPECT_EQ(a.catchup_digest, b.catchup_digest);
}

TEST(CrashCell, WorkerCountDoesNotChangeTheOutcome) {
  CrashCellSpec one = small_cell();
  one.workers = 1;
  CrashCellSpec three = small_cell();
  three.workers = 3;
  const CrashRunRecord a = run_crash_cell(one);
  const CrashRunRecord b = run_crash_cell(three);
  EXPECT_EQ(a.ref_wal, b.ref_wal);
  EXPECT_EQ(a.final_wal, b.final_wal);
  EXPECT_EQ(a.final_digest, b.final_digest);
}

TEST(CrashCell, AfterCheckpointDegradesWhenNoCheckpointFires) {
  // crash_slot 0 with cadence 2 seals no checkpoint at the crash point, so
  // the after_checkpoint arm must degrade to a plain crash and still pass.
  CrashCellSpec cell = small_cell();
  cell.crash_slot = 0;
  cell.after_checkpoint = true;
  const CrashRunRecord record = run_crash_cell(cell);
  EXPECT_TRUE(check_crash_run(record).empty());
  EXPECT_FALSE(record.recovery.used_snapshot);  // nothing was cut yet
}

TEST(CrashCell, MidSnapshotTearHealsFromWalAlone) {
  // Die during the snapshot write at the crash slot's checkpoint: the old
  // snapshot is destroyed and only a seeded prefix of the new one survives
  // (what a truncate-then-write overwrite leaves). Recovery must reject the
  // torn blob, heal the snapshot from the WAL, and still converge.
  for (const std::uint64_t tear_seed : {0ull, 1ull, 2ull, 3ull}) {
    CrashCellSpec cell = small_cell();
    cell.mid_snapshot = true;
    cell.tear_seed = tear_seed;
    const CrashRunRecord record = run_crash_cell(cell);
    EXPECT_TRUE(record.snapshot_torn) << cell.label();
    const auto violations = check_crash_run(record);
    for (const Violation& v : violations) {
      ADD_FAILURE() << cell.label() << ": " << v.checker << ": " << v.detail;
    }
    EXPECT_EQ(record.final_wal, record.ref_wal) << cell.label();
    EXPECT_EQ(record.final_kv_digest, record.ref_kv_digest) << cell.label();
  }
}

TEST(CrashCell, MidSnapshotDegradesWhenNoCheckpointFires) {
  // crash_slot 0 with cadence 2 seals no checkpoint, so there is no
  // snapshot write to die inside: plain crash, nothing torn.
  CrashCellSpec cell = small_cell();
  cell.crash_slot = 0;
  cell.mid_snapshot = true;
  const CrashRunRecord record = run_crash_cell(cell);
  EXPECT_TRUE(check_crash_run(record).empty());
  EXPECT_FALSE(record.snapshot_torn);
}

TEST(CrashCell, ProposalWorkloadIsPureInSeedAndSlot) {
  for (std::uint64_t slot = 0; slot < 16; ++slot) {
    const smr::Command a = crash_proposal(1455, slot);
    const smr::Command b = crash_proposal(1455, slot);
    EXPECT_EQ(a.pack().raw, b.pack().raw) << "slot " << slot;
  }
  EXPECT_NE(crash_proposal(1455, 0).pack().raw,
            crash_proposal(2899, 0).pack().raw);
}

TEST(CrashCell, LabelNamesEveryAxis) {
  CrashCellSpec cell = small_cell();
  cell.after_checkpoint = true;
  const std::string label = cell.label();
  EXPECT_NE(label.find("n=4"), std::string::npos) << label;
  EXPECT_NE(label.find("crash@3+cp"), std::string::npos) << label;
  EXPECT_NE(label.find("tear=truncate:0"), std::string::npos) << label;
  CrashCellSpec snap_cell = small_cell();
  snap_cell.mid_snapshot = true;
  EXPECT_NE(snap_cell.label().find("crash@3+snap"), std::string::npos)
      << snap_cell.label();
}

TEST(CrashGrid, EnumerateSkipsImpossibleCells) {
  CrashGridSpec grid;
  grid.sizes = {{0, 1}, {0, 2}};
  grid.slot_counts = {4};
  grid.cadences = {2};
  grid.crash_slots = {1, 4, 9};  // 4 and 9 are >= slots: skipped
  grid.worker_counts = {1};
  grid.adversaries = {"none", "crash"};
  grid.fs = {0, 2};  // f=2 only fits t=2
  grid.seeds = {7};
  grid.tears = {TearMode::kNone, TearMode::kTruncate};
  grid.tear_seeds = {0};
  grid.after_checkpoint = {false};
  const auto cells = grid.enumerate();
  // sizes(2) x crash_slots(1 valid) x adversaries(2) x tears(2) x fs —
  // f=0 everywhere, f=2 only for t=2: (2*1 + 1*1) * 2 * 2 = 12.
  EXPECT_EQ(cells.size(), 12u);
  for (const CrashCellSpec& cell : cells) {
    EXPECT_LT(cell.crash_slot, cell.slots);
    EXPECT_LE(cell.f, cell.t);
    EXPECT_GE(cell.n, 2 * cell.t + 1);
  }
}

TEST(CrashGrid, FromJsonParsesEveryAxis) {
  const auto v = json::parse(R"({
    "sizes": [{"t": 1}, {"n": 9, "t": 2}],
    "slots": [6], "cadences": [2, 3], "crash_slots": [0, 3],
    "workers": [2], "adversaries": ["none", "crash"], "fs": [0, 1],
    "seeds": [1455], "tears": ["none", "truncate", "corrupt"],
    "tear_seeds": [0, 1], "after_checkpoint": [false, true],
    "mid_snapshot": [false, true]
  })");
  ASSERT_TRUE(v.has_value());
  CrashGridSpec grid;
  std::string error;
  ASSERT_TRUE(CrashGridSpec::from_json(*v, &grid, &error)) << error;
  EXPECT_EQ(grid.sizes.size(), 2u);
  EXPECT_EQ(grid.sizes[1].n, 9u);
  EXPECT_EQ(grid.cadences.size(), 2u);
  EXPECT_EQ(grid.tears.size(), 3u);
  EXPECT_EQ(grid.after_checkpoint.size(), 2u);
  EXPECT_EQ(grid.mid_snapshot.size(), 2u);
  // after_checkpoint and mid_snapshot never combine in one cell (the
  // former is subsumed), so no enumerated cell carries both.
  const auto cells = grid.enumerate();
  EXPECT_FALSE(cells.empty());
  for (const CrashCellSpec& cell : cells) {
    EXPECT_FALSE(cell.after_checkpoint && cell.mid_snapshot);
  }
}

TEST(CrashGrid, FromJsonRejectsBadAxes) {
  CrashGridSpec grid;
  std::string error;
  const auto bad_tear = json::parse(
      R"({"sizes": [{"t": 1}], "tears": ["shred"]})");
  ASSERT_TRUE(bad_tear.has_value());
  EXPECT_FALSE(CrashGridSpec::from_json(*bad_tear, &grid, &error));
  EXPECT_FALSE(error.empty());

  const auto bad_adv = json::parse(
      R"({"sizes": [{"t": 1}], "adversaries": ["gremlin"]})");
  ASSERT_TRUE(bad_adv.has_value());
  EXPECT_FALSE(CrashGridSpec::from_json(*bad_adv, &grid, &error));
}

TEST(CrashCampaign, ParallelAndSerialRunsAgree) {
  CrashGridSpec grid;
  grid.sizes = {{0, 1}};
  grid.slot_counts = {5};
  grid.cadences = {2};
  grid.crash_slots = {1, 3};
  grid.worker_counts = {2};
  grid.adversaries = {"none"};
  grid.fs = {0};
  grid.seeds = {1455, 2899};
  grid.tears = {TearMode::kTruncate, TearMode::kCorrupt};
  grid.tear_seeds = {0};
  grid.after_checkpoint = {false};

  const CrashCampaignReport serial = run_crash_campaign(grid, 1);
  const CrashCampaignReport parallel = run_crash_campaign(grid, 4);
  EXPECT_EQ(serial.cells_total, 8u);
  EXPECT_EQ(serial.cells_passed, serial.cells_total);
  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    // Results are stored by cell index, so ordering is deterministic even
    // under the thread pool.
    EXPECT_EQ(serial.results[i].cell.label(), parallel.results[i].cell.label());
    EXPECT_EQ(serial.results[i].passed(), parallel.results[i].passed());
    EXPECT_EQ(serial.results[i].records_replayed,
              parallel.results[i].records_replayed);
  }
}

TEST(CrashCampaign, ReportJsonCarriesRecoveryAggregates) {
  CrashGridSpec grid;
  grid.sizes = {{0, 1}};
  grid.slot_counts = {5};
  grid.cadences = {2};
  grid.crash_slots = {3};
  grid.worker_counts = {1};
  grid.seeds = {1455};
  grid.tears = {TearMode::kTruncate};
  const CrashCampaignReport report = run_crash_campaign(grid, 1);
  const json::Value v = report.to_json();
  EXPECT_EQ(v["cells_total"].as_u64(), report.cells_total);
  EXPECT_EQ(v["cells_passed"].as_u64(), report.cells_passed);
  EXPECT_TRUE(v["recovery"].is_object());
  EXPECT_TRUE(v["failures"].is_array());
  EXPECT_EQ(report.first_failure(), nullptr);
}

TEST(CrashShrink, PassingCellReturnsImmediately) {
  const CrashShrinkResult result = shrink_crash_failure(small_cell());
  EXPECT_EQ(result.runs, 1u);
  EXPECT_EQ(result.steps, 0u);
  EXPECT_TRUE(result.checker.empty());
  EXPECT_EQ(result.minimal.label(), small_cell().label());
}

TEST(CrashReplayFile, RoundTripsThroughJson) {
  CrashReplay replay;
  replay.cell = small_cell();
  replay.cell.mid_snapshot = true;
  replay.cell.tear = TearMode::kCorrupt;
  replay.expected.push_back({"crash-digest", "final digest mismatch"});

  const std::string text = replay.to_json().dump(2);
  const auto parsed = json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)["mewc_crash_replay"].as_u64(), 1u);

  CrashReplay loaded;
  std::string error;
  ASSERT_TRUE(CrashReplay::from_json(*parsed, &loaded, &error)) << error;
  EXPECT_EQ(loaded.cell.label(), replay.cell.label());
  EXPECT_TRUE(loaded.cell.mid_snapshot);
  ASSERT_EQ(loaded.expected.size(), 1u);
  EXPECT_EQ(loaded.expected[0].checker, "crash-digest");
}

TEST(CrashReplayFile, RejectsMalformedCells) {
  CrashReplay out;
  std::string error;

  const auto crash_past_end = json::parse(R"({
    "mewc_crash_replay": 1,
    "cell": {"n": 4, "t": 1, "slots": 4, "crash_slot": 9, "workers": 1,
             "checkpoint_every": 2, "seed": 1, "adversary": "none", "f": 0,
             "tear": "truncate", "tear_seed": 0, "after_checkpoint": false},
    "violations": []
  })");
  ASSERT_TRUE(crash_past_end.has_value());
  EXPECT_FALSE(CrashReplay::from_json(*crash_past_end, &out, &error));
  EXPECT_FALSE(error.empty());

  const auto too_small = json::parse(R"({
    "mewc_crash_replay": 1,
    "cell": {"n": 2, "t": 1, "slots": 4, "crash_slot": 1, "workers": 1,
             "checkpoint_every": 2, "seed": 1, "adversary": "none", "f": 0,
             "tear": "truncate", "tear_seed": 0, "after_checkpoint": false},
    "violations": []
  })");
  ASSERT_TRUE(too_small.has_value());
  EXPECT_FALSE(CrashReplay::from_json(*too_small, &out, &error));
}

TEST(CrashTearNames, RoundTrip) {
  for (TearMode mode :
       {TearMode::kNone, TearMode::kTruncate, TearMode::kCorrupt}) {
    const auto parsed = parse_tear(tear_name(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(parse_tear("shred").has_value());
}

}  // namespace
}  // namespace mewc::check
