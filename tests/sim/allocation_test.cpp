// Hot-path allocation regression: after a warm-up pass over the same round
// schedule, a simulation round must perform ZERO steady-state heap
// allocations on the send/deliver path — pooled payloads are recycled,
// outboxes, inboxes and the rushing view keep their capacity, and the
// meter's kind breakdown is interned (no per-record string or map-node
// churn). Counted with a global operator new override local to this test
// binary.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "net/arena.hpp"
#include "sim/executor.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MEWC_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MEWC_SANITIZED 1
#endif
#endif
#ifndef MEWC_SANITIZED
#define MEWC_SANITIZED 0
#endif

namespace {
std::atomic<std::uint64_t> g_news{0};
}

#if !MEWC_SANITIZED
// Counting overrides (sanitizer builds keep the instrumented allocator).
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif

namespace mewc {
namespace {

struct BeatPayload final : Payload {
  Round sent_in = 0;
  explicit BeatPayload(Round r) : sent_in(r) {}
  [[nodiscard]] std::size_t words() const override { return 1; }
  [[nodiscard]] const char* kind() const override { return "test.beat"; }
};

/// Broadcasts one pooled payload per round; receives without recording
/// anything (the measured section must not grow test-side buffers).
class BeatProcess final : public IProcess {
 public:
  void on_send(Round r, Outbox& out) override {
    out.broadcast(pool::make<BeatPayload>(r));
  }
  void on_receive(Round, std::span<const Message> inbox) override {
    received += inbox.size();
  }
  std::size_t received = 0;
};

struct Fixture {
  explicit Fixture(std::uint32_t t) : family(n_for_t(t), t) {}

  Executor make(Adversary& adv) {
    std::vector<KeyBundle> bundles;
    std::vector<std::unique_ptr<IProcess>> procs;
    for (ProcessId p = 0; p < family.n(); ++p) {
      bundles.push_back(family.issue_bundle(p));
      procs.push_back(std::make_unique<BeatProcess>());
    }
    return Executor(family, std::move(bundles), std::move(procs), adv);
  }

  ThresholdFamily family;
};

TEST(HotPathAllocations, SteadyStateRoundsAreAllocationFree) {
  if (MEWC_SANITIZED) {
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
  }
  ASSERT_TRUE(pool::enabled());
  Fixture fx(3);  // n = 7
  Adversary null_adv;
  Executor exec = fx.make(null_adv);
  constexpr Round kRounds = 16;
  exec.run(kRounds);  // warm-up: pools fill, buffers reach full capacity
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  exec.run(kRounds);  // same schedule again — the steady state
  const std::uint64_t after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state send/deliver path heap-allocated";
  EXPECT_EQ(exec.meter().words_correct,
            2ull * kRounds * 7 * 6);  // both passes fully metered
}

TEST(HotPathAllocations, PoolRecyclesPayloadBlocks) {
  ASSERT_TRUE(pool::enabled());
  Fixture fx(2);  // n = 5
  Adversary null_adv;
  Executor exec = fx.make(null_adv);
  exec.run(2);  // populate the free lists
  pool::reset_thread_stats();
  exec.run(8);
  const pool::Stats stats = pool::thread_stats();
  // One payload per process per round; every one after the warm-up must be
  // served from a free list.
  EXPECT_EQ(stats.fresh, 0u);
  EXPECT_GE(stats.reused, 8u * 5u);
}

TEST(HotPathAllocations, DisabledPoolStillRuns) {
  pool::set_enabled(false);
  Fixture fx(1);
  Adversary null_adv;
  Executor exec = fx.make(null_adv);
  exec.run(3);
  pool::set_enabled(true);
  EXPECT_EQ(exec.meter().words_correct, 3u * 3 * 2);
}

}  // namespace
}  // namespace mewc
