#include "sim/executor.hpp"

#include <gtest/gtest.h>

#include "ba/adversaries/adversaries.hpp"

namespace mewc {
namespace {

struct PingPayload final : Payload {
  Round sent_in;
  explicit PingPayload(Round r) : sent_in(r) {}
  [[nodiscard]] std::size_t words() const override { return 1; }
  [[nodiscard]] const char* kind() const override { return "ping"; }
};

/// Broadcasts one ping per round and records what it receives.
class PingProcess final : public IProcess {
 public:
  void on_send(Round r, Outbox& out) override {
    out.broadcast(std::make_shared<PingPayload>(r));
    sends.push_back(r);
  }
  void on_receive(Round r, std::span<const Message> inbox) override {
    for (const Message& m : inbox) {
      const auto* p = payload_cast<PingPayload>(m.body);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(p->sent_in, r);  // synchrony: delivery within the round
      received_from.push_back(m.from);
    }
    rounds.push_back(r);
  }

  std::vector<Round> sends;
  std::vector<Round> rounds;
  std::vector<ProcessId> received_from;
};

struct Fixture {
  explicit Fixture(std::uint32_t t) : family(n_for_t(t), t) {}

  Executor make(Adversary& adv, ExecutorHooks hooks = {}) {
    const std::uint32_t n = family.n();
    std::vector<KeyBundle> bundles;
    std::vector<std::unique_ptr<IProcess>> procs;
    for (ProcessId p = 0; p < n; ++p) {
      bundles.push_back(family.issue_bundle(p));
      auto proc = std::make_unique<PingProcess>();
      raw.push_back(proc.get());
      procs.push_back(std::move(proc));
    }
    return Executor(family, std::move(bundles), std::move(procs), adv,
                    std::move(hooks));
  }

  ThresholdFamily family;
  std::vector<PingProcess*> raw;
};

TEST(Executor, RunsFullSchedule) {
  Fixture fx(1);
  adv::NullAdversary adv;
  Executor exec = fx.make(adv);
  exec.run(5);
  for (auto* p : fx.raw) {
    EXPECT_EQ(p->rounds, (std::vector<Round>{1, 2, 3, 4, 5}));
    EXPECT_EQ(p->sends.size(), 5u);
  }
}

TEST(Executor, MetersBroadcastTraffic) {
  Fixture fx(1);  // n = 3
  adv::NullAdversary adv;
  Executor exec = fx.make(adv);
  exec.run(2);
  // 3 processes x 2 rounds x 2 link-crossing copies, 1 word each.
  EXPECT_EQ(exec.meter().words_correct, 12u);
}

TEST(Executor, SetupCorruptionSilencesVictims) {
  Fixture fx(2);  // n = 5
  adv::CrashAdversary adv({0, 3});
  Executor exec = fx.make(adv);
  exec.run(3);
  EXPECT_TRUE(exec.is_corrupted(0));
  EXPECT_TRUE(exec.is_corrupted(3));
  EXPECT_EQ(exec.corrupted_count(), 2u);
  EXPECT_EQ(exec.corrupted(), (std::vector<ProcessId>{0, 3}));
  // Victims never ran.
  EXPECT_TRUE(fx.raw[0]->rounds.empty());
  EXPECT_TRUE(fx.raw[3]->rounds.empty());
  // Survivors never heard from them.
  for (ProcessId alive : {1u, 2u, 4u}) {
    for (ProcessId from : fx.raw[alive]->received_from) {
      EXPECT_NE(from, 0u);
      EXPECT_NE(from, 3u);
    }
  }
}

TEST(Executor, MidRunCorruptionStopsVictim) {
  Fixture fx(2);
  adv::CrashAdversary adv({1}, /*from_round=*/3);
  Executor exec = fx.make(adv);
  exec.run(5);
  // Ran rounds 1-2, then was corrupted before round 3's send step.
  EXPECT_EQ(fx.raw[1]->rounds, (std::vector<Round>{1, 2}));
}

TEST(Executor, CorruptionBudgetEnforced) {
  Fixture fx(1);  // t = 1
  adv::CrashAdversary adv({0, 1, 2});  // asks for three
  Executor exec = fx.make(adv);
  exec.run(1);
  EXPECT_EQ(exec.corrupted_count(), 1u);  // only t granted
}

/// Adversary that checks its rushing view and injects one spoof attempt.
class RushingProbe final : public Adversary {
 public:
  void setup(AdversaryControl& ctrl) override { ctrl.corrupt(0); }
  void act(Round r, AdversaryControl& ctrl) override {
    if (r != 1) return;
    // Rushing visibility: correct processes' round-1 messages are visible.
    saw = ctrl.posted_this_round().size();
    // Injection as a corrupted process works; as a correct one is dropped.
    ctrl.send_as(0, 1, std::make_shared<PingPayload>(1));
    ctrl.send_as(2, 1, std::make_shared<PingPayload>(1));  // not corrupted
  }
  std::size_t saw = 0;
};

TEST(Executor, RushingViewAndSpoofRejection) {
  Fixture fx(1);  // n = 3, process 0 corrupted
  RushingProbe adv;
  Executor exec = fx.make(adv);
  exec.run(1);
  EXPECT_EQ(adv.saw, 6u);  // 2 correct processes x 3 broadcast copies
  // Process 1 heard: correct 1, 2 (self + other) plus exactly one Byzantine
  // ping from 0 — the spoofed send_as(2, ...) was dropped.
  std::size_t from0 = 0, from2 = 0, from1 = 0;
  for (ProcessId f : fx.raw[1]->received_from) {
    from0 += (f == 0);
    from1 += (f == 1);
    from2 += (f == 2);
  }
  EXPECT_EQ(from0, 1u);
  EXPECT_EQ(from1, 1u);
  EXPECT_EQ(from2, 1u);
}

/// Malicious adversary probing the delivery path with out-of-range
/// recipient ids — regression for the out-of-bounds inbox write: every
/// junk-addressed injection must be dropped (no crash, no delivery, no
/// metering), while the in-range injection still lands.
class OutOfRangeSender final : public Adversary {
 public:
  void setup(AdversaryControl& ctrl) override { ctrl.corrupt(0); }
  void act(Round r, AdversaryControl& ctrl) override {
    if (r != 1) return;
    const std::uint32_t n = ctrl.n();
    ctrl.send_as(0, n, std::make_shared<PingPayload>(1));
    ctrl.send_as(0, n + 5, std::make_shared<PingPayload>(1));
    ctrl.send_as(0, kNoProcess, std::make_shared<PingPayload>(1));
    ctrl.send_as(0, 1, std::make_shared<PingPayload>(1));  // valid
  }
};

TEST(Executor, OutOfRangeRecipientInjectionIsDropped) {
  Fixture fx(1);  // n = 3
  OutOfRangeSender adv;
  Executor exec = fx.make(adv);
  exec.run(1);
  // Only the single valid injection was delivered and metered.
  EXPECT_EQ(exec.meter().messages_byzantine, 1u);
  std::size_t byz = 0;
  for (ProcessId f : fx.raw[1]->received_from) byz += (f == 0);
  EXPECT_EQ(byz, 1u);
}

/// Replays a correct message from its rushing view and records the words
/// the view claims — used to pin the view to the metered reality.
class ViewEcho final : public Adversary {
 public:
  void setup(AdversaryControl& ctrl) override { ctrl.corrupt(0); }
  void act(Round r, AdversaryControl& ctrl) override {
    if (r != 1) return;
    for (const Message& m : ctrl.posted_this_round()) {
      view_words += m.words;
      ctrl.send_as(0, m.to, m.body);
    }
  }
  std::size_t view_words = 0;
};

TEST(Executor, RushingViewMatchesMeteredDelivery) {
  // The view is derived from the network's posted messages, so its word
  // costs must sum to exactly what the meter recorded for correct senders
  // (plus the free self-copies), and replayed bodies must stay valid.
  Fixture fx(1);  // n = 3, process 0 corrupted => 2 correct broadcasters
  ViewEcho adv;
  Executor exec = fx.make(adv);
  exec.run(1);
  // 2 correct processes x 3 one-word broadcast copies in the view; the
  // meter saw only the 2x2 link-crossing ones.
  EXPECT_EQ(adv.view_words, 6u);
  EXPECT_EQ(exec.meter().words_correct, 4u);
  // All 6 replays were delivered; the 2 aimed at the corrupted process
  // itself were self-copies on 0's own link and cost nothing.
  EXPECT_EQ(exec.meter().messages_byzantine, 4u);
}

/// Adversary that tries to read an uncorrupted bundle (must abort) — covered
/// indirectly: we only verify corrupted access works.
TEST(Executor, BundleAccessForCorrupted) {
  Fixture fx(1);
  class KeyProbe final : public Adversary {
   public:
    void setup(AdversaryControl& ctrl) override {
      ctrl.corrupt(0);
      const KeyBundle& b = ctrl.bundle(0);
      got_key = (b.owner() == 0);
    }
    bool got_key = false;
  } adv;
  Executor exec = fx.make(adv);
  exec.run(1);
  EXPECT_TRUE(adv.got_key);
}

TEST(Executor, MessageRecorderSeesEveryLinkCrossing) {
  Fixture fx(1);  // n = 3
  adv::NullAdversary adv;
  std::size_t recorded = 0;
  Round max_round = 0;
  // Hooks are fixed at construction (ExecutorHooks) — there is no way to
  // install a recorder on a live executor, so the recorder provably sees
  // the whole run.
  ExecutorHooks hooks;
  hooks.recorder = [&](const Message& m, bool correct) {
    EXPECT_TRUE(correct);
    EXPECT_NE(m.from, m.to);  // self-deliveries excluded
    ++recorded;
    max_round = std::max(max_round, m.round);
  };
  Executor exec = fx.make(adv, std::move(hooks));
  exec.run(2);
  // 3 processes x 2 rounds x 2 link-crossing broadcast copies.
  EXPECT_EQ(recorded, 12u);
  EXPECT_EQ(max_round, 2u);
  EXPECT_EQ(exec.meter().messages_correct, recorded);
}

TEST(AdaptiveLeaderCrash, CorruptsUpcomingLeaders) {
  Fixture fx(2);  // n = 5
  // Phases of length 2 starting at round 1: leaders 0,1,2,... corrupted
  // just-in-time, budget 2.
  adv::AdaptiveLeaderCrash adv(1, 2, 5, 2);
  Executor exec = fx.make(adv);
  exec.run(6);
  EXPECT_TRUE(exec.is_corrupted(0));
  EXPECT_TRUE(exec.is_corrupted(1));
  EXPECT_FALSE(exec.is_corrupted(2));  // budget exhausted
  EXPECT_TRUE(fx.raw[0]->rounds.empty());
  EXPECT_EQ(fx.raw[1]->rounds, (std::vector<Round>{1, 2}));
}

}  // namespace
}  // namespace mewc
