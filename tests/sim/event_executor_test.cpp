// EventExecutor unit tests. The full bit-identity contract is pinned over
// the DST smoke grid in tests/check/executor_equivalence_test.cpp; this
// file covers the fast paths and the one shape the grid cannot express:
// hosted-subset executors closing rounds against each other over a hub,
// which is the in-process twin of the `mewc_node` TCP deployment.
#include "sim/event_executor.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"
#include "net/loopback.hpp"

namespace mewc {
namespace {

harness::RunSpec spec_for(ExecutorKind kind) {
  harness::RunSpec spec = harness::RunSpec::for_t(2);  // n = 5
  spec.seed = 1234;
  spec.executor = kind;
  return spec;
}

TEST(EventExecutor, HarnessRunMatchesLockstep) {
  const harness::ProtocolDriver* driver = harness::find_driver("weak-ba");
  ASSERT_NE(driver, nullptr);
  harness::RunInputs inputs;
  inputs.values = driver->prepare(5, Value(9));

  adv::NullAdversary adv_lock;
  const harness::RunReport lock =
      driver->run(spec_for(ExecutorKind::kLockstep), inputs, adv_lock);
  adv::NullAdversary adv_event;
  const harness::RunReport event =
      driver->run(spec_for(ExecutorKind::kEvent), inputs, adv_event);

  EXPECT_EQ(lock.decided, event.decided);
  EXPECT_EQ(lock.decision().value.raw, event.decision().value.raw);
  EXPECT_EQ(lock.meter.words_correct, event.meter.words_correct);
  EXPECT_EQ(lock.meter.messages_correct, event.meter.messages_correct);
  EXPECT_EQ(lock.meter.words_by_process, event.meter.words_by_process);
  EXPECT_EQ(lock.signatures_issued, event.signatures_issued);
}

TEST(EventExecutor, CorruptionMatchesLockstep) {
  const harness::ProtocolDriver* driver = harness::find_driver("bb");
  ASSERT_NE(driver, nullptr);
  harness::RunInputs inputs;
  inputs.values = driver->prepare(5, Value(9));
  inputs.sender = 4;

  const auto run = [&](ExecutorKind kind) {
    adv::CrashAdversary adv({0, 1});  // crash 2 low ids from round 1
    return driver->run(spec_for(kind), inputs, adv);
  };
  const harness::RunReport lock = run(ExecutorKind::kLockstep);
  const harness::RunReport event = run(ExecutorKind::kEvent);
  EXPECT_EQ(lock.corrupted, event.corrupted);
  EXPECT_EQ(lock.decided, event.decided);
  EXPECT_EQ(lock.meter.words_byzantine, event.meter.words_byzantine);
}

// Three single-process executors, one per thread, run one BB instance over
// a LoopbackHub with watermark round closure — the exact shape `mewc_node`
// runs over TCP, minus the sockets. Every endpoint must reach the
// lockstep decision, and the per-endpoint meters must tile the lockstep
// meter (each executor meters exactly its own process's sends).
TEST(EventExecutor, HostedSubsetClusterMatchesLockstep) {
  constexpr std::uint32_t kN = 3;
  constexpr std::uint32_t kT = 1;
  constexpr std::uint64_t kSeed = 77;
  constexpr std::uint64_t kInstance = 5;
  constexpr ProcessId kSender = 2;
  const Value input(7);

  // Reference run, all processes in one lockstep executor.
  harness::RunSpec spec = harness::RunSpec::with(kN, kT);
  spec.seed = kSeed;
  spec.instance = kInstance;
  const harness::ProtocolDriver* driver = harness::find_driver("bb");
  ASSERT_NE(driver, nullptr);
  harness::RunInputs inputs;
  inputs.values = driver->prepare(kN, input);
  inputs.sender = kSender;
  adv::NullAdversary ref_adv;
  const harness::RunReport ref = driver->run(spec, inputs, ref_adv);
  ASSERT_TRUE(ref.agreement());

  net::LoopbackHub hub(kN);
  const Round rounds = bb::BbProcess::total_rounds(kN, kT);

  struct NodeOutcome {
    bool decided = false;
    Value decision = kBottom;
    std::uint64_t words = 0;
  };
  std::vector<NodeOutcome> outcomes(kN);

  std::vector<std::thread> threads;
  for (ProcessId id = 0; id < kN; ++id) {
    threads.emplace_back([&, id] {
      // Every node derives the same trusted setup from the shared seed.
      ThresholdFamily family(kN, kT, ThresholdBackend::kSim, kSeed);
      std::vector<KeyBundle> bundles;
      for (ProcessId p = 0; p < kN; ++p) {
        bundles.push_back(family.issue_bundle(p));
      }
      ProtocolContext ctx;
      ctx.id = id;
      ctx.n = kN;
      ctx.t = kT;
      ctx.instance = kInstance;
      ctx.crypto = &family;
      ctx.keys = &bundles[id];
      std::vector<std::unique_ptr<IProcess>> processes(kN);
      processes[id] = std::make_unique<bb::BbProcess>(ctx, kSender, input);

      net::TimeoutRoundSync sync(hub.watermarks(), id,
                                 std::chrono::milliseconds(10'000));
      EventExecutorConfig config;
      config.instance = kInstance;
      config.local = {id};
      config.transport = &hub.endpoint(id);
      config.sync = &sync;
      adv::NullAdversary adv;
      EventExecutor exec(family, std::move(bundles), std::move(processes),
                         adv, ExecutorHooks{}, config);
      exec.run(rounds);

      const auto& proc =
          static_cast<const bb::BbProcess&>(std::as_const(exec).process(id));
      outcomes[id].decided = proc.decided();
      outcomes[id].decision = proc.decision();
      outcomes[id].words = exec.meter().words_correct;
      EXPECT_EQ(sync.timeouts(), 0u) << "endpoint " << id;
      EXPECT_EQ(exec.stats().foreign_drops, 0u);
    });
  }
  for (auto& t : threads) t.join();

  std::uint64_t words_total = 0;
  for (ProcessId id = 0; id < kN; ++id) {
    EXPECT_TRUE(outcomes[id].decided) << "endpoint " << id;
    EXPECT_EQ(outcomes[id].decision.raw, ref.decision().value.raw)
        << "endpoint " << id;
    // A hosted-subset executor meters its own sends only, so its total is
    // the reference run's per-process attribution for that id.
    EXPECT_EQ(outcomes[id].words, ref.meter.words_by_process[id])
        << "endpoint " << id;
    words_total += outcomes[id].words;
  }
  EXPECT_EQ(words_total, ref.meter.words_correct);
}

}  // namespace
}  // namespace mewc
