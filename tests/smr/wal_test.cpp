// WAL format: scan/append round trips, byte-exact golden fixtures for the
// on-disk format (any change to these files is a format break and must be
// deliberate — regenerate with MEWC_UPDATE_GOLDEN=1), and exhaustive
// torn-write coverage: the final record truncated at EVERY byte offset and
// corrupted at EVERY byte offset, through scan() and recover(). Recovery
// must never crash and never surface a partial record as a slot.
#include "smr/wal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "smr/batch.hpp"
#include "smr/recovery.hpp"
#include "smr/snapshot.hpp"
#include "wire/frame.hpp"

namespace mewc::smr {
namespace {

// ---------------------------------------------------------------------------
// Fixture workload: synthesized records with fixed field values, so the
// bytes depend only on the WAL encoding, not on consensus internals.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kSeed = 0x90;

SlotRecord slot_record(std::uint64_t slot, std::uint64_t raw, bool skipped) {
  SlotRecord rec;
  rec.slot = slot;
  rec.proposer = static_cast<ProcessId>(slot % 5);
  rec.value = skipped ? kBottom : Value(raw);
  rec.skipped = skipped;
  rec.agreement = true;
  rec.fallback = slot == 2;  // one fallback slot, to pin that bit
  rec.words = 40 + slot;
  return rec;
}

/// Four slots (one skipped) and a correctly-sealed checkpoint after them.
struct FixtureLog {
  std::vector<SlotRecord> slots;
  CheckpointRecord checkpoint;
  std::vector<std::uint8_t> wal;
};

FixtureLog fixture_log() {
  FixtureLog f;
  for (std::uint64_t s = 0; s < 4; ++s) {
    f.slots.push_back(slot_record(s, 1000 + 17 * s, /*skipped=*/s == 1));
    wal::append(f.wal, f.slots.back());
  }
  f.checkpoint.after_slot = 4;
  f.checkpoint.ledger_digest = Ledger::replay_digest(kSeed, f.slots);
  f.checkpoint.accepted = true;
  f.checkpoint.agreement = true;
  f.checkpoint.words = 96;
  wal::append(f.wal, f.checkpoint);
  return f;
}

Ledger::Config fixture_config() {
  Ledger::Config c;
  c.n = 5;
  c.t = 2;
  c.seed = kSeed;
  // Cadence counts non-skipped commits; the fixture has 3 of those before
  // its checkpoint, so cadence 3 makes the seal (and, when the checkpoint
  // record is torn, the pending flag) line up with real ledger semantics.
  c.checkpoint_every = 3;
  return c;
}

void expect_slot_eq(const SlotRecord& a, const SlotRecord& b) {
  EXPECT_EQ(a.slot, b.slot);
  EXPECT_EQ(a.proposer, b.proposer);
  EXPECT_EQ(a.value.raw, b.value.raw);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.agreement, b.agreement);
  EXPECT_EQ(a.fallback, b.fallback);
  EXPECT_EQ(a.words, b.words);
}

// ---------------------------------------------------------------------------
// Round trips.
// ---------------------------------------------------------------------------

TEST(Wal, ScanRoundTripsAppendedRecords) {
  const FixtureLog f = fixture_log();
  const wal::ScanResult scanned = wal::scan(f.wal);
  EXPECT_FALSE(scanned.torn);
  EXPECT_EQ(scanned.valid_bytes, f.wal.size());
  ASSERT_EQ(scanned.records.size(), 5u);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(scanned.records[i].type, wal::RecordType::kSlot);
    expect_slot_eq(scanned.records[i].slot, f.slots[i]);
  }
  const wal::Record& cp = scanned.records[4];
  ASSERT_EQ(cp.type, wal::RecordType::kCheckpoint);
  EXPECT_EQ(cp.checkpoint.after_slot, f.checkpoint.after_slot);
  EXPECT_EQ(cp.checkpoint.ledger_digest, f.checkpoint.ledger_digest);
  EXPECT_EQ(cp.checkpoint.accepted, f.checkpoint.accepted);
  EXPECT_EQ(cp.checkpoint.words, f.checkpoint.words);
  // Offsets are strictly increasing frame starts.
  EXPECT_EQ(scanned.records[0].offset, 0u);
  for (std::size_t i = 1; i < scanned.records.size(); ++i) {
    EXPECT_GT(scanned.records[i].offset, scanned.records[i - 1].offset);
  }
}

TEST(Wal, EmptyLogScansClean) {
  const wal::ScanResult scanned = wal::scan({});
  EXPECT_TRUE(scanned.records.empty());
  EXPECT_EQ(scanned.valid_bytes, 0u);
  EXPECT_FALSE(scanned.torn);
}

TEST(Wal, NonCanonicalSkippedBitRejected) {
  // skipped must equal value.is_bottom(); a record claiming both a value
  // and the skip is malformed and ends the valid prefix.
  SlotRecord bad = slot_record(0, 77, /*skipped=*/false);
  bad.skipped = true;
  std::vector<std::uint8_t> log;
  wal::append(log, bad);
  const wal::ScanResult scanned = wal::scan(log);
  EXPECT_TRUE(scanned.records.empty());
  EXPECT_EQ(scanned.valid_bytes, 0u);
  EXPECT_TRUE(scanned.torn);
}

// ---------------------------------------------------------------------------
// Golden fixtures: the durable format, byte for byte.
// ---------------------------------------------------------------------------

std::string hex_of(const std::vector<std::uint8_t>& bytes) {
  std::string out;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    char buf[3];
    std::snprintf(buf, sizeof buf, "%02x", bytes[i]);
    out += buf;
    if (i % 32 == 31) out += '\n';  // wrap for reviewable diffs
  }
  if (out.empty() || out.back() != '\n') out += '\n';
  return out;
}

void expect_matches_golden(const char* name,
                           const std::vector<std::uint8_t>& bytes) {
  const std::string path = std::string(MEWC_GOLDEN_DIR) + "/" + name;
  const std::string hex = hex_of(bytes);
  if (std::getenv("MEWC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << hex;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with MEWC_UPDATE_GOLDEN=1)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), hex)
      << "on-disk format drifted from " << path
      << " — if the format change is deliberate, bump the version and "
         "regenerate with MEWC_UPDATE_GOLDEN=1";
}

TEST(WalGolden, WalBytesMatchCheckedInFixture) {
  expect_matches_golden("wal_v1.hex", fixture_log().wal);
}

// ---------------------------------------------------------------------------
// Batch records: the out-of-band blob a batched slot applies, logged ahead
// of its slot record so replay can resolve the handle.
// ---------------------------------------------------------------------------

/// A batched slot preceded by its blob, with fixed commands so the bytes
/// depend only on the encodings.
struct BatchFixtureLog {
  std::vector<smr::Command> commands;
  std::vector<std::uint8_t> blob;
  SlotRecord slot;
  std::vector<std::uint8_t> wal;
};

BatchFixtureLog batch_fixture_log() {
  BatchFixtureLog f;
  f.commands = {Command::put(3, 300), Command::add(3, 45),
                Command::erase(9)};
  f.blob = batch::encode(f.commands);
  f.slot = slot_record(0, batch::handle(f.blob).raw, /*skipped=*/false);
  wal::append_batch(f.wal, f.slot.slot, f.blob);
  wal::append(f.wal, f.slot);
  return f;
}

TEST(Wal, BatchRecordRoundTripsThroughScan) {
  const BatchFixtureLog f = batch_fixture_log();
  const wal::ScanResult scanned = wal::scan(f.wal);
  EXPECT_FALSE(scanned.torn);
  EXPECT_EQ(scanned.valid_bytes, f.wal.size());
  ASSERT_EQ(scanned.records.size(), 2u);
  ASSERT_EQ(scanned.records[0].type, wal::RecordType::kBatch);
  EXPECT_EQ(scanned.records[0].batch_slot, f.slot.slot);
  EXPECT_EQ(scanned.records[0].batch, f.blob);
  ASSERT_EQ(scanned.records[1].type, wal::RecordType::kSlot);
  expect_slot_eq(scanned.records[1].slot, f.slot);
  // The recovered blob still parses and resolves against the slot's value.
  const auto resolved =
      batch::resolve(scanned.records[1].slot.value, scanned.records[0].batch);
  ASSERT_TRUE(resolved.batch.has_value());
  EXPECT_EQ(resolved.batch->size(), f.commands.size());
}

TEST(WalGolden, BatchWalBytesMatchCheckedInFixture) {
  expect_matches_golden("wal_batch_v1.hex", batch_fixture_log().wal);
}

TEST(WalGolden, SnapshotBytesMatchCheckedInFixture) {
  const FixtureLog f = fixture_log();
  Snapshot snap;
  snap.after_slot = 4;
  snap.ledger_digest = f.checkpoint.ledger_digest;
  snap.total_words = 40 + 41 + 42 + 43 + 96;
  snap.since_checkpoint = 0;
  snap.healthy = true;
  snap.slots = f.slots;
  snap.checkpoints = {f.checkpoint};
  snap.cert = f.checkpoint;
  snap.kv_entries = {{3, 300}, {7, 700}};
  snap.kv_digest = 0xabcdef;
  expect_matches_golden("snapshot_v1.hex", encode_snapshot(snap));
}

// ---------------------------------------------------------------------------
// Exhaustive torn-write coverage (the satellite requirement): the final
// record truncated and corrupted at every byte offset, driven through the
// full recover() path. Recovery must never crash, never surface a partial
// record, and always resume from the longest verified prefix.
// ---------------------------------------------------------------------------

TEST(WalTornWrites, TruncationAtEveryByteOffsetOfFinalRecord) {
  const FixtureLog f = fixture_log();
  const wal::ScanResult full = wal::scan(f.wal);
  const std::size_t last = full.records.back().offset;

  for (std::size_t cut = last; cut < f.wal.size(); ++cut) {
    Store store;
    store.wal.assign(f.wal.begin(),
                     f.wal.begin() + static_cast<std::ptrdiff_t>(cut));
    Recovered rec = recover(fixture_config(), store);
    // The four slot records survive whole; the torn checkpoint never does.
    EXPECT_EQ(rec.state.slots.size(), 4u) << "cut at " << cut;
    EXPECT_TRUE(rec.state.checkpoints.empty()) << "cut at " << cut;
    // The store shrinks to exactly the verified prefix.
    EXPECT_EQ(store.wal.size(), last) << "cut at " << cut;
    EXPECT_EQ(rec.stats.wal_bytes_truncated, cut - last) << "cut at " << cut;
    // A checkpoint was due after slot 4 and is now missing: pending.
    EXPECT_TRUE(rec.stats.checkpoint_pending) << "cut at " << cut;
  }
}

TEST(WalTornWrites, TruncationInsideEarlierRecordsDropsTheTail) {
  const FixtureLog f = fixture_log();
  const wal::ScanResult full = wal::scan(f.wal);
  // Cut mid-way through each record in turn: recovery keeps exactly the
  // records before it.
  for (std::size_t i = 0; i < full.records.size(); ++i) {
    const std::size_t cut = full.records[i].offset + 1;
    Store store;
    store.wal.assign(f.wal.begin(),
                     f.wal.begin() + static_cast<std::ptrdiff_t>(cut));
    Recovered rec = recover(fixture_config(), store);
    EXPECT_EQ(rec.state.slots.size(), i) << "record " << i;
    EXPECT_EQ(store.wal.size(), full.records[i].offset) << "record " << i;
  }
}

TEST(WalTornWrites, CorruptionAtEveryByteOffsetOfFinalRecord) {
  const FixtureLog f = fixture_log();
  const wal::ScanResult full = wal::scan(f.wal);
  const std::size_t last = full.records.back().offset;

  for (std::size_t i = last; i < f.wal.size(); ++i) {
    Store store;
    store.wal = f.wal;
    store.wal[i] ^= 0x5a;
    Recovered rec = recover(fixture_config(), store);
    EXPECT_EQ(rec.state.slots.size(), 4u) << "corrupt byte " << i;
    EXPECT_TRUE(rec.state.checkpoints.empty()) << "corrupt byte " << i;
    EXPECT_EQ(store.wal.size(), last) << "corrupt byte " << i;
  }
}

TEST(WalTornWrites, CorruptionAtEveryByteOffsetOfWholeLog) {
  // Broader sweep at scan() level: flipping ANY byte ends the valid prefix
  // at the frame containing it; records before it survive untouched.
  const FixtureLog f = fixture_log();
  const wal::ScanResult full = wal::scan(f.wal);

  for (std::size_t i = 0; i < f.wal.size(); ++i) {
    std::vector<std::uint8_t> bad = f.wal;
    bad[i] ^= 0xff;
    // The frame start at or before byte i.
    std::size_t frame_start = 0;
    std::size_t intact = 0;
    for (const wal::Record& r : full.records) {
      if (r.offset <= i) {
        frame_start = r.offset;
        intact = static_cast<std::size_t>(&r - full.records.data());
      }
    }
    const wal::ScanResult scanned = wal::scan(bad);
    EXPECT_TRUE(scanned.torn) << "corrupt byte " << i;
    EXPECT_EQ(scanned.valid_bytes, frame_start) << "corrupt byte " << i;
    ASSERT_EQ(scanned.records.size(), intact) << "corrupt byte " << i;
    for (std::size_t k = 0; k < intact; ++k) {
      EXPECT_EQ(scanned.records[k].offset, full.records[k].offset);
    }
  }
}

// ---------------------------------------------------------------------------
// Structural validation beyond checksums: records that frame clean but lie
// about the history are cut at replay.
// ---------------------------------------------------------------------------

TEST(WalStructure, OutOfOrderSlotEndsTheTrustedPrefix) {
  std::vector<std::uint8_t> log;
  wal::append(log, slot_record(0, 500, false));
  wal::append(log, slot_record(2, 501, false));  // gap: slot 1 missing
  Store store;
  store.wal = log;
  Recovered rec = recover(fixture_config(), store);
  EXPECT_EQ(rec.state.slots.size(), 1u);
  const wal::ScanResult scanned = wal::scan(log);
  EXPECT_EQ(store.wal.size(), scanned.records[1].offset);
}

TEST(WalStructure, CheckpointWithWrongDigestEndsTheTrustedPrefix) {
  std::vector<std::uint8_t> log;
  std::vector<SlotRecord> slots = {slot_record(0, 500, false),
                                   slot_record(1, 501, false)};
  for (const auto& s : slots) wal::append(log, s);
  CheckpointRecord cp;
  cp.after_slot = 2;
  cp.ledger_digest = Ledger::replay_digest(kSeed, slots) ^ 1;  // lies
  cp.accepted = true;
  cp.agreement = true;
  wal::append(log, cp);
  wal::append(log, slot_record(2, 502, false));  // after the lie: untrusted

  Store store;
  store.wal = log;
  Ledger::Config config = fixture_config();
  config.checkpoint_every = 2;
  Recovered rec = recover(config, store);
  EXPECT_EQ(rec.state.slots.size(), 2u);
  EXPECT_TRUE(rec.state.checkpoints.empty());
  EXPECT_TRUE(rec.stats.checkpoint_pending);  // cadence hit, seal missing
}

}  // namespace
}  // namespace mewc::smr
