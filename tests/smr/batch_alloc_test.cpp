// Borrowed-view decode pin: parsing and iterating a batch blob, and the
// resolve arbitration, must perform ZERO heap allocations — BatchView
// borrows the caller's bytes (the WAL buffer, the arena-owned receive
// buffer) and yields Commands by value. Counted with a global operator new
// override local to this test binary, mirroring sim/allocation_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/hash.hpp"
#include "smr/batch.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MEWC_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MEWC_SANITIZED 1
#endif
#endif
#ifndef MEWC_SANITIZED
#define MEWC_SANITIZED 0
#endif

namespace {
std::atomic<std::uint64_t> g_news{0};
}

#if !MEWC_SANITIZED
// Counting overrides (sanitizer builds keep the instrumented allocator).
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif

namespace mewc::smr {
namespace {

TEST(BatchAllocation, ParseIterateAndResolveAllocateNothing) {
  if (MEWC_SANITIZED) GTEST_SKIP() << "allocator is instrumented";

  // Setup (allocates freely): one encoded blob, commands spanning every op.
  std::vector<Command> cmds;
  for (std::uint32_t i = 0; i < 256; ++i) {
    switch (i % 3) {
      case 0:
        cmds.push_back(Command::put(i % 64, 10 * i));
        break;
      case 1:
        cmds.push_back(Command::add(i % 64, i));
        break;
      default:
        cmds.push_back(Command::erase(i % 64));
        break;
    }
  }
  const std::vector<std::uint8_t> blob = batch::encode(cmds);
  const Value handle = batch::handle(blob);

  // Measured section: parse + full iteration + resolve, many passes. The
  // fold keeps the loop observable so nothing is optimized away.
  std::uint64_t fold = 0;
  const std::uint64_t before = g_news.load();
  for (int pass = 0; pass < 100; ++pass) {
    const auto view = batch::BatchView::parse(blob);
    ASSERT_TRUE(view.has_value());
    for (const Command c : *view) {
      fold = hash_combine(fold, c.pack().raw);
    }
    const auto resolved = batch::resolve(handle, blob);
    ASSERT_TRUE(resolved.batch.has_value());
    fold = hash_combine(fold, resolved.batch->size());
  }
  const std::uint64_t allocs = g_news.load() - before;
  EXPECT_EQ(allocs, 0u) << "borrowed-view decode must not touch the heap";
  EXPECT_NE(fold, 0u);
}

}  // namespace
}  // namespace mewc::smr
