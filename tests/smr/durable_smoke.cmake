# Durable round trip through the real CLI: commit 9 slots into a WAL
# directory, recover from it and continue to 16, then compare against a
# clean 16-slot run that never crashed. The digests (and checkpoint
# counts) must match, proving `--wal-dir` + `--recover` reproduce the
# uninterrupted ledger. Run via:
#   cmake -DMEWC_SIM=<mewc_sim> -DWAL_DIR=<scratch dir> -P durable_smoke.cmake

if(NOT DEFINED MEWC_SIM OR NOT DEFINED WAL_DIR)
  message(FATAL_ERROR
          "usage: cmake -DMEWC_SIM=<tool> -DWAL_DIR=<dir> -P durable_smoke.cmake")
endif()

file(REMOVE_RECURSE "${WAL_DIR}")

set(common --smr --n 5 --t 2 --workers 2 --queue 4)

function(run_sim out_var)
  execute_process(COMMAND ${MEWC_SIM} ${ARGN}
                  OUTPUT_VARIABLE out
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "mewc_sim ${ARGN} exited ${rc}:\n${out}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

function(digest_of out_var text phase)
  string(REGEX MATCH "ledger digest: [0-9a-f]+" line "${text}")
  if(line STREQUAL "")
    message(FATAL_ERROR "${phase}: no ledger digest line in:\n${text}")
  endif()
  set(${out_var} "${line}" PARENT_SCOPE)
endfunction()

# Phase 1: persist 9 slots (default --smr cadence 8, so one checkpoint and
# one snapshot are cut before the "crash" — stopping the process here is
# the crash).
run_sim(persist ${common} --slots 9 --wal-dir "${WAL_DIR}")
if(NOT persist MATCHES "durable store: ")
  message(FATAL_ERROR "phase 1 wrote no durable store:\n${persist}")
endif()

# Phase 2: recover from the store and continue to 16 slots.
run_sim(recovered ${common} --slots 16 --wal-dir "${WAL_DIR}" --recover)
if(NOT recovered MATCHES "recovered 9 slots")
  message(FATAL_ERROR "phase 2 did not recover 9 slots:\n${recovered}")
endif()
if(NOT recovered MATCHES "snapshot: yes")
  message(FATAL_ERROR "phase 2 recovery ignored the snapshot:\n${recovered}")
endif()

# Phase 3: the uninterrupted reference.
run_sim(reference ${common} --slots 16)

digest_of(recovered_digest "${recovered}" "phase 2")
digest_of(reference_digest "${reference}" "phase 3")
if(NOT recovered_digest STREQUAL reference_digest)
  message(FATAL_ERROR
          "recovered run diverged: ${recovered_digest} vs ${reference_digest}")
endif()

string(REGEX MATCH "checkpoints:   [0-9]+" recovered_cp "${recovered}")
string(REGEX MATCH "checkpoints:   [0-9]+" reference_cp "${reference}")
if(NOT recovered_cp STREQUAL reference_cp)
  message(FATAL_ERROR
          "checkpoint streams diverged: ${recovered_cp} vs ${reference_cp}")
endif()

message(STATUS "durable round trip converged (${recovered_digest})")
