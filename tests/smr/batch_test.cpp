// Client-op batching: blob round trips, handle properties, the resolve
// arbitration every apply path shares, and the headline determinism gate —
// bit-identical ledgers across worker counts and bit-identical kv digests
// across batch sizes {1, 4, 32} x workers {1, 8}. Batching changes framing,
// never the applied history.
#include "smr/batch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "check/crash.hpp"
#include "smr/engine.hpp"
#include "smr/recovery.hpp"

namespace mewc::smr {
namespace {

std::vector<Command> fixture_commands(std::uint32_t count) {
  std::vector<Command> cmds;
  for (std::uint32_t i = 0; i < count; ++i) {
    cmds.push_back(check::crash_proposal(0xbeef, i));
  }
  return cmds;
}

TEST(Batch, EncodeParseRoundTripsEveryCommand) {
  const auto cmds = fixture_commands(37);
  const auto blob = batch::encode(cmds);
  const auto view = batch::BatchView::parse(blob);
  ASSERT_TRUE(view.has_value());
  ASSERT_EQ(view->size(), cmds.size());
  for (std::uint32_t i = 0; i < view->size(); ++i) {
    EXPECT_EQ((*view)[i].op, cmds[i].op);
    EXPECT_EQ((*view)[i].key, cmds[i].key);
    EXPECT_EQ((*view)[i].arg, cmds[i].arg);
  }
  // Iterator sweep sees the same commands as indexing.
  std::uint32_t i = 0;
  for (const Command c : *view) {
    EXPECT_EQ(c.pack().raw, cmds[i++].pack().raw);
  }
  EXPECT_EQ(i, cmds.size());
}

TEST(Batch, HandleNeverCollidesWithReservedValues) {
  for (std::uint32_t n : {0u, 1u, 5u, 64u}) {
    const auto blob = batch::encode(fixture_commands(n));
    const Value h = batch::handle(blob);
    EXPECT_NE(h.raw, kBottom.raw);
    EXPECT_NE(h.raw, Value::kIdkRaw);
  }
}

TEST(Batch, ParseRejectsTamperedBlobs) {
  const auto cmds = fixture_commands(8);
  const auto blob = batch::encode(cmds);
  // Truncation at every byte offset: either a valid shorter parse never
  // happens (checksummed frame) or parse returns nullopt — never a crash,
  // never a partial batch.
  for (std::size_t len = 0; len < blob.size(); ++len) {
    const std::vector<std::uint8_t> cut(blob.begin(),
                                        blob.begin() + static_cast<long>(len));
    EXPECT_FALSE(batch::BatchView::parse(cut).has_value()) << "len=" << len;
  }
  // Single-bit corruption at every byte.
  for (std::size_t i = 0; i < blob.size(); ++i) {
    auto bad = blob;
    bad[i] ^= 0x40;
    EXPECT_FALSE(batch::BatchView::parse(bad).has_value()) << "byte=" << i;
  }
}

TEST(Batch, ApplyMatchesSequentialSingleCommandApply) {
  const auto cmds = fixture_commands(64);
  const auto blob = batch::encode(cmds);
  const auto view = batch::BatchView::parse(blob);
  ASSERT_TRUE(view.has_value());

  KvState batched;
  batch::apply(*view, batched);
  KvState sequential;
  for (const Command& c : cmds) sequential.apply(c);
  EXPECT_EQ(batched.digest(), sequential.digest());
  EXPECT_EQ(batched.entries(), sequential.entries());
}

TEST(Batch, ResolveArbitratesHandleMatchSingleAndSkip) {
  const auto cmds = fixture_commands(4);
  const auto blob = batch::encode(cmds);
  const Value h = batch::handle(blob);

  // Committed value == handle of the attached blob: the whole batch.
  const auto as_batch = batch::resolve(h, blob);
  ASSERT_TRUE(as_batch.batch.has_value());
  EXPECT_FALSE(as_batch.single.has_value());
  EXPECT_EQ(as_batch.batch->size(), cmds.size());

  // Any other committed value degrades to a single-command decode, even
  // with a (stale or malicious) blob attached.
  const Command put = Command::put(7, 99);
  const auto as_single = batch::resolve(put.pack(), blob);
  EXPECT_FALSE(as_single.batch.has_value());
  ASSERT_TRUE(as_single.single.has_value());
  EXPECT_EQ(as_single.single->pack().raw, put.pack().raw);

  // Skipped slot: nothing to apply.
  const auto skipped = batch::resolve(kBottom, {});
  EXPECT_FALSE(skipped.batch.has_value());
  EXPECT_FALSE(skipped.single.has_value());
}

// ---------------------------------------------------------------------------
// Engine determinism across batch sizes and worker counts. The mirror of
// the bench_smr_throughput batch_sweep gate, kept in the unit suite so a
// framing change that perturbs applied state fails in seconds, not in CI's
// bench step.
// ---------------------------------------------------------------------------

struct RunResult {
  std::uint64_t ledger_digest = 0;
  std::uint64_t kv_digest = 0;
  std::uint64_t ops_submitted = 0;
};

RunResult run_engine(std::uint32_t batch, std::uint32_t workers,
                     std::uint64_t ops) {
  EngineConfig c;
  c.n = 9;
  c.t = 4;
  c.checkpoint_every = 8;
  c.workers = workers;
  Store store;
  Durability dur(&store);
  c.durability = &dur;
  Engine engine(c);
  std::vector<Command> cmds;
  for (std::uint64_t i = 0; i < ops;) {
    if (batch == 1) {
      engine.submit(check::crash_proposal(c.seed, i).pack());
      ++i;
      continue;
    }
    cmds.clear();
    for (std::uint32_t j = 0; j < batch && i < ops; ++j, ++i) {
      cmds.push_back(check::crash_proposal(c.seed, i));
    }
    engine.submit_batch(cmds);
  }
  engine.finish();
  return {engine.ledger().ledger_digest(), dur.kv().digest(),
          engine.stats().ops_submitted};
}

TEST(Batch, KvDigestBitIdenticalAcrossBatchSizesAndWorkers) {
  constexpr std::uint64_t kOps = 64;
  const RunResult base = run_engine(1, 1, kOps);
  EXPECT_EQ(base.ops_submitted, kOps);
  for (const std::uint32_t batch : {1u, 4u, 32u}) {
    std::uint64_t ledger_at_one = 0;
    for (const std::uint32_t workers : {1u, 8u}) {
      const RunResult r = run_engine(batch, workers, kOps);
      EXPECT_EQ(r.kv_digest, base.kv_digest)
          << "batch=" << batch << " workers=" << workers;
      EXPECT_EQ(r.ops_submitted, kOps);
      // Within a batch size the full ledger transcript is worker-invariant
      // (across batch sizes it legitimately differs: fewer slots).
      if (workers == 1) {
        ledger_at_one = r.ledger_digest;
      } else {
        EXPECT_EQ(r.ledger_digest, ledger_at_one) << "batch=" << batch;
      }
    }
  }
}

}  // namespace
}  // namespace mewc::smr
