#include "smr/ledger.hpp"

#include <gtest/gtest.h>

#include "ba/adversaries/adversaries.hpp"
#include "ba/adversaries/fuzzer.hpp"

namespace mewc {
namespace {

smr::Ledger::Config config(std::uint32_t t, std::uint32_t checkpoint_every) {
  smr::Ledger::Config c;
  c.t = t;
  c.n = n_for_t(t);
  c.checkpoint_every = checkpoint_every;
  return c;
}

TEST(Ledger, HonestRunCommitsEverySlot) {
  smr::Ledger ledger(config(2, 0));
  for (std::uint64_t s = 0; s < 6; ++s) {
    const auto& rec = ledger.append(Value(100 + s));
    EXPECT_TRUE(rec.agreement);
    EXPECT_FALSE(rec.skipped);
    EXPECT_EQ(rec.value, Value(100 + s));
    EXPECT_FALSE(rec.fallback);
  }
  EXPECT_TRUE(ledger.healthy());
  EXPECT_EQ(ledger.committed().size(), 6u);
}

TEST(Ledger, ProposerRotates) {
  smr::Ledger ledger(config(1, 0));  // n = 3
  EXPECT_EQ(ledger.next_proposer(), 0u);
  ledger.append(Value(1));
  EXPECT_EQ(ledger.next_proposer(), 1u);
  ledger.append(Value(2));
  ledger.append(Value(3));
  EXPECT_EQ(ledger.next_proposer(), 0u);  // wrapped
  EXPECT_EQ(ledger.slots()[1].proposer, 1u);
}

TEST(Ledger, SilentProposerSkipsItsSlotOnly) {
  smr::Ledger ledger(config(2, 0));
  smr::Ledger::AdversaryFactory factory =
      [](std::uint64_t slot, ProcessId proposer) -> std::unique_ptr<Adversary> {
    if (slot == 1) {
      return std::make_unique<adv::CrashAdversary>(
          std::vector<ProcessId>{proposer});
    }
    return std::make_unique<adv::NullAdversary>();
  };
  ledger.append(Value(10), factory);
  ledger.append(Value(20), factory);  // proposer crashed: slot skipped
  ledger.append(Value(30), factory);
  EXPECT_TRUE(ledger.healthy());
  ASSERT_EQ(ledger.slots().size(), 3u);
  EXPECT_FALSE(ledger.slots()[0].skipped);
  EXPECT_TRUE(ledger.slots()[1].skipped);
  EXPECT_FALSE(ledger.slots()[2].skipped);
  EXPECT_EQ(ledger.committed(), (std::vector<Value>{Value(10), Value(30)}));
}

TEST(Ledger, EquivocatingProposerStillYieldsOneEntry) {
  smr::Ledger ledger(config(2, 0));
  std::uint64_t base = 1000;  // base_instance default in config()
  smr::Ledger::AdversaryFactory factory =
      [&](std::uint64_t slot, ProcessId proposer) -> std::unique_ptr<Adversary> {
    if (slot == 0) {
      return std::make_unique<adv::BbEquivocatingSender>(
          proposer, base + 2 * slot, adv::SenderMode::kEquivocate, Value(40),
          Value(41));
    }
    return nullptr;  // factory may also return null: treated as honest
  };
  const auto& rec = ledger.append(Value(40), factory);
  EXPECT_TRUE(rec.agreement);
  EXPECT_TRUE(rec.value == Value(40) || rec.value == Value(41) ||
              rec.skipped);
  ledger.append(Value(50), factory);
  EXPECT_TRUE(ledger.healthy());
}

TEST(Ledger, CheckpointsSealAtCadence) {
  smr::Ledger ledger(config(2, 2));
  for (std::uint64_t s = 0; s < 6; ++s) ledger.append(Value(s + 1));
  EXPECT_EQ(ledger.checkpoints().size(), 3u);
  for (const auto& cp : ledger.checkpoints()) {
    EXPECT_TRUE(cp.agreement);
    EXPECT_TRUE(cp.accepted);
    EXPECT_GT(cp.words, 0u);
  }
  EXPECT_TRUE(ledger.healthy());
}

TEST(Ledger, SkippedSlotsDoNotAdvanceCheckpointCadence) {
  smr::Ledger ledger(config(2, 2));
  smr::Ledger::AdversaryFactory kill_all_proposers =
      [](std::uint64_t, ProcessId proposer) -> std::unique_ptr<Adversary> {
    return std::make_unique<adv::CrashAdversary>(
        std::vector<ProcessId>{proposer});
  };
  ledger.append(Value(1), kill_all_proposers);
  ledger.append(Value(2), kill_all_proposers);
  ledger.append(Value(3), kill_all_proposers);
  EXPECT_TRUE(ledger.checkpoints().empty());
}

TEST(Ledger, DigestIsDeterministicAndOrderSensitive) {
  smr::Ledger a(config(1, 0)), b(config(1, 0)), c(config(1, 0));
  a.append(Value(1));
  a.append(Value(2));
  b.append(Value(1));
  b.append(Value(2));
  c.append(Value(2));
  c.append(Value(1));
  EXPECT_EQ(a.ledger_digest(), b.ledger_digest());
  EXPECT_NE(a.ledger_digest(), c.ledger_digest());
}

TEST(Ledger, SkipsAreCoveredByTheDigest) {
  // A skipped slot is agreed state: two ledgers with the same committed
  // values but different skip patterns must differ.
  smr::Ledger a(config(1, 0)), b(config(1, 0));
  smr::Ledger::AdversaryFactory kill_first =
      [](std::uint64_t slot, ProcessId proposer) -> std::unique_ptr<Adversary> {
    if (slot == 0) {
      return std::make_unique<adv::CrashAdversary>(
          std::vector<ProcessId>{proposer});
    }
    return nullptr;
  };
  a.append(Value(7), kill_first);  // skipped
  a.append(Value(7));
  b.append(Value(7));
  b.append(Value(7), kill_first);  // not slot 0: factory returns honest
  EXPECT_NE(a.ledger_digest(), b.ledger_digest());
}

TEST(Ledger, WordAccountingAccumulates) {
  smr::Ledger ledger(config(2, 0));
  ledger.append(Value(1));
  const auto after_one = ledger.total_words();
  EXPECT_GT(after_one, 0u);
  ledger.append(Value(2));
  EXPECT_EQ(ledger.total_words(),
            after_one + ledger.slots()[1].words);
}

TEST(Ledger, SurvivesFuzzedSlots) {
  smr::Ledger ledger(config(3, 3));
  smr::Ledger::AdversaryFactory fuzz =
      [](std::uint64_t slot, ProcessId proposer) -> std::unique_ptr<Adversary> {
    return std::make_unique<adv::Fuzzer>(
        /*instance=*/1000 + 2 * slot, /*seed=*/slot * 17 + 5,
        /*corruptions=*/2, /*messages_per_round=*/3, /*spare=*/proposer);
  };
  for (std::uint64_t s = 0; s < 5; ++s) ledger.append(Value(900 + s), fuzz);
  EXPECT_TRUE(ledger.healthy());
  // Proposers were spared from corruption, so every slot commits its value.
  EXPECT_EQ(ledger.committed().size(), 5u);
}

TEST(Ledger, WiderResilienceWorks) {
  smr::Ledger::Config c;
  c.t = 2;
  c.n = 3 * c.t + 1;
  smr::Ledger ledger(c);
  ledger.append(Value(5));
  EXPECT_TRUE(ledger.healthy());
  EXPECT_EQ(ledger.committed().front(), Value(5));
}

}  // namespace
}  // namespace mewc
