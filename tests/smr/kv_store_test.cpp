#include "smr/kv_store.hpp"

#include <gtest/gtest.h>

#include "ba/adversaries/adversaries.hpp"

namespace mewc {
namespace {

using smr::Command;

smr::Ledger::Config config(std::uint32_t t) {
  smr::Ledger::Config c;
  c.t = t;
  c.n = n_for_t(t);
  return c;
}

TEST(Command, PackUnpackRoundTrip) {
  for (const Command& c :
       {Command::put(7, 1234), Command::add(0xfffff, (1ull << 40) - 1),
        Command::erase(42), Command{}}) {
    const Command out = Command::unpack(c.pack());
    EXPECT_EQ(out.op, c.op);
    EXPECT_EQ(out.key, c.key);
    EXPECT_EQ(out.arg, c.arg);
  }
}

TEST(Command, MalformedWordsDecodeToNoop) {
  EXPECT_EQ(Command::unpack(kBottom).op, Command::Op::kNoop);
  EXPECT_EQ(Command::unpack(kIdkValue).op, Command::Op::kNoop);
  EXPECT_EQ(Command::unpack(Value{0xffffffffffffffffull - 2}).op,
            Command::Op::kNoop);  // opcode 15: out of range
}

TEST(Command, OverflowingFieldsAbort) {
  EXPECT_DEATH((void)Command::put(1u << 20, 0).pack(), "key");
  EXPECT_DEATH((void)Command::put(0, 1ull << 40).pack(), "arg");
}

TEST(KvState, AppliesDeterministically) {
  smr::KvState a, b;
  for (auto* s : {&a, &b}) {
    s->apply(Command::put(1, 10));
    s->apply(Command::add(1, 5));
    s->apply(Command::put(2, 7));
    s->apply(Command::erase(2));
  }
  EXPECT_EQ(a.get(1), 15u);
  EXPECT_EQ(a.get(2), std::nullopt);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(KvState, DigestIsHistorySensitive) {
  smr::KvState a, b;
  a.apply(Command::put(1, 10));
  a.apply(Command::put(1, 20));
  b.apply(Command::put(1, 20));  // same final state, different history
  EXPECT_EQ(a.get(1), b.get(1));
  EXPECT_NE(a.digest(), b.digest());
}

TEST(KvState, AddOnMissingKeyStartsAtZero) {
  smr::KvState s;
  s.apply(Command::add(9, 4));
  EXPECT_EQ(s.get(9), 4u);
}

TEST(ReplicatedKvStore, HonestRunKeepsReplicasIdentical) {
  smr::ReplicatedKvStore store(config(2));
  EXPECT_TRUE(store.submit(Command::put(1, 100)));
  EXPECT_TRUE(store.submit(Command::add(1, 11)));
  EXPECT_TRUE(store.submit(Command::put(2, 7)));
  EXPECT_TRUE(store.consistent());
  for (ProcessId p = 0; p < 5; ++p) {
    EXPECT_EQ(store.replica(p).get(1), 111u);
    EXPECT_EQ(store.replica(p).get(2), 7u);
  }
}

TEST(ReplicatedKvStore, SkippedSlotAppliesNothing) {
  smr::ReplicatedKvStore store(config(2));
  smr::Ledger::AdversaryFactory kill =
      [](std::uint64_t, ProcessId proposer) -> std::unique_ptr<Adversary> {
    return std::make_unique<adv::CrashAdversary>(
        std::vector<ProcessId>{proposer});
  };
  EXPECT_TRUE(store.submit(Command::put(1, 5)));
  EXPECT_FALSE(store.submit(Command::put(1, 999), kill));
  EXPECT_TRUE(store.consistent());
  EXPECT_EQ(store.replica(0).get(1), 5u);  // the killed write never applied
}

TEST(ReplicatedKvStore, ByzantineProposerCannotSplitState) {
  // The Byzantine proposer equivocates between two different writes; BB
  // forces one agreed command (or a skip), so replicas stay identical.
  smr::ReplicatedKvStore store(config(2));
  smr::Ledger::AdversaryFactory equivocate =
      [](std::uint64_t slot, ProcessId proposer) -> std::unique_ptr<Adversary> {
    const std::uint64_t instance = 1000 + 2 * slot;
    return std::make_unique<adv::BbEquivocatingSender>(
        proposer, instance, adv::SenderMode::kEquivocate,
        Command::put(3, 1).pack(), Command::put(3, 2).pack());
  };
  store.submit(Command::put(3, 1), equivocate);
  EXPECT_TRUE(store.consistent());
  const auto v = store.replica(0).get(3);
  EXPECT_TRUE(!v.has_value() || *v == 1u || *v == 2u);
}

}  // namespace
}  // namespace mewc
