// Recovery and certified catch-up: snapshot round trips and rejection
// paths, crash recovery from real engine runs (with and without a
// snapshot), pending-checkpoint completion, peer state sync, and the
// kv-store determinism pin — replaying from a snapshot cut mid-stream
// must reach the same state digest as replaying from genesis.
#include "smr/recovery.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "common/rng.hpp"
#include "smr/engine.hpp"
#include "smr/wal.hpp"

namespace mewc::smr {
namespace {

constexpr std::uint64_t kSeed = 0x135;

EngineConfig engine_config(std::uint32_t checkpoint_every,
                           DurabilityHook* hook) {
  EngineConfig c;
  c.n = 5;
  c.t = 2;
  c.seed = kSeed;
  c.workers = 2;
  c.queue_capacity = 4;
  c.checkpoint_every = checkpoint_every;
  c.durability = hook;
  return c;
}

Ledger::Config ledger_config(std::uint32_t checkpoint_every) {
  Ledger::Config c;
  c.n = 5;
  c.t = 2;
  c.seed = kSeed;
  c.checkpoint_every = checkpoint_every;
  return c;
}

Command proposal(std::uint64_t slot) {
  // A deterministic op mix touching few keys, so erase/add paths run.
  Rng rng(hash_combine(0xfeedu, slot));
  const auto key = static_cast<std::uint32_t>(rng.below(8));
  switch (rng.below(4)) {
    case 0:
    case 1:
      return Command::put(key, rng.below(1u << 16));
    case 2:
      return Command::add(key, rng.below(1u << 10));
    default:
      return Command::erase(key);
  }
}

/// Runs `slots` proposals through a durable engine; returns the ledger
/// digest (the store and hook capture the durable side effects).
std::uint64_t run_durable(Store& store, std::uint32_t checkpoint_every,
                          std::uint64_t slots, Durability& hook) {
  Engine engine(engine_config(checkpoint_every, &hook));
  for (std::uint64_t s = 0; s < slots; ++s) {
    engine.submit(proposal(s).pack());
  }
  engine.finish();
  (void)store;
  return engine.ledger().ledger_digest();
}

// ---------------------------------------------------------------------------
// Snapshot round trips and rejection.
// ---------------------------------------------------------------------------

Snapshot sample_snapshot() {
  std::vector<SlotRecord> slots;
  for (std::uint64_t s = 0; s < 3; ++s) {
    SlotRecord rec;
    rec.slot = s;
    rec.proposer = static_cast<ProcessId>(s);
    rec.value = Value(70 + s);
    rec.agreement = true;
    rec.words = 50;
    slots.push_back(rec);
  }
  Snapshot snap;
  snap.after_slot = 3;
  snap.ledger_digest = Ledger::replay_digest(kSeed, slots);
  snap.total_words = 150 + 80;
  snap.since_checkpoint = 0;
  snap.healthy = true;
  snap.slots = std::move(slots);
  CheckpointRecord cp;
  cp.after_slot = 3;
  cp.ledger_digest = snap.ledger_digest;
  cp.accepted = true;
  cp.agreement = true;
  cp.words = 80;
  snap.checkpoints = {cp};
  snap.cert = cp;
  snap.kv_entries = {{1, 11}, {4, 44}};
  snap.kv_digest = 0x77;
  return snap;
}

TEST(Snapshot, RoundTripsAllFields) {
  const Snapshot snap = sample_snapshot();
  ASSERT_TRUE(snap.certified());
  ASSERT_TRUE(snap.valid(kSeed));

  const auto bytes = encode_snapshot(snap);
  const auto decoded = decode_snapshot(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->after_slot, snap.after_slot);
  EXPECT_EQ(decoded->ledger_digest, snap.ledger_digest);
  EXPECT_EQ(decoded->total_words, snap.total_words);
  EXPECT_EQ(decoded->healthy, snap.healthy);
  ASSERT_EQ(decoded->slots.size(), snap.slots.size());
  for (std::size_t i = 0; i < snap.slots.size(); ++i) {
    EXPECT_EQ(decoded->slots[i].value.raw, snap.slots[i].value.raw);
  }
  ASSERT_EQ(decoded->checkpoints.size(), 1u);
  EXPECT_EQ(decoded->cert.ledger_digest, snap.cert.ledger_digest);
  EXPECT_EQ(decoded->kv_entries, snap.kv_entries);
  EXPECT_EQ(decoded->kv_digest, snap.kv_digest);
  EXPECT_TRUE(decoded->valid(kSeed));
}

TEST(Snapshot, EveryTruncationAndCorruptionRejected) {
  const auto bytes = encode_snapshot(sample_snapshot());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> torn(bytes.begin(),
                                         bytes.begin() +
                                             static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(decode_snapshot(torn).has_value()) << "prefix " << len;
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> bad = bytes;
    bad[i] ^= 0x5a;
    // Header/checksum corruption fails the frame; body corruption either
    // fails the frame checksum or (never) decodes — reject either way.
    EXPECT_FALSE(decode_snapshot(bad).has_value()) << "corrupt byte " << i;
  }
}

TEST(Snapshot, WrongSeedOrTamperedCertificateInvalid) {
  Snapshot snap = sample_snapshot();
  EXPECT_FALSE(snap.valid(kSeed + 1));  // digest chain is seed-bound

  Snapshot unaccepted = sample_snapshot();
  unaccepted.cert.accepted = false;
  EXPECT_FALSE(unaccepted.certified());

  Snapshot mismatched = sample_snapshot();
  mismatched.cert.after_slot = 2;
  EXPECT_FALSE(mismatched.certified());
}

// ---------------------------------------------------------------------------
// Recovery from real runs.
// ---------------------------------------------------------------------------

TEST(Recovery, CleanStoreRecoversToIdenticalState) {
  Store store;
  Durability hook(&store);
  const std::uint64_t digest = run_durable(store, 3, 7, hook);
  EXPECT_GT(hook.snapshots_cut(), 0u);

  Recovered rec = recover(ledger_config(3), store);
  EXPECT_TRUE(rec.stats.used_snapshot);
  EXPECT_EQ(rec.stats.wal_bytes_truncated, 0u);
  EXPECT_EQ(rec.state.slots.size(), 7u);
  EXPECT_EQ(Ledger::replay_digest(kSeed, rec.state.slots), digest);
  EXPECT_EQ(rec.kv.digest(), hook.kv().digest());
}

TEST(Recovery, WithoutSnapshotReplaysFromGenesis) {
  Store store;
  Durability hook(&store);
  const std::uint64_t digest = run_durable(store, 3, 7, hook);

  store.snapshot.clear();  // lost the snapshot; WAL alone must suffice
  Recovered rec = recover(ledger_config(3), store);
  EXPECT_FALSE(rec.stats.used_snapshot);
  EXPECT_EQ(rec.state.slots.size(), 7u);
  EXPECT_EQ(Ledger::replay_digest(kSeed, rec.state.slots), digest);
  EXPECT_EQ(rec.kv.digest(), hook.kv().digest());
  // Recovery healed the snapshot back from the WAL's checkpoint records.
  EXPECT_FALSE(store.snapshot.empty());
}

TEST(Recovery, CorruptSnapshotFallsBackToWalReplay) {
  Store store;
  Durability hook(&store);
  const std::uint64_t digest = run_durable(store, 3, 7, hook);
  ASSERT_FALSE(store.snapshot.empty());
  store.snapshot[store.snapshot.size() / 2] ^= 0x5a;

  Recovered rec = recover(ledger_config(3), store);
  EXPECT_FALSE(rec.stats.used_snapshot);
  EXPECT_EQ(rec.state.slots.size(), 7u);
  EXPECT_EQ(Ledger::replay_digest(kSeed, rec.state.slots), digest);
}

TEST(Recovery, RestoredEngineContinuesBitIdentically) {
  // Reference: 10 slots uninterrupted.
  Store ref_store;
  Durability ref_hook(&ref_store);
  const std::uint64_t ref_digest = run_durable(ref_store, 3, 10, ref_hook);

  // Crash after 6 slots, recover, continue to 10.
  Store store;
  {
    Durability hook(&store);
    run_durable(store, 3, 6, hook);
  }
  Recovered rec = recover(ledger_config(3), store);
  Durability hook2(&store);
  hook2.reset_kv(rec.kv);
  const std::uint64_t first = rec.state.slots.size();
  Engine engine(engine_config(3, &hook2));
  engine.restore(std::move(rec.state));
  for (std::uint64_t s = first; s < 10; ++s) {
    engine.submit(proposal(s).pack());
  }
  engine.finish();

  EXPECT_EQ(engine.ledger().ledger_digest(), ref_digest);
  EXPECT_EQ(hook2.kv().digest(), ref_hook.kv().digest());
  EXPECT_EQ(store.wal, ref_store.wal);          // bit-identical durable log
  EXPECT_EQ(store.snapshot, ref_store.snapshot);  // and snapshot
}

TEST(Recovery, PendingCheckpointCompletedOnRestore) {
  // Cadence 3 with 3 slots: the run seals a checkpoint right after the
  // last slot. Dropping everything after the last slot record models a
  // crash between the slot append and the checkpoint append.
  Store ref_store;
  Durability ref_hook(&ref_store);
  run_durable(ref_store, 3, 3, ref_hook);
  const wal::ScanResult ref_scan = wal::scan(ref_store.wal);
  ASSERT_EQ(ref_scan.records.size(), 4u);  // 3 slots + 1 checkpoint

  Store store;
  store.wal.assign(ref_store.wal.begin(),
                   ref_store.wal.begin() +
                       static_cast<std::ptrdiff_t>(ref_scan.records[3].offset));
  Recovered rec = recover(ledger_config(3), store);
  EXPECT_TRUE(rec.stats.checkpoint_pending);
  EXPECT_TRUE(rec.state.checkpoints.empty());

  Durability hook(&store);
  hook.reset_kv(rec.kv);
  Engine engine(engine_config(3, &hook));
  engine.restore(std::move(rec.state));  // completes the pending checkpoint
  engine.finish();
  ASSERT_EQ(engine.ledger().checkpoints().size(), 1u);
  // The re-run checkpoint seals the identical record (same instance nonce),
  // so the durable bytes converge with the uninterrupted run's.
  EXPECT_EQ(store.wal, ref_store.wal);
  EXPECT_EQ(store.snapshot, ref_store.snapshot);
}

// ---------------------------------------------------------------------------
// Catch-up.
// ---------------------------------------------------------------------------

TEST(CatchUp, AcceptsCertifiedPeerStateWithoutConsensus) {
  Store peer;
  Durability hook(&peer);
  const std::uint64_t digest = run_durable(peer, 3, 8, hook);

  CaughtUp caught = catch_up(ledger_config(3), peer);
  ASSERT_TRUE(caught.stats.ok);
  EXPECT_TRUE(caught.stats.cert_ok);
  EXPECT_EQ(caught.state.slots.size(), 8u);
  EXPECT_EQ(Ledger::replay_digest(kSeed, caught.state.slots), digest);
  EXPECT_EQ(caught.kv.digest(), hook.kv().digest());
  EXPECT_GT(caught.stats.words_transferred, 0u);
  EXPECT_EQ(caught.stats.tail_slots,
            8u - caught.stats.snapshot_slot);
}

TEST(CatchUp, RejectsMissingTornOrForeignSnapshots) {
  Store peer;
  Durability hook(&peer);
  run_durable(peer, 3, 8, hook);

  Store no_snapshot = peer;
  no_snapshot.snapshot.clear();
  EXPECT_FALSE(catch_up(ledger_config(3), no_snapshot).stats.ok);

  Store torn = peer;
  torn.snapshot.pop_back();
  EXPECT_FALSE(catch_up(ledger_config(3), torn).stats.ok);

  // A peer from a different deployment (seed) fails digest validation.
  Ledger::Config foreign = ledger_config(3);
  foreign.seed = kSeed + 1;
  EXPECT_FALSE(catch_up(foreign, peer).stats.ok);
}

// ---------------------------------------------------------------------------
// kv determinism pin (snapshot-resume == genesis-replay), seeded op mixes.
// ---------------------------------------------------------------------------

TEST(KvDeterminism, SnapshotResumeMatchesGenesisReplayAtEveryCut) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    Rng rng(seed);
    std::vector<Command> ops;
    for (int i = 0; i < 60; ++i) {
      const auto key = static_cast<std::uint32_t>(rng.below(6));
      switch (rng.below(4)) {
        case 0:
        case 1:
          ops.push_back(Command::put(key, rng.below(1u << 20)));
          break;
        case 2:
          ops.push_back(Command::add(key, rng.below(1u << 12)));
          break;
        default:
          ops.push_back(Command::erase(key));
          break;
      }
    }

    // Genesis replay, capturing (entries, digest) after every op.
    KvState genesis;
    std::vector<std::map<std::uint32_t, std::uint64_t>> entries_at{
        genesis.entries()};
    std::vector<std::uint64_t> digest_at{genesis.digest()};
    for (const Command& op : ops) {
      genesis.apply(op);
      entries_at.push_back(genesis.entries());
      digest_at.push_back(genesis.digest());
    }

    // Resume from every cut: the tail replay must land on the same digest
    // and contents as the full replay.
    for (std::size_t cut = 0; cut <= ops.size(); ++cut) {
      KvState resumed;
      resumed.restore(entries_at[cut], digest_at[cut]);
      for (std::size_t i = cut; i < ops.size(); ++i) resumed.apply(ops[i]);
      ASSERT_EQ(resumed.digest(), genesis.digest())
          << "seed " << seed << " cut " << cut;
      ASSERT_EQ(resumed.entries(), genesis.entries())
          << "seed " << seed << " cut " << cut;
    }
  }
}

// ---------------------------------------------------------------------------
// Directory persistence.
// ---------------------------------------------------------------------------

TEST(StoreFiles, SaveLoadRoundTrip) {
  const std::string dir = ::testing::TempDir() + "mewc_store_roundtrip";
  Store store;
  store.wal = {1, 2, 3, 4, 5};
  store.snapshot = {9, 8, 7};
  ASSERT_TRUE(save_store(dir, store));
  const auto loaded = load_store(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->wal, store.wal);
  EXPECT_EQ(loaded->snapshot, store.snapshot);

  // Overwriting with an empty store truncates both files.
  ASSERT_TRUE(save_store(dir, Store{}));
  const auto empty = load_store(dir);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->wal.empty());
  EXPECT_TRUE(empty->snapshot.empty());
}

TEST(StoreFiles, SaveIsAtomicAndIgnoresStaleTempFiles) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "mewc_store_atomic";
  Store store;
  store.wal = {1, 2, 3};
  store.snapshot = {4, 5, 6, 7};
  ASSERT_TRUE(save_store(dir, store));

  // The temp-then-rename protocol must not leave its scratch files behind.
  EXPECT_FALSE(fs::exists(fs::path(dir) / "wal.bin.tmp"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "snapshot.bin.tmp"));

  // A stale temp file — the residue of a crash mid-write — is invisible to
  // load (the complete old bytes win) and is replaced by the next save.
  {
    std::ofstream stale(fs::path(dir) / "snapshot.bin.tmp", std::ios::binary);
    stale << "torn";
  }
  const auto loaded = load_store(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->snapshot, store.snapshot);
  store.snapshot = {8, 9};
  ASSERT_TRUE(save_store(dir, store));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "snapshot.bin.tmp"));
  const auto reloaded = load_store(dir);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->snapshot, store.snapshot);
}

TEST(StoreFiles, FreshDirectoryLoadsEmptyStore) {
  const std::string dir = ::testing::TempDir() + "mewc_store_fresh";
  const auto loaded = load_store(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->wal.empty());
  EXPECT_TRUE(loaded->snapshot.empty());
}

}  // namespace
}  // namespace mewc::smr
