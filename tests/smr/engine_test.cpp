// Pipelined SMR engine: determinism across worker counts, setup-cache
// transcript identity, scheduler backpressure bounds, and the driver
// registry the engine (and every tool) dispatches through.
#include "smr/engine.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"
#include "check/adversary_registry.hpp"
#include "check/record.hpp"

namespace mewc::smr {
namespace {

EngineConfig base_config() {
  EngineConfig c;
  c.n = 9;
  c.t = 4;
  c.checkpoint_every = 4;
  c.queue_capacity = 8;
  return c;
}

void drive(Engine& engine, std::uint64_t slots,
           const Ledger::AdversaryFactory& adversary = nullptr) {
  for (std::uint64_t s = 0; s < slots; ++s) {
    engine.submit(Value(100 + s), adversary);
  }
  engine.finish();
}

void expect_meters_identical(const Meter& a, const Meter& b) {
  EXPECT_EQ(a.words_correct, b.words_correct);
  EXPECT_EQ(a.messages_correct, b.messages_correct);
  EXPECT_EQ(a.words_byzantine, b.words_byzantine);
  EXPECT_EQ(a.messages_byzantine, b.messages_byzantine);
  EXPECT_EQ(a.logical_sigs_correct, b.logical_sigs_correct);
  EXPECT_EQ(a.words_by_process, b.words_by_process);
  EXPECT_EQ(a.words_by_round, b.words_by_round);
  EXPECT_EQ(a.words_by_kind(), b.words_by_kind());
}

void expect_ledgers_identical(const Ledger& a, const Ledger& b) {
  EXPECT_EQ(a.ledger_digest(), b.ledger_digest());
  EXPECT_EQ(a.total_words(), b.total_words());
  EXPECT_EQ(a.healthy(), b.healthy());
  ASSERT_EQ(a.slots().size(), b.slots().size());
  for (std::size_t i = 0; i < a.slots().size(); ++i) {
    const SlotRecord& sa = a.slots()[i];
    const SlotRecord& sb = b.slots()[i];
    EXPECT_EQ(sa.slot, sb.slot);
    EXPECT_EQ(sa.proposer, sb.proposer);
    EXPECT_EQ(sa.value.raw, sb.value.raw);
    EXPECT_EQ(sa.skipped, sb.skipped);
    EXPECT_EQ(sa.agreement, sb.agreement);
    EXPECT_EQ(sa.fallback, sb.fallback);
    EXPECT_EQ(sa.words, sb.words);
  }
  ASSERT_EQ(a.checkpoints().size(), b.checkpoints().size());
  for (std::size_t i = 0; i < a.checkpoints().size(); ++i) {
    EXPECT_EQ(a.checkpoints()[i].ledger_digest,
              b.checkpoints()[i].ledger_digest);
    EXPECT_EQ(a.checkpoints()[i].accepted, b.checkpoints()[i].accepted);
    EXPECT_EQ(a.checkpoints()[i].words, b.checkpoints()[i].words);
  }
}

TEST(SmrEngine, BitIdenticalAcrossWorkerCounts) {
  constexpr std::uint64_t kSlots = 18;
  Engine one(base_config());
  drive(one, kSlots);

  for (const std::uint32_t workers : {2u, 8u}) {
    EngineConfig c = base_config();
    c.workers = workers;
    Engine many(c);
    drive(many, kSlots);

    expect_ledgers_identical(one.ledger(), many.ledger());
    expect_meters_identical(one.meter(), many.meter());
    EXPECT_EQ(one.stats().committed, many.stats().committed);
    EXPECT_EQ(one.stats().skipped, many.stats().skipped);
    EXPECT_EQ(one.stats().fallbacks, many.stats().fallbacks);
  }
}

TEST(SmrEngine, MatchesSerialLedgerAppend) {
  constexpr std::uint64_t kSlots = 12;
  EngineConfig c = base_config();
  c.workers = 4;
  Engine engine(c);
  drive(engine, kSlots);

  Ledger::Config lc;
  lc.n = c.n;
  lc.t = c.t;
  lc.seed = c.seed;
  lc.checkpoint_every = c.checkpoint_every;
  lc.base_instance = c.base_instance;
  Ledger serial(lc);
  for (std::uint64_t s = 0; s < kSlots; ++s) serial.append(Value(100 + s));

  expect_ledgers_identical(serial, engine.ledger());
}

TEST(SmrEngine, AdversarialSlotsStayDeterministicAndAgree) {
  constexpr std::uint64_t kSlots = 10;
  // Crash-fault every slot: f = t at n = 5 forces the fallback path, the
  // worst case for pipelining (slow instances must not stall commits).
  const Ledger::AdversaryFactory crashes = [](std::uint64_t slot,
                                              ProcessId sender) {
    check::AdversaryParams params;
    params.protocol = check::Protocol::kBb;
    params.n = 5;
    params.t = 2;
    params.f = 2;
    params.instance = 1000 + 2 * slot;
    params.seed = 0x5e7u;
    params.sender = sender;
    return check::make_adversary("crash", params);
  };

  EngineConfig c;
  c.n = 5;
  c.t = 2;
  c.checkpoint_every = 3;
  c.workers = 1;
  Engine one(c);
  drive(one, kSlots, crashes);

  c.workers = 4;
  Engine many(c);
  drive(many, kSlots, crashes);

  EXPECT_TRUE(one.ledger().healthy());
  EXPECT_GT(one.stats().fallbacks, 0u);
  expect_ledgers_identical(one.ledger(), many.ledger());
  expect_meters_identical(one.meter(), many.meter());
}

TEST(SmrEngine, SetupCacheAmortizesKeygen) {
  EngineConfig c = base_config();
  c.workers = 2;
  Engine engine(c);
  drive(engine, 10);
  const EngineStats stats = engine.stats();
  // Hits + misses == instances run; at most one miss per worker for a
  // single (n, t, backend, seed) configuration.
  EXPECT_EQ(stats.setup_cache_hits + stats.setup_cache_misses, 10u);
  EXPECT_LE(stats.setup_cache_misses, 2u);
  EXPECT_GE(stats.setup_cache_hits, 8u);
}

TEST(SmrEngine, ReorderBufferBoundedByAdmissionQueue) {
  EngineConfig c = base_config();
  c.workers = 4;
  c.queue_capacity = 3;
  Engine engine(c);
  drive(engine, 40);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.committed, 40u);
  // submit() blocks while queue_capacity + workers slots are outstanding,
  // so completed-but-uncommitted slots can never exceed that window even
  // when the commit-frontier slot is the slowest instance in flight.
  EXPECT_LE(stats.max_reorder_depth,
            static_cast<std::uint64_t>(c.queue_capacity + c.workers));
}

TEST(SmrEngine, EmptyRunFinishesClean) {
  EngineConfig c = base_config();
  c.workers = 2;
  Engine engine(c);
  engine.finish();
  EXPECT_EQ(engine.stats().committed, 0u);
  EXPECT_TRUE(engine.ledger().healthy());
}

// ---------------------------------------------------------------------------
// Setup cache: cached and fresh families must be indistinguishable.

harness::RunSpec cache_spec(harness::SetupCache* cache,
                            ThresholdBackend backend) {
  harness::RunSpec spec = harness::RunSpec::with(5, 2);
  spec.seed = 0xcafe;
  spec.backend = backend;
  spec.setup_cache = cache;
  return spec;
}

struct TranscriptResult {
  Digest stream;
  std::uint64_t signatures = 0;
  std::uint64_t words = 0;
  bool agreement = false;
};

TranscriptResult run_weak_ba_transcript(harness::SetupCache* cache,
                                        ThresholdBackend backend) {
  harness::RunSpec spec = cache_spec(cache, backend);
  check::MessageLog log;
  spec.recorder = [&log](const Message& m, bool correct) {
    log.observe(m, correct);
  };
  adv::NullAdversary null_adv;
  harness::RunInputs inputs;
  inputs.values = std::vector<WireValue>(spec.n, WireValue::plain(Value(3)));
  const harness::RunReport report =
      harness::find_driver("weak-ba")->run(spec, inputs, null_adv);
  TranscriptResult res;
  res.stream = log.stream_digest();
  res.signatures = report.signatures_issued;
  res.words = report.meter.words_correct;
  res.agreement = report.agreement();
  return res;
}

/// Cached-vs-fresh transcript identity must hold for every backend — under
/// kReal this additionally proves the verification memos cache values only
/// (a memo that changed a tag or a decision would split the digests).
class SetupCacheBackends
    : public ::testing::TestWithParam<ThresholdBackend> {};

TEST_P(SetupCacheBackends, CachedRunsMatchFreshRunsBitForBit) {
  const ThresholdBackend backend = GetParam();
  const TranscriptResult fresh = run_weak_ba_transcript(nullptr, backend);

  harness::SetupCache cache;
  const TranscriptResult first = run_weak_ba_transcript(&cache, backend);
  const TranscriptResult second = run_weak_ba_transcript(&cache, backend);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  EXPECT_TRUE(fresh.agreement);
  for (const TranscriptResult* r : {&first, &second}) {
    EXPECT_EQ(r->stream.bits, fresh.stream.bits);
    EXPECT_EQ(r->signatures, fresh.signatures);
    EXPECT_EQ(r->words, fresh.words);
    EXPECT_EQ(r->agreement, fresh.agreement);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SetupCacheBackends,
    ::testing::Values(ThresholdBackend::kSim, ThresholdBackend::kShamir,
                      ThresholdBackend::kReal),
    [](const ::testing::TestParamInfo<ThresholdBackend>& info) {
      return std::string(backend_name(info.param));
    });

TEST(SetupCache, DistinctConfigurationsGetDistinctFamilies) {
  harness::SetupCache cache;
  ThresholdFamily& a = cache.family(5, 2, ThresholdBackend::kSim, 1);
  ThresholdFamily& b = cache.family(7, 3, ThresholdBackend::kSim, 1);
  ThresholdFamily& c = cache.family(5, 2, ThresholdBackend::kSim, 2);
  ThresholdFamily& a2 = cache.family(5, 2, ThresholdBackend::kSim, 1);
  EXPECT_NE(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(&a, &a2);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 1u);
}

// ---------------------------------------------------------------------------
// Driver registry: the single dispatch surface for tools and check.

TEST(DriverRegistry, AllProtocolsRegisteredWithUniqueNames) {
  const auto& all = harness::drivers();
  EXPECT_EQ(all.size(), 6u);
  std::set<std::string> names;
  for (const harness::ProtocolDriver* d : all) {
    names.insert(d->name());
    EXPECT_EQ(harness::find_driver(d->name()), d);
  }
  EXPECT_EQ(names.size(), all.size());
  for (const char* expected :
       {"bb", "weak-ba", "strong-ba", "fallback", "ds-bb", "ic"}) {
    EXPECT_NE(harness::find_driver(expected), nullptr) << expected;
  }
  EXPECT_EQ(harness::find_driver("nope"), nullptr);
}

TEST(DriverRegistry, TraitsDescribeProtocolShape) {
  EXPECT_TRUE(harness::find_driver("bb")->traits().single_sender);
  EXPECT_TRUE(harness::find_driver("ds-bb")->traits().single_sender);
  EXPECT_TRUE(harness::find_driver("strong-ba")->traits().binary_values);
  EXPECT_TRUE(harness::find_driver("ic")->traits().vector_output);
  EXPECT_FALSE(harness::find_driver("weak-ba")->traits().single_sender);
  // Phase geometry matches the long-standing tool constants.
  EXPECT_EQ(harness::find_driver("bb")->traits().phase_first, 4u);
  EXPECT_EQ(harness::find_driver("bb")->traits().phase_len, 3u);
  EXPECT_EQ(harness::find_driver("weak-ba")->traits().phase_first, 3u);
  EXPECT_EQ(harness::find_driver("weak-ba")->traits().phase_len, 5u);
  EXPECT_EQ(harness::find_driver("weak-ba")->help_round(5), 26u);
}

TEST(DriverRegistry, DriverRunMatchesLegacyAdapters) {
  harness::RunSpec spec = harness::RunSpec::with(5, 2);
  adv::NullAdversary a1;
  harness::RunInputs inputs;
  inputs.values = harness::find_driver("bb")->prepare(spec.n, Value(7));
  inputs.sender = 4;
  const harness::RunReport report =
      harness::find_driver("bb")->run(spec, inputs, a1);

  adv::NullAdversary a2;
  const harness::BbResult legacy = harness::run_bb(spec, 4, Value(7), a2);

  EXPECT_EQ(report.agreement(), legacy.agreement());
  EXPECT_EQ(report.decision().value.raw, legacy.decision().raw);
  EXPECT_EQ(report.any_fallback, legacy.any_fallback());
  EXPECT_EQ(report.meter.words_correct, legacy.meter.words_correct);
  EXPECT_EQ(report.signatures_issued, legacy.signatures_issued);
  EXPECT_TRUE(report.all_decided());
}

TEST(DriverRegistry, PrepareClampsBinaryProtocols) {
  const auto sba_inputs = harness::find_driver("strong-ba")->prepare(
      3, Value(7));
  for (const WireValue& w : sba_inputs) EXPECT_EQ(w.value.raw, 1u);
  const auto bb_inputs = harness::find_driver("bb")->prepare(3, Value(7));
  for (const WireValue& w : bb_inputs) EXPECT_EQ(w.value.raw, 7u);
}

TEST(RunSpecFactories, BothRouteThroughTheCheckedConstructor) {
  const harness::RunSpec a = harness::RunSpec::for_t(3);
  EXPECT_EQ(a.n, 7u);
  EXPECT_EQ(a.t, 3u);
  const harness::RunSpec b = harness::RunSpec::with(9, 3);
  EXPECT_EQ(b.n, 9u);
  EXPECT_EQ(b.t, 3u);
  EXPECT_EQ(a.describe(), "n=7 t=3 seed=1511");
  harness::RunSpec c = harness::RunSpec::with(5, 2);
  c.backend = ThresholdBackend::kShamir;
  c.codec_roundtrip = true;
  c.seed = 1;
  EXPECT_EQ(c.describe(), "n=5 t=2 seed=1 backend=shamir roundtrip");
}

}  // namespace
}  // namespace mewc::smr
