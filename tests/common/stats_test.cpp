#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace mewc {
namespace {

TEST(Stats, SummaryBasics) {
  const double xs[] = {1, 2, 3, 4};
  const auto s = stats::summarize(xs);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, 1.1180, 1e-3);
}

TEST(Stats, SummarySingleton) {
  const double xs[] = {7};
  const auto s = stats::summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 7);
  EXPECT_DOUBLE_EQ(s.stddev, 0);
}

TEST(Stats, LinearFitExact) {
  const double xs[] = {1, 2, 3, 4, 5};
  const double ys[] = {3, 5, 7, 9, 11};  // y = 2x + 1
  const auto f = stats::fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitNoisy) {
  const double xs[] = {1, 2, 3, 4, 5, 6};
  const double ys[] = {2.1, 3.9, 6.2, 7.8, 10.1, 11.9};  // ~2x
  const auto f = stats::fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 0.1);
  EXPECT_GT(f.r2, 0.99);
}

TEST(Stats, LinearFitFlatDataHasUnitR2) {
  const double xs[] = {1, 2, 3};
  const double ys[] = {4, 4, 4};
  const auto f = stats::fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.r2, 1.0);  // ss_tot == 0 convention
}

TEST(Stats, PowerLawRecoversExponent) {
  // y = 3 x^2
  std::vector<double> xs, ys;
  for (double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    xs.push_back(x);
    ys.push_back(3 * x * x);
  }
  const auto f = stats::fit_power_law(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(std::exp(f.intercept), 3.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, PowerLawLinearData) {
  std::vector<double> xs, ys;
  for (double x : {1.0, 2.0, 5.0, 10.0, 50.0}) {
    xs.push_back(x);
    ys.push_back(7 * x);
  }
  const auto f = stats::fit_power_law(xs, ys);
  EXPECT_NEAR(f.slope, 1.0, 1e-9);
}

}  // namespace
}  // namespace mewc
