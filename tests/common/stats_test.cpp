#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace mewc {
namespace {

TEST(Stats, SummaryBasics) {
  const double xs[] = {1, 2, 3, 4};
  const auto s = stats::summarize(xs);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, 1.1180, 1e-3);
}

TEST(Stats, SummarySingleton) {
  const double xs[] = {7};
  const auto s = stats::summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 7);
  EXPECT_DOUBLE_EQ(s.stddev, 0);
}

TEST(Stats, LinearFitExact) {
  const double xs[] = {1, 2, 3, 4, 5};
  const double ys[] = {3, 5, 7, 9, 11};  // y = 2x + 1
  const auto f = stats::fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitNoisy) {
  const double xs[] = {1, 2, 3, 4, 5, 6};
  const double ys[] = {2.1, 3.9, 6.2, 7.8, 10.1, 11.9};  // ~2x
  const auto f = stats::fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 0.1);
  EXPECT_GT(f.r2, 0.99);
}

TEST(Stats, LinearFitFlatDataHasUnitR2) {
  const double xs[] = {1, 2, 3};
  const double ys[] = {4, 4, 4};
  const auto f = stats::fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.r2, 1.0);  // ss_tot == 0 convention
}

TEST(Stats, PowerLawRecoversExponent) {
  // y = 3 x^2
  std::vector<double> xs, ys;
  for (double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    xs.push_back(x);
    ys.push_back(3 * x * x);
  }
  const auto f = stats::fit_power_law(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(std::exp(f.intercept), 3.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, PowerLawLinearData) {
  std::vector<double> xs, ys;
  for (double x : {1.0, 2.0, 5.0, 10.0, 50.0}) {
    xs.push_back(x);
    ys.push_back(7 * x);
  }
  const auto f = stats::fit_power_law(xs, ys);
  EXPECT_NEAR(f.slope, 1.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Degenerate inputs. The contract is two-sided: inputs a fit cannot be
// computed from must abort loudly (MEWC_CHECK, not a quiet NaN), and every
// input that passes the checks must produce finite numbers — the experiment
// gates compare these against thresholds, and a NaN passes no comparison,
// silently disabling the gate.
// ---------------------------------------------------------------------------

TEST(StatsDegenerate, SinglePointSummaryIsExactAndFinite) {
  const double xs[] = {-3.25};
  const auto s = stats::summarize(xs);
  EXPECT_DOUBLE_EQ(s.min, -3.25);
  EXPECT_DOUBLE_EQ(s.max, -3.25);
  EXPECT_DOUBLE_EQ(s.mean, -3.25);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(StatsDegenerate, EmptySummaryAborts) {
  EXPECT_DEATH((void)stats::summarize({}), "MEWC_CHECK failed");
}

TEST(StatsDegenerate, UnderdeterminedFitsAbort) {
  const double one[] = {1.0};
  // A line needs two points; a single point (or nothing) must refuse.
  EXPECT_DEATH((void)stats::fit_linear(one, one), "MEWC_CHECK failed");
  EXPECT_DEATH((void)stats::fit_linear({}, {}), "MEWC_CHECK failed");
  EXPECT_DEATH((void)stats::fit_power_law(one, one), "MEWC_CHECK failed");
}

TEST(StatsDegenerate, MismatchedLengthsAbort) {
  const double xs[] = {1.0, 2.0, 3.0};
  const double ys[] = {1.0, 2.0};
  EXPECT_DEATH((void)stats::fit_linear(xs, ys), "MEWC_CHECK failed");
}

TEST(StatsDegenerate, ConstantXsAbortInsteadOfDividingByZero) {
  // All xs equal makes the normal-equation denominator exactly zero; the
  // slope is undefined and the fit must abort, never return inf/NaN.
  const double xs[] = {4.0, 4.0, 4.0};
  const double ys[] = {1.0, 2.0, 3.0};
  EXPECT_DEATH((void)stats::fit_linear(xs, ys), "degenerate x values");
}

TEST(StatsDegenerate, NonPositivePowerLawInputsAbort) {
  const double ok[] = {1.0, 2.0};
  const double zero[] = {0.0, 2.0};
  const double negative[] = {-1.0, 2.0};
  EXPECT_DEATH((void)stats::fit_power_law(zero, ok), "needs positives");
  EXPECT_DEATH((void)stats::fit_power_law(ok, negative), "needs positives");
}

TEST(StatsDegenerate, TwoPointFitIsExactAndFinite) {
  // The minimal accepted input: the fit is the interpolating line, r2 = 1.
  const double xs[] = {1.0, 3.0};
  const double ys[] = {5.0, 9.0};
  const auto f = stats::fit_linear(xs, ys);
  EXPECT_DOUBLE_EQ(f.slope, 2.0);
  EXPECT_DOUBLE_EQ(f.intercept, 3.0);
  EXPECT_DOUBLE_EQ(f.r2, 1.0);
}

TEST(StatsDegenerate, LegalExtremesStayFinite) {
  // Wide dynamic range and nearly-degenerate (but distinct) xs are legal;
  // every returned field must still be a finite double.
  const double xs[] = {1e-9, 1e-9 + 1e-12, 2e-9, 1.0};
  const double ys[] = {1e9, 2e9, -1e9, 0.0};
  const auto f = stats::fit_linear(xs, ys);
  EXPECT_TRUE(std::isfinite(f.slope));
  EXPECT_TRUE(std::isfinite(f.intercept));
  EXPECT_TRUE(std::isfinite(f.r2));

  const auto s = stats::summarize(ys);
  EXPECT_TRUE(std::isfinite(s.mean));
  EXPECT_TRUE(std::isfinite(s.stddev));
  EXPECT_DOUBLE_EQ(s.min, -1e9);
  EXPECT_DOUBLE_EQ(s.max, 2e9);

  const double px[] = {1e-6, 1e6};
  const double py[] = {1e6, 1e-6};
  const auto p = stats::fit_power_law(px, py);
  EXPECT_TRUE(std::isfinite(p.slope));
  EXPECT_NEAR(p.slope, -1.0, 1e-9);
}

}  // namespace
}  // namespace mewc
