// R-covdrift fixtures: the MEWC_COV_SITE_LIST X-macro is the ground truth
// for paper-line coverage, and this rule cross-checks it three ways —
// every use is declared, every declared site is instrumented exactly once,
// and algN_lineM_* names reference algorithms PAPER.md actually defines.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/sem/sem.hpp"

namespace mewc::lint::sem {
namespace {

// A miniature coverage header in the in-tree X-macro shape.
const char* kSiteList =
    "#define MEWC_COV_SITE_LIST(X) \\\n"
    "  X(alg1_line3_propose)       \\\n"
    "  X(alg2_line7_vote)          \\\n"
    "  X(bbvalid_reply)            \\\n"
    "  X(afb_accept)\n";

const char* kPaper =
    "We describe Algorithms 1 + 2 for weak agreement and Algorithm 5 for\n"
    "the fallback path.\n";

std::vector<Diagnostic> sem_corpus(std::vector<SourceFile> corpus) {
  SemOptions opts;
  opts.paper_text = kPaper;
  return run_sem(corpus, opts);
}

std::vector<std::string> msgs_of(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> out;
  for (const auto& d : diags) {
    if (d.active() && d.rule == "R-covdrift") out.push_back(d.message);
  }
  return out;
}

bool any_contains(const std::vector<std::string>& msgs,
                  const std::string& needle) {
  return std::any_of(msgs.begin(), msgs.end(), [&](const std::string& m) {
    return m.find(needle) != std::string::npos;
  });
}

TEST(SemCovdrift, AllSitesUsedOnceIsClean) {
  const auto diags = sem_corpus(
      {{"src/check/coverage.hpp", kSiteList},
       {"src/ba/a.cpp",
        "void f() { MEWC_COV(alg1_line3_propose); MEWC_COV(alg2_line7_vote); "
        "MEWC_COV(bbvalid_reply); MEWC_COV(afb_accept); }\n"}});
  EXPECT_TRUE(msgs_of(diags).empty());
}

TEST(SemCovdrift, RenamedUseSuggestsNearestUnusedSite) {
  const auto diags = sem_corpus(
      {{"src/check/coverage.hpp", kSiteList},
       {"src/ba/a.cpp",
        "void f() { MEWC_COV(alg1_line3_proposal); MEWC_COV(alg2_line7_vote); "
        "MEWC_COV(bbvalid_reply); MEWC_COV(afb_accept); }\n"}});
  const auto msgs = msgs_of(diags);
  EXPECT_TRUE(any_contains(msgs, "does not declare"));
  EXPECT_TRUE(any_contains(msgs, "alg1_line3_propose"))
      << "near-miss must suggest the unused declared site";
  EXPECT_TRUE(any_contains(msgs, "never instrumented"))
      << "the renamed-away declaration is orphaned";
}

TEST(SemCovdrift, OrphanedDeclarationFlagged) {
  const auto diags = sem_corpus(
      {{"src/check/coverage.hpp", kSiteList},
       {"src/ba/a.cpp",
        "void f() { MEWC_COV(alg1_line3_propose); MEWC_COV(alg2_line7_vote); "
        "MEWC_COV(bbvalid_reply); }\n"}});
  const auto msgs = msgs_of(diags);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_TRUE(any_contains(msgs, "afb_accept"));
  EXPECT_TRUE(any_contains(msgs, "never instrumented"));
}

TEST(SemCovdrift, DuplicateDeclarationFlagged) {
  const auto diags = sem_corpus(
      {{"src/check/coverage.hpp",
        "#define MEWC_COV_SITE_LIST(X) \\\n"
        "  X(afb_accept)               \\\n"
        "  X(afb_accept)\n"},
       {"src/ba/a.cpp", "void f() { MEWC_COV(afb_accept); }\n"}});
  EXPECT_TRUE(any_contains(msgs_of(diags), "more than once"));
}

TEST(SemCovdrift, UnknownAlgorithmFlagged) {
  const auto diags = sem_corpus(
      {{"src/check/coverage.hpp",
        "#define MEWC_COV_SITE_LIST(X) \\\n"
        "  X(alg9_line2_bogus)\n"},
       {"src/ba/a.cpp", "void f() { MEWC_COV(alg9_line2_bogus); }\n"}});
  const auto msgs = msgs_of(diags);
  EXPECT_TRUE(any_contains(msgs, "Algorithm 9"));
  EXPECT_TRUE(any_contains(msgs, "does not define"));
}

TEST(SemCovdrift, PaperAlgorithmListParsesPlusAndRanges) {
  // "Algorithms 1 + 2" and "Algorithm 5" are in kPaper; 1, 2 and 5 pass,
  // 3 does not.
  const auto ok = sem_corpus(
      {{"src/check/coverage.hpp",
        "#define MEWC_COV_SITE_LIST(X) \\\n"
        "  X(alg5_line9_fallback)\n"},
       {"src/ba/a.cpp", "void f() { MEWC_COV(alg5_line9_fallback); }\n"}});
  EXPECT_TRUE(msgs_of(ok).empty());
  const auto bad = sem_corpus(
      {{"src/check/coverage.hpp",
        "#define MEWC_COV_SITE_LIST(X) \\\n"
        "  X(alg3_line1_ghost)\n"},
       {"src/ba/a.cpp", "void f() { MEWC_COV(alg3_line1_ghost); }\n"}});
  EXPECT_TRUE(any_contains(msgs_of(bad), "Algorithm 3"));
}

TEST(SemCovdrift, UnknownNamingFamilyFlagged) {
  const auto diags = sem_corpus(
      {{"src/check/coverage.hpp",
        "#define MEWC_COV_SITE_LIST(X) \\\n"
        "  X(mystery_site)\n"},
       {"src/ba/a.cpp", "void f() { MEWC_COV(mystery_site); }\n"}});
  EXPECT_TRUE(any_contains(msgs_of(diags), "naming family"));
}

TEST(SemCovdrift, NoSiteListMeansNoGroundTruthMeansSilence) {
  // Scanning a corpus subset without the site list must not flag every use.
  const auto diags = sem_corpus(
      {{"src/ba/a.cpp", "void f() { MEWC_COV(alg1_line3_propose); }\n"}});
  EXPECT_TRUE(msgs_of(diags).empty());
}

}  // namespace
}  // namespace mewc::lint::sem
