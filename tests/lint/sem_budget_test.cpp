// R-budget fixtures: every path that fills a locally-owned Outbox must
// reach word-meter attribution (SyncNetwork::post / LaneOutbox::forward)
// before the function exits. The custody model is the contract under test:
// reference parameters are the caller's problem, locals and known outbox
// members are ours, clear() drops the obligation, and helper calls
// discharge or fill through one level of summaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/sem/sem.hpp"

namespace mewc::lint::sem {
namespace {

std::vector<Diagnostic> sem_one(const std::string& path,
                                const std::string& content) {
  return run_sem({{path, content}}, SemOptions{});
}

bool fires(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.active() && d.rule == rule;
  });
}

TEST(SemBudget, LocalFillWithoutPostFires) {
  const auto diags = sem_one("src/ba/fake/fixture.cpp",
                             "void S::help_round(int r) {\n"
                             "  Outbox out;\n"
                             "  out.send(1, r);\n"
                             "}\n");
  ASSERT_TRUE(fires(diags, "R-budget"));
  EXPECT_EQ(diags[0].line, 3u) << "diagnostic anchors at the fill site";
}

TEST(SemBudget, FillThenPostIsClean) {
  const auto diags = sem_one("src/ba/fake/fixture.cpp",
                             "void S::help_round(int r) {\n"
                             "  Outbox out;\n"
                             "  out.send(1, r);\n"
                             "  network_.post(0, r, out, true);\n"
                             "}\n");
  EXPECT_FALSE(fires(diags, "R-budget"));
}

TEST(SemBudget, EarlyReturnBetweenFillAndPostFires) {
  const auto diags = sem_one("src/ba/fake/fixture.cpp",
                             "void S::help_round(int r) {\n"
                             "  Outbox out;\n"
                             "  out.broadcast(1, r);\n"
                             "  if (r == 0) return;\n"
                             "  network_.post(0, r, out, true);\n"
                             "}\n");
  EXPECT_TRUE(fires(diags, "R-budget"))
      << "the early-return path exits with filled, unmetered words";
}

TEST(SemBudget, ReferenceParameterIsCallerCustody) {
  const auto diags = sem_one("src/ba/fake/fixture.cpp",
                             "void S::on_send(int r, Outbox& out) {\n"
                             "  out.send(1, r);\n"
                             "}\n");
  EXPECT_FALSE(fires(diags, "R-budget"))
      << "the driver posts the outbox it passed in; on_send is exempt";
}

TEST(SemBudget, ClearDropsTheObligation) {
  const auto diags = sem_one("src/ba/fake/fixture.cpp",
                             "void S::help_round(int r) {\n"
                             "  Outbox out;\n"
                             "  out.send(1, r);\n"
                             "  out.clear();\n"
                             "}\n");
  EXPECT_FALSE(fires(diags, "R-budget"))
      << "dropped words are not sent words; nothing to meter";
}

TEST(SemBudget, LoopFillPostedAfterTheLoopIsClean) {
  const auto diags = sem_one("src/ba/fake/fixture.cpp",
                             "void S::help_round(int n) {\n"
                             "  Outbox out;\n"
                             "  for (int i = 0; i < n; ++i) {\n"
                             "    out.send(i, 1);\n"
                             "  }\n"
                             "  network_.post(0, 0, out, true);\n"
                             "}\n");
  EXPECT_FALSE(fires(diags, "R-budget"));
}

TEST(SemBudget, ForwardIsAttributionToo) {
  const auto diags = sem_one("src/ba/fake/fixture.cpp",
                             "void S::relay(int lane) {\n"
                             "  Outbox lane_out;\n"
                             "  lane_out.send(1, lane);\n"
                             "  LaneOutbox(out, lane).forward(lane_out);\n"
                             "}\n");
  EXPECT_FALSE(fires(diags, "R-budget"))
      << "LaneOutbox::forward re-posts through the metered path";
}

TEST(SemBudget, HelperThatFillsCountsAsAFill) {
  // stuff() fills its Outbox& parameter; the caller owns the outbox and
  // exits without attribution, so the obligation surfaces at the call.
  const auto diags = sem_one("src/ba/fake/fixture.cpp",
                             "void S::stuff(int r, Outbox& out) {\n"
                             "  out.send(1, r);\n"
                             "}\n"
                             "void S::help_round(int r) {\n"
                             "  Outbox out;\n"
                             "  stuff(r, out);\n"
                             "}\n");
  EXPECT_TRUE(fires(diags, "R-budget")) << "fill through a callee summary";
}

TEST(SemBudget, HelperThatPostsCountsAsDischarge) {
  const auto diags = sem_one("src/ba/fake/fixture.cpp",
                             "void S::flush(int r, Outbox& out) {\n"
                             "  network_.post(0, r, out, true);\n"
                             "}\n"
                             "void S::help_round(int r) {\n"
                             "  Outbox out;\n"
                             "  out.send(1, r);\n"
                             "  flush(r, out);\n"
                             "}\n");
  EXPECT_FALSE(fires(diags, "R-budget"))
      << "discharge through a callee summary";
}

TEST(SemBudget, OutOfScopePathIsIgnored) {
  const auto diags = sem_one("src/net/fixture.cpp",
                             "void S::help_round(int r) {\n"
                             "  Outbox out;\n"
                             "  out.send(1, r);\n"
                             "}\n");
  EXPECT_FALSE(fires(diags, "R-budget"))
      << "R-budget is scoped to src/ba/ and src/sim/";
}

TEST(SemBudget, AllowCommentSilences) {
  const auto diags = sem_one("src/ba/fake/fixture.cpp",
                             "void S::help_round(int r) {\n"
                             "  Outbox out;\n"
                             "  // mewc-lint: allow(R-budget) fixture\n"
                             "  out.send(1, r);\n"
                             "}\n");
  EXPECT_FALSE(fires(diags, "R-budget"));
}

}  // namespace
}  // namespace mewc::lint::sem
