// mewc_lint self-tests: every rule fires on a deliberate violation, is
// silenced by an `mewc-lint: allow(<rule>)` suppression, respects its path
// scope, and can be grandfathered by a baseline entry. The fixtures are the
// contract CI relies on: if a rule regresses into never firing, these fail.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/lint.hpp"

namespace mewc::lint {
namespace {

std::vector<Diagnostic> lint_one(const std::string& path,
                                 const std::string& content) {
  return run({{path, content}});
}

std::vector<Diagnostic> active_of(const std::vector<Diagnostic>& diags) {
  std::vector<Diagnostic> out;
  for (const auto& d : diags) {
    if (d.active()) out.push_back(d);
  }
  return out;
}

bool fires(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.active() && d.rule == rule;
  });
}

// ---------------------------------------------------------------------------
// Lexer

TEST(Lexer, StripsCommentsAndStringsFromTokens) {
  const auto lexed = lex(
      "int a = 1; // trailing unordered_map\n"
      "/* block rand() */ const char* s = \"random_device\";\n");
  for (const Token& t : lexed.tokens) {
    if (t.kind == TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "unordered_map");
      EXPECT_NE(t.text, "rand");
      EXPECT_NE(t.text, "random_device");
    }
  }
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_EQ(lexed.comments[0].line, 1u);
  EXPECT_FALSE(lexed.comments[0].own_line);
  EXPECT_EQ(lexed.comments[1].line, 2u);
  EXPECT_TRUE(lexed.comments[1].own_line);
}

TEST(Lexer, RawStringsAndLineNumbers) {
  const auto lexed = lex("auto s = R\"(getenv(\"HOME\") line\nbreak)\";\nint x;");
  bool saw_getenv = false;
  for (const Token& t : lexed.tokens) {
    saw_getenv = saw_getenv || (t.kind == TokenKind::kIdentifier &&
                                t.text == "getenv");
    if (t.text == "x") {
      EXPECT_EQ(t.line, 3u);  // raw string spans 2 lines
    }
  }
  EXPECT_FALSE(saw_getenv);
}

TEST(Lexer, MultiCharPunctuation) {
  const auto lexed = lex("a->b; c >> d; e::f;");
  std::vector<std::string> puncts;
  for (const Token& t : lexed.tokens) {
    if (t.kind == TokenKind::kPunct) puncts.push_back(t.text);
  }
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "->"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), ">>"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "::"), puncts.end());
}

// ---------------------------------------------------------------------------
// R-determinism

TEST(RuleDeterminism, FiresOnUnorderedContainerInScope) {
  const auto diags = lint_one(
      "src/ba/weak_ba/state.hpp",
      "#include <unordered_map>\nstd::unordered_map<int, int> votes_;\n");
  EXPECT_TRUE(fires(diags, "R-determinism"));
}

TEST(RuleDeterminism, FiresOnRandomDeviceAndRandCall) {
  EXPECT_TRUE(fires(lint_one("src/check/runner_extra.cpp",
                             "std::random_device rd;\n"),
              "R-determinism"));
  EXPECT_TRUE(fires(lint_one("src/sim/executor_extra.cpp",
                             "int r = std::rand();\n"),
              "R-determinism"));
  // `rand` as a plain member name is not a call and must not fire.
  EXPECT_FALSE(fires(lint_one("src/sim/executor_extra.cpp",
                              "int rand = 3; use(rand);\n"),
               "R-determinism"));
}

TEST(RuleDeterminism, FiresOnPointerKeyedMap) {
  const auto diags = lint_one("src/check/cache.hpp",
                              "std::map<const Payload*, int> seen_;\n");
  EXPECT_TRUE(fires(diags, "R-determinism"));
  // Value-position pointers are fine: ordering is by the integer key.
  EXPECT_FALSE(fires(lint_one("src/check/cache.hpp",
                              "std::map<int, const Payload*> byid_;\n"),
               "R-determinism"));
}

TEST(RuleDeterminism, OutOfScopeAndCommentsDoNotFire) {
  // src/crypto is outside the determinism scope.
  EXPECT_FALSE(fires(lint_one("src/crypto/keys_extra.cpp",
                              "std::unordered_map<int, int> m;\n"),
               "R-determinism"));
  EXPECT_FALSE(fires(lint_one("src/ba/bb/notes.cpp",
                              "// std::unordered_map would break replay\n"),
               "R-determinism"));
}

TEST(RuleDeterminism, SilencedByAllow) {
  const auto diags = lint_one(
      "src/ba/weak_ba/state.hpp",
      "// mewc-lint: allow(R-determinism) scratch map, cleared every round\n"
      "std::unordered_map<int, int> scratch_;\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(diags[0].suppressed);
  EXPECT_FALSE(fires(diags, "R-determinism"));
}

// ---------------------------------------------------------------------------
// R-pool

constexpr const char* kPayloadDecl =
    "struct FakeMsg final : public Payload {\n"
    "  std::size_t words() const override { return 1; }\n"
    "};\n";

TEST(RulePool, FiresOnMakeSharedOfPayloadType) {
  const auto diags =
      lint_one("src/ba/bb/extra.cpp",
               std::string(kPayloadDecl) +
                   "auto m = std::make_shared<FakeMsg>();\n");
  EXPECT_TRUE(fires(diags, "R-pool"));
}

TEST(RulePool, PayloadTypeDeclaredInAnotherFileStillFires) {
  // Declaration lives in a header, use in a .cpp — the corpus-wide pass
  // must connect them.
  const auto diags = run({{"src/ba/bb/messages.hpp", kPayloadDecl},
                          {"src/ba/bb/extra.cpp",
                           "auto m = std::make_shared<FakeMsg>();\n"}});
  EXPECT_TRUE(fires(diags, "R-pool"));
}

TEST(RulePool, PoolMakeAndNonPayloadTypesAreFine) {
  EXPECT_FALSE(fires(lint_one("src/ba/bb/extra.cpp",
                              std::string(kPayloadDecl) +
                                  "auto m = pool::make<FakeMsg>();\n"),
               "R-pool"));
  EXPECT_FALSE(fires(lint_one("src/ba/bb/extra.cpp",
                              "auto p = std::make_shared<Predicate>();\n"),
               "R-pool"));
}

TEST(RulePool, SilencedByAllow) {
  const auto diags = lint_one(
      "src/ba/bb/extra.cpp",
      std::string(kPayloadDecl) +
          "// mewc-lint: allow(R-pool) one-shot setup message, cold path\n"
          "auto m = std::make_shared<FakeMsg>();\n");
  EXPECT_FALSE(fires(diags, "R-pool"));
}

// ---------------------------------------------------------------------------
// R-send

TEST(RuleSend, FiresOnDirectPost) {
  EXPECT_TRUE(fires(lint_one("src/ba/strong_ba/extra.cpp",
                             "net.post(id, round, out, true);\n"),
              "R-send"));
  EXPECT_TRUE(fires(lint_one("src/ba/strong_ba/extra.cpp",
                             "network_->post(id, round, out, true);\n"),
              "R-send"));
}

TEST(RuleSend, OutboxSendAndExecutorScopeAreFine) {
  EXPECT_FALSE(fires(lint_one("src/ba/strong_ba/extra.cpp",
                              "out.send(to, body); out.broadcast(body);\n"),
               "R-send"));
  // The executor (src/sim) is the one legitimate post caller.
  EXPECT_FALSE(fires(lint_one("src/sim/executor_extra.cpp",
                              "network_.post(pid, r, outbox, true);\n"),
               "R-send"));
}

TEST(RuleSend, SilencedByAllow) {
  const auto diags = lint_one(
      "src/ba/strong_ba/extra.cpp",
      "net.post(id, r, out, true);  // mewc-lint: allow(R-send) test shim\n");
  EXPECT_FALSE(fires(diags, "R-send"));
}

// ---------------------------------------------------------------------------
// R-quorum

TEST(RuleQuorum, FiresOnInlineThresholdArithmetic) {
  EXPECT_TRUE(fires(lint_one("src/ba/weak_ba/extra.cpp",
                             "const auto q = (n + t + 1 + 1) / 2;\n"),
              "R-quorum"));
  EXPECT_TRUE(fires(lint_one("src/ba/weak_ba/extra.cpp",
                             "const auto q = (ctx_.n + ctx_.t + 1) / 2;\n"),
              "R-quorum"));
  EXPECT_TRUE(fires(lint_one("src/crypto/extra.cpp",
                             "sigs.resize(t_ + n_ + 1);\n"),
              "R-quorum"));
}

TEST(RuleQuorum, CommitQuorumAndUnrelatedSumsAreFine) {
  EXPECT_FALSE(fires(lint_one("src/ba/weak_ba/extra.cpp",
                              "const auto q = commit_quorum(n, t);\n"),
               "R-quorum"));
  EXPECT_FALSE(fires(lint_one("src/ba/weak_ba/extra.cpp",
                              "const auto k = t + 1; const auto m = n + 3;\n"),
               "R-quorum"));
  EXPECT_FALSE(fires(lint_one("src/check/extra.cpp",
                              "if (size.n < 2 * size.t + 1) bad();\n"),
               "R-quorum"));
  // The single source of truth itself is exempt.
  EXPECT_FALSE(fires(lint_one("src/common/types.hpp",
                              "return (n + t + 1 + 1) / 2;\n"),
               "R-quorum"));
}

TEST(RuleQuorum, SilencedByAllow) {
  const auto diags = lint_one(
      "src/ba/weak_ba/extra.cpp",
      "// mewc-lint: allow(R-quorum) proof annotation mirrors the paper\n"
      "const auto q = (n + t + 1 + 1) / 2;\n");
  EXPECT_FALSE(fires(diags, "R-quorum"));
}

// ---------------------------------------------------------------------------
// R-argparse

TEST(RuleArgparse, FiresOnUncheckedParsersInTools) {
  EXPECT_TRUE(fires(lint_one("tools/mewc_extra.cpp",
                             "o.t = std::atoi(argv[++i]);\n"),
              "R-argparse"));
  EXPECT_TRUE(fires(lint_one("tools/mewc_extra.cpp",
                             "o.seed = strtoull(need(), nullptr, 0);\n"),
              "R-argparse"));
  EXPECT_TRUE(fires(lint_one("bench/bench_extra.cpp",
                             "slots = std::stoul(argv[i]);\n"),
              "R-argparse"));
}

TEST(RuleArgparse, CheckedParserAndScopesAreFine) {
  EXPECT_FALSE(fires(lint_one("tools/mewc_extra.cpp",
                              "o.t = parse_u32(\"--t\", need());\n"),
               "R-argparse"));
  // `atoi` as a member/variable name is not a call and must not fire.
  EXPECT_FALSE(fires(lint_one("tools/mewc_extra.cpp",
                              "int atoi = 3; use(atoi);\n"),
               "R-argparse"));
  // argparse.hpp owns the one audited strtoull; src/ is out of scope.
  EXPECT_FALSE(fires(lint_one("tools/argparse.hpp",
                              "const auto v = std::strtoull(text, &end, 0);\n"),
               "R-argparse"));
  EXPECT_FALSE(fires(lint_one("src/check/extra.cpp",
                              "int x = std::atoi(s);\n"),
               "R-argparse"));
}

TEST(RuleArgparse, SilencedByAllow) {
  const auto diags = lint_one(
      "tools/mewc_extra.cpp",
      "// mewc-lint: allow(R-argparse) fuzz harness feeds vetted digits\n"
      "int x = std::atoi(buf);\n");
  EXPECT_FALSE(fires(diags, "R-argparse"));
}

// ---------------------------------------------------------------------------
// R-meter

TEST(RuleMeter, FiresOnStringKeyedMapInScope) {
  EXPECT_TRUE(fires(lint_one("src/net/meter_extra.hpp",
                             "std::map<std::string, std::uint64_t> by_kind_;\n"),
              "R-meter"));
  EXPECT_TRUE(
      fires(lint_one("src/ba/harness_extra.cpp",
                     "std::unordered_map<std::string, int> counts_;\n"),
            "R-meter"));
}

TEST(RuleMeter, IdKeyedAndOutOfScopeAreFine) {
  EXPECT_FALSE(fires(lint_one("src/net/meter_extra.hpp",
                              "std::vector<std::uint64_t> by_kind_id_;\n"),
               "R-meter"));
  // src/check aggregates reports by group name — off the hot path.
  EXPECT_FALSE(fires(lint_one("src/check/report_extra.cpp",
                              "std::map<std::string, Group> groups;\n"),
               "R-meter"));
}

TEST(RuleMeter, SilencedByAllow) {
  const auto diags = lint_one(
      "src/net/meter_extra.hpp",
      "// mewc-lint: allow(R-meter) reporting path, built once per report\n"
      "std::map<std::string, std::uint64_t> report_;\n");
  EXPECT_FALSE(fires(diags, "R-meter"));
}

// ---------------------------------------------------------------------------
// Suppressions, baseline, path normalization

TEST(Suppression, OwnLineCommentCoversNextLineOnly) {
  const auto diags = lint_one(
      "src/ba/bb/extra.hpp",
      "// mewc-lint: allow(R-determinism) first map is vetted\n"
      "std::unordered_map<int, int> a_;\n"
      "std::unordered_map<int, int> b_;\n");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_TRUE(diags[0].suppressed);   // line 2
  EXPECT_FALSE(diags[1].suppressed);  // line 3 is NOT covered
}

TEST(Suppression, WrongRuleNameDoesNotSilence) {
  const auto diags = lint_one(
      "src/ba/bb/extra.hpp",
      "std::unordered_map<int, int> a_;  // mewc-lint: allow(R-pool) nope\n");
  EXPECT_TRUE(fires(diags, "R-determinism"));
}

TEST(Suppression, MultiRuleAllowList) {
  const auto diags = lint_one(
      "src/ba/bb/extra.hpp",
      "// mewc-lint: allow(R-determinism, R-meter) scratch, round-local\n"
      "std::unordered_map<std::string, int> scratch_;\n");
  EXPECT_FALSE(fires(diags, "R-determinism"));
  EXPECT_FALSE(fires(diags, "R-meter"));
}

TEST(Baseline, GrandfathersExactFinding) {
  const std::string body = "std::unordered_map<int, int> votes_;\n";
  const std::vector<SourceFile> corpus = {{"src/ba/bb/extra.hpp", body}};
  const Baseline base = Baseline::parse(
      "# comment line\nR-determinism|src/ba/bb/extra.hpp|1\n");
  const auto diags = run(corpus, &base);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(diags[0].baselined);
  EXPECT_TRUE(active_of(diags).empty());

  // A different line is a *new* finding and stays active.
  const Baseline stale =
      Baseline::parse("R-determinism|src/ba/bb/extra.hpp|7\n");
  EXPECT_FALSE(active_of(run(corpus, &stale)).empty());
}

TEST(Baseline, SerializeRoundTrips) {
  const auto diags =
      lint_one("src/ba/bb/extra.hpp", "std::unordered_map<int, int> m_;\n");
  ASSERT_FALSE(diags.empty());
  const Baseline base = Baseline::parse(Baseline::serialize(diags));
  EXPECT_TRUE(active_of(run({{"src/ba/bb/extra.hpp",
                              "std::unordered_map<int, int> m_;\n"}},
                            &base))
                  .empty());
}

TEST(PathNormalization, AbsoluteAndRelativeAgree) {
  EXPECT_EQ(normalize_path("/root/repo/src/ba/bb/bb.cpp"),
            "src/ba/bb/bb.cpp");
  EXPECT_EQ(normalize_path("src/ba/bb/bb.cpp"), "src/ba/bb/bb.cpp");
  EXPECT_EQ(normalize_path("../repo/tools/mewc_lint.cpp"),
            "tools/mewc_lint.cpp");
}

TEST(Rules, TableCoversEveryImplementedRule) {
  std::vector<std::string> ids;
  for (const RuleInfo& r : rules()) ids.emplace_back(r.id);
  for (const char* expected :
       {"R-argparse", "R-budget", "R-covdrift", "R-determinism", "R-meter",
        "R-pool", "R-quorum", "R-send", "R-taint"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end())
        << expected;
  }
}

// ---------------------------------------------------------------------------
// allow() audit

TEST(AuditAllows, JustifiedAllowIsNotStale) {
  const std::vector<SourceFile> corpus = {
      {"src/ba/bb/extra.hpp",
       "// mewc-lint: allow(R-determinism) vetted iteration order\n"
       "std::unordered_map<int, int> m_;\n"}};
  const auto diags = run(corpus);
  EXPECT_TRUE(audit_allows(corpus, diags).empty());
}

TEST(AuditAllows, AllowWithNoFindingIsStale) {
  const std::vector<SourceFile> corpus = {
      {"src/ba/bb/extra.hpp",
       "// mewc-lint: allow(R-determinism) nothing fires here anymore\n"
       "std::map<int, int> m_;\n"}};
  const auto diags = run(corpus);
  const auto stale = audit_allows(corpus, diags);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].rule, "R-determinism");
  EXPECT_EQ(stale[0].line, 1u);
}

TEST(AuditAllows, UnknownRuleNameIsStale) {
  const std::vector<SourceFile> corpus = {
      {"src/ba/bb/extra.hpp",
       "std::map<int, int> m_;  // mewc-lint: allow(R-notarule) huh\n"}};
  const auto stale = audit_allows(corpus, run(corpus));
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].rule, "R-notarule");
  EXPECT_EQ(stale[0].why, "names no known rule");
}

TEST(AuditAllows, DocPlaceholdersAreProseNotSuppressions) {
  // Comments quoting the syntax — `mewc-lint: allow(<rule>)` — can never
  // suppress anything and must not be reported as stale.
  const std::vector<SourceFile> corpus = {
      {"src/ba/bb/extra.hpp",
       "// Suppress with `mewc-lint: allow(<rule>)` on the line above.\n"
       "// The form `mewc-lint: allow(...)` also appears in docs.\n"}};
  EXPECT_TRUE(audit_allows(corpus, run(corpus)).empty());
}

TEST(AuditAllows, SuppressedFindingStillJustifiesItsAllow) {
  // The audit keys on "a finding lands on a covered line", not on the
  // finding being active — otherwise every working allow would be stale.
  const std::vector<SourceFile> corpus = {
      {"src/ba/bb/extra.hpp",
       "std::unordered_map<int, int> m_;  // mewc-lint: allow(R-determinism) "
       "ok\n"}};
  const auto diags = run(corpus);
  ASSERT_FALSE(diags.empty());
  EXPECT_TRUE(diags[0].suppressed);
  EXPECT_TRUE(audit_allows(corpus, diags).empty());
}

}  // namespace
}  // namespace mewc::lint
