// R-taint fixtures: wire-decoded values must pass verification before
// reaching quorum/ledger/meter sinks. Each fixture is a small file placed
// (by path) inside the rule's scope; the assertions pin the taint engine's
// contract — gen at decode, kill at verify, propagation through assignment
// and one-level call summaries, and the allow() escape hatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/sem/sem.hpp"

namespace mewc::lint::sem {
namespace {

std::vector<Diagnostic> sem_one(const std::string& path,
                                const std::string& content) {
  return run_sem({{path, content}}, SemOptions{});
}

bool fires(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.active() && d.rule == rule;
  });
}

TEST(SemTaint, DecodeStraightIntoSinkFires) {
  const auto diags = sem_one("src/ba/fake/fixture.cpp",
                             "void S::on(const M& m) {\n"
                             "  const auto* v = payload_cast<Vote>(m.body);\n"
                             "  voters.insert(v->signer);\n"
                             "}\n");
  ASSERT_TRUE(fires(diags, "R-taint"));
  EXPECT_EQ(diags[0].line, 3u);
}

TEST(SemTaint, VerifyBeforeSinkIsClean) {
  const auto diags =
      sem_one("src/ba/fake/fixture.cpp",
              "void S::on(const M& m) {\n"
              "  const auto* v = payload_cast<Vote>(m.body);\n"
              "  if (!scheme.verify_partial(v->partial)) return;\n"
              "  voters.insert(v->signer);\n"
              "}\n");
  EXPECT_FALSE(fires(diags, "R-taint"));
}

TEST(SemTaint, RealBackendVerifyEntryPointsSanitize) {
  // The kReal backend introduced new verification surfaces (pairing batch
  // verification, aggregate checks, proofs of possession). Each must count
  // as a sanitizer, or real-backend call sites would need allow() noise —
  // and a rename that drops the "verify" stem would silently stop
  // sanitizing, which this pin catches.
  for (const char* call :
       {"real->verify_batch(v->sigs)", "pki.verify_aggregate(v->d, v->tag)",
        "pki.verify_pop(v->pid, v->pk, v->pop)",
        "ed_verify(v->pk, v->msg, v->sig)",
        "bls_verify_at(v->pk, v->h, v->tag, nullptr)"}) {
    const auto diags =
        sem_one("src/ba/fake/fixture.cpp",
                std::string("void S::on(const M& m) {\n"
                            "  const auto* v = payload_cast<Vote>(m.body);\n"
                            "  if (!") +
                    call +
                    ") return;\n"
                    "  voters.insert(v->signer);\n"
                    "}\n");
    EXPECT_FALSE(fires(diags, "R-taint")) << call;
  }
}

TEST(SemTaint, TaintFlowsThroughAssignment) {
  const auto diags = sem_one("src/ba/fake/fixture.cpp",
                             "void S::on(const M& m) {\n"
                             "  const auto* v = payload_cast<Vote>(m.body);\n"
                             "  auto copy = v;\n"
                             "  votes.push_back(copy);\n"
                             "}\n");
  EXPECT_TRUE(fires(diags, "R-taint")) << "assignment must propagate taint";
}

TEST(SemTaint, CleanReassignmentLaundersTheVariable) {
  const auto diags = sem_one("src/ba/fake/fixture.cpp",
                             "void S::on(const M& m) {\n"
                             "  auto v = payload_cast<Vote>(m.body);\n"
                             "  v = trusted_default();\n"
                             "  votes.push_back(v);\n"
                             "}\n");
  EXPECT_FALSE(fires(diags, "R-taint"))
      << "a strong update with a clean rhs must kill the fact";
}

TEST(SemTaint, InlineDecodeIntoSinkFires) {
  const auto diags =
      sem_one("src/ba/fake/fixture.cpp",
              "void S::on(const M& m) {\n"
              "  votes.push_back(payload_cast<Vote>(m.body)->partial);\n"
              "}\n");
  EXPECT_TRUE(fires(diags, "R-taint")) << "no variable needed to flow";
}

TEST(SemTaint, TaintReachesSinkThroughCalleeSummary) {
  // accept() pushes its parameter into a set; calling it with a tainted
  // argument must fire even though the sink is one call level away.
  const auto diags =
      sem_one("src/ba/fake/fixture.cpp",
              "void S::accept(const Vote& v) { accepted.push_back(v); }\n"
              "void S::on(const M& m) {\n"
              "  const auto* v = payload_cast<Vote>(m.body);\n"
              "  accept(*v);\n"
              "}\n");
  EXPECT_TRUE(fires(diags, "R-taint")) << "one-level call summary";
}

TEST(SemTaint, VerifiedValueThroughCalleeSummaryIsClean) {
  const auto diags =
      sem_one("src/ba/fake/fixture.cpp",
              "void S::accept(const Vote& v) { accepted.push_back(v); }\n"
              "void S::on(const M& m) {\n"
              "  const auto* v = payload_cast<Vote>(m.body);\n"
              "  if (!aggregate_verify(pki, v->chain)) return;\n"
              "  accept(*v);\n"
              "}\n");
  EXPECT_FALSE(fires(diags, "R-taint"));
}

TEST(SemTaint, SinkOnOnlyOneBranchStillFires) {
  // May-analysis: a single unverified path to the sink is a finding even
  // when the other branch verifies.
  const auto diags =
      sem_one("src/ba/fake/fixture.cpp",
              "void S::on(const M& m, bool fast) {\n"
              "  const auto* v = payload_cast<Vote>(m.body);\n"
              "  if (fast) {\n"
              "    votes.push_back(v->partial);\n"
              "  } else {\n"
              "    if (!scheme.verify_partial(v->partial)) return;\n"
              "    votes.push_back(v->partial);\n"
              "  }\n"
              "}\n");
  EXPECT_TRUE(fires(diags, "R-taint"));
}

TEST(SemTaint, OutOfScopePathIsIgnored) {
  const std::string body =
      "void S::on(const M& m) {\n"
      "  const auto* v = payload_cast<Vote>(m.body);\n"
      "  voters.insert(v->signer);\n"
      "}\n";
  EXPECT_FALSE(fires(sem_one("src/net/fixture.cpp", body), "R-taint"))
      << "R-taint is scoped to src/ba/ and src/smr/";
  EXPECT_FALSE(fires(sem_one("src/ba/adversaries/fixture.cpp", body),
                     "R-taint"))
      << "the adversary crafts unverified input on purpose";
}

TEST(SemTaint, AllowCommentSilences) {
  const auto diags =
      sem_one("src/ba/fake/fixture.cpp",
              "void S::on(const M& m) {\n"
              "  const auto* v = payload_cast<Vote>(m.body);\n"
              "  // mewc-lint: allow(R-taint) fixture-pinned false positive\n"
              "  voters.insert(v->signer);\n"
              "}\n");
  EXPECT_FALSE(fires(diags, "R-taint"));
  const bool suppressed_present = std::any_of(
      diags.begin(), diags.end(),
      [](const Diagnostic& d) { return d.rule == "R-taint" && d.suppressed; });
  EXPECT_TRUE(suppressed_present) << "finding is reported as suppressed";
}

TEST(SemTaint, MemberWriteDoesNotTaintTheObject) {
  // The interactive-consistency demux re-wraps an inner payload into a
  // fresh Message; flagging the wrapper would be noise.
  const auto diags =
      sem_one("src/ba/fake/fixture.cpp",
              "void S::on(const M& m) {\n"
              "  const auto* mux = payload_cast<Mux>(m.body);\n"
              "  Message unwrapped;\n"
              "  unwrapped.body = mux->inner;\n"
              "  queue.push_back(unwrapped);\n"
              "}\n");
  EXPECT_FALSE(fires(diags, "R-taint"));
}

TEST(SemTaint, BaselineGrandfathersAFinding) {
  const std::string body =
      "void S::on(const M& m) {\n"
      "  const auto* v = payload_cast<Vote>(m.body);\n"
      "  voters.insert(v->signer);\n"
      "}\n";
  auto diags = run_sem({{"src/ba/fake/fixture.cpp", body}}, SemOptions{});
  ASSERT_TRUE(fires(diags, "R-taint"));
  const Baseline baseline =
      Baseline::parse(baseline_key(diags[0]) + "\n");
  diags = run_sem({{"src/ba/fake/fixture.cpp", body}}, SemOptions{}, nullptr,
                  &baseline);
  EXPECT_FALSE(fires(diags, "R-taint"));
  EXPECT_TRUE(diags[0].baselined);
}

}  // namespace
}  // namespace mewc::lint::sem
