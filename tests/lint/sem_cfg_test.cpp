// CFG builder unit tests. Each fixture plants unique marker identifiers in
// the source and asserts structural properties of the graph built over the
// token stream: which markers share a node, which nodes can reach the exit,
// and where back edges land. Tricky control flow — early return, switch
// fallthrough, loops with break/continue — is exactly where a broken
// builder silently merges or drops paths, so these lock the shapes down.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/sem/cfg.hpp"
#include "lint/sem/symtab.hpp"

namespace mewc::lint::sem {
namespace {

struct Built {
  LexResult lexed;
  Cfg cfg;
};

// Builds the CFG of the sole function in `src`.
Built build(const std::string& src) {
  Built b;
  b.lexed = lex(src);
  const SymbolTable sym = build_symtab({b.lexed});
  EXPECT_EQ(sym.functions.size(), 1u) << src;
  if (sym.functions.size() != 1) return b;
  const Function& fn = sym.functions[0];
  b.cfg = build_cfg(b.lexed.tokens, fn.body_begin, fn.body_end);
  return b;
}

// Node containing the marker identifier, or npos.
std::size_t node_of(const Built& b, const std::string& marker) {
  for (std::size_t id = 0; id < b.cfg.nodes.size(); ++id) {
    const CfgNode& n = b.cfg.nodes[id];
    for (std::size_t t = n.first; t < n.last; ++t) {
      if (b.lexed.tokens[t].text == marker) return id;
    }
  }
  return static_cast<std::size_t>(-1);
}

// All nodes reachable from `from` by following successor edges.
std::set<std::size_t> reachable(const Cfg& cfg, std::size_t from) {
  std::set<std::size_t> seen;
  std::vector<std::size_t> work{from};
  while (!work.empty()) {
    const std::size_t id = work.back();
    work.pop_back();
    if (!seen.insert(id).second) continue;
    for (const std::size_t s : cfg.nodes[id].succ) work.push_back(s);
  }
  return seen;
}

TEST(SemCfg, StraightLineIsASingleChain) {
  const Built b = build("void f() { aa(); bb(); }\n");
  ASSERT_TRUE(b.cfg.ok);
  const std::size_t aa = node_of(b, "aa");
  const std::size_t bb = node_of(b, "bb");
  ASSERT_NE(aa, static_cast<std::size_t>(-1));
  ASSERT_NE(bb, static_cast<std::size_t>(-1));
  EXPECT_TRUE(reachable(b.cfg, aa).count(bb));
  EXPECT_TRUE(reachable(b.cfg, bb).count(b.cfg.exit));
  EXPECT_FALSE(reachable(b.cfg, bb).count(aa)) << "no back edge expected";
}

TEST(SemCfg, EarlyReturnSkipsTheRestOfTheBody) {
  const Built b = build(
      "void f(int x) {\n"
      "  if (x) { aa(); return; }\n"
      "  bb();\n"
      "}\n");
  ASSERT_TRUE(b.cfg.ok);
  const std::size_t aa = node_of(b, "aa");
  const std::size_t bb = node_of(b, "bb");
  // The return arm flows straight to exit, never into bb's node; the
  // fall-through arm still reaches bb.
  EXPECT_TRUE(reachable(b.cfg, aa).count(b.cfg.exit));
  EXPECT_FALSE(reachable(b.cfg, aa).count(bb));
  EXPECT_TRUE(reachable(b.cfg, b.cfg.entry).count(bb));
}

TEST(SemCfg, IfElseBothArmsRejoin) {
  const Built b = build(
      "void f(int x) {\n"
      "  if (x) { aa(); } else { bb(); }\n"
      "  cc();\n"
      "}\n");
  ASSERT_TRUE(b.cfg.ok);
  const std::size_t aa = node_of(b, "aa");
  const std::size_t bb = node_of(b, "bb");
  const std::size_t cc = node_of(b, "cc");
  EXPECT_TRUE(reachable(b.cfg, aa).count(cc));
  EXPECT_TRUE(reachable(b.cfg, bb).count(cc));
  EXPECT_FALSE(reachable(b.cfg, aa).count(bb)) << "arms are exclusive";
  EXPECT_FALSE(reachable(b.cfg, bb).count(aa)) << "arms are exclusive";
}

TEST(SemCfg, WhileLoopHasBackEdgeAndSkipPath) {
  const Built b = build(
      "void f(int x) {\n"
      "  while (cond(x)) { aa(); }\n"
      "  bb();\n"
      "}\n");
  ASSERT_TRUE(b.cfg.ok);
  const std::size_t cond = node_of(b, "cond");
  const std::size_t aa = node_of(b, "aa");
  const std::size_t bb = node_of(b, "bb");
  EXPECT_TRUE(reachable(b.cfg, aa).count(cond)) << "loop back edge";
  EXPECT_TRUE(reachable(b.cfg, cond).count(bb)) << "loop can be skipped";
}

TEST(SemCfg, ForLoopBreakAndContinue) {
  const Built b = build(
      "void f(int n) {\n"
      "  for (int i = init(); i < n; inc(i)) {\n"
      "    if (i == 1) { brk(); break; }\n"
      "    if (i == 2) { cont(); continue; }\n"
      "    aa();\n"
      "  }\n"
      "  bb();\n"
      "}\n");
  ASSERT_TRUE(b.cfg.ok);
  const std::size_t brk = node_of(b, "brk");
  const std::size_t cont = node_of(b, "cont");
  const std::size_t aa = node_of(b, "aa");
  const std::size_t inc = node_of(b, "inc");
  const std::size_t bb = node_of(b, "bb");
  // break leaves the loop without running the increment or the tail.
  EXPECT_TRUE(reachable(b.cfg, brk).count(bb));
  EXPECT_FALSE(reachable(b.cfg, brk).count(aa));
  // continue jumps to the increment, skipping the rest of the body on this
  // iteration (aa is only reachable again via the back edge through inc).
  ASSERT_NE(cont, static_cast<std::size_t>(-1));
  const CfgNode& cont_node = b.cfg.nodes[cont];
  bool direct_to_inc = false;
  std::vector<std::size_t> frontier(cont_node.succ.begin(),
                                    cont_node.succ.end());
  std::set<std::size_t> seen;
  while (!frontier.empty()) {
    const std::size_t id = frontier.back();
    frontier.pop_back();
    if (!seen.insert(id).second) continue;
    if (id == inc) {
      direct_to_inc = true;
      break;
    }
    // Walk only through joins and the `continue;` node itself: the route
    // to the increment must not pass through any other statement.
    const CfgNode& n = b.cfg.nodes[id];
    const bool is_join = n.first >= n.last;
    const bool is_continue =
        n.first < n.last && b.lexed.tokens[n.first].text == "continue";
    if (is_join || is_continue) {
      frontier.insert(frontier.end(), n.succ.begin(), n.succ.end());
    }
  }
  EXPECT_TRUE(direct_to_inc) << "continue must route to the increment";
}

TEST(SemCfg, SwitchFallthroughChainsCases) {
  const Built b = build(
      "void f(int x) {\n"
      "  switch (x) {\n"
      "    case 0: aa();\n"  // falls through into case 1
      "    case 1: bb(); break;\n"
      "    default: cc();\n"
      "  }\n"
      "  dd();\n"
      "}\n");
  ASSERT_TRUE(b.cfg.ok);
  const std::size_t aa = node_of(b, "aa");
  const std::size_t bb = node_of(b, "bb");
  const std::size_t cc = node_of(b, "cc");
  const std::size_t dd = node_of(b, "dd");
  EXPECT_TRUE(reachable(b.cfg, aa).count(bb)) << "fallthrough case 0 -> 1";
  EXPECT_TRUE(reachable(b.cfg, bb).count(dd)) << "break exits the switch";
  EXPECT_FALSE(reachable(b.cfg, bb).count(cc)) << "break skips default";
  EXPECT_TRUE(reachable(b.cfg, cc).count(dd));
  EXPECT_TRUE(reachable(b.cfg, b.cfg.entry).count(cc));
}

TEST(SemCfg, SwitchWithoutDefaultCanSkipEveryCase) {
  const Built b = build(
      "void f(int x) {\n"
      "  switch (x) { case 0: aa(); break; }\n"
      "  bb();\n"
      "}\n");
  ASSERT_TRUE(b.cfg.ok);
  const std::size_t aa = node_of(b, "aa");
  const std::size_t bb = node_of(b, "bb");
  // No default: the head must have a path to bb that avoids aa.
  EXPECT_TRUE(reachable(b.cfg, b.cfg.entry).count(bb));
  std::set<std::size_t> without_aa;
  std::vector<std::size_t> work{b.cfg.entry};
  while (!work.empty()) {
    const std::size_t id = work.back();
    work.pop_back();
    if (id == aa || !without_aa.insert(id).second) continue;
    for (const std::size_t s : b.cfg.nodes[id].succ) work.push_back(s);
  }
  EXPECT_TRUE(without_aa.count(bb)) << "skip path must avoid the case body";
}

TEST(SemCfg, DoWhileBodyRunsBeforeCondition) {
  const Built b = build(
      "void f(int x) {\n"
      "  do { aa(); } while (cond(x));\n"
      "  bb();\n"
      "}\n");
  ASSERT_TRUE(b.cfg.ok);
  const std::size_t aa = node_of(b, "aa");
  const std::size_t cond = node_of(b, "cond");
  const std::size_t bb = node_of(b, "bb");
  EXPECT_TRUE(reachable(b.cfg, aa).count(cond));
  EXPECT_TRUE(reachable(b.cfg, cond).count(aa)) << "back edge to the body";
  EXPECT_TRUE(reachable(b.cfg, cond).count(bb));
}

TEST(SemCfg, RangeForBodyIsOptional) {
  const Built b = build(
      "void f(const V& vs) {\n"
      "  for (const auto& v : vs) { aa(v); }\n"
      "  bb();\n"
      "}\n");
  ASSERT_TRUE(b.cfg.ok);
  const std::size_t aa = node_of(b, "aa");
  const std::size_t bb = node_of(b, "bb");
  EXPECT_TRUE(reachable(b.cfg, b.cfg.entry).count(bb));
  EXPECT_TRUE(reachable(b.cfg, aa).count(bb));
}

TEST(SemCfg, BailsOnGotoInsteadOfGuessing) {
  const Built b = build(
      "void f(int x) {\n"
      "  if (x) goto done;\n"
      "  aa();\n"
      "done:\n"
      "  bb();\n"
      "}\n");
  EXPECT_FALSE(b.cfg.ok) << "goto must bail, not build a wrong graph";
}

TEST(SemCfg, NestedLoopsBreakBindsToInnermost) {
  const Built b = build(
      "void f(int n) {\n"
      "  while (outer(n)) {\n"
      "    while (inner(n)) { aa(); break; }\n"
      "    bb();\n"
      "  }\n"
      "  cc();\n"
      "}\n");
  ASSERT_TRUE(b.cfg.ok);
  const std::size_t aa = node_of(b, "aa");
  const std::size_t bb = node_of(b, "bb");
  EXPECT_TRUE(reachable(b.cfg, aa).count(bb))
      << "inner break lands after the inner loop, still inside the outer";
}

}  // namespace
}  // namespace mewc::lint::sem
