// Experiment E7 — the paper's key observation (Section 6): quorum
// certificates need ceil((n+t+1)/2) signatures at n = 2t+1.
//
// The natural n-t threshold from the n = 3t+1 world loses its intersection
// property here: with f = t corrupted shares, an adversary can assemble two
// conflicting (n-t)-certificates from disjoint correct voters. With the
// paper's quorum it provably cannot. This ablation performs the actual
// forgery with real threshold shares and reports when it succeeds, and
// tabulates the analytic safety/liveness trade-off.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "crypto/family.hpp"

namespace mewc::bench {
namespace {

/// Attempts to assemble certificates on two conflicting values using f
/// corrupted shares (which sign both) and a disjoint split of correct
/// voters. Returns true if both certificates verify: a safety violation.
bool forge_conflicting_certs(std::uint32_t n, std::uint32_t /*t*/,
                             std::uint32_t quorum, std::uint32_t f) {
  // One scheme per quorum size; shares 0..f-1 are "corrupted".
  SimThreshold scheme(quorum, n, 0xfeed);
  const Digest dv = DigestBuilder("ablation").field(1).done();
  const Digest dw = DigestBuilder("ablation").field(2).done();

  std::vector<PartialSig> cert_v, cert_w;
  for (ProcessId p = 0; p < f; ++p) {  // Byzantine: sign both values
    cert_v.push_back(scheme.issue_share(p).partial_sign(dv));
    cert_w.push_back(scheme.issue_share(p).partial_sign(dw));
  }
  // Correct voters vote once each; split them between the two values.
  ProcessId next = f;
  while (cert_v.size() < quorum && next < n) {
    cert_v.push_back(scheme.issue_share(next++).partial_sign(dv));
  }
  while (cert_w.size() < quorum && next < n) {
    cert_w.push_back(scheme.issue_share(next++).partial_sign(dw));
  }
  const auto qv = scheme.combine(cert_v);
  const auto qw = scheme.combine(cert_w);
  return qv.has_value() && qw.has_value() && scheme.verify(*qv) &&
         scheme.verify(*qw);
}

void forgery_table() {
  subheading("concrete conflicting-certificate forgery, f = t shares");
  Table tab({"n", "t", "quorum n-t", "forged?", "quorum ceil((n+t+1)/2)",
             "forged?"});
  for (std::uint32_t t : {2u, 5u, 10u, 20u, 50u}) {
    const auto n = n_for_t(t);
    const bool naive = forge_conflicting_certs(n, t, n - t, t);
    const bool paper = forge_conflicting_certs(n, t, commit_quorum(n, t), t);
    tab.row({u64(n), u64(t), u64(n - t), naive ? "YES (unsafe)" : "no",
             u64(commit_quorum(n, t)), paper ? "YES (unsafe)" : "no"});
  }
  tab.print();
}

void tradeoff_table() {
  subheading("analytic safety/liveness trade-off per quorum size (n = 21)");
  const std::uint32_t t = 10;
  const auto n = n_for_t(t);
  Table tab({"quorum q", "intersection 2q-n", "safe (>= t+1)",
             "live while f <=", "note"});
  // At n = 2t+1, n-t equals t+1: the classic n-t certificate "loses its
  // power" (Section 4) — exactly the paper's motivation for a new quorum.
  for (std::uint32_t q :
       {n - t, (n - t + commit_quorum(n, t)) / 2, commit_quorum(n, t),
        static_cast<std::uint32_t>(n)}) {
    const std::int64_t inter = 2 * static_cast<std::int64_t>(q) - n;
    const bool safe = inter >= static_cast<std::int64_t>(t) + 1;
    const std::int64_t live_f = static_cast<std::int64_t>(n) - q;
    std::string note;
    if (q == n - t) note = "classic n-t (= t+1 at n=2t+1: powerless)";
    if (q == commit_quorum(n, t)) note = "the paper's choice";
    if (q == n) note = "Algorithm 5's decide certificate";
    tab.row({u64(q), std::to_string(inter), safe ? "yes" : "NO",
             std::to_string(live_f), note});
  }
  tab.print();
  std::printf(
      "The paper's quorum is the smallest safe one, which maximizes the\n"
      "adaptive regime f <= n - q; failing to reach it certifies f = Θ(t),\n"
      "which is what licenses the quadratic fallback (Section 6).\n");
}

void protocol_level_check() {
  subheading("protocol-level: cert-split adversary vs the paper's quorum");
  const std::uint32_t t = 5;
  Table tab({"adversary", "agreement", "distinct decisions"});
  auto spec = harness::RunSpec::for_t(t);
  adv::WbaCertSplit adversary(spec.instance, 1, WireValue::plain(Value(9)),
                              2, 1);
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(3))),
      harness::always_valid_factory(), adversary);
  std::uint32_t distinct = 0;
  std::vector<std::uint64_t> seen;
  for (const auto& s : res.stats) {
    if (!s) continue;
    if (std::find(seen.begin(), seen.end(), s->decision.value.raw) ==
        seen.end()) {
      seen.push_back(s->decision.value.raw);
      ++distinct;
    }
  }
  tab.row({"cert split + finalize withholding",
           res.agreement() ? "yes" : "NO", u64(distinct)});
  tab.print();
}

void bm_forgery(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        forge_conflicting_certs(n_for_t(t), t, n_for_t(t) - t, t));
  }
}

BENCHMARK(bm_forgery)->Arg(5)->Arg(20)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mewc::bench

int main(int argc, char** argv) {
  mewc::bench::heading(
      "E7: quorum-size ablation — why ceil((n+t+1)/2) (Section 6)");
  mewc::bench::forgery_table();
  mewc::bench::tradeoff_table();
  mewc::bench::protocol_level_check();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
