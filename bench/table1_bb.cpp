// Experiment E1 — Table 1, row "Byzantine Broadcast: O(n(f+1))".
//
// Regenerates the row empirically: metered words of the adaptive BB
// (Algorithms 1 + 2) as a function of f at fixed n, and of n at fixed f,
// against the classic Dolev-Strong BB baseline. The reported constant
// words/(n*(f+1)) flat across the sweep is the paper's claim.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "common/stats.hpp"

namespace mewc::bench {
namespace {

harness::BbResult run_adaptive(std::uint32_t t, std::uint32_t f,
                               bool leader_killer) {
  auto spec = harness::RunSpec::for_t(t);
  const ProcessId sender = spec.n - 1;  // keep early vetting leaders correct
  if (leader_killer) {
    // Corrupt each upcoming vetting leader right before its relay round:
    // the costliest adaptive pattern (every burned phase is non-silent).
    std::vector<std::unique_ptr<Adversary>> parts;
    parts.push_back(std::make_unique<adv::CrashAdversary>(
        std::vector<ProcessId>{sender}));
    parts.push_back(
        std::make_unique<adv::AdaptiveLeaderCrash>(4, 3, spec.n, f - 1));
    adv::Composite adversary(std::move(parts));
    return harness::run_bb(spec, sender, Value(1), adversary);
  }
  adv::CrashAdversary adversary(first_f(f));
  return harness::run_bb(spec, sender, Value(1), adversary);
}

void words_vs_f() {
  const std::uint32_t t = 20;  // n = 41
  const auto n = n_for_t(t);
  subheading("BB words vs f (n = 41, crash adversary; paper: O(n(f+1)))");
  Table tab({"f", "words", "words/(n(f+1))", "non-silent phases", "fallback"});
  for (std::uint32_t f = 0; f <= adaptive_boundary(n, t); f += 2) {
    const auto res = run_adaptive(t, f, false);
    tab.row({u64(f), u64(res.meter.words_correct),
             fixed2(static_cast<double>(res.meter.words_correct) /
                    (static_cast<double>(n) * (f + 1))),
             u64(active_windows(res.meter, 2, 3, n)),
             res.any_fallback() ? "yes" : "no"});
  }
  tab.print();
  std::printf(
      "Crash failures are nearly free for BB (a crashed process simply\n"
      "stays quiet; everyone already holds the sender's value): words stay\n"
      "O(n). The O(n(f+1)) worst case needs the leader-killer below.\n");
}

void words_vs_f_leader_killer() {
  const std::uint32_t t = 20;
  const auto n = n_for_t(t);
  subheading("BB words vs f (n = 41, adaptive leader-killer + silent sender)");
  Table tab({"f", "words", "words/(n(f+1))", "non-silent phases"});
  for (std::uint32_t f = 1; f <= adaptive_boundary(n, t); f += 2) {
    const auto res = run_adaptive(t, f, true);
    tab.row({u64(res.f()), u64(res.meter.words_correct),
             fixed2(static_cast<double>(res.meter.words_correct) /
                    (static_cast<double>(n) * (res.f() + 1))),
             u64(active_windows(res.meter, 2, 3, n))});
  }
  tab.print();
  std::printf(
      "Words grow linearly in f — each killed leader burns one O(n) phase\n"
      "— and words/(n(f+1)) settles to a constant: the Table 1 row.\n");
}

void words_vs_n() {
  subheading("BB words vs n (f = 0): adaptive vs Dolev-Strong baseline");
  Table tab({"n", "adaptive words", "adaptive/n", "Dolev-Strong words",
             "DS/n^2", "speedup"});
  std::vector<double> ns, adaptive_words, classic_words;
  for (std::uint32_t t : {5u, 10u, 20u, 40u, 60u}) {
    const auto n = n_for_t(t);
    adv::NullAdversary a1, a2;
    auto spec = harness::RunSpec::for_t(t);
    const auto adaptive = harness::run_bb(spec, 0, Value(1), a1);
    const auto classic = harness::run_ds_bb(spec, 0, Value(1), a2);
    ns.push_back(n);
    adaptive_words.push_back(static_cast<double>(adaptive.meter.words_correct));
    classic_words.push_back(static_cast<double>(classic.meter.words_correct));
    tab.row({u64(n), u64(adaptive.meter.words_correct),
             fixed2(static_cast<double>(adaptive.meter.words_correct) / n),
             u64(classic.meter.words_correct),
             fixed2(static_cast<double>(classic.meter.words_correct) /
                    (static_cast<double>(n) * n)),
             fixed2(static_cast<double>(classic.meter.words_correct) /
                    static_cast<double>(adaptive.meter.words_correct))});
  }
  tab.print();
  const auto fa = stats::fit_power_law(ns, adaptive_words);
  const auto fc = stats::fit_power_law(ns, classic_words);
  std::printf(
      "Fitted growth orders: adaptive BB words ~ n^%.2f (r2=%.4f), "
      "Dolev-Strong ~ n^%.2f (r2=%.4f).\n",
      fa.slope, fa.r2, fc.slope, fc.r2);
}

void bm_bb(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  const auto f = static_cast<std::uint32_t>(state.range(1));
  std::uint64_t words = 0;
  for (auto _ : state) {
    const auto res = run_adaptive(t, f, false);
    words = res.meter.words_correct;
    benchmark::DoNotOptimize(words);
  }
  state.counters["words"] = static_cast<double>(words);
  state.counters["n"] = n_for_t(t);
  state.counters["f"] = f;
}

BENCHMARK(bm_bb)
    ->ArgsProduct({{5, 10, 20}, {0, 2, 4}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mewc::bench

int main(int argc, char** argv) {
  mewc::bench::heading(
      "Table 1 / E1: Byzantine Broadcast, O(n(f+1)) words, n = 2t+1");
  mewc::bench::words_vs_f();
  mewc::bench::words_vs_f_leader_killer();
  mewc::bench::words_vs_n();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
