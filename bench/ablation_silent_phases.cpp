// Experiment E6 — the silent-phase mechanism (Sections 5.1 and 6.1).
//
// The O(n(f+1)) bound rests on one structural claim: after the first
// non-silent phase led by a correct process, all later correct-leader
// phases are silent, so the number of non-silent phases is O(f+1). This
// ablation counts non-silent phases directly, across adversaries designed
// to burn as many phases as possible.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace mewc::bench {
namespace {

void bb_nonsilent_vs_f() {
  const std::uint32_t t = 15;  // n = 31
  subheading("BB non-silent vetting phases vs f (silent sender + killer)");
  Table tab({"f", "non-silent phases", "bound f+1", "words"});
  for (std::uint32_t f = 1; f <= adaptive_boundary(n_for_t(t), t); f += 2) {
    auto spec = harness::RunSpec::for_t(t);
    std::vector<std::unique_ptr<Adversary>> parts;
    parts.push_back(std::make_unique<adv::CrashAdversary>(
        std::vector<ProcessId>{static_cast<ProcessId>(spec.n - 1)}));
    parts.push_back(
        std::make_unique<adv::AdaptiveLeaderCrash>(4, 3, spec.n, f - 1));
    adv::Composite adversary(std::move(parts));
    const auto res = harness::run_bb(spec, spec.n - 1, Value(1), adversary);
    tab.row({u64(res.f()), u64(active_windows(res.meter, 2, 3, spec.n)),
             u64(res.f() + 1), u64(res.meter.words_correct)});
  }
  tab.print();
}

void wba_nonsilent_vs_f() {
  const std::uint32_t t = 15;
  subheading("weak BA non-silent phases vs f (mid-phase leader killer)");
  Table tab({"f", "non-silent phases", "bound f+1", "decided in phase",
             "words"});
  for (std::uint32_t f = 0; f <= adaptive_boundary(n_for_t(t), t); f += 2) {
    auto spec = harness::RunSpec::for_t(t);
    // Corrupt each upcoming leader AFTER its propose and the votes (local
    // round 3): the phase is burned at full O(n) cost. Killing before the
    // phase would be free — silent phases cost nothing.
    adv::AdaptiveLeaderCrash adversary(3, 5, spec.n, f);
    const auto res = harness::run_weak_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(7))),
        harness::always_valid_factory(), adversary);
    std::uint64_t phase = 0;
    for (const auto& s : res.stats) {
      if (s && s->decided_phase > phase) phase = s->decided_phase;
    }
    tab.row({u64(res.f()), u64(active_windows(res.meter, 1, 5, spec.n)),
             u64(res.f() + 1), u64(phase), u64(res.meter.words_correct)});
  }
  tab.print();
  std::printf(
      "Shape check: non-silent phases track f+1 exactly under the\n"
      "worst-case (leader-killing) adversary — the mechanism behind\n"
      "adaptivity.\n");
}

void per_phase_cost() {
  subheading("per-phase word cost is O(n) (weak BA, leader killer, n = 31)");
  const std::uint32_t t = 15;
  auto spec = harness::RunSpec::for_t(t);
  const std::uint32_t f = 4;
  adv::AdaptiveLeaderCrash adversary(3, 5, spec.n, f);
  const auto res = harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(7))),
      harness::always_valid_factory(), adversary);
  Table tab({"phase", "words", "words/n"});
  for (std::uint64_t j = 1; j <= f + 2; ++j) {
    const Round lo = static_cast<Round>(5 * (j - 1)) + 1;
    const std::uint64_t words = res.meter.words_in_rounds(lo, lo + 5);
    tab.row({u64(j), u64(words),
             fixed2(static_cast<double>(words) / spec.n)});
  }
  tab.print();
}

void early_stopping() {
  subheading(
      "early stopping: rounds to decision vs f (weak BA, n = 31, schedule "
      "length is fixed)");
  const std::uint32_t t = 15;
  Table tab({"f", "decision round (max over processes)", "5(f+1)",
             "total schedule"});
  for (std::uint32_t f = 0; f <= adaptive_boundary(n_for_t(t), t); f += 2) {
    auto spec = harness::RunSpec::for_t(t);
    adv::AdaptiveLeaderCrash adversary(3, 5, spec.n, f);
    const auto res = harness::run_weak_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(7))),
        harness::always_valid_factory(), adversary);
    Round worst = 0;
    for (const auto& s : res.stats) {
      if (s && s->decided_round > worst) worst = s->decided_round;
    }
    tab.row({u64(res.f()), u64(worst), u64(5 * (res.f() + 1)),
             u64(res.rounds)});
  }
  tab.print();
  std::printf(
      "Decisions land at the end of phase f+1 — the time complexity adapts\n"
      "to f exactly like the word complexity (the early-stopping behaviour\n"
      "Section 4 relates this line of work to).\n");
}

void bm_leader_killer(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  const auto f = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    auto spec = harness::RunSpec::for_t(t);
    adv::AdaptiveLeaderCrash adversary(1, 5, spec.n, f);
    const auto res = harness::run_weak_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(7))),
        harness::always_valid_factory(), adversary);
    benchmark::DoNotOptimize(res.meter.words_correct);
  }
}

BENCHMARK(bm_leader_killer)
    ->ArgsProduct({{10, 15}, {0, 2, 4}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mewc::bench

int main(int argc, char** argv) {
  mewc::bench::heading("E6: silent phases — the adaptivity mechanism");
  mewc::bench::bb_nonsilent_vs_f();
  mewc::bench::wba_nonsilent_vs_f();
  mewc::bench::per_phase_cost();
  mewc::bench::early_stopping();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
