// The paper's Table 1, regenerated as one consolidated artifact: for each
// row, the claimed upper bound next to the measured growth order (log-log
// power-law fit over an n-sweep) and the measured f-dependence.
#include <benchmark/benchmark.h>

#include "ba/fallback/cost_model.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"

namespace mewc::bench {
namespace {

struct Row {
  std::string protocol;
  std::string claim;
  double fitted_n_exponent;
  double r2;
  std::string f_behaviour;
};

/// Fits words ~ n^p at fixed failure mode across a t-sweep.
template <typename RunFn>
stats::LinearFit fit_over_n(RunFn run, std::initializer_list<std::uint32_t> ts) {
  std::vector<double> ns, words;
  for (std::uint32_t t : ts) {
    ns.push_back(n_for_t(t));
    words.push_back(static_cast<double>(run(t)));
  }
  return stats::fit_power_law(ns, words);
}

void overview() {
  std::vector<Row> rows;

  {  // Byzantine Broadcast, O(n(f+1)): fit at f = 0 and report f-slope.
    auto words_at = [](std::uint32_t t) {
      adv::NullAdversary a;
      auto spec = harness::RunSpec::for_t(t);
      return harness::run_bb(spec, 0, Value(1), a).meter.words_correct;
    };
    const auto fit = fit_over_n(words_at, {5u, 10u, 20u, 40u});
    // f-dependence under the worst-case leader killer at n = 41.
    std::vector<double> fs, fw;
    for (std::uint32_t f = 1; f <= 9; f += 2) {
      auto spec = harness::RunSpec::for_t(20);
      std::vector<std::unique_ptr<Adversary>> parts;
      parts.push_back(std::make_unique<adv::CrashAdversary>(
          std::vector<ProcessId>{spec.n - 1}));
      parts.push_back(
          std::make_unique<adv::AdaptiveLeaderCrash>(4, 3, spec.n, f - 1));
      adv::Composite a(std::move(parts));
      const auto res = harness::run_bb(spec, spec.n - 1, Value(1), a);
      fs.push_back(res.f());
      fw.push_back(static_cast<double>(res.meter.words_correct));
    }
    const auto ffit = stats::fit_linear(fs, fw);
    rows.push_back({"Byzantine Broadcast", "O(n(f+1))", fit.slope, fit.r2,
                    "linear in f: +" + fixed2(ffit.slope / n_for_t(20)) +
                        "n words per failure (r2=" + fixed2(ffit.r2) + ")"});
  }

  {  // Weak BA, O(n(f+1)).
    auto words_at = [](std::uint32_t t) {
      adv::NullAdversary a;
      auto spec = harness::RunSpec::for_t(t);
      return harness::run_weak_ba(
                 spec,
                 std::vector<WireValue>(spec.n, WireValue::plain(Value(1))),
                 harness::always_valid_factory(), a)
          .meter.words_correct;
    };
    const auto fit = fit_over_n(words_at, {5u, 10u, 20u, 40u});
    rows.push_back({"Weak BA (multi-valued)", "O(n(f+1))", fit.slope, fit.r2,
                    "fallback never runs while n-f >= ceil((n+t+1)/2)"});
  }

  {  // Strong BA, O(n) with f = 0.
    auto words_at = [](std::uint32_t t) {
      adv::NullAdversary a;
      auto spec = harness::RunSpec::for_t(t);
      return harness::run_strong_ba(spec,
                                    std::vector<Value>(spec.n, Value(1)), a)
          .meter.words_correct;
    };
    const auto fit = fit_over_n(words_at, {5u, 10u, 20u, 40u, 100u});
    rows.push_back({"Strong BA (binary, f=0)", "O(n)", fit.slope, fit.r2,
                    "any f > 0 jumps to the fallback regime"});
  }

  {  // Fallback (Momose-Ren box; substituted).
    auto words_at = [](std::uint32_t t) {
      adv::NullAdversary a;
      auto spec = harness::RunSpec::for_t(t);
      return harness::run_fallback_ba(
                 spec,
                 std::vector<WireValue>(spec.n, WireValue::plain(Value(1))),
                 a)
          .meter.words_correct;
    };
    const auto fit = fit_over_n(words_at, {2u, 5u, 10u, 15u});
    rows.push_back({"A_fallback (substituted DS)",
                    "O(n^2) in the paper (SUB-1: ours is O(n^3))", fit.slope,
                    fit.r2, "flat in f"});
  }

  {  // Baseline for context.
    auto words_at = [](std::uint32_t t) {
      adv::NullAdversary a;
      auto spec = harness::RunSpec::for_t(t);
      return harness::run_ds_bb(spec, 0, Value(1), a).meter.words_correct;
    };
    const auto fit = fit_over_n(words_at, {5u, 10u, 20u});
    rows.push_back({"Dolev-Strong BB (baseline)", "Θ(n^2) always", fit.slope,
                    fit.r2, "independent of f"});
  }

  Table tab({"protocol", "paper's bound", "fitted words ~ n^p", "r^2",
             "f-dependence (measured)"});
  for (const Row& r : rows) {
    tab.row({r.protocol, r.claim, fixed2(r.fitted_n_exponent), fixed2(r.r2),
             r.f_behaviour});
  }
  tab.print();
  std::printf(
      "\nReading: every adaptive protocol fits p ≈ 1 in n (with the claimed\n"
      "f-dependence); the non-adaptive comparators fit p ≈ 2-3. These are\n"
      "the shapes Table 1 claims; constants are implementation-specific.\n");
}

void bm_noop(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(state.iterations());
}
BENCHMARK(bm_noop);

}  // namespace
}  // namespace mewc::bench

int main(int argc, char** argv) {
  mewc::bench::heading("Table 1 — consolidated reproduction");
  mewc::bench::overview();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
