// SMR throughput bench: drives the pipelined multi-instance engine across
// worker counts and (n, f) points, and emits machine-readable
// BENCH_smr_throughput.json so CI can track the amortized-cost story —
// instances/sec scaling with workers, and words/instance growing with f the
// way Table 1's O(n(f+1)) bound says it should.
//
// Two gates are enforced here (exit non-zero on violation):
//  - determinism: the ledger digest, checkpoint count, and merged-meter
//    fingerprint must be bit-identical across every worker count;
//  - health: every failure-free sweep must commit all slots with agreement.
// The >= 3x speedup acceptance target at 8 workers is reported in the JSON
// (speedup_vs_1_worker) for CI hardware to assert; a single-core host runs
// the same sweep and still checks determinism, so the gate degrades to the
// part that is machine-independent.
//
//   bench_smr_throughput [--slots K] [--out BENCH_smr_throughput.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "../tools/argparse.hpp"

#include "check/adversary_registry.hpp"
#include "check/crash.hpp"
#include "check/json.hpp"
#include "common/hash.hpp"
#include "smr/engine.hpp"
#include "smr/recovery.hpp"

namespace mewc::bench {
namespace {

namespace json = check::json;
using Clock = std::chrono::steady_clock;

/// JSON numbers are doubles, so 64-bit digests are emitted as hex strings.
std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Order-sensitive fingerprint of everything a merged meter reports, so
/// "bit-identical meters" is one number CI can diff.
std::uint64_t meter_fingerprint(const Meter& m) {
  std::uint64_t h = mix64(0x5a17e4);
  h = hash_combine(h, m.words_correct);
  h = hash_combine(h, m.messages_correct);
  h = hash_combine(h, m.words_byzantine);
  h = hash_combine(h, m.messages_byzantine);
  h = hash_combine(h, m.logical_sigs_correct);
  for (const std::uint64_t w : m.words_by_process) h = hash_combine(h, w);
  for (const std::uint64_t w : m.words_by_round) h = hash_combine(h, w);
  for (const auto& [kind, words] : m.words_by_kind()) {
    for (const char c : kind) {
      h = hash_combine(h, static_cast<std::uint64_t>(c));
    }
    h = hash_combine(h, words);
  }
  return h;
}

struct SweepResult {
  std::uint32_t workers = 0;
  double seconds = 0;
  std::uint64_t digest = 0;
  std::uint64_t meter_print = 0;
  std::uint64_t total_words = 0;
  std::size_t checkpoints = 0;
  smr::EngineStats stats;
};

SweepResult run_sweep(const smr::EngineConfig& config, std::uint64_t slots,
                      const smr::Ledger::AdversaryFactory& adversary) {
  SweepResult res;
  res.workers = config.workers;
  const Clock::time_point start = Clock::now();
  smr::Engine engine(config);
  for (std::uint64_t s = 0; s < slots; ++s) {
    engine.submit(Value(100 + s), adversary);
  }
  engine.finish();
  res.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  res.digest = engine.ledger().ledger_digest();
  res.meter_print = meter_fingerprint(engine.meter());
  res.total_words = engine.ledger().total_words();
  res.checkpoints = engine.ledger().checkpoints().size();
  res.stats = engine.stats();
  return res;
}

json::Value sweep_json(const SweepResult& r, double base_seconds,
                       std::uint64_t slots) {
  json::Object o;
  o["workers"] = r.workers;
  o["seconds"] = r.seconds;
  o["instances_per_sec"] =
      r.seconds > 0 ? static_cast<double>(slots) / r.seconds : 0.0;
  o["speedup_vs_1_worker"] = r.seconds > 0 ? base_seconds / r.seconds : 0.0;
  o["ledger_digest"] = hex64(r.digest);
  o["meter_fingerprint"] = hex64(r.meter_print);
  o["total_words"] = r.total_words;
  o["checkpoints"] = r.checkpoints;
  o["setup_cache_hits"] = r.stats.setup_cache_hits;
  o["setup_cache_misses"] = r.stats.setup_cache_misses;
  o["max_reorder_depth"] = r.stats.max_reorder_depth;
  o["backpressure_waits"] = r.stats.backpressure_waits;
  return o;
}

int run(int argc, char** argv) {
  std::uint64_t slots = 96;
  std::string out_path = "BENCH_smr_throughput.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--slots" && i + 1 < argc) {
      slots = mewc::tools::parse_u64("--slots", argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--slots K] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  bool ok = true;
  json::Object root;
  root["schema"] = "mewc.bench.smr_throughput.v1";
  root["hardware_threads"] = std::thread::hardware_concurrency();

  // -------------------------------------------------------------------------
  // Section 1: worker sweep at n = 9, f = 0 — the acceptance point. The
  // workload is identical per worker count, so digest + meter fingerprint
  // must not move.
  smr::EngineConfig config;
  config.n = 9;
  config.t = 4;
  config.checkpoint_every = 8;
  {
    json::Object section;
    section["n"] = config.n;
    section["t"] = config.t;
    section["f"] = 0;
    section["slots"] = slots;
    section["checkpoint_every"] = config.checkpoint_every;

    json::Array points;
    SweepResult base;
    bool identical = true;
    for (const std::uint32_t workers : {1u, 2u, 4u, 8u}) {
      config.workers = workers;
      const SweepResult r = run_sweep(config, slots, nullptr);
      if (workers == 1) {
        base = r;
      } else if (r.digest != base.digest ||
                 r.meter_print != base.meter_print ||
                 r.checkpoints != base.checkpoints) {
        identical = false;
      }
      std::fprintf(stderr,
                   "workers=%u  %.2fs  %.0f inst/s  digest=%016llx  "
                   "cache=%llu/%llu\n",
                   workers, r.seconds,
                   r.seconds > 0 ? static_cast<double>(slots) / r.seconds : 0.0,
                   static_cast<unsigned long long>(r.digest),
                   static_cast<unsigned long long>(r.stats.setup_cache_hits),
                   static_cast<unsigned long long>(r.stats.setup_cache_misses));
      points.push_back(sweep_json(r, base.seconds, slots));
    }
    section["points"] = std::move(points);
    section["identical_across_workers"] = identical;
    section["checkpoints_sealed"] = base.checkpoints;
    root["worker_sweep"] = std::move(section);
    if (!identical) {
      std::fprintf(stderr,
                   "FAIL: ledger/meter differ across worker counts\n");
      ok = false;
    }
    // The checkpoint lane must actually run under load, not just be
    // configured: cadence 8 over this many slots seals slots/8 checkpoints
    // or the sweep is not exercising Algorithm 5 at all.
    if (slots >= config.checkpoint_every && base.checkpoints == 0) {
      std::fprintf(stderr, "FAIL: worker sweep sealed no checkpoints\n");
      ok = false;
    }
  }

  // -------------------------------------------------------------------------
  // Section 2: (n, f) sweep — amortized words/instance. Crash-faulty slots
  // are the paper's adaptivity story: cost scales with the faults that
  // actually show up, not with t.
  {
    json::Array points;
    struct Point {
      std::uint32_t n, t, f;
    };
    for (const Point p : {Point{5, 2, 0}, Point{5, 2, 1}, Point{5, 2, 2},
                          Point{9, 4, 0}, Point{9, 4, 2}, Point{9, 4, 4}}) {
      smr::EngineConfig c;
      c.n = p.n;
      c.t = p.t;
      c.workers = 2;
      c.checkpoint_every = 8;
      smr::Ledger::AdversaryFactory adversary;
      if (p.f > 0) {
        adversary = [p, &c](std::uint64_t slot, ProcessId sender) {
          check::AdversaryParams params;
          params.protocol = check::Protocol::kBb;
          params.n = p.n;
          params.t = p.t;
          params.f = p.f;
          params.instance = 1000 + 2 * slot;
          params.seed = c.seed;
          params.sender = sender;
          return check::make_adversary("crash", params);
        };
      }
      const SweepResult r = run_sweep(c, slots, adversary);
      json::Object o;
      o["n"] = p.n;
      o["t"] = p.t;
      o["f"] = p.f;
      o["adversary"] = p.f > 0 ? "crash" : "none";
      o["slots"] = slots;
      o["total_words"] = r.total_words;
      o["words_per_instance"] =
          static_cast<double>(r.total_words) / static_cast<double>(slots);
      o["fallbacks"] = r.stats.fallbacks;
      o["skipped"] = r.stats.skipped;
      o["ledger_digest"] = hex64(r.digest);
      std::fprintf(stderr,
                   "n=%u t=%u f=%u  %.1f words/instance  "
                   "(%llu fallbacks, %llu skipped)\n",
                   p.n, p.t, p.f,
                   static_cast<double>(r.total_words) /
                       static_cast<double>(slots),
                   static_cast<unsigned long long>(r.stats.fallbacks),
                   static_cast<unsigned long long>(r.stats.skipped));
      points.push_back(json::Value(std::move(o)));
      if (slots >= c.checkpoint_every && r.checkpoints == 0) {
        std::fprintf(stderr, "FAIL: n=%u f=%u sealed no checkpoints\n", p.n,
                     p.f);
        ok = false;
      }
    }
    root["nf_sweep"] = std::move(points);
  }

  // -------------------------------------------------------------------------
  // Section 2b: client-op batching x pipeline window — the words-per-op
  // lever. A batch of b commands runs ONE consensus instance on the batch's
  // one-word handle (the paper's per-instance bound is untouched); the blob
  // itself costs n*(b-1) out-of-band dissemination words. Two gates:
  //  - state: the kv digest is bit-identical across every (batch, workers)
  //    point — batching changes framing, never the applied history;
  //  - words: batch 32 cuts words-per-op by >= 8x vs unbatched submit().
  {
    json::Object section;
    const std::uint64_t ops = slots;
    smr::EngineConfig c;
    c.n = 9;
    c.t = 4;
    c.checkpoint_every = 8;
    section["n"] = c.n;
    section["t"] = c.t;
    section["ops"] = ops;
    section["checkpoint_every"] = c.checkpoint_every;

    json::Array points;
    double unbatched_wpo = 0;   // batch=1, workers=1 baseline
    double batch32_wpo = 0;     // batch=32, workers=1
    std::uint64_t base_kv = 0;
    bool kv_identical = true;
    for (const std::uint32_t batch : {1u, 4u, 32u}) {
      std::uint64_t batch_digest = 0;  // ledger digest, workers=1 point
      bool digest_identical = true;
      for (const std::uint32_t workers : {1u, 8u}) {
        c.workers = workers;
        smr::Store store;
        smr::Durability dur(&store);
        c.durability = &dur;
        const Clock::time_point start = Clock::now();
        smr::Engine engine(c);
        std::vector<smr::Command> cmds;
        for (std::uint64_t i = 0; i < ops;) {
          if (batch == 1) {
            engine.submit(check::crash_proposal(c.seed, i).pack());
            ++i;
            continue;
          }
          cmds.clear();
          for (std::uint32_t j = 0; j < batch && i < ops; ++j, ++i) {
            cmds.push_back(check::crash_proposal(c.seed, i));
          }
          engine.submit_batch(cmds);
        }
        engine.finish();
        const double seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        const smr::EngineStats st = engine.stats();
        const std::uint64_t words =
            engine.ledger().total_words() + st.batch_extra_words;
        const double wpo =
            static_cast<double>(words) / static_cast<double>(ops);
        const std::uint64_t kv_digest = dur.kv().digest();

        if (batch == 1 && workers == 1) {
          unbatched_wpo = wpo;
          base_kv = kv_digest;
        }
        if (batch == 32 && workers == 1) batch32_wpo = wpo;
        if (kv_digest != base_kv) kv_identical = false;
        if (workers == 1) {
          batch_digest = engine.ledger().ledger_digest();
        } else if (engine.ledger().ledger_digest() != batch_digest) {
          digest_identical = false;
        }

        json::Object o;
        o["batch"] = batch;
        o["workers"] = workers;
        o["pipeline_window"] = c.queue_capacity + workers;
        o["instances"] = st.submitted;
        o["ops_submitted"] = st.ops_submitted;
        o["consensus_words"] = engine.ledger().total_words();
        o["batch_extra_words"] = st.batch_extra_words;
        o["words_per_op"] = wpo;
        o["ops_per_sec"] =
            seconds > 0 ? static_cast<double>(ops) / seconds : 0.0;
        o["seconds"] = seconds;
        o["ledger_digest"] = hex64(engine.ledger().ledger_digest());
        o["kv_digest"] = hex64(kv_digest);
        std::fprintf(stderr,
                     "batch=%-2u workers=%u  %5.1f words/op  %.0f ops/s  "
                     "kv=%016llx\n",
                     batch, workers, wpo,
                     seconds > 0 ? static_cast<double>(ops) / seconds : 0.0,
                     static_cast<unsigned long long>(kv_digest));
        points.push_back(json::Value(std::move(o)));
      }
      if (!digest_identical) {
        std::fprintf(stderr,
                     "FAIL: batch=%u ledger digest differs across workers\n",
                     batch);
        ok = false;
      }
    }
    section["points"] = std::move(points);
    section["kv_identical_across_points"] = kv_identical;
    const double reduction =
        batch32_wpo > 0 ? unbatched_wpo / batch32_wpo : 0.0;
    section["words_per_op_unbatched"] = unbatched_wpo;
    section["words_per_op_batch32"] = batch32_wpo;
    section["words_per_op_reduction_at_32"] = reduction;
    std::fprintf(stderr,
                 "batching: %.1f -> %.1f words/op (%.1fx reduction)\n",
                 unbatched_wpo, batch32_wpo, reduction);
    if (!kv_identical) {
      std::fprintf(stderr, "FAIL: kv digest differs across batch points\n");
      ok = false;
    }
    if (reduction < 8.0) {
      std::fprintf(stderr,
                   "FAIL: batch 32 reduced words/op by %.2fx (< 8x gate)\n",
                   reduction);
      ok = false;
    }
    root["batch_sweep"] = std::move(section);
  }

  // -------------------------------------------------------------------------
  // Section 3: durability — what the WAL + snapshot hook costs at commit
  // time, and what recovery costs as the durable log grows. Recovery must
  // land on the exact digest of the run it recovers (gated), so these
  // numbers measure a correct recovery, not a fast wrong one.
  {
    json::Object section;
    smr::EngineConfig c;
    c.n = 5;
    c.t = 2;
    c.workers = 2;
    c.checkpoint_every = 8;

    const SweepResult plain = run_sweep(c, slots, nullptr);
    smr::Store store;
    smr::Durability dur(&store);
    c.durability = &dur;
    const SweepResult durable = run_sweep(c, slots, nullptr);
    if (durable.digest != plain.digest) {
      std::fprintf(stderr, "FAIL: durability hook changed the ledger\n");
      ok = false;
    }
    section["slots"] = slots;
    section["seconds_plain"] = plain.seconds;
    section["seconds_durable"] = durable.seconds;
    section["wal_overhead_ratio"] =
        plain.seconds > 0 ? durable.seconds / plain.seconds : 0.0;
    section["wal_bytes"] = store.wal.size();
    section["snapshot_bytes"] = store.snapshot.size();
    std::fprintf(stderr,
                 "durable=%.2fs plain=%.2fs (%.2fx)  wal=%zu B  snap=%zu B\n",
                 durable.seconds, plain.seconds,
                 plain.seconds > 0 ? durable.seconds / plain.seconds : 0.0,
                 store.wal.size(), store.snapshot.size());

    // Recovery time vs durable log length, from the snapshot (the real
    // path), from genesis (snapshot lost), and via certified catch-up.
    json::Array points;
    for (const std::uint64_t k : {slots / 4, slots / 2, slots}) {
      smr::Store s;
      smr::Durability hook(&s);
      smr::EngineConfig dc = c;
      dc.durability = &hook;
      const SweepResult run = run_sweep(dc, k, nullptr);

      smr::Ledger::Config lc;
      lc.n = dc.n;
      lc.t = dc.t;
      lc.seed = dc.seed;
      lc.checkpoint_every = dc.checkpoint_every;

      smr::Store snap_copy = s;
      Clock::time_point t0 = Clock::now();
      const smr::Recovered from_snap = smr::recover(lc, snap_copy);
      const double snap_seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();

      smr::Store genesis_copy = s;
      genesis_copy.snapshot.clear();
      t0 = Clock::now();
      const smr::Recovered from_genesis = smr::recover(lc, genesis_copy);
      const double genesis_seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();

      t0 = Clock::now();
      const smr::CaughtUp caught = smr::catch_up(lc, s);
      const double catchup_seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();

      const bool converged =
          from_snap.state.slots.size() == k &&
          from_genesis.state.slots.size() == k && caught.stats.ok &&
          smr::Ledger::replay_digest(lc.seed, from_snap.state.slots) ==
              run.digest &&
          smr::Ledger::replay_digest(lc.seed, from_genesis.state.slots) ==
              run.digest &&
          smr::Ledger::replay_digest(lc.seed, caught.state.slots) ==
              run.digest;
      if (!converged) {
        std::fprintf(stderr, "FAIL: recovery diverged at %llu slots\n",
                     static_cast<unsigned long long>(k));
        ok = false;
      }

      json::Object o;
      o["slots"] = k;
      o["wal_bytes"] = s.wal.size();
      o["recover_from_snapshot_seconds"] = snap_seconds;
      o["snapshot_slot"] = from_snap.stats.snapshot_slot;
      o["records_replayed_past_snapshot"] = from_snap.stats.records_replayed;
      o["recover_from_genesis_seconds"] = genesis_seconds;
      o["catchup_seconds"] = catchup_seconds;
      o["catchup_words_transferred"] = caught.stats.words_transferred;
      std::fprintf(
          stderr,
          "recover k=%-3llu  snapshot %.4fs (replay %llu)  genesis %.4fs  "
          "catch-up %.4fs (%llu words)\n",
          static_cast<unsigned long long>(k), snap_seconds,
          static_cast<unsigned long long>(from_snap.stats.records_replayed),
          genesis_seconds, catchup_seconds,
          static_cast<unsigned long long>(caught.stats.words_transferred));
      points.push_back(json::Value(std::move(o)));
    }
    section["recovery"] = std::move(points);
    root["durability"] = std::move(section);
  }

  // -------------------------------------------------------------------------
  // Section 4: crypto-backend sweep — what real pairing-based verification
  // costs end to end, and proof that it changes nothing but wall clock. The
  // ledger digest is tag-free (slot values, skips, words), so it must be
  // bit-identical across backends (gated — this is the bench-side mirror of
  // tests/crypto/differential_test.cpp). The pairing/memo counters quantify
  // the amortization: batch verification plus per-family memoization keep
  // cold pairings per instance near-constant while memo hits absorb the
  // cross-phase and cross-slot repeats.
  {
    json::Object section;
    smr::EngineConfig c;
    c.n = 5;
    c.t = 2;
    c.workers = 4;
    c.checkpoint_every = 8;
    section["n"] = c.n;
    section["t"] = c.t;
    section["slots"] = slots;

    json::Array points;
    SweepResult ideal;
    for (const ThresholdBackend backend :
         {ThresholdBackend::kSim, ThresholdBackend::kShamir,
          ThresholdBackend::kReal}) {
      c.backend = backend;
      const SweepResult r = run_sweep(c, slots, nullptr);
      if (backend == ThresholdBackend::kSim) {
        ideal = r;
      } else if (r.digest != ideal.digest ||
                 r.total_words != ideal.total_words) {
        std::fprintf(stderr,
                     "FAIL: backend=%s diverged from the ideal ledger\n",
                     backend_name(backend));
        ok = false;
      }
      json::Object o;
      o["backend"] = backend_name(backend);
      o["seconds"] = r.seconds;
      o["instances_per_sec"] =
          r.seconds > 0 ? static_cast<double>(slots) / r.seconds : 0.0;
      o["slowdown_vs_sim"] =
          ideal.seconds > 0 ? r.seconds / ideal.seconds : 0.0;
      o["ledger_digest"] = hex64(r.digest);
      o["total_words"] = r.total_words;
      o["crypto_pairings"] = r.stats.crypto_pairings;
      o["crypto_memo_hits"] = r.stats.crypto_memo_hits;
      std::fprintf(
          stderr, "backend=%-6s  %.3fs  pairings=%llu memo_hits=%llu\n",
          backend_name(backend), r.seconds,
          static_cast<unsigned long long>(r.stats.crypto_pairings),
          static_cast<unsigned long long>(r.stats.crypto_memo_hits));
      if (backend == ThresholdBackend::kReal &&
          (r.stats.crypto_pairings == 0 || r.stats.crypto_memo_hits == 0)) {
        std::fprintf(stderr,
                     "FAIL: real backend ran without pairing/memo traffic\n");
        ok = false;
      }
      if (backend == ThresholdBackend::kReal) {
        // Scalar copies for the perf-trajectory gate: the counters are
        // deterministic for this fixed workload (any drift means the
        // amortization changed), the slowdown ratio is wall-clock and runs
        // advisory in CI.
        section["real_pairings"] = r.stats.crypto_pairings;
        section["real_memo_hits"] = r.stats.crypto_memo_hits;
        section["real_slowdown_vs_sim"] =
            ideal.seconds > 0 ? r.seconds / ideal.seconds : 0.0;
      }
      points.push_back(json::Value(std::move(o)));
    }
    section["points"] = std::move(points);
    root["backend_sweep"] = std::move(section);
  }

  if (!check::json::write_file(out_path, json::Value(std::move(root)))) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace mewc::bench

int main(int argc, char** argv) { return mewc::bench::run(argc, argv); }
