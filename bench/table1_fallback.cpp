// Experiment E4 — Table 1, row "Strong BA: O(n^2) multi-valued
// (Momose-Ren)" and the Omega(nf) lower-bound shape.
//
// Measures the fallback-regime cost: the always-fallback baseline (the
// non-adaptive strategy: run A_fallback unconditionally) against the
// adaptive weak BA, plus the measured-vs-modeled fallback cost (our
// Dolev-Strong substitute is Theta(n^3) worst case; Momose-Ren's protocol
// is Theta(n^2) — DESIGN.md SUB-1 reports both so the Table 1 shape can be
// compared honestly).
#include <benchmark/benchmark.h>

#include "ba/fallback/cost_model.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"

namespace mewc::bench {
namespace {

void fallback_cost_vs_n() {
  subheading("A_fallback standalone cost vs n (f = 0, all participate)");
  Table tab({"n", "measured words", "measured/n^3", "modeled MR words",
             "modeled/n^2"});
  std::vector<double> ns, words;
  for (std::uint32_t t : {2u, 5u, 10u, 15u, 20u}) {
    const auto n = n_for_t(t);
    adv::NullAdversary adversary;
    auto spec = harness::RunSpec::for_t(t);
    const auto res = harness::run_fallback_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(1))),
        adversary);
    ns.push_back(n);
    words.push_back(static_cast<double>(res.meter.words_correct));
    const double n3 = static_cast<double>(n) * n * n;
    tab.row({u64(n), u64(res.meter.words_correct),
             fixed2(res.meter.words_correct / n3),
             u64(fallback::modeled_momose_ren_words(n)),
             fixed2(static_cast<double>(fallback::modeled_momose_ren_words(n)) /
                    (static_cast<double>(n) * n))});
  }
  tab.print();
  const auto fit = stats::fit_power_law(ns, words);
  std::printf(
      "Fitted growth order of the substituted fallback: words ~ n^%.2f "
      "(r2=%.4f); the paper's Momose-Ren box is n^2 (modeled column).\n",
      fit.slope, fit.r2);
}

void adaptive_vs_always_fallback() {
  subheading(
      "who wins: adaptive weak BA vs always-fallback baseline (crash, n=21)");
  const std::uint32_t t = 10;
  Table tab({"f", "adaptive words", "always-fallback words", "factor"});
  for (std::uint32_t f : {0u, 1u, 3u, 5u, 8u, 10u}) {
    auto spec = harness::RunSpec::for_t(t);
    adv::CrashAdversary a1(first_f(f)), a2(first_f(f));
    const auto adaptive = harness::run_weak_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(7))),
        harness::always_valid_factory(), a1);
    const auto baseline = harness::run_fallback_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(7))), a2);
    tab.row({u64(f), u64(adaptive.meter.words_correct),
             u64(baseline.meter.words_correct),
             fixed2(static_cast<double>(baseline.meter.words_correct) /
                    static_cast<double>(
                        std::max<std::uint64_t>(1,
                                                adaptive.meter
                                                    .words_correct)))});
  }
  tab.print();
  std::printf(
      "Shape check: the adaptive protocol wins by a factor shrinking as f\n"
      "approaches t — the crossover the paper's adaptivity targets (runs in\n"
      "common, low-f cases cost a vanishing fraction of the worst case).\n");
}

void crash_resilience_of_fallback() {
  subheading("A_fallback words vs f (n = 21, crash): flat in f");
  const std::uint32_t t = 10;
  Table tab({"f", "words", "agreement"});
  for (std::uint32_t f : {0u, 2u, 5u, 10u}) {
    auto spec = harness::RunSpec::for_t(t);
    adv::CrashAdversary adversary(first_f(f));
    const auto res = harness::run_fallback_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(3))),
        adversary);
    tab.row({u64(f), u64(res.meter.words_correct),
             res.agreement() ? "yes" : "NO"});
  }
  tab.print();
}

void bm_fallback(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t words = 0;
  for (auto _ : state) {
    auto spec = harness::RunSpec::for_t(t);
    adv::NullAdversary adversary;
    const auto res = harness::run_fallback_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(1))),
        adversary);
    words = res.meter.words_correct;
    benchmark::DoNotOptimize(words);
  }
  state.counters["words"] = static_cast<double>(words);
  state.counters["n"] = n_for_t(t);
}

BENCHMARK(bm_fallback)->Arg(2)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mewc::bench

int main(int argc, char** argv) {
  mewc::bench::heading(
      "Table 1 / E4: fallback-regime strong BA (Momose-Ren black box)");
  mewc::bench::fallback_cost_vs_n();
  mewc::bench::adaptive_vs_always_fallback();
  mewc::bench::crash_resilience_of_fallback();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
