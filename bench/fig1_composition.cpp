// Experiment E5 — Figure 1: the composition of the paper's solutions.
//
// Figure 1 is the diagram "BB(n(f+1)) uses [weak BA(n(f+1)) uses
// [Momose-Ren BA(n^2)]]". This bench runs the composed stack and attributes
// every metered word to its layer, for scenarios that exercise successively
// deeper layers: a correct sender touches only the outer layers; a silent
// sender drives the vetting; a maximal crash drives the run into the
// innermost (fallback) box.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace mewc::bench {
namespace {

struct Layers {
  std::uint64_t dissemination = 0;  // Algorithm 1 round 1
  std::uint64_t vetting = 0;        // Algorithm 2 phases
  std::uint64_t wba_phases = 0;     // Algorithm 4 phases
  std::uint64_t help_window = 0;    // Algorithm 3 help + safety window
  std::uint64_t fallback = 0;       // A_fallback (Momose-Ren box)
};

Layers attribute(const harness::BbResult& res, std::uint32_t n,
                 std::uint32_t t) {
  Layers l;
  const Round wba_first = 3 * n + 2;
  const Round phases_end = wba_first - 1 + 5 * n;
  const Round window_end = phases_end + 4;
  l.dissemination = res.meter.words_in_rounds(1, 2);
  l.vetting = res.meter.words_in_rounds(2, wba_first);
  l.wba_phases = res.meter.words_in_rounds(wba_first, phases_end + 1);
  l.help_window = res.meter.words_in_rounds(phases_end + 1, window_end + 1);
  l.fallback = res.meter.words_in_rounds(window_end + 1, res.rounds + 1);
  (void)t;
  return l;
}

void composition_table() {
  const std::uint32_t t = 10;
  const auto n = n_for_t(t);
  subheading("per-layer word attribution of the composed BB stack (n = 21)");
  Table tab({"scenario", "dissem.", "vetting (Alg 2)", "weak BA (Alg 3/4)",
             "help+window", "fallback (MR box)", "total", "decision"});

  auto row = [&](const char* name, const harness::BbResult& res) {
    const Layers l = attribute(res, n, t);
    tab.row({name, u64(l.dissemination), u64(l.vetting), u64(l.wba_phases),
             u64(l.help_window), u64(l.fallback),
             u64(res.meter.words_correct),
             res.decision().is_bottom() ? "⊥" : u64(res.decision().raw)});
  };

  auto spec = harness::RunSpec::for_t(t);
  {
    adv::NullAdversary a;
    row("correct sender, f=0", harness::run_bb(spec, 0, Value(5), a));
  }
  {
    adv::CrashAdversary a({0});  // sender silent
    row("silent sender, f=1", harness::run_bb(spec, 0, Value(5), a));
  }
  {
    adv::BbEquivocatingSender a(0, spec.instance,
                                adv::SenderMode::kEquivocate, Value(5),
                                Value(6));
    row("equivocating sender", harness::run_bb(spec, 0, Value(5), a));
  }
  {
    adv::CrashAdversary a(first_f(t));  // maximal crash (sender included)
    row("f = t crash", harness::run_bb(spec, 0, Value(5), a));
  }
  tab.print();
  std::printf(
      "Reading the figure: each scenario activates the boxes inside-out —\n"
      "failure-free runs never leave the outer boxes; only f = Θ(t) runs\n"
      "reach the innermost Momose-Ren box, exactly as Figure 1 composes\n"
      "the solutions.\n");
}

void words_by_kind() {
  subheading("where the words go: per-message-kind attribution (n = 21)");
  const std::uint32_t t = 10;
  auto spec = harness::RunSpec::for_t(t);
  Table tab({"scenario", "kind", "words"});
  auto rows_for = [&](const char* scenario, const harness::BbResult& res) {
    for (const auto& [kind, words] : res.meter.words_by_kind()) {
      tab.row({scenario, kind, u64(words)});
    }
  };
  {
    adv::NullAdversary a;
    rows_for("f=0", harness::run_bb(spec, 0, Value(5), a));
  }
  {
    adv::CrashAdversary a({0});
    rows_for("silent sender", harness::run_bb(spec, 0, Value(5), a));
  }
  tab.print();
  std::printf(
      "Failure-free, the whole bill is one dissemination plus one weak-BA\n"
      "phase (propose/vote/commit/decide/finalized); the silent-sender run\n"
      "adds exactly one vetting phase (help_req/idk/leader_value).\n");
}

void primitive_usage() {
  subheading("which primitive decided the run");
  const std::uint32_t t = 5;
  Table tab({"scenario", "decided via", "fallback participants"});
  auto spec = harness::RunSpec::for_t(t);
  {
    adv::NullAdversary a;
    const auto res = harness::run_bb(spec, 0, Value(5), a);
    tab.row({"f=0", "weak BA phase certificate",
             u64(res.any_fallback() ? spec.n : 0)});
  }
  {
    adv::CrashAdversary a(first_f(t));
    const auto res = harness::run_bb(spec, 0, Value(5), a);
    std::uint32_t participants = 0;
    for (const auto& s : res.stats) {
      participants += (s && s->fallback_participant) ? 1 : 0;
    }
    tab.row({"f=t", "A_fallback (strong unanimity)", u64(participants)});
  }
  tab.print();
}

void bm_composed_bb(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    auto spec = harness::RunSpec::for_t(t);
    adv::NullAdversary a;
    const auto res = harness::run_bb(spec, 0, Value(5), a);
    benchmark::DoNotOptimize(res.meter.words_correct);
  }
  state.counters["n"] = n_for_t(t);
}

BENCHMARK(bm_composed_bb)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mewc::bench

int main(int argc, char** argv) {
  mewc::bench::heading("Figure 1 / E5: composition of the solutions");
  mewc::bench::composition_table();
  mewc::bench::words_by_kind();
  mewc::bench::primitive_usage();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
