// Experiment E8 — the Dolev-Reischuk signature bound vs word complexity.
//
// Dolev-Reischuk (1985): authenticated BB needs Omega(nt) signatures even
// failure-free. The paper's starting point is that this does NOT bound the
// word complexity once threshold schemes compress k signatures into one
// word. This bench measures both quantities side by side at f = 0: logical
// signatures transferred stay Theta(n*t) (resp. Theta(n^2) for the
// baseline), while words collapse to Theta(n).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace mewc::bench {
namespace {

void separation_table() {
  subheading("failure-free: logical signatures transferred vs words");
  Table tab({"protocol", "n", "logical sigs", "sigs/(n*t)", "words",
             "words/n"});
  for (std::uint32_t t : {5u, 10u, 20u, 40u}) {
    const auto n = n_for_t(t);
    const double nt = static_cast<double>(n) * t;
    {
      adv::NullAdversary a;
      auto spec = harness::RunSpec::for_t(t);
      const auto res = harness::run_bb(spec, 0, Value(1), a);
      tab.row({"adaptive BB", u64(n), u64(res.meter.logical_sigs_correct),
               fixed2(res.meter.logical_sigs_correct / nt),
               u64(res.meter.words_correct),
               fixed2(static_cast<double>(res.meter.words_correct) / n)});
    }
    {
      adv::NullAdversary a;
      auto spec = harness::RunSpec::for_t(t);
      const auto res = harness::run_strong_ba(
          spec, std::vector<Value>(spec.n, Value(1)), a);
      tab.row({"strong BA (Alg 5)", u64(n),
               u64(res.meter.logical_sigs_correct),
               fixed2(res.meter.logical_sigs_correct / nt),
               u64(res.meter.words_correct),
               fixed2(static_cast<double>(res.meter.words_correct) / n)});
    }
    {
      adv::NullAdversary a;
      auto spec = harness::RunSpec::for_t(t);
      const auto res = harness::run_ds_bb(spec, 0, Value(1), a);
      tab.row({"Dolev-Strong BB", u64(n),
               u64(res.meter.logical_sigs_correct),
               fixed2(res.meter.logical_sigs_correct / nt),
               u64(res.meter.words_correct),
               fixed2(static_cast<double>(res.meter.words_correct) / n)});
    }
  }
  tab.print();
  std::printf(
      "Shape check: every protocol moves Theta(nt) logical signatures\n"
      "(Dolev-Reischuk is not violated), but only the threshold-compressed\n"
      "protocols get words/n flat — the separation the paper builds on.\n");
}

void signing_operations() {
  subheading("local signing operations at f = 0 (individual signatures)");
  Table tab({"protocol", "n", "individual signs issued"});
  for (std::uint32_t t : {10u, 20u}) {
    const auto n = n_for_t(t);
    adv::NullAdversary a1, a2;
    auto spec = harness::RunSpec::for_t(t);
    const auto bb = harness::run_bb(spec, 0, Value(1), a1);
    const auto ds = harness::run_ds_bb(spec, 0, Value(1), a2);
    tab.row({"adaptive BB", u64(n), u64(bb.signatures_issued)});
    tab.row({"Dolev-Strong BB", u64(n), u64(ds.signatures_issued)});
  }
  tab.print();
}

void bm_signature_accounting(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    adv::NullAdversary a;
    auto spec = harness::RunSpec::for_t(t);
    const auto res = harness::run_bb(spec, 0, Value(1), a);
    benchmark::DoNotOptimize(res.meter.logical_sigs_correct);
  }
}

BENCHMARK(bm_signature_accounting)->Arg(5)->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mewc::bench

int main(int argc, char** argv) {
  mewc::bench::heading(
      "E8: Dolev-Reischuk Omega(nt) signatures vs O(n) words (f = 0)");
  mewc::bench::separation_table();
  mewc::bench::signing_operations();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
