// Experiment E9 (extension) — resilience ablation (paper Section 8).
//
// The paper closes by observing that BB and weak BA carry over to any
// resilience n = αt+β (α > 1, β > 0): the ceil((n+t+1)/2) quorum keeps its
// intersection property, and a wider gap n − 2t widens the adaptive regime
// f <= n − ceil((n+t+1)/2). At n = 3t+1 the protocols are adaptive for
// every f <= t — connecting this paper to Spiegelman's (DISC 2021)
// n = 3t+1 setting. This bench sweeps the resilience gap and reports the
// adaptive boundary and the realized cost at f = t.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace mewc::bench {
namespace {

void boundary_vs_gap() {
  subheading("adaptive boundary vs resilience gap (t = 6)");
  const std::uint32_t t = 6;
  Table tab({"n", "n as", "quorum", "adaptive while f <=",
             "covers f = t?"});
  for (std::uint32_t n : {2 * t + 1, 2 * t + 3, 5 * t / 2 + 1, 3 * t + 1,
                          4 * t + 1}) {
    const std::uint32_t q = commit_quorum(n, t);
    const std::uint32_t boundary = n - q;
    std::string shape = "~" + fixed2(static_cast<double>(n) / t) + "t";
    tab.row({u64(n), shape, u64(q), u64(boundary),
             boundary >= t ? "yes" : "no"});
  }
  tab.print();
}

void cost_at_max_f_vs_gap() {
  subheading("weak BA cost at f = t crash, across resilience (t = 4)");
  const std::uint32_t t = 4;
  Table tab({"n", "words", "fallback", "help reqs"});
  for (std::uint32_t n : {2 * t + 1, 2 * t + 3, 3 * t + 1, 4 * t + 1}) {
    auto spec = harness::RunSpec::with(n, t);
    adv::CrashAdversary adversary(first_f(t));
    const auto res = harness::run_weak_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(7))),
        harness::always_valid_factory(), adversary);
    tab.row({u64(n), u64(res.meter.words_correct),
             res.any_fallback() ? "yes" : "no", u64(res.help_reqs_sent())});
  }
  tab.print();
  std::printf(
      "Shape check: as the gap n-2t grows, the same worst-case failure\n"
      "count flips from the fallback regime to the cheap adaptive path —\n"
      "Section 8's remark, measured.\n");
}

void bb_validity_across_resilience() {
  subheading("BB across resilience, correct sender, f = t crash (t = 3)");
  const std::uint32_t t = 3;
  Table tab({"n", "decision == v_sender", "words"});
  for (std::uint32_t n : {2 * t + 1, 3 * t + 1, 5 * t + 1}) {
    auto spec = harness::RunSpec::with(n, t);
    adv::CrashAdversary adversary(first_f(t));
    const auto res = harness::run_bb(spec, n - 1, Value(6), adversary);
    tab.row({u64(n), res.decision() == Value(6) ? "yes" : "NO",
             u64(res.meter.words_correct)});
  }
  tab.print();
}

void bm_resilience(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto t = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    auto spec = harness::RunSpec::with(n, t);
    adv::CrashAdversary adversary(first_f(t));
    const auto res = harness::run_weak_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(7))),
        harness::always_valid_factory(), adversary);
    benchmark::DoNotOptimize(res.meter.words_correct);
  }
}

BENCHMARK(bm_resilience)
    ->Args({9, 4})
    ->Args({13, 4})
    ->Args({17, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mewc::bench

int main(int argc, char** argv) {
  mewc::bench::heading(
      "E9 (extension): resilience ablation, n = αt+β (Section 8)");
  mewc::bench::boundary_vs_gap();
  mewc::bench::cost_at_max_f_vs_gap();
  mewc::bench::bb_validity_across_resilience();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
