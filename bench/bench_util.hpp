// Shared helpers for the Table 1 / Figure 1 bench binaries: fixed-width
// table printing in the style of the paper's rows, plus common run setups.
// Each bench binary prints its paper-style tables first (the reproduction
// artifact) and then runs google-benchmark timings.
#pragma once

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"

namespace mewc::bench {

inline void heading(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void subheading(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

  void print() const {
    std::vector<std::size_t> width(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      width[c] = columns_[c].size();
      for (const auto& r : rows_) {
        if (c < r.size()) width[c] = std::max(width[c], r[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t c = 0; c < columns_.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(width[c]), s.c_str());
      }
      std::printf("\n");
    };
    line(columns_);
    std::printf("|");
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      std::printf("%s|", std::string(width[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string u64(std::uint64_t v) { return std::to_string(v); }

inline std::string fixed2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

inline std::vector<ProcessId> first_f(std::uint32_t f) {
  std::vector<ProcessId> v;
  for (std::uint32_t i = 0; i < f; ++i) v.push_back(i);
  return v;
}

/// The largest f for which the adaptive regime holds at (n, t).
inline std::uint32_t adaptive_boundary(std::uint32_t n, std::uint32_t t) {
  return n - commit_quorum(n, t);
}

/// Number of phase windows (fixed length, back to back) that carried any
/// correct traffic — the observable non-silent phase count, including
/// phases whose leader was corrupted mid-phase.
inline std::uint32_t active_windows(const Meter& m, Round first, Round len,
                                    std::uint64_t count) {
  std::uint32_t active = 0;
  for (std::uint64_t j = 0; j < count; ++j) {
    const Round lo = first + static_cast<Round>(j * len);
    if (m.words_in_rounds(lo, lo + len) > 0) ++active;
  }
  return active;
}

}  // namespace mewc::bench
