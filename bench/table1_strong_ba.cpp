// Experiment E3 — Table 1, row "Strong BA: O(n) with f = 0, binary".
//
// Algorithm 5's failure-free fast path is exactly four leader rounds of
// one-to-two-word messages: total words linear in n, zero fallback traffic
// (Lemma 8). Any single failure kills the (n, n)-certificate and the cost
// jumps to the fallback regime.
#include <benchmark/benchmark.h>

#include "ba/fallback/cost_model.hpp"
#include "bench_util.hpp"

namespace mewc::bench {
namespace {

harness::SbaResult run_sba(std::uint32_t t, std::uint32_t f) {
  auto spec = harness::RunSpec::for_t(t);
  adv::CrashAdversary adversary(first_f(f) /* may include the leader */);
  return harness::run_strong_ba(spec, std::vector<Value>(spec.n, Value(1)),
                                adversary);
}

void words_vs_n_failure_free() {
  subheading("strong BA words vs n (f = 0; paper: O(n), 4 leader rounds)");
  Table tab({"n", "words", "words/n", "all fast", "fallback traffic"});
  for (std::uint32_t t : {5u, 10u, 20u, 40u, 60u, 100u}) {
    const auto n = n_for_t(t);
    adv::NullAdversary adversary;
    auto spec = harness::RunSpec::for_t(t);
    const auto res = harness::run_strong_ba(
        spec, std::vector<Value>(spec.n, Value(1)), adversary);
    tab.row({u64(n), u64(res.meter.words_correct),
             fixed2(static_cast<double>(res.meter.words_correct) / n),
             res.all_fast() ? "yes" : "no",
             u64(res.meter.words_in_rounds(5, res.rounds + 1))});
  }
  tab.print();
}

void cost_jump_at_first_failure() {
  subheading("strong BA cost jump at the first failure (n = 21)");
  const std::uint32_t t = 10;
  const auto n = n_for_t(t);
  Table tab({"f", "words", "fallback", "modeled Momose-Ren words"});
  for (std::uint32_t f : {0u, 1u, 2u, 5u, 10u}) {
    const auto res = run_sba(t, f);
    tab.row({u64(f), u64(res.meter.words_correct),
             res.any_fallback() ? "yes" : "no",
             res.any_fallback() ? u64(fallback::modeled_momose_ren_words(n))
                                : std::string("-")});
  }
  tab.print();
  std::printf(
      "Shape check: O(n) at f = 0, then a one-step jump to the fallback\n"
      "regime — the paper's \"linear in the failure-free case, quadratic\n"
      "otherwise\" (our substituted fallback measures cubic; the modeled\n"
      "column is the Momose-Ren quadratic, DESIGN.md SUB-1).\n");
}

void leader_misbehaviour() {
  subheading("strong BA under Byzantine leader strategies (n = 11)");
  const std::uint32_t t = 5;
  Table tab({"strategy", "words", "agreement", "decision"});
  auto run_with = [&](const char* name, Adversary& adversary,
                      std::vector<Value> inputs) {
    auto spec = harness::RunSpec::for_t(t);
    const auto res = harness::run_strong_ba(spec, inputs, adversary);
    tab.row({name, u64(res.meter.words_correct),
             res.agreement() ? "yes" : "NO", u64(res.decision().raw)});
  };
  auto spec = harness::RunSpec::for_t(t);
  {
    adv::Alg5Withhold a(spec.instance, adv::Alg5Mode::kSilent);
    run_with("silent leader", a, std::vector<Value>(spec.n, Value(1)));
  }
  {
    adv::Alg5Withhold a(spec.instance, adv::Alg5Mode::kHideDecide, 1);
    run_with("hide decide cert", a, std::vector<Value>(spec.n, Value(1)));
  }
  {
    adv::Alg5Withhold a(spec.instance, adv::Alg5Mode::kSplitPropose);
    std::vector<Value> mixed;
    for (std::uint32_t i = 0; i < spec.n; ++i) mixed.push_back(Value(i % 2));
    run_with("split propose certs", a, mixed);
  }
  tab.print();
}

void bm_strong_ba(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  const auto f = static_cast<std::uint32_t>(state.range(1));
  std::uint64_t words = 0;
  for (auto _ : state) {
    const auto res = run_sba(t, f);
    words = res.meter.words_correct;
    benchmark::DoNotOptimize(words);
  }
  state.counters["words"] = static_cast<double>(words);
  state.counters["n"] = n_for_t(t);
}

BENCHMARK(bm_strong_ba)
    ->ArgsProduct({{5, 10, 20, 40}, {0}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_strong_ba)
    ->ArgsProduct({{5, 10}, {1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mewc::bench

int main(int argc, char** argv) {
  mewc::bench::heading(
      "Table 1 / E3: strong binary BA, O(n) failure-free, n = 2t+1");
  mewc::bench::words_vs_n_failure_free();
  mewc::bench::cost_jump_at_first_failure();
  mewc::bench::leader_misbehaviour();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
