// Substrate perf-regression bench: measures the simulation loop itself —
// rounds/sec and messages/sec for a pure send/deliver workload, cells/sec
// over the campaign smoke grid — and counts heap allocations on both paths
// via a global operator new override. Emits machine-readable
// BENCH_sim_substrate.json so CI can diff runs; the word-count totals
// double as a behaviour fingerprint (an optimization that changes them is
// not an optimization, it is a bug).
//
//   bench_substrate_regression --grid tools/grids/smoke.json \
//                              --out BENCH_sim_substrate.json [--no-pool]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "check/campaign.hpp"
#include "check/json.hpp"
#include "check/runner.hpp"
#include "common/hash.hpp"
#include "net/arena.hpp"
#include "sim/executor.hpp"
#include "wire/codec.hpp"
#include "wire/view.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mewc::bench {
namespace {

namespace json = check::json;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Section 1: pure-substrate microbench — broadcast-heavy executor rounds
// with a trivial protocol, so everything measured is the send/deliver path.

struct BeatPayload final : Payload {
  Round sent_in = 0;
  explicit BeatPayload(Round r) : sent_in(r) {}
  [[nodiscard]] std::size_t words() const override { return 1; }
  [[nodiscard]] const char* kind() const override { return "bench.beat"; }
};

class BeatProcess final : public IProcess {
 public:
  void on_send(Round r, Outbox& out) override {
    out.broadcast(pool::make<BeatPayload>(r));
  }
  void on_receive(Round, std::span<const Message> inbox) override {
    received += inbox.size();
  }
  std::size_t received = 0;
};

struct MicrobenchResult {
  std::uint32_t n = 0;
  Round rounds = 0;
  double seconds = 0;
  std::uint64_t messages = 0;        // link-crossing deliveries
  std::uint64_t words = 0;           // metered words (fingerprint)
  std::uint64_t allocs = 0;          // steady-state, after warm-up
  std::uint64_t warmup_allocs = 0;   // first pass, pools cold
};

MicrobenchResult run_microbench(std::uint32_t n, Round rounds) {
  MicrobenchResult res;
  res.n = n;
  res.rounds = rounds;

  const std::uint32_t t = (n - 1) / 2;
  ThresholdFamily family(n, t);
  std::vector<KeyBundle> bundles;
  std::vector<std::unique_ptr<IProcess>> procs;
  for (ProcessId p = 0; p < n; ++p) {
    bundles.push_back(family.issue_bundle(p));
    procs.push_back(std::make_unique<BeatProcess>());
  }
  Adversary null_adv;
  Executor exec(family, std::move(bundles), std::move(procs), null_adv);

  const std::uint64_t before_warmup = allocations();
  exec.run(rounds);  // warm-up: pools fill, every buffer reaches capacity
  res.warmup_allocs = allocations() - before_warmup;

  const std::uint64_t before = allocations();
  const Clock::time_point start = Clock::now();
  exec.run(rounds);  // measured steady state: same schedule again
  res.seconds = seconds_since(start);
  res.allocs = allocations() - before;
  res.messages = exec.meter().messages_correct / 2;  // measured pass only
  res.words = exec.meter().words_correct;
  return res;
}

json::Value microbench_json(const MicrobenchResult& r) {
  json::Object o;
  o["n"] = r.n;
  o["rounds"] = r.rounds;
  o["seconds"] = r.seconds;
  o["rounds_per_sec"] = r.rounds / r.seconds;
  o["messages_per_sec"] = r.messages / r.seconds;
  o["steady_state_allocs"] = r.allocs;
  o["steady_state_allocs_per_round"] =
      static_cast<double>(r.allocs) / r.rounds;
  o["warmup_allocs"] = r.warmup_allocs;
  o["words_correct_fingerprint"] = r.words;
  return o;
}

// ---------------------------------------------------------------------------
// Section 2: campaign smoke grid — the end-to-end cost of a cell, including
// setup (family + key issuance), the run, and invariant-relevant metering.

struct CampaignResult {
  std::uint64_t cells = 0;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t words = 0;  // fingerprint: must not move across revisions
  std::uint64_t allocs = 0;
  double seconds = 0;
};

CampaignResult run_campaign_bench(const check::GridSpec& grid) {
  CampaignResult res;
  const std::vector<check::CellSpec> cells = grid.enumerate();
  check::RunOptions opts;
  opts.record_messages = false;  // campaigns run this way; streams are replay-only

  const std::uint64_t before = allocations();
  const Clock::time_point start = Clock::now();
  for (const check::CellSpec& cell : cells) {
    const check::RunRecord rec = check::run_cell(cell, opts);
    res.rounds += rec.rounds;
    res.messages += rec.meter.messages_correct + rec.meter.messages_byzantine;
    res.words += rec.meter.words_correct;
  }
  res.seconds = seconds_since(start);
  res.allocs = allocations() - before;
  res.cells = cells.size();
  return res;
}

json::Value campaign_json(const CampaignResult& r) {
  json::Object o;
  o["cells"] = r.cells;
  o["seconds"] = r.seconds;
  o["cells_per_sec"] = r.cells / r.seconds;
  o["rounds_total"] = r.rounds;
  o["rounds_per_sec"] = r.rounds / r.seconds;
  o["messages_total"] = r.messages;
  o["allocs"] = r.allocs;
  o["allocs_per_cell"] = static_cast<double>(r.allocs) / r.cells;
  o["words_correct_fingerprint"] = r.words;
  return o;
}

// ---------------------------------------------------------------------------
// Section 3: zero-copy codec path. encode_into reuses one buffer and
// wire::view parses it into borrowed spans, so a steady-state
// encode+view loop over real protocol traffic must allocate NOTHING —
// that is a hard gate (exit non-zero), because every heap allocation on
// this path is a per-message cost a deployment pays n^2 times per round.
// The materializing wire::decode of the same corpus is timed alongside
// for contrast (it allocates by design; it is the fallback path).

struct CodecResult {
  std::size_t corpus = 0;          // distinct wire-encodable payloads
  std::uint64_t passes = 0;
  std::uint64_t view_allocs = 0;   // steady state; gated == 0
  std::uint64_t view_failures = 0; // canonical bytes view() refused; gated == 0
  std::uint64_t decode_allocs = 0;
  double view_seconds = 0;
  double decode_seconds = 0;
  std::uint64_t fingerprint = 0;   // folded view fields: a behaviour pin
};

/// Real mixed traffic: one faulty cell per protocol, every recorded
/// payload that has a wire form.
std::vector<PayloadPtr> codec_corpus() {
  std::vector<PayloadPtr> out;
  for (const check::Protocol proto :
       {check::Protocol::kBb, check::Protocol::kWeakBa,
        check::Protocol::kStrongBa, check::Protocol::kFallback,
        check::Protocol::kDsBb}) {
    check::CellSpec cell;
    cell.protocol = proto;
    cell.t = 2;
    cell.n = 5;
    cell.f = 1;
    cell.adversary = "crash";
    cell.seed = 77;
    check::RunOptions opts;
    opts.record_messages = true;
    const check::RunRecord rec = check::run_cell(cell, opts);
    for (const auto& m : rec.log.messages) {
      if (m.body && wire::encode(*m.body).has_value()) out.push_back(m.body);
    }
  }
  return out;
}

CodecResult run_codec_bench(std::uint64_t passes) {
  CodecResult res;
  const std::vector<PayloadPtr> corpus = codec_corpus();
  res.corpus = corpus.size();
  res.passes = passes;

  std::vector<std::uint8_t> buf;
  // Warm-up: the reused buffer grows to the largest payload once.
  for (const PayloadPtr& p : corpus) {
    (void)wire::encode_into(*p, buf);
    (void)wire::view(buf);
  }

  std::uint64_t h = mix64(0xc0dec);
  const std::uint64_t before = allocations();
  const Clock::time_point start = Clock::now();
  for (std::uint64_t pass = 0; pass < passes; ++pass) {
    for (const PayloadPtr& p : corpus) {
      if (!wire::encode_into(*p, buf)) continue;
      const auto v = wire::view(buf);
      if (!v) {
        ++res.view_failures;
        continue;
      }
      h = hash_combine(h, static_cast<std::uint64_t>(v->type));
      h = hash_combine(h, v->phase);
      h = hash_combine(h, v->value.value.raw);
    }
  }
  res.view_seconds = seconds_since(start);
  res.view_allocs = allocations() - before;
  res.fingerprint = h;

  const std::uint64_t before_decode = allocations();
  const Clock::time_point decode_start = Clock::now();
  for (std::uint64_t pass = 0; pass < passes; ++pass) {
    for (const PayloadPtr& p : corpus) {
      if (!wire::encode_into(*p, buf)) continue;
      (void)wire::decode(buf);
    }
  }
  res.decode_seconds = seconds_since(decode_start);
  res.decode_allocs = allocations() - before_decode;
  return res;
}

json::Value codec_json(const CodecResult& r) {
  json::Object o;
  o["corpus_payloads"] = r.corpus;
  o["passes"] = r.passes;
  o["view_steady_state_allocs"] = r.view_allocs;
  o["view_failures"] = r.view_failures;
  o["view_seconds"] = r.view_seconds;
  o["decode_allocs"] = r.decode_allocs;
  o["decode_seconds"] = r.decode_seconds;
  o["views_per_sec"] =
      r.view_seconds > 0
          ? static_cast<double>(r.corpus) * r.passes / r.view_seconds
          : 0.0;
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(r.fingerprint));
  o["view_fingerprint"] = std::string(buf);
  return o;
}

int run(int argc, char** argv) {
  std::string grid_path;
  std::string out_path = "BENCH_sim_substrate.json";
  bool use_pool = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--grid" && i + 1 < argc) {
      grid_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--no-pool") {
      use_pool = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s --grid GRID.json [--out FILE] [--no-pool]\n",
                   argv[0]);
      return 2;
    }
  }
  if (grid_path.empty()) {
    std::fprintf(stderr, "error: --grid is required\n");
    return 2;
  }

  std::string error;
  const auto grid_json = check::json::read_file(grid_path, &error);
  if (!grid_json) {
    std::fprintf(stderr, "error: cannot read %s: %s\n", grid_path.c_str(),
                 error.c_str());
    return 1;
  }
  check::GridSpec grid;
  if (!check::GridSpec::from_json(*grid_json, &grid, &error)) {
    std::fprintf(stderr, "error: bad grid %s: %s\n", grid_path.c_str(),
                 error.c_str());
    return 1;
  }

  pool::set_enabled(use_pool);

  std::fprintf(stderr, "[1/3] microbench: ping broadcast, pool=%s\n",
               use_pool ? "on" : "off");
  const MicrobenchResult micro = run_microbench(/*n=*/33, /*rounds=*/2000);
  std::fprintf(stderr,
               "      n=%u  %.0f rounds/s  %.2e msgs/s  "
               "%llu steady-state allocs (%llu warm-up)\n",
               micro.n, micro.rounds / micro.seconds,
               micro.messages / micro.seconds,
               static_cast<unsigned long long>(micro.allocs),
               static_cast<unsigned long long>(micro.warmup_allocs));

  std::fprintf(stderr, "[2/3] campaign smoke grid: %s\n", grid_path.c_str());
  const CampaignResult camp = run_campaign_bench(grid);
  std::fprintf(stderr,
               "      %llu cells in %.2fs  (%.0f cells/s, %.0f rounds/s, "
               "%.0f allocs/cell)\n",
               static_cast<unsigned long long>(camp.cells), camp.seconds,
               camp.cells / camp.seconds, camp.rounds / camp.seconds,
               static_cast<double>(camp.allocs) / camp.cells);

  std::fprintf(stderr, "[3/3] zero-copy codec: encode_into + view\n");
  const CodecResult codec = run_codec_bench(/*passes=*/64);
  std::fprintf(stderr,
               "      %zu payloads x %llu passes  view: %llu allocs, "
               "decode: %llu allocs  (%.2e views/s)\n",
               codec.corpus, static_cast<unsigned long long>(codec.passes),
               static_cast<unsigned long long>(codec.view_allocs),
               static_cast<unsigned long long>(codec.decode_allocs),
               codec.view_seconds > 0
                   ? static_cast<double>(codec.corpus) * codec.passes /
                         codec.view_seconds
                   : 0.0);
  bool ok = true;
  if (codec.view_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: borrowed-view codec path allocated %llu times "
                 "(must be 0)\n",
                 static_cast<unsigned long long>(codec.view_allocs));
    ok = false;
  }
  if (codec.view_failures != 0) {
    std::fprintf(stderr,
                 "FAIL: view() rejected %llu canonical encoder outputs\n",
                 static_cast<unsigned long long>(codec.view_failures));
    ok = false;
  }

  json::Object root;
  root["schema"] = "mewc.bench.sim_substrate.v1";
  {
    json::Object config;
    config["grid"] = grid_path;
    config["pool_enabled"] = use_pool;
    root["config"] = std::move(config);
  }
  root["microbench"] = microbench_json(micro);
  root["campaign_smoke"] = campaign_json(camp);
  root["codec"] = codec_json(codec);
  {
    const pool::Stats stats = pool::thread_stats();
    json::Object p;
    p["blocks_reused"] = stats.reused;
    p["blocks_fresh"] = stats.fresh;
    root["pool"] = std::move(p);
  }

  if (!check::json::write_file(out_path, json::Value(std::move(root)))) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace mewc::bench

int main(int argc, char** argv) { return mewc::bench::run(argc, argv); }
