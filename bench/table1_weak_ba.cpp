// Experiment E2 — Table 1, row "Weak BA: O(n(f+1)) multi-valued".
//
// Sweeps f across and beyond the adaptive boundary f <= n - ceil((n+t+1)/2)
// at fixed n: inside it, words grow linearly in f and the fallback never
// runs (Lemma 6); beyond it, the run funnels into A_fallback and the cost
// jumps to the worst-case regime (measured for our Dolev-Strong substitute,
// modeled quadratic for Momose-Ren; DESIGN.md SUB-1).
#include <benchmark/benchmark.h>

#include "ba/fallback/cost_model.hpp"
#include "bench_util.hpp"

namespace mewc::bench {
namespace {

harness::WbaResult run_wba(std::uint32_t t, std::uint32_t f) {
  auto spec = harness::RunSpec::for_t(t);
  adv::CrashAdversary adversary(first_f(f));
  return harness::run_weak_ba(
      spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(7))),
      harness::always_valid_factory(), adversary);
}

void words_vs_f_full_range() {
  const std::uint32_t t = 10;  // n = 21, boundary f <= 5
  const auto n = n_for_t(t);
  subheading(
      "weak BA words vs f (n = 21, crash): adaptive regime, then fallback");
  Table tab({"f", "regime", "words", "words/(n(f+1))", "fallback",
             "modeled Momose-Ren words"});
  for (std::uint32_t f = 0; f <= t; ++f) {
    const auto res = run_wba(t, f);
    const bool adaptive = adaptive_regime(n, t, f);
    tab.row({u64(f), adaptive ? "adaptive" : "worst-case",
             u64(res.meter.words_correct),
             fixed2(static_cast<double>(res.meter.words_correct) /
                    (static_cast<double>(n) * (f + 1))),
             res.any_fallback() ? "yes" : "no",
             res.any_fallback()
                 ? u64(fallback::modeled_momose_ren_words(n))
                 : std::string("-")});
  }
  tab.print();
  std::printf(
      "Shape check: words/(n(f+1)) is flat while regime=adaptive, and the\n"
      "fallback column flips exactly past the boundary (Lemma 6).\n");
}

void words_vs_f_leader_killer() {
  const std::uint32_t t = 10;
  const auto n = n_for_t(t);
  subheading(
      "weak BA words vs f (n = 21, mid-phase leader killer: the worst-case "
      "adaptive pattern)");
  Table tab({"f", "words", "words/(n(f+1))", "non-silent phases"});
  for (std::uint32_t f = 0; f <= adaptive_boundary(n, t); ++f) {
    auto spec = harness::RunSpec::for_t(t);
    // Corrupt each upcoming leader after its propose (phase local round 3):
    // every burned phase costs a full O(n).
    adv::AdaptiveLeaderCrash adversary(3, 5, spec.n, f);
    const auto res = harness::run_weak_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(7))),
        harness::always_valid_factory(), adversary);
    tab.row({u64(res.f()), u64(res.meter.words_correct),
             fixed2(static_cast<double>(res.meter.words_correct) /
                    (static_cast<double>(n) * (res.f() + 1))),
             u64(active_windows(res.meter, 1, 5, spec.n))});
  }
  tab.print();
  std::printf(
      "Words grow linearly in f (each burned phase costs O(n)); the plain\n"
      "crash sweep above shows failures that die quietly cost nothing —\n"
      "both are within the paper's O(n(f+1)).\n");
}

void words_vs_n_adaptive() {
  subheading("weak BA words vs n (f = 0 and f = 2, adaptive regime)");
  Table tab({"n", "words f=0", "(f=0)/n", "words f=2", "(f=2)/(3n)"});
  for (std::uint32_t t : {5u, 10u, 20u, 40u, 60u}) {
    const auto n = n_for_t(t);
    const auto r0 = run_wba(t, 0);
    const auto r2 = run_wba(t, 2);
    tab.row({u64(n), u64(r0.meter.words_correct),
             fixed2(static_cast<double>(r0.meter.words_correct) / n),
             u64(r2.meter.words_correct),
             fixed2(static_cast<double>(r2.meter.words_correct) / (3.0 * n))});
  }
  tab.print();
}

void help_cost_vs_spam() {
  subheading(
      "help-round answer cost vs Byzantine help_req spam (Section 6: O(nf))");
  // Stay within the adaptive boundary: beyond it the run enters the
  // fallback and the help round carries certificate traffic too.
  const std::uint32_t t = 10;
  Table tab({"spammers f", "help-round words", "words/((n-f)*f)"});
  for (std::uint32_t spam : {1u, 2u, 3u, 4u, 5u}) {
    auto spec = harness::RunSpec::for_t(t);
    const Round help_round = 5 * spec.n + 1;
    adv::WbaHelpSpam adversary(spec.instance, help_round, spam, false, 0);
    const auto res = harness::run_weak_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(7))),
        harness::always_valid_factory(), adversary);
    const std::uint64_t words =
        res.meter.words_in_rounds(help_round + 1, help_round + 2);
    tab.row({u64(spam), u64(words),
             fixed2(static_cast<double>(words) /
                    (static_cast<double>(spec.n - spam) * spam))});
  }
  tab.print();
  std::printf(
      "Each decided (correct) process answers each spammer once: the help\n"
      "answer cost is Theta((n-f) * f) = O(nf), independent of t, as the\n"
      "Section 6 analysis states.\n");
}

void bm_weak_ba(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  const auto f = static_cast<std::uint32_t>(state.range(1));
  std::uint64_t words = 0;
  for (auto _ : state) {
    const auto res = run_wba(t, f);
    words = res.meter.words_correct;
    benchmark::DoNotOptimize(words);
  }
  state.counters["words"] = static_cast<double>(words);
  state.counters["n"] = n_for_t(t);
}

BENCHMARK(bm_weak_ba)
    ->ArgsProduct({{5, 10, 20}, {0, 2}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mewc::bench

int main(int argc, char** argv) {
  mewc::bench::heading(
      "Table 1 / E2: weak BA, O(n(f+1)) words multi-valued, n = 2t+1");
  mewc::bench::words_vs_f_full_range();
  mewc::bench::words_vs_f_leader_killer();
  mewc::bench::words_vs_n_adaptive();
  mewc::bench::help_cost_vs_spam();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
