// Substrate microbenchmarks: signing, verification, threshold combination
// (both backends) and wire codec throughput. Not a paper artifact — these
// exist so library users can see what the crypto substitution (DESIGN.md
// SUB-2) costs and where simulation time goes.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "crypto/multisig.hpp"
#include "crypto/shamir.hpp"
#include "wire/codec.hpp"
#include "ba/weak_ba/messages.hpp"

namespace mewc::bench {
namespace {

void bm_sign(benchmark::State& state) {
  Pki pki(64);
  const PrivateKey key = pki.issue_key(0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const Digest d = DigestBuilder("b").field(i++).done();
    benchmark::DoNotOptimize(key.sign(d));
  }
}
BENCHMARK(bm_sign);

void bm_verify(benchmark::State& state) {
  Pki pki(64);
  const Signature sig =
      pki.issue_key(0).sign(DigestBuilder("b").field(1).done());
  for (auto _ : state) benchmark::DoNotOptimize(pki.verify(sig));
}
BENCHMARK(bm_verify);

void bm_aggregate_verify(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Pki pki(n);
  const Digest d = DigestBuilder("b").field(1).done();
  AggSignature agg = aggregate_start(pki, pki.issue_key(0).sign(d));
  for (ProcessId p = 1; p < n; ++p) {
    aggregate_add(pki, agg, pki.issue_key(p).sign(d));
  }
  for (auto _ : state) benchmark::DoNotOptimize(aggregate_verify(pki, agg));
}
BENCHMARK(bm_aggregate_verify)->Arg(16)->Arg(64)->Arg(256);

template <typename Scheme>
void bm_threshold_combine(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t n = 2 * k;
  Scheme scheme(k, n, 0xbe7c);
  const Digest d = DigestBuilder("b").field(1).done();
  std::vector<PartialSig> partials;
  for (ProcessId p = 0; p < k; ++p) {
    partials.push_back(scheme.issue_share(p).partial_sign(d));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.combine(partials));
  }
}
BENCHMARK(bm_threshold_combine<SimThreshold>)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(bm_threshold_combine<ShamirThreshold>)->Arg(4)->Arg(16)->Arg(64);

void bm_codec_roundtrip(benchmark::State& state) {
  ThresholdFamily family(7, 3);
  wba::FallbackMsg msg;
  std::vector<PartialSig> ps;
  for (ProcessId p = 0; p < 4; ++p) {
    ps.push_back(family.scheme(4).issue_share(p).partial_sign(
        DigestBuilder("b").field(1).done()));
  }
  msg.fallback_qc = *family.scheme(4).combine(ps);
  msg.has_decision = true;
  msg.value = WireValue::plain(Value(9));
  msg.proof_phase = 2;
  msg.decide_proof = msg.fallback_qc;
  for (auto _ : state) {
    const auto bytes = wire::encode(msg);
    benchmark::DoNotOptimize(wire::decode(*bytes));
  }
}
BENCHMARK(bm_codec_roundtrip);

void bm_trusted_setup(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    ThresholdFamily family(n_for_t(t), t, ThresholdBackend::kShamir);
    benchmark::DoNotOptimize(family.n());
  }
}
BENCHMARK(bm_trusted_setup)->Arg(10)->Arg(50)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mewc::bench

int main(int argc, char** argv) {
  mewc::bench::heading("substrate microbenchmarks (crypto + codec)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
