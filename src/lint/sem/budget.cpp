// R-budget: word-accounting completeness — the static mirror of Table-1
// accounting. Metering has exactly one authority in the runtime:
// SyncNetwork::post calls Meter::record for every message it carries (and
// LaneOutbox::forward re-posts lane traffic into the caller's metered
// outbox). So the invariant is a custody discipline: an Outbox this
// function owns (a local, an owned member like Executor::send_outbox_, or
// a local alias to one) that gets filled — via send/broadcast directly, or
// by a callee that fills its Outbox& parameter, like every driver's
// on_send — must reach post/forward on every path to function exit.
// Outbox& parameters are the caller's custody and exempt: the driver fills
// `out`, the executor posts it.
//
// The fill/discharge summaries iterate to a fixpoint so chains like
// on_send -> run_protocol -> Outbox::send resolve, whichever file defines
// them.
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/sem/dataflow.hpp"
#include "lint/sem/passes.hpp"

namespace mewc::lint::sem {

namespace {

using Tokens = std::vector<Token>;

[[nodiscard]] bool in_budget_scope(const std::string& path) {
  return path.rfind("src/ba/", 0) == 0 || path.rfind("src/sim/", 0) == 0;
}

[[nodiscard]] bool is_fill_tail(const std::string& tail) {
  return tail == "send" || tail == "broadcast";
}

[[nodiscard]] bool is_discharge_tail(const std::string& tail) {
  return tail == "post" || tail == "forward";
}

// Per-callee-tail bitmasks: which Outbox& parameter slots the callee fills
// (writes messages into) or discharges (hands to the metering authority).
struct Summaries {
  std::map<std::string, std::uint32_t> fills;
  std::map<std::string, std::uint32_t> discharges;
};

[[nodiscard]] bool arg_mentions(const Tokens& toks, const CallSite& c,
                                std::size_t idx, const std::string& name) {
  if (idx >= c.args.size()) return false;
  return root_idents(toks, c.args[idx].first, c.args[idx].second)
             .count(name) != 0;
}

[[nodiscard]] bool any_arg_mentions(const Tokens& toks, const CallSite& c,
                                    const std::string& name) {
  for (std::size_t i = 0; i < c.args.size(); ++i) {
    if (arg_mentions(toks, c, i, name)) return true;
  }
  return false;
}

[[nodiscard]] Summaries build_summaries(const AnalysisCorpus& ac) {
  Summaries s;
  // Fixpoint over one-level-per-iteration propagation; bounded because the
  // bitmasks only grow. Four rounds cover any realistic helper chain.
  for (int round = 0; round < 4; ++round) {
    bool changed = false;
    for (const Function& fn : ac.sym.functions) {
      if (!in_budget_scope(ac.files[fn.file].norm_path)) continue;
      const Tokens& toks = ac.files[fn.file].lexed.tokens;
      const std::vector<CallSite> calls =
          find_calls(toks, fn.body_begin, fn.body_end);
      for (std::size_t p = 0; p < fn.params.size() && p < 32; ++p) {
        const Param& param = fn.params[p];
        if (param.name.empty() || param.type_tail != "Outbox") continue;
        const std::uint32_t bit = std::uint32_t{1} << p;
        for (const CallSite& c : calls) {
          if (is_fill_tail(c.tail) && c.recv_root == param.name) {
            changed = changed || (s.fills[fn.name] & bit) == 0;
            s.fills[fn.name] |= bit;
          }
          if (is_discharge_tail(c.tail) &&
              any_arg_mentions(toks, c, param.name)) {
            changed = changed || (s.discharges[fn.name] & bit) == 0;
            s.discharges[fn.name] |= bit;
          }
          const auto fit = s.fills.find(c.tail);
          if (fit != s.fills.end()) {
            for (std::size_t i = 0; i < c.args.size() && i < 32; ++i) {
              if ((fit->second & (std::uint32_t{1} << i)) != 0 &&
                  arg_mentions(toks, c, i, param.name)) {
                changed = changed || (s.fills[fn.name] & bit) == 0;
                s.fills[fn.name] |= bit;
              }
            }
          }
          const auto dit = s.discharges.find(c.tail);
          if (dit != s.discharges.end()) {
            for (std::size_t i = 0; i < c.args.size() && i < 32; ++i) {
              if ((dit->second & (std::uint32_t{1} << i)) != 0 &&
                  arg_mentions(toks, c, i, param.name)) {
                changed = changed || (s.discharges[fn.name] & bit) == 0;
                s.discharges[fn.name] |= bit;
              }
            }
          }
        }
      }
    }
    if (!changed) break;
  }
  return s;
}

struct BudgetRun {
  const Tokens* toks = nullptr;
  const Cfg* cfg = nullptr;
  const Summaries* sums = nullptr;
  const std::set<std::string>* owned = nullptr;
  std::size_t* fill_count = nullptr;

  [[nodiscard]] Facts transfer(std::size_t id, const Facts& in) const {
    Facts f = in;
    const CfgNode& node = cfg->nodes[id];
    if (node.first >= node.last) return f;
    for (const CallSite& c : find_calls(*toks, node.first, node.last)) {
      // Fills first, discharges second: a helper that both fills and posts
      // the same outbox nets out discharged.
      if (is_fill_tail(c.tail) && owned->count(c.recv_root) != 0) {
        const std::uint32_t line = (*toks)[c.name_tok].line;
        const auto it = f.find(c.recv_root);
        if (it == f.end() || line < it->second) f[c.recv_root] = line;
        if (fill_count != nullptr) ++*fill_count;
      }
      const auto fit = sums->fills.find(c.tail);
      if (fit != sums->fills.end()) {
        for (std::size_t i = 0; i < c.args.size() && i < 32; ++i) {
          if ((fit->second & (std::uint32_t{1} << i)) == 0) continue;
          for (const std::string& r :
               root_idents(*toks, c.args[i].first, c.args[i].second)) {
            if (owned->count(r) == 0) continue;
            const std::uint32_t line = (*toks)[c.name_tok].line;
            const auto it = f.find(r);
            if (it == f.end() || line < it->second) f[r] = line;
            if (fill_count != nullptr) ++*fill_count;
          }
        }
      }
      if (is_discharge_tail(c.tail)) {
        for (const auto& [a_first, a_last] : c.args) {
          for (const std::string& r : root_idents(*toks, a_first, a_last)) {
            f.erase(r);
          }
        }
      }
      const auto dit = sums->discharges.find(c.tail);
      if (dit != sums->discharges.end()) {
        for (std::size_t i = 0; i < c.args.size() && i < 32; ++i) {
          if ((dit->second & (std::uint32_t{1} << i)) == 0) continue;
          for (const std::string& r :
               root_idents(*toks, c.args[i].first, c.args[i].second)) {
            f.erase(r);
          }
        }
      }
      // clear() resets custody: pending messages are dropped, not sent, so
      // no words cross the wire unmetered.
      if (c.tail == "clear" && owned->count(c.recv_root) != 0) {
        f.erase(c.recv_root);
      }
    }
    return f;
  }
};

}  // namespace

void pass_budget(const AnalysisCorpus& ac, SemStats* stats,
                 const EmitFn& emit) {
  const Summaries sums = build_summaries(ac);

  for (std::size_t fi = 0; fi < ac.sym.functions.size(); ++fi) {
    const Function& fn = ac.sym.functions[fi];
    const FileCtx& file = ac.files[fn.file];
    if (!in_budget_scope(file.norm_path)) continue;
    const Cfg& cfg = ac.cfgs[fi];
    if (!cfg.ok) continue;
    const Tokens& toks = file.lexed.tokens;

    // Custody set: locals and local aliases declared in this body, plus
    // owned members from anywhere in the corpus — minus this function's
    // parameter names, which shadow members and are the caller's custody.
    std::set<std::string> owned;
    for (std::size_t j = fn.body_begin; j + 2 < fn.body_end; ++j) {
      if (toks[j].kind != TokenKind::kIdentifier || toks[j].text != "Outbox") {
        continue;
      }
      if (toks[j + 1].kind == TokenKind::kIdentifier) {
        owned.insert(toks[j + 1].text);
      } else if (toks[j + 1].kind == TokenKind::kPunct &&
                 toks[j + 1].text == "&" && j + 3 < fn.body_end &&
                 toks[j + 2].kind == TokenKind::kIdentifier &&
                 toks[j + 3].kind == TokenKind::kPunct &&
                 toks[j + 3].text == "=") {
        owned.insert(toks[j + 2].text);
      }
    }
    for (const std::string& m : ac.sym.outbox_vars) owned.insert(m);
    for (const Param& p : fn.params) owned.erase(p.name);
    if (owned.empty()) continue;

    BudgetRun run;
    run.toks = &toks;
    run.cfg = &cfg;
    run.sums = &sums;
    run.owned = &owned;
    const std::vector<Facts> in = solve_forward(
        cfg,
        [&](std::size_t id, const Facts& f) { return run.transfer(id, f); });

    std::size_t fills = 0;
    run.fill_count = &fills;
    Facts at_exit = in[cfg.exit];
    for (std::size_t id = 0; id < cfg.nodes.size(); ++id) {
      (void)run.transfer(id, in[id]);
    }
    if (stats != nullptr) stats->outbox_fills += fills;

    const std::string where =
        fn.qualified.empty() ? fn.name : fn.qualified;
    for (const auto& [var, line] : at_exit) {
      emit("R-budget", fn.file, line,
           "Outbox '" + var + "' is filled here, but some path through '" +
               where +
               "' exits without word-meter attribution "
               "(SyncNetwork::post / LaneOutbox::forward) — unmetered sends "
               "break the Table-1 word accounting");
    }
  }
}

}  // namespace mewc::lint::sem
