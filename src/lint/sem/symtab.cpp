#include "lint/sem/symtab.hpp"

#include <string_view>

#include "lint/sem/cfg.hpp"

namespace mewc::lint::sem {

namespace {

using Tokens = std::vector<Token>;

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

[[nodiscard]] bool is_ident(const Token& t, std::string_view name) {
  return t.kind == TokenKind::kIdentifier && t.text == name;
}

[[nodiscard]] bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

[[nodiscard]] bool is_any_ident(const Token& t) {
  return t.kind == TokenKind::kIdentifier;
}

// Keywords that look like `name (` but are control flow, not calls or
// function definitions.
[[nodiscard]] bool is_control_keyword(const std::string& s) {
  return s == "if" || s == "while" || s == "for" || s == "switch" ||
         s == "return" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "static_assert" || s == "catch" ||
         s == "new" || s == "delete" || s == "noexcept" || s == "case" ||
         s == "default" || s == "throw" || s == "operator" ||
         s == "alignas" || s == "co_return" || s == "co_await";
}

// Backward bracket match: index of the opener matching the ')' or ']' at
// `close`, or npos.
[[nodiscard]] std::size_t match_backward(const Tokens& toks,
                                         std::size_t close) {
  int depth = 0;
  for (std::size_t j = close + 1; j-- > 0;) {
    const Token& t = toks[j];
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == ")" || t.text == "]" || t.text == "}") ++depth;
    if (t.text == "(" || t.text == "[" || t.text == "{") {
      --depth;
      if (depth == 0) return j;
    }
  }
  return kNpos;
}

// Walks a receiver chain backwards from the callee tail: over '.', '->',
// and '::' links, through balanced (...) / [...] groups, to the chain's
// root identifier. Returns "" when the shape is anything fancier.
[[nodiscard]] std::string receiver_root(const Tokens& toks,
                                        std::size_t name_tok) {
  std::size_t j = name_tok;
  while (j >= 2 && (is_punct(toks[j - 1], ".") || is_punct(toks[j - 1], "->") ||
                    is_punct(toks[j - 1], "::"))) {
    std::size_t k = j - 2;
    if (is_punct(toks[k], ")") || is_punct(toks[k], "]")) {
      const std::size_t open = match_backward(toks, k);
      if (open == kNpos || open == 0) return "";
      k = open - 1;
    }
    if (!is_any_ident(toks[k])) return "";
    j = k;
  }
  if (j == name_tok) return "";
  return toks[j].text;
}

// ---------------------------------------------------------------------------
// Function definitions

// Parses a constructor initializer list starting at the ':' token; returns
// the index of the body '{' or npos. Items are `name(args)` / `name{args}`
// separated by commas; the body brace is whatever follows the last item.
[[nodiscard]] std::size_t skip_ctor_init(const Tokens& toks, std::size_t colon,
                                         std::size_t limit) {
  std::size_t j = colon + 1;
  while (j < limit) {
    // Qualified / templated member or base name.
    while (j < limit &&
           (is_any_ident(toks[j]) || is_punct(toks[j], "::"))) {
      ++j;
    }
    if (j < limit && is_punct(toks[j], "<")) {
      int depth = 0;
      while (j < limit) {
        if (is_punct(toks[j], "<")) ++depth;
        if (is_punct(toks[j], ">")) --depth;
        if (is_punct(toks[j], ">>")) depth -= 2;
        ++j;
        if (depth <= 0) break;
      }
    }
    if (j >= limit || (!is_punct(toks[j], "(") && !is_punct(toks[j], "{"))) {
      return kNpos;
    }
    const std::size_t close = match_bracket(toks, j);
    if (close == kNpos) return kNpos;
    j = close + 1;
    if (j < limit && is_punct(toks[j], ",")) {
      ++j;
      continue;
    }
    if (j < limit && is_punct(toks[j], "{")) return j;
    return kNpos;
  }
  return kNpos;
}

// After a candidate parameter list `name ( ... )`, decides whether a
// function body follows: skips cv/ref qualifiers, noexcept(...), trailing
// return types, override/final, and a constructor initializer list. Returns
// the '{' index or npos (declaration, macro use, plain call, ...).
[[nodiscard]] std::size_t find_body_brace(const Tokens& toks,
                                          std::size_t close) {
  std::size_t j = close + 1;
  bool trailing_type = false;
  while (j < toks.size()) {
    const Token& t = toks[j];
    if (is_punct(t, "{")) return j;
    if (is_punct(t, ";") || is_punct(t, "=") || is_punct(t, ",")) return kNpos;
    if (is_ident(t, "const") || is_ident(t, "override") ||
        is_ident(t, "final") || is_ident(t, "mutable") ||
        is_ident(t, "volatile") || is_punct(t, "&") || is_punct(t, "&&")) {
      ++j;
      continue;
    }
    if (is_ident(t, "noexcept")) {
      ++j;
      if (j < toks.size() && is_punct(toks[j], "(")) {
        const std::size_t nc = match_bracket(toks, j);
        if (nc == kNpos) return kNpos;
        j = nc + 1;
      }
      continue;
    }
    if (is_punct(t, "->")) {
      trailing_type = true;
      ++j;
      continue;
    }
    if (trailing_type &&
        (is_any_ident(t) || is_punct(t, "::") || is_punct(t, "<") ||
         is_punct(t, ">") || is_punct(t, ">>") || is_punct(t, "*"))) {
      ++j;
      continue;
    }
    if (is_punct(t, ":")) return skip_ctor_init(toks, j, toks.size());
    return kNpos;
  }
  return kNpos;
}

[[nodiscard]] std::vector<Param> parse_params(const Tokens& toks,
                                              std::size_t lparen,
                                              std::size_t rparen) {
  std::vector<Param> params;
  std::size_t start = lparen + 1;
  int depth = 0;
  for (std::size_t j = lparen + 1; j <= rparen; ++j) {
    const Token& t = toks[j];
    const bool splits = j == rparen || (depth == 0 && is_punct(t, ","));
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "(" || t.text == "[" || t.text == "{" || t.text == "<") {
        ++depth;
      }
      if (t.text == ")" || t.text == "]" || t.text == "}" || t.text == ">") {
        if (j != rparen) --depth;
      }
      if (t.text == ">>" && j != rparen) depth -= 2;
    }
    if (!splits) continue;
    // Parameter slot [start, j).
    std::size_t end = start;
    Param p;
    for (std::size_t k = start; k < j; ++k) {
      if (is_punct(toks[k], "=")) break;  // default argument
      if (is_punct(toks[k], "&") || is_punct(toks[k], "&&")) p.by_ref = true;
      end = k + 1;
    }
    if (end > start) {
      if (is_any_ident(toks[end - 1]) && !is_ident(toks[end - 1], "void")) {
        p.name = toks[end - 1].text;
        for (std::size_t k = start; k + 1 < end; ++k) {
          if (is_any_ident(toks[k]) && !is_ident(toks[k], "const") &&
              !is_ident(toks[k], "struct") && !is_ident(toks[k], "typename")) {
            p.type_tail = toks[k].text;
          }
        }
      }
      params.push_back(std::move(p));
    }
    start = j + 1;
  }
  return params;
}

void collect_functions(const Tokens& toks, std::size_t file,
                       SymbolTable* sym) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_any_ident(toks[i]) || !is_punct(toks[i + 1], "(")) continue;
    if (is_control_keyword(toks[i].text)) continue;
    // Macro definitions (`#define NAME(...)`) are not functions.
    if (i >= 1 && is_ident(toks[i - 1], "define")) continue;
    const std::size_t close = match_bracket(toks, i + 1);
    if (close == kNpos) continue;
    const std::size_t body = find_body_brace(toks, close);
    if (body == kNpos) continue;
    const std::size_t body_end = match_bracket(toks, body);
    if (body_end == kNpos) continue;

    Function f;
    f.file = file;
    f.name = toks[i].text;
    f.line = toks[i].line;
    f.body_begin = body;
    f.body_end = body_end;
    f.params = parse_params(toks, i + 1, close);
    // Out-of-line qualification: Class::name, possibly nested.
    std::string qualified = f.name;
    for (std::size_t p = i; p >= 2 && is_punct(toks[p - 1], "::") &&
                            is_any_ident(toks[p - 2]);
         p -= 2) {
      qualified = toks[p - 2].text + "::" + qualified;
    }
    if (qualified != f.name) f.qualified = qualified;

    sym->by_name[f.name].push_back(sym->functions.size());
    sym->functions.push_back(std::move(f));
  }
}

void collect_outbox_vars(const Tokens& toks, SymbolTable* sym) {
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_ident(toks[i], "Outbox")) continue;
    // Owned declaration: `Outbox name ;|(|{|=`.
    if (is_any_ident(toks[i + 1]) && i + 2 < toks.size() &&
        (is_punct(toks[i + 2], ";") || is_punct(toks[i + 2], "(") ||
         is_punct(toks[i + 2], "{") || is_punct(toks[i + 2], "="))) {
      sym->outbox_vars.insert(toks[i + 1].text);
      continue;
    }
    // Local alias with an initializer: `Outbox& name = ...` — custody is
    // still local (the alias target is an owned member). Reference
    // *parameters* end in ',' or ')' and stay exempt.
    if (is_punct(toks[i + 1], "&") && i + 3 < toks.size() &&
        is_any_ident(toks[i + 2]) && is_punct(toks[i + 3], "=")) {
      sym->outbox_vars.insert(toks[i + 2].text);
    }
  }
}

// Skips an explicit template-argument list so `payload_cast<Msg>(body)`
// is recognized as a call to payload_cast. From the `<` at `open`,
// returns the index one past the matching `>`, or kNpos if this is not a
// plausible argument list. Content is restricted to type-ish tokens
// (identifiers, numbers, `::`, `,`, `*`, `&`, nested angles) precisely so
// comparison chains like `a < b && c > (d)` are not mistaken for calls.
[[nodiscard]] std::size_t skip_template_args(const Tokens& toks,
                                             std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size() && j < open + 64; ++j) {
    const Token& t = toks[j];
    if (is_any_ident(t) || t.kind == TokenKind::kNumber) continue;
    if (t.kind != TokenKind::kPunct) return kNpos;
    if (t.text == "<") {
      ++depth;
    } else if (t.text == ">") {
      if (--depth == 0) return j + 1;
    } else if (t.text == ">>") {
      depth -= 2;
      if (depth == 0) return j + 1;
      if (depth < 0) return kNpos;
    } else if (t.text != "::" && t.text != "," && t.text != "*" &&
               t.text != "&") {
      return kNpos;
    }
  }
  return kNpos;
}

}  // namespace

SymbolTable build_symtab(const std::vector<LexResult>& lexed) {
  SymbolTable sym;
  for (std::size_t fi = 0; fi < lexed.size(); ++fi) {
    collect_functions(lexed[fi].tokens, fi, &sym);
    collect_outbox_vars(lexed[fi].tokens, &sym);
  }
  return sym;
}

std::vector<CallSite> find_calls(const std::vector<Token>& toks,
                                 std::size_t first, std::size_t last) {
  std::vector<CallSite> calls;
  for (std::size_t i = first; i + 1 < last && i + 1 < toks.size(); ++i) {
    if (!is_any_ident(toks[i])) continue;
    if (is_control_keyword(toks[i].text)) continue;
    if (i >= 1 && is_ident(toks[i - 1], "define")) continue;
    std::size_t lparen = kNpos;
    if (is_punct(toks[i + 1], "(")) {
      lparen = i + 1;
    } else if (is_punct(toks[i + 1], "<")) {
      const std::size_t after = skip_template_args(toks, i + 1);
      if (after != kNpos && after < toks.size() &&
          is_punct(toks[after], "(")) {
        lparen = after;
      }
    }
    if (lparen == kNpos) continue;
    const std::size_t close = match_bracket(toks, lparen);
    if (close == kNpos) continue;
    CallSite c;
    c.name_tok = i;
    c.lparen = lparen;
    c.rparen = close;
    c.tail = toks[i].text;
    c.recv_root = receiver_root(toks, i);
    std::size_t start = lparen + 1;
    int depth = 0;
    for (std::size_t j = lparen + 1; j <= close; ++j) {
      const Token& t = toks[j];
      const bool splits = j == close || (depth == 0 && is_punct(t, ","));
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
        if ((t.text == ")" || t.text == "]" || t.text == "}") && j != close) {
          --depth;
        }
      }
      if (splits) {
        if (j > start) c.args.emplace_back(start, j);
        start = j + 1;
      }
    }
    calls.push_back(std::move(c));
  }
  return calls;
}

std::set<std::string> root_idents(const std::vector<Token>& toks,
                                  std::size_t first, std::size_t last) {
  std::set<std::string> roots;
  for (std::size_t i = first; i < last && i < toks.size(); ++i) {
    if (!is_any_ident(toks[i])) continue;
    if (i >= 1 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->") ||
                   is_punct(toks[i - 1], "::"))) {
      continue;  // member / qualified tail: the root carries the fact
    }
    if (i + 1 < toks.size() &&
        (is_punct(toks[i + 1], "(") || is_punct(toks[i + 1], "::"))) {
      continue;  // callee or namespace name, not a variable read
    }
    roots.insert(toks[i].text);
  }
  return roots;
}

std::vector<Assignment> find_assignments(const std::vector<Token>& toks,
                                         std::size_t first, std::size_t last) {
  std::vector<Assignment> out;
  const std::size_t lim = last < toks.size() ? last : toks.size();
  for (std::size_t i = first; i < lim; ++i) {
    // Range-for binding: `for ( decl : expr )` — treated as a gen-only
    // assignment of expr into the bound name.
    if (is_ident(toks[i], "for") && i + 1 < lim && is_punct(toks[i + 1], "(")) {
      const std::size_t close = match_bracket(toks, i + 1);
      if (close == kNpos || close > lim) continue;
      int depth = 0;
      for (std::size_t j = i + 2; j < close; ++j) {
        const Token& t = toks[j];
        if (t.kind != TokenKind::kPunct) continue;
        if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
        if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
        if (depth == 0 && t.text == ";") break;  // classic for
        if (depth == 0 && t.text == ":") {
          Assignment a;
          a.eq = j;
          a.compound = true;
          a.rhs_first = j + 1;
          a.rhs_last = close;
          if (j >= 1 && is_any_ident(toks[j - 1])) {
            a.lhs_root = toks[j - 1].text;
          }
          out.push_back(std::move(a));
          break;
        }
      }
      continue;
    }

    if (toks[i].kind != TokenKind::kPunct) continue;
    const std::string& tx = toks[i].text;
    const bool plain = tx == "=";
    const bool compound = tx == "+=" || tx == "-=" || tx == "*=" || tx == "/=";
    if (!plain && !compound) continue;
    // `|=`, `&=`, `^=`, `%=` lex as two tokens; fold them into compounds.
    bool op_prefixed = false;
    if (plain && i >= 1 && toks[i - 1].kind == TokenKind::kPunct &&
        (toks[i - 1].text == "|" || toks[i - 1].text == "&" ||
         toks[i - 1].text == "^" || toks[i - 1].text == "%")) {
      op_prefixed = true;
    }

    Assignment a;
    a.eq = i;
    a.compound = compound || op_prefixed;
    // Left side: walk back over one optional subscript to the target name;
    // member and element writes keep lhs_root empty (tracked vars are whole
    // variables only — `x.field = tainted` must not taint or clean `x`).
    std::size_t j = i - (op_prefixed ? 2 : 1);
    bool subscript = false;
    if (j < toks.size() && is_punct(toks[j], "]")) {
      const std::size_t open = match_backward(toks, j);
      if (open == kNpos || open == 0) continue;
      j = open - 1;
      subscript = true;
    }
    if (j >= toks.size() || !is_any_ident(toks[j])) continue;
    const bool member =
        j >= 1 && (is_punct(toks[j - 1], ".") || is_punct(toks[j - 1], "->") ||
                   is_punct(toks[j - 1], "::"));
    if (!member && !subscript) a.lhs_root = toks[j].text;
    // Right side: up to the first ';' or ',' at depth zero, or the end of
    // the enclosing bracket (covers init-statements inside `if (...)`).
    a.rhs_first = i + 1;
    a.rhs_last = a.rhs_first;
    int depth = 0;
    for (std::size_t k = i + 1; k < lim; ++k) {
      const Token& t = toks[k];
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
        if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
        if (depth < 0) break;
        if (depth == 0 && (t.text == ";" || t.text == ",")) break;
      }
      a.rhs_last = k + 1;
    }
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace mewc::lint::sem
