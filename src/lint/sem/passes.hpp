// Internal plumbing between sem.cpp (orchestration, suppressions,
// baseline) and the three rule passes. Not part of the public surface —
// include sem.hpp instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/sem/cfg.hpp"
#include "lint/sem/sem.hpp"
#include "lint/sem/symtab.hpp"

namespace mewc::lint::sem {

struct FileCtx {
  std::string norm_path;  // normalized, used for scoping and diagnostics
  LexResult lexed;
};

struct AnalysisCorpus {
  std::vector<FileCtx> files;
  SymbolTable sym;
  std::vector<Cfg> cfgs;  // parallel to sym.functions
};

// emit(rule, file_index, line, message)
using EmitFn = std::function<void(const char* rule, std::size_t file,
                                  std::uint32_t line, std::string msg)>;

void pass_taint(const AnalysisCorpus& ac, SemStats* stats, const EmitFn& emit);
void pass_budget(const AnalysisCorpus& ac, SemStats* stats, const EmitFn& emit);
void pass_covdrift(const AnalysisCorpus& ac, const std::string& paper_text,
                   SemStats* stats, const EmitFn& emit);

}  // namespace mewc::lint::sem
