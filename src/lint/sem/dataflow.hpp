// Forward may-dataflow over a sem::Cfg. The domain is a finite map from
// variable name to the line where its fact originated (taint source line,
// outbox fill line); join is set union keeping the earliest origin, so the
// fixpoint exists and diagnostics are deterministic. A fact present at a
// node means "there exists a path on which it holds" — exactly the
// quantifier both R-taint ("some path reaches the sink unverified") and
// R-budget ("some path exits without attribution") need.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lint/sem/cfg.hpp"

namespace mewc::lint::sem {

using Facts = std::map<std::string, std::uint32_t>;

/// Unions `from` into `into`; keeps the smaller origin line on collision.
/// Returns true when `into` changed (the worklist condition).
inline bool join_into(Facts& into, const Facts& from) {
  bool changed = false;
  for (const auto& [var, line] : from) {
    auto [it, inserted] = into.emplace(var, line);
    if (inserted) {
      changed = true;
    } else if (line < it->second) {
      it->second = line;
      changed = true;
    }
  }
  return changed;
}

/// Worklist fixpoint. `transfer(node_id, in) -> out` must be monotone and
/// deterministic. Returns the IN set of every node; callers then replay the
/// transfer once per node in report mode to emit diagnostics exactly once.
template <typename Transfer>
[[nodiscard]] std::vector<Facts> solve_forward(const Cfg& cfg,
                                               Transfer&& transfer) {
  std::vector<Facts> in(cfg.nodes.size());
  std::vector<char> queued(cfg.nodes.size(), 1);
  std::vector<std::size_t> work;
  // Every node starts on the worklist — facts are *generated* inside
  // transfers (a decl node gens its own taint with an empty IN set), so
  // seeding only the entry would never run the node that creates the first
  // fact. Reverse order makes the first drain roughly topological.
  work.reserve(cfg.nodes.size());
  for (std::size_t id = cfg.nodes.size(); id-- > 0;) work.push_back(id);
  // The lattice height is |vars| per node, so this bound is never hit on
  // real code; it guards against a non-monotone transfer looping forever.
  std::size_t fuel = 64 * cfg.nodes.size() + 256;
  while (!work.empty() && fuel-- > 0) {
    const std::size_t id = work.back();
    work.pop_back();
    queued[id] = 0;
    const Facts out = transfer(id, in[id]);
    for (const std::size_t s : cfg.nodes[id].succ) {
      if (join_into(in[s], out) && queued[s] == 0) {
        queued[s] = 1;
        work.push_back(s);
      }
    }
  }
  return in;
}

}  // namespace mewc::lint::sem
