// R-taint: Byzantine-input taint tracking. Sources are the wire borrow /
// decode sites; sinks are quorum accumulation, ledger mutation, and meter
// attribution; sanitizers are Pki / certificate verification calls. The
// analysis is a forward may-taint over each function's CFG: a diagnostic
// means "there exists a path on which this value reaches the sink with no
// verification in between" — exactly the paper's 'only certified values
// count toward thresholds' invariant, checked mechanically.
//
// Deliberate modeling choices, tuned against the real tree:
//  - Whole-variable facts only. `x.field = tainted` neither taints nor
//    cleans `x`: the interactive-consistency demux re-wraps an inner
//    payload into a fresh Message, and flagging that would be noise.
//  - A sanitizer call kills the taint of every argument root (and its
//    receiver) regardless of the branch taken: the idiom is
//    `if (!verify(x)) continue;`, where the verify call dominates every
//    later use, so post-call flow is verified on all surviving paths.
//  - One-level call summaries: a parameter that reaches a builtin sink
//    inside the callee (DolevStrongEngine::accept pushing into the
//    accepted set) makes the call itself a sink for that argument slot.
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/sem/dataflow.hpp"
#include "lint/sem/passes.hpp"

namespace mewc::lint::sem {

namespace {

using Tokens = std::vector<Token>;

[[nodiscard]] bool in_taint_scope(const std::string& path) {
  if (path.rfind("src/ba/adversaries/", 0) == 0) {
    return false;  // the Byzantine party crafts unverified input on purpose
  }
  return path.rfind("src/ba/", 0) == 0 || path.rfind("src/smr/", 0) == 0;
}

[[nodiscard]] bool is_source(const CallSite& c) {
  if (c.tail == "payload_cast" || c.tail == "decode_snapshot" ||
      c.tail == "decode_body") {
    return true;
  }
  return c.recv_root == "wire" && (c.tail == "decode" || c.tail == "view");
}

[[nodiscard]] bool is_sanitizer(const std::string& tail) {
  if (tail.find("verify") != std::string::npos) return true;
  return tail == "valid" || tail == "validate" || tail == "is_valid";
}

// Builtin sink tails: quorum accumulation, certificate formation, meter
// attribution, ledger / durable-state mutation.
[[nodiscard]] bool is_builtin_sink(const std::string& tail) {
  static const std::set<std::string> kSinks = {
      "insert",  "push_back", "emplace_back",     "combine", "record",
      "commit",  "append",    "install_snapshot", "restore", "apply"};
  return kSinks.count(tail) != 0;
}

struct TaintFinding {
  std::uint32_t line = 0;    // sink call line
  std::uint32_t origin = 0;  // source line (0: source inline in the call)
  std::string callee;
  std::string var;  // "" for inline source-to-sink flow
};

// Everything one taint run needs. `findings`/`sink_hit`/`fact_count` are
// null except in the mode that wants them, so the same transfer serves the
// fixpoint, the summary probe, and the report replay.
struct TaintRun {
  const Tokens* toks = nullptr;
  const Cfg* cfg = nullptr;
  Facts seed;  // injected at the entry node (param facts in summary mode)
  const std::map<std::string, std::uint32_t>* summary_sinks = nullptr;
  std::vector<TaintFinding>* findings = nullptr;
  bool* sink_hit = nullptr;
  std::size_t* fact_count = nullptr;

  [[nodiscard]] Facts transfer(std::size_t id, const Facts& in) const {
    Facts f = in;
    if (id == cfg->entry) join_into(f, seed);
    const CfgNode& node = cfg->nodes[id];
    if (node.first >= node.last) return f;

    const std::vector<CallSite> calls =
        find_calls(*toks, node.first, node.last);
    const std::vector<Assignment> assigns =
        find_assignments(*toks, node.first, node.last);

    // Interleave assignments and calls in source order: sanitizer kills,
    // sink checks, and gen/kill of assignments all happen where they occur.
    std::size_t ai = 0;
    std::size_t ci = 0;
    while (ai < assigns.size() || ci < calls.size()) {
      const bool take_assign =
          ci >= calls.size() ||
          (ai < assigns.size() && assigns[ai].eq < calls[ci].name_tok);
      if (take_assign) {
        apply_assignment(assigns[ai], calls, f);
        ++ai;
      } else {
        apply_call(calls[ci], calls, f);
        ++ci;
      }
    }
    return f;
  }

  void kill_call_operands(const CallSite& c, Facts* f) const {
    if (!c.recv_root.empty()) f->erase(c.recv_root);
    for (const auto& [a_first, a_last] : c.args) {
      for (const std::string& r : root_idents(*toks, a_first, a_last)) {
        f->erase(r);
      }
    }
  }

  // Taint state of a token range: reads facts and inline source calls.
  [[nodiscard]] bool range_tainted(std::size_t first, std::size_t last,
                                   const std::vector<CallSite>& calls,
                                   const Facts& f, std::uint32_t* origin,
                                   std::string* via) const {
    bool tainted = false;
    for (const std::string& r : root_idents(*toks, first, last)) {
      const auto it = f.find(r);
      if (it == f.end()) continue;
      if (!tainted || it->second < *origin) {
        *origin = it->second;
        *via = r;
      }
      tainted = true;
    }
    if (!tainted) {
      for (const CallSite& c : calls) {
        if (c.name_tok < first || c.name_tok >= last) continue;
        if (is_source(c)) {
          *origin = (*toks)[c.name_tok].line;
          via->clear();
          return true;
        }
      }
    }
    return tainted;
  }

  void apply_assignment(const Assignment& a, const std::vector<CallSite>& calls,
                        Facts& f) const {
    // Sanitizers inside the right-hand side run before the value lands:
    // `x = verify(y) ? y : fallback` must not taint x via y.
    for (const CallSite& c : calls) {
      if (c.name_tok >= a.rhs_first && c.name_tok < a.rhs_last &&
          is_sanitizer(c.tail)) {
        kill_call_operands(c, &f);
      }
    }
    if (a.lhs_root.empty()) return;
    std::uint32_t origin = 0;
    std::string via;
    if (range_tainted(a.rhs_first, a.rhs_last, calls, f, &origin, &via)) {
      const auto it = f.find(a.lhs_root);
      if (it == f.end() || origin < it->second) f[a.lhs_root] = origin;
      if (fact_count != nullptr) ++*fact_count;
    } else if (!a.compound) {
      f.erase(a.lhs_root);  // strong update: a clean rhs launders the var
    }
  }

  void apply_call(const CallSite& c, const std::vector<CallSite>& calls,
                  Facts& f) const {
    if (is_sanitizer(c.tail)) {
      kill_call_operands(c, &f);
      return;
    }
    std::uint32_t arg_mask = 0;
    if (is_builtin_sink(c.tail)) {
      arg_mask = ~std::uint32_t{0};
    } else if (summary_sinks != nullptr) {
      const auto it = summary_sinks->find(c.tail);
      if (it != summary_sinks->end()) arg_mask = it->second;
    }
    if (arg_mask == 0) return;
    for (std::size_t idx = 0; idx < c.args.size() && idx < 32; ++idx) {
      if ((arg_mask & (std::uint32_t{1} << idx)) == 0) continue;
      std::uint32_t origin = 0;
      std::string via;
      if (!range_tainted(c.args[idx].first, c.args[idx].second, calls, f,
                         &origin, &via)) {
        continue;
      }
      if (sink_hit != nullptr) *sink_hit = true;
      if (findings != nullptr) {
        findings->push_back(
            {(*toks)[c.name_tok].line, origin, c.tail, via});
      }
    }
  }
};

// Probes whether `fn`'s param number `idx` can reach a builtin sink inside
// the body with no sanitizer in between. One level deep on purpose: the
// probe itself uses only builtin sinks, so summaries never recurse.
[[nodiscard]] bool param_reaches_sink(const Tokens& toks, const Cfg& cfg,
                                      const Function& fn, std::size_t idx) {
  bool hit = false;
  TaintRun probe;
  probe.toks = &toks;
  probe.cfg = &cfg;
  probe.seed[fn.params[idx].name] = fn.line;
  probe.sink_hit = &hit;
  const std::vector<Facts> in = solve_forward(
      cfg,
      [&](std::size_t id, const Facts& f) { return probe.transfer(id, f); });
  if (hit) return true;  // hit during fixpoint already suffices
  for (std::size_t id = 0; id < cfg.nodes.size() && !hit; ++id) {
    (void)probe.transfer(id, in[id]);
  }
  return hit;
}

}  // namespace

void pass_taint(const AnalysisCorpus& ac, SemStats* stats, const EmitFn& emit) {
  // Phase 1: one-level call summaries — which functions sink which
  // parameter slots. Keyed by tail name, unioned across overloads: an
  // over-approximation, but a flagged call still requires a genuinely
  // tainted argument, and the scope keeps it to protocol code.
  std::map<std::string, std::uint32_t> summary_sinks;
  for (std::size_t fi = 0; fi < ac.sym.functions.size(); ++fi) {
    const Function& fn = ac.sym.functions[fi];
    if (!in_taint_scope(ac.files[fn.file].norm_path)) continue;
    const Cfg& cfg = ac.cfgs[fi];
    if (!cfg.ok) continue;
    if (is_sanitizer(fn.name)) continue;  // verify helpers clean, not sink
    const Tokens& toks = ac.files[fn.file].lexed.tokens;
    for (std::size_t p = 0; p < fn.params.size() && p < 32; ++p) {
      if (fn.params[p].name.empty()) continue;
      if (param_reaches_sink(toks, cfg, fn, p)) {
        summary_sinks[fn.name] |= std::uint32_t{1} << p;
      }
    }
  }

  // Phase 2: per-function taint runs with real sources.
  for (std::size_t fi = 0; fi < ac.sym.functions.size(); ++fi) {
    const Function& fn = ac.sym.functions[fi];
    const FileCtx& file = ac.files[fn.file];
    if (!in_taint_scope(file.norm_path)) continue;
    const Cfg& cfg = ac.cfgs[fi];
    if (!cfg.ok) continue;
    const Tokens& toks = file.lexed.tokens;

    if (stats != nullptr) {
      for (const CallSite& c :
           find_calls(toks, fn.body_begin, fn.body_end)) {
        if (is_source(c)) ++stats->taint_sources;
      }
    }

    TaintRun run;
    run.toks = &toks;
    run.cfg = &cfg;
    run.summary_sinks = &summary_sinks;
    const std::vector<Facts> in = solve_forward(
        cfg,
        [&](std::size_t id, const Facts& f) { return run.transfer(id, f); });

    std::vector<TaintFinding> findings;
    std::size_t facts = 0;
    run.findings = &findings;
    run.fact_count = &facts;
    for (std::size_t id = 0; id < cfg.nodes.size(); ++id) {
      (void)run.transfer(id, in[id]);
    }
    if (stats != nullptr) stats->taint_facts += facts;

    for (const TaintFinding& f : findings) {
      std::string msg;
      if (f.var.empty()) {
        msg = "wire-decoded value flows into '" + f.callee +
              "' with no Pki/certificate verification on the path";
      } else {
        msg = "'" + f.var + "' originates from unverified wire input (line " +
              std::to_string(f.origin) + ") and reaches '" + f.callee +
              "' with no Pki/certificate verification on the path";
      }
      msg +=
          " — only certified values may count toward quorums, the ledger, "
          "or the meter";
      emit("R-taint", fn.file, f.line, std::move(msg));
    }
  }
}

}  // namespace mewc::lint::sem
