#include "lint/sem/sem.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <string>

#include "lint/sem/passes.hpp"

namespace mewc::lint::sem {

std::vector<Diagnostic> run_sem(const std::vector<SourceFile>& corpus,
                                const SemOptions& opts, SemStats* stats,
                                const Baseline* baseline) {
  const auto t0 = std::chrono::steady_clock::now();

  AnalysisCorpus ac;
  ac.files.reserve(corpus.size());
  std::vector<LexResult> lexed;
  lexed.reserve(corpus.size());
  for (const SourceFile& f : corpus) lexed.push_back(lex(f.content));
  ac.sym = build_symtab(lexed);
  for (std::size_t fi = 0; fi < corpus.size(); ++fi) {
    FileCtx ctx;
    ctx.norm_path = normalize_path(corpus[fi].path);
    ctx.lexed = std::move(lexed[fi]);
    ac.files.push_back(std::move(ctx));
  }
  ac.cfgs.reserve(ac.sym.functions.size());
  for (const Function& fn : ac.sym.functions) {
    ac.cfgs.push_back(build_cfg(ac.files[fn.file].lexed.tokens, fn.body_begin,
                                fn.body_end));
  }

  if (stats != nullptr) {
    stats->files += ac.files.size();
    stats->functions += ac.sym.functions.size();
    for (const Cfg& cfg : ac.cfgs) {
      stats->cfg_nodes += cfg.nodes.size();
      if (!cfg.ok) ++stats->cfg_bailouts;
    }
  }

  // Suppressions per file, plus a dedup set: the report replay visits
  // every node once, but a sink line can be reachable through two nodes.
  std::vector<Suppressions> sups;
  sups.reserve(ac.files.size());
  for (const FileCtx& f : ac.files) {
    sups.push_back(Suppressions::from_comments(f.lexed.comments));
  }
  std::vector<Diagnostic> diags;
  std::set<std::string> seen;
  const EmitFn emit = [&](const char* rule, std::size_t file,
                          std::uint32_t line, std::string msg) {
    Diagnostic d;
    d.rule = rule;
    d.file = ac.files[file].norm_path;
    d.line = line;
    d.message = std::move(msg);
    const std::string key = d.rule + "|" + d.file + "|" +
                            std::to_string(d.line) + "|" + d.message;
    if (!seen.insert(key).second) return;
    d.suppressed = sups[file].covers(line, d.rule);
    diags.push_back(std::move(d));
  };

  pass_taint(ac, stats, emit);
  pass_budget(ac, stats, emit);
  pass_covdrift(ac, opts.paper_text, stats, emit);

  if (baseline != nullptr) {
    for (Diagnostic& d : diags) {
      d.baselined = baseline->entries.count(baseline_key(d)) != 0;
    }
  }
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  if (stats != nullptr) {
    stats->wall_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
  }
  return diags;
}

}  // namespace mewc::lint::sem
