// R-covdrift: paper-line annotation drift. The coverage map declares every
// MEWC_COV site once in the MEWC_COV_SITE_LIST X-macro (check/coverage.hpp)
// and instruments it at exactly the protocol step the paper names; the
// fuzz gate counts on that mapping being live. This pass cross-checks the
// three ways it rots:
//   - a use names a site the list no longer declares (renamed on one side),
//   - a declared site is never instrumented (orphaned) or declared twice,
//   - an algN_lineM_* name references an algorithm PAPER.md never defines.
// All checks are anchored at the site-list declaration: scanning a corpus
// subset that lacks the list (no ground truth) checks nothing rather than
// flagging every use.
#include <cctype>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/sem/passes.hpp"

namespace mewc::lint::sem {

namespace {

using Tokens = std::vector<Token>;

[[nodiscard]] bool is_ident(const Token& t, std::string_view name) {
  return t.kind == TokenKind::kIdentifier && t.text == name;
}

[[nodiscard]] bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

struct SiteRef {
  std::string name;
  std::size_t file = 0;
  std::uint32_t line = 0;
};

// Declarations: the `X(site)` entries of the MEWC_COV_SITE_LIST macro body.
// The lexer keeps '#', 'define', and line-continuation '\' as ordinary
// tokens, so the body is the maximal run of `X ( ident )` groups (with
// backslashes interspersed) after the macro name.
void collect_declared(const Tokens& toks, std::size_t file,
                      std::vector<SiteRef>* out) {
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!is_ident(toks[i], "define") ||
        !is_ident(toks[i + 1], "MEWC_COV_SITE_LIST")) {
      continue;
    }
    std::size_t j = i + 2;
    if (j + 2 < toks.size() && is_punct(toks[j], "(") &&
        is_ident(toks[j + 1], "X") && is_punct(toks[j + 2], ")")) {
      j += 3;  // the macro's own (X) parameter
    }
    while (j < toks.size()) {
      if (is_punct(toks[j], "\\")) {
        ++j;
        continue;
      }
      if (j + 3 < toks.size() && is_ident(toks[j], "X") &&
          is_punct(toks[j + 1], "(") &&
          toks[j + 2].kind == TokenKind::kIdentifier &&
          is_punct(toks[j + 3], ")")) {
        out->push_back({toks[j + 2].text, file, toks[j + 2].line});
        j += 4;
        continue;
      }
      break;  // end of the X-macro body
    }
  }
}

// Uses: `MEWC_COV(site)` instrumentation calls. The macro's own #define is
// not a use of a site named "site".
void collect_used(const Tokens& toks, std::size_t file,
                  std::vector<SiteRef>* out) {
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!is_ident(toks[i], "MEWC_COV")) continue;
    if (i >= 1 && is_ident(toks[i - 1], "define")) continue;
    if (!is_punct(toks[i + 1], "(") ||
        toks[i + 2].kind != TokenKind::kIdentifier ||
        !is_punct(toks[i + 3], ")")) {
      continue;
    }
    out->push_back({toks[i + 2].text, file, toks[i].line});
  }
}

// Algorithms PAPER.md actually defines: every number reachable from an
// "Algorithm"/"Algorithms" mention — "Algorithms 1 + 2", "Algorithm 5",
// and dash ranges ("Algorithms 1-5", en dash included) all parse.
[[nodiscard]] std::set<int> paper_algorithms(const std::string& text) {
  std::set<int> algs;
  std::size_t pos = 0;
  while ((pos = text.find("Algorithm", pos)) != std::string::npos) {
    std::size_t i = pos + 9;
    if (i < text.size() && text[i] == 's') ++i;
    pos = i;
    int prev = -1;
    bool range_pending = false;
    while (i < text.size()) {
      const unsigned char ch = text[i];
      if (std::isspace(ch) != 0 || ch == '+' || ch == ',') {
        ++i;
        continue;
      }
      if (ch == '-' || text.compare(i, 3, "\xe2\x80\x93") == 0 ||
          text.compare(i, 3, "\xe2\x80\x94") == 0) {
        range_pending = prev >= 0;
        i += ch == '-' ? 1 : 3;
        continue;
      }
      if (text.compare(i, 3, "and") == 0) {
        i += 3;
        continue;
      }
      if (std::isdigit(ch) == 0) break;
      int value = 0;
      while (i < text.size() && std::isdigit(static_cast<unsigned char>(
                                    text[i])) != 0) {
        value = value * 10 + (text[i] - '0');
        ++i;
      }
      if (range_pending && prev >= 0) {
        for (int a = prev; a <= value && a - prev < 64; ++a) algs.insert(a);
      } else {
        algs.insert(value);
      }
      prev = value;
      range_pending = false;
    }
  }
  return algs;
}

// Bounded Levenshtein distance for the "renamed?" suggestion.
[[nodiscard]] std::size_t edit_distance(const std::string& a,
                                        const std::string& b) {
  const std::size_t n = a.size() < 64 ? a.size() : 64;
  const std::size_t m = b.size() < 64 ? b.size() : 64;
  std::vector<std::size_t> row(m + 1);
  for (std::size_t j = 0; j <= m; ++j) row[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t up = row[j];
      const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      std::size_t best = sub;
      if (row[j] + 1 < best) best = row[j] + 1;
      if (row[j - 1] + 1 < best) best = row[j - 1] + 1;
      row[j] = best;
      diag = up;
    }
  }
  return row[m];
}

// algN_lineM_slug naming: returns false unless the name parses; fills the
// algorithm number when it does.
[[nodiscard]] bool parse_alg_site(const std::string& name, int* alg,
                                  int* paper_line) {
  if (name.rfind("alg", 0) != 0) return false;
  std::size_t i = 3;
  int a = 0;
  std::size_t digits = 0;
  while (i < name.size() &&
         std::isdigit(static_cast<unsigned char>(name[i])) != 0) {
    a = a * 10 + (name[i] - '0');
    ++i;
    ++digits;
  }
  if (digits == 0 || name.compare(i, 5, "_line") != 0) return false;
  i += 5;
  int l = 0;
  digits = 0;
  while (i < name.size() &&
         std::isdigit(static_cast<unsigned char>(name[i])) != 0) {
    l = l * 10 + (name[i] - '0');
    ++i;
    ++digits;
  }
  if (digits == 0 || i >= name.size() || name[i] != '_' ||
      i + 1 >= name.size()) {
    return false;  // no slug after the line number
  }
  *alg = a;
  *paper_line = l;
  return true;
}

}  // namespace

void pass_covdrift(const AnalysisCorpus& ac, const std::string& paper_text,
                   SemStats* stats, const EmitFn& emit) {
  std::vector<SiteRef> declared;
  std::vector<SiteRef> used;
  for (std::size_t fi = 0; fi < ac.files.size(); ++fi) {
    collect_declared(ac.files[fi].lexed.tokens, fi, &declared);
    collect_used(ac.files[fi].lexed.tokens, fi, &used);
  }
  if (declared.empty()) return;  // no ground truth in this corpus

  std::map<std::string, const SiteRef*> first_decl;
  std::set<std::string> used_names;
  for (const SiteRef& u : used) used_names.insert(u.name);
  if (stats != nullptr) {
    stats->cov_sites_used += used_names.size();
  }

  for (const SiteRef& d : declared) {
    const auto [it, inserted] = first_decl.emplace(d.name, &d);
    if (!inserted) {
      emit("R-covdrift", d.file, d.line,
           "MEWC_COV site '" + d.name +
               "' is declared more than once in the site list (first at "
               "line " +
               std::to_string(it->second->line) +
               ") — duplicate entries skew the coverage denominator");
      continue;
    }
    if (stats != nullptr) ++stats->cov_sites_declared;
    if (used_names.count(d.name) == 0) {
      emit("R-covdrift", d.file, d.line,
           "MEWC_COV site '" + d.name +
               "' is declared in the site list but never instrumented — "
               "orphaned sites make the fuzz gate's reachable-site floor a "
               "lie");
    }
    int alg = 0;
    int paper_line = 0;
    if (parse_alg_site(d.name, &alg, &paper_line)) {
      if (paper_line < 1 || paper_line > 99) {
        emit("R-covdrift", d.file, d.line,
             "MEWC_COV site '" + d.name + "' names paper line " +
                 std::to_string(paper_line) +
                 ", outside any plausible algorithm listing");
      }
      if (!paper_text.empty()) {
        const std::set<int> algs = paper_algorithms(paper_text);
        if (algs.count(alg) == 0) {
          emit("R-covdrift", d.file, d.line,
               "MEWC_COV site '" + d.name + "' references Algorithm " +
                   std::to_string(alg) +
                   ", which PAPER.md does not define — the paper-line map "
                   "has drifted");
        }
      }
    } else if (d.name.rfind("bbvalid_", 0) != 0 &&
               d.name.rfind("afb_", 0) != 0) {
      emit("R-covdrift", d.file, d.line,
           "MEWC_COV site '" + d.name +
               "' matches no naming family (algN_lineM_slug, bbvalid_*, "
               "afb_*) — undocumented families break the paper-line "
               "report");
    }
  }

  for (const SiteRef& u : used) {
    if (first_decl.count(u.name) != 0) continue;
    std::string best;
    std::size_t best_dist = 6;  // suggest only near misses
    for (const auto& [name, ref] : first_decl) {
      if (used_names.count(name) != 0) continue;  // already instrumented
      const std::size_t dist = edit_distance(u.name, name);
      if (dist < best_dist) {
        best_dist = dist;
        best = name;
      }
    }
    std::string msg = "MEWC_COV('" + u.name +
                      "') names a site the site list does not declare";
    if (!best.empty()) {
      msg += " — renamed? nearest unused declared site is '" + best + "'";
    } else {
      msg += " — add it to MEWC_COV_SITE_LIST or fix the name";
    }
    emit("R-covdrift", u.file, u.line, std::move(msg));
  }
}

}  // namespace mewc::lint::sem
