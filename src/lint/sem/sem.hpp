// Semantic lint pass (`mewc_lint --sem`): three rule families that need
// flow, not token patterns, built on the symbol table + CFG + dataflow
// layers in this directory.
//
//   R-taint     src/ba/ src/smr/ (except src/ba/adversaries/): values
//               originating at wire decode/borrow sites (payload_cast,
//               wire::decode, wire::view, decode_snapshot, decode_body) are
//               unverified Byzantine input. On every path from the source
//               to a quorum accumulator (insert/push_back/combine), an SMR
//               ledger mutation (install_snapshot/commit/append/restore/
//               apply), or Meter attribution (record), a Pki / certificate
//               verification call (verify*, valid/validate) must intervene.
//               One-level call summaries catch sinks behind helpers
//               (DolevStrongEngine::accept). The adversaries directory is
//               the Byzantine party itself and is out of scope by design.
//   R-budget    src/ba/ src/sim/: a locally-owned Outbox (local decl,
//               owned member, or alias to one) that is filled via
//               send/broadcast — directly or through a callee that fills
//               its Outbox& parameter, like on_send — must reach word-meter
//               attribution (SyncNetwork::post or LaneOutbox::forward) on
//               every path to function exit. Outbox& parameters are the
//               caller's custody and are exempt. This is the static mirror
//               of the Table-1 accounting: no path may create words the
//               meter never sees.
//   R-covdrift  MEWC_COV paper-line sites: every use names a declared
//               site, every declared site is instrumented somewhere and
//               declared once, and algN_lineM_* names reference an
//               algorithm PAPER.md actually defines. Catches renamed,
//               duplicated, and orphaned annotations when protocol code
//               and the paper map drift apart.
//
// Diagnostics share lint.hpp's suppression (`mewc-lint: allow(...)`) and
// baseline semantics, so --sem composes with the token rules in one gate.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace mewc::lint::sem {

struct SemOptions {
  // PAPER.md text for R-covdrift's algorithm cross-check; empty skips that
  // sub-check (declaration/use drift is still verified).
  std::string paper_text;
};

struct SemStats {
  std::size_t files = 0;
  std::size_t functions = 0;
  std::size_t cfg_nodes = 0;
  std::size_t cfg_bailouts = 0;  // functions skipped (goto/try/unparsable)
  std::size_t taint_sources = 0;
  std::size_t taint_facts = 0;  // facts live at sink-bearing nodes, summed
  std::size_t outbox_fills = 0;
  std::size_t cov_sites_declared = 0;
  std::size_t cov_sites_used = 0;
  double wall_ms = 0.0;
};

/// Runs the semantic rules over the corpus. Same contract as lint::run():
/// returns all diagnostics — suppressed and baselined ones flagged, not
/// dropped — sorted by (file, line, rule).
[[nodiscard]] std::vector<Diagnostic> run_sem(
    const std::vector<SourceFile>& corpus, const SemOptions& opts,
    SemStats* stats = nullptr, const Baseline* baseline = nullptr);

}  // namespace mewc::lint::sem
