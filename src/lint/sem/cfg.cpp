#include "lint/sem/cfg.hpp"

#include <string>

namespace mewc::lint::sem {

namespace {

using Tokens = std::vector<Token>;

[[nodiscard]] bool is_ident(const Token& t, std::string_view name) {
  return t.kind == TokenKind::kIdentifier && t.text == name;
}

[[nodiscard]] bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

// Statements the builder refuses to model. goto breaks the structured
// recursion, exceptions add edges from everywhere, and coroutines suspend;
// a wrong CFG is worse than no CFG, so all of them bail the function.
[[nodiscard]] bool is_bail_keyword(const Token& t) {
  return is_ident(t, "goto") || is_ident(t, "try") || is_ident(t, "catch") ||
         is_ident(t, "co_return") || is_ident(t, "co_await") ||
         is_ident(t, "co_yield") || is_ident(t, "throw");
}

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
constexpr std::size_t kMaxNodes = 50000;

struct Builder {
  const Tokens& toks;
  Cfg cfg;
  bool failed = false;
  // break statements become dangling exits of the innermost loop/switch;
  // continue edges go straight to the innermost loop's re-entry node.
  std::vector<std::vector<std::size_t>*> break_stack;
  std::vector<std::size_t> continue_stack;

  explicit Builder(const Tokens& t) : toks(t) {}

  std::size_t node(std::size_t first, std::size_t last) {
    if (cfg.nodes.size() >= kMaxNodes) failed = true;
    cfg.nodes.push_back(CfgNode{first, last, {}});
    return cfg.nodes.size() - 1;
  }

  void edge(std::size_t from, std::size_t to) {
    cfg.nodes[from].succ.push_back(to);
  }

  void connect(const std::vector<std::size_t>& preds, std::size_t to) {
    for (const std::size_t p : preds) edge(p, to);
  }

  std::size_t match(std::size_t open) {
    const std::size_t m = match_bracket(toks, open);
    if (m == kNpos) failed = true;
    return m;
  }

  // Index just past the end of a simple statement starting at i: the first
  // ';' at bracket depth zero (or `end` if the scan falls off).
  std::size_t statement_end(std::size_t i, std::size_t end) {
    int depth = 0;
    for (std::size_t j = i; j < end; ++j) {
      const Token& t = toks[j];
      if (t.kind != TokenKind::kPunct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
      if (depth < 0) return j;  // stray closer: enclosing construct ends
      if (depth == 0 && t.text == ";") return j + 1;
    }
    return end;
  }

  struct Parsed {
    std::size_t next = 0;            // token index after the statement
    std::vector<std::size_t> exits;  // dangling nodes flowing to whatever
  };                                 // comes after

  Parsed parse_block(std::size_t i, std::size_t end,
                     std::vector<std::size_t> preds) {
    while (i < end && !failed) {
      Parsed p = parse_statement(i, end, preds);
      if (p.next <= i) break;  // no progress: give up rather than loop
      i = p.next;
      preds = std::move(p.exits);
    }
    return {end, std::move(preds)};
  }

  Parsed parse_statement(std::size_t i, std::size_t end,
                         const std::vector<std::size_t>& preds) {
    if (failed || i >= end) return {end, preds};
    const Token& t = toks[i];

    if (is_bail_keyword(t)) {
      failed = true;
      return {end, {}};
    }
    if (is_punct(t, "{")) return parse_compound(i, preds);
    if (is_ident(t, "if")) return parse_if(i, end, preds);
    if (is_ident(t, "while")) return parse_while(i, end, preds);
    if (is_ident(t, "do")) return parse_do(i, end, preds);
    if (is_ident(t, "for")) return parse_for(i, end, preds);
    if (is_ident(t, "switch")) return parse_switch(i, end, preds);
    if (is_ident(t, "return")) {
      const std::size_t stop = statement_end(i, end);
      const std::size_t n = node(i, stop);
      connect(preds, n);
      edge(n, cfg.exit);
      return {stop, {}};
    }
    if (is_ident(t, "break") && !break_stack.empty()) {
      const std::size_t stop = statement_end(i, end);
      const std::size_t n = node(i, stop);
      connect(preds, n);
      break_stack.back()->push_back(n);
      return {stop, {}};
    }
    if (is_ident(t, "continue") && !continue_stack.empty()) {
      const std::size_t stop = statement_end(i, end);
      const std::size_t n = node(i, stop);
      connect(preds, n);
      edge(n, continue_stack.back());
      return {stop, {}};
    }
    // Simple statement (expression, declaration, `;`).
    const std::size_t stop = statement_end(i, end);
    const std::size_t n = node(i, stop);
    connect(preds, n);
    return {stop, {n}};
  }

  Parsed parse_compound(std::size_t i, const std::vector<std::size_t>& preds) {
    const std::size_t close = match(i);
    if (failed) return {i + 1, {}};
    Parsed body = parse_block(i + 1, close, preds);
    return {close + 1, std::move(body.exits)};
  }

  // `if [constexpr] (cond) stmt [else stmt]`. The condition node covers the
  // whole `if (...)` header, so declarations inside the condition are seen
  // by the transfer functions before either branch runs.
  Parsed parse_if(std::size_t i, std::size_t end,
                  const std::vector<std::size_t>& preds) {
    std::size_t open = i + 1;
    if (open < end && is_ident(toks[open], "constexpr")) ++open;
    if (open >= end || !is_punct(toks[open], "(")) {
      failed = true;
      return {end, {}};
    }
    const std::size_t close = match(open);
    if (failed) return {end, {}};
    const std::size_t cond = node(i, close + 1);
    connect(preds, cond);
    Parsed then = parse_statement(close + 1, end, {cond});
    std::vector<std::size_t> exits = std::move(then.exits);
    std::size_t next = then.next;
    if (next < end && is_ident(toks[next], "else")) {
      Parsed els = parse_statement(next + 1, end, {cond});
      exits.insert(exits.end(), els.exits.begin(), els.exits.end());
      next = els.next;
    } else {
      exits.push_back(cond);  // false edge falls through
    }
    return {next, std::move(exits)};
  }

  Parsed parse_while(std::size_t i, std::size_t end,
                     const std::vector<std::size_t>& preds) {
    const std::size_t open = i + 1;
    if (open >= end || !is_punct(toks[open], "(")) {
      failed = true;
      return {end, {}};
    }
    const std::size_t close = match(open);
    if (failed) return {end, {}};
    const std::size_t cond = node(i, close + 1);
    connect(preds, cond);
    std::vector<std::size_t> breaks;
    break_stack.push_back(&breaks);
    continue_stack.push_back(cond);
    Parsed body = parse_statement(close + 1, end, {cond});
    break_stack.pop_back();
    continue_stack.pop_back();
    connect(body.exits, cond);  // back edge
    breaks.push_back(cond);     // false edge exits the loop
    return {body.next, std::move(breaks)};
  }

  Parsed parse_do(std::size_t i, std::size_t end,
                  const std::vector<std::size_t>& preds) {
    const std::size_t head = node(i, i);  // join: loop re-entry point
    connect(preds, head);
    const std::size_t cond = node(0, 0);  // range patched once parsed
    std::vector<std::size_t> breaks;
    break_stack.push_back(&breaks);
    continue_stack.push_back(cond);
    Parsed body = parse_statement(i + 1, end, {head});
    break_stack.pop_back();
    continue_stack.pop_back();
    std::size_t j = body.next;
    if (j >= end || !is_ident(toks[j], "while") || j + 1 >= end ||
        !is_punct(toks[j + 1], "(")) {
      failed = true;
      return {end, {}};
    }
    const std::size_t close = match(j + 1);
    if (failed) return {end, {}};
    cfg.nodes[cond].first = j;
    cfg.nodes[cond].last = close + 1;
    connect(body.exits, cond);
    edge(cond, head);  // back edge
    breaks.push_back(cond);
    std::size_t next = close + 1;
    if (next < end && is_punct(toks[next], ";")) ++next;
    return {next, std::move(breaks)};
  }

  Parsed parse_for(std::size_t i, std::size_t end,
                   const std::vector<std::size_t>& preds) {
    const std::size_t open = i + 1;
    if (open >= end || !is_punct(toks[open], "(")) {
      failed = true;
      return {end, {}};
    }
    const std::size_t close = match(open);
    if (failed) return {end, {}};
    // Range-for has a ':' at paren depth one; classic-for has two depth-one
    // semicolons. "::" lexes as its own token, so a bare ':' is unambiguous.
    std::size_t semi1 = kNpos;
    std::size_t semi2 = kNpos;
    std::size_t colon = kNpos;
    int depth = 0;
    for (std::size_t j = open + 1; j < close; ++j) {
      const Token& tk = toks[j];
      if (tk.kind != TokenKind::kPunct) continue;
      if (tk.text == "(" || tk.text == "[" || tk.text == "{") ++depth;
      if (tk.text == ")" || tk.text == "]" || tk.text == "}") --depth;
      if (depth != 0) continue;
      if (tk.text == ";") {
        if (semi1 == kNpos) {
          semi1 = j;
        } else if (semi2 == kNpos) {
          semi2 = j;
        }
      }
      if (tk.text == ":" && semi1 == kNpos && colon == kNpos) colon = j;
    }
    if (colon != kNpos) {
      // Range-for: one header node; body loops back to it.
      const std::size_t hdr = node(i, close + 1);
      connect(preds, hdr);
      std::vector<std::size_t> breaks;
      break_stack.push_back(&breaks);
      continue_stack.push_back(hdr);
      Parsed body = parse_statement(close + 1, end, {hdr});
      break_stack.pop_back();
      continue_stack.pop_back();
      connect(body.exits, hdr);
      breaks.push_back(hdr);
      return {body.next, std::move(breaks)};
    }
    if (semi1 == kNpos || semi2 == kNpos) {
      failed = true;
      return {end, {}};
    }
    const std::size_t init = node(i, semi1 + 1);
    const std::size_t cond = node(semi1 + 1, semi2 + 1);
    const std::size_t inc = node(semi2 + 1, close + 1);
    connect(preds, init);
    edge(init, cond);
    std::vector<std::size_t> breaks;
    break_stack.push_back(&breaks);
    continue_stack.push_back(inc);
    Parsed body = parse_statement(close + 1, end, {cond});
    break_stack.pop_back();
    continue_stack.pop_back();
    connect(body.exits, inc);
    edge(inc, cond);  // back edge
    breaks.push_back(cond);
    return {body.next, std::move(breaks)};
  }

  // `switch (expr) { case a: ... default: ... }`. Each label starts a group
  // reachable from the switch head; a group without a break falls through
  // into the next label's group, which is exactly the edge fallthrough bugs
  // live on.
  Parsed parse_switch(std::size_t i, std::size_t end,
                      const std::vector<std::size_t>& preds) {
    const std::size_t open = i + 1;
    if (open >= end || !is_punct(toks[open], "(")) {
      failed = true;
      return {end, {}};
    }
    const std::size_t close = match(open);
    if (failed) return {end, {}};
    const std::size_t head = node(i, close + 1);
    connect(preds, head);
    std::size_t body_open = close + 1;
    if (body_open >= end || !is_punct(toks[body_open], "{")) {
      failed = true;
      return {end, {}};
    }
    const std::size_t body_close = match(body_open);
    if (failed) return {end, {}};

    std::vector<std::size_t> breaks;
    break_stack.push_back(&breaks);
    std::vector<std::size_t> dangling;  // fallthrough from the prior group
    bool has_default = false;
    std::size_t j = body_open + 1;
    while (j < body_close && !failed) {
      if (is_ident(toks[j], "case") || is_ident(toks[j], "default")) {
        has_default = has_default || is_ident(toks[j], "default");
        // Label expressions contain no bare ':' (the lexer keeps "::"
        // whole), so the first ':' ends the label.
        std::size_t colon = j + 1;
        while (colon < body_close && !is_punct(toks[colon], ":")) ++colon;
        const std::size_t lbl = node(j, j);
        edge(head, lbl);
        connect(dangling, lbl);  // fallthrough edge
        dangling = {lbl};
        j = colon + 1;
        continue;
      }
      Parsed p = parse_statement(j, body_close, dangling);
      if (p.next <= j) break;
      j = p.next;
      dangling = std::move(p.exits);
    }
    break_stack.pop_back();
    breaks.insert(breaks.end(), dangling.begin(), dangling.end());
    if (!has_default) breaks.push_back(head);
    return {body_close + 1, std::move(breaks)};
  }
};

}  // namespace

std::size_t match_bracket(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
    if (t.text == ")" || t.text == "]" || t.text == "}") {
      --depth;
      if (depth == 0) return j;
    }
  }
  return kNpos;
}

Cfg build_cfg(const std::vector<Token>& toks, std::size_t body_begin,
              std::size_t body_end) {
  Builder b(toks);
  b.cfg.entry = b.node(0, 0);
  b.cfg.exit = b.node(0, 0);
  Builder::Parsed body =
      b.parse_block(body_begin + 1, body_end, {b.cfg.entry});
  b.connect(body.exits, b.cfg.exit);
  b.cfg.ok = !b.failed;
  return b.cfg;
}

}  // namespace mewc::lint::sem
