// Symbol table for the semantic lint pass: finds function definitions in a
// token stream (name, parameter list, body range), collects Outbox-typed
// declarations corpus-wide, and provides the call-site / identifier-root
// scanners the dataflow rules share. Deliberately a token-level
// approximation — good enough to anchor intraprocedural dataflow and
// one-level call summaries without a real C++ front end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace mewc::lint::sem {

struct Param {
  std::string name;
  std::string type_tail;  // last type identifier ("Outbox", "Message", ...)
  bool by_ref = false;
};

struct Function {
  std::size_t file = 0;  // index into the corpus
  std::string name;      // unqualified tail ("on_receive")
  std::string qualified;  // "WeakBaProcess::on_receive" for out-of-line defs
  std::uint32_t line = 0;
  std::size_t body_begin = 0;  // token index of '{'
  std::size_t body_end = 0;    // token index of the matching '}'
  std::vector<Param> params;
};

struct SymbolTable {
  std::vector<Function> functions;
  // Tail name -> indices into `functions` (all overloads, all files).
  std::map<std::string, std::vector<std::size_t>> by_name;
  // Names declared with owned `Outbox` type anywhere (members, globals):
  // the budget rule treats fills of these as local custody.
  std::set<std::string> outbox_vars;
};

/// Scans every file's token stream for function definitions and Outbox
/// declarations. `lexed[i]` corresponds to corpus file i.
[[nodiscard]] SymbolTable build_symtab(const std::vector<LexResult>& lexed);

// ---------------------------------------------------------------------------
// Expression scanners shared by the dataflow rules.

struct CallSite {
  std::size_t name_tok = 0;  // index of the callee's tail identifier
  std::size_t lparen = 0;
  std::size_t rparen = 0;
  std::string tail;       // callee tail name ("verify_partial", "push_back")
  std::string recv_root;  // root of the receiver chain ("" for free calls):
                          // ctx_.scheme(q).verify_partial(x) -> "ctx_"
  std::vector<std::pair<std::size_t, std::size_t>> args;  // token ranges
};

/// Calls in token range [first, last), in source order. A call is an
/// identifier directly followed by '(' that is not a control keyword.
[[nodiscard]] std::vector<CallSite> find_calls(const std::vector<Token>& toks,
                                               std::size_t first,
                                               std::size_t last);

/// Root identifiers read in [first, last): identifiers that are not
/// preceded by '.', '->', or '::' (so members resolve to their object) and
/// are not themselves callee or namespace names (not followed by '(' or
/// '::'). These are the variables a dataflow fact can attach to.
[[nodiscard]] std::set<std::string> root_idents(const std::vector<Token>& toks,
                                                std::size_t first,
                                                std::size_t last);

struct Assignment {
  std::size_t eq = 0;  // token index of '=' (or the range-for ':')
  std::string lhs_root;  // "" when the lvalue is a member/subscript write —
                         // those neither gen nor kill whole-variable facts
  std::size_t rhs_first = 0;
  std::size_t rhs_last = 0;
  bool compound = false;  // '+=' family and range-for: gen but never kill
};

/// Whole-variable assignments and range-for bindings in [first, last).
[[nodiscard]] std::vector<Assignment> find_assignments(
    const std::vector<Token>& toks, std::size_t first, std::size_t last);

}  // namespace mewc::lint::sem
