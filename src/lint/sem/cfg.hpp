// Per-function control-flow graph built over the lint lexer's token stream.
// Nodes are token ranges (a statement, a condition, or an empty join point);
// edges are the possible successors. The builder is a recursive descent over
// statements: if/else, while, do/while, for (classic and range), switch with
// fallthrough, break/continue/return are modeled; anything it cannot parse
// (goto, try, coroutines, runaway macros) makes it bail with ok == false so
// dataflow rules skip the function instead of reasoning over a wrong graph.
#pragma once

#include <cstddef>
#include <vector>

#include "lint/lexer.hpp"

namespace mewc::lint::sem {

struct CfgNode {
  std::size_t first = 0;  // token range [first, last); first == last for
  std::size_t last = 0;   // synthetic join/entry/exit nodes
  std::vector<std::size_t> succ;
};

struct Cfg {
  std::vector<CfgNode> nodes;
  std::size_t entry = 0;
  std::size_t exit = 0;
  bool ok = false;  // false: builder bailed; callers must skip the function
};

/// Builds the CFG for a function body. `body_begin` is the token index of
/// the opening '{', `body_end` the index of its matching '}'. Every path
/// through the body — including early returns — ends at cfg.exit.
[[nodiscard]] Cfg build_cfg(const std::vector<Token>& toks,
                            std::size_t body_begin, std::size_t body_end);

/// Token index of the bracket matching the opener at `open` ('(', '[', or
/// '{'), or npos when the stream ends first. Shared by the symbol table and
/// the CFG builder.
[[nodiscard]] std::size_t match_bracket(const std::vector<Token>& toks,
                                        std::size_t open);

}  // namespace mewc::lint::sem
