// mewc_lint — repo-specific static analysis. The paper's complexity claims
// are counting arguments and the DST engine's replay is bit-for-bit, so a
// handful of conventions are load-bearing: deterministic containers in
// protocol/sim/check state, pooled payload allocation, metered sends, one
// quorum formula, interned meter kinds. This pass turns those conventions
// into machine-checked rules with file:line diagnostics.
//
// Rules (scopes are normalized-path prefixes; see rules() for the table):
//   R-argparse     tools bench: numeric argv goes through
//                  tools::parse_u32/parse_u64 (tools/argparse.hpp), never
//                  atoi/strtoul/std::stoi — those accept '-1' and 'foo'
//                  silently (exempt: tools/argparse.hpp, which owns the one
//                  audited strtoull call).
//   R-determinism  src/ba src/sim src/check: no unordered containers,
//                  rand/random_device, wall clocks, getenv, or
//                  pointer-keyed map/set ordering — anything whose
//                  iteration or value depends on address layout or the
//                  outside world breaks seed-stable replay and shrinking.
//   R-pool         src/ba src/wire: payload construction goes through
//                  pool::make, never raw make_shared/allocate_shared of a
//                  Payload-derived type (bypasses the arena and the
//                  allocation accounting the perf bench regresses on).
//   R-send         src/ba: protocol/adversary code sends via Outbox::send /
//                  broadcast or AdversaryControl::send_as, never
//                  SyncNetwork::post — posting directly skips metering and
//                  recipient validation.
//   R-quorum       src/**: no inline (n + t + 1)-style threshold
//                  arithmetic outside src/common/types.hpp;
//                  commit_quorum(n, t) is the single source of truth.
//   R-meter        src/net src/sim src/ba: no string-keyed breakdown maps
//                  on the hot path; kind ids are interned (Meter).
//
// Three further rule families — R-taint, R-budget, R-covdrift — need flow
// rather than token patterns and live in the semantic pass (lint/sem/,
// `mewc_lint --sem`); they share this header's diagnostic, suppression,
// and baseline machinery and appear in the same rules() table.
//
// Suppressions: a comment `mewc-lint: allow(R-rule[, R-rule]) <reason>`
// silences those rules on its own line, and — when the comment stands on a
// line of its own — on the next line as well. A checked-in baseline file
// (rule|file|line) grandfathers known findings; CI fails only on *new*
// diagnostics, so the tree can adopt a rule before it is fully clean.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.hpp"

namespace mewc::lint {

struct Diagnostic {
  std::string rule;
  std::string file;  // normalized path (see normalize_path)
  std::uint32_t line = 0;
  std::string message;
  bool suppressed = false;  // an allow(<rule>) comment covers this line
  bool baselined = false;   // grandfathered by the baseline file

  /// A finding that should fail the build.
  [[nodiscard]] bool active() const { return !suppressed && !baselined; }
};

struct RuleInfo {
  std::string_view id;
  std::string_view what;   // one-line description
  std::string_view scope;  // space-separated path prefixes
};

/// The rule table, in diagnostic-id order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

struct SourceFile {
  std::string path;     // as given; matched against scopes after normalizing
  std::string content;  // full file text
};

/// Strips any prefix before the repo-root marker directories, so absolute
/// and relative invocations produce identical diagnostics and baseline
/// keys: ".../repo/src/ba/bb.cpp" and "src/ba/bb.cpp" both normalize to
/// "src/ba/bb.cpp".
[[nodiscard]] std::string normalize_path(std::string_view path);

/// Baseline: grandfathered findings keyed "rule|file|line", one per text
/// line; '#' starts a comment. An empty baseline means the tree is clean.
struct Baseline {
  std::set<std::string> entries;

  [[nodiscard]] static Baseline parse(std::string_view text);
  /// Serializes the *active* diagnostics (suppressed ones need no entry).
  [[nodiscard]] static std::string serialize(
      const std::vector<Diagnostic>& diags);
};

[[nodiscard]] std::string baseline_key(const Diagnostic& d);

/// Parsed `mewc-lint: allow(...)` comments: line -> rules allowed on that
/// line (and on the next line for comments standing on a line of their
/// own). Shared by the token rules, the semantic pass, and --audit-allows.
struct Suppressions {
  std::map<std::uint32_t, std::set<std::string>> by_line;

  [[nodiscard]] static Suppressions from_comments(
      const std::vector<Comment>& comments);

  [[nodiscard]] bool covers(std::uint32_t line, const std::string& rule) const {
    const auto it = by_line.find(line);
    return it != by_line.end() && it->second.count(rule) != 0;
  }
};

/// A stale suppression: an allow() comment naming a rule that no longer
/// fires on any line the comment covers (or naming no known rule at all).
/// Stale allows are dead weight that silently blesses future regressions
/// on that line, so --audit-allows fails the build on them.
struct StaleAllow {
  std::string file;  // normalized path
  std::uint32_t line = 0;
  std::string rule;
  std::string why;
};

/// Audits every allow() comment in the corpus against `diags` (the full
/// diagnostic list, including suppressed findings — run all rule passes
/// first). Results are sorted by (file, line, rule).
[[nodiscard]] std::vector<StaleAllow> audit_allows(
    const std::vector<SourceFile>& corpus,
    const std::vector<Diagnostic>& diags);

/// Runs every rule over the corpus (two passes: payload types are collected
/// corpus-wide first, then rules run per file). Returns all diagnostics —
/// including suppressed and baselined ones, flagged as such — sorted by
/// (file, line, rule).
[[nodiscard]] std::vector<Diagnostic> run(
    const std::vector<SourceFile>& corpus,
    const Baseline* baseline = nullptr);

}  // namespace mewc::lint
