#include "lint/sarif.hpp"

#include <map>

#include "check/json.hpp"

namespace mewc::lint {

std::string to_sarif(const std::vector<Diagnostic>& diags) {
  namespace json = check::json;

  json::Array rule_objs;
  std::map<std::string, std::size_t> rule_index;
  for (const RuleInfo& r : rules()) {
    json::Object rule;
    rule["id"] = json::Value(std::string(r.id));
    json::Object short_desc;
    short_desc["text"] = json::Value(std::string(r.what));
    rule["shortDescription"] = json::Value(std::move(short_desc));
    json::Object props;
    props["scope"] = json::Value(std::string(r.scope));
    rule["properties"] = json::Value(std::move(props));
    rule_index[std::string(r.id)] = rule_objs.size();
    rule_objs.push_back(json::Value(std::move(rule)));
  }

  json::Array results;
  for (const Diagnostic& d : diags) {
    json::Object result;
    result["ruleId"] = json::Value(d.rule);
    const auto it = rule_index.find(d.rule);
    if (it != rule_index.end()) {
      result["ruleIndex"] = json::Value(it->second);
    }
    result["level"] = json::Value("error");
    json::Object message;
    message["text"] = json::Value(d.message);
    result["message"] = json::Value(std::move(message));

    json::Object artifact;
    artifact["uri"] = json::Value(d.file);
    json::Object region;
    region["startLine"] = json::Value(d.line);
    json::Object physical;
    physical["artifactLocation"] = json::Value(std::move(artifact));
    physical["region"] = json::Value(std::move(region));
    json::Object location;
    location["physicalLocation"] = json::Value(std::move(physical));
    json::Array locations;
    locations.push_back(json::Value(std::move(location)));
    result["locations"] = json::Value(std::move(locations));

    if (d.suppressed || d.baselined) {
      json::Object sup;
      // allow() comments are in-source suppressions; baseline entries live
      // outside the source, which SARIF spells "external".
      sup["kind"] = json::Value(d.suppressed ? "inSource" : "external");
      json::Array sups;
      sups.push_back(json::Value(std::move(sup)));
      result["suppressions"] = json::Value(std::move(sups));
    }
    results.push_back(json::Value(std::move(result)));
  }

  json::Object driver;
  driver["name"] = json::Value("mewc_lint");
  driver["informationUri"] = json::Value("DESIGN.md#9-static-analysis");
  driver["rules"] = json::Value(std::move(rule_objs));
  json::Object tool;
  tool["driver"] = json::Value(std::move(driver));
  json::Object run;
  run["tool"] = json::Value(std::move(tool));
  run["results"] = json::Value(std::move(results));
  json::Array runs;
  runs.push_back(json::Value(std::move(run)));

  json::Object root;
  root["$schema"] =
      json::Value("https://json.schemastore.org/sarif-2.1.0.json");
  root["version"] = json::Value("2.1.0");
  root["runs"] = json::Value(std::move(runs));
  return json::Value(std::move(root)).dump(2);
}

}  // namespace mewc::lint
