// Comment/string-aware C++ tokenizer for the repo lint pass. Deliberately
// not a real C++ front end: rules match short token patterns (banned
// identifiers, template argument shapes, arithmetic idioms), so lexing into
// identifiers / numbers / punctuation with line numbers is enough — and it
// keeps mewc_lint dependency-free (no libclang in the build image).
//
// Comments are not discarded: they carry `mewc-lint: allow(<rule>)`
// suppressions, so the lexer returns them out-of-band with position info.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mewc::lint {

enum class TokenKind : std::uint8_t {
  kIdentifier,  // identifiers and keywords, no distinction needed
  kNumber,      // integer / float literals (pp-number, loosely)
  kString,      // string literal, including raw strings; text excludes quotes
  kChar,        // character literal
  kPunct,       // operators and punctuation, longest-match ("::", "->", ...)
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  std::uint32_t line = 0;  // 1-based
};

struct Comment {
  std::string text;          // without the // or /* */ markers
  std::uint32_t line = 0;    // line the comment starts on (1-based)
  bool own_line = false;     // only whitespace precedes it on its line
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes `source`. Never fails: unterminated literals or comments are
/// closed at end of input (the linter must degrade gracefully on any file
/// the compiler itself would reject).
[[nodiscard]] LexResult lex(std::string_view source);

}  // namespace mewc::lint
