// SARIF 2.1.0 emitter for mewc_lint diagnostics, so the lint job can
// publish a machine-readable artifact (and code-scanning UIs can ingest
// it). One run, one driver ("mewc_lint"), one result per diagnostic;
// suppressed and baselined findings carry a `suppressions` entry instead of
// being dropped, which is how SARIF consumers are told "known, accepted".
#pragma once

#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace mewc::lint {

/// Serializes `diags` (token + semantic rules alike) as a SARIF 2.1.0
/// document. Deterministic: field order is fixed and results follow the
/// diagnostic sort order.
[[nodiscard]] std::string to_sarif(const std::vector<Diagnostic>& diags);

}  // namespace mewc::lint
