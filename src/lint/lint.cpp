#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <initializer_list>
#include <map>
#include <string>

#include "lint/lexer.hpp"

namespace mewc::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule table

const std::vector<RuleInfo> kRules = {
    {"R-argparse",
     "tools parse numeric argv via tools/argparse.hpp (parse_u32/parse_u64), "
     "never atoi/strtoul-style silent parsing",
     "tools/ bench/ (except tools/argparse.hpp)"},
    {"R-budget",
     "[--sem] every path that fills a locally-owned Outbox reaches "
     "word-meter attribution (SyncNetwork::post / forward) before exit",
     "src/ba/ src/sim/"},
    {"R-covdrift",
     "[--sem] MEWC_COV sites: used names are declared, declared names are "
     "instrumented exactly once each, algN_lineM_* maps to a PAPER.md "
     "algorithm",
     "whole corpus (anchored at the MEWC_COV_SITE_LIST declaration)"},
    {"R-determinism",
     "no unordered containers, rand/random_device, wall clocks, getenv, or "
     "pointer-keyed map/set in replay-critical state",
     "src/ba/ src/sim/ src/check/"},
    {"R-meter",
     "no string-keyed breakdown maps on the hot path; meter kinds are "
     "interned ids",
     "src/net/ src/sim/ src/ba/"},
    {"R-pool",
     "payloads are built with pool::make, never raw "
     "make_shared/allocate_shared of a Payload type",
     "src/ba/ src/wire/"},
    {"R-quorum",
     "no inline (n + t + 1) threshold arithmetic; commit_quorum(n, t) is "
     "the single source of truth",
     "src/ (except src/common/types.hpp)"},
    {"R-send",
     "protocol code sends via Outbox::send/broadcast or "
     "AdversaryControl::send_as, never SyncNetwork::post",
     "src/ba/"},
    {"R-taint",
     "[--sem] wire-decoded values pass Pki/certificate verification before "
     "reaching quorum counters, ledger mutations, or meter attribution",
     "src/ba/ src/smr/ (except src/ba/adversaries/)"},
};

[[nodiscard]] bool in_scope(const std::string& path,
                            std::initializer_list<std::string_view> prefixes) {
  for (const std::string_view p : prefixes) {
    if (path.compare(0, p.size(), p) == 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Token helpers

using Tokens = std::vector<Token>;

[[nodiscard]] bool is_ident(const Token& t, std::string_view name) {
  return t.kind == TokenKind::kIdentifier && t.text == name;
}

[[nodiscard]] bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Token range [first, last) of the first top-level template argument of
/// the '<' at `open`. Returns false when the '<' does not look like a
/// template argument list (scan runs away or input ends) — which also
/// rejects comparison operators in practice.
bool first_template_arg(const Tokens& toks, std::size_t open,
                        std::size_t* first, std::size_t* last) {
  constexpr std::size_t kMaxScan = 120;
  int depth = 1;
  *first = open + 1;
  for (std::size_t i = open + 1;
       i < toks.size() && i < open + kMaxScan; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == "<") ++depth;
    if (t.text == ">") --depth;
    if (t.text == ">>") depth -= 2;
    if (t.text == ";" || t.text == "{") return false;  // not a template list
    if (depth <= 0 || (depth == 1 && t.text == ",")) {
      *last = i;
      return true;
    }
  }
  return false;
}

/// Last identifier of the (possibly qualified) name ending at or before
/// `i`, walking back over `a::b`, `a.b`, `a->b` chains; npos when toks[i]
/// is not an identifier.
[[nodiscard]] std::size_t chain_tail_ident(const Tokens& toks, std::size_t i) {
  if (i >= toks.size() || toks[i].kind != TokenKind::kIdentifier) {
    return std::string::npos;
  }
  return i;
}

// ---------------------------------------------------------------------------
// Corpus-wide pass: collect Payload-derived type names. The declaration
// shape is `struct Name final : public Payload {` (class and multiple bases
// handled); the scan window is bounded so a stray `struct` in a macro can't
// run away.
void collect_payload_types(const Tokens& toks, std::set<std::string>* out) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "struct") && !is_ident(toks[i], "class")) continue;
    if (toks[i + 1].kind != TokenKind::kIdentifier) continue;
    const std::string& name = toks[i + 1].text;
    bool saw_colon = false;
    for (std::size_t j = i + 2; j < toks.size() && j < i + 32; ++j) {
      const Token& t = toks[j];
      if (is_punct(t, "{") || is_punct(t, ";")) break;
      if (is_punct(t, ":")) saw_colon = true;
      if (saw_colon && is_ident(t, "Payload")) {
        out->insert(name);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rules. Each takes the token stream plus an emit callback.

using Emit = std::function<void(std::uint32_t line, std::string message)>;

const std::set<std::string, std::less<>> kBannedTypes = {
    "unordered_map",  "unordered_set",       "unordered_multimap",
    "unordered_multiset", "random_device",   "system_clock",
    "high_resolution_clock",
};
const std::set<std::string, std::less<>> kBannedCalls = {"rand", "srand",
                                                         "getenv"};

// Numeric parsers that accept garbage: atoi-family returns 0 on non-numeric
// input with no error signal, strto*-family silently wraps negatives into
// huge unsigneds and needs endptr/errno discipline nobody gets right inline,
// and the std::sto* wrappers throw where tools want a one-line diagnostic.
const std::set<std::string, std::less<>> kBannedParsers = {
    "atoi", "atol", "atoll", "strtol", "strtoll", "strtoul", "strtoull",
    "stoi", "stol",  "stoll", "stoul",  "stoull"};

void rule_argparse(const Tokens& toks, const Emit& emit) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier ||
        kBannedParsers.count(t.text) == 0) {
      continue;
    }
    if (!is_punct(toks[i + 1], "(")) continue;
    emit(t.line,
         "'" + t.text +
             "()' parses argv without error checking: '--f -1' wraps to "
             "4294967295 and '--n foo' reads as 0 — use "
             "tools::parse_u32/parse_u64 (tools/argparse.hpp)");
  }
}

void rule_determinism(const Tokens& toks, const Emit& emit) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (kBannedTypes.count(t.text) != 0) {
      emit(t.line, "'" + t.text +
                       "' in replay-critical code: iteration order / value "
                       "is not seed-stable, which breaks deterministic "
                       "replay and shrinking");
      continue;
    }
    if (kBannedCalls.count(t.text) != 0 && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(")) {
      emit(t.line, "'" + t.text +
                       "()' in replay-critical code: draws entropy from "
                       "outside the seeded run (use common/rng.hpp)");
      continue;
    }
    // Pointer-keyed ordering: std::map/set keyed (anywhere in the key
    // type) by a raw pointer sorts by address, which varies run to run.
    if ((t.text == "map" || t.text == "set" || t.text == "multimap" ||
         t.text == "multiset") &&
        i + 1 < toks.size() && is_punct(toks[i + 1], "<")) {
      std::size_t first = 0;
      std::size_t last = 0;
      if (!first_template_arg(toks, i + 1, &first, &last)) continue;
      for (std::size_t j = first; j < last; ++j) {
        if (is_punct(toks[j], "*")) {
          emit(t.line,
               "pointer-keyed std::" + t.text +
                   ": ordered by address, which is not seed-stable — key "
                   "by ProcessId/index or an interned id instead");
          break;
        }
      }
    }
  }
}

void rule_meter(const Tokens& toks, const Emit& emit) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier ||
        (t.text != "map" && t.text != "unordered_map")) {
      continue;
    }
    if (!is_punct(toks[i + 1], "<")) continue;
    std::size_t first = 0;
    std::size_t last = 0;
    if (!first_template_arg(toks, i + 1, &first, &last)) continue;
    for (std::size_t j = first; j < last; ++j) {
      if (is_ident(toks[j], "string") || is_ident(toks[j], "string_view")) {
        emit(t.line,
             "string-keyed breakdown map on the hot path: per-message "
             "accounting must use interned kind ids (see "
             "Meter::intern_kind), strings are for the reporting path");
        break;
      }
    }
  }
}

void rule_pool(const Tokens& toks, const std::set<std::string>& payload_types,
               const Emit& emit) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier ||
        (t.text != "make_shared" && t.text != "allocate_shared")) {
      continue;
    }
    if (!is_punct(toks[i + 1], "<")) continue;
    std::size_t first = 0;
    std::size_t last = 0;
    if (!first_template_arg(toks, i + 1, &first, &last)) continue;
    // The named type is the last identifier of the argument's qualified
    // name (skipping const/namespace qualifiers).
    std::string type;
    for (std::size_t j = first; j < last; ++j) {
      if (toks[j].kind == TokenKind::kIdentifier && toks[j].text != "const") {
        type = toks[j].text;
      }
    }
    if (payload_types.count(type) != 0) {
      emit(t.line, "raw std::" + t.text + "<" + type +
                       "> of a payload type: construct with pool::make<" +
                       type +
                       "> (net/arena.hpp) so the allocation is pooled and "
                       "accounted");
    }
  }
}

void rule_quorum(const Tokens& toks, const Emit& emit) {
  // Matches `<n-ish> + <t-ish> + <number>` (and t-ish first) where the
  // operands are the tails of possibly-qualified names: `ctx.n + ctx.t + 1`
  // lexes as [ctx][.][n][+][ctx][.][t][+][1] and must still match.
  const auto n_ish = [](const Token& t) {
    return t.kind == TokenKind::kIdentifier && (t.text == "n" || t.text == "n_");
  };
  const auto t_ish = [](const Token& t) {
    return t.kind == TokenKind::kIdentifier && (t.text == "t" || t.text == "t_");
  };
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_punct(toks[i], "+")) continue;
    // Left operand tail is directly before the '+'.
    if (i == 0) continue;
    const std::size_t lhs = chain_tail_ident(toks, i - 1);
    if (lhs == std::string::npos) continue;
    // Right operand may be a qualified chain; find its tail before the
    // next '+'.
    std::size_t plus2 = std::string::npos;
    for (std::size_t j = i + 1; j < toks.size() && j < i + 8; ++j) {
      if (toks[j].kind == TokenKind::kPunct) {
        if (toks[j].text == "+") {
          plus2 = j;
          break;
        }
        if (toks[j].text != "." && toks[j].text != "->" &&
            toks[j].text != "::") {
          break;  // some other operator: not our pattern
        }
      }
    }
    if (plus2 == std::string::npos || plus2 + 1 >= toks.size()) continue;
    const std::size_t mid = chain_tail_ident(toks, plus2 - 1);
    if (mid == std::string::npos) continue;
    if (toks[plus2 + 1].kind != TokenKind::kNumber) continue;
    const bool nt = n_ish(toks[lhs]) && t_ish(toks[mid]);
    const bool tn = t_ish(toks[lhs]) && n_ish(toks[mid]);
    if (nt || tn) {
      emit(toks[lhs].line,
           "inline quorum arithmetic: derive thresholds with "
           "commit_quorum(n, t) (common/types.hpp) so the "
           "ceil((n+t+1)/2) intersection bound has one owner");
    }
  }
}

void rule_send(const Tokens& toks, const Emit& emit) {
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "post")) continue;
    if (!is_punct(toks[i - 1], ".") && !is_punct(toks[i - 1], "->")) continue;
    if (!is_punct(toks[i + 1], "(")) continue;
    emit(toks[i].line,
         "direct SyncNetwork::post from protocol code: send via "
         "Outbox::send/broadcast (or AdversaryControl::send_as) so every "
         "word is metered and recipients are validated");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Suppressions: `mewc-lint: allow(<rule>[, <rule>]) reason...`

Suppressions Suppressions::from_comments(const std::vector<Comment>& comments) {
  Suppressions sup;
  for (const Comment& c : comments) {
    const std::size_t tag = c.text.find("mewc-lint:");
    if (tag == std::string::npos) continue;
    const std::size_t open = c.text.find("allow(", tag);
    if (open == std::string::npos) continue;
    const std::size_t close = c.text.find(')', open);
    if (close == std::string::npos) continue;
    std::set<std::string> rules_here;
    std::string cur;
    for (std::size_t i = open + 6; i <= close; ++i) {
      const char ch = c.text[i];
      if (ch == ',' || ch == ')' || ch == ' ') {
        if (!cur.empty()) rules_here.insert(cur);
        cur.clear();
      } else {
        cur.push_back(ch);
      }
    }
    if (rules_here.empty()) continue;
    sup.by_line[c.line].insert(rules_here.begin(), rules_here.end());
    if (c.own_line) {
      sup.by_line[c.line + 1].insert(rules_here.begin(), rules_here.end());
    }
  }
  return sup;
}

std::vector<StaleAllow> audit_allows(const std::vector<SourceFile>& corpus,
                                     const std::vector<Diagnostic>& diags) {
  std::set<std::string> known;
  for (const RuleInfo& r : rules()) known.insert(std::string(r.id));
  // (rule, file, line) of every finding, active or not: an allow comment is
  // justified exactly when some finding lands on a line it covers.
  std::set<std::string> fired;
  for (const Diagnostic& d : diags) {
    fired.insert(d.rule + "|" + d.file + "|" + std::to_string(d.line));
  }

  std::vector<StaleAllow> stale;
  for (const SourceFile& f : corpus) {
    const std::string path = normalize_path(f.path);
    const LexResult lexed = lex(f.content);
    for (const Comment& c : lexed.comments) {
      // Re-parse this one comment through the shared parser so the audit
      // can never disagree with what run() actually suppresses.
      const Suppressions sup = Suppressions::from_comments({c});
      const auto it = sup.by_line.find(c.line);
      if (it == sup.by_line.end()) continue;
      for (const std::string& rule : it->second) {
        if (known.count(rule) == 0) {
          // Only flag names that could plausibly be a rule id. Doc comments
          // quote the syntax with placeholders — `allow(<rule>)`,
          // `allow(...)` — and those can never suppress anything, so they
          // are prose, not stale suppressions.
          bool plausible = true;
          for (const char ch : rule) {
            if (std::isalnum(static_cast<unsigned char>(ch)) == 0 &&
                ch != '-' && ch != '_') {
              plausible = false;
              break;
            }
          }
          if (plausible) {
            stale.push_back({path, c.line, rule, "names no known rule"});
          }
          continue;
        }
        const bool here =
            fired.count(rule + "|" + path + "|" + std::to_string(c.line)) != 0;
        const bool next =
            c.own_line && fired.count(rule + "|" + path + "|" +
                                      std::to_string(c.line + 1)) != 0;
        if (!here && !next) {
          stale.push_back(
              {path, c.line, rule,
               "the rule no longer fires on the line(s) this comment "
               "covers — remove the allow or re-justify it"});
        }
      }
    }
  }
  std::sort(stale.begin(), stale.end(),
            [](const StaleAllow& a, const StaleAllow& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return stale;
}

// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rules() { return kRules; }

std::string normalize_path(std::string_view path) {
  static constexpr std::string_view kMarkers[] = {
      "src/", "tests/", "tools/", "bench/", "examples/"};
  std::string p(path);
  std::size_t cut = std::string::npos;
  for (const std::string_view m : kMarkers) {
    const std::size_t at = p.rfind(std::string("/") + std::string(m));
    if (at != std::string::npos && (cut == std::string::npos || at > cut)) {
      cut = at;
    }
  }
  return cut == std::string::npos ? p : p.substr(cut + 1);
}

Baseline Baseline::parse(std::string_view text) {
  Baseline b;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    if (!line.empty()) b.entries.insert(std::string(line));
    if (eol == text.size()) break;
  }
  return b;
}

std::string baseline_key(const Diagnostic& d) {
  return d.rule + "|" + d.file + "|" + std::to_string(d.line);
}

std::string Baseline::serialize(const std::vector<Diagnostic>& diags) {
  std::set<std::string> keys;
  for (const Diagnostic& d : diags) {
    if (!d.suppressed) keys.insert(baseline_key(d));
  }
  std::string out =
      "# mewc_lint baseline: grandfathered findings (rule|file|line).\n"
      "# Regenerate with: mewc_lint --write-baseline <paths>\n";
  for (const std::string& k : keys) {
    out += k;
    out += '\n';
  }
  return out;
}

std::vector<Diagnostic> run(const std::vector<SourceFile>& corpus,
                            const Baseline* baseline) {
  // Pass 1: payload types are declared in headers and used in other
  // translation units, so collect them corpus-wide before running rules.
  std::set<std::string> payload_types;
  std::vector<LexResult> lexed;
  lexed.reserve(corpus.size());
  for (const SourceFile& f : corpus) {
    lexed.push_back(lex(f.content));
    collect_payload_types(lexed.back().tokens, &payload_types);
  }

  std::vector<Diagnostic> diags;
  for (std::size_t fi = 0; fi < corpus.size(); ++fi) {
    const std::string path = normalize_path(corpus[fi].path);
    const Tokens& toks = lexed[fi].tokens;
    const Suppressions sup = Suppressions::from_comments(lexed[fi].comments);

    const auto emitter = [&](const char* rule) {
      return [&, rule](std::uint32_t line, std::string message) {
        Diagnostic d;
        d.rule = rule;
        d.file = path;
        d.line = line;
        d.message = std::move(message);
        d.suppressed = sup.covers(line, d.rule);
        diags.push_back(std::move(d));
      };
    };

    if (in_scope(path, {"tools/", "bench/"}) && path != "tools/argparse.hpp") {
      rule_argparse(toks, emitter("R-argparse"));
    }
    if (in_scope(path, {"src/ba/", "src/sim/", "src/check/"})) {
      rule_determinism(toks, emitter("R-determinism"));
    }
    if (in_scope(path, {"src/net/", "src/sim/", "src/ba/"})) {
      rule_meter(toks, emitter("R-meter"));
    }
    if (in_scope(path, {"src/ba/", "src/wire/"})) {
      rule_pool(toks, payload_types, emitter("R-pool"));
    }
    if (in_scope(path, {"src/"}) && path != "src/common/types.hpp") {
      rule_quorum(toks, emitter("R-quorum"));
    }
    if (in_scope(path, {"src/ba/"})) {
      rule_send(toks, emitter("R-send"));
    }
  }

  if (baseline != nullptr) {
    for (Diagnostic& d : diags) {
      d.baselined = baseline->entries.count(baseline_key(d)) != 0;
    }
  }

  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return diags;
}

}  // namespace mewc::lint
