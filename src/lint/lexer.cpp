#include "lint/lexer.hpp"

#include <cctype>

namespace mewc::lint {

namespace {

[[nodiscard]] bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

// Multi-character punctuators the rules care to see as one token. Longest
// match first; anything else falls through to a single-character token.
constexpr std::string_view kPuncts[] = {
    "->*", "<<=", ">>=", "...", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "++", "--", "+=", "-=", "*=", "/=",
};

}  // namespace

LexResult lex(std::string_view src) {
  LexResult out;
  std::uint32_t line = 1;
  bool line_has_code = false;  // non-whitespace seen before this column
  std::size_t i = 0;
  const std::size_t n = src.size();

  const auto peek = [&](std::size_t off) -> char {
    return i + off < n ? src[i + off] : '\0';
  };
  const auto newline = [&] {
    ++line;
    line_has_code = false;
  };

  while (i < n) {
    const char c = src[i];

    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && peek(1) == '/') {
      Comment cm;
      cm.line = line;
      cm.own_line = !line_has_code;
      i += 2;
      while (i < n && src[i] != '\n') cm.text.push_back(src[i++]);
      out.comments.push_back(std::move(cm));
      continue;
    }

    // Block comment (may span lines; attributed to its first line).
    if (c == '/' && peek(1) == '*') {
      Comment cm;
      cm.line = line;
      cm.own_line = !line_has_code;
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') newline();
        cm.text.push_back(src[i++]);
      }
      i = i < n ? i + 2 : n;  // consume "*/" unless input ended first
      out.comments.push_back(std::move(cm));
      continue;
    }

    line_has_code = true;

    // Raw string literal: R"delim( ... )delim". Must be handled before the
    // identifier path would swallow the R.
    if (c == 'R' && peek(1) == '"') {
      Token t;
      t.kind = TokenKind::kString;
      t.line = line;
      i += 2;
      std::string delim;
      while (i < n && src[i] != '(') delim.push_back(src[i++]);
      if (i < n) ++i;  // '('
      const std::string closer = ")" + delim + "\"";
      while (i < n && src.substr(i, closer.size()) != closer) {
        if (src[i] == '\n') newline();
        t.text.push_back(src[i++]);
      }
      i = i < n ? i + closer.size() : n;
      out.tokens.push_back(std::move(t));
      continue;
    }

    if (is_ident_start(c)) {
      Token t;
      t.kind = TokenKind::kIdentifier;
      t.line = line;
      while (i < n && is_ident_char(src[i])) t.text.push_back(src[i++]);
      out.tokens.push_back(std::move(t));
      continue;
    }

    // Number: pp-number, loosely (digits, ', ., exponents, suffixes). A
    // leading '.' followed by a digit is a number too.
    if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
      Token t;
      t.kind = TokenKind::kNumber;
      t.line = line;
      while (i < n &&
             (is_ident_char(src[i]) || src[i] == '\'' || src[i] == '.' ||
              ((src[i] == '+' || src[i] == '-') &&
               (src[i - 1] == 'e' || src[i - 1] == 'E' || src[i - 1] == 'p' ||
                src[i - 1] == 'P')))) {
        t.text.push_back(src[i++]);
      }
      out.tokens.push_back(std::move(t));
      continue;
    }

    // String / char literal with escape handling.
    if (c == '"' || c == '\'') {
      Token t;
      t.kind = c == '"' ? TokenKind::kString : TokenKind::kChar;
      t.line = line;
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          t.text.push_back(src[i++]);
        } else if (src[i] == '\n') {
          // Unterminated literal: close it at the line break rather than
          // swallowing the rest of the file.
          break;
        }
        t.text.push_back(src[i++]);
      }
      if (i < n && src[i] == quote) ++i;
      out.tokens.push_back(std::move(t));
      continue;
    }

    // Punctuation, longest match first.
    Token t;
    t.kind = TokenKind::kPunct;
    t.line = line;
    bool matched = false;
    for (const std::string_view p : kPuncts) {
      if (src.substr(i, p.size()) == p) {
        t.text = std::string(p);
        i += p.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      t.text = std::string(1, c);
      ++i;
    }
    out.tokens.push_back(std::move(t));
  }

  return out;
}

}  // namespace mewc::lint
