// Byte-level primitives shared by every durable/wire format: little-endian
// field writer/reader (the same primitives the message codec uses) and a
// length-prefixed, checksummed frame container.
//
// A frame is the unit of torn-write detection in the WAL and the snapshot
// store: `u32 body_len | u64 checksum(body) | body`. A reader either gets a
// fully-verified body back or learns exactly where the valid prefix ends —
// there is no way to observe a partially-written or corrupted record.
//
// The checksum is FNV-1a/64 finished through mix64. It is not cryptographic
// (integrity against crash-torn writes and bit rot, not against forgery —
// authenticity of durable state comes from the checkpoint certificates the
// snapshot carries).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace mewc::wire {

/// Little-endian field writer over a growable byte buffer.
class Writer {
 public:
  Writer() = default;
  /// Adopts `reuse`'s storage (cleared) so a caller encoding in a loop can
  /// recycle one buffer across iterations instead of allocating per
  /// message; take() hands the storage back.
  explicit Writer(std::vector<std::uint8_t> reuse) : buf_(std::move(reuse)) {
    buf_.clear();
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Bytes written so far — pair with patch_u32 for length-prefixed nesting.
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  /// Overwrites a previously written u32 in place (little-endian). Lets a
  /// caller emit a placeholder length, encode a nested payload directly into
  /// this buffer, then fix the prefix up — no temporary allocation.
  void patch_u32(std::size_t offset, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_[offset + i] = (v >> (8 * i)) & 0xff;
  }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Little-endian field reader; sticky-fails on any overrun so callers can
/// batch reads and check ok()/done() once.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool done() const { return ok_ && pos_ == bytes_.size(); }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes_[pos_++]} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes_[pos_++]} << (8 * i);
    return v;
  }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) ok_ = false;  // canonical booleans only
    return v == 1;
  }

  /// Consumes `len` raw bytes (for nested encodings).
  std::span<const std::uint8_t> take_bytes(std::uint32_t len) {
    if (!need(len)) return {};
    const auto out = bytes_.subspan(pos_, len);
    pos_ += len;
    return out;
  }

 private:
  bool need(std::size_t k) {
    if (!ok_ || bytes_.size() - pos_ < k) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Deterministic 64-bit content checksum (FNV-1a finished through mix64).
[[nodiscard]] std::uint64_t checksum(std::span<const std::uint8_t> bytes);

/// Frame header size: u32 body length + u64 body checksum.
inline constexpr std::size_t kFrameHeader = 4 + 8;
/// Frames larger than this are rejected as corrupt (a torn length prefix
/// must not make the reader chase gigabytes of garbage).
inline constexpr std::uint32_t kMaxFrameBody = 1u << 28;

/// Appends one frame (header + body) to `out`.
void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> body);

/// One verified frame: the body view plus the total on-disk footprint.
struct FrameView {
  std::span<const std::uint8_t> body;
  std::size_t frame_size = 0;  // kFrameHeader + body.size()
};

/// Parses the frame starting at `offset`. Returns nullopt when the bytes
/// from `offset` do not hold one complete, checksum-valid frame (truncated
/// header, truncated body, oversized length, or checksum mismatch) — the
/// caller treats `offset` as the end of the valid prefix.
[[nodiscard]] std::optional<FrameView> read_frame(
    std::span<const std::uint8_t> bytes, std::size_t offset);

}  // namespace mewc::wire
