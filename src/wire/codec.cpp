#include "wire/codec.hpp"

#include "ba/bb/bb.hpp"
#include "ba/fallback/dolev_strong.hpp"
#include "ba/strong_ba/strong_ba.hpp"
#include "ba/vector/interactive_consistency.hpp"
#include "ba/weak_ba/messages.hpp"
#include "common/check.hpp"
#include "net/arena.hpp"
#include "wire/frame.hpp"

namespace mewc::wire {

namespace {

// Byte primitives (Writer/Reader) live in wire/frame.hpp, shared with the
// durable WAL/snapshot formats.

// When set, every signature/certificate tag field encodes as zero. This is
// the semantic projection behind encode_semantic(): tags are the one wire
// field that legitimately differs between crypto backends (a MAC vs a
// compressed curve point over the same digest), so the cross-backend
// differential harness compares transcripts with tags masked and everything
// else — values, digests, signer sets, thresholds — byte-exact.
// Thread-local because campaign workers encode concurrently.
thread_local bool g_mask_tags = false;

std::uint64_t tag_bits(std::uint64_t tag) { return g_mask_tags ? 0 : tag; }

// ---------------------------------------------------------------------------
// Compound field codecs.
// ---------------------------------------------------------------------------

void put_signature(Writer& w, const Signature& s) {
  w.u32(s.signer);
  w.u64(s.digest.bits);
  w.u64(tag_bits(s.tag));
}

Signature get_signature(Reader& r) {
  Signature s;
  s.signer = r.u32();
  s.digest.bits = r.u64();
  s.tag = r.u64();
  return s;
}

void put_partial(Writer& w, const PartialSig& p) {
  w.u32(p.signer);
  w.u64(p.digest.bits);
  w.u32(p.k);
  w.u64(tag_bits(p.tag));
}

PartialSig get_partial(Reader& r) {
  PartialSig p;
  p.signer = r.u32();
  p.digest.bits = r.u64();
  p.k = r.u32();
  p.tag = r.u64();
  return p;
}

void put_threshold(Writer& w, const ThresholdSig& t) {
  w.u64(t.digest.bits);
  w.u32(t.k);
  w.u64(tag_bits(t.tag));
}

ThresholdSig get_threshold(Reader& r) {
  ThresholdSig t;
  t.digest.bits = r.u64();
  t.k = r.u32();
  t.tag = r.u64();
  return t;
}

void put_signer_set(Writer& w, const SignerSet& s) {
  w.u32(s.universe());
  w.u32(s.count());
  // Walk the bitset directly — members() would allocate a vector per encode,
  // which the substrate bench pins at zero on the steady-state path.
  for (ProcessId p = 0; p < s.universe(); ++p) {
    if (s.contains(p)) w.u32(p);
  }
}

std::optional<SignerSet> get_signer_set(Reader& r) {
  const std::uint32_t universe = r.u32();
  const std::uint32_t count = r.u32();
  if (!r.ok() || universe > 1u << 20 || count > universe) return std::nullopt;
  SignerSet s(universe);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t pid = r.u32();
    if (!r.ok() || pid >= universe || !s.insert(pid)) return std::nullopt;
  }
  return s;
}

void put_agg(Writer& w, const AggSignature& a) {
  w.u64(a.digest.bits);
  w.u64(tag_bits(a.tag));
  put_signer_set(w, a.signers);
}

std::optional<AggSignature> get_agg(Reader& r) {
  AggSignature a;
  a.digest.bits = r.u64();
  a.tag = r.u64();
  auto signers = get_signer_set(r);
  if (!signers) return std::nullopt;
  a.signers = std::move(*signers);
  return a;
}

void put_wire_value(Writer& w, const WireValue& v) {
  w.u64(v.value.raw);
  w.u8(static_cast<std::uint8_t>(v.prov));
  w.u64(v.aux);
  w.boolean(v.sig.has_value());
  if (v.sig) put_signature(w, *v.sig);
  w.boolean(v.cert.has_value());
  if (v.cert) put_threshold(w, *v.cert);
}

std::optional<WireValue> get_wire_value(Reader& r) {
  WireValue v;
  v.value.raw = r.u64();
  const std::uint8_t prov = r.u8();
  if (prov > static_cast<std::uint8_t>(Provenance::kCertified)) {
    return std::nullopt;
  }
  v.prov = static_cast<Provenance>(prov);
  v.aux = r.u64();
  if (r.boolean()) v.sig = get_signature(r);
  if (r.boolean()) v.cert = get_threshold(r);
  if (!r.ok()) return std::nullopt;
  // Canonical form: attachments must match the claimed provenance.
  if ((v.prov == Provenance::kSigned) != v.sig.has_value()) return std::nullopt;
  if ((v.prov == Provenance::kCertified) != v.cert.has_value()) {
    return std::nullopt;
  }
  return v;
}

// ---------------------------------------------------------------------------
// Per-payload encoders.
// ---------------------------------------------------------------------------

template <typename T>
PayloadPtr finish(Reader& r, std::shared_ptr<T> msg) {
  if (!r.done()) return nullptr;
  return msg;
}

}  // namespace

std::optional<std::vector<std::uint8_t>> encode(const Payload& payload) {
  std::vector<std::uint8_t> out;
  if (!encode_into(payload, out)) return std::nullopt;
  return out;
}

namespace {

/// Dispatch body shared by encode_into and the nested kIcMux encoding.
/// Writes directly into `w`; on failure the Writer may hold a partial
/// prefix — the caller discards it.
bool encode_payload(Writer& w, const Payload& payload) {
  if (const auto* m = dynamic_cast<const wba::ProposeMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kWbaPropose));
    w.u64(m->phase);
    put_wire_value(w, m->value);
  } else if (const auto* m = dynamic_cast<const wba::VoteMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kWbaVote));
    w.u64(m->phase);
    put_partial(w, m->partial);
  } else if (const auto* m = dynamic_cast<const wba::CommitMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kWbaCommit));
    w.u64(m->phase);
    put_wire_value(w, m->value);
    w.u64(m->level);
    put_threshold(w, m->qc);
  } else if (const auto* m = dynamic_cast<const wba::DecideMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kWbaDecide));
    w.u64(m->phase);
    put_partial(w, m->partial);
  } else if (const auto* m =
                 dynamic_cast<const wba::FinalizedMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kWbaFinalized));
    w.u64(m->phase);
    put_wire_value(w, m->value);
    put_threshold(w, m->qc);
  } else if (const auto* m = dynamic_cast<const wba::HelpReqMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kWbaHelpReq));
    put_partial(w, m->partial);
  } else if (const auto* m = dynamic_cast<const wba::HelpMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kWbaHelp));
    put_wire_value(w, m->value);
    w.u64(m->proof_phase);
    put_threshold(w, m->decide_proof);
  } else if (const auto* m = dynamic_cast<const wba::FallbackMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kWbaFallback));
    put_threshold(w, m->fallback_qc);
    w.boolean(m->has_decision);
    if (m->has_decision) {
      put_wire_value(w, m->value);
      w.u64(m->proof_phase);
      put_threshold(w, m->decide_proof);
    }
  } else if (const auto* m =
                 dynamic_cast<const bb::SenderValueMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kBbSenderValue));
    put_wire_value(w, m->value);
  } else if (const auto* m = dynamic_cast<const bb::HelpReqMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kBbHelpReq));
    w.u64(m->phase);
  } else if (const auto* m =
                 dynamic_cast<const bb::ReplyValueMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kBbReplyValue));
    w.u64(m->phase);
    put_wire_value(w, m->value);
  } else if (const auto* m = dynamic_cast<const bb::IdkMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kBbIdk));
    w.u64(m->phase);
    put_partial(w, m->partial);
  } else if (const auto* m =
                 dynamic_cast<const bb::LeaderValueMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kBbLeaderValue));
    w.u64(m->phase);
    put_wire_value(w, m->value);
  } else if (const auto* m = dynamic_cast<const sba::InputMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kSbaInput));
    w.u64(m->value.raw);
    put_partial(w, m->partial);
  } else if (const auto* m =
                 dynamic_cast<const sba::ProposeCertMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kSbaProposeCert));
    w.u64(m->value.raw);
    put_threshold(w, m->qc);
  } else if (const auto* m =
                 dynamic_cast<const sba::DecideVoteMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kSbaDecideVote));
    w.u64(m->value.raw);
    put_partial(w, m->partial);
  } else if (const auto* m =
                 dynamic_cast<const sba::DecideCertMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kSbaDecideCert));
    w.u64(m->value.raw);
    put_threshold(w, m->qc);
  } else if (const auto* m = dynamic_cast<const sba::FallbackMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kSbaFallback));
    w.boolean(m->has_decision);
    w.u64(m->value.raw);
    if (m->has_decision) put_threshold(w, m->proof);
  } else if (const auto* m =
                 dynamic_cast<const fallback::DsRelayMsg*>(&payload)) {
    w.u8(static_cast<std::uint8_t>(WireType::kDsRelay));
    w.u32(m->instance);
    put_wire_value(w, m->value);
    put_agg(w, m->chain);
  } else if (const auto* m = dynamic_cast<const ic::MuxMsg*>(&payload)) {
    if (m->inner == nullptr) return false;
    w.u8(static_cast<std::uint8_t>(WireType::kIcMux));
    w.u32(m->lane);
    // Length-prefix the nested payload without a temporary buffer: write a
    // placeholder, encode the inner message straight into this Writer, then
    // backpatch the real length.
    const std::size_t len_at = w.size();
    w.u32(0);
    const std::size_t body_start = w.size();
    if (!encode_payload(w, *m->inner)) return false;
    w.patch_u32(len_at, static_cast<std::uint32_t>(w.size() - body_start));
  } else {
    return false;  // non-protocol payload (test-only types)
  }
  return true;
}

}  // namespace

bool encode_into(const Payload& payload, std::vector<std::uint8_t>& out) {
  Writer w(std::move(out));
  const bool ok = encode_payload(w, payload);
  // Hand the storage back to the caller on every exit path.
  out = w.take();
  if (!ok) out.clear();
  return ok;
}

bool encode_semantic(const Payload& payload, std::vector<std::uint8_t>& out) {
  g_mask_tags = true;
  const bool ok = encode_into(payload, out);
  g_mask_tags = false;
  return ok;
}

PayloadPtr decode(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  const auto type = static_cast<WireType>(r.u8());
  if (!r.ok()) return nullptr;

  switch (type) {
    case WireType::kWbaPropose: {
      auto m = pool::make<wba::ProposeMsg>();
      m->phase = r.u64();
      auto v = get_wire_value(r);
      if (!v) return nullptr;
      m->value = *v;
      return finish(r, m);
    }
    case WireType::kWbaVote: {
      auto m = pool::make<wba::VoteMsg>();
      m->phase = r.u64();
      m->partial = get_partial(r);
      return finish(r, m);
    }
    case WireType::kWbaCommit: {
      auto m = pool::make<wba::CommitMsg>();
      m->phase = r.u64();
      auto v = get_wire_value(r);
      if (!v) return nullptr;
      m->value = *v;
      m->level = r.u64();
      m->qc = get_threshold(r);
      return finish(r, m);
    }
    case WireType::kWbaDecide: {
      auto m = pool::make<wba::DecideMsg>();
      m->phase = r.u64();
      m->partial = get_partial(r);
      return finish(r, m);
    }
    case WireType::kWbaFinalized: {
      auto m = pool::make<wba::FinalizedMsg>();
      m->phase = r.u64();
      auto v = get_wire_value(r);
      if (!v) return nullptr;
      m->value = *v;
      m->qc = get_threshold(r);
      return finish(r, m);
    }
    case WireType::kWbaHelpReq: {
      auto m = pool::make<wba::HelpReqMsg>();
      m->partial = get_partial(r);
      return finish(r, m);
    }
    case WireType::kWbaHelp: {
      auto m = pool::make<wba::HelpMsg>();
      auto v = get_wire_value(r);
      if (!v) return nullptr;
      m->value = *v;
      m->proof_phase = r.u64();
      m->decide_proof = get_threshold(r);
      return finish(r, m);
    }
    case WireType::kWbaFallback: {
      auto m = pool::make<wba::FallbackMsg>();
      m->fallback_qc = get_threshold(r);
      m->has_decision = r.boolean();
      if (m->has_decision) {
        auto v = get_wire_value(r);
        if (!v) return nullptr;
        m->value = *v;
        m->proof_phase = r.u64();
        m->decide_proof = get_threshold(r);
      }
      return finish(r, m);
    }
    case WireType::kBbSenderValue: {
      auto m = pool::make<bb::SenderValueMsg>();
      auto v = get_wire_value(r);
      if (!v) return nullptr;
      m->value = *v;
      return finish(r, m);
    }
    case WireType::kBbHelpReq: {
      auto m = pool::make<bb::HelpReqMsg>();
      m->phase = r.u64();
      return finish(r, m);
    }
    case WireType::kBbReplyValue: {
      auto m = pool::make<bb::ReplyValueMsg>();
      m->phase = r.u64();
      auto v = get_wire_value(r);
      if (!v) return nullptr;
      m->value = *v;
      return finish(r, m);
    }
    case WireType::kBbIdk: {
      auto m = pool::make<bb::IdkMsg>();
      m->phase = r.u64();
      m->partial = get_partial(r);
      return finish(r, m);
    }
    case WireType::kBbLeaderValue: {
      auto m = pool::make<bb::LeaderValueMsg>();
      m->phase = r.u64();
      auto v = get_wire_value(r);
      if (!v) return nullptr;
      m->value = *v;
      return finish(r, m);
    }
    case WireType::kSbaInput: {
      auto m = pool::make<sba::InputMsg>();
      m->value.raw = r.u64();
      m->partial = get_partial(r);
      return finish(r, m);
    }
    case WireType::kSbaProposeCert: {
      auto m = pool::make<sba::ProposeCertMsg>();
      m->value.raw = r.u64();
      m->qc = get_threshold(r);
      return finish(r, m);
    }
    case WireType::kSbaDecideVote: {
      auto m = pool::make<sba::DecideVoteMsg>();
      m->value.raw = r.u64();
      m->partial = get_partial(r);
      return finish(r, m);
    }
    case WireType::kSbaDecideCert: {
      auto m = pool::make<sba::DecideCertMsg>();
      m->value.raw = r.u64();
      m->qc = get_threshold(r);
      return finish(r, m);
    }
    case WireType::kSbaFallback: {
      auto m = pool::make<sba::FallbackMsg>();
      m->has_decision = r.boolean();
      m->value.raw = r.u64();
      if (m->has_decision) m->proof = get_threshold(r);
      return finish(r, m);
    }
    case WireType::kDsRelay: {
      auto m = pool::make<fallback::DsRelayMsg>();
      m->instance = r.u32();
      auto v = get_wire_value(r);
      if (!v) return nullptr;
      m->value = *v;
      auto chain = get_agg(r);
      if (!chain) return nullptr;
      m->chain = std::move(*chain);
      return finish(r, m);
    }
    case WireType::kIcMux: {
      auto m = pool::make<ic::MuxMsg>();
      m->lane = r.u32();
      const std::uint32_t len = r.u32();
      if (!r.ok() || len > 1u << 20) return nullptr;
      const auto inner_bytes = r.take_bytes(len);
      if (!r.ok()) return nullptr;
      // Lanes carry only base protocol messages: reject nested mux BEFORE
      // recursing, so crafted input cannot drive unbounded recursion.
      if (inner_bytes.empty() ||
          inner_bytes.front() ==
              static_cast<std::uint8_t>(WireType::kIcMux)) {
        return nullptr;
      }
      m->inner = decode(inner_bytes);  // one nesting level
      if (m->inner == nullptr) return nullptr;
      return finish(r, m);
    }
  }
  return nullptr;  // unknown tag
}

namespace {

/// What an unparseable byte string becomes on delivery: a payload no
/// protocol recognizes, so receivers drop it — exactly how a deployment
/// treats garbage frames. (An adversary can hand-construct non-canonical
/// in-memory payloads that have no valid wire form; those must degrade to
/// noise, not crash the simulation.)
struct UnparseablePayload final : Payload {
  [[nodiscard]] std::size_t words() const override { return 1; }
  [[nodiscard]] const char* kind() const override { return "wire.garbage"; }
};

}  // namespace

PayloadPtr roundtrip(const PayloadPtr& payload) {
  MEWC_CHECK(payload != nullptr);
  const auto bytes = encode(*payload);
  if (!bytes) return payload;  // non-protocol payload: pass through
  PayloadPtr parsed = decode(*bytes);
  if (parsed == nullptr) return pool::make<UnparseablePayload>();
  return parsed;
}

}  // namespace mewc::wire
