#include "wire/frame.hpp"

#include "common/hash.hpp"

namespace mewc::wire {

std::uint64_t checksum(std::span<const std::uint8_t> bytes) {
  // FNV-1a/64 over the body, finished through mix64 so short bodies still
  // spread across all 64 bits.
  std::uint64_t h = 14695981039346656037ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return mix64(h ^ (std::uint64_t{0x66726d} << 32 | bytes.size()));
}

void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> body) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.u64(checksum(body));
  auto header = w.take();
  out.insert(out.end(), header.begin(), header.end());
  out.insert(out.end(), body.begin(), body.end());
}

std::optional<FrameView> read_frame(std::span<const std::uint8_t> bytes,
                                    std::size_t offset) {
  if (offset > bytes.size() || bytes.size() - offset < kFrameHeader) {
    return std::nullopt;
  }
  Reader r(bytes.subspan(offset, kFrameHeader));
  const std::uint32_t len = r.u32();
  const std::uint64_t sum = r.u64();
  if (!r.done() || len > kMaxFrameBody) return std::nullopt;
  if (bytes.size() - offset - kFrameHeader < len) return std::nullopt;
  const auto body = bytes.subspan(offset + kFrameHeader, len);
  if (checksum(body) != sum) return std::nullopt;
  return FrameView{body, kFrameHeader + len};
}

}  // namespace mewc::wire
