#include "wire/view.hpp"

#include "common/check.hpp"
#include "wire/frame.hpp"

namespace mewc::wire {

namespace {

// Mirrors the compound-field readers in codec.cpp, minus every allocation:
// the only dynamic structure on the materializing path is the SignerSet,
// which the view keeps as a borrowed span of encoded pids instead.

Signature get_signature(Reader& r) {
  Signature s;
  s.signer = r.u32();
  s.digest.bits = r.u64();
  s.tag = r.u64();
  return s;
}

PartialSig get_partial(Reader& r) {
  PartialSig p;
  p.signer = r.u32();
  p.digest.bits = r.u64();
  p.k = r.u32();
  p.tag = r.u64();
  return p;
}

ThresholdSig get_threshold(Reader& r) {
  ThresholdSig t;
  t.digest.bits = r.u64();
  t.k = r.u32();
  t.tag = r.u64();
  return t;
}

std::uint32_t read_u32_at(std::span<const std::uint8_t> bytes,
                          std::size_t base) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes[base + i]} << (8 * i);
  return v;
}

/// Validates the signer-set bytes without building the set: every pid in
/// range and strictly increasing (what the encoder emits; see the header
/// note about this deliberate tightening).
bool get_agg_view(Reader& r, AggSigView& out) {
  out.digest.bits = r.u64();
  out.tag = r.u64();
  out.universe = r.u32();
  const std::uint32_t count = r.u32();
  if (!r.ok() || out.universe > 1u << 20 || count > out.universe) return false;
  out.member_bytes = r.take_bytes(count * 4);
  if (!r.ok()) return false;
  std::uint64_t prev = ~0ull;  // sentinel: first pid always passes
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t pid = read_u32_at(out.member_bytes, std::size_t{i} * 4);
    if (pid >= out.universe) return false;
    if (prev != ~0ull && pid <= prev) return false;
    prev = pid;
  }
  return true;
}

bool get_wire_value(Reader& r, WireValue& v) {
  v.value.raw = r.u64();
  const std::uint8_t prov = r.u8();
  if (prov > static_cast<std::uint8_t>(Provenance::kCertified)) return false;
  v.prov = static_cast<Provenance>(prov);
  v.aux = r.u64();
  if (r.boolean()) v.sig = get_signature(r);
  if (r.boolean()) v.cert = get_threshold(r);
  if (!r.ok()) return false;
  // Canonical form: attachments must match the claimed provenance.
  if ((v.prov == Provenance::kSigned) != v.sig.has_value()) return false;
  if ((v.prov == Provenance::kCertified) != v.cert.has_value()) return false;
  return true;
}

std::optional<PayloadView> finish(const Reader& r, const PayloadView& out) {
  if (!r.done()) return std::nullopt;
  return out;
}

}  // namespace

ProcessId AggSigView::member(std::uint32_t i) const {
  MEWC_CHECK_MSG(std::size_t{i} * 4 < member_bytes.size(),
                 "signer index out of range");
  return read_u32_at(member_bytes, std::size_t{i} * 4);
}

std::optional<PayloadView> view(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  PayloadView out;
  out.type = static_cast<WireType>(r.u8());
  if (!r.ok()) return std::nullopt;

  switch (out.type) {
    case WireType::kWbaPropose:
      out.phase = r.u64();
      if (!get_wire_value(r, out.value)) return std::nullopt;
      return finish(r, out);
    case WireType::kWbaVote:
      out.phase = r.u64();
      out.partial = get_partial(r);
      return finish(r, out);
    case WireType::kWbaCommit:
      out.phase = r.u64();
      if (!get_wire_value(r, out.value)) return std::nullopt;
      out.level = r.u64();
      out.qc = get_threshold(r);
      return finish(r, out);
    case WireType::kWbaDecide:
      out.phase = r.u64();
      out.partial = get_partial(r);
      return finish(r, out);
    case WireType::kWbaFinalized:
      out.phase = r.u64();
      if (!get_wire_value(r, out.value)) return std::nullopt;
      out.qc = get_threshold(r);
      return finish(r, out);
    case WireType::kWbaHelpReq:
      out.partial = get_partial(r);
      return finish(r, out);
    case WireType::kWbaHelp:
      if (!get_wire_value(r, out.value)) return std::nullopt;
      out.proof_phase = r.u64();
      out.qc = get_threshold(r);
      return finish(r, out);
    case WireType::kWbaFallback:
      out.qc = get_threshold(r);  // fallback_qc
      out.has_decision = r.boolean();
      if (out.has_decision) {
        if (!get_wire_value(r, out.value)) return std::nullopt;
        out.proof_phase = r.u64();
        out.proof = get_threshold(r);  // decide_proof
      }
      return finish(r, out);
    case WireType::kBbSenderValue:
      if (!get_wire_value(r, out.value)) return std::nullopt;
      return finish(r, out);
    case WireType::kBbHelpReq:
      out.phase = r.u64();
      return finish(r, out);
    case WireType::kBbReplyValue:
      out.phase = r.u64();
      if (!get_wire_value(r, out.value)) return std::nullopt;
      return finish(r, out);
    case WireType::kBbIdk:
      out.phase = r.u64();
      out.partial = get_partial(r);
      return finish(r, out);
    case WireType::kBbLeaderValue:
      out.phase = r.u64();
      if (!get_wire_value(r, out.value)) return std::nullopt;
      return finish(r, out);
    case WireType::kSbaInput:
      out.raw_value.raw = r.u64();
      out.partial = get_partial(r);
      return finish(r, out);
    case WireType::kSbaProposeCert:
      out.raw_value.raw = r.u64();
      out.qc = get_threshold(r);
      return finish(r, out);
    case WireType::kSbaDecideVote:
      out.raw_value.raw = r.u64();
      out.partial = get_partial(r);
      return finish(r, out);
    case WireType::kSbaDecideCert:
      out.raw_value.raw = r.u64();
      out.qc = get_threshold(r);
      return finish(r, out);
    case WireType::kSbaFallback:
      out.has_decision = r.boolean();
      out.raw_value.raw = r.u64();
      if (out.has_decision) out.qc = get_threshold(r);
      return finish(r, out);
    case WireType::kDsRelay:
      out.instance = r.u32();
      if (!get_wire_value(r, out.value)) return std::nullopt;
      if (!get_agg_view(r, out.chain)) return std::nullopt;
      return finish(r, out);
    case WireType::kIcMux: {
      out.lane = r.u32();
      const std::uint32_t len = r.u32();
      if (!r.ok() || len > 1u << 20) return std::nullopt;
      out.inner = r.take_bytes(len);
      if (!r.ok()) return std::nullopt;
      // Same anti-recursion rule as decode: lanes carry base messages only.
      if (out.inner.empty() ||
          out.inner.front() == static_cast<std::uint8_t>(WireType::kIcMux)) {
        return std::nullopt;
      }
      return finish(r, out);
    }
  }
  return std::nullopt;  // unknown tag
}

}  // namespace mewc::wire
