// Wire codec: byte-level serialization for every protocol message.
//
// The simulator normally passes payloads by pointer; this module provides
// the encoding a real deployment would put on the network, plus a
// round-trip mode (harness::RunSpec::codec_roundtrip) in which the network
// re-encodes and re-parses EVERY message — proving no protocol depends on
// in-memory object sharing, and that the parser rejects malformed bytes
// instead of crashing.
//
// Format: little-endian, length-prefixed containers, one leading type tag
// per payload. The decoder is total: any byte string either parses into a
// well-formed payload or returns nullptr.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/payload.hpp"

namespace mewc::wire {

/// Stable on-wire payload type tags.
enum class WireType : std::uint8_t {
  kWbaPropose = 1,
  kWbaVote = 2,
  kWbaCommit = 3,
  kWbaDecide = 4,
  kWbaFinalized = 5,
  kWbaHelpReq = 6,
  kWbaHelp = 7,
  kWbaFallback = 8,
  kBbSenderValue = 9,
  kBbHelpReq = 10,
  kBbReplyValue = 11,
  kBbIdk = 12,
  kBbLeaderValue = 13,
  kSbaInput = 14,
  kSbaProposeCert = 15,
  kSbaDecideVote = 16,
  kSbaDecideCert = 17,
  kSbaFallback = 18,
  kDsRelay = 19,
  kIcMux = 20,
};

/// Serializes a payload. Returns nullopt for payload types outside the
/// protocol set (e.g. test-only types) — callers treat those as opaque.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> encode(
    const Payload& payload);

/// Serializes into `out`, reusing its storage (cleared first): encoding in
/// a loop with one long-lived buffer allocates nothing once the buffer has
/// grown to the working-set size — the encode half of the zero-alloc codec
/// path. Returns false (with `out` cleared) for non-protocol payloads.
[[nodiscard]] bool encode_into(const Payload& payload,
                               std::vector<std::uint8_t>& out);

/// Like encode_into, but every signature/certificate tag field encodes as
/// zero. Tags are the one field whose bytes legitimately differ between
/// crypto backends (a MAC vs a compressed curve point over the same
/// digest); this projection is what MessageLog::semantic_digest() hashes to
/// pin ideal <-> real transcript equivalence on everything else.
[[nodiscard]] bool encode_semantic(const Payload& payload,
                                   std::vector<std::uint8_t>& out);

/// Parses a payload. Returns nullptr on any malformed input: unknown tag,
/// truncation, trailing garbage, or out-of-range field.
[[nodiscard]] PayloadPtr decode(std::span<const std::uint8_t> bytes);

/// Transformer for SyncNetwork: encode-then-decode each message, aborting
/// the run if a correct process ever produced something unencodable or
/// unparseable. Payload types without a wire form pass through unchanged.
[[nodiscard]] PayloadPtr roundtrip(const PayloadPtr& payload);

}  // namespace mewc::wire
