// Zero-copy decode: borrowed views over encoded payload bytes.
//
// wire::decode materializes a heap payload object per message (pooled, but
// still a shared_ptr + copy of every field). On the hot receive path that
// is wasted motion: a receiver usually reads two or three fields and moves
// on. view() instead validates the byte string in place and returns a
// PayloadView — a flat, stack-only struct whose fixed-size fields are
// decoded straight out of the input span and whose variable-size fields
// (an aggregate signature's signer list, a mux lane's inner message) stay
// *in* the input span, exposed as sub-spans the caller iterates lazily.
// Nothing is allocated on this path, which bench_substrate_regression pins
// at exactly zero steady-state allocations.
//
// Lifetime rules (the part that makes zero-copy safe):
//  - A PayloadView borrows the bytes it was parsed from. The arena
//    (src/net/arena.*) or the owning buffer must outlive every read
//    through the view; the view never extends a lifetime.
//  - Views are values: copy them freely, but a copy borrows the SAME
//    bytes. Never store a view past the buffer's release point — convert
//    to an owned payload with wire::decode first if state must persist.
//  - Sub-views (signers(), inner()) borrow from the same span and follow
//    the same rule.
//
// view() accepts exactly the byte strings wire::decode accepts, with one
// deliberate tightening: signer bitmaps must list members in strictly
// increasing order. The encoder always emits them that way (SignerSet
// iterates ascending), so the only inputs affected are hand-crafted ones —
// and for those view() returns nullopt, signalling "take the materializing
// path", never a wrong parse.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "ba/value.hpp"
#include "wire/codec.hpp"

namespace mewc::wire {

/// Borrowed view of an aggregate signature: fixed fields decoded, the
/// signer list left in place as 4-byte little-endian pids.
struct AggSigView {
  Digest digest;
  std::uint64_t tag = 0;
  std::uint32_t universe = 0;
  std::span<const std::uint8_t> member_bytes;  // count x u32, ascending

  [[nodiscard]] std::uint32_t count() const {
    return static_cast<std::uint32_t>(member_bytes.size() / 4);
  }
  /// Decodes member i out of the borrowed bytes.
  [[nodiscard]] ProcessId member(std::uint32_t i) const;
};

/// One parsed payload, fields borrowed from or decoded out of the input
/// span. Which fields are meaningful depends on type() — the accessors
/// mirror the per-type field lists in wire/codec.cpp exactly.
struct PayloadView {
  WireType type = WireType::kWbaPropose;

  std::uint64_t phase = 0;       // wba/bb phase fields
  std::uint64_t level = 0;       // kWbaCommit
  std::uint64_t proof_phase = 0; // kWbaHelp, kWbaFallback
  std::uint32_t instance = 0;    // kDsRelay
  std::uint32_t lane = 0;        // kIcMux
  bool has_decision = false;     // kWbaFallback, kSbaFallback

  Value raw_value{};             // sba one-word values
  WireValue value;               // value-carrying kinds
  PartialSig partial{};          // vote-style kinds
  ThresholdSig qc{};             // primary certificate (qc / fallback_qc /
                                 // decide_proof when it is the only cert)
  ThresholdSig proof{};          // second certificate: kWbaFallback's
                                 // decide_proof beside its fallback_qc
  AggSigView chain;              // kDsRelay

  /// kIcMux only: the lane's inner encoded message, borrowed. Re-run
  /// view() on it to read the inner payload (one nesting level, exactly
  /// like decode).
  std::span<const std::uint8_t> inner;
};

/// Parses `bytes` into a borrowed view. Returns nullopt when the bytes are
/// malformed OR use a non-canonical form the view path does not cover —
/// callers fall back to wire::decode, which is the arbiter of validity.
[[nodiscard]] std::optional<PayloadView> view(
    std::span<const std::uint8_t> bytes);

}  // namespace mewc::wire
