// Synchronous network (paper Section 2): reliable authenticated links and a
// known delay bound, modeled as lockstep rounds — a message sent at the
// beginning of round r is received by every correct recipient within round
// r. The network stamps the true link-level sender, delivers everything
// (Byzantine processes can send garbage but cannot drop or forge correct
// processes' messages), and meters words.
//
// Self-delivery is supported (pseudocode like "broadcast" includes the
// sender) but costs zero words: only traffic that crosses a link counts.
//
// Recipient ids are validated here, not just in Outbox: an adversary (or a
// buggy caller handing over an Outbox sized for a different system) can
// address a process that does not exist, and the model's answer is that
// such a message falls on the floor — there is no link to carry it. The
// simulator must never turn adversary-chosen ids into out-of-bounds writes,
// so post() DROPS out-of-range recipients (mirroring Outbox::send) rather
// than aborting.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "net/message.hpp"
#include "net/meter.hpp"
#include "net/outbox.hpp"

namespace mewc {

class SyncNetwork {
 public:
  explicit SyncNetwork(std::uint32_t n) : n_(n), meter_(n), inboxes_(n) {}

  /// Installs a per-message transformer applied at post time — used by the
  /// wire codec's round-trip mode to re-encode and re-parse every message,
  /// proving nothing depends on in-memory payload sharing.
  void set_transform(std::function<PayloadPtr(const PayloadPtr&)> transform) {
    transform_ = std::move(transform);
  }

  /// Installs an observer invoked for every link-crossing message (self
  /// deliveries excluded, matching the meter). Used by trace tooling.
  void set_recorder(std::function<void(const Message&, bool correct)> rec) {
    recorder_ = std::move(rec);
  }

  [[nodiscard]] std::uint32_t n() const { return n_; }

  /// Posts everything a process sent this round. `correct` selects the meter
  /// bucket (the paper's complexity counts correct senders only).
  void post(ProcessId from, Round round, const Outbox& out, bool correct) {
    MEWC_CHECK(from < n_);
    for (const auto& [to, original] : out.sends()) {
      MEWC_CHECK(original != nullptr);
      if (to >= n_) continue;  // no such link: junk addressing is dropped
      const PayloadPtr body = transform_ ? transform_(original) : original;
      MEWC_CHECK(body != nullptr);
      Message m;
      m.from = from;
      m.to = to;
      m.round = round;
      m.words = Message::cost_of(*body);
      m.body = body;
      if (to != from) {
        meter_.record(from, round, m.words, body->logical_signatures(),
                      body->kind(), correct);
        if (recorder_) recorder_(m, correct);
      }
      // The rushing view is recorded here, post-transform, so the adversary
      // sees exactly the messages (bodies and metered word costs) that are
      // delivered — never an independently rebuilt copy that could diverge
      // from what crossed the wire.
      if (correct) posted_.push_back(m);
      inboxes_[to].push_back(std::move(m));
    }
  }

  /// All messages delivered to `pid` in the current round.
  [[nodiscard]] std::span<const Message> inbox(ProcessId pid) const {
    MEWC_CHECK(pid < n_);
    return inboxes_[pid];
  }

  /// Everything correct processes posted in the current round, exactly as
  /// delivered (post-transform, self-copies included) — the adversary's
  /// rushing view.
  [[nodiscard]] std::span<const Message> posted_this_round() const {
    return posted_;
  }

  /// Starts a round's send phase by clearing the previous rushing view.
  /// Called by the executor after the adversary's pre_round step, which may
  /// still inspect the previous round's view (matching the historical
  /// visibility window). Buffer capacity is retained.
  void begin_sends() { posted_.clear(); }

  /// Clears inboxes at the end of a round. Synchrony: undelivered state
  /// never carries over; what was sent in round r exists only in round r.
  /// Buffers keep their capacity — in steady state no round allocates.
  void end_round() {
    for (auto& box : inboxes_) box.clear();
  }

  [[nodiscard]] const Meter& meter() const { return meter_; }
  [[nodiscard]] Meter& meter() { return meter_; }

 private:
  std::uint32_t n_;
  Meter meter_;
  std::vector<std::vector<Message>> inboxes_;
  std::vector<Message> posted_;
  std::function<PayloadPtr(const PayloadPtr&)> transform_;
  std::function<void(const Message&, bool)> recorder_;
};

}  // namespace mewc
