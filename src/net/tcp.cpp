#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace mewc::net {

namespace {

constexpr std::uint8_t kFrameHandshake = 0;
constexpr std::uint8_t kFrameData = 1;
constexpr std::uint8_t kFrameMark = 2;

/// Inbound envelopes buffered across all instances before the transport
/// starts shedding load (peers running ahead are bounded by their own
/// round timeouts, so this is a misbehaving-peer backstop, not a tuning
/// knob).
constexpr std::size_t kMaxQueuedEnvelopes = 1u << 16;
/// Per-peer outbound backlog while a connection is down; beyond this the
/// whole backlog is dropped on the frame boundary (the peer's round
/// synchronizer would discard it as late anyway).
constexpr std::size_t kMaxPendingBytes = 4u << 20;

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

std::vector<std::uint8_t> frame_of(const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> framed;
  framed.reserve(wire::kFrameHeader + body.size());
  wire::append_frame(framed, body);
  return framed;
}

}  // namespace

TcpTransport::TcpTransport(TcpTransportConfig config)
    : config_(std::move(config)),
      marks_(config_.n),
      pending_(config_.n),
      out_ready_(config_.n, false),
      in_ready_(config_.n, false) {
  for (const TcpPeer& p : config_.peers) {
    if (p.id == config_.self || p.id >= config_.n) continue;
    OutConn c;
    c.peer = p.id;
    c.host = p.host;
    c.port = p.port;
    c.backoff_ms = config_.reconnect_min_ms;
    outs_.push_back(std::move(c));
  }
}

TcpTransport::~TcpTransport() { shutdown(); }

bool TcpTransport::start(std::string* error) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return false;
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(config_.listen_port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = "bind: " + std::string(strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);
  if (listen(listen_fd_, 64) != 0 || !set_nonblocking(listen_fd_)) {
    if (error != nullptr) *error = "listen: " + std::string(strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (pipe(wake_pipe_) != 0 || !set_nonblocking(wake_pipe_[0])) {
    if (error != nullptr) *error = "pipe: " + std::string(strerror(errno));
    return false;
  }
  running_.store(true);
  io_thread_ = std::thread([this] { io_loop(); });
  return true;
}

void TcpTransport::shutdown() {
  if (running_.exchange(false)) {
    wake();
    if (io_thread_.joinable()) io_thread_.join();
  } else if (io_thread_.joinable()) {
    io_thread_.join();
  }
  for (OutConn& c : outs_) {
    if (c.fd >= 0) close(c.fd);
    c.fd = -1;
  }
  for (InConn& c : ins_) {
    if (c.fd >= 0) close(c.fd);
  }
  ins_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
}

void TcpTransport::wake() {
  if (wake_pipe_[1] >= 0) {
    const std::uint8_t b = 1;
    [[maybe_unused]] const ssize_t n = write(wake_pipe_[1], &b, 1);
  }
}

bool TcpTransport::wait_connected(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    bool all = true;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      for (ProcessId p = 0; p < config_.n; ++p) {
        if (p == config_.self) continue;
        if (!out_ready_[p] || !in_ready_[p]) {
          all = false;
          break;
        }
      }
    }
    if (all) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void TcpTransport::queue_to_peer(ProcessId to,
                                 const std::vector<std::uint8_t>& framed) {
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    std::vector<std::uint8_t>& buf = pending_[to];
    if (buf.size() + framed.size() > kMaxPendingBytes) {
      // Shed the whole backlog on a frame boundary: the peer has been gone
      // long enough that its synchronizer would drop all of it as late.
      stats_.overflow_drops.fetch_add(1, std::memory_order_relaxed);
      buf.clear();
    }
    buf.insert(buf.end(), framed.begin(), framed.end());
  }
  wake();
}

void TcpTransport::send(Envelope env) {
  if (env.to >= config_.n || env.body == nullptr) return;
  if (env.to == config_.self) {
    // Self-delivery never crosses a socket; it still goes through the
    // inbound queue so delivery order is one stream.
    enqueue(std::move(env));
    return;
  }
  const auto payload = wire::encode(*env.body);
  if (!payload) {
    stats_.encode_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  wire::Writer w;
  w.u8(kFrameData);
  w.u32(env.to);
  w.u64(env.instance);
  w.u32(env.round);
  w.u32(static_cast<std::uint32_t>(payload->size()));
  std::vector<std::uint8_t> body = w.take();
  body.insert(body.end(), payload->begin(), payload->end());
  queue_to_peer(env.to, frame_of(body));
  stats_.envelopes_sent.fetch_add(1, std::memory_order_relaxed);
}

void TcpTransport::mark(std::uint64_t instance, Round round) {
  wire::Writer w;
  w.u8(kFrameMark);
  w.u64(instance);
  w.u32(round);
  const std::vector<std::uint8_t> framed = frame_of(w.take());
  for (ProcessId p = 0; p < config_.n; ++p) {
    if (p == config_.self) continue;
    queue_to_peer(p, framed);
  }
}

void TcpTransport::enqueue(Envelope env) {
  {
    std::lock_guard<std::mutex> lock(in_mu_);
    if (env.instance < instance_floor_) {
      stats_.dropped_stale.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (queued_total_ >= kMaxQueuedEnvelopes) {
      stats_.overflow_drops.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    queues_[env.instance].push_back(std::move(env));
    ++queued_total_;
  }
  in_cv_.notify_all();
}

bool TcpTransport::receive(std::uint64_t instance, Envelope& out,
                           int timeout_ms) {
  std::unique_lock<std::mutex> lock(in_mu_);
  if (instance > instance_floor_) instance_floor_ = instance;
  while (!queues_.empty() && queues_.begin()->first < instance_floor_) {
    stats_.dropped_stale.fetch_add(queues_.begin()->second.size(),
                                   std::memory_order_relaxed);
    queued_total_ -= queues_.begin()->second.size();
    queues_.erase(queues_.begin());
  }
  auto ready = [&] {
    auto it = queues_.find(instance);
    return it != queues_.end() && !it->second.empty();
  };
  if (!ready() && timeout_ms > 0) {
    in_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready);
  }
  if (!ready()) return false;
  auto& q = queues_[instance];
  out = std::move(q.front());
  q.pop_front();
  --queued_total_;
  return true;
}

TcpTransportStats TcpTransport::stats() const {
  TcpTransportStats s;
  s.envelopes_sent = stats_.envelopes_sent.load(std::memory_order_relaxed);
  s.envelopes_received =
      stats_.envelopes_received.load(std::memory_order_relaxed);
  s.marks_received = stats_.marks_received.load(std::memory_order_relaxed);
  s.bytes_sent = stats_.bytes_sent.load(std::memory_order_relaxed);
  s.bytes_received = stats_.bytes_received.load(std::memory_order_relaxed);
  s.reconnects = stats_.reconnects.load(std::memory_order_relaxed);
  s.encode_drops = stats_.encode_drops.load(std::memory_order_relaxed);
  s.decode_drops = stats_.decode_drops.load(std::memory_order_relaxed);
  s.overflow_drops = stats_.overflow_drops.load(std::memory_order_relaxed);
  s.dropped_stale = stats_.dropped_stale.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// IO thread
// ---------------------------------------------------------------------------

void TcpTransport::start_connect(OutConn& c) {
  c.fd = socket(AF_INET, SOCK_STREAM, 0);
  if (c.fd < 0) {
    fail_connection(c);
    return;
  }
  set_nonblocking(c.fd);
  set_nodelay(c.fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(c.port);
  if (inet_pton(AF_INET, c.host.c_str(), &addr.sin_addr) != 1) {
    fail_connection(c);
    return;
  }
  const int rc = connect(c.fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr));
  if (rc == 0) {
    c.connected = true;
  } else if (errno == EINPROGRESS) {
    c.connecting = true;
  } else {
    fail_connection(c);
    return;
  }
  if (c.connected) {
    // First frame on the wire is always the handshake.
    wire::Writer w;
    w.u8(kFrameHandshake);
    w.u32(config_.self);
    w.u64(config_.cluster_token);
    c.conn_buf = frame_of(w.take());
    if (c.ever_connected) {
      stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
    }
    c.ever_connected = true;
    std::lock_guard<std::mutex> lock(state_mu_);
    out_ready_[c.peer] = true;
  }
}

void TcpTransport::fail_connection(OutConn& c) {
  if (c.fd >= 0) close(c.fd);
  c.fd = -1;
  c.connecting = false;
  c.connected = false;
  c.conn_buf.clear();
  c.retry_at = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(c.backoff_ms);
  c.backoff_ms = std::min(c.backoff_ms * 2, config_.reconnect_max_ms);
  std::lock_guard<std::mutex> lock(state_mu_);
  out_ready_[c.peer] = false;
}

void TcpTransport::flush(OutConn& c) {
  if (!c.connected) return;
  if (c.conn_buf.empty()) {
    std::lock_guard<std::mutex> lock(out_mu_);
    c.conn_buf.swap(pending_[c.peer]);
  }
  while (!c.conn_buf.empty()) {
    const ssize_t n = write(c.fd, c.conn_buf.data(), c.conn_buf.size());
    if (n > 0) {
      stats_.bytes_sent.fetch_add(static_cast<std::uint64_t>(n),
                                  std::memory_order_relaxed);
      c.conn_buf.erase(c.conn_buf.begin(), c.conn_buf.begin() + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    fail_connection(c);
    return;
  }
  // Fully flushed; if more arrived meanwhile the next loop picks it up.
  c.backoff_ms = config_.reconnect_min_ms;
}

bool TcpTransport::handle_frame(InConn& c,
                                std::span<const std::uint8_t> body) {
  wire::Reader rd(body);
  const std::uint8_t kind = rd.u8();
  switch (kind) {
    case kFrameHandshake: {
      const ProcessId peer = rd.u32();
      const std::uint64_t token = rd.u64();
      if (!rd.done() || peer >= config_.n || peer == config_.self ||
          token != config_.cluster_token) {
        return false;  // wrong cluster or malformed: refuse the connection
      }
      c.peer = peer;
      std::lock_guard<std::mutex> lock(state_mu_);
      in_ready_[peer] = true;
      return true;
    }
    case kFrameData: {
      if (c.peer == kNoProcess) return false;  // data before handshake
      Envelope env;
      env.to = rd.u32();
      env.instance = rd.u64();
      env.round = rd.u32();
      const std::uint32_t len = rd.u32();
      const auto bytes = rd.take_bytes(len);
      if (!rd.done()) return false;
      env.body = wire::decode(bytes);
      if (env.body == nullptr) {
        // A malformed payload from an authenticated peer models Byzantine
        // garbage, not a broken stream: drop the message, keep the link.
        stats_.decode_drops.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      env.from = c.peer;  // authenticated links: connection identity wins
      enqueue(std::move(env));
      stats_.envelopes_received.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    case kFrameMark: {
      if (c.peer == kNoProcess) return false;
      const std::uint64_t instance = rd.u64();
      const Round round = rd.u32();
      if (!rd.done()) return false;
      marks_.advance(c.peer, instance, round);
      stats_.marks_received.fetch_add(1, std::memory_order_relaxed);
      // A mark can be the event that closes a round for a receive()er
      // blocked on an empty queue; wake it to re-check its synchronizer.
      in_cv_.notify_all();
      return true;
    }
    default:
      return false;
  }
}

void TcpTransport::handle_readable(InConn& c) {
  std::uint8_t chunk[16384];
  for (;;) {
    const ssize_t n = read(c.fd, chunk, sizeof(chunk));
    if (n > 0) {
      stats_.bytes_received.fetch_add(static_cast<std::uint64_t>(n),
                                      std::memory_order_relaxed);
      c.inbuf.insert(c.inbuf.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or error: drop the connection; the peer redials.
    close(c.fd);
    c.fd = -1;
    return;
  }

  std::size_t offset = 0;
  for (;;) {
    const auto frame = wire::read_frame(c.inbuf, offset);
    if (!frame) {
      // Distinguish "incomplete, wait for more bytes" from "corrupt":
      // a complete header whose length fits in the buffer but fails to
      // parse can only be a checksum mismatch or oversized length.
      if (c.inbuf.size() - offset >= wire::kFrameHeader) {
        wire::Reader hdr(
            std::span(c.inbuf).subspan(offset, wire::kFrameHeader));
        const std::uint32_t len = hdr.u32();
        if (len > wire::kMaxFrameBody ||
            c.inbuf.size() - offset - wire::kFrameHeader >= len) {
          close(c.fd);  // corrupted stream: force a clean reconnect
          c.fd = -1;
          return;
        }
      }
      break;
    }
    if (!handle_frame(c, frame->body)) {
      close(c.fd);
      c.fd = -1;
      return;
    }
    offset += frame->frame_size;
  }
  if (offset > 0) {
    c.inbuf.erase(c.inbuf.begin(),
                  c.inbuf.begin() + static_cast<std::ptrdiff_t>(offset));
  }
}

void TcpTransport::io_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    const auto now = std::chrono::steady_clock::now();
    for (OutConn& c : outs_) {
      if (c.fd < 0 && now >= c.retry_at) start_connect(c);
    }

    std::vector<pollfd> fds;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    std::vector<OutConn*> polled_out;
    {
      std::lock_guard<std::mutex> lock(out_mu_);
      for (OutConn& c : outs_) {
        if (c.fd < 0) continue;
        short events = 0;
        if (c.connecting) events |= POLLOUT;
        if (c.connected &&
            (!c.conn_buf.empty() || !pending_[c.peer].empty())) {
          events |= POLLOUT;
        }
        if (events == 0) continue;
        fds.push_back({c.fd, events, 0});
        polled_out.push_back(&c);
      }
    }
    const std::size_t first_in = fds.size();
    for (InConn& c : ins_) {
      fds.push_back({c.fd, POLLIN, 0});
    }

    poll(fds.data(), fds.size(), 20);

    if ((fds[0].revents & POLLIN) != 0) {
      std::uint8_t buf[64];
      while (read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }

    if ((fds[1].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        set_nodelay(fd);
        InConn c;
        c.fd = fd;
        ins_.push_back(std::move(c));
      }
    }

    for (std::size_t i = 0; i < polled_out.size(); ++i) {
      OutConn& c = *polled_out[i];
      const short revents = fds[2 + i].revents;
      if (c.fd < 0 || revents == 0) continue;
      if (c.connecting && (revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
        int err = 0;
        socklen_t len = sizeof(err);
        getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        c.connecting = false;
        if (err != 0) {
          fail_connection(c);
          continue;
        }
        c.connected = true;
        wire::Writer w;
        w.u8(kFrameHandshake);
        w.u32(config_.self);
        w.u64(config_.cluster_token);
        c.conn_buf = frame_of(w.take());
        if (c.ever_connected) {
          stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
        }
        c.ever_connected = true;
        {
          std::lock_guard<std::mutex> lock(state_mu_);
          out_ready_[c.peer] = true;
        }
      }
      if (c.connected) flush(c);
    }
    // Connections that became writable-with-backlog only after the poll
    // snapshot flush on the next iteration (the wake pipe forces one).
    for (OutConn& c : outs_) {
      if (c.fd >= 0 && c.connected) flush(c);
    }

    for (std::size_t i = first_in; i < fds.size(); ++i) {
      InConn& c = ins_[i - first_in];
      if (c.fd >= 0 &&
          (fds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        handle_readable(c);
      }
    }
    for (auto it = ins_.begin(); it != ins_.end();) {
      if (it->fd < 0) {
        if (it->peer != kNoProcess) {
          std::lock_guard<std::mutex> lock(state_mu_);
          in_ready_[it->peer] = false;
        }
        it = ins_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace mewc::net
