// Transport seam of the event-driven executor (DESIGN.md §14). The
// lockstep simulator moves messages by writing directly into peer inboxes;
// everything else — in-process loopback, the multi-endpoint hub, real TCP —
// moves instance/round-tagged envelopes through this interface instead, and
// a round-synchronizer policy decides when a round's traffic is complete.
//
// Two delivery guarantees every implementation provides, because round
// closure is built on them:
//
//  * FIFO links: two envelopes sent by the same endpoint arrive in order.
//  * Authenticated senders: `Envelope::from` as received identifies the
//    true sending endpoint (socket transports stamp it from the connection
//    identity, never from attacker-controlled bytes).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.hpp"
#include "net/payload.hpp"

namespace mewc::net {

/// One message in flight between executors. `instance` scopes concurrent
/// protocol instances (SMR slots) sharing a transport; `round` is the
/// protocol round the payload belongs to.
struct Envelope {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  Round round = 0;
  std::uint64_t instance = 0;
  PayloadPtr body;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues one envelope for delivery (including self- and local-addressed
  /// envelopes: the executor never bypasses the transport, so the event
  /// path is exercised even when everything is in-process).
  virtual void send(Envelope env) = 0;

  /// Dequeues the next inbound envelope tagged `instance`, waiting up to
  /// `timeout_ms` (0 = poll). Envelopes for later instances stay buffered
  /// for future calls; once an instance is requested, buffered envelopes
  /// for earlier instances are dropped as stale.
  virtual bool receive(std::uint64_t instance, Envelope& out,
                       int timeout_ms) = 0;

  /// True when no envelope is queued or in flight anywhere in the
  /// transport. Exact for loopback; socket transports cannot know what a
  /// peer has in its buffers and must return false.
  [[nodiscard]] virtual bool idle() const { return false; }

  /// Round-completion beacon: a promise that all of this endpoint's
  /// `(instance, round)` traffic was sent before the mark. FIFO links then
  /// guarantee that a peer that has processed the mark already holds every
  /// envelope it covers. Loopback ignores marks (quiescence is exact).
  virtual void mark(std::uint64_t instance, Round round) {
    (void)instance;
    (void)round;
  }
};

/// Policy deciding when the executor may close a round and deliver inboxes.
class IRoundSync {
 public:
  virtual ~IRoundSync() = default;
  virtual void round_opened(std::uint64_t instance, Round round) {
    (void)instance;
    (void)round;
  }
  [[nodiscard]] virtual bool closed(std::uint64_t instance, Round round) = 0;
};

/// Closes a round as soon as the transport is idle. Exact (and clock-free,
/// hence deterministic) for loopback, where idle means every posted
/// envelope has been drained; meaningless for sockets.
class QuiescenceSync final : public IRoundSync {
 public:
  explicit QuiescenceSync(const Transport& transport)
      : transport_(transport) {}

  [[nodiscard]] bool closed(std::uint64_t instance, Round round) override {
    (void)instance;
    (void)round;
    return transport_.idle();
  }

 private:
  const Transport& transport_;
};

/// Thread-safe per-peer round-progress table fed by transport marks.
/// Watermarks are compared lexicographically on (instance, round): a peer
/// that moved to a later instance has finished every round of the earlier
/// ones, which is what lets a lagging executor close its remaining rounds
/// immediately instead of timing each one out.
class WatermarkTable {
 public:
  explicit WatermarkTable(std::uint32_t n) : marks_(n) {}

  void advance(ProcessId peer, std::uint64_t instance, Round round) {
    std::lock_guard<std::mutex> lock(mu_);
    if (peer >= marks_.size()) return;
    Mark& m = marks_[peer];
    if (instance > m.instance ||
        (instance == m.instance && round > m.round)) {
      m.instance = instance;
      m.round = round;
    }
  }

  /// Every peer except `self` has marked (instance, round) or beyond.
  [[nodiscard]] bool all_at_least(ProcessId self, std::uint64_t instance,
                                  Round round) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (ProcessId p = 0; p < marks_.size(); ++p) {
      if (p == self) continue;
      const Mark& m = marks_[p];
      if (m.instance > instance) continue;
      if (m.instance < instance || m.round < round) return false;
    }
    return true;
  }

 private:
  struct Mark {
    std::uint64_t instance = 0;
    Round round = 0;
  };

  mutable std::mutex mu_;
  std::vector<Mark> marks_;
};

/// Socket-world round synchronizer: a round closes when every live peer's
/// watermark covers it (the fast path — one network delay after the
/// slowest peer sends), or when the timeout expires (the liveness path —
/// a crashed peer cannot stall the cluster, it just costs one timeout per
/// round until its silence is priced in). This is the timeout-driven
/// synchronizer of ROADMAP's `mewc_node` item; the timeout plays the role
/// of the synchronous model's known delay bound Delta.
class TimeoutRoundSync final : public IRoundSync {
 public:
  TimeoutRoundSync(const WatermarkTable& peers, ProcessId self,
                   std::chrono::milliseconds timeout)
      : peers_(peers), self_(self), timeout_(timeout) {}

  void round_opened(std::uint64_t instance, Round round) override {
    (void)instance;
    (void)round;
    deadline_ = std::chrono::steady_clock::now() + timeout_;
  }

  [[nodiscard]] bool closed(std::uint64_t instance, Round round) override {
    if (peers_.all_at_least(self_, instance, round)) return true;
    if (std::chrono::steady_clock::now() >= deadline_) {
      ++timeouts_;
      return true;
    }
    return false;
  }

  /// Rounds that closed by deadline instead of peer watermarks — the
  /// cluster-health diagnostic `mewc_node` reports at exit.
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }

 private:
  const WatermarkTable& peers_;
  ProcessId self_;
  std::chrono::milliseconds timeout_;
  std::chrono::steady_clock::time_point deadline_{};
  std::uint64_t timeouts_ = 0;
};

}  // namespace mewc::net
