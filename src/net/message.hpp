// A message in flight. The network stamps the true sender (reliable
// authenticated links, paper Section 2: a Byzantine process cannot spoof the
// link-level identity of a correct process), and the word cost is computed
// once when the message is posted.
#pragma once

#include <algorithm>

#include "common/types.hpp"
#include "net/payload.hpp"

namespace mewc {

struct Message {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  Round round = 0;        // round in which the message was sent (= received)
  PayloadPtr body;
  std::size_t words = 1;  // >= 1 per the cost model

  [[nodiscard]] static std::size_t cost_of(const Payload& p) {
    return std::max<std::size_t>(1, p.words());
  }
};

}  // namespace mewc
