// In-process implementations of the Transport seam.
//
//  * LoopbackTransport — a single-threaded FIFO for one EventExecutor
//    hosting all n processes. Deterministic (no clocks, no threads): the
//    DST equivalence grid drives every smoke cell through it and pins the
//    transcripts bit-identical to the lockstep executor.
//  * LoopbackHub — n endpoints with per-endpoint queues and a shared
//    watermark table, one executor (thread) per endpoint. The socket
//    cluster's round dance — marks, watermark closure, timeout fallback —
//    without sockets; tests use it to exercise the distributed path
//    deterministically and under TSan.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "net/transport.hpp"

namespace mewc::net {

/// Single-threaded FIFO loopback: send() appends, receive() pops in global
/// post order — exactly the order the lockstep SyncNetwork appends to
/// inboxes, which is what makes the two executors' delivery orders (and
/// hence transcripts) bit-identical. NOT thread-safe by design; use
/// LoopbackHub when more than one executor is involved.
class LoopbackTransport final : public Transport {
 public:
  void send(Envelope env) override { queues_[env.instance].push_back(std::move(env)); }

  bool receive(std::uint64_t instance, Envelope& out, int timeout_ms) override {
    (void)timeout_ms;  // nothing ever arrives asynchronously
    drop_stale(instance);
    auto it = queues_.find(instance);
    if (it == queues_.end() || it->second.empty()) return false;
    out = std::move(it->second.front());
    it->second.pop_front();
    return true;
  }

  [[nodiscard]] bool idle() const override {
    for (const auto& [instance, q] : queues_) {
      if (!q.empty()) return false;
    }
    return true;
  }

  [[nodiscard]] std::uint64_t dropped_stale() const { return dropped_stale_; }

 private:
  void drop_stale(std::uint64_t instance) {
    while (!queues_.empty() && queues_.begin()->first < instance) {
      dropped_stale_ += queues_.begin()->second.size();
      queues_.erase(queues_.begin());
    }
  }

  std::map<std::uint64_t, std::deque<Envelope>> queues_;
  std::uint64_t dropped_stale_ = 0;
};

class LoopbackHub;

/// One endpoint of a LoopbackHub: sends route to the target endpoint's
/// queue (sender identity stamped by the hub, as a socket transport would
/// stamp it from the connection), marks advance the shared watermark table.
class HubEndpoint final : public Transport {
 public:
  void send(Envelope env) override;
  bool receive(std::uint64_t instance, Envelope& out, int timeout_ms) override;
  void mark(std::uint64_t instance, Round round) override;

  [[nodiscard]] std::uint64_t dropped_stale() const;

 private:
  friend class LoopbackHub;
  HubEndpoint(LoopbackHub& hub, ProcessId id) : hub_(hub), id_(id) {}

  void enqueue(Envelope env);

  LoopbackHub& hub_;
  ProcessId id_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::deque<Envelope>> queues_;
  std::uint64_t dropped_stale_ = 0;
};

/// Thread-safe n-endpoint in-process message switch with the same contract
/// a socket deployment provides: FIFO per sender-receiver pair (a single
/// mutex-protected deque per receiver is FIFO for all senders), stamped
/// sender identity, and mark-fed watermarks.
class LoopbackHub {
 public:
  explicit LoopbackHub(std::uint32_t n);

  [[nodiscard]] Transport& endpoint(ProcessId id) { return *endpoints_[id]; }
  [[nodiscard]] const WatermarkTable& watermarks() const { return marks_; }
  [[nodiscard]] std::uint32_t n() const {
    return static_cast<std::uint32_t>(endpoints_.size());
  }

 private:
  friend class HubEndpoint;

  WatermarkTable marks_;
  std::vector<std::unique_ptr<HubEndpoint>> endpoints_;
};

}  // namespace mewc::net
