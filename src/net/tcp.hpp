// TCP implementation of the Transport seam (`mewc_node`, DESIGN.md §14).
//
// Topology: every node listens on one port and dials one outbound
// connection to every peer. An outbound connection carries only this
// node's traffic (handshake, then data/mark frames); inbound connections
// only receive. Splitting directions sidesteps simultaneous-connect
// dedup entirely and gives each ordered byte stream a single writer.
//
// Wire format: each frame is the WAL's checksummed container
// (wire::frame, `u32 len | u64 checksum | body`) holding
//
//   handshake  u8 kind=0 | u32 sender id | u64 cluster token
//   data       u8 kind=1 | u32 to | u64 instance | u32 round |
//              u32 payload len | wire::encode(payload)
//   mark       u8 kind=2 | u64 instance | u32 round
//
// The first frame on a connection must be a handshake naming the sender
// and the cluster token (derived from the shared seed/shape, so nodes of
// different clusters or configs refuse each other). Every later frame is
// attributed to that identity — `Envelope::from` is stamped from the
// connection, never from attacker-controllable bytes, which is the
// authenticated-links half of the model; the synchrony half is the
// TimeoutRoundSync fed by this transport's mark watermarks.
//
// Reconnects: a failed outbound connection backs off exponentially and
// redials forever; frames queued while disconnected are flushed on
// reconnect (the receiver's round synchronizer decides whether they are
// still current, late data is dropped and counted there).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"

namespace mewc::net {

struct TcpPeer {
  ProcessId id = kNoProcess;
  std::string host;  // IPv4 dotted quad, e.g. "127.0.0.1"
  std::uint16_t port = 0;
};

struct TcpTransportConfig {
  ProcessId self = 0;
  std::uint32_t n = 0;
  std::uint16_t listen_port = 0;  // node-to-node port on this host
  /// All peers except self (entries with id == self are ignored).
  std::vector<TcpPeer> peers;
  /// Shared-configuration guard exchanged in the handshake; derive it from
  /// (seed, n, t) so misconfigured nodes refuse each other at connect time
  /// instead of diverging silently.
  std::uint64_t cluster_token = 0;
  int reconnect_min_ms = 50;
  int reconnect_max_ms = 1000;
};

struct TcpTransportStats {
  std::uint64_t envelopes_sent = 0;
  std::uint64_t envelopes_received = 0;
  std::uint64_t marks_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t encode_drops = 0;    // payload the codec cannot serialize
  std::uint64_t decode_drops = 0;    // frames whose payload failed to parse
  std::uint64_t overflow_drops = 0;  // inbound queue or outbound buffer full
  std::uint64_t dropped_stale = 0;   // buffered for an already-passed instance
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpTransportConfig config);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds the listen socket and starts the IO thread. On failure returns
  /// false with a diagnostic in *error.
  [[nodiscard]] bool start(std::string* error);

  /// Waits until every outbound connection is established and a handshake
  /// has arrived from every peer — i.e. the full cluster is up in both
  /// directions. Consensus traffic sent before this returns may race peers
  /// that have not bound their sockets yet, so `mewc_node` gates on it.
  [[nodiscard]] bool wait_connected(std::chrono::milliseconds timeout);

  /// Stops the IO thread and closes every socket. Safe to call twice;
  /// the destructor calls it.
  void shutdown();

  void send(Envelope env) override;
  bool receive(std::uint64_t instance, Envelope& out, int timeout_ms) override;
  void mark(std::uint64_t instance, Round round) override;

  /// Peer round-progress fed by received marks; TimeoutRoundSync reads it.
  [[nodiscard]] const WatermarkTable& watermarks() const { return marks_; }

  [[nodiscard]] std::uint16_t listen_port() const { return bound_port_; }
  [[nodiscard]] TcpTransportStats stats() const;

 private:
  struct OutConn {
    ProcessId peer = kNoProcess;
    std::string host;
    std::uint16_t port = 0;
    int fd = -1;
    bool connecting = false;
    bool connected = false;
    bool ever_connected = false;
    int backoff_ms = 0;
    std::chrono::steady_clock::time_point retry_at{};
    std::vector<std::uint8_t> conn_buf;  // IO-thread-only flush buffer
  };

  struct InConn {
    int fd = -1;
    ProcessId peer = kNoProcess;  // set by the handshake
    std::vector<std::uint8_t> inbuf;
  };

  void io_loop();
  void wake();
  void start_connect(OutConn& c);
  void fail_connection(OutConn& c);
  void flush(OutConn& c);
  void handle_readable(InConn& c);
  bool handle_frame(InConn& c, std::span<const std::uint8_t> body);
  void enqueue(Envelope env);
  void queue_to_peer(ProcessId to, const std::vector<std::uint8_t>& framed);

  TcpTransportConfig config_;
  WatermarkTable marks_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  int wake_pipe_[2] = {-1, -1};
  std::thread io_thread_;
  std::atomic<bool> running_{false};

  // Outbound bytes queued by send()/mark(), drained by the IO thread.
  std::mutex out_mu_;
  std::vector<std::vector<std::uint8_t>> pending_;  // indexed by peer id

  // Inbound envelopes demuxed by instance, drained by receive().
  std::mutex in_mu_;
  std::condition_variable in_cv_;
  std::map<std::uint64_t, std::deque<Envelope>> queues_;
  std::uint64_t instance_floor_ = 0;
  std::size_t queued_total_ = 0;

  // Cluster liveness for wait_connected().
  std::mutex state_mu_;
  std::vector<bool> out_ready_;
  std::vector<bool> in_ready_;

  std::vector<OutConn> outs_;   // IO-thread-only after start()
  std::vector<InConn> ins_;     // IO-thread-only

  struct AtomicStats {
    std::atomic<std::uint64_t> envelopes_sent{0};
    std::atomic<std::uint64_t> envelopes_received{0};
    std::atomic<std::uint64_t> marks_received{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> bytes_received{0};
    std::atomic<std::uint64_t> reconnects{0};
    std::atomic<std::uint64_t> encode_drops{0};
    std::atomic<std::uint64_t> decode_drops{0};
    std::atomic<std::uint64_t> overflow_drops{0};
    std::atomic<std::uint64_t> dropped_stale{0};
  };
  AtomicStats stats_;
};

}  // namespace mewc::net
