#include "net/loopback.hpp"

#include <chrono>

namespace mewc::net {

LoopbackHub::LoopbackHub(std::uint32_t n) : marks_(n) {
  endpoints_.reserve(n);
  for (ProcessId p = 0; p < n; ++p) {
    endpoints_.emplace_back(new HubEndpoint(*this, p));
  }
}

void HubEndpoint::send(Envelope env) {
  if (env.to >= hub_.n()) return;  // no such endpoint: junk addressing drops
  env.from = id_;                  // authenticated links: the hub stamps
  hub_.endpoints_[env.to]->enqueue(std::move(env));
}

void HubEndpoint::enqueue(Envelope env) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[env.instance].push_back(std::move(env));
  }
  cv_.notify_all();
}

bool HubEndpoint::receive(std::uint64_t instance, Envelope& out,
                          int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  while (!queues_.empty() && queues_.begin()->first < instance) {
    dropped_stale_ += queues_.begin()->second.size();
    queues_.erase(queues_.begin());
  }
  auto ready = [&] {
    auto it = queues_.find(instance);
    return it != queues_.end() && !it->second.empty();
  };
  if (!ready() && timeout_ms > 0) {
    cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready);
  }
  if (!ready()) return false;
  auto& q = queues_[instance];
  out = std::move(q.front());
  q.pop_front();
  return true;
}

void HubEndpoint::mark(std::uint64_t instance, Round round) {
  hub_.marks_.advance(id_, instance, round);
}

std::uint64_t HubEndpoint::dropped_stale() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_stale_;
}

}  // namespace mewc::net
