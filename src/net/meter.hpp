// Communication metering (paper Section 2): communication complexity is the
// number of words sent by CORRECT processes. Byzantine traffic is metered
// separately for diagnostics, and per-round / per-process breakdowns feed
// the silent-phase and help-request experiments.
//
// record() sits on the simulator's per-message hot path, so it must not
// allocate in steady state: the per-kind breakdown is keyed by interned
// kind ids — Payload::kind() returns one string literal per payload type,
// so a tiny pointer-keyed cache resolves each type once and every later
// record() is a short pointer scan plus a vector bump. Rarely (inline
// kind() emitted in several translation units) the same kind name arrives
// at a second address; interning dedupes by content so the breakdown never
// double-counts a kind.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace mewc {

struct Meter {
  std::uint64_t words_correct = 0;
  std::uint64_t messages_correct = 0;
  std::uint64_t words_byzantine = 0;
  std::uint64_t messages_byzantine = 0;
  /// Logical signatures transferred by correct processes (a k-threshold
  /// certificate counts as k per recipient): the Dolev-Reischuk Omega(nt)
  /// quantity, as opposed to words (experiment E8).
  std::uint64_t logical_sigs_correct = 0;

  // Correct-sender breakdowns (the quantity the paper's bounds constrain).
  // Both vectors grow on demand, so a default-constructed meter still
  // attributes every word: sizing is a reservation, never a filter.
  std::vector<std::uint64_t> words_by_process;  // indexed by sender
  std::vector<std::uint64_t> words_by_round;    // indexed by round

  Meter() = default;
  explicit Meter(std::uint32_t n) : words_by_process(n, 0) {}

  void record(ProcessId from, Round round, std::size_t words,
              std::size_t logical_sigs, const char* kind, bool correct) {
    if (correct) {
      words_correct += words;
      logical_sigs_correct += logical_sigs;
      ++messages_correct;
      if (from >= words_by_process.size()) {
        words_by_process.resize(from + 1, 0);
      }
      words_by_process[from] += words;
      if (round >= words_by_round.size()) words_by_round.resize(round + 1, 0);
      words_by_round[round] += words;
      if (kind != nullptr) words_by_kind_[intern_kind(kind)] += words;
    } else {
      words_byzantine += words;
      ++messages_byzantine;
    }
  }

  /// Folds `other` into this meter: scalar totals add, per-process and
  /// per-round attribution add element-wise (growing on demand), and the
  /// per-kind breakdown merges through the intern table so the same kind
  /// name never double-counts. Used by the SMR engine to combine per-worker
  /// instance meters into the run-level aggregate at commit time; callers
  /// serialize merges (the meter itself is not thread-safe).
  void merge(const Meter& other) {
    words_correct += other.words_correct;
    messages_correct += other.messages_correct;
    words_byzantine += other.words_byzantine;
    messages_byzantine += other.messages_byzantine;
    logical_sigs_correct += other.logical_sigs_correct;
    if (other.words_by_process.size() > words_by_process.size()) {
      words_by_process.resize(other.words_by_process.size(), 0);
    }
    for (std::size_t p = 0; p < other.words_by_process.size(); ++p) {
      words_by_process[p] += other.words_by_process[p];
    }
    if (other.words_by_round.size() > words_by_round.size()) {
      words_by_round.resize(other.words_by_round.size(), 0);
    }
    for (std::size_t r = 0; r < other.words_by_round.size(); ++r) {
      words_by_round[r] += other.words_by_round[r];
    }
    for (std::size_t id = 0; id < other.kind_names_.size(); ++id) {
      if (other.words_by_kind_[id] == 0) continue;
      words_by_kind_[intern_kind_by_content(other.kind_names_[id])] +=
          other.words_by_kind_[id];
    }
  }

  /// Words sent by correct processes in the half-open round window [lo, hi).
  [[nodiscard]] std::uint64_t words_in_rounds(Round lo, Round hi) const {
    std::uint64_t sum = 0;
    for (Round r = lo; r < hi && r < words_by_round.size(); ++r) {
      sum += words_by_round[r];
    }
    return sum;
  }

  /// Per-kind breakdown of correct-sender words, materialized by name for
  /// reports and tests (reporting-path only; the hot path never builds it).
  // mewc-lint: allow(R-meter) built once per report, never per message
  [[nodiscard]] std::map<std::string, std::uint64_t> words_by_kind() const {
    std::map<std::string, std::uint64_t> out;  // mewc-lint: allow(R-meter) ditto
    for (std::size_t id = 0; id < words_by_kind_.size(); ++id) {
      if (words_by_kind_[id] != 0) out[kind_names_[id]] += words_by_kind_[id];
    }
    return out;
  }

 private:
  /// Returns the id of `kind`, interning it on first sight. The fast path
  /// is a pointer scan over a handful of entries (one per payload type seen
  /// by this meter); the content scan only runs when a known kind shows up
  /// at a new literal address.
  [[nodiscard]] std::size_t intern_kind(const char* kind) {
    for (const auto& [ptr, id] : kind_cache_) {
      if (ptr == kind) return id;
    }
    for (std::size_t id = 0; id < kind_names_.size(); ++id) {
      if (std::strcmp(kind_names_[id].c_str(), kind) == 0) {
        kind_cache_.emplace_back(kind, id);
        return id;
      }
    }
    const std::size_t id = kind_names_.size();
    kind_names_.emplace_back(kind);
    words_by_kind_.push_back(0);
    kind_cache_.emplace_back(kind, id);
    return id;
  }

  /// Content-only interning for merge(): the source meter's kind-name
  /// storage is transient, so its pointers must never enter the
  /// pointer-identity cache (a later allocation could reuse the address).
  [[nodiscard]] std::size_t intern_kind_by_content(const std::string& kind) {
    for (std::size_t id = 0; id < kind_names_.size(); ++id) {
      if (kind_names_[id] == kind) return id;
    }
    kind_names_.push_back(kind);
    words_by_kind_.push_back(0);
    return kind_names_.size() - 1;
  }

  std::vector<std::pair<const char*, std::size_t>> kind_cache_;
  std::vector<std::string> kind_names_;           // indexed by kind id
  std::vector<std::uint64_t> words_by_kind_;      // indexed by kind id
};

}  // namespace mewc
