// Communication metering (paper Section 2): communication complexity is the
// number of words sent by CORRECT processes. Byzantine traffic is metered
// separately for diagnostics, and per-round / per-process breakdowns feed
// the silent-phase and help-request experiments.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace mewc {

struct Meter {
  std::uint64_t words_correct = 0;
  std::uint64_t messages_correct = 0;
  std::uint64_t words_byzantine = 0;
  std::uint64_t messages_byzantine = 0;
  /// Logical signatures transferred by correct processes (a k-threshold
  /// certificate counts as k per recipient): the Dolev-Reischuk Omega(nt)
  /// quantity, as opposed to words (experiment E8).
  std::uint64_t logical_sigs_correct = 0;

  // Correct-sender breakdowns (the quantity the paper's bounds constrain).
  std::vector<std::uint64_t> words_by_process;   // indexed by sender
  std::vector<std::uint64_t> words_by_round;     // indexed by round
  std::map<std::string, std::uint64_t> words_by_kind;  // by payload kind()

  explicit Meter(std::uint32_t n = 0) : words_by_process(n, 0) {}

  void record(ProcessId from, Round round, std::size_t words,
              std::size_t logical_sigs, const char* kind, bool correct) {
    if (correct) {
      words_correct += words;
      logical_sigs_correct += logical_sigs;
      ++messages_correct;
      if (from < words_by_process.size()) words_by_process[from] += words;
      if (round >= words_by_round.size()) words_by_round.resize(round + 1, 0);
      words_by_round[round] += words;
      if (kind != nullptr) words_by_kind[kind] += words;
    } else {
      words_byzantine += words;
      ++messages_byzantine;
    }
  }

  /// Words sent by correct processes in the half-open round window [lo, hi).
  [[nodiscard]] std::uint64_t words_in_rounds(Round lo, Round hi) const {
    std::uint64_t sum = 0;
    for (Round r = lo; r < hi && r < words_by_round.size(); ++r) {
      sum += words_by_round[r];
    }
    return sum;
  }
};

}  // namespace mewc
