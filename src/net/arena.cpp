#include "net/arena.hpp"

#include <array>
#include <atomic>
#include <new>
#include <vector>

namespace mewc::pool {

namespace {

// Buckets cover [1, kStep], (kStep, 2*kStep], ... up to kMaxBytes; larger
// requests bypass the pool. Payloads plus their shared_ptr control block
// land well under 1 KiB; going bigger only hoards memory.
constexpr std::size_t kStep = 64;
constexpr std::size_t kMaxBuckets = 16;  // kStep * kMaxBuckets = 1 KiB

std::atomic<bool> g_enabled{true};

[[nodiscard]] constexpr std::size_t bucket_of(std::size_t bytes) {
  return (bytes + kStep - 1) / kStep;  // 1-based; 0 only for bytes == 0
}

// `g_tls_alive` / `g_tls_dead` are trivially destructible, so they stay
// readable during and after thread teardown. Together they distinguish the
// three thread-lifetime states deallocate() must tell apart:
//   not constructed yet  (alive=0, dead=0): safe to construct the lists on
//                        first release, so a thread that only ever frees
//                        blocks from other threads still stocks a pool;
//   constructed          (alive=1, dead=0): push onto the lists;
//   destroyed            (alive=0, dead=1): the lists are gone — fall
//                        through to ::operator delete, never resurrect.
thread_local bool g_tls_alive = false;
thread_local bool g_tls_dead = false;

struct FreeLists {
  std::array<std::vector<void*>, kMaxBuckets + 1> buckets;
  Stats stats;

  FreeLists() { g_tls_alive = true; }
  ~FreeLists() {
    g_tls_alive = false;
    g_tls_dead = true;
    for (auto& list : buckets) {
      for (void* p : list) ::operator delete(p);
    }
  }
};

[[nodiscard]] FreeLists& tls() {
  thread_local FreeLists lists;
  return lists;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

Stats thread_stats() { return g_tls_alive ? tls().stats : Stats{}; }

void reset_thread_stats() {
  if (g_tls_alive) tls().stats = Stats{};
}

namespace detail {

void* allocate(std::size_t bytes) {
  const std::size_t bucket = bucket_of(bytes);
  if (bucket == 0 || bucket > kMaxBuckets) return ::operator new(bytes);
  // Always allocate the full bucket size — even with pooling off — so any
  // block that can reach a free list is guaranteed to satisfy every request
  // of its bucket, regardless of when the kill switch was flipped.
  const std::size_t size = bucket * kStep;
  if (!enabled()) return ::operator new(size);
  FreeLists& fl = tls();
  auto& list = fl.buckets[bucket];
  if (!list.empty()) {
    void* p = list.back();
    list.pop_back();
    ++fl.stats.reused;
    return p;
  }
  ++fl.stats.fresh;
  return ::operator new(size);
}

void deallocate(void* p, std::size_t bytes) noexcept {
  const std::size_t bucket = bucket_of(bytes);
  if (bucket == 0 || bucket > kMaxBuckets || !enabled() || g_tls_dead) {
    ::operator delete(p);
    return;
  }
  // tls() constructs the lists on a thread whose first arena interaction
  // is a release — the cross-thread handoff path — and is a plain access
  // everywhere else.
  tls().buckets[bucket].push_back(p);
}

}  // namespace detail

}  // namespace mewc::pool
