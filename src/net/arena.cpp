#include "net/arena.hpp"

#include <array>
#include <atomic>
#include <new>
#include <vector>

namespace mewc::pool {

namespace {

// Buckets cover [1, kStep], (kStep, 2*kStep], ... up to kMaxBytes; larger
// requests bypass the pool. Payloads plus their shared_ptr control block
// land well under 1 KiB; going bigger only hoards memory.
constexpr std::size_t kStep = 64;
constexpr std::size_t kMaxBuckets = 16;  // kStep * kMaxBuckets = 1 KiB

std::atomic<bool> g_enabled{true};

[[nodiscard]] constexpr std::size_t bucket_of(std::size_t bytes) {
  return (bytes + kStep - 1) / kStep;  // 1-based; 0 only for bytes == 0
}

// `g_tls_alive` is trivially destructible, so it stays readable during and
// after thread teardown; the free lists set it false before releasing their
// blocks, and any deallocation arriving later falls through to ::operator
// delete instead of touching a destroyed list.
thread_local bool g_tls_alive = false;

struct FreeLists {
  std::array<std::vector<void*>, kMaxBuckets + 1> buckets;
  Stats stats;

  FreeLists() { g_tls_alive = true; }
  ~FreeLists() {
    g_tls_alive = false;
    for (auto& list : buckets) {
      for (void* p : list) ::operator delete(p);
    }
  }
};

[[nodiscard]] FreeLists& tls() {
  thread_local FreeLists lists;
  return lists;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

Stats thread_stats() { return g_tls_alive ? tls().stats : Stats{}; }

void reset_thread_stats() {
  if (g_tls_alive) tls().stats = Stats{};
}

namespace detail {

void* allocate(std::size_t bytes) {
  const std::size_t bucket = bucket_of(bytes);
  if (bucket == 0 || bucket > kMaxBuckets) return ::operator new(bytes);
  // Always allocate the full bucket size — even with pooling off — so any
  // block that can reach a free list is guaranteed to satisfy every request
  // of its bucket, regardless of when the kill switch was flipped.
  const std::size_t size = bucket * kStep;
  if (!enabled()) return ::operator new(size);
  FreeLists& fl = tls();
  auto& list = fl.buckets[bucket];
  if (!list.empty()) {
    void* p = list.back();
    list.pop_back();
    ++fl.stats.reused;
    return p;
  }
  ++fl.stats.fresh;
  return ::operator new(size);
}

void deallocate(void* p, std::size_t bytes) noexcept {
  const std::size_t bucket = bucket_of(bytes);
  if (bucket == 0 || bucket > kMaxBuckets || !enabled() || !g_tls_alive) {
    ::operator delete(p);
    return;
  }
  tls().buckets[bucket].push_back(p);
}

}  // namespace detail

}  // namespace mewc::pool
