// Pooled payload arena: size-bucketed, thread-local free lists that recycle
// the combined (control block + object) allocation of allocate_shared'd
// payloads. The simulator's send/deliver hot path creates and destroys one
// payload per send step and the synchronous round structure bounds every
// payload's lifetime to a round or two, so after the first few rounds every
// allocation is served from a free list — the steady state is heap-quiet.
//
// Pooling is a pure memory-reuse optimization: payload bytes, word counts
// and stream digests are identical with pooling on or off (guarded by
// tests/check/pooling_test.cpp). The kill switch exists for A/B runs and
// for allocation-sensitive tooling.
//
// Thread model: free lists are thread-local, so campaign workers never
// contend. A block released on a different thread than it was allocated on
// simply joins the releasing thread's list (all blocks originate from
// ::operator new, so ownership is transferable); blocks released after a
// thread's lists are destroyed fall through to ::operator delete.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace mewc::pool {

/// Global kill switch (default on). Flip only from a single-threaded
/// context: the flag itself is atomic, but toggling mid-campaign makes
/// allocation accounting meaningless.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Calling-thread pool counters (allocations served from a free list vs
/// fell through to ::operator new). Oversized requests bypass the pool and
/// are not counted.
struct Stats {
  std::uint64_t reused = 0;
  std::uint64_t fresh = 0;
};
[[nodiscard]] Stats thread_stats();
void reset_thread_stats();

/// Scoped view over the calling thread's counters: captures thread_stats()
/// at construction, delta() reports what happened since. Campaign workers
/// use one per cell so per-cell allocation accounting never bleeds across
/// cells run on the same long-lived worker thread.
class StatsScope {
 public:
  StatsScope() : start_(thread_stats()) {}

  [[nodiscard]] Stats delta() const {
    const Stats now = thread_stats();
    return {now.reused - start_.reused, now.fresh - start_.fresh};
  }

 private:
  Stats start_;
};

namespace detail {

/// Pops a recycled block or falls through to ::operator new. Small requests
/// are rounded up to the bucket size so a recycled block can serve any
/// request of its bucket.
[[nodiscard]] void* allocate(std::size_t bytes);
void deallocate(void* p, std::size_t bytes) noexcept;

/// Minimal allocator over the thread-local free lists, for allocate_shared.
template <typename T>
struct Recycler {
  using value_type = T;

  Recycler() noexcept = default;
  template <typename U>
  Recycler(const Recycler<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(detail::allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    detail::deallocate(p, n * sizeof(T));
  }

  template <typename U>
  [[nodiscard]] bool operator==(const Recycler<U>&) const noexcept {
    return true;
  }
};

}  // namespace detail

/// Drop-in replacement for std::make_shared on payload types: one combined
/// allocation, recycled through the arena. Returns a mutable pointer (the
/// protocol fills fields after construction); it converts to PayloadPtr at
/// the send site as usual.
template <typename T, typename... Args>
[[nodiscard]] std::shared_ptr<T> make(Args&&... args) {
  if (!enabled()) return std::make_shared<T>(std::forward<Args>(args)...);
  return std::allocate_shared<T>(detail::Recycler<T>{},
                                 std::forward<Args>(args)...);
}

}  // namespace mewc::pool
