// Type-erased message payloads. Each protocol defines payload structs
// deriving from Payload; words() implements the paper's cost model (a word
// holds a constant number of signatures and values; every message costs at
// least one word — enforced in net/message.hpp).
#pragma once

#include <memory>

namespace mewc {

class Payload {
 public:
  virtual ~Payload() = default;

  /// Wire size in words, per the paper's Section 2 cost model.
  [[nodiscard]] virtual std::size_t words() const = 0;

  /// Short stable name for traces and debugging, e.g. "bb.help_req".
  [[nodiscard]] virtual const char* kind() const = 0;

  /// Number of logical signatures this message represents: a k-threshold
  /// certificate stands for k signatures even though it costs one word.
  /// This is the quantity Dolev-Reischuk's Omega(nt) signature bound
  /// constrains; threshold schemes compress it into O(1) words, which is
  /// exactly the separation the paper exploits (experiment E8).
  [[nodiscard]] virtual std::size_t logical_signatures() const { return 0; }
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// Downcast helper: returns nullptr when the payload is of another type.
/// Receivers must treat foreign payload types as Byzantine noise and ignore
/// them, which this makes mechanical.
template <typename T>
[[nodiscard]] const T* payload_cast(const PayloadPtr& p) {
  return dynamic_cast<const T*>(p.get());
}

}  // namespace mewc
