// Per-step send buffer. Protocol code posts unicast/broadcast here; the
// executor hands the buffer to the network, which stamps sender identity and
// meters word costs. A broadcast over point-to-point links is n unicasts and
// is metered as such (the paper's model has no multicast primitive).
#pragma once

#include <utility>
#include <vector>

#include "common/types.hpp"
#include "net/payload.hpp"

namespace mewc {

class Outbox {
 public:
  explicit Outbox(std::uint32_t n) : n_(n) {}

  void send(ProcessId to, PayloadPtr body) {
    if (to >= n_) return;  // tolerate adversarial junk addressing
    sends_.emplace_back(to, std::move(body));
  }

  /// Sends to every process, including the sender itself (self-delivery is
  /// free in the cost model and is filtered by the network's meter).
  void broadcast(const PayloadPtr& body) {
    for (ProcessId p = 0; p < n_; ++p) sends_.emplace_back(p, body);
  }

  [[nodiscard]] std::uint32_t n() const { return n_; }

  /// Empties the buffer but keeps its capacity, so a reused Outbox stops
  /// allocating once it has seen its largest round (executor hot path).
  void clear() { sends_.clear(); }

  [[nodiscard]] const std::vector<std::pair<ProcessId, PayloadPtr>>& sends()
      const {
    return sends_;
  }

 private:
  std::uint32_t n_;
  std::vector<std::pair<ProcessId, PayloadPtr>> sends_;
};

}  // namespace mewc
