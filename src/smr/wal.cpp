#include "smr/wal.hpp"

#include <optional>

#include "smr/batch.hpp"
#include "wire/frame.hpp"

namespace mewc::smr::wal {

namespace {

std::optional<Record> decode_body(std::span<const std::uint8_t> body) {
  wire::Reader r(body);
  const std::uint8_t type = r.u8();
  Record rec;
  switch (type) {
    case static_cast<std::uint8_t>(RecordType::kSlot): {
      rec.type = RecordType::kSlot;
      rec.slot.slot = r.u64();
      rec.slot.proposer = r.u32();
      rec.slot.value.raw = r.u64();
      rec.slot.skipped = r.boolean();
      rec.slot.agreement = r.boolean();
      rec.slot.fallback = r.boolean();
      rec.slot.words = r.u64();
      // Canonical form: the skip flag is derived from the value.
      if (rec.slot.skipped != rec.slot.value.is_bottom()) return std::nullopt;
      break;
    }
    case static_cast<std::uint8_t>(RecordType::kCheckpoint): {
      rec.type = RecordType::kCheckpoint;
      rec.checkpoint.after_slot = r.u64();
      rec.checkpoint.ledger_digest = r.u64();
      rec.checkpoint.accepted = r.boolean();
      rec.checkpoint.agreement = r.boolean();
      rec.checkpoint.words = r.u64();
      break;
    }
    case static_cast<std::uint8_t>(RecordType::kBatch): {
      rec.type = RecordType::kBatch;
      rec.batch_slot = r.u64();
      const std::uint32_t len = r.u32();
      if (!r.ok()) return std::nullopt;
      const auto blob = r.take_bytes(len);
      if (!r.ok()) return std::nullopt;
      // Canonical form: the embedded blob must itself parse as a batch
      // (its own frame checksum re-verifies the bytes).
      if (!batch::BatchView::parse(blob)) return std::nullopt;
      rec.batch.assign(blob.begin(), blob.end());
      break;
    }
    default:
      return std::nullopt;
  }
  if (!r.done()) return std::nullopt;  // short or over-long body
  return rec;
}

}  // namespace

std::vector<std::uint8_t> encode_slot(const SlotRecord& rec) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(RecordType::kSlot));
  w.u64(rec.slot);
  w.u32(rec.proposer);
  w.u64(rec.value.raw);
  w.boolean(rec.skipped);
  w.boolean(rec.agreement);
  w.boolean(rec.fallback);
  w.u64(rec.words);
  return w.take();
}

std::vector<std::uint8_t> encode_checkpoint(const CheckpointRecord& rec) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(RecordType::kCheckpoint));
  w.u64(rec.after_slot);
  w.u64(rec.ledger_digest);
  w.boolean(rec.accepted);
  w.boolean(rec.agreement);
  w.u64(rec.words);
  return w.take();
}

std::vector<std::uint8_t> encode_batch(std::uint64_t slot,
                                       std::span<const std::uint8_t> blob) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(RecordType::kBatch));
  w.u64(slot);
  w.u32(static_cast<std::uint32_t>(blob.size()));
  std::vector<std::uint8_t> body = w.take();
  body.insert(body.end(), blob.begin(), blob.end());
  return body;
}

void append(std::vector<std::uint8_t>& log, const SlotRecord& rec) {
  wire::append_frame(log, encode_slot(rec));
}

void append(std::vector<std::uint8_t>& log, const CheckpointRecord& rec) {
  wire::append_frame(log, encode_checkpoint(rec));
}

void append_batch(std::vector<std::uint8_t>& log, std::uint64_t slot,
                  std::span<const std::uint8_t> blob) {
  wire::append_frame(log, encode_batch(slot, blob));
}

ScanResult scan(std::span<const std::uint8_t> log) {
  ScanResult out;
  std::size_t offset = 0;
  while (offset < log.size()) {
    const auto frame = wire::read_frame(log, offset);
    if (!frame) break;
    auto rec = decode_body(frame->body);
    if (!rec) break;  // checksum-valid but semantically malformed: stop here
    rec->offset = offset;
    // The WAL is this node's own durable log, not Byzantine network input:
    // frames are CRC-checked by read_frame and were only ever appended by
    // the certified commit path, so recovery has no signature to re-verify.
    // mewc-lint: allow(R-taint) local WAL replay of self-written frames
    out.records.push_back(*rec);
    offset += frame->frame_size;
  }
  out.valid_bytes = offset;
  out.torn = offset < log.size();
  return out;
}

}  // namespace mewc::smr::wal
