// Pipelined multi-instance SMR engine: the artifact that turns the paper's
// per-instance word bounds into an amortized-throughput story. Many
// consensus instances (ledger slots) run concurrently on a fixed worker
// pool — instances are independent by construction because every slot gets
// a distinct `instance` nonce in its ProtocolContext — while commits into
// the ledger stay strictly in slot order, so the resulting ledger digest,
// checkpoint stream, and merged meter are bit-identical no matter how many
// workers ran the instances.
//
// Concurrency invariants:
//  - Each worker owns a private harness::SetupCache, so threshold key
//    generation is amortized across that worker's instances without ever
//    sharing the (non-thread-safe) Pki signature counters across threads.
//  - Completed instance reports land in a reorder buffer keyed by slot; the
//    completing worker also advances the commit frontier while holding the
//    commit lock, so commits (including checkpoint BAs) are serial and in
//    order. submit() blocks while queue capacity + workers slots are
//    outstanding (admitted but uncommitted), so the pipeline — and with it
//    the reorder buffer — can never run further ahead of the commit
//    frontier than that window.
//  - The run-level Meter is the slot-ordered merge of per-instance meters
//    (checkpoint instances are accounted in the ledger's word totals).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "smr/kv_store.hpp"
#include "smr/ledger.hpp"
#include "smr/scheduler.hpp"

namespace mewc::smr {

struct EngineConfig {
  std::uint32_t n = 3;
  std::uint32_t t = 1;
  ThresholdBackend backend = ThresholdBackend::kSim;
  std::uint64_t seed = 0x5e7u;
  /// Worker threads running consensus instances.
  std::uint32_t workers = 1;
  /// Admission-queue bound; with the worker count it also sizes the
  /// pipeline window: submit() blocks while queue_capacity + workers slots
  /// are admitted but not yet committed (backpressure).
  std::uint32_t queue_capacity = 16;
  /// Seal a checkpoint after every k committed slots (0 = never).
  std::uint32_t checkpoint_every = 0;
  /// Instance-nonce base, forwarded to the ledger.
  std::uint64_t base_instance = 1000;
  /// Which executor drives each consensus instance, forwarded to the
  /// ledger's RunSpecs (DESIGN.md §14; behaviour-identical either way).
  ExecutorKind executor = ExecutorKind::kLockstep;
  /// Optional durability sink, forwarded to the ledger. Callbacks run under
  /// the commit lock, in slot order (not owned; must outlive the engine).
  DurabilityHook* durability = nullptr;
};

struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t skipped = 0;
  std::uint64_t fallbacks = 0;
  /// Client operations admitted: one per submit(), the batch size per
  /// submit_batch(). Words-per-op divides by this, not by slots.
  std::uint64_t ops_submitted = 0;
  /// Dissemination cost of batch blobs, charged as n x (k-1) words per
  /// batch of k (the first command rides in the BB payload itself; the
  /// other k-1 words must reach every process out-of-band). Added to the
  /// meter/ledger word totals when computing words-per-op.
  std::uint64_t batch_extra_words = 0;
  /// Setup-cache traffic summed over workers. Hits + misses == instances
  /// run; the split across workers depends on scheduling, so only the sum
  /// is deterministic.
  std::uint64_t setup_cache_hits = 0;
  std::uint64_t setup_cache_misses = 0;
  /// kReal crypto verification work summed over the workers' setup caches
  /// (zero under the ideal backends): pairings actually evaluated, and
  /// verifications answered from the per-family memo instead. High memo
  /// traffic is the amortization story — one aggregate verify per quorum
  /// cert, then cache hits as the same cert recurs across phases and slots.
  std::uint64_t crypto_pairings = 0;
  std::uint64_t crypto_memo_hits = 0;
  /// Largest number of completed-but-uncommitted instances observed.
  std::uint64_t max_reorder_depth = 0;
  /// submit() calls that blocked on the pipeline window plus, from the
  /// scheduler, any that blocked on a full queue.
  std::uint64_t backpressure_waits = 0;
};

class Engine {
 public:
  explicit Engine(const EngineConfig& config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Admits one proposal for the next slot; the rotation proposer
  /// broadcasts it through adaptive BB on some worker. Blocks when the
  /// admission queue is full. An optional per-slot adversary factory makes
  /// faulty instances expressible (it must be safe to call concurrently;
  /// each returned adversary is used by exactly one instance).
  void submit(Value proposal,
              const Ledger::AdversaryFactory& adversary = nullptr);

  /// Admits one *batch* of commands for the next slot: the batch is
  /// encoded once (src/smr/batch.hpp), its one-word handle is what the
  /// rotation proposer broadcasts through BB, and the blob is attached to
  /// the ledger slot so the durability hook applies and persists the whole
  /// batch when the slot commits. Consensus cost is one instance no matter
  /// how large the batch — that is the words-per-op lever. Blocks like
  /// submit() when the pipeline window is full.
  void submit_batch(std::span<const Command> commands,
                    const Ledger::AdversaryFactory& adversary = nullptr);

  /// Waits for every admitted instance to run and commit. submit() may be
  /// called again afterwards; finish() is idempotent and implied by the
  /// destructor. ledger()/meter()/stats() are only meaningful after it.
  void finish();

  /// Installs recovered ledger state before any submit(); subsequent
  /// submissions continue from slot `state.slots.size()` with the same
  /// instance nonces the uninterrupted run would have used. When the
  /// recovered state has a checkpoint due (crash between a slot's WAL
  /// record and its checkpoint record), the checkpoint BA is completed
  /// here, before any new slot runs — its nonce depends only on the slot
  /// count, so the sealed record matches the uninterrupted run's.
  void restore(RestoredState state,
               const Ledger::AdversaryFactory& adversary = nullptr);

  [[nodiscard]] const Ledger& ledger() const { return ledger_; }
  /// Slot-ordered merge of the per-instance meters (BB instances only;
  /// checkpoint words are in ledger().total_words()).
  [[nodiscard]] const Meter& meter() const { return meter_; }
  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] std::uint32_t workers() const { return scheduler_.workers(); }

 private:
  struct Prepared {
    harness::RunReport report;
    Ledger::AdversaryFactory adversary;
  };

  void complete(std::uint64_t slot, Prepared done);

  /// Shared admission path: waits for the pipeline window, assigns the
  /// slot, attaches the (possibly empty) batch blob, and schedules the BB
  /// instance proposing `proposal`. `ops` is the client-op count the slot
  /// carries (1 for a plain submit, k for a batch of k).
  void admit(Value proposal, std::uint64_t ops,
             std::vector<std::uint8_t> blob,
             const Ledger::AdversaryFactory& adversary);

  EngineConfig config_;
  Ledger ledger_;
  Scheduler scheduler_;
  const harness::ProtocolDriver& bb_;

  /// One trusted-setup cache per worker; workers only ever touch their own.
  std::vector<std::unique_ptr<harness::SetupCache>> caches_;

  /// Guards the reorder buffer, the ledger, the merged meter, and stats.
  mutable std::mutex commit_mu_;
  /// Signalled when the commit frontier advances; submit() waits on it
  /// while the pipeline window (queue capacity + workers) is full.
  std::condition_variable window_open_;
  std::map<std::uint64_t, Prepared> reorder_;
  std::uint64_t next_commit_ = 0;
  std::uint64_t next_slot_ = 0;
  std::uint64_t window_waits_ = 0;
  Meter meter_;
  EngineStats stats_;
};

}  // namespace mewc::smr
