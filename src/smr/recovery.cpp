#include "smr/recovery.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "common/hash.hpp"
#include "smr/batch.hpp"
#include "smr/wal.hpp"

namespace mewc::smr {

// ---------------------------------------------------------------------------
// Durability hook.
// ---------------------------------------------------------------------------

void Durability::on_commit(const SlotRecord& rec, const Ledger& ledger,
                           std::span<const std::uint8_t> batch) {
  (void)ledger;
  if (crashed_) return;
  if (crash_pending_checkpoint_) {
    // after_checkpoint was armed but the crash slot sealed no checkpoint:
    // degrade to a plain crash after the crash slot's record.
    crashed_ = true;
    return;
  }
  // A batch that actually commits (handle matches the agreed value) is
  // persisted immediately before its slot record, so WAL replay sees the
  // blob first and can apply it when the slot arrives. A blob the slot did
  // not commit (skip, or a Byzantine proposer diverging from its handle)
  // is not worth durable bytes.
  const batch::Resolved what = batch::resolve(rec.value, batch);
  if (what.batch) wal::append_batch(store_->wal, rec.slot, batch);
  wal::append(store_->wal, rec);
  if (what.batch) {
    batch::apply(*what.batch, kv_);
  } else if (what.single) {
    kv_.apply(*what.single);
  }
  if (rec.slot == crash_.crash_slot) {
    if (crash_.after_checkpoint || crash_.mid_snapshot) {
      // Die between the checkpoint's WAL append and the snapshot cut
      // (after_checkpoint), or during the snapshot write (mid_snapshot).
      crash_pending_checkpoint_ = true;
    } else {
      crashed_ = true;  // slot record is the torn tail candidate
    }
  }
}

void Durability::on_checkpoint(const CheckpointRecord& rec,
                               const Ledger& ledger) {
  if (crashed_) return;
  wal::append(store_->wal, rec);
  if (crash_pending_checkpoint_ && !(crash_.mid_snapshot && rec.accepted)) {
    // The checkpoint record made it to the WAL; the snapshot did not.
    crashed_ = true;
    return;
  }
  if (!rec.accepted) return;  // only certified cuts become snapshots
  Snapshot snap;
  const RestoredState state = ledger.export_state();
  snap.after_slot = rec.after_slot;
  snap.ledger_digest = rec.ledger_digest;
  snap.total_words = state.total_words;
  snap.since_checkpoint = state.since_checkpoint;
  snap.healthy = state.healthy;
  snap.slots = state.slots;
  snap.checkpoints = state.checkpoints;
  snap.cert = rec;
  snap.kv_entries = kv_.entries();
  snap.kv_digest = kv_.digest();
  store_->snapshot = encode_snapshot(snap);
  ++snapshots_cut_;
  if (crash_pending_checkpoint_) {
    // mid_snapshot: the write was in flight when the process died; the
    // harness tears store->snapshot to model the incomplete overwrite.
    crashed_ = true;
  }
}

// ---------------------------------------------------------------------------
// WAL tail replay (shared by recovery and catch-up).
// ---------------------------------------------------------------------------

namespace {

struct TailReplay {
  std::uint64_t replayed = 0;
  /// Offset of the first structurally invalid record (out-of-order slot or
  /// a checkpoint whose digest does not match the replayed history); the
  /// log is only trusted up to here. SIZE_MAX = no structural problem.
  std::size_t structural_stop = SIZE_MAX;
  /// Offset of the first record actually applied (for transfer costing).
  std::size_t first_applied = SIZE_MAX;
};

/// Applies the scanned records that extend `state` (records at or before
/// the already-installed prefix are skipped), mirroring Ledger::commit's
/// meter/health/cadence bookkeeping so the restored state is exactly what
/// the uninterrupted ledger held. With `heal_snapshot` set, every accepted
/// checkpoint record re-cuts the snapshot from the replayed state — so a
/// crash between a checkpoint's WAL append and its snapshot write leaves
/// no lasting gap: recovery restores the "snapshot == latest accepted
/// checkpoint" invariant from the WAL alone.
TailReplay replay_records(const Ledger::Config& config,
                          const std::vector<wal::Record>& records,
                          std::uint64_t covered_cut, RestoredState& state,
                          KvState& kv,
                          std::vector<std::uint8_t>* heal_snapshot) {
  TailReplay out;
  std::uint64_t digest = Ledger::replay_digest(config.seed, state.slots);
  // The batch blob written just ahead of its slot record (empty span = no
  // batch pending); views borrow the record's bytes, which outlive the loop.
  std::uint64_t pending_batch_slot = ~0ull;
  std::span<const std::uint8_t> pending_batch;
  for (const wal::Record& rec : records) {
    if (rec.type == wal::RecordType::kBatch) {
      if (rec.batch_slot < state.slots.size()) continue;  // snapshot-covered
      // A batch record always immediately precedes its slot record; any
      // other placement means the log is lying from here on.
      if (rec.batch_slot != state.slots.size()) {
        out.structural_stop = rec.offset;
        break;
      }
      pending_batch_slot = rec.batch_slot;
      pending_batch = rec.batch;
    } else if (rec.type == wal::RecordType::kSlot) {
      if (rec.slot.slot < state.slots.size()) continue;  // snapshot-covered
      if (rec.slot.slot != state.slots.size()) {
        out.structural_stop = rec.offset;
        break;
      }
      digest = hash_combine(digest,
                            hash_combine(rec.slot.slot, rec.slot.value.raw));
      state.slots.push_back(rec.slot);
      state.total_words += rec.slot.words;
      state.healthy = state.healthy && rec.slot.agreement;
      if (!rec.slot.skipped) {
        const auto blob = pending_batch_slot == rec.slot.slot
                              ? pending_batch
                              : std::span<const std::uint8_t>();
        const batch::Resolved what = batch::resolve(rec.slot.value, blob);
        if (what.batch) {
          batch::apply(*what.batch, kv);
        } else if (what.single) {
          kv.apply(*what.single);
        }
        if (config.checkpoint_every != 0) ++state.since_checkpoint;
      }
      pending_batch_slot = ~0ull;
      pending_batch = {};
    } else {
      if (rec.checkpoint.after_slot <= covered_cut) continue;
      // A checkpoint seals the history it claims: wrong cut or wrong
      // digest means the log is lying from here on.
      if (rec.checkpoint.after_slot != state.slots.size() ||
          rec.checkpoint.ledger_digest != digest) {
        out.structural_stop = rec.offset;
        break;
      }
      state.checkpoints.push_back(rec.checkpoint);
      state.total_words += rec.checkpoint.words;
      state.healthy =
          state.healthy && rec.checkpoint.agreement && rec.checkpoint.accepted;
      state.since_checkpoint = 0;
      if (heal_snapshot != nullptr && rec.checkpoint.accepted) {
        Snapshot snap;
        snap.after_slot = rec.checkpoint.after_slot;
        snap.ledger_digest = digest;
        snap.total_words = state.total_words;
        snap.since_checkpoint = 0;
        snap.healthy = state.healthy;
        snap.slots = state.slots;
        snap.checkpoints = state.checkpoints;
        snap.cert = rec.checkpoint;
        snap.kv_entries = kv.entries();
        snap.kv_digest = kv.digest();
        *heal_snapshot = encode_snapshot(snap);
      }
    }
    out.first_applied = std::min(out.first_applied, rec.offset);
    ++out.replayed;
  }
  return out;
}

void install_snapshot(Snapshot snap, RestoredState& state, KvState& kv) {
  state.slots = std::move(snap.slots);
  state.checkpoints = std::move(snap.checkpoints);
  state.total_words = snap.total_words;
  state.since_checkpoint = snap.since_checkpoint;
  state.healthy = snap.healthy;
  kv.restore(std::move(snap.kv_entries), snap.kv_digest);
}

}  // namespace

// ---------------------------------------------------------------------------
// Recovery.
// ---------------------------------------------------------------------------

Recovered recover(const Ledger::Config& config, Store& store) {
  Recovered out;
  const wal::ScanResult scanned = wal::scan(store.wal);

  std::uint64_t covered_cut = 0;
  if (!store.snapshot.empty()) {
    auto snap = decode_snapshot(store.snapshot);
    if (snap && snap->valid(config.seed)) {
      out.stats.used_snapshot = true;
      out.stats.snapshot_slot = snap->after_slot;
      covered_cut = snap->after_slot;
      install_snapshot(std::move(*snap), out.state, out.kv);
    } else {
      // Torn or invalid snapshot: drop it and rebuild from the WAL alone.
      store.snapshot.clear();
    }
  }

  const TailReplay tail = replay_records(config, scanned.records, covered_cut,
                                         out.state, out.kv, &store.snapshot);
  out.stats.records_replayed = tail.replayed;

  // Truncate the store to the verified prefix: torn frames (scan) and
  // structurally invalid records (replay) are equally untrusted.
  const std::size_t valid =
      std::min(scanned.valid_bytes, tail.structural_stop);
  out.stats.wal_bytes_truncated = store.wal.size() - valid;
  store.wal.resize(valid);

  out.stats.checkpoint_pending =
      config.checkpoint_every != 0 &&
      out.state.since_checkpoint >= config.checkpoint_every;
  return out;
}

// ---------------------------------------------------------------------------
// Catch-up (certified state sync).
// ---------------------------------------------------------------------------

CaughtUp catch_up(const Ledger::Config& config, const Store& peer) {
  CaughtUp out;
  if (peer.snapshot.empty()) return out;  // nothing certified to transfer
  auto snap = decode_snapshot(peer.snapshot);
  if (!snap || !snap->valid(config.seed)) return out;

  out.stats.cert_ok = true;
  out.stats.snapshot_slot = snap->after_slot;
  const std::uint64_t cut = snap->after_slot;
  install_snapshot(std::move(*snap), out.state, out.kv);

  const wal::ScanResult scanned = wal::scan(peer.wal);
  const TailReplay tail = replay_records(config, scanned.records, cut,
                                         out.state, out.kv, nullptr);
  out.stats.tail_slots = out.state.slots.size() - cut;

  std::size_t tail_bytes = 0;
  if (tail.first_applied != SIZE_MAX) {
    tail_bytes = std::min(scanned.valid_bytes, tail.structural_stop) -
                 tail.first_applied;
  }
  out.stats.words_transferred = (peer.snapshot.size() + tail_bytes + 7) / 8;
  out.stats.ok = true;
  return out;
}

// ---------------------------------------------------------------------------
// Directory persistence.
// ---------------------------------------------------------------------------

namespace {

namespace fs = std::filesystem;

constexpr const char* kWalFile = "wal.bin";
constexpr const char* kSnapshotFile = "snapshot.bin";

bool read_bytes(const fs::path& path, std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

// Atomic replace: a truncating ofstream on the target destroys the old
// file the moment it opens, so a crash mid-write leaves neither the old
// snapshot nor the new one — exactly the torn-snapshot state the
// mid_snapshot crash cells exercise. Writing a sibling temp file and
// renaming over the target means the directory always holds either the
// complete old bytes or the complete new bytes.
bool write_bytes(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream outf(tmp, std::ios::binary | std::ios::trunc);
    if (!outf) return false;
    if (!bytes.empty()) {
      outf.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
    }
    outf.flush();
    if (!outf.good()) return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace

std::optional<Store> load_store(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return std::nullopt;
  Store store;
  // Missing files are a fresh replica, not an error.
  read_bytes(fs::path(dir) / kWalFile, store.wal);
  read_bytes(fs::path(dir) / kSnapshotFile, store.snapshot);
  return store;
}

bool save_store(const std::string& dir, const Store& store) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return false;
  return write_bytes(fs::path(dir) / kWalFile, store.wal) &&
         write_bytes(fs::path(dir) / kSnapshotFile, store.snapshot);
}

}  // namespace mewc::smr
