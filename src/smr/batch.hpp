// Client-op batching for the SMR engine: pack many one-word kv::Commands
// into a single consensus instance so the per-instance word cost (the
// paper's O(n(f+1)) bound) is amortized across the whole batch and
// words-per-op drops by the batch factor.
//
// Consensus still agrees on exactly one word — faithful to the paper's
// finite-domain value model. The proposer broadcasts the batch bytes
// out-of-band (charged as n x (k-1) extra words: the first command rides
// in the BB payload itself) and proposes a one-word digest *handle* of
// those bytes. A slot whose committed value equals the handle of its
// attached batch applies the whole batch; any other value degrades to the
// usual single-command decode, so a Byzantine proposer can still only
// waste its own slot.
//
// On the wire and in the WAL, a batch is one checksummed wire::frame whose
// body is `u8 magic | u8 version | u32 count | count x u64 packed
// commands`. BatchView parses that blob without copying or allocating:
// it borrows the caller's bytes (the WAL buffer, the arena-owned receive
// buffer) and yields Commands straight out of the span, which is what the
// zero-alloc decode pin in bench_substrate_regression measures.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "smr/kv_store.hpp"

namespace mewc::smr::batch {

inline constexpr std::uint8_t kMagic = 0xb7;
inline constexpr std::uint8_t kVersion = 1;
/// Batches larger than this are rejected as malformed (a torn count field
/// must not make a reader chase gigabytes of garbage).
inline constexpr std::uint32_t kMaxBatch = 1u << 20;

/// Encodes the commands as one framed, checksummed blob.
[[nodiscard]] std::vector<std::uint8_t> encode(
    std::span<const Command> commands);

/// The one-word consensus handle for a batch blob: a content digest nudged
/// off the reserved values (never ⊥, never "I don't know"), so a batch slot
/// can never read as skipped. Only ever compared against the handle of an
/// attached blob — accidental collision with a packed single command is
/// harmless because an attached batch takes precedence only when the
/// handles match.
[[nodiscard]] Value handle(std::span<const std::uint8_t> blob);

/// Zero-copy reader over an encoded batch blob. Borrows the blob bytes —
/// the view (and every iterator) is valid only while they outlive it; the
/// owner is whoever holds the buffer (the WAL vector, the arena's receive
/// buffer), never the view.
class BatchView {
 public:
  /// Validates the frame checksum, magic, version, and count against the
  /// byte length. Returns nullopt on any mismatch: a view either sees a
  /// fully-verified batch or nothing.
  [[nodiscard]] static std::optional<BatchView> parse(
      std::span<const std::uint8_t> blob);

  [[nodiscard]] std::uint32_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Decodes command i straight out of the borrowed bytes. Reserved and
  /// malformed words decode to kNoop, exactly like Command::unpack.
  [[nodiscard]] Command operator[](std::uint32_t i) const;

  /// Forward iterator yielding Commands by value (nothing to point into).
  class Iterator {
   public:
    using value_type = Command;
    using difference_type = std::ptrdiff_t;

    Iterator() = default;
    Iterator(const BatchView* view, std::uint32_t i) : view_(view), i_(i) {}

    Command operator*() const { return (*view_)[i_]; }
    Iterator& operator++() {
      ++i_;
      return *this;
    }
    Iterator operator++(int) {
      Iterator old = *this;
      ++i_;
      return old;
    }
    bool operator==(const Iterator& o) const = default;

   private:
    const BatchView* view_ = nullptr;
    std::uint32_t i_ = 0;
  };

  [[nodiscard]] Iterator begin() const { return Iterator(this, 0); }
  [[nodiscard]] Iterator end() const { return Iterator(this, count_); }

 private:
  BatchView(std::span<const std::uint8_t> words, std::uint32_t count)
      : words_(words), count_(count) {}

  std::span<const std::uint8_t> words_;  // count_ x 8 bytes, little-endian
  std::uint32_t count_ = 0;
};

/// Applies every command in the batch to `state`, in order — the batch
/// equivalent of KvState::apply, decoding straight out of the borrowed
/// bytes (no intermediate vector of commands).
void apply(const BatchView& view, KvState& state);

/// The decision a slot with this committed value and (possibly empty)
/// attached blob applies: the parsed batch when the value is the blob's
/// handle, otherwise the value decoded as a single command (nullopt when
/// the slot was skipped). Shared by the durability hook, WAL replay, and
/// the in-memory store so every path applies bit-identical state.
struct Resolved {
  std::optional<BatchView> batch;  // borrows `blob`
  std::optional<Command> single;
};
[[nodiscard]] Resolved resolve(Value committed,
                               std::span<const std::uint8_t> blob);

}  // namespace mewc::smr::batch
