#include "smr/kv_store.hpp"

#include "common/hash.hpp"
#include "smr/batch.hpp"

namespace mewc::smr {

namespace {
constexpr std::uint64_t kOpShift = 60;
constexpr std::uint64_t kKeyShift = 40;
constexpr std::uint64_t kKeyMask = (1ull << 20) - 1;
constexpr std::uint64_t kArgMask = (1ull << 40) - 1;
}  // namespace

Value Command::pack() const {
  MEWC_CHECK_MSG(key <= kKeyMask, "key exceeds 20 bits");
  MEWC_CHECK_MSG(arg <= kArgMask, "arg exceeds 40 bits");
  return Value{(static_cast<std::uint64_t>(op) << kOpShift) |
               (static_cast<std::uint64_t>(key) << kKeyShift) | arg};
}

Command Command::unpack(Value v) {
  if (v.is_bottom() || v.is_idk()) return Command{};
  Command c;
  const auto op = static_cast<std::uint8_t>(v.raw >> kOpShift);
  if (op > static_cast<std::uint8_t>(Op::kErase)) return Command{};  // noop
  c.op = static_cast<Op>(op);
  c.key = static_cast<std::uint32_t>((v.raw >> kKeyShift) & kKeyMask);
  c.arg = v.raw & kArgMask;
  return c;
}

void KvState::apply(const Command& cmd) {
  switch (cmd.op) {
    case Command::Op::kNoop:
      break;
    case Command::Op::kPut:
      map_[cmd.key] = cmd.arg;
      break;
    case Command::Op::kAdd:
      map_[cmd.key] += cmd.arg;
      break;
    case Command::Op::kErase:
      map_.erase(cmd.key);
      break;
  }
  digest_ = hash_combine(
      digest_, hash_combine(static_cast<std::uint64_t>(cmd.op),
                            hash_combine(cmd.key, cmd.arg)));
}

std::optional<std::uint64_t> KvState::get(std::uint32_t key) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

bool ReplicatedKvStore::submit(const Command& cmd,
                               const Ledger::AdversaryFactory& adversary) {
  const SlotRecord& rec = ledger_.append(cmd.pack(), adversary);
  if (rec.skipped) return false;
  // Every replica applies the agreed slot outcome — which may differ from
  // the submitted command if the slot's proposer was Byzantine.
  const Command agreed = Command::unpack(rec.value);
  for (KvState& state : states_) state.apply(agreed);
  return true;
}

std::size_t ReplicatedKvStore::submit_batch(
    std::span<const Command> commands,
    const Ledger::AdversaryFactory& adversary) {
  MEWC_CHECK_MSG(!commands.empty(), "a batch carries at least one command");
  const std::vector<std::uint8_t> blob = batch::encode(commands);
  // The ledger keeps its own copy for the durability hook and drops it at
  // commit; this copy outlives the append so the replicas can apply it.
  ledger_.attach_payload(ledger_.slots().size(), blob);
  const SlotRecord& rec = ledger_.append(batch::handle(blob), adversary);
  const batch::Resolved what = batch::resolve(rec.value, blob);
  if (what.batch) {
    for (KvState& state : states_) batch::apply(*what.batch, state);
    return what.batch->size();
  }
  if (what.single) {
    for (KvState& state : states_) state.apply(*what.single);
    return 1;
  }
  return 0;
}

bool ReplicatedKvStore::consistent() const {
  for (std::size_t p = 1; p < states_.size(); ++p) {
    if (states_[p].digest() != states_[0].digest()) return false;
  }
  return true;
}

}  // namespace mewc::smr
