#include "smr/snapshot.hpp"

#include "wire/frame.hpp"

namespace mewc::smr {

namespace {

constexpr std::uint32_t kMagic = 0x6d736e70;  // "msnp"
constexpr std::uint32_t kVersion = 1;
// Defensive bound against corrupt counts in a checksum-colliding body.
constexpr std::uint32_t kMaxItems = 1u << 24;

void put_slot(wire::Writer& w, const SlotRecord& rec) {
  w.u64(rec.slot);
  w.u32(rec.proposer);
  w.u64(rec.value.raw);
  w.boolean(rec.skipped);
  w.boolean(rec.agreement);
  w.boolean(rec.fallback);
  w.u64(rec.words);
}

bool get_slot(wire::Reader& r, SlotRecord& rec) {
  rec.slot = r.u64();
  rec.proposer = r.u32();
  rec.value.raw = r.u64();
  rec.skipped = r.boolean();
  rec.agreement = r.boolean();
  rec.fallback = r.boolean();
  rec.words = r.u64();
  return r.ok() && rec.skipped == rec.value.is_bottom();
}

void put_checkpoint(wire::Writer& w, const CheckpointRecord& rec) {
  w.u64(rec.after_slot);
  w.u64(rec.ledger_digest);
  w.boolean(rec.accepted);
  w.boolean(rec.agreement);
  w.u64(rec.words);
}

bool get_checkpoint(wire::Reader& r, CheckpointRecord& rec) {
  rec.after_slot = r.u64();
  rec.ledger_digest = r.u64();
  rec.accepted = r.boolean();
  rec.agreement = r.boolean();
  rec.words = r.u64();
  return r.ok();
}

}  // namespace

bool Snapshot::certified() const {
  return cert.accepted && cert.agreement && cert.after_slot == after_slot &&
         cert.ledger_digest == ledger_digest;
}

bool Snapshot::valid(std::uint64_t seed) const {
  if (!certified()) return false;
  if (after_slot != slots.size()) return false;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].slot != i) return false;
  }
  return Ledger::replay_digest(seed, slots) == ledger_digest;
}

std::vector<std::uint8_t> encode_snapshot(const Snapshot& snap) {
  wire::Writer w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.u64(snap.after_slot);
  w.u64(snap.ledger_digest);
  w.u64(snap.total_words);
  w.u32(snap.since_checkpoint);
  w.boolean(snap.healthy);

  w.u32(static_cast<std::uint32_t>(snap.slots.size()));
  for (const SlotRecord& rec : snap.slots) put_slot(w, rec);
  w.u32(static_cast<std::uint32_t>(snap.checkpoints.size()));
  for (const CheckpointRecord& rec : snap.checkpoints) put_checkpoint(w, rec);
  put_checkpoint(w, snap.cert);

  w.u32(static_cast<std::uint32_t>(snap.kv_entries.size()));
  for (const auto& [key, value] : snap.kv_entries) {
    w.u32(key);
    w.u64(value);
  }
  w.u64(snap.kv_digest);

  std::vector<std::uint8_t> out;
  wire::append_frame(out, w.take());
  return out;
}

std::optional<Snapshot> decode_snapshot(std::span<const std::uint8_t> bytes) {
  const auto frame = wire::read_frame(bytes, 0);
  // Exactly one frame, nothing after it.
  if (!frame || frame->frame_size != bytes.size()) return std::nullopt;

  wire::Reader r(frame->body);
  if (r.u32() != kMagic || r.u32() != kVersion) return std::nullopt;

  Snapshot snap;
  snap.after_slot = r.u64();
  snap.ledger_digest = r.u64();
  snap.total_words = r.u64();
  snap.since_checkpoint = r.u32();
  snap.healthy = r.boolean();

  const std::uint32_t n_slots = r.u32();
  if (!r.ok() || n_slots > kMaxItems) return std::nullopt;
  snap.slots.resize(n_slots);
  for (SlotRecord& rec : snap.slots) {
    if (!get_slot(r, rec)) return std::nullopt;
  }
  const std::uint32_t n_cps = r.u32();
  if (!r.ok() || n_cps > kMaxItems) return std::nullopt;
  snap.checkpoints.resize(n_cps);
  for (CheckpointRecord& rec : snap.checkpoints) {
    if (!get_checkpoint(r, rec)) return std::nullopt;
  }
  if (!get_checkpoint(r, snap.cert)) return std::nullopt;

  const std::uint32_t n_kv = r.u32();
  if (!r.ok() || n_kv > kMaxItems) return std::nullopt;
  std::uint64_t prev_key = 0;
  for (std::uint32_t i = 0; i < n_kv; ++i) {
    const std::uint32_t key = r.u32();
    const std::uint64_t value = r.u64();
    // Canonical form: strictly ascending keys (it is a serialized map).
    if (i > 0 && key <= prev_key) return std::nullopt;
    prev_key = key;
    snap.kv_entries.emplace_hint(snap.kv_entries.end(), key, value);
  }
  snap.kv_digest = r.u64();

  if (!r.done()) return std::nullopt;
  return snap;
}

}  // namespace mewc::smr
