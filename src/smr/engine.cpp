#include "smr/engine.hpp"

#include <algorithm>
#include <utility>

#include "ba/adversaries/adversaries.hpp"
#include "common/check.hpp"
#include "smr/batch.hpp"

namespace mewc::smr {

namespace {

const harness::ProtocolDriver& bb_driver() {
  const harness::ProtocolDriver* d = harness::find_driver("bb");
  MEWC_CHECK_MSG(d != nullptr, "bb driver missing from registry");
  return *d;
}

}  // namespace

Engine::Engine(const EngineConfig& config)
    : config_(config),
      ledger_([&config] {
        Ledger::Config c;
        c.n = config.n;
        c.t = config.t;
        c.backend = config.backend;
        c.seed = config.seed;
        c.checkpoint_every = config.checkpoint_every;
        c.base_instance = config.base_instance;
        c.executor = config.executor;
        c.durability = config.durability;
        return c;
      }()),
      scheduler_(config.workers, config.queue_capacity),
      bb_(bb_driver()) {
  caches_.reserve(config.workers);
  for (std::uint32_t w = 0; w < config.workers; ++w) {
    caches_.push_back(std::make_unique<harness::SetupCache>());
  }
}

Engine::~Engine() {
  finish();
  scheduler_.shutdown();
}

void Engine::submit(Value proposal, const Ledger::AdversaryFactory& adversary) {
  admit(proposal, 1, {}, adversary);
}

void Engine::submit_batch(std::span<const Command> commands,
                          const Ledger::AdversaryFactory& adversary) {
  MEWC_CHECK_MSG(!commands.empty(), "a batch carries at least one command");
  std::vector<std::uint8_t> blob = batch::encode(commands);
  const Value proposal = batch::handle(blob);
  admit(proposal, commands.size(), std::move(blob), adversary);
}

void Engine::admit(Value proposal, std::uint64_t ops,
                   std::vector<std::uint8_t> blob,
                   const Ledger::AdversaryFactory& adversary) {
  const std::uint64_t window =
      static_cast<std::uint64_t>(config_.queue_capacity) + config_.workers;
  std::uint64_t slot = 0;
  {
    std::unique_lock<std::mutex> lock(commit_mu_);
    // Pipeline-window backpressure: never run more than `window` slots
    // ahead of the commit frontier, so the reorder buffer stays bounded
    // even when the frontier slot is the slowest instance in flight.
    if (next_slot_ - next_commit_ >= window) {
      ++window_waits_;
      window_open_.wait(lock,
                        [&] { return next_slot_ - next_commit_ < window; });
    }
    slot = next_slot_++;
    ++stats_.submitted;
    stats_.ops_submitted += ops;
    if (!blob.empty()) {
      // The blob must be attached before the instance can possibly commit;
      // the commit lock is already held, which is what attach_payload's
      // thread-safety contract asks for.
      ledger_.attach_payload(slot, std::move(blob));
      stats_.batch_extra_words +=
          static_cast<std::uint64_t>(config_.n) * (ops - 1);
    }
  }
  // The scheduler may also apply its own queue backpressure here;
  // commit_mu_ must not be held or a full queue would deadlock against the
  // committing workers.
  scheduler_.submit([this, slot, proposal, adversary](std::uint32_t worker) {
    harness::RunSpec spec = ledger_.prepare_spec(slot);
    spec.setup_cache = caches_[worker].get();
    const ProcessId proposer = ledger_.proposer_of(slot);

    std::unique_ptr<Adversary> adv;
    if (adversary) adv = adversary(slot, proposer);
    adv::NullAdversary null_adv;
    Adversary& adv_ref = adv ? *adv : static_cast<Adversary&>(null_adv);

    harness::RunInputs inputs;
    inputs.values =
        std::vector<WireValue>(config_.n, WireValue::plain(proposal));
    inputs.sender = proposer;

    Prepared done;
    done.report = bb_.run(spec, inputs, adv_ref);
    done.adversary = adversary;
    complete(slot, std::move(done));
  });
}

void Engine::complete(std::uint64_t slot, Prepared done) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  reorder_.emplace(slot, std::move(done));
  stats_.max_reorder_depth =
      std::max<std::uint64_t>(stats_.max_reorder_depth, reorder_.size());
  // Advance the commit frontier: everything contiguous from next_commit_ is
  // committed now, in slot order, by whichever worker happened to fill the
  // gap. Checkpoint instances triggered by the cadence run serially here.
  for (auto it = reorder_.find(next_commit_); it != reorder_.end();
       it = reorder_.find(next_commit_)) {
    const Prepared& p = it->second;
    const SlotRecord& rec = ledger_.commit(it->first, p.report, p.adversary);
    meter_.merge(p.report.meter);
    ++stats_.committed;
    stats_.skipped += rec.skipped ? 1 : 0;
    stats_.fallbacks += rec.fallback ? 1 : 0;
    reorder_.erase(it);
    ++next_commit_;
  }
  window_open_.notify_all();
}

void Engine::finish() {
  scheduler_.drain();
  std::lock_guard<std::mutex> lock(commit_mu_);
  MEWC_CHECK_MSG(reorder_.empty(), "drained engine has uncommitted slots");
  MEWC_CHECK(next_commit_ == next_slot_);
  stats_.setup_cache_hits = 0;
  stats_.setup_cache_misses = 0;
  stats_.crypto_pairings = 0;
  stats_.crypto_memo_hits = 0;
  for (const auto& cache : caches_) {
    stats_.setup_cache_hits += cache->hits();
    stats_.setup_cache_misses += cache->misses();
    const CryptoVerifyStats crypto = cache->crypto_verify_stats();
    stats_.crypto_pairings += crypto.pairings;
    stats_.crypto_memo_hits += crypto.memo_hits;
  }
  stats_.backpressure_waits =
      window_waits_ + scheduler_.stats().backpressure_waits;
}

void Engine::restore(RestoredState state,
                     const Ledger::AdversaryFactory& adversary) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  MEWC_CHECK_MSG(next_slot_ == 0, "restore before any submit");
  ledger_.install(std::move(state));
  ledger_.complete_pending_checkpoint(adversary);
  next_slot_ = next_commit_ = ledger_.slots().size();
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return stats_;
}

}  // namespace mewc::smr
