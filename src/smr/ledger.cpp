#include "smr/ledger.hpp"

#include "ba/adversaries/adversaries.hpp"
#include "common/hash.hpp"

namespace mewc::smr {

Ledger::Ledger(Config config)
    : config_(config), digest_(mix64(config.seed ^ 0x1ed6e2)) {
  MEWC_CHECK(config_.n >= 2 * config_.t + 1);
}

ProcessId Ledger::next_proposer() const { return proposer_of(slots_.size()); }

void Ledger::attach_payload(std::uint64_t slot,
                            std::vector<std::uint8_t> blob) {
  MEWC_CHECK_MSG(slot >= slots_.size(), "payload for an already-committed slot");
  payloads_[slot] = std::move(blob);
}

std::span<const std::uint8_t> Ledger::payload_of(std::uint64_t slot) const {
  const auto it = payloads_.find(slot);
  if (it == payloads_.end()) return {};
  return it->second;
}

ProcessId Ledger::proposer_of(std::uint64_t slot) const {
  return static_cast<ProcessId>(slot % config_.n);
}

harness::RunSpec Ledger::prepare_spec(std::uint64_t slot) const {
  harness::RunSpec spec = harness::RunSpec::with(config_.n, config_.t);
  spec.backend = config_.backend;
  spec.seed = config_.seed;
  spec.executor = config_.executor;
  // Distinct instance nonce per slot: checkpoints use the odd lane.
  spec.instance = config_.base_instance + 2 * slot;
  return spec;
}

const SlotRecord& Ledger::append(Value v, const AdversaryFactory& adversary) {
  const std::uint64_t slot = slots_.size();
  const ProcessId proposer = proposer_of(slot);
  const harness::RunSpec spec = prepare_spec(slot);

  std::unique_ptr<Adversary> adv;
  if (adversary) adv = adversary(slot, proposer);
  adv::NullAdversary null_adv;
  Adversary& adv_ref = adv ? *adv : static_cast<Adversary&>(null_adv);

  const harness::ProtocolDriver* bb = harness::find_driver("bb");
  MEWC_CHECK(bb != nullptr);
  harness::RunInputs inputs;
  inputs.values = std::vector<WireValue>(config_.n, WireValue::plain(v));
  inputs.sender = proposer;
  return commit(slot, bb->run(spec, inputs, adv_ref), adversary);
}

const SlotRecord& Ledger::commit(std::uint64_t slot,
                                 const harness::RunReport& report,
                                 const AdversaryFactory& adversary) {
  MEWC_CHECK_MSG(slot == slots_.size(), "slots commit strictly in order");

  SlotRecord rec;
  rec.slot = slot;
  rec.proposer = proposer_of(slot);
  rec.agreement = report.agreement();
  rec.fallback = report.any_fallback;
  rec.words = report.meter.words_correct;
  rec.value = report.decision().value;
  rec.skipped = rec.value.is_bottom();

  healthy_ &= rec.agreement;
  total_words_ += rec.words;
  // The digest covers the agreed outcome of every slot, skips included.
  digest_ = hash_combine(digest_, hash_combine(slot, rec.value.raw));
  slots_.push_back(rec);
  const auto payload = payloads_.find(slot);
  if (config_.durability != nullptr) {
    config_.durability->on_commit(
        slots_.back(), *this,
        payload != payloads_.end()
            ? std::span<const std::uint8_t>(payload->second)
            : std::span<const std::uint8_t>());
  }
  // The blob's one committal chance was this slot; drop it either way.
  if (payload != payloads_.end()) payloads_.erase(payload);

  if (!rec.skipped && config_.checkpoint_every != 0) {
    if (++since_checkpoint_ >= config_.checkpoint_every) {
      since_checkpoint_ = 0;
      run_checkpoint(adversary);
    }
  }
  return slots_.back();
}

void Ledger::run_checkpoint(const AdversaryFactory& adversary) {
  harness::RunSpec spec = harness::RunSpec::with(config_.n, config_.t);
  spec.backend = config_.backend;
  spec.seed = config_.seed;
  spec.executor = config_.executor;
  // Odd lane *between* the just-committed slot (base + 2k) and the next
  // one (base + 2k + 2): instance nonces are strictly increasing in
  // execution order, which the networked deployment relies on (watermarks
  // and the transport's stale-instance floor both advance monotonically).
  spec.instance = config_.base_instance + 2 * slots_.size() - 1;

  // Every correct replica holds the same log (per-slot agreement), so all
  // propose "my state matches the digest" = 1; the binary strong BA then
  // seals the checkpoint, cheaply when the round is failure-free (Lemma 8).
  harness::RunInputs inputs;
  inputs.values =
      std::vector<WireValue>(config_.n, WireValue::plain(Value(1)));

  harness::RunReport res;
  if (config_.checkpoint_runner) {
    res = config_.checkpoint_runner(spec, inputs);
  } else {
    std::unique_ptr<Adversary> adv;
    if (adversary) adv = adversary(slots_.size(), kNoProcess);
    adv::NullAdversary null_adv;
    Adversary& adv_ref = adv ? *adv : static_cast<Adversary&>(null_adv);

    const harness::ProtocolDriver* sba = harness::find_driver("strong-ba");
    MEWC_CHECK(sba != nullptr);
    res = sba->run(spec, inputs, adv_ref);
  }

  CheckpointRecord rec;
  rec.after_slot = slots_.size();
  rec.ledger_digest = digest_;
  rec.agreement = res.agreement();
  rec.accepted = res.decision().value == Value(1);
  rec.words = res.meter.words_correct;

  healthy_ &= rec.agreement && rec.accepted;
  total_words_ += rec.words;
  checkpoints_.push_back(rec);
  if (config_.durability != nullptr) {
    config_.durability->on_checkpoint(checkpoints_.back(), *this);
  }
}

std::uint64_t Ledger::replay_digest(std::uint64_t seed,
                                    const std::vector<SlotRecord>& slots) {
  std::uint64_t d = mix64(seed ^ 0x1ed6e2);
  for (const SlotRecord& s : slots) {
    d = hash_combine(d, hash_combine(s.slot, s.value.raw));
  }
  return d;
}

RestoredState Ledger::export_state() const {
  RestoredState state;
  state.slots = slots_;
  state.checkpoints = checkpoints_;
  state.total_words = total_words_;
  state.since_checkpoint = since_checkpoint_;
  state.healthy = healthy_;
  return state;
}

void Ledger::install(RestoredState state) {
  MEWC_CHECK_MSG(slots_.empty() && checkpoints_.empty(),
                 "install only into a fresh ledger");
  for (std::size_t i = 0; i < state.slots.size(); ++i) {
    MEWC_CHECK_MSG(state.slots[i].slot == i, "restored slots must be dense");
  }
  slots_ = std::move(state.slots);
  checkpoints_ = std::move(state.checkpoints);
  digest_ = replay_digest(config_.seed, slots_);
  total_words_ = state.total_words;
  since_checkpoint_ = state.since_checkpoint;
  healthy_ = state.healthy;
}

void Ledger::complete_pending_checkpoint(const AdversaryFactory& adversary) {
  if (config_.checkpoint_every == 0 ||
      since_checkpoint_ < config_.checkpoint_every) {
    return;
  }
  since_checkpoint_ = 0;
  run_checkpoint(adversary);
}

std::vector<Value> Ledger::committed() const {
  std::vector<Value> out;
  for (const SlotRecord& s : slots_) {
    if (!s.skipped) out.push_back(s.value);
  }
  return out;
}

}  // namespace mewc::smr
