// Crash-recovery and certified state sync for the durable ledger.
//
// A replica's durable state is a Store: WAL bytes plus (optionally) the
// latest snapshot blob. The Durability hook fills the store as the ledger
// commits; recover() rebuilds the replayable state after a crash —
// loading the last valid snapshot, replaying the WAL tail, truncating
// torn/corrupt records at the first bad checksum, and detecting a
// checkpoint that was due but never persisted; catch_up() is the
// word-efficient peer path: accept a checkpoint-certified snapshot plus
// slot tail from a peer instead of re-running consensus (the certified
// state transfer VABA motivates, arXiv:1811.01332).
//
// Recovery never aborts on hostile durable bytes: everything that cannot
// be fully verified is truncated, and the replica resumes from the longest
// verified prefix. A partially-written slot is never committed.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "smr/kv_store.hpp"
#include "smr/ledger.hpp"
#include "smr/snapshot.hpp"

namespace mewc::smr {

/// A replica's durable bytes. In-memory so the DST engine can crash, tear,
/// and restart replicas deterministically; load_store/save_store move it
/// to/from a directory for `mewc_sim --wal-dir`.
struct Store {
  std::vector<std::uint8_t> wal;
  std::vector<std::uint8_t> snapshot;  // empty = none cut yet
};

/// Crash-injection point inside the Durability hook: a real crash stops
/// persistence mid-commit, so everything the hook would have written after
/// the injection point must not reach the store.
struct CrashPlan {
  /// Stop persisting after appending this slot's WAL record (the torn-tail
  /// mutation is applied separately, to the surviving bytes).
  std::uint64_t crash_slot = kNoCrashSlot;
  /// When the crash slot triggers a checkpoint: also persist the
  /// checkpoint's WAL record and die before the snapshot cut, modeling a
  /// crash between those two writes.
  bool after_checkpoint = false;
  /// Die while the crash slot's snapshot write is in flight: the
  /// checkpoint's WAL record is durable and the store's snapshot has been
  /// replaced by the new cut — the harness then truncates it at a seeded
  /// offset, modeling a non-atomic overwrite that destroyed the old
  /// snapshot without completing the new one. Takes precedence over
  /// after_checkpoint; degrades to a plain crash when the crash slot seals
  /// no accepted checkpoint.
  bool mid_snapshot = false;

  static constexpr std::uint64_t kNoCrashSlot = ~0ull;
};

/// The production durability sink: appends one WAL record per committed
/// slot and per sealed checkpoint, maintains the durable kv state, and
/// cuts a snapshot at every accepted checkpoint. Callbacks run in commit
/// order (under the engine's commit lock), so the store's byte stream is
/// deterministic regardless of worker count.
class Durability final : public DurabilityHook {
 public:
  explicit Durability(Store* store, CrashPlan crash = {})
      : store_(store), crash_(crash) {
    MEWC_CHECK(store != nullptr);
  }

  /// Reinstates the durable kv mirror after recovery, before the ledger is
  /// restored (a pending-checkpoint completion may cut a snapshot that
  /// must carry this state).
  void reset_kv(KvState kv) { kv_ = std::move(kv); }

  [[nodiscard]] const KvState& kv() const { return kv_; }
  [[nodiscard]] bool crashed() const { return crashed_; }
  /// Snapshots cut so far (this process lifetime).
  [[nodiscard]] std::uint64_t snapshots_cut() const { return snapshots_cut_; }

  void on_commit(const SlotRecord& rec, const Ledger& ledger,
                 std::span<const std::uint8_t> batch) override;
  void on_checkpoint(const CheckpointRecord& rec,
                     const Ledger& ledger) override;

 private:
  Store* store_;
  CrashPlan crash_;
  KvState kv_;
  bool crashed_ = false;
  bool crash_pending_checkpoint_ = false;
  std::uint64_t snapshots_cut_ = 0;
};

struct RecoveryStats {
  bool used_snapshot = false;
  /// Cut point of the snapshot used (0 when recovering from genesis).
  std::uint64_t snapshot_slot = 0;
  /// WAL records applied beyond the snapshot cut.
  std::uint64_t records_replayed = 0;
  /// Torn/corrupt tail bytes dropped at the first bad checksum.
  std::uint64_t wal_bytes_truncated = 0;
  /// A checkpoint was due after the last durable slot but its record never
  /// made it to the WAL; the caller must complete it before serving.
  bool checkpoint_pending = false;
};

/// Recovered replayable state, ready for Ledger::install / Engine::restore.
struct Recovered {
  RestoredState state;
  KvState kv;
  RecoveryStats stats;
};

/// Rebuilds replica state from the store: scans the WAL, truncates the
/// invalid tail in place (store.wal shrinks to the verified prefix),
/// starts from the snapshot when it decodes and validates under
/// `config.seed` (else from genesis), and replays the remaining records.
/// After installing the result, run Ledger::complete_pending_checkpoint
/// when stats.checkpoint_pending is set.
[[nodiscard]] Recovered recover(const Ledger::Config& config, Store& store);

struct CatchUpStats {
  bool ok = false;
  /// The peer snapshot carried a checkpoint certificate that validates.
  bool cert_ok = false;
  std::uint64_t snapshot_slot = 0;
  /// Slot records transferred beyond the snapshot cut.
  std::uint64_t tail_slots = 0;
  /// Total transfer cost in words (8-byte units of snapshot + tail bytes) —
  /// the number to compare against re-running consensus for the same range.
  std::uint64_t words_transferred = 0;
};

/// Catch-up result: the transferred state plus its cost.
struct CaughtUp {
  RestoredState state;
  KvState kv;
  CatchUpStats stats;
};

/// State sync from a peer: accepts the peer's snapshot only if its
/// checkpoint certificate validates under `config.seed`, then replays the
/// peer's WAL tail past the cut. No consensus instance runs. Returns
/// stats.ok == false (and no state) when the peer has no usable certified
/// snapshot — the caller falls back to full recovery/replay.
[[nodiscard]] CaughtUp catch_up(const Ledger::Config& config,
                                const Store& peer);

/// Directory persistence for `mewc_sim --wal-dir`: `wal.bin` +
/// `snapshot.bin`. Loading tolerates missing files (fresh replica);
/// returns nullopt only when the directory is unusable.
[[nodiscard]] std::optional<Store> load_store(const std::string& dir);
[[nodiscard]] bool save_store(const std::string& dir, const Store& store);

}  // namespace mewc::smr
