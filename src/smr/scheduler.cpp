#include "smr/scheduler.hpp"

#include "common/check.hpp"

namespace mewc::smr {

Scheduler::Scheduler(std::uint32_t workers, std::uint32_t queue_capacity)
    : queue_capacity_(queue_capacity) {
  MEWC_CHECK_MSG(workers >= 1, "scheduler needs at least one worker");
  MEWC_CHECK_MSG(queue_capacity >= 1, "scheduler needs a non-empty queue");
  threads_.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

Scheduler::~Scheduler() { shutdown(); }

void Scheduler::submit(Job job) {
  std::unique_lock<std::mutex> lock(mu_);
  MEWC_CHECK_MSG(!stopping_, "submit after shutdown");
  if (queue_.size() >= queue_capacity_) {
    ++stats_.backpressure_waits;
    queue_not_full_.wait(lock,
                         [this] { return queue_.size() < queue_capacity_; });
  }
  queue_.push_back(std::move(job));
  ++stats_.submitted;
  ++in_flight_;
  stats_.max_queue_depth = std::max<std::uint64_t>(stats_.max_queue_depth,
                                                   queue_.size());
  queue_not_empty_.notify_one();
}

void Scheduler::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void Scheduler::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_idle_.wait(lock, [this] { return in_flight_ == 0; });
    if (stopping_) return;
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

Scheduler::Stats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Scheduler::worker_loop(std::uint32_t worker) {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_not_empty_.wait(lock,
                            [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with an empty queue
      job = std::move(queue_.front());
      queue_.pop_front();
      queue_not_full_.notify_one();
    }
    job(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.executed;
      if (--in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace mewc::smr
