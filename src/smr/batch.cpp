#include "smr/batch.hpp"

#include "wire/frame.hpp"

namespace mewc::smr::batch {

std::vector<std::uint8_t> encode(std::span<const Command> commands) {
  MEWC_CHECK_MSG(commands.size() <= kMaxBatch, "batch exceeds kMaxBatch");
  wire::Writer w;
  w.u8(kMagic);
  w.u8(kVersion);
  w.u32(static_cast<std::uint32_t>(commands.size()));
  for (const Command& cmd : commands) w.u64(cmd.pack().raw);
  std::vector<std::uint8_t> blob;
  wire::append_frame(blob, w.take());
  return blob;
}

Value handle(std::span<const std::uint8_t> blob) {
  std::uint64_t h = wire::checksum(blob);
  // Steer clear of the two reserved words: ⊥ would mark the slot skipped
  // and "I don't know" is not a committable value.
  if (h >= Value::kIdkRaw) h -= 2;
  return Value{h};
}

std::optional<BatchView> BatchView::parse(std::span<const std::uint8_t> blob) {
  const auto frame = wire::read_frame(blob, 0);
  // Exactly one frame, nothing trailing: a batch blob is a unit.
  if (!frame || frame->frame_size != blob.size()) return std::nullopt;
  wire::Reader r(frame->body);
  if (r.u8() != kMagic) return std::nullopt;
  if (r.u8() != kVersion) return std::nullopt;
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxBatch) return std::nullopt;
  const auto words = r.take_bytes(count * 8);
  if (!r.done()) return std::nullopt;  // short or over-long body
  return BatchView(words, count);
}

Command BatchView::operator[](std::uint32_t i) const {
  MEWC_CHECK_MSG(i < count_, "batch index out of range");
  std::uint64_t raw = 0;
  const std::size_t base = std::size_t{i} * 8;
  for (int b = 0; b < 8; ++b) {
    raw |= std::uint64_t{words_[base + b]} << (8 * b);
  }
  return Command::unpack(Value{raw});
}

void apply(const BatchView& view, KvState& state) {
  for (const Command cmd : view) state.apply(cmd);
}

Resolved resolve(Value committed, std::span<const std::uint8_t> blob) {
  Resolved out;
  if (committed.is_bottom()) return out;  // skipped slot: nothing applies
  if (!blob.empty() && handle(blob) == committed) {
    out.batch = BatchView::parse(blob);
    if (out.batch) return out;
  }
  out.single = Command::unpack(committed);
  return out;
}

}  // namespace mewc::smr::batch
