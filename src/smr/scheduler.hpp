// Fixed-size worker pool with a bounded admission queue, built for the SMR
// engine: submit() applies backpressure (blocks) when the queue is full, so
// a slow or fallback-heavy instance bounds how far the pipeline can run
// ahead instead of letting the backlog grow without limit.
//
// Jobs receive the id of the worker executing them; the engine uses that to
// give every worker its own trusted-setup cache so nothing crypto-related is
// shared across threads. The scheduler itself makes no ordering promise —
// in-order delivery of results is the engine's reorder buffer's job.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mewc::smr {

class Scheduler {
 public:
  /// A unit of work; `worker` is in [0, workers()).
  using Job = std::function<void(std::uint32_t worker)>;

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t executed = 0;
    /// Largest queue depth observed at admission time.
    std::uint64_t max_queue_depth = 0;
    /// Number of submit() calls that had to block on a full queue.
    std::uint64_t backpressure_waits = 0;
  };

  Scheduler(std::uint32_t workers, std::uint32_t queue_capacity);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues `job`, blocking while the queue holds `queue_capacity` jobs.
  void submit(Job job);

  /// Blocks until every submitted job has finished executing. submit() may
  /// be called again afterwards.
  void drain();

  /// drain() + stop and join the workers. Idempotent; implied by ~Scheduler.
  void shutdown();

  [[nodiscard]] std::uint32_t workers() const {
    return static_cast<std::uint32_t>(threads_.size());
  }
  [[nodiscard]] Stats stats() const;

 private:
  void worker_loop(std::uint32_t worker);

  const std::uint32_t queue_capacity_;

  mutable std::mutex mu_;
  std::condition_variable queue_not_full_;
  std::condition_variable queue_not_empty_;
  std::condition_variable all_idle_;
  std::deque<Job> queue_;
  std::uint64_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;
  Stats stats_;

  std::vector<std::thread> threads_;
};

}  // namespace mewc::smr
