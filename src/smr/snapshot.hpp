// Snapshots of the durable ledger, cut at checkpoint-certified slots.
//
// The paper's Algorithm-5 checkpoint instances give us certified cut
// points for free: after a checkpoint is sealed, every correct replica
// agrees the log prefix up to `after_slot` matches `ledger_digest`. A
// snapshot taken there carries the full replayable ledger state, the kv
// application state, and the sealing CheckpointRecord as its certificate —
// which is what lets a restarted replica (or a lagging peer, via catch-up)
// accept the state without re-running any consensus (cf. VABA-style
// certified state transfer, arXiv:1811.01332).
//
// On disk a snapshot is one checksummed wire::frame whose body starts with
// a magic + version, so a torn snapshot write is detected exactly like a
// torn WAL record and recovery falls back to genesis + full WAL replay.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "smr/ledger.hpp"

namespace mewc::smr {

struct Snapshot {
  /// Cut point: the snapshot covers slots [0, after_slot).
  std::uint64_t after_slot = 0;
  /// Rolling ledger digest at the cut (must equal the certificate's).
  std::uint64_t ledger_digest = 0;
  std::uint64_t total_words = 0;
  std::uint32_t since_checkpoint = 0;
  bool healthy = true;

  /// Full slot/checkpoint history up to the cut (the ledger audits per-slot
  /// outcomes, so snapshots carry them; values are one word each).
  std::vector<SlotRecord> slots;
  std::vector<CheckpointRecord> checkpoints;

  /// The Algorithm-5 checkpoint that seals this cut.
  CheckpointRecord cert;

  /// Application state at the cut (kv map + its history-sensitive digest).
  std::map<std::uint32_t, std::uint64_t> kv_entries;
  std::uint64_t kv_digest = 0;

  /// True when the sealing certificate actually certifies this snapshot:
  /// accepted + agreed, and its cut/digest match the carried state.
  [[nodiscard]] bool certified() const;

  /// Internal consistency: the slot history replays to `ledger_digest`
  /// under `seed`, the cut matches the history length, and the certificate
  /// checks out. Catch-up runs this before trusting any peer snapshot.
  [[nodiscard]] bool valid(std::uint64_t seed) const;
};

/// Encodes the snapshot as one framed, checksummed byte blob.
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(const Snapshot& snap);

/// Decodes a snapshot blob; nullopt on any truncation, corruption, magic or
/// version mismatch, or non-canonical body.
[[nodiscard]] std::optional<Snapshot> decode_snapshot(
    std::span<const std::uint8_t> bytes);

}  // namespace mewc::smr
