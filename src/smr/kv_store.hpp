// A replicated key-value store on top of the smr::Ledger — the "state
// machine" in state-machine replication. Commands are packed into the
// protocol's one-word values (the paper's values come from a finite
// domain), committed through BB slots, and applied in ledger order by a
// deterministic transition function; any two replicas that applied the
// same log hold bit-identical state, which the state digest certifies.
#pragma once

#include <map>
#include <optional>
#include <span>

#include "smr/ledger.hpp"

namespace mewc::smr {

/// A one-word KV command: 4-bit opcode, 20-bit key, 40-bit argument.
struct Command {
  enum class Op : std::uint8_t {
    kNoop = 0,
    kPut = 1,     // key <- arg
    kAdd = 2,     // key <- key + arg (missing keys start at 0)
    kErase = 3,   // remove key
  };

  Op op = Op::kNoop;
  std::uint32_t key = 0;   // < 2^20
  std::uint64_t arg = 0;   // < 2^40

  [[nodiscard]] Value pack() const;
  /// Unpacks a committed value; malformed words decode to kNoop (a
  /// Byzantine proposer can only waste its own slot).
  [[nodiscard]] static Command unpack(Value v);

  [[nodiscard]] static Command put(std::uint32_t key, std::uint64_t arg) {
    return Command{Op::kPut, key, arg};
  }
  [[nodiscard]] static Command add(std::uint32_t key, std::uint64_t arg) {
    return Command{Op::kAdd, key, arg};
  }
  [[nodiscard]] static Command erase(std::uint32_t key) {
    return Command{Op::kErase, key, 0};
  }
};

/// Deterministic state: applies commands in order, digests its contents.
class KvState {
 public:
  void apply(const Command& cmd);

  [[nodiscard]] std::optional<std::uint64_t> get(std::uint32_t key) const;
  [[nodiscard]] std::size_t size() const { return map_.size(); }

  /// Order-insensitive-content, order-sensitive-history digest: two
  /// replicas match iff they applied the same command sequence.
  [[nodiscard]] std::uint64_t digest() const { return digest_; }

  /// Full contents, for snapshotting. The digest is history-sensitive, so a
  /// snapshot must carry both the entries and the digest to resume the
  /// chain mid-stream.
  [[nodiscard]] const std::map<std::uint32_t, std::uint64_t>& entries() const {
    return map_;
  }

  /// Reinstates snapshotted state: contents plus the digest the chain had
  /// reached when the snapshot was cut.
  void restore(std::map<std::uint32_t, std::uint64_t> entries,
               std::uint64_t digest) {
    map_ = std::move(entries);
    digest_ = digest;
  }

 private:
  std::map<std::uint32_t, std::uint64_t> map_;
  std::uint64_t digest_ = 0x6b76;  // "kv"
};

/// The replicated store: a Ledger plus one KvState per replica, applied
/// from each slot's agreed outcome. Skipped slots apply nothing.
class ReplicatedKvStore {
 public:
  explicit ReplicatedKvStore(Ledger::Config config)
      : ledger_(config), states_(config.n) {}

  /// Commits one command through the next BB slot (see Ledger::append).
  /// Returns true if the command landed (false: slot skipped).
  bool submit(const Command& cmd,
              const Ledger::AdversaryFactory& adversary = nullptr);

  /// Commits a whole batch through ONE BB slot (src/smr/batch.hpp): the
  /// slot agrees on the batch's one-word handle and every replica applies
  /// the full batch. Returns the number of commands applied — the batch
  /// size on success, 1 when a Byzantine proposer replaced the handle with
  /// some other committable word, 0 when the slot skipped.
  std::size_t submit_batch(std::span<const Command> commands,
                           const Ledger::AdversaryFactory& adversary = nullptr);

  [[nodiscard]] const Ledger& ledger() const { return ledger_; }
  [[nodiscard]] const KvState& replica(ProcessId p) const {
    return states_[p];
  }

  /// All replicas hold identical state.
  [[nodiscard]] bool consistent() const;

 private:
  Ledger ledger_;
  std::vector<KvState> states_;
};

}  // namespace mewc::smr
