// Write-ahead log for the durable ledger: one checksummed frame per event,
// appended in commit order (slot records interleaved with the checkpoint
// records they trigger). The byte stream is deterministic because commits
// are strictly in slot order regardless of engine scheduling.
//
// Record body = `u8 type | type-specific fields` (little-endian, via the
// wire primitives); each body is wrapped in a wire::frame
// (`u32 len | u64 checksum | body`), so a crash mid-append leaves a torn
// tail that scan() detects at the first bad length/checksum and recovery
// truncates. A partially-written record is never surfaced as a slot.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "smr/ledger.hpp"

namespace mewc::smr::wal {

enum class RecordType : std::uint8_t {
  kSlot = 1,
  kCheckpoint = 2,
  /// Out-of-band batch blob for an upcoming slot (src/smr/batch.hpp),
  /// appended immediately before that slot's kSlot record. Logs written
  /// before batching existed simply contain no kBatch records, so the
  /// format stays backward compatible.
  kBatch = 3,
};

/// One decoded WAL record plus where its frame starts in the log — the
/// offset is what lets recovery (and tests) truncate or corrupt the log at
/// exact record boundaries.
struct Record {
  RecordType type = RecordType::kSlot;
  SlotRecord slot;              // valid when type == kSlot
  CheckpointRecord checkpoint;  // valid when type == kCheckpoint
  std::uint64_t batch_slot = 0;          // valid when type == kBatch
  std::vector<std::uint8_t> batch;       // valid when type == kBatch
  std::size_t offset = 0;       // frame start within the log
};

/// Encodes one record body (no frame header).
[[nodiscard]] std::vector<std::uint8_t> encode_slot(const SlotRecord& rec);
[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint(
    const CheckpointRecord& rec);
[[nodiscard]] std::vector<std::uint8_t> encode_batch(
    std::uint64_t slot, std::span<const std::uint8_t> blob);

/// Appends one framed record to the log bytes.
void append(std::vector<std::uint8_t>& log, const SlotRecord& rec);
void append(std::vector<std::uint8_t>& log, const CheckpointRecord& rec);
void append_batch(std::vector<std::uint8_t>& log, std::uint64_t slot,
                  std::span<const std::uint8_t> blob);

struct ScanResult {
  std::vector<Record> records;
  /// Length of the valid prefix: every frame before this offset decoded
  /// and checksummed clean; recovery truncates the log here.
  std::size_t valid_bytes = 0;
  /// True when trailing bytes past valid_bytes were dropped (torn write,
  /// corruption, or trailing garbage).
  bool torn = false;
};

/// Walks the log from the start, decoding records until the first invalid
/// frame or malformed body. Never throws/aborts on hostile bytes: whatever
/// cannot be fully verified is simply not part of the valid prefix.
[[nodiscard]] ScanResult scan(std::span<const std::uint8_t> log);

}  // namespace mewc::smr::wal
