// State-machine replication over the paper's protocols: a replicated
// append-only log where each slot is one adaptive Byzantine Broadcast
// (rotating proposers) and periodic checkpoints are sealed with the binary
// strong BA of Algorithm 5.
//
// This is the workload the paper's introduction motivates ("BA is a key
// component in many distributed systems ... used at larger scales"): most
// slots are failure-free, and the adaptive protocols make those slots cost
// O(n) instead of the worst case. The ledger records per-slot outcomes,
// costs, and rolling digests so applications (and tests) can audit
// consistency end to end.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "ba/harness.hpp"

namespace mewc::smr {

/// Outcome of one log slot (one BB instance).
struct SlotRecord {
  std::uint64_t slot = 0;
  ProcessId proposer = kNoProcess;
  Value value = kBottom;  // the committed entry; kBottom == slot skipped
  bool skipped = false;   // Byzantine/silent proposer yielded ⊥
  bool agreement = false;
  bool fallback = false;
  std::uint64_t words = 0;
};

/// Outcome of one checkpoint vote (one Algorithm 5 instance).
struct CheckpointRecord {
  std::uint64_t after_slot = 0;
  std::uint64_t ledger_digest = 0;
  bool accepted = false;
  bool agreement = false;
  std::uint64_t words = 0;
};

class Ledger;

/// Durability callbacks, invoked synchronously in commit order while the
/// ledger already reflects the event. on_commit fires once per committed
/// slot (before any checkpoint that slot triggers); on_checkpoint fires
/// once per sealed checkpoint. Implementations append WAL records and cut
/// snapshots (src/smr/recovery.hpp); because commits are strictly in order
/// the durable byte stream is deterministic regardless of scheduling.
class DurabilityHook {
 public:
  virtual ~DurabilityHook() = default;
  /// `batch` is the blob attached to this slot via Ledger::attach_payload
  /// (empty when the slot carries a plain one-word command). The span
  /// borrows the ledger's payload table and is only valid for the duration
  /// of the call; implementations verify batch::handle(batch) == rec.value
  /// before trusting it.
  virtual void on_commit(const SlotRecord& rec, const Ledger& ledger,
                         std::span<const std::uint8_t> batch) = 0;
  virtual void on_checkpoint(const CheckpointRecord& rec,
                             const Ledger& ledger) = 0;
};

/// A ledger's complete replayable state, as reconstructed by recovery or
/// received through catch-up. Install into a fresh Ledger/Engine to resume
/// exactly where the durable state ends.
struct RestoredState {
  std::vector<SlotRecord> slots;
  std::vector<CheckpointRecord> checkpoints;
  std::uint64_t total_words = 0;
  std::uint32_t since_checkpoint = 0;
  bool healthy = true;
};

class Ledger {
 public:
  struct Config {
    std::uint32_t n = 0;
    std::uint32_t t = 0;
    ThresholdBackend backend = ThresholdBackend::kSim;
    std::uint64_t seed = 0x5e7u;
    /// Seal a checkpoint after every k committed slots (0 = never).
    std::uint32_t checkpoint_every = 0;
    /// Instance-nonce base; every slot/checkpoint gets a distinct nonce so
    /// no signature is replayable across instances.
    std::uint64_t base_instance = 1000;
    /// Which executor drives simulated instances (prepare_spec copies it
    /// into every slot/checkpoint RunSpec).
    ExecutorKind executor = ExecutorKind::kLockstep;
    /// Optional durability sink (not owned; must outlive the ledger).
    DurabilityHook* durability = nullptr;
    /// Replaces the built-in simulated strong-BA when sealing checkpoints.
    /// `mewc_node` installs a runner that executes the checkpoint instance
    /// across the real cluster; the spec it receives is the same one the
    /// simulation would use (odd instance-nonce lane), so the durable
    /// record stream is shaped identically either way.
    std::function<harness::RunReport(const harness::RunSpec&,
                                     const harness::RunInputs&)>
        checkpoint_runner;
  };

  /// Builds a per-slot adversary. An empty function means no corruption.
  using AdversaryFactory = std::function<std::unique_ptr<Adversary>(
      std::uint64_t slot, ProcessId proposer)>;

  explicit Ledger(Config config);

  [[nodiscard]] const Config& config() const { return config_; }

  /// The proposer the rotation assigns to the next slot.
  [[nodiscard]] ProcessId next_proposer() const;

  /// Runs one slot: the rotation proposer broadcasts `v` through BB. If the
  /// slot index hits the checkpoint cadence, a checkpoint vote follows.
  /// Equivalent to prepare_spec + driver run + commit; kept as the
  /// single-threaded convenience path.
  const SlotRecord& append(Value v,
                           const AdversaryFactory& adversary = nullptr);

  /// The proposer the rotation assigns to slot `slot`.
  [[nodiscard]] ProcessId proposer_of(std::uint64_t slot) const;

  /// Attaches an out-of-band batch blob to slot `slot` ahead of its commit
  /// (see src/smr/batch.hpp: consensus agrees on the blob's one-word
  /// handle; the blob itself is disseminated beside the instance). The
  /// blob is handed to the durability hook when the slot commits and
  /// dropped afterwards; attaching to an already-committed slot is an
  /// error. Thread-safety follows commit(): the engine serializes both
  /// under its commit lock.
  void attach_payload(std::uint64_t slot, std::vector<std::uint8_t> blob);

  /// The blob attached to slot `slot` (empty span when none) — only
  /// meaningful between attach_payload and the slot's commit.
  [[nodiscard]] std::span<const std::uint8_t> payload_of(
      std::uint64_t slot) const;

  /// The RunSpec for slot `slot`'s BB instance (distinct instance nonce per
  /// slot; checkpoints use the odd nonce lane). Pure: safe to call from any
  /// thread for any future slot, which is what lets the SMR engine run many
  /// slots' instances concurrently before committing them in order.
  [[nodiscard]] harness::RunSpec prepare_spec(std::uint64_t slot) const;

  /// Commits the outcome of slot `slot`'s BB instance. Slots must be
  /// committed strictly in order (`slot == slots().size()`); the checkpoint
  /// cadence runs here, serially, so the ledger digest and checkpoint
  /// stream are identical no matter how the instances were scheduled.
  const SlotRecord& commit(std::uint64_t slot, const harness::RunReport& report,
                           const AdversaryFactory& adversary = nullptr);

  [[nodiscard]] const std::vector<SlotRecord>& slots() const { return slots_; }
  [[nodiscard]] const std::vector<CheckpointRecord>& checkpoints() const {
    return checkpoints_;
  }

  /// Committed (non-skipped) entries, in order.
  [[nodiscard]] std::vector<Value> committed() const;

  /// Rolling digest over all slot outcomes (skips included: a skipped slot
  /// is itself agreed state).
  [[nodiscard]] std::uint64_t ledger_digest() const { return digest_; }

  [[nodiscard]] std::uint64_t total_words() const { return total_words_; }

  /// True while every slot and checkpoint reached agreement and every
  /// checkpoint was accepted.
  [[nodiscard]] bool healthy() const { return healthy_; }

  /// Non-skipped commits since the last sealed checkpoint. Recovery uses
  /// this to detect a checkpoint that was due but whose record never made
  /// it to the WAL (crash between the slot append and the checkpoint).
  [[nodiscard]] std::uint32_t since_checkpoint() const {
    return since_checkpoint_;
  }

  /// The rolling digest a ledger with this seed holds after committing
  /// exactly `slots` — how recovery and catch-up validate that a slot
  /// history is internally consistent before trusting it.
  [[nodiscard]] static std::uint64_t replay_digest(
      std::uint64_t seed, const std::vector<SlotRecord>& slots);

  /// Snapshot of the replayable state (for durability sinks).
  [[nodiscard]] RestoredState export_state() const;

  /// Installs recovered/caught-up state into a fresh ledger (no slots
  /// committed yet). Appends resume at slot `state.slots.size()` with the
  /// digest recomputed from the history; the durability hook does NOT fire
  /// for installed slots (they are already durable).
  void install(RestoredState state);

  /// Runs the checkpoint BA that was due after the last committed slot but
  /// is missing from durable state (since_checkpoint() == cadence after a
  /// crash). The instance nonce depends only on the slot count, so the
  /// sealed record is identical to what the uninterrupted run produced.
  /// No-op when no checkpoint is pending.
  void complete_pending_checkpoint(const AdversaryFactory& adversary = nullptr);

 private:
  void run_checkpoint(const AdversaryFactory& adversary);

  Config config_;
  /// Batch blobs awaiting their slot's commit, keyed by slot.
  std::map<std::uint64_t, std::vector<std::uint8_t>> payloads_;
  std::vector<SlotRecord> slots_;
  std::vector<CheckpointRecord> checkpoints_;
  std::uint64_t digest_;
  std::uint64_t total_words_ = 0;
  std::uint32_t since_checkpoint_ = 0;
  bool healthy_ = true;
};

}  // namespace mewc::smr
