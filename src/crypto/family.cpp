#include "crypto/family.hpp"

#include "crypto/agg_threshold.hpp"
#include "crypto/shamir.hpp"

namespace mewc {

ThresholdFamily::ThresholdFamily(std::uint32_t n, std::uint32_t t,
                                 ThresholdBackend backend, std::uint64_t seed)
    : n_(n), t_(t), backend_(backend), pki_(n, seed, backend) {
  // The paper presents its protocols at the optimal resilience n = 2t+1 and
  // notes (Section 8) that BB and weak BA carry over to any n = αt+β with
  // α > 1, β > 0 without losing the quorum intersection property; we
  // therefore accept any n >= 2t+1 (see tests/ba/resilience_test.cpp).
  MEWC_CHECK_MSG(n >= 2 * t + 1, "model requires n >= 2t + 1");
  auto make = [&](std::uint32_t k) -> std::unique_ptr<ThresholdScheme> {
    switch (backend) {
      case ThresholdBackend::kShamir:
        return std::make_unique<ShamirThreshold>(k, n, pki_.master_seed());
      case ThresholdBackend::kReal:
        return std::make_unique<RealThreshold>(k, n, pki_.master_seed());
      case ThresholdBackend::kSim:
        break;
    }
    return std::make_unique<SimThreshold>(k, n, pki_.master_seed());
  };
  for (std::uint32_t k : {t + 1, commit_quorum(n, t), n}) {
    if (!schemes_.contains(k)) schemes_.emplace(k, make(k));
  }
}

const ThresholdScheme& ThresholdFamily::scheme(std::uint32_t k) const {
  auto it = schemes_.find(k);
  MEWC_CHECK_MSG(it != schemes_.end(), "threshold not provisioned at setup");
  return *it->second;
}

KeyBundle ThresholdFamily::issue_bundle(ProcessId pid) const {
  KeyBundle bundle;
  bundle.key.emplace(pki_.issue_key(pid));
  for (const auto& [k, scheme] : schemes_) {
    bundle.shares.emplace(k, scheme->issue_share(pid));
  }
  return bundle;
}

CryptoVerifyStats ThresholdFamily::crypto_verify_stats() const {
  CryptoVerifyStats total = pki_.crypto_verify_stats();
  if (backend_ == ThresholdBackend::kReal) {
    for (const auto& [k, scheme] : schemes_) {
      total += static_cast<const RealThreshold*>(scheme.get())->verify_stats();
    }
  }
  return total;
}

void ThresholdFamily::reset_crypto_verify_stats() const {
  pki_.reset_crypto_verify_stats();
  if (backend_ == ThresholdBackend::kReal) {
    for (const auto& [k, scheme] : schemes_) {
      static_cast<const RealThreshold*>(scheme.get())->reset_verify_stats();
    }
  }
}

}  // namespace mewc
