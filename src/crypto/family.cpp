#include "crypto/family.hpp"

#include "crypto/shamir.hpp"

namespace mewc {

ThresholdFamily::ThresholdFamily(std::uint32_t n, std::uint32_t t,
                                 ThresholdBackend backend, std::uint64_t seed)
    : n_(n), t_(t), pki_(n, seed) {
  // The paper presents its protocols at the optimal resilience n = 2t+1 and
  // notes (Section 8) that BB and weak BA carry over to any n = αt+β with
  // α > 1, β > 0 without losing the quorum intersection property; we
  // therefore accept any n >= 2t+1 (see tests/ba/resilience_test.cpp).
  MEWC_CHECK_MSG(n >= 2 * t + 1, "model requires n >= 2t + 1");
  auto make = [&](std::uint32_t k) -> std::unique_ptr<ThresholdScheme> {
    if (backend == ThresholdBackend::kShamir) {
      return std::make_unique<ShamirThreshold>(k, n, pki_.master_seed());
    }
    return std::make_unique<SimThreshold>(k, n, pki_.master_seed());
  };
  for (std::uint32_t k : {t + 1, commit_quorum(n, t), n}) {
    if (!schemes_.contains(k)) schemes_.emplace(k, make(k));
  }
}

const ThresholdScheme& ThresholdFamily::scheme(std::uint32_t k) const {
  auto it = schemes_.find(k);
  MEWC_CHECK_MSG(it != schemes_.end(), "threshold not provisioned at setup");
  return *it->second;
}

KeyBundle ThresholdFamily::issue_bundle(ProcessId pid) const {
  KeyBundle bundle;
  bundle.key.emplace(pki_.issue_key(pid));
  for (const auto& [k, scheme] : schemes_) {
    bundle.shares.emplace(k, scheme->issue_share(pid));
  }
  return bundle;
}

}  // namespace mewc
