#include "crypto/keys.hpp"

#include "common/check.hpp"
#include "common/hash.hpp"

namespace mewc {

Pki::Pki(std::uint32_t n, std::uint64_t seed)
    : master_seed_(mix64(seed ^ 0xc0ffee)) {
  MEWC_CHECK_MSG(n >= 1, "PKI needs at least one process");
  secrets_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    secrets_.push_back(mix64(master_seed_ ^ mix64(i + 1)));
  }
  per_signer_issued_.assign(n, 0);
}

PrivateKey Pki::issue_key(ProcessId pid) const {
  MEWC_CHECK(pid < secrets_.size());
  return PrivateKey(this, pid);
}

std::uint64_t Pki::mac(ProcessId signer, Digest d) const {
  MEWC_CHECK(signer < secrets_.size());
  return hash_combine(secrets_[signer], d.bits);
}

bool Pki::verify(const Signature& sig) const {
  if (sig.signer >= secrets_.size()) return false;
  return sig.tag == mac(sig.signer, sig.digest);
}

bool Pki::verify_mac_xor(Digest d, std::span<const ProcessId> signers,
                         std::uint64_t tag) const {
  std::uint64_t expected = 0;
  for (ProcessId p : signers) {
    if (p >= secrets_.size()) return false;
    expected ^= mac(p, d);
  }
  return expected == tag;
}

void Pki::reset_signature_counters() {
  signatures_issued_ = 0;
  per_signer_issued_.assign(per_signer_issued_.size(), 0);
}

Signature PrivateKey::sign(Digest d) const {
  Signature sig;
  sig.signer = owner_;
  sig.digest = d;
  sig.tag = pki_->mac(owner_, d);
  ++pki_->signatures_issued_;
  ++pki_->per_signer_issued_[owner_];
  return sig;
}

}  // namespace mewc
