#include "crypto/keys.hpp"

#include "common/check.hpp"
#include "common/hash.hpp"

namespace mewc {

namespace {

constexpr std::size_t kVerifyMemoBound = 1u << 16;

/// Message point for individual BLS signatures; the threshold schemes hash
/// under "mewc.bls.threshold", so the domains never collide.
[[nodiscard]] rc::Point pki_message_point(Digest d) {
  return bls_message_point("mewc.bls", d.bits);
}

/// The byte string a proof of possession signs: the compressed BLS public
/// key under a fixed domain prefix.
[[nodiscard]] std::vector<std::uint8_t> pop_message(std::uint64_t pk_enc) {
  std::vector<std::uint8_t> msg;
  msg.reserve(16);
  for (char c : {'m', 'e', 'w', 'c', '.', 'p', 'o', 'p'}) {
    msg.push_back(static_cast<std::uint8_t>(c));
  }
  for (int i = 0; i < 8; ++i) {
    msg.push_back(static_cast<std::uint8_t>(pk_enc >> (8 * i)));
  }
  return msg;
}

}  // namespace

Pki::Pki(std::uint32_t n, std::uint64_t seed, ThresholdBackend backend)
    : backend_(backend), master_seed_(mix64(seed ^ 0xc0ffee)) {
  MEWC_CHECK_MSG(n >= 1, "PKI needs at least one process");
  secrets_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    secrets_.push_back(mix64(master_seed_ ^ mix64(i + 1)));
  }
  per_signer_issued_.assign(n, 0);

  if (backend_ == ThresholdBackend::kReal) {
    bls_sks_.reserve(n);
    bls_pks_.reserve(n);
    bls_pk_encs_.reserve(n);
    pop_keys_.reserve(n);
    pops_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint64_t sk = 0;
      for (std::uint64_t ctr = 0; sk == 0; ++ctr) {
        sk = rc::q_reduce(hash_combine(secrets_[i] ^ 0xb125ULL, ctr));
      }
      bls_sks_.push_back(sk);
      bls_pks_.push_back(rc::scalar_mul(sk, rc::kG));
      bls_pk_encs_.push_back(rc::compress(bls_pks_.back()));
      // Certify the BLS key with a Schnorr proof of possession: nobody can
      // register a key function of other parties' keys (rogue-key attack)
      // without knowing its discrete log.
      pop_keys_.push_back(ed_keygen(secrets_[i] ^ 0xed90bULL));
      pops_.push_back(ed_sign(pop_keys_.back(), pop_message(bls_pk_encs_[i])));
      MEWC_CHECK_MSG(verify_pop(i, bls_pk_encs_[i], pops_[i]),
                     "setup produced an invalid proof of possession");
    }
  }
}

PrivateKey Pki::issue_key(ProcessId pid) const {
  MEWC_CHECK(pid < secrets_.size());
  return PrivateKey(this, pid);
}

std::uint64_t Pki::mac(ProcessId signer, Digest d) const {
  MEWC_CHECK(signer < secrets_.size());
  return hash_combine(secrets_[signer], d.bits);
}

std::uint64_t Pki::sign_tag(ProcessId signer, Digest d) const {
  if (backend_ == ThresholdBackend::kReal) {
    MEWC_CHECK(signer < bls_sks_.size());
    return bls_sign_at(bls_sks_[signer], pki_message_point(d));
  }
  return mac(signer, d);
}

bool Pki::verify(const Signature& sig) const {
  if (sig.signer >= secrets_.size()) return false;
  if (backend_ != ThresholdBackend::kReal) {
    return sig.tag == mac(sig.signer, sig.digest);
  }
  const auto key = std::make_tuple(sig.signer, sig.digest.bits, sig.tag);
  if (const auto it = verify_memo_.find(key); it != verify_memo_.end()) {
    ++crypto_stats_.memo_hits;
    return it->second;
  }
  const bool ok = bls_verify_at(bls_pks_[sig.signer],
                                pki_message_point(sig.digest), sig.tag,
                                &crypto_stats_);
  if (verify_memo_.size() >= kVerifyMemoBound) verify_memo_.clear();
  verify_memo_.emplace(key, ok);
  return ok;
}

bool Pki::verify_mac_xor(Digest d, std::span<const ProcessId> signers,
                         std::uint64_t tag) const {
  std::uint64_t expected = 0;
  for (ProcessId p : signers) {
    if (p >= secrets_.size()) return false;
    expected ^= mac(p, d);
  }
  return expected == tag;
}

bool Pki::verify_aggregate(Digest d, std::span<const ProcessId> signers,
                           std::uint64_t tag) const {
  if (backend_ != ThresholdBackend::kReal) {
    return verify_mac_xor(d, signers, tag);
  }
  // One pairing pair for the whole certificate: e(sigma, G) == e(H(d), sum
  // of the claimed signers' public keys). Sound because every key in the
  // universe carried a proof of possession at setup.
  rc::Point pk_sum;  // infinity
  for (ProcessId p : signers) {
    if (p >= bls_pks_.size()) return false;
    pk_sum = rc::point_add(pk_sum, bls_pks_[p]);
  }
  rc::Point sigma;
  if (!rc::decompress(tag, &sigma)) return false;
  if (!rc::in_subgroup(sigma)) return false;
  crypto_stats_.pairings += 2;
  return rc::pairing(sigma, rc::kG) == rc::pairing(pki_message_point(d), pk_sum);
}

std::uint64_t Pki::aggregate_fold(std::uint64_t agg_tag,
                                  std::uint64_t sig_tag) const {
  if (backend_ != ThresholdBackend::kReal) return agg_tag ^ sig_tag;
  rc::Point a;
  rc::Point b;
  if (!rc::decompress(agg_tag, &a) || !rc::decompress(sig_tag, &b)) {
    return rc::kBadEncoding;  // poisoned: can never verify, never traps
  }
  return rc::compress(rc::point_add(a, b));
}

std::uint64_t Pki::bls_pk_enc(ProcessId pid) const {
  MEWC_CHECK_MSG(backend_ == ThresholdBackend::kReal,
                 "BLS keys exist only under the real backend");
  MEWC_CHECK(pid < bls_pk_encs_.size());
  return bls_pk_encs_[pid];
}

const EdSig& Pki::pop_of(ProcessId pid) const {
  MEWC_CHECK_MSG(backend_ == ThresholdBackend::kReal,
                 "proofs of possession exist only under the real backend");
  MEWC_CHECK(pid < pops_.size());
  return pops_[pid];
}

bool Pki::verify_pop(ProcessId pid, std::uint64_t pk_enc,
                     const EdSig& pop) const {
  if (backend_ != ThresholdBackend::kReal) return false;
  if (pid >= pop_keys_.size()) return false;
  const std::vector<std::uint8_t> msg = pop_message(pk_enc);
  return ed_verify(pop_keys_[pid].pk_enc, msg, pop);
}

void Pki::reset_signature_counters() {
  signatures_issued_ = 0;
  per_signer_issued_.assign(per_signer_issued_.size(), 0);
}

Signature PrivateKey::sign(Digest d) const {
  Signature sig;
  sig.signer = owner_;
  sig.digest = d;
  sig.tag = pki_->sign_tag(owner_, d);
  ++pki_->signatures_issued_;
  ++pki_->per_signer_issued_[owner_];
  return sig;
}

}  // namespace mewc
