// Ed25519-style deterministic Schnorr signatures over the real curve
// (crypto/realcurve.hpp), following the RFC 8032 shape at 61-bit scale:
// derived nonce (no randomness at signing time), the commitment point and
// public key bound into the challenge, and strict verification — a
// non-canonical R encoding or s >= q is rejected outright, so signatures are
// non-malleable (flipping to s' = s + q or re-encoding R cannot yield a
// second valid encoding of the same signature).
//
// In the real backend these certify the BLS public keys at trusted setup
// (proofs of possession, the standard rogue-key defense) and anchor the
// known-answer vectors in tests/crypto/golden/.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/realcurve.hpp"

namespace mewc {

struct EdSig {
  std::uint64_t r_enc = 0;  // compressed commitment point R
  std::uint64_t s = 0;      // response scalar, canonical in [0, q)
};

struct EdKeyPair {
  std::uint64_t sk = 0;      // secret scalar in [1, q)
  std::uint64_t pk_enc = 0;  // compressed public key sk * G
};

/// Deterministically derives a key pair from a seed (the trusted-setup
/// dealer's per-process entropy).
[[nodiscard]] EdKeyPair ed_keygen(std::uint64_t seed);

/// Signs a byte string. Deterministic: the nonce is a hash of the secret key
/// and the message, so the same (key, message) always yields the same bytes.
[[nodiscard]] EdSig ed_sign(const EdKeyPair& kp,
                            std::span<const std::uint8_t> msg);

/// Strict verification: decodes R and pk canonically, rejects s >= q, and
/// checks s * G == R + c * pk with c the bound challenge.
[[nodiscard]] bool ed_verify(std::uint64_t pk_enc,
                             std::span<const std::uint8_t> msg,
                             const EdSig& sig);

}  // namespace mewc
