// Arithmetic in GF(p) for p = 2^61 - 1 (a Mersenne prime), used by the
// Shamir-based threshold backend. All values are canonical in [0, p).
#pragma once

#include <cstdint>

#include "common/check.hpp"

namespace mewc::fp {

inline constexpr std::uint64_t kP = (1ULL << 61) - 1;

[[nodiscard]] constexpr std::uint64_t reduce(std::uint64_t x) {
  // For inputs < 2^62: fold the high bits once, then a conditional subtract.
  x = (x & kP) + (x >> 61);
  if (x >= kP) x -= kP;
  return x;
}

[[nodiscard]] constexpr std::uint64_t add(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a + b;  // < 2^62, safe
  if (s >= kP) s -= kP;
  return s;
}

[[nodiscard]] constexpr std::uint64_t sub(std::uint64_t a, std::uint64_t b) {
  return a >= b ? a - b : a + kP - b;
}

[[nodiscard]] constexpr std::uint64_t mul(std::uint64_t a, std::uint64_t b) {
  const unsigned __int128 prod =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  // prod < p^2 < 2^122. Mersenne reduction: low 61 bits + high bits.
  const std::uint64_t lo = static_cast<std::uint64_t>(prod) & kP;
  const std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
  return reduce(lo + reduce(hi));
}

[[nodiscard]] constexpr std::uint64_t pow(std::uint64_t base,
                                          std::uint64_t exp) {
  std::uint64_t acc = 1;
  std::uint64_t cur = reduce(base);
  while (exp != 0) {
    if (exp & 1) acc = mul(acc, cur);
    cur = mul(cur, cur);
    exp >>= 1;
  }
  return acc;
}

/// Multiplicative inverse via Fermat's little theorem. x must be nonzero.
[[nodiscard]] constexpr std::uint64_t inv(std::uint64_t x) {
  MEWC_CHECK_MSG(reduce(x) != 0, "no inverse of zero");
  return pow(x, kP - 2);
}

/// Maps an arbitrary 64-bit hash into the field, never producing zero (zero
/// would make every share-signature trivially zero).
[[nodiscard]] constexpr std::uint64_t hash_point(std::uint64_t h) {
  const std::uint64_t r = reduce(h);
  return r == 0 ? 1 : r;
}

}  // namespace mewc::fp
