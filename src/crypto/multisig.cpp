#include "crypto/multisig.hpp"

namespace mewc {

AggSignature aggregate_start(std::uint32_t n, const Signature& sig) {
  AggSignature agg;
  agg.digest = sig.digest;
  agg.signers = SignerSet(n);
  agg.signers.insert(sig.signer);
  agg.tag = sig.tag;
  return agg;
}

bool aggregate_add(AggSignature& agg, const Signature& sig) {
  if (sig.digest != agg.digest) return false;
  if (!agg.signers.insert(sig.signer)) return false;
  agg.tag ^= sig.tag;
  return true;
}

bool aggregate_verify(const Pki& pki, const AggSignature& agg) {
  const auto members = agg.signers.members();
  return pki.verify_mac_xor(agg.digest, members, agg.tag);
}

}  // namespace mewc
