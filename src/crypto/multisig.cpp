#include "crypto/multisig.hpp"

namespace mewc {

AggSignature aggregate_start(const Pki& pki, const Signature& sig) {
  AggSignature agg;
  agg.digest = sig.digest;
  agg.signers = SignerSet(pki.n());
  agg.signers.insert(sig.signer);
  agg.tag = sig.tag;
  return agg;
}

bool aggregate_add(const Pki& pki, AggSignature& agg, const Signature& sig) {
  if (sig.digest != agg.digest) return false;
  if (!agg.signers.insert(sig.signer)) return false;
  agg.tag = pki.aggregate_fold(agg.tag, sig.tag);
  return true;
}

bool aggregate_verify(const Pki& pki, const AggSignature& agg) {
  const auto members = agg.signers.members();
  return pki.verify_aggregate(agg.digest, members, agg.tag);
}

}  // namespace mewc
