// BLS-style aggregated multisignatures: any set of individual signatures on
// the same digest compresses into one aggregate tag plus a signer bitmap.
//
// Used by the Dolev-Strong fallback (DESIGN.md SUB-1) to keep signature
// chains at one tag regardless of chain length; the signer bitmap is metered
// separately. The fold dispatches on the Pki's backend: for the ideal
// backends the aggregate tag is the XOR of the individual MAC tags (which
// the adversary cannot produce for a set containing a correct process
// without that process's handle); for ThresholdBackend::kReal it is genuine
// BLS point addition, verified by one pairing pair against the summed
// public keys — whose proofs of possession at setup close the rogue-key
// attack.
#pragma once

#include <span>

#include "crypto/keys.hpp"
#include "crypto/signer_set.hpp"

namespace mewc {

struct AggSignature {
  Digest digest;
  SignerSet signers;
  std::uint64_t tag = 0;

  /// Wire size in words: one for the tag plus the signer bitmap.
  [[nodiscard]] std::size_t words() const { return 1 + signers.words(); }
};

/// Starts an aggregate from a single signature.
[[nodiscard]] AggSignature aggregate_start(const Pki& pki,
                                           const Signature& sig);

/// Folds one more signature into the aggregate. Returns false (and leaves
/// the aggregate unchanged) if the digest mismatches or the signer is
/// already present.
bool aggregate_add(const Pki& pki, AggSignature& agg, const Signature& sig);

/// Verifies the aggregate against the PKI (backend-dispatching: XOR-MAC
/// recomputation or one aggregate pairing check).
[[nodiscard]] bool aggregate_verify(const Pki& pki, const AggSignature& agg);

}  // namespace mewc
