// BLS-style aggregated multisignatures: any set of individual signatures on
// the same digest compresses into one aggregate tag plus a signer bitmap.
//
// Used by the Dolev-Strong fallback (DESIGN.md SUB-1) to keep signature
// chains at one tag regardless of chain length; the signer bitmap is metered
// separately. The aggregate tag is the XOR of the individual MAC tags, which
// the adversary cannot produce for a set containing a correct process
// without that process's handle (XOR of unknown independent MACs).
#pragma once

#include <span>

#include "crypto/keys.hpp"
#include "crypto/signer_set.hpp"

namespace mewc {

struct AggSignature {
  Digest digest;
  SignerSet signers;
  std::uint64_t tag = 0;

  /// Wire size in words: one for the tag plus the signer bitmap.
  [[nodiscard]] std::size_t words() const { return 1 + signers.words(); }
};

/// Starts an aggregate from a single signature.
[[nodiscard]] AggSignature aggregate_start(std::uint32_t n,
                                           const Signature& sig);

/// Folds one more signature into the aggregate. Returns false (and leaves
/// the aggregate unchanged) if the digest mismatches or the signer is
/// already present.
bool aggregate_add(AggSignature& agg, const Signature& sig);

/// Verifies the aggregate against the PKI: every claimed signer's MAC on the
/// digest must XOR to the tag.
[[nodiscard]] bool aggregate_verify(const Pki& pki, const AggSignature& agg);

}  // namespace mewc
