// Shamir-based (k, n)-threshold signatures over GF(2^61 - 1).
//
// Trusted setup deals shares s_i = P(i+1) of a secret s = P(0), where P is a
// random degree-(k-1) polynomial. A partial signature on digest d is
// sigma_i = s_i * H(d); combining any k partials with Lagrange coefficients
// evaluated at zero reconstructs s * H(d), the group signature. This is the
// algebra of BLS threshold signatures with the pairing replaced by a dealer
// trapdoor for verification (DESIGN.md SUB-2): the verifier recomputes
// s * H(d), which is sound inside the simulation because the adversary API
// never exposes s or uncorrupted shares.
#pragma once

#include "crypto/threshold.hpp"

namespace mewc {

class ShamirThreshold final : public ThresholdScheme {
 public:
  ShamirThreshold(std::uint32_t k, std::uint32_t n, std::uint64_t seed);

  [[nodiscard]] bool verify_partial(const PartialSig& p) const override;
  [[nodiscard]] bool verify(const ThresholdSig& sig) const override;

  /// Exposed for tests: the share point x_i = i + 1 of process i.
  [[nodiscard]] static std::uint64_t x_coord(ProcessId pid) { return pid + 1; }

 protected:
  [[nodiscard]] PartialSig make_partial(ProcessId signer,
                                        Digest d) const override;
  [[nodiscard]] std::uint64_t combine_tag(
      std::span<const PartialSig> chosen) const override;

 private:
  [[nodiscard]] std::uint64_t message_point(Digest d) const;

  std::uint64_t secret_ = 0;             // P(0), the dealer trapdoor
  std::vector<std::uint64_t> shares_;    // s_i = P(i + 1)
};

}  // namespace mewc
