// Compact set of process identities attached to aggregated signatures.
//
// Cost model: the bitmap costs ceil(n/64) machine words on the wire. For the
// paper's asymptotics a signer bitmap is o(1) words for any realistic n, but
// we meter it honestly (see net/message.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace mewc {

class SignerSet {
 public:
  SignerSet() = default;
  explicit SignerSet(std::uint32_t n) : n_(n), bits_((n + 63) / 64, 0) {}

  [[nodiscard]] std::uint32_t universe() const { return n_; }

  [[nodiscard]] bool contains(ProcessId pid) const {
    if (pid >= n_) return false;
    return (bits_[pid / 64] >> (pid % 64)) & 1u;
  }

  /// Returns false if pid was already present.
  bool insert(ProcessId pid) {
    MEWC_CHECK(pid < n_);
    const std::uint64_t mask = 1ULL << (pid % 64);
    if (bits_[pid / 64] & mask) return false;
    bits_[pid / 64] |= mask;
    ++count_;
    return true;
  }

  [[nodiscard]] std::uint32_t count() const { return count_; }

  [[nodiscard]] std::vector<ProcessId> members() const {
    std::vector<ProcessId> out;
    out.reserve(count_);
    for (ProcessId p = 0; p < n_; ++p) {
      if (contains(p)) out.push_back(p);
    }
    return out;
  }

  /// Wire size in words.
  [[nodiscard]] std::size_t words() const { return bits_.size(); }

  friend bool operator==(const SignerSet& a, const SignerSet& b) {
    return a.n_ == b.n_ && a.bits_ == b.bits_;
  }

 private:
  std::uint32_t n_ = 0;
  std::uint32_t count_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace mewc
