// (k, n)-threshold signatures (paper Section 2): k unique partial signatures
// on the same message batch into one threshold signature of constant size —
// one word. The paper treats the scheme as ideal; we provide two backends
// behind a common interface (DESIGN.md SUB-2):
//
//  * SimThreshold  — registry-enforced ideal scheme (this file).
//  * ShamirThreshold — real share issuance + Lagrange combination over a
//    61-bit prime field (crypto/shamir.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "crypto/digest.hpp"

namespace mewc {

/// One process's share-signature on a digest. One word on the wire.
struct PartialSig {
  ProcessId signer = kNoProcess;
  Digest digest;
  std::uint32_t k = 0;  // threshold of the scheme that produced it
  std::uint64_t tag = 0;
};

/// A combined threshold signature: constant size (one word) regardless of k.
struct ThresholdSig {
  Digest digest;
  std::uint32_t k = 0;
  std::uint64_t tag = 0;

  [[nodiscard]] std::size_t words() const { return 1; }

  friend bool operator==(const ThresholdSig& a, const ThresholdSig& b) {
    return a.digest == b.digest && a.k == b.k && a.tag == b.tag;
  }
};

class ThresholdScheme;

/// Share-signing capability of one process under one scheme. Move-only, like
/// PrivateKey: custody of the handle is custody of the share.
class ShareKey {
 public:
  ShareKey(ShareKey&&) noexcept = default;
  ShareKey& operator=(ShareKey&&) noexcept = default;
  ShareKey(const ShareKey&) = delete;
  ShareKey& operator=(const ShareKey&) = delete;

  [[nodiscard]] ProcessId owner() const { return owner_; }
  [[nodiscard]] PartialSig partial_sign(Digest d) const;

 private:
  friend class ThresholdScheme;
  ShareKey(const ThresholdScheme* scheme, ProcessId owner)
      : scheme_(scheme), owner_(owner) {}

  const ThresholdScheme* scheme_;
  ProcessId owner_;
};

/// Abstract (k, n)-threshold scheme.
class ThresholdScheme {
 public:
  ThresholdScheme(std::uint32_t k, std::uint32_t n) : k_(k), n_(n) {}
  virtual ~ThresholdScheme() = default;
  ThresholdScheme(const ThresholdScheme&) = delete;
  ThresholdScheme& operator=(const ThresholdScheme&) = delete;

  [[nodiscard]] std::uint32_t k() const { return k_; }
  [[nodiscard]] std::uint32_t n() const { return n_; }

  /// Issues the share handle for `pid` (trusted-setup step).
  [[nodiscard]] ShareKey issue_share(ProcessId pid) const;

  [[nodiscard]] virtual bool verify_partial(const PartialSig& p) const = 0;

  /// Batches >= k valid partial signatures on the same digest, from distinct
  /// signers, into a threshold signature. Returns nullopt when the inputs do
  /// not contain k distinct valid partials on one digest.
  [[nodiscard]] std::optional<ThresholdSig> combine(
      std::span<const PartialSig> partials) const;

  [[nodiscard]] virtual bool verify(const ThresholdSig& sig) const = 0;

 protected:
  friend class ShareKey;
  [[nodiscard]] virtual PartialSig make_partial(ProcessId signer,
                                                Digest d) const = 0;
  /// Produces the combined tag from k verified partials (distinct signers,
  /// same digest, already checked by combine()).
  [[nodiscard]] virtual std::uint64_t combine_tag(
      std::span<const PartialSig> chosen) const = 0;

 private:
  std::uint32_t k_;
  std::uint32_t n_;
};

/// Ideal threshold scheme: tags are MACs under a scheme secret held only
/// here. Unforgeable within the simulation by key custody.
class SimThreshold final : public ThresholdScheme {
 public:
  SimThreshold(std::uint32_t k, std::uint32_t n, std::uint64_t seed);

  [[nodiscard]] bool verify_partial(const PartialSig& p) const override;
  [[nodiscard]] bool verify(const ThresholdSig& sig) const override;

 protected:
  [[nodiscard]] PartialSig make_partial(ProcessId signer,
                                        Digest d) const override;
  [[nodiscard]] std::uint64_t combine_tag(
      std::span<const PartialSig> chosen) const override;

 private:
  [[nodiscard]] std::uint64_t share_tag(ProcessId signer, Digest d) const;
  [[nodiscard]] std::uint64_t group_tag(Digest d) const;

  std::uint64_t secret_;
};

}  // namespace mewc
