#include "crypto/shamir.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"
#include "crypto/field.hpp"

namespace mewc {

ShamirThreshold::ShamirThreshold(std::uint32_t k, std::uint32_t n,
                                 std::uint64_t seed)
    : ThresholdScheme(k, n) {
  MEWC_CHECK_MSG(k >= 1 && k <= n, "threshold k must be in [1, n]");
  Rng rng(hash_combine(seed, hash_combine(k, n)) ^ 0x51a5eULL);

  // Random degree-(k-1) polynomial P with nonzero secret P(0).
  std::vector<std::uint64_t> coeffs(k);
  do {
    coeffs[0] = rng.below(fp::kP);
  } while (coeffs[0] == 0);
  for (std::uint32_t i = 1; i < k; ++i) coeffs[i] = rng.below(fp::kP);

  secret_ = coeffs[0];
  shares_.resize(n);
  for (ProcessId pid = 0; pid < n; ++pid) {
    // Horner evaluation at x = pid + 1.
    const std::uint64_t x = x_coord(pid);
    std::uint64_t acc = 0;
    for (std::uint32_t c = k; c-- > 0;) acc = fp::add(fp::mul(acc, x), coeffs[c]);
    shares_[pid] = acc;
  }
}

std::uint64_t ShamirThreshold::message_point(Digest d) const {
  // Domain-separate by k so partials from schemes with different thresholds
  // can never be mixed.
  return fp::hash_point(hash_combine(d.bits, k()));
}

PartialSig ShamirThreshold::make_partial(ProcessId signer, Digest d) const {
  MEWC_CHECK(signer < n());
  PartialSig p;
  p.signer = signer;
  p.digest = d;
  p.k = k();
  p.tag = fp::mul(shares_[signer], message_point(d));
  return p;
}

bool ShamirThreshold::verify_partial(const PartialSig& p) const {
  if (p.signer >= n() || p.k != k()) return false;
  return p.tag == fp::mul(shares_[p.signer], message_point(p.digest));
}

std::uint64_t ShamirThreshold::combine_tag(
    std::span<const PartialSig> chosen) const {
  // Lagrange interpolation at x = 0 over the k chosen share points:
  //   s * H(d) = sum_i lambda_i * sigma_i,
  //   lambda_i = prod_{j != i} x_j / (x_j - x_i).
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    const std::uint64_t xi = x_coord(chosen[i].signer);
    std::uint64_t num = 1;
    std::uint64_t den = 1;
    for (std::size_t j = 0; j < chosen.size(); ++j) {
      if (j == i) continue;
      const std::uint64_t xj = x_coord(chosen[j].signer);
      num = fp::mul(num, xj);
      den = fp::mul(den, fp::sub(xj, xi));
    }
    const std::uint64_t lambda = fp::mul(num, fp::inv(den));
    acc = fp::add(acc, fp::mul(lambda, chosen[i].tag));
  }
  return acc;
}

bool ShamirThreshold::verify(const ThresholdSig& sig) const {
  if (sig.k != k()) return false;
  return sig.tag == fp::mul(secret_, message_point(sig.digest));
}

}  // namespace mewc
