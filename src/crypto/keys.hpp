// Trusted PKI setup and per-process signatures (paper Section 2).
//
// Two signature models behind one interface (DESIGN.md SUB-2):
//
//  * kSim / kShamir — the simulation runs in a single address space, so
//    signatures are modeled as keyed MACs whose key material lives
//    exclusively inside the Pki object. A process (or the adversary, for
//    corrupted processes) signs through a PrivateKey handle; the adversary
//    API only ever receives handles for corrupted processes, so within the
//    simulation a signature verifying under pid proves pid's handle produced
//    it — exactly the reliable-authenticated-link guarantee the paper
//    assumes.
//  * kReal — BLS signatures over the pairing curve in crypto/realcurve.hpp:
//    per-process secret scalars, published public keys certified at setup by
//    Schnorr proofs of possession (crypto/ed_sig.hpp — the rogue-key
//    defense), pairing-equation verification, and point-addition aggregation
//    for multisignatures. Same one-word tags, same wire shapes, same
//    protocol behavior; only the verification algebra (and its wall-clock
//    cost) is real.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <tuple>
#include <vector>

#include "common/types.hpp"
#include "crypto/agg_threshold.hpp"
#include "crypto/digest.hpp"
#include "crypto/ed_sig.hpp"

namespace mewc {

/// Which algebra backs signatures and threshold schemes for a run. Selected
/// at RunSpec level; behavior is identical across backends by construction
/// (the differential harness in tests/crypto/differential_test.cpp pins it).
enum class ThresholdBackend {
  kSim,     // ideal registry-enforced scheme
  kShamir,  // real Shamir shares + Lagrange combination, dealer-verified
  kReal,    // BLS over the real curve: pairing-verified, no trapdoor
};

/// Canonical lowercase name, the shared vocabulary of grid JSON, replay
/// files, tool flags and bench labels.
[[nodiscard]] constexpr const char* backend_name(ThresholdBackend b) {
  switch (b) {
    case ThresholdBackend::kShamir:
      return "shamir";
    case ThresholdBackend::kReal:
      return "real";
    case ThresholdBackend::kSim:
      break;
  }
  return "sim";
}

[[nodiscard]] constexpr std::optional<ThresholdBackend> parse_backend(
    std::string_view s) {
  if (s == "sim") return ThresholdBackend::kSim;
  if (s == "shamir") return ThresholdBackend::kShamir;
  if (s == "real") return ThresholdBackend::kReal;
  return std::nullopt;
}

class Pki;

/// An individual signature <m>_p: one word in the paper's cost model.
struct Signature {
  ProcessId signer = kNoProcess;
  Digest digest;
  std::uint64_t tag = 0;

  friend bool operator==(const Signature& a, const Signature& b) {
    return a.signer == b.signer && a.digest == b.digest && a.tag == b.tag;
  }
};

/// Signing capability for one process. Move-only: custody of the handle is
/// custody of the identity.
class PrivateKey {
 public:
  PrivateKey(PrivateKey&&) noexcept = default;
  PrivateKey& operator=(PrivateKey&&) noexcept = default;
  PrivateKey(const PrivateKey&) = delete;
  PrivateKey& operator=(const PrivateKey&) = delete;

  [[nodiscard]] ProcessId owner() const { return owner_; }

  /// Signs a digest. Also bumps the Pki signature-issuance counter, which
  /// experiment E8 uses to reproduce the Dolev-Reischuk Omega(nt)-signatures
  /// observation.
  [[nodiscard]] Signature sign(Digest d) const;

 private:
  friend class Pki;
  PrivateKey(const Pki* pki, ProcessId owner) : pki_(pki), owner_(owner) {}

  const Pki* pki_;
  ProcessId owner_;
};

/// Trusted setup: mints one key pair per process plus the threshold-scheme
/// secrets (see crypto/threshold.hpp, crypto/shamir.hpp,
/// crypto/agg_threshold.hpp). One Pki per run.
class Pki {
 public:
  explicit Pki(std::uint32_t n, std::uint64_t seed = 0x5e7u,
               ThresholdBackend backend = ThresholdBackend::kSim);

  [[nodiscard]] std::uint32_t n() const {
    return static_cast<std::uint32_t>(secrets_.size());
  }
  [[nodiscard]] ThresholdBackend backend() const { return backend_; }

  /// Hands out the signing handle for `pid`. Call once per identity; the
  /// executor gives it to the process (or to the adversary if corrupted).
  [[nodiscard]] PrivateKey issue_key(ProcessId pid) const;

  [[nodiscard]] bool verify(const Signature& sig) const;

  /// Verifies an XOR-aggregated MAC over `signers` (the ideal-backend
  /// aggregate; see verify_aggregate for the backend-dispatching entry).
  [[nodiscard]] bool verify_mac_xor(Digest d,
                                    std::span<const ProcessId> signers,
                                    std::uint64_t tag) const;

  /// Verifies an aggregate multisignature tag over `signers`: XOR of MACs
  /// for the ideal backends, one pairing pair against the summed public
  /// keys for kReal (see crypto/multisig.hpp).
  [[nodiscard]] bool verify_aggregate(Digest d,
                                      std::span<const ProcessId> signers,
                                      std::uint64_t tag) const;

  /// Folds one more signature tag into an aggregate tag: XOR for the ideal
  /// backends, point addition for kReal. An undecodable real tag poisons
  /// the aggregate (rc::kBadEncoding), which can never verify.
  [[nodiscard]] std::uint64_t aggregate_fold(std::uint64_t agg_tag,
                                             std::uint64_t sig_tag) const;

  /// kReal key material, published at setup (tests and the PoP audit):
  /// the BLS public key and its Schnorr proof of possession.
  [[nodiscard]] std::uint64_t bls_pk_enc(ProcessId pid) const;
  [[nodiscard]] const EdSig& pop_of(ProcessId pid) const;
  /// Re-checks one process's proof of possession — what an aggregator runs
  /// before admitting a key into a multisignature universe.
  [[nodiscard]] bool verify_pop(ProcessId pid, std::uint64_t pk_enc,
                                const EdSig& pop) const;

  /// Total individual signatures issued so far (all signers).
  [[nodiscard]] std::uint64_t signatures_issued() const {
    return signatures_issued_;
  }
  [[nodiscard]] std::uint64_t signatures_issued_by(ProcessId pid) const {
    return per_signer_issued_[pid];
  }
  void reset_signature_counters();

  /// Pairing/memo counters (kReal; zero for the ideal backends).
  [[nodiscard]] const CryptoVerifyStats& crypto_verify_stats() const {
    return crypto_stats_;
  }
  void reset_crypto_verify_stats() const { crypto_stats_ = {}; }

  /// Master seed for deriving threshold-scheme secrets deterministically.
  [[nodiscard]] std::uint64_t master_seed() const { return master_seed_; }

 private:
  friend class PrivateKey;
  [[nodiscard]] std::uint64_t mac(ProcessId signer, Digest d) const;
  [[nodiscard]] std::uint64_t sign_tag(ProcessId signer, Digest d) const;

  ThresholdBackend backend_ = ThresholdBackend::kSim;
  std::vector<std::uint64_t> secrets_;
  std::uint64_t master_seed_;
  // kReal: per-process BLS key pairs and their proofs of possession.
  std::vector<std::uint64_t> bls_sks_;
  std::vector<rc::Point> bls_pks_;
  std::vector<std::uint64_t> bls_pk_encs_;
  std::vector<EdKeyPair> pop_keys_;
  std::vector<EdSig> pops_;
  // Verification-result memo for kReal individual signatures (values only;
  // bounded; not thread-safe — one Pki per worker via SetupCache).
  mutable std::map<std::tuple<ProcessId, std::uint64_t, std::uint64_t>, bool>
      verify_memo_;
  mutable CryptoVerifyStats crypto_stats_;
  mutable std::uint64_t signatures_issued_ = 0;
  mutable std::vector<std::uint64_t> per_signer_issued_;
};

}  // namespace mewc
