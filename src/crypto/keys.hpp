// Trusted PKI setup and per-process signatures (paper Section 2).
//
// Unforgeability model (DESIGN.md SUB-2): the simulation runs in a single
// address space, so signatures are modeled as keyed MACs whose key material
// lives exclusively inside the Pki object. A process (or the adversary, for
// corrupted processes) signs through a PrivateKey handle; the adversary API
// only ever receives handles for corrupted processes, so within the
// simulation a signature verifying under pid proves pid's handle produced it
// — exactly the reliable-authenticated-link guarantee the paper assumes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "crypto/digest.hpp"

namespace mewc {

class Pki;

/// An individual signature <m>_p: one word in the paper's cost model.
struct Signature {
  ProcessId signer = kNoProcess;
  Digest digest;
  std::uint64_t tag = 0;

  friend bool operator==(const Signature& a, const Signature& b) {
    return a.signer == b.signer && a.digest == b.digest && a.tag == b.tag;
  }
};

/// Signing capability for one process. Move-only: custody of the handle is
/// custody of the identity.
class PrivateKey {
 public:
  PrivateKey(PrivateKey&&) noexcept = default;
  PrivateKey& operator=(PrivateKey&&) noexcept = default;
  PrivateKey(const PrivateKey&) = delete;
  PrivateKey& operator=(const PrivateKey&) = delete;

  [[nodiscard]] ProcessId owner() const { return owner_; }

  /// Signs a digest. Also bumps the Pki signature-issuance counter, which
  /// experiment E8 uses to reproduce the Dolev-Reischuk Omega(nt)-signatures
  /// observation.
  [[nodiscard]] Signature sign(Digest d) const;

 private:
  friend class Pki;
  PrivateKey(const Pki* pki, ProcessId owner) : pki_(pki), owner_(owner) {}

  const Pki* pki_;
  ProcessId owner_;
};

/// Trusted setup: mints one key pair per process plus the threshold-scheme
/// secrets (see crypto/threshold.hpp, crypto/shamir.hpp). One Pki per run.
class Pki {
 public:
  explicit Pki(std::uint32_t n, std::uint64_t seed = 0x5e7u);

  [[nodiscard]] std::uint32_t n() const {
    return static_cast<std::uint32_t>(secrets_.size());
  }

  /// Hands out the signing handle for `pid`. Call once per identity; the
  /// executor gives it to the process (or to the adversary if corrupted).
  [[nodiscard]] PrivateKey issue_key(ProcessId pid) const;

  [[nodiscard]] bool verify(const Signature& sig) const;

  /// Verifies an XOR-aggregated MAC over `signers` (see crypto/multisig.hpp).
  [[nodiscard]] bool verify_mac_xor(Digest d,
                                    std::span<const ProcessId> signers,
                                    std::uint64_t tag) const;

  /// Total individual signatures issued so far (all signers).
  [[nodiscard]] std::uint64_t signatures_issued() const {
    return signatures_issued_;
  }
  [[nodiscard]] std::uint64_t signatures_issued_by(ProcessId pid) const {
    return per_signer_issued_[pid];
  }
  void reset_signature_counters();

  /// Master seed for deriving threshold-scheme secrets deterministically.
  [[nodiscard]] std::uint64_t master_seed() const { return master_seed_; }

 private:
  friend class PrivateKey;
  [[nodiscard]] std::uint64_t mac(ProcessId signer, Digest d) const;

  std::vector<std::uint64_t> secrets_;
  std::uint64_t master_seed_;
  mutable std::uint64_t signatures_issued_ = 0;
  mutable std::vector<std::uint64_t> per_signer_issued_;
};

}  // namespace mewc
