// BLS-style signatures over the real curve (crypto/realcurve.hpp): the
// pairing-verified backend behind ThresholdBackend::kReal.
//
//  * Per-process signatures: sigma = sk * H(d); verification is the pairing
//    equation e(sigma, G) == e(H(d), pk) — no shared secret, no registry.
//  * Multisignatures: signatures on one digest aggregate by point addition;
//    one pairing pair verifies the whole certificate against sum(pk_i).
//  * RealThreshold: Shamir shares of the group secret in Z_q, partials are
//    share-signatures s_i * H_k(d), any k of them Lagrange-combine *in the
//    exponent* to the unique group signature s * H_k(d). Verification is by
//    pairing against published share/group public keys — unlike
//    ShamirThreshold there is no dealer trapdoor anywhere.
//
// Every tag is one compressed point = one u64 = one word, so the real
// backend changes no wire shapes and no Table-1 word counts. Verification
// results (never tags) are memoized per scheme, keyed by the full
// (signer, digest, tag) triple: across the phases of one protocol run — and
// across cached-setup runs — each certificate costs one pairing check total
// instead of one per receiving process. Caches are bounded and not
// thread-safe; schemes are per-worker via harness::SetupCache.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string_view>
#include <tuple>
#include <vector>

#include "crypto/realcurve.hpp"
#include "crypto/threshold.hpp"

namespace mewc {

/// Pairing-evaluation and memo-hit counters, aggregated into EngineStats by
/// the SMR engine and reported by the E-CRYPTO bench.
struct CryptoVerifyStats {
  std::uint64_t pairings = 0;
  std::uint64_t memo_hits = 0;

  CryptoVerifyStats& operator+=(const CryptoVerifyStats& o) {
    pairings += o.pairings;
    memo_hits += o.memo_hits;
    return *this;
  }
};

/// Domain-separated hash of a digest onto the order-q subgroup.
[[nodiscard]] rc::Point bls_message_point(std::string_view domain,
                                          std::uint64_t bits);

/// sigma = sk * H: sign a prepared message point.
[[nodiscard]] std::uint64_t bls_sign_at(std::uint64_t sk, rc::Point h);

/// Checks e(sigma, G) == e(H, pk) — two pairings. `stats` may be null.
[[nodiscard]] bool bls_verify_at(rc::Point pk, rc::Point h, std::uint64_t tag,
                                 CryptoVerifyStats* stats);

/// (k, n)-threshold BLS: Shamir in the exponent, pairing verification.
class RealThreshold final : public ThresholdScheme {
 public:
  RealThreshold(std::uint32_t k, std::uint32_t n, std::uint64_t seed);

  [[nodiscard]] bool verify_partial(const PartialSig& p) const override;
  [[nodiscard]] bool verify(const ThresholdSig& sig) const override;

  /// Random-weight batch verification: accepts iff every signature in the
  /// batch verifies (up to the q^-1 soundness error of the weights), at a
  /// cost of two pairings plus two scalar multiplications per signature —
  /// instead of two pairings per signature. Callers fall back to individual
  /// verify() on failure to identify the offenders.
  [[nodiscard]] bool verify_batch(std::span<const ThresholdSig> sigs) const;

  /// Exposed for tests: the share point x_i = i + 1 of process i, the
  /// published share/group public keys.
  [[nodiscard]] static std::uint64_t x_coord(ProcessId pid) { return pid + 1; }
  [[nodiscard]] std::uint64_t group_pk_enc() const {
    return rc::compress(group_pk_);
  }
  [[nodiscard]] std::uint64_t share_pk_enc(ProcessId pid) const {
    return rc::compress(share_pks_[pid]);
  }

  [[nodiscard]] const CryptoVerifyStats& verify_stats() const {
    return stats_;
  }
  void reset_verify_stats() const { stats_ = CryptoVerifyStats{}; }

 protected:
  [[nodiscard]] PartialSig make_partial(ProcessId signer,
                                        Digest d) const override;
  [[nodiscard]] std::uint64_t combine_tag(
      std::span<const PartialSig> chosen) const override;

 private:
  [[nodiscard]] rc::Point message_point(Digest d) const;

  std::vector<std::uint64_t> shares_;    // s_i = P(x_i) in Z_q (secret)
  std::vector<rc::Point> share_pks_;     // s_i * G (public)
  rc::Point group_pk_;                   // P(0) * G; P(0) itself is dropped
  // Verification-result memos: values only, never tags, so cached-setup runs
  // stay bit-identical to fresh ones. Bounded; see note atop this file.
  mutable std::map<std::tuple<ProcessId, std::uint64_t, std::uint64_t>, bool>
      partial_memo_;
  mutable std::map<std::tuple<std::uint64_t, std::uint64_t>, bool> group_memo_;
  mutable CryptoVerifyStats stats_;
};

}  // namespace mewc
