// Trusted-setup bundle: the PKI plus one (k, n)-threshold scheme per
// threshold the protocols need — k = t+1 (idk / fallback certificates),
// k = ceil((n+t+1)/2) (commit / finalize certificates, Section 6), and
// k = n (Algorithm 5's decide certificate).
#pragma once

#include <map>
#include <memory>

#include "common/check.hpp"
#include "common/types.hpp"
#include "crypto/keys.hpp"
#include "crypto/threshold.hpp"

namespace mewc {

// ThresholdBackend (kSim / kShamir / kReal) lives in crypto/keys.hpp so the
// Pki can dispatch on it; it is re-exported here for existing includers.

/// All signing capabilities of one process: its individual key plus one
/// share per threshold scheme. Move-only; handed to the process (or the
/// adversary, for corrupted processes) by the executor.
struct KeyBundle {
  KeyBundle() = default;
  KeyBundle(KeyBundle&&) noexcept = default;
  KeyBundle& operator=(KeyBundle&&) noexcept = default;

  std::optional<PrivateKey> key;
  std::map<std::uint32_t, ShareKey> shares;  // by threshold k

  [[nodiscard]] ProcessId owner() const { return key->owner(); }
  [[nodiscard]] const PrivateKey& signer() const { return *key; }
  [[nodiscard]] const ShareKey& share(std::uint32_t k) const {
    auto it = shares.find(k);
    MEWC_CHECK_MSG(it != shares.end(), "no share for this threshold");
    return it->second;
  }
};

/// Owns the PKI and the threshold schemes for one run.
class ThresholdFamily {
 public:
  ThresholdFamily(std::uint32_t n, std::uint32_t t,
                  ThresholdBackend backend = ThresholdBackend::kSim,
                  std::uint64_t seed = 0x5e7u);

  [[nodiscard]] std::uint32_t n() const { return n_; }
  [[nodiscard]] std::uint32_t t() const { return t_; }
  [[nodiscard]] ThresholdBackend backend() const { return backend_; }

  [[nodiscard]] const Pki& pki() const { return pki_; }
  [[nodiscard]] Pki& pki() { return pki_; }

  /// The scheme with threshold k. Aborts if k was not provisioned at setup
  /// (the constructor provisions t+1, ceil((n+t+1)/2), and n).
  [[nodiscard]] const ThresholdScheme& scheme(std::uint32_t k) const;

  /// Issues the full key bundle for one process.
  [[nodiscard]] KeyBundle issue_bundle(ProcessId pid) const;

  /// Sum of the pairing/memo counters across the Pki and every provisioned
  /// scheme (all zero for the ideal backends). The SMR engine aggregates
  /// these into EngineStats; reset happens per cached run alongside the
  /// signature counters.
  [[nodiscard]] CryptoVerifyStats crypto_verify_stats() const;
  void reset_crypto_verify_stats() const;

 private:
  std::uint32_t n_;
  std::uint32_t t_;
  ThresholdBackend backend_;
  Pki pki_;
  std::map<std::uint32_t, std::unique_ptr<ThresholdScheme>> schemes_;
};

}  // namespace mewc
