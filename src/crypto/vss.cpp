#include "crypto/vss.hpp"

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "crypto/signer_set.hpp"

namespace mewc::vss {

namespace {

[[nodiscard]] std::uint64_t mod_mul(std::uint64_t a, std::uint64_t b,
                                    std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

[[nodiscard]] std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp,
                                    std::uint64_t m) {
  std::uint64_t acc = 1;
  std::uint64_t cur = base % m;
  while (exp != 0) {
    if (exp & 1) acc = mod_mul(acc, cur, m);
    cur = mod_mul(cur, cur, m);
    exp >>= 1;
  }
  return acc;
}

/// x-coordinate of process i's share.
[[nodiscard]] std::uint64_t x_coord(ProcessId pid) { return pid + 1; }

/// Fiat-Shamir challenge for the DLEQ proof.
[[nodiscard]] std::uint64_t dleq_challenge(std::uint64_t y, std::uint64_t hm,
                                           std::uint64_t sigma,
                                           std::uint64_t big_a,
                                           std::uint64_t big_b, Digest d) {
  Hasher h;
  h.feed("vss.dleq")
      .feed(kG)
      .feed(y)
      .feed(hm)
      .feed(sigma)
      .feed(big_a)
      .feed(big_b)
      .feed(d.bits);
  return h.digest() % kR;
}

}  // namespace

std::uint64_t mul_q(std::uint64_t a, std::uint64_t b) {
  return mod_mul(a, b, kQ);
}
std::uint64_t pow_q(std::uint64_t base, std::uint64_t exp) {
  return mod_pow(base, exp, kQ);
}
std::uint64_t mul_r(std::uint64_t a, std::uint64_t b) {
  return mod_mul(a, b, kR);
}
std::uint64_t add_r(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = (a % kR) + (b % kR);
  return s >= kR ? s - kR : s;
}
std::uint64_t sub_r(std::uint64_t a, std::uint64_t b) {
  a %= kR;
  b %= kR;
  return a >= b ? a - b : a + kR - b;
}
std::uint64_t inv_r(std::uint64_t x) {
  MEWC_CHECK_MSG(x % kR != 0, "no inverse of zero");
  return mod_pow(x % kR, kR - 2, kR);  // r is prime
}

std::uint64_t message_base(Digest d) {
  // Square into the quadratic-residue subgroup; never the identity.
  std::uint64_t e = mix64(d.bits) % kQ;
  if (e <= 1) e = 2;
  const std::uint64_t h = mul_q(e, e);
  return h == 1 ? kG : h;
}

Dealing::Dealing(std::uint32_t k, std::uint32_t n, std::uint64_t seed)
    : k_(k) {
  MEWC_CHECK_MSG(k >= 1 && k <= n, "threshold k must be in [1, n]");
  Rng rng(hash_combine(seed, hash_combine(k, n)) ^ 0xf31d);

  std::vector<std::uint64_t> coeffs(k);
  do {
    coeffs[0] = rng.below(kR);
  } while (coeffs[0] == 0);
  for (std::uint32_t j = 1; j < k; ++j) coeffs[j] = rng.below(kR);
  secret_ = coeffs[0];

  commitments_.reserve(k);
  for (std::uint32_t j = 0; j < k; ++j) {
    commitments_.push_back(pow_q(kG, coeffs[j]));
  }

  shares_.resize(n);
  for (ProcessId pid = 0; pid < n; ++pid) {
    const std::uint64_t x = x_coord(pid);
    std::uint64_t acc = 0;  // Horner over Z_r
    for (std::uint32_t j = k; j-- > 0;) acc = add_r(mul_r(acc, x), coeffs[j]);
    shares_[pid] = Share{pid, acc, pow_q(kG, acc)};
  }
}

bool Dealing::verify_share(std::span<const std::uint64_t> commitments,
                           const Share& share) {
  if (commitments.empty()) return false;
  // y_i must equal prod_j C_j^{x^j} — the committed polynomial evaluated
  // in the exponent — and match g^{s_i}.
  const std::uint64_t x = x_coord(share.owner);
  std::uint64_t expected = 1;
  std::uint64_t x_pow = 1;  // x^j mod r (exponents live in Z_r)
  for (const std::uint64_t c : commitments) {
    expected = mul_q(expected, pow_q(c, x_pow));
    x_pow = mul_r(x_pow, x);
  }
  return expected == share.pub && pow_q(kG, share.secret) == share.pub;
}

VerifiablePartial Dealing::partial_sign(const Share& share, Digest d,
                                        std::uint64_t nonce_seed) {
  const std::uint64_t hm = message_base(d);
  VerifiablePartial p;
  p.signer = share.owner;
  p.digest = d;
  p.sigma = pow_q(hm, share.secret);

  // Chaum-Pedersen with Fiat-Shamir.
  Rng rng(hash_combine(nonce_seed, hash_combine(share.secret, d.bits)));
  std::uint64_t w = 0;
  while (w == 0) w = rng.below(kR);
  p.big_a = pow_q(kG, w);
  p.big_b = pow_q(hm, w);
  const std::uint64_t c =
      dleq_challenge(share.pub, hm, p.sigma, p.big_a, p.big_b, d);
  p.z = add_r(w, mul_r(c, share.secret));
  return p;
}

bool Dealing::verify_partial(const VerifiablePartial& p,
                             std::uint64_t signer_pub) {
  const std::uint64_t hm = message_base(p.digest);
  const std::uint64_t c =
      dleq_challenge(signer_pub, hm, p.sigma, p.big_a, p.big_b, p.digest);
  // g^z == A * y^c  and  hm^z == B * sigma^c.
  if (pow_q(kG, p.z) != mul_q(p.big_a, pow_q(signer_pub, c))) return false;
  if (pow_q(hm, p.z) != mul_q(p.big_b, pow_q(p.sigma, c))) return false;
  return true;
}

std::optional<std::uint64_t> Dealing::combine(
    std::uint32_t k, std::span<const VerifiablePartial> partials,
    std::span<const std::uint64_t> signer_pubs) {
  if (partials.empty()) return std::nullopt;
  const Digest d = partials.front().digest;

  SignerSet seen(static_cast<std::uint32_t>(signer_pubs.size()));
  std::vector<const VerifiablePartial*> chosen;
  for (const VerifiablePartial& p : partials) {
    if (p.digest != d || p.signer >= signer_pubs.size()) continue;
    if (!verify_partial(p, signer_pubs[p.signer])) continue;
    if (!seen.insert(p.signer)) continue;
    chosen.push_back(&p);
    if (chosen.size() == k) break;
  }
  if (chosen.size() < k) return std::nullopt;

  // sigma = prod sigma_i^{lambda_i}, Lagrange at zero over Z_r.
  std::uint64_t sigma = 1;
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    const std::uint64_t xi = x_coord(chosen[i]->signer);
    std::uint64_t num = 1, den = 1;
    for (std::size_t j = 0; j < chosen.size(); ++j) {
      if (j == i) continue;
      const std::uint64_t xj = x_coord(chosen[j]->signer);
      num = mul_r(num, xj);
      den = mul_r(den, sub_r(xj, xi));
    }
    const std::uint64_t lambda = mul_r(num, inv_r(den));
    sigma = mul_q(sigma, pow_q(chosen[i]->sigma, lambda));
  }
  return sigma;
}

std::uint64_t Dealing::expected_signature(Digest d) const {
  return pow_q(message_base(d), secret_);
}

}  // namespace mewc::vss
