#include "crypto/threshold.hpp"

#include "common/check.hpp"
#include "common/hash.hpp"
#include "crypto/signer_set.hpp"

namespace mewc {

PartialSig ShareKey::partial_sign(Digest d) const {
  return scheme_->make_partial(owner_, d);
}

ShareKey ThresholdScheme::issue_share(ProcessId pid) const {
  MEWC_CHECK(pid < n());
  return ShareKey(this, pid);
}

std::optional<ThresholdSig> ThresholdScheme::combine(
    std::span<const PartialSig> partials) const {
  if (partials.empty()) return std::nullopt;
  const Digest d = partials.front().digest;

  SignerSet seen(n());
  std::vector<PartialSig> chosen;
  chosen.reserve(k());
  for (const PartialSig& p : partials) {
    if (p.digest != d || p.k != k()) continue;
    if (!verify_partial(p)) continue;
    if (!seen.insert(p.signer)) continue;  // duplicate signer
    chosen.push_back(p);
    if (chosen.size() == k()) break;
  }
  if (chosen.size() < k()) return std::nullopt;

  ThresholdSig sig;
  sig.digest = d;
  sig.k = k();
  sig.tag = combine_tag(chosen);
  return sig;
}

SimThreshold::SimThreshold(std::uint32_t k, std::uint32_t n,
                           std::uint64_t seed)
    : ThresholdScheme(k, n),
      secret_(mix64(seed ^ hash_combine(k, n) ^ 0x7e5a)) {
  MEWC_CHECK_MSG(k >= 1 && k <= n, "threshold k must be in [1, n]");
}

std::uint64_t SimThreshold::share_tag(ProcessId signer, Digest d) const {
  return hash_combine(hash_combine(secret_, signer + 1), d.bits);
}

std::uint64_t SimThreshold::group_tag(Digest d) const {
  return hash_combine(secret_, hash_combine(d.bits, k()));
}

PartialSig SimThreshold::make_partial(ProcessId signer, Digest d) const {
  MEWC_CHECK(signer < n());
  PartialSig p;
  p.signer = signer;
  p.digest = d;
  p.k = k();
  p.tag = share_tag(signer, d);
  return p;
}

bool SimThreshold::verify_partial(const PartialSig& p) const {
  if (p.signer >= n() || p.k != k()) return false;
  return p.tag == share_tag(p.signer, p.digest);
}

std::uint64_t SimThreshold::combine_tag(
    std::span<const PartialSig> chosen) const {
  // The combined tag depends only on the digest and scheme, never on which
  // k shares were used — a property real threshold schemes (e.g. BLS) have.
  return group_tag(chosen.front().digest);
}

bool SimThreshold::verify(const ThresholdSig& sig) const {
  if (sig.k != k()) return false;
  return sig.tag == group_tag(sig.digest);
}

}  // namespace mewc
