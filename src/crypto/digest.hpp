// Message digests. Every signature in the system signs a Digest, which is a
// domain-separated 64-bit hash of the message's typed fields.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace mewc {

struct Digest {
  std::uint64_t bits = 0;

  friend constexpr bool operator==(Digest a, Digest b) {
    return a.bits == b.bits;
  }
  friend constexpr bool operator!=(Digest a, Digest b) {
    return a.bits != b.bits;
  }
};

/// Builds digests with a domain-separation tag so that, e.g., a signature on
/// <vote, v, j> can never be replayed as a signature on <decide, v, j>.
class DigestBuilder {
 public:
  explicit DigestBuilder(std::string_view domain) { h_.feed(domain); }

  DigestBuilder& field(std::uint64_t v) {
    h_.feed(v);
    return *this;
  }
  DigestBuilder& field(Value v) {
    h_.feed(v.raw);
    return *this;
  }
  DigestBuilder& field(std::string_view s) {
    h_.feed(s);
    return *this;
  }

  [[nodiscard]] Digest done() const { return Digest{h_.digest()}; }

 private:
  Hasher h_;
};

}  // namespace mewc
