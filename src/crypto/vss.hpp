// Verifiable secret sharing and publicly verifiable partial signatures —
// how far the SUB-2 idealization can be shrunk without pairings.
//
// The default threshold backends verify through dealer-held material
// (DESIGN.md SUB-2). This module implements the genuinely public parts of
// a discrete-log threshold scheme over the order-r subgroup of Z_q*
// (q = 2r+1, a 61-bit safe prime; a structural model — 61-bit discrete
// logs are NOT cryptographically hard, exactly like every other key length
// in this simulation):
//
//   * Feldman-VSS dealing: commitments C_j = g^{a_j} publish the
//     polynomial in the exponent; ANYONE can check a share s_i against
//     y_i = prod C_j^{x_i^j} with no dealer secret.
//   * Partial signatures sigma_i = h_m^{s_i} with Chaum-Pedersen DLEQ
//     proofs (Fiat-Shamir): ANYONE can verify a partial against the public
//     y_i — no trapdoor.
//   * Lagrange combination in the exponent: any k verified partials
//     recombine to the same group signature h_m^s.
//
// What still cannot be done without pairings: verifying a bare combined
// signature against y_0 alone (that is DDH). A verifier here either
// recombines from k DLEQ-verified partials or trusts a combiner — which is
// why the protocol-facing backends keep the one-word certificate model and
// this module stands alone as substrate depth (with its own test suite).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "crypto/digest.hpp"

namespace mewc::vss {

/// Group parameters: q = 2r + 1 (both prime), g generates the order-r
/// subgroup of quadratic residues.
inline constexpr std::uint64_t kQ = 2305843009213691579ull;  // 61-bit prime
inline constexpr std::uint64_t kR = 1152921504606845789ull;  // (q-1)/2, prime
inline constexpr std::uint64_t kG = 4;                       // 2^2 mod q

// Arithmetic mod q (group) and mod r (exponents).
[[nodiscard]] std::uint64_t mul_q(std::uint64_t a, std::uint64_t b);
[[nodiscard]] std::uint64_t pow_q(std::uint64_t base, std::uint64_t exp);
[[nodiscard]] std::uint64_t mul_r(std::uint64_t a, std::uint64_t b);
[[nodiscard]] std::uint64_t add_r(std::uint64_t a, std::uint64_t b);
[[nodiscard]] std::uint64_t sub_r(std::uint64_t a, std::uint64_t b);
[[nodiscard]] std::uint64_t inv_r(std::uint64_t x);

/// Maps a digest to a non-identity element of the subgroup.
[[nodiscard]] std::uint64_t message_base(Digest d);

/// A share with its public verification key.
struct Share {
  ProcessId owner = kNoProcess;
  std::uint64_t secret = 0;  // s_i in Z_r (held by the owner)
  std::uint64_t pub = 0;     // y_i = g^{s_i} (public)
};

/// A partial signature with its Chaum-Pedersen DLEQ proof
/// (log_g y_i = log_{h_m} sigma_i). Publicly verifiable.
struct VerifiablePartial {
  ProcessId signer = kNoProcess;
  Digest digest;
  std::uint64_t sigma = 0;  // h_m^{s_i}
  std::uint64_t big_a = 0;  // g^w
  std::uint64_t big_b = 0;  // h_m^w
  std::uint64_t z = 0;      // w + c*s_i mod r
};

/// One Feldman-VSS dealing for a (k, n) threshold.
class Dealing {
 public:
  Dealing(std::uint32_t k, std::uint32_t n, std::uint64_t seed);

  [[nodiscard]] std::uint32_t k() const { return k_; }
  [[nodiscard]] std::uint32_t n() const {
    return static_cast<std::uint32_t>(shares_.size());
  }

  /// The published commitments C_0..C_{k-1} (C_0 = g^s is the group key).
  [[nodiscard]] const std::vector<std::uint64_t>& commitments() const {
    return commitments_;
  }

  [[nodiscard]] const Share& share(ProcessId pid) const {
    return shares_[pid];
  }

  /// PUBLIC check: does (x_i, s_i) lie on the committed polynomial?
  [[nodiscard]] static bool verify_share(
      std::span<const std::uint64_t> commitments, const Share& share);

  /// Signs with a share, attaching the DLEQ proof. `nonce_seed` feeds the
  /// prover's randomness (any value; proofs are publicly checkable anyway).
  [[nodiscard]] static VerifiablePartial partial_sign(const Share& share,
                                                      Digest d,
                                                      std::uint64_t nonce_seed);

  /// PUBLIC check of a partial against the signer's y_i.
  [[nodiscard]] static bool verify_partial(const VerifiablePartial& p,
                                           std::uint64_t signer_pub);

  /// Combines exactly k verified partials (distinct signers, same digest)
  /// into the group signature h_m^s via Lagrange in the exponent. Returns
  /// nullopt if the inputs do not qualify.
  [[nodiscard]] static std::optional<std::uint64_t> combine(
      std::uint32_t k, std::span<const VerifiablePartial> partials,
      std::span<const std::uint64_t> signer_pubs);

  /// The dealer-side expected group signature (for tests: every k-subset
  /// must recombine to exactly this).
  [[nodiscard]] std::uint64_t expected_signature(Digest d) const;

 private:
  std::uint32_t k_;
  std::uint64_t secret_;  // P(0) in Z_r
  std::vector<std::uint64_t> commitments_;
  std::vector<Share> shares_;
};

}  // namespace mewc::vss
