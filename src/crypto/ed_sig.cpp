#include "crypto/ed_sig.hpp"

#include "common/hash.hpp"

namespace mewc {

namespace {

[[nodiscard]] std::uint64_t hash_bytes(Hasher h,
                                       std::span<const std::uint8_t> msg) {
  for (std::uint8_t b : msg) h.feed(b);
  h.feed(msg.size());
  return h.digest();
}

/// Challenge c = H(dom2 || enc(R) || enc(pk) || m) mod q — binding both the
/// commitment and the key, as in RFC 8032's H(R || A || M).
[[nodiscard]] std::uint64_t challenge(std::uint64_t r_enc,
                                      std::uint64_t pk_enc,
                                      std::span<const std::uint8_t> msg) {
  Hasher h;
  h.feed("mewc.ed.challenge");
  h.feed(r_enc);
  h.feed(pk_enc);
  return rc::q_reduce(hash_bytes(h, msg));
}

}  // namespace

EdKeyPair ed_keygen(std::uint64_t seed) {
  std::uint64_t sk = 0;
  for (std::uint64_t ctr = 0; sk == 0; ++ctr) {
    sk = rc::q_reduce(hash_combine(mix64(seed ^ 0xed5169ULL), ctr));
  }
  return EdKeyPair{sk, rc::compress(rc::scalar_mul(sk, rc::kG))};
}

EdSig ed_sign(const EdKeyPair& kp, std::span<const std::uint8_t> msg) {
  // Deterministic nonce r = H(dom1 || sk || m) mod q, nonzero: the RFC 8032
  // construction that removes signing-time randomness (and with it, nonce
  // reuse) entirely.
  Hasher nh;
  nh.feed("mewc.ed.nonce");
  nh.feed(kp.sk);
  std::uint64_t r = rc::q_reduce(hash_bytes(nh, msg));
  for (std::uint64_t ctr = 0; r == 0; ++ctr) {
    r = rc::q_reduce(hash_combine(hash_bytes(nh, msg), ctr));
  }
  const std::uint64_t r_enc = rc::compress(rc::scalar_mul(r, rc::kG));
  const std::uint64_t c = challenge(r_enc, kp.pk_enc, msg);
  return EdSig{r_enc, rc::q_add(r, rc::q_mul(c, kp.sk))};
}

bool ed_verify(std::uint64_t pk_enc, std::span<const std::uint8_t> msg,
               const EdSig& sig) {
  if (sig.s >= rc::kQ) return false;  // non-canonical s: malleability door
  rc::Point r_pt;
  rc::Point pk_pt;
  if (!rc::decompress(sig.r_enc, &r_pt)) return false;
  if (!rc::decompress(pk_enc, &pk_pt)) return false;
  if (!rc::in_subgroup(r_pt) || !rc::in_subgroup(pk_pt)) return false;
  const std::uint64_t c = challenge(sig.r_enc, pk_enc, msg);
  const rc::Point lhs = rc::scalar_mul(sig.s, rc::kG);
  const rc::Point rhs = rc::point_add(r_pt, rc::scalar_mul(c, pk_pt));
  return lhs == rhs;
}

}  // namespace mewc
