#include "crypto/agg_threshold.hpp"

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"

namespace mewc {

namespace {

// Memos hold verification results for the run's working set of digests;
// clearing (rather than evicting) at the bound keeps the structure trivial
// and the worst case is re-verification, never a wrong answer.
constexpr std::size_t kMemoBound = 1u << 16;

}  // namespace

rc::Point bls_message_point(std::string_view domain, std::uint64_t bits) {
  Hasher h;
  h.feed(domain);
  h.feed(bits);
  return rc::hash_to_point(h.digest());
}

std::uint64_t bls_sign_at(std::uint64_t sk, rc::Point h) {
  return rc::compress(rc::scalar_mul(sk, h));
}

bool bls_verify_at(rc::Point pk, rc::Point h, std::uint64_t tag,
                   CryptoVerifyStats* stats) {
  rc::Point sigma;
  if (!rc::decompress(tag, &sigma)) return false;
  if (!rc::in_subgroup(sigma)) return false;
  if (stats != nullptr) stats->pairings += 2;
  return rc::pairing(sigma, rc::kG) == rc::pairing(h, pk);
}

RealThreshold::RealThreshold(std::uint32_t k, std::uint32_t n,
                             std::uint64_t seed)
    : ThresholdScheme(k, n) {
  MEWC_CHECK_MSG(k >= 1 && k <= n, "threshold k must be in [1, n]");
  Rng rng(hash_combine(seed, hash_combine(k, n)) ^ 0xb15b15ULL);

  // Random degree-(k-1) polynomial P over Z_q with nonzero group secret
  // P(0). The secret and coefficients live only in this scope: what the
  // scheme keeps are the shares (secret per process) and the public keys.
  std::vector<std::uint64_t> coeffs(k);
  do {
    coeffs[0] = rng.below(rc::kQ);
  } while (coeffs[0] == 0);
  for (std::uint32_t i = 1; i < k; ++i) coeffs[i] = rng.below(rc::kQ);

  shares_.resize(n);
  share_pks_.resize(n);
  for (ProcessId pid = 0; pid < n; ++pid) {
    const std::uint64_t x = x_coord(pid);
    std::uint64_t acc = 0;
    for (std::uint32_t c = k; c-- > 0;) {
      acc = rc::q_add(rc::q_mul(acc, x), coeffs[c]);
    }
    shares_[pid] = acc;
    share_pks_[pid] = rc::scalar_mul(acc, rc::kG);
  }
  group_pk_ = rc::scalar_mul(coeffs[0], rc::kG);
}

rc::Point RealThreshold::message_point(Digest d) const {
  // Domain-separate by k so partials from schemes with different thresholds
  // can never be mixed, and by a scheme tag so threshold partials can never
  // be replayed as individual BLS signatures (which hash under "mewc.bls").
  return bls_message_point("mewc.bls.threshold", hash_combine(d.bits, k()));
}

PartialSig RealThreshold::make_partial(ProcessId signer, Digest d) const {
  MEWC_CHECK(signer < n());
  PartialSig p;
  p.signer = signer;
  p.digest = d;
  p.k = k();
  p.tag = bls_sign_at(shares_[signer], message_point(d));
  return p;
}

bool RealThreshold::verify_partial(const PartialSig& p) const {
  if (p.signer >= n() || p.k != k()) return false;
  const auto key = std::make_tuple(p.signer, p.digest.bits, p.tag);
  if (const auto it = partial_memo_.find(key); it != partial_memo_.end()) {
    ++stats_.memo_hits;
    return it->second;
  }
  const bool ok =
      bls_verify_at(share_pks_[p.signer], message_point(p.digest), p.tag,
                    &stats_);
  if (partial_memo_.size() >= kMemoBound) partial_memo_.clear();
  partial_memo_.emplace(key, ok);
  return ok;
}

std::uint64_t RealThreshold::combine_tag(
    std::span<const PartialSig> chosen) const {
  // Lagrange interpolation at x = 0 in the exponent:
  //   s * H(d) = sum_i lambda_i * sigma_i,
  //   lambda_i = prod_{j != i} x_j / (x_j - x_i)  (in Z_q).
  // The result is the unique group signature, independent of which k shares
  // were chosen — same BLS property SimThreshold imitates.
  rc::Point acc;  // infinity
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    const std::uint64_t xi = x_coord(chosen[i].signer);
    std::uint64_t num = 1;
    std::uint64_t den = 1;
    for (std::size_t j = 0; j < chosen.size(); ++j) {
      if (j == i) continue;
      const std::uint64_t xj = x_coord(chosen[j].signer);
      num = rc::q_mul(num, xj);
      den = rc::q_mul(den, rc::q_sub(xj, xi));
    }
    const std::uint64_t lambda = rc::q_mul(num, rc::q_inv(den));
    rc::Point sigma;
    // combine() only hands us partials that passed verify_partial, so the
    // tag decodes; the check guards direct combine_tag misuse.
    MEWC_CHECK_MSG(rc::decompress(chosen[i].tag, &sigma),
                   "combine over unverified partial");
    acc = rc::point_add(acc, rc::scalar_mul(lambda, sigma));
  }
  return rc::compress(acc);
}

bool RealThreshold::verify(const ThresholdSig& sig) const {
  if (sig.k != k()) return false;
  const auto key = std::make_tuple(sig.digest.bits, sig.tag);
  if (const auto it = group_memo_.find(key); it != group_memo_.end()) {
    ++stats_.memo_hits;
    return it->second;
  }
  const bool ok =
      bls_verify_at(group_pk_, message_point(sig.digest), sig.tag, &stats_);
  if (group_memo_.size() >= kMemoBound) group_memo_.clear();
  group_memo_.emplace(key, ok);
  return ok;
}

bool RealThreshold::verify_batch(std::span<const ThresholdSig> sigs) const {
  if (sigs.empty()) return true;
  // Deterministic Fiat-Shamir weights: r_j is a hash of the batch contents
  // and the position, nonzero mod q. An adversary controls the signatures
  // before the weights exist, so a batch with any invalid member passes with
  // probability ~1/q.
  Hasher seed;
  seed.feed("mewc.bls.batch");
  for (const ThresholdSig& s : sigs) {
    seed.feed(s.digest.bits);
    seed.feed(s.k);
    seed.feed(s.tag);
  }
  rc::Point sig_acc;  // sum r_j * sigma_j
  rc::Point msg_acc;  // sum r_j * H(d_j)
  for (std::size_t j = 0; j < sigs.size(); ++j) {
    if (sigs[j].k != k()) return false;
    rc::Point sigma;
    if (!rc::decompress(sigs[j].tag, &sigma)) return false;
    if (!rc::in_subgroup(sigma)) return false;
    std::uint64_t r = rc::q_reduce(hash_combine(seed.digest(), j));
    if (r == 0) r = 1;
    sig_acc = rc::point_add(sig_acc, rc::scalar_mul(r, sigma));
    msg_acc = rc::point_add(
        msg_acc, rc::scalar_mul(r, message_point(sigs[j].digest)));
  }
  stats_.pairings += 2;
  if (rc::pairing(sig_acc, rc::kG) != rc::pairing(msg_acc, group_pk_)) {
    return false;
  }
  // The whole batch verified: seed the memo so later individual verifies of
  // these certificates are hits.
  for (const ThresholdSig& s : sigs) {
    if (group_memo_.size() >= kMemoBound) group_memo_.clear();
    group_memo_.emplace(std::make_tuple(s.digest.bits, s.tag), true);
  }
  return true;
}

}  // namespace mewc
