#include "crypto/realcurve.hpp"

namespace mewc::rc {

namespace {

/// Branchless word select: mask is 0 or ~0.
[[nodiscard]] constexpr std::uint64_t ct_select(std::uint64_t mask,
                                                std::uint64_t a,
                                                std::uint64_t b) {
  return b ^ (mask & (a ^ b));
}

// Jacobian coordinates for the secret-scalar ladder: (X, Y, Z) with
// x = X/Z^2, y = Y/Z^3; infinity is Z == 0. The unified add/dbl below always
// execute the same multiplication sequence and resolve the special cases
// (either operand at infinity, equal or opposite inputs) with branchless
// selects, so the ladder's op trace is independent of the scalar.
struct Jac {
  std::uint64_t x = 1;
  std::uint64_t y = 1;
  std::uint64_t z = 0;
};

[[nodiscard]] constexpr std::uint64_t is_zero_mask(std::uint64_t v) {
  // 0 -> ~0, nonzero -> 0.
  return v == 0 ? ~0ULL : 0ULL;
}

void ct_swap(std::uint64_t mask, Jac& a, Jac& b) {
  const std::uint64_t dx = mask & (a.x ^ b.x);
  const std::uint64_t dy = mask & (a.y ^ b.y);
  const std::uint64_t dz = mask & (a.z ^ b.z);
  a.x ^= dx;
  b.x ^= dx;
  a.y ^= dy;
  b.y ^= dy;
  a.z ^= dz;
  b.z ^= dz;
}

[[nodiscard]] Jac jac_dbl(const Jac& p) {
  // dbl-2007-bl for y^2 = x^3 + a*x with a = 1. A 2-torsion input (Y = 0)
  // or infinity (Z = 0) both land on Z3 = 0, which is infinity again.
  const std::uint64_t xx = mul(p.x, p.x);
  const std::uint64_t yy = mul(p.y, p.y);
  const std::uint64_t yyyy = mul(yy, yy);
  const std::uint64_t zz = mul(p.z, p.z);
  const std::uint64_t xyy = add(p.x, yy);
  std::uint64_t s = sub(sub(mul(xyy, xyy), xx), yyyy);
  s = add(s, s);
  const std::uint64_t m = add(add(add(xx, xx), xx), mul(zz, zz));
  const std::uint64_t x3 = sub(mul(m, m), add(s, s));
  std::uint64_t y8 = add(yyyy, yyyy);
  y8 = add(y8, y8);
  y8 = add(y8, y8);
  const std::uint64_t y3 = sub(mul(m, sub(s, x3)), y8);
  const std::uint64_t yz = add(p.y, p.z);
  const std::uint64_t z3 = sub(sub(mul(yz, yz), yy), zz);
  return Jac{x3, y3, z3};
}

[[nodiscard]] Jac jac_add(const Jac& p, const Jac& q) {
  // add-2007-bl, with branchless fixups for Z1 = 0 / Z2 = 0 / P == Q /
  // P == -Q so the ladder never takes a data-dependent branch.
  const std::uint64_t z1z1 = mul(p.z, p.z);
  const std::uint64_t z2z2 = mul(q.z, q.z);
  const std::uint64_t u1 = mul(p.x, z2z2);
  const std::uint64_t u2 = mul(q.x, z1z1);
  const std::uint64_t s1 = mul(mul(p.y, q.z), z2z2);
  const std::uint64_t s2 = mul(mul(q.y, p.z), z1z1);
  const std::uint64_t h = sub(u2, u1);
  const std::uint64_t r0 = sub(s2, s1);
  const std::uint64_t r = add(r0, r0);
  const std::uint64_t i4 = [&] {
    const std::uint64_t h2 = add(h, h);
    return mul(h2, h2);
  }();
  const std::uint64_t j = mul(h, i4);
  const std::uint64_t v = mul(u1, i4);
  std::uint64_t x3 = sub(sub(mul(r, r), j), add(v, v));
  const std::uint64_t s1j = mul(s1, j);
  std::uint64_t y3 = sub(mul(r, sub(v, x3)), add(s1j, s1j));
  const std::uint64_t zs = add(p.z, q.z);
  std::uint64_t z3 = mul(sub(sub(mul(zs, zs), z1z1), z2z2), h);

  // P == Q (h == 0, r == 0): substitute the doubling.
  const Jac dbl = jac_dbl(p);
  const std::uint64_t same = is_zero_mask(h) & is_zero_mask(r0) &
                             ~is_zero_mask(p.z) & ~is_zero_mask(q.z);
  x3 = ct_select(same, dbl.x, x3);
  y3 = ct_select(same, dbl.y, y3);
  z3 = ct_select(same, dbl.z, z3);
  // P == -Q (h == 0, r != 0) already yields z3 == 0 == infinity; fine.

  // Either operand at infinity: return the other.
  const std::uint64_t p_inf = is_zero_mask(p.z);
  const std::uint64_t q_inf = is_zero_mask(q.z);
  x3 = ct_select(q_inf, p.x, ct_select(p_inf, q.x, x3));
  y3 = ct_select(q_inf, p.y, ct_select(p_inf, q.y, y3));
  z3 = ct_select(q_inf, p.z, ct_select(p_inf, q.z, z3));
  return Jac{x3, y3, z3};
}

[[nodiscard]] Point jac_to_affine(const Jac& p) {
  if (p.z == 0) return Point{};
  const std::uint64_t zi = inv(p.z);
  const std::uint64_t zi2 = mul(zi, zi);
  return Point{mul(p.x, zi2), mul(p.y, mul(zi2, zi)), false};
}

}  // namespace

bool on_curve(Point p) {
  if (p.inf) return true;
  if (p.x >= kP || p.y >= kP) return false;
  const std::uint64_t rhs = add(mul(mul(p.x, p.x), p.x), p.x);
  return mul(p.y, p.y) == rhs;
}

Point point_neg(Point p) {
  if (p.inf) return p;
  return Point{p.x, neg(p.y), false};
}

Point point_dbl(Point p) {
  if (p.inf || p.y == 0) return Point{};
  const std::uint64_t lam =
      mul(add(mul(3, mul(p.x, p.x)), 1), inv(add(p.y, p.y)));
  const std::uint64_t x3 = sub(mul(lam, lam), add(p.x, p.x));
  return Point{x3, sub(mul(lam, sub(p.x, x3)), p.y), false};
}

Point point_add(Point p, Point q) {
  if (p.inf) return q;
  if (q.inf) return p;
  if (p.x == q.x) {
    if (add(p.y, q.y) == 0) return Point{};  // q == -p
    return point_dbl(p);
  }
  const std::uint64_t lam = mul(sub(q.y, p.y), inv(sub(q.x, p.x)));
  const std::uint64_t x3 = sub(sub(mul(lam, lam), p.x), q.x);
  return Point{x3, sub(mul(lam, sub(p.x, x3)), p.y), false};
}

Point scalar_mul(std::uint64_t k, Point p) {
  if (p.inf) return p;
  Jac r0;  // infinity
  Jac r1{p.x, p.y, 1};
  // Montgomery ladder over all 64 bit positions: per bit one add, one
  // double, two conditional swaps — the trace never depends on k.
  for (int i = 63; i >= 0; --i) {
    const std::uint64_t mask = 0 - ((k >> i) & 1);
    ct_swap(mask, r0, r1);
    r1 = jac_add(r0, r1);
    r0 = jac_dbl(r0);
    ct_swap(mask, r0, r1);
  }
  return jac_to_affine(r0);
}

bool in_subgroup(Point p) {
  if (p.inf) return true;
  if (!on_curve(p)) return false;
  return scalar_mul(kQ, p).inf;
}

std::uint64_t compress(Point p) {
  if (p.inf) return kInfBit;
  MEWC_CHECK_MSG(p.x < kP && p.y < kP, "non-canonical point");
  return p.x | ((p.y & 1) << 61);
}

bool decompress(std::uint64_t enc, Point* out) {
  if ((enc >> 63) != 0) return false;  // reserved bit
  if (enc & kInfBit) {
    if (enc != kInfBit) return false;  // canonical infinity has no payload
    *out = Point{};
    return true;
  }
  const std::uint64_t x = enc & (kSignBit - 1);
  const std::uint64_t parity = (enc >> 61) & 1;
  if (x >= kP) return false;
  const std::uint64_t rhs = add(mul(mul(x, x), x), x);
  const std::uint64_t y0 = sqrt(rhs);
  if (mul(y0, y0) != rhs) return false;  // x is not on the curve
  std::uint64_t y = y0;
  if ((y & 1) != parity) y = neg(y);
  if ((y & 1) != parity) return false;  // y == 0 with parity bit set
  *out = Point{x, y, false};
  return true;
}

Point hash_to_point(std::uint64_t h) {
  std::uint64_t x = reduce(h);
  for (;;) {
    const std::uint64_t rhs = add(mul(mul(x, x), x), x);
    const std::uint64_t y = sqrt(rhs);
    if (mul(y, y) == rhs) {
      // Clear the cofactor so the result lands in the order-q subgroup.
      const Point p4 = point_dbl(point_dbl(Point{x, y, false}));
      if (!p4.inf) return p4;
    }
    x = add(x, 1);
  }
}

namespace {

/// Non-adjacent form of kQ, MSB first: q = 2^59 - 2757, so the signed-digit
/// representation has Hamming weight 7 versus ~52 for plain binary — the
/// Miller loop runs almost addition-free.
struct QNaf {
  signed char digit[64] = {};
  int len = 0;
};

[[nodiscard]] QNaf q_naf() {
  QNaf out;
  signed char rev[64];
  int n = 0;
  std::uint64_t k = kQ;
  while (k != 0) {
    if (k & 1) {
      const signed char d = static_cast<signed char>(2 - (k & 3));
      rev[n++] = d;
      k -= static_cast<std::uint64_t>(d);  // d == -1 adds 1
    } else {
      rev[n++] = 0;
    }
    k >>= 1;
  }
  out.len = n;
  for (int i = 0; i < n; ++i) out.digit[i] = rev[n - 1 - i];
  return out;
}

}  // namespace

Fp2 pairing(Point p, Point q) {
  if (p.inf || q.inf) return fp2_one();
  // Miller loop for f_{q,P} evaluated at phi(Q) = (-xQ, i*yQ), with three
  // structural savings compounding:
  //  1. Denominator elimination: vertical lines evaluate at phi(Q) to
  //     GF(p) values, and every GF(p) value is killed by the (p - 1) factor
  //     of the final exponentiation — verticals are skipped outright.
  //  2. The same argument makes line values scale-invariant under any
  //     nonzero GF(p) factor, so the accumulator point T stays in Jacobian
  //     coordinates and lines are evaluated cleared of denominators: the
  //     whole loop runs without a single field inversion.
  //  3. The loop walks the NAF of q (weight 7), not its binary expansion.
  // A chord/tangent line's imaginary part is yQ (times a nonzero scale),
  // nonzero for affine Q, so line values are never zero mid-loop.
  static const QNaf kNaf = q_naf();
  const std::uint64_t xq = q.x;
  const std::uint64_t yq = q.y;
  Fp2 f = fp2_one();
  // T = (X, Y, Z) Jacobian, x = X/Z^2, y = Y/Z^3; Z == 0 is infinity.
  std::uint64_t tx = p.x;
  std::uint64_t ty = p.y;
  std::uint64_t tz = 1;

  const auto dbl_step = [&] {
    // Tangent at T scaled by 2*Y*Z^3:
    //   (3X^2 + Z^4)(xQ*Z^2 + X) - 2Y^2  +  2*Y*Z^3*yQ * i
    const std::uint64_t z2 = mul(tz, tz);
    const std::uint64_t z3 = mul(tz, z2);
    const std::uint64_t z4 = mul(z2, z2);
    const std::uint64_t m = add(mul(3, mul(tx, tx)), z4);
    const std::uint64_t y2 = mul(ty, ty);
    const std::uint64_t yz3 = mul(ty, z3);
    const Fp2 line{sub(mul(m, add(mul(xq, z2), tx)), add(y2, y2)),
                   mul(add(yz3, yz3), yq)};
    f = fp2_mul(f, line);
    // dbl-2007-bl, as in jac_dbl.
    const std::uint64_t xx = mul(tx, tx);
    const std::uint64_t yyyy = mul(y2, y2);
    const std::uint64_t xyy = add(tx, y2);
    std::uint64_t s = sub(sub(mul(xyy, xyy), xx), yyyy);
    s = add(s, s);
    const std::uint64_t mm = add(add(add(xx, xx), xx), mul(z2, z2));
    const std::uint64_t x3 = sub(mul(mm, mm), add(s, s));
    std::uint64_t y8 = add(yyyy, yyyy);
    y8 = add(y8, y8);
    y8 = add(y8, y8);
    const std::uint64_t y3 = sub(mul(mm, sub(s, x3)), y8);
    const std::uint64_t yz = add(ty, tz);
    const std::uint64_t z3n = sub(sub(mul(yz, yz), y2), z2);
    tx = x3;
    ty = y3;
    tz = z3n;
  };

  for (int i = 1; i < kNaf.len; ++i) {
    f = fp2_sq(f);
    if (tz != 0) {
      if (ty == 0) {
        tz = 0;  // vertical tangent: GF(p)-valued line, eliminated
      } else {
        dbl_step();
      }
    }
    const signed char d = kNaf.digit[i];
    if (d != 0) {
      const std::uint64_t px = p.x;
      const std::uint64_t py = d == 1 ? p.y : neg(p.y);
      if (tz == 0) {
        tx = px;
        ty = py;
        tz = 1;
        continue;
      }
      const std::uint64_t z2 = mul(tz, tz);
      const std::uint64_t z3 = mul(tz, z2);
      const std::uint64_t u = sub(mul(px, z2), tx);  // H (mixed add)
      const std::uint64_t s = sub(mul(py, z3), ty);  // r
      if (u == 0 && s == 0) {
        // T == +-P: the chord degenerates to the tangent; T + P == 2T.
        dbl_step();
      } else if (u == 0) {
        tz = 0;  // T == -(+-P): vertical chord, eliminated
      } else {
        // Chord through T and (px, py) scaled by u*Z:
        //   s*(xQ + px) - py*u*Z  +  u*Z*yQ * i
        const std::uint64_t uz = mul(u, tz);
        f = fp2_mul(f, Fp2{sub(mul(s, add(xq, px)), mul(py, uz)),
                           mul(uz, yq)});
        // madd-2007-bl mixed addition.
        const std::uint64_t h2 = mul(u, u);
        const std::uint64_t h3 = mul(u, h2);
        const std::uint64_t v = mul(tx, h2);
        const std::uint64_t x3 = sub(sub(mul(s, s), h3), add(v, v));
        const std::uint64_t y3 = sub(mul(s, sub(v, x3)), mul(ty, h3));
        tx = x3;
        ty = y3;
        tz = mul(tz, u);
      }
    }
  }
  // Final exponentiation by (p^2 - 1)/q = 4(p - 1): f^(p-1) is
  // conj(f) * f^-1 (Frobenius is conjugation), then square twice.
  const Fp2 g = fp2_mul(fp2_conj(f), fp2_inv(f));
  return fp2_sq(fp2_sq(g));
}

}  // namespace mewc::rc
