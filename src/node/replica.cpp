#include "node/replica.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "ba/adversaries/adversaries.hpp"
#include "common/check.hpp"

namespace mewc::node {

namespace {

smr::Ledger::Config ledger_config(const ReplicaConfig& config) {
  smr::Ledger::Config c;
  c.n = config.n;
  c.t = config.t;
  c.backend = config.backend;
  c.seed = config.seed;
  c.checkpoint_every = config.checkpoint_every;
  c.base_instance = config.base_instance;
  // The event kind is informational here — the replica never uses the
  // ledger's built-in simulated runners, only its record keeping.
  c.executor = ExecutorKind::kEvent;
  c.durability = config.durability;
  return c;
}

}  // namespace

Replica::Replica(const ReplicaConfig& config)
    : config_(config),
      family_(config.n, config.t, config.backend, config.seed),
      ledger_([&] {
        smr::Ledger::Config c = ledger_config(config);
        // Checkpoints run across the cluster, through the same event path
        // as the slots; the spec the ledger hands over is the one the
        // simulation would use (odd instance-nonce lane).
        c.checkpoint_runner = [this](const harness::RunSpec& spec,
                                     const harness::RunInputs& inputs) {
          ++stats_.checkpoint_runs;
          return run_distributed("strong-ba", spec, inputs);
        };
        return c;
      }()) {
  MEWC_CHECK_MSG(config_.transport != nullptr && config_.sync != nullptr,
                 "a replica needs a transport and a round-closure policy");
  MEWC_CHECK_MSG(config_.id < config_.n, "replica id out of range");
}

void Replica::install(smr::RestoredState state, smr::KvState kv) {
  ledger_.install(std::move(state));
  kv_ = std::move(kv);
  ledger_.complete_pending_checkpoint();
}

const smr::SlotRecord& Replica::run_slot(Value proposal) {
  const std::uint64_t slot = ledger_.slots().size();
  const ProcessId proposer = ledger_.proposer_of(slot);

  harness::RunSpec spec = ledger_.prepare_spec(slot);
  harness::RunInputs inputs;
  inputs.values = std::vector<WireValue>(config_.n, WireValue::plain(proposal));
  inputs.sender = proposer;

  const harness::RunReport report = run_distributed("bb", spec, inputs);
  // commit() runs the checkpoint cadence inline, which re-enters
  // run_distributed through the checkpoint_runner hook on the odd
  // instance lane — strictly after this slot's instance, strictly before
  // the next one, so instance nonces stay monotonic on the wire.
  const smr::SlotRecord& rec = ledger_.commit(slot, report);

  ++stats_.slots_run;
  stats_.skipped += rec.skipped ? 1 : 0;
  stats_.fallbacks += rec.fallback ? 1 : 0;
  if (!rec.skipped) {
    ++stats_.committed;
    kv_.apply(smr::Command::unpack(rec.value));
  }
  return rec;
}

harness::RunReport Replica::run_distributed(std::string_view protocol,
                                            const harness::RunSpec& spec,
                                            const harness::RunInputs& inputs) {
  // Mirror harness::run_protocol's cached-family discipline: per-instance
  // signature counters start from zero, and bundles are re-issued for all
  // n processes (key derivation is deterministic, so every node holds the
  // same trusted setup).
  family_.pki().reset_signature_counters();
  std::vector<KeyBundle> bundles;
  bundles.reserve(config_.n);
  for (ProcessId p = 0; p < config_.n; ++p) {
    bundles.push_back(family_.issue_bundle(p));
  }

  ProtocolContext ctx;
  ctx.id = config_.id;
  ctx.n = config_.n;
  ctx.t = config_.t;
  ctx.instance = spec.instance;
  ctx.crypto = &family_;
  ctx.keys = &bundles[config_.id];

  // Only this node's process exists locally; peer slots stay null and
  // their traffic arrives through the transport.
  std::vector<std::unique_ptr<IProcess>> processes(config_.n);
  Round rounds = 0;
  if (protocol == "bb") {
    rounds = bb::BbProcess::total_rounds(config_.n, config_.t);
    processes[config_.id] = std::make_unique<bb::BbProcess>(
        ctx, inputs.sender, inputs.values[inputs.sender].value);
  } else if (protocol == "strong-ba") {
    rounds = sba::StrongBaProcess::total_rounds(config_.t);
    processes[config_.id] = std::make_unique<sba::StrongBaProcess>(
        ctx, inputs.values[config_.id].value);
  } else {
    MEWC_CHECK_MSG(false, "replica runs only bb and strong-ba instances");
  }

  adv::NullAdversary null_adv;
  EventExecutorConfig ec;
  ec.instance = spec.instance;
  ec.local = {config_.id};
  ec.transport = config_.transport;
  ec.sync = config_.sync;
  ec.poll_ms = config_.poll_ms;
  EventExecutor exec(family_, std::move(bundles), std::move(processes),
                     null_adv, ExecutorHooks{}, ec);
  exec.run(rounds);

  stats_.late_drops += exec.stats().late_drops;
  stats_.foreign_drops += exec.stats().foreign_drops;
  stats_.future_buffered += exec.stats().future_buffered;

  bool decided = false;
  Value decision = kBottom;
  bool fallback = false;
  if (protocol == "bb") {
    const auto& p = static_cast<const bb::BbProcess&>(
        static_cast<const EventExecutor&>(exec).process(config_.id));
    decided = p.decided();
    decision = p.decision();
    fallback = p.stats().fallback_participant;
  } else {
    const auto& p = static_cast<const sba::StrongBaProcess&>(
        static_cast<const EventExecutor&>(exec).process(config_.id));
    decided = p.decided();
    decision = p.decision();
    fallback = p.stats().fallback_participant;
  }

  // Local-view report: this node's outcome replicated across every slot,
  // so RunReport::decision()/agreement() answer "what did *I* commit".
  // Cross-node agreement is audited by digest comparison, not here.
  harness::RunReport report;
  report.protocol = std::string(protocol);
  report.sender = inputs.sender;
  report.rounds = rounds;
  report.meter = exec.meter();
  report.signatures_issued = family_.pki().signatures_issued();
  report.any_fallback = fallback;
  report.decided.assign(config_.n, decided);
  report.decisions.assign(
      config_.n, decided ? WireValue::plain(decision) : WireValue{});
  return report;
}

}  // namespace mewc::node
