#include "node/client.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <span>

#include "wire/frame.hpp"

namespace mewc::node {

namespace {

constexpr std::uint8_t kFrameOp = 0x10;
constexpr std::uint8_t kFrameAck = 0x11;
/// Pending-op bound: an open-loop load generator may outrun the slot rate;
/// beyond this the oldest backlog would never commit in time anyway.
constexpr std::size_t kMaxPendingOps = 1u << 16;

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

ClientServer::~ClientServer() { shutdown(); }

bool ClientServer::start(std::string* error) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "client socket: " + std::string(strerror(errno));
    return false;
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port_);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) *error = "client bind: " + std::string(strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);
  if (listen(listen_fd_, 64) != 0 || !set_nonblocking(listen_fd_) ||
      pipe(wake_fds_) != 0 || !set_nonblocking(wake_fds_[0])) {
    if (error != nullptr) *error = "client listen: " + std::string(strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  io_ = std::thread([this] { io_loop(); });
  return true;
}

void ClientServer::shutdown() {
  if (!io_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  wake();
  io_.join();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [token, conn] : conns_) {
    if (conn.fd >= 0) close(conn.fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_fds_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
}

void ClientServer::wake() {
  if (wake_fds_[1] >= 0) {
    const char b = 1;
    [[maybe_unused]] const ssize_t n = write(wake_fds_[1], &b, 1);
  }
}

bool ClientServer::pop(ClientOp& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ops_.empty()) return false;
  out = ops_.front();
  ops_.pop_front();
  return true;
}

void ClientServer::ack(const ClientOp& op, std::uint64_t slot,
                       std::uint64_t kv_digest, std::uint8_t status) {
  wire::Writer w;
  w.u8(kFrameAck);
  w.u64(op.op_id);
  w.u64(slot);
  w.u64(kv_digest);
  w.u8(status);
  const std::vector<std::uint8_t> body = w.take();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = conns_.find(op.conn);
    if (it == conns_.end()) return;  // client went away; drop the ack
    wire::append_frame(it->second.outbuf, body);
    ++stats_.acks_sent;
  }
  wake();
}

ClientServerStats ClientServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ClientServer::handle_readable(std::uint64_t token, Conn& conn) {
  (void)token;
  std::uint8_t chunk[16384];
  for (;;) {
    const ssize_t n = read(conn.fd, chunk, sizeof(chunk));
    if (n > 0) {
      conn.inbuf.insert(conn.inbuf.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close(conn.fd);
    conn.fd = -1;
    return;
  }

  std::size_t offset = 0;
  for (;;) {
    const auto frame = wire::read_frame(conn.inbuf, offset);
    if (!frame) break;
    // Caller holds mu_ (io_loop's per-pass lock), so the queues and stats
    // are safe to touch directly here.
    wire::Reader r(frame->body);
    const std::uint8_t kind = r.u8();
    const std::uint64_t op_id = r.u64();
    const std::uint64_t word = r.u64();
    if (kind != kFrameOp || !r.done()) {
      ++stats_.decode_drops;
    } else if (ops_.size() >= kMaxPendingOps) {
      ++stats_.overflow_drops;
    } else {
      ops_.push_back(ClientOp{token, op_id, word});
      ++stats_.ops_received;
    }
    offset += frame->frame_size;
  }
  if (offset > 0) {
    conn.inbuf.erase(conn.inbuf.begin(),
                     conn.inbuf.begin() + static_cast<std::ptrdiff_t>(offset));
  }
}

void ClientServer::io_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> tokens;
    fds.push_back({wake_fds_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [token, conn] : conns_) {
        short events = POLLIN;
        if (conn.outbuf.size() > conn.out_off) events |= POLLOUT;
        fds.push_back({conn.fd, events, 0});
        tokens.push_back(token);
      }
    }

    poll(fds.data(), fds.size(), 50);

    if ((fds[0].revents & POLLIN) != 0) {
      std::uint8_t sink[256];
      while (read(wake_fds_[0], sink, sizeof(sink)) > 0) {
      }
    }
    if ((fds[1].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        set_nonblocking(fd);
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        std::lock_guard<std::mutex> lock(mu_);
        Conn conn;
        conn.fd = fd;
        conns_.emplace(next_token_++, std::move(conn));
        ++stats_.accepted;
      }
    }

    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const auto it = conns_.find(tokens[i]);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      if (conn.fd != fds[i + 2].fd) continue;  // token reused; skip this pass
      if ((fds[i + 2].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        handle_readable(tokens[i], conn);
      }
      while (conn.fd >= 0 && conn.outbuf.size() > conn.out_off) {
        const ssize_t n =
            write(conn.fd, conn.outbuf.data() + conn.out_off,
                  conn.outbuf.size() - conn.out_off);
        if (n > 0) {
          conn.out_off += static_cast<std::size_t>(n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        close(conn.fd);
        conn.fd = -1;
      }
      if (conn.out_off > 0 && conn.out_off == conn.outbuf.size()) {
        conn.outbuf.clear();
        conn.out_off = 0;
      }
      if (conn.fd < 0) conns_.erase(it);
    }
  }
}

}  // namespace mewc::node
