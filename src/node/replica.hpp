// One deployed consensus replica: the glue that runs the SMR ledger's
// BB-per-slot / strong-BA-per-checkpoint schedule over a real
// net::Transport instead of inside one simulated process space.
//
// The division of labour (DESIGN.md §14):
//
//  * smr::Ledger still owns slot ordering, the rolling digest, the
//    checkpoint cadence, and the durability hook — its byte streams are
//    shaped identically to the simulated deployment.
//  * Replica owns one EventExecutor per instance, hosting exactly this
//    node's process (`local = {id}`); every peer's process slot is null
//    and their traffic arrives through the transport. The trusted setup
//    (a ThresholdFamily derived from the shared seed) is instantiated
//    once per replica and reused across instances the same way a
//    harness::SetupCache reuses it, so per-instance signature streams
//    match the simulation bit for bit.
//  * The checkpoint lane is routed back through the ledger's
//    checkpoint_runner hook, so a cadence-triggered strong BA runs across
//    the cluster (odd instance-nonce lane) exactly where the simulated
//    ledger would have run it in-process.
//
// A replica only observes its own protocol endpoint, so the RunReport it
// synthesizes replicates the local decision across all process slots:
// RunReport::decision() is "what this node decided", and cluster-level
// agreement is checked where it belongs — by comparing ledger/kv digests
// across nodes (tools/node_smoke.sh, EXPERIMENTS.md E-NODE).
#pragma once

#include <cstdint>
#include <string_view>

#include "net/transport.hpp"
#include "sim/event_executor.hpp"
#include "smr/kv_store.hpp"
#include "smr/ledger.hpp"

namespace mewc::node {

struct ReplicaConfig {
  ProcessId id = 0;
  std::uint32_t n = 4;
  std::uint32_t t = 1;
  ThresholdBackend backend = ThresholdBackend::kSim;
  /// Shared cluster seed: every node derives the same trusted setup from
  /// it (the dealer of the threshold scheme, amortized out of band).
  std::uint64_t seed = 0x5e7u;
  std::uint32_t checkpoint_every = 0;
  std::uint64_t base_instance = 1000;
  /// Borrowed; must outlive the replica. The transport demuxes instances,
  /// the sync decides round closure (watermarks + timeout in deployment).
  net::Transport* transport = nullptr;
  net::IRoundSync* sync = nullptr;
  /// Per-poll receive timeout forwarded to every EventExecutor.
  int poll_ms = 1;
  /// Optional durability sink, forwarded to the ledger (not owned).
  smr::DurabilityHook* durability = nullptr;
};

struct ReplicaStats {
  std::uint64_t slots_run = 0;
  std::uint64_t committed = 0;  // non-skipped slots
  std::uint64_t skipped = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t checkpoint_runs = 0;
  /// Sum of the per-instance EventExecutor drop/buffer counters.
  std::uint64_t late_drops = 0;
  std::uint64_t foreign_drops = 0;
  std::uint64_t future_buffered = 0;
};

class Replica {
 public:
  explicit Replica(const ReplicaConfig& config);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Installs recovered ledger + kv state before any slot runs. If the
  /// durable state ends with a checkpoint due (crash between a slot's WAL
  /// record and its checkpoint), the checkpoint BA is completed here —
  /// across the cluster, so this only converges when the whole cluster
  /// restarts together, which is the deployment's recovery model.
  void install(smr::RestoredState state, smr::KvState kv);

  /// Runs the next slot's BB instance across the cluster. `proposal` is
  /// this node's candidate; it only matters when this node is the slot's
  /// rotation proposer. Applies the committed command to the kv state and
  /// fires the checkpoint lane on cadence. Blocking: returns when the
  /// instance's full round schedule has run.
  const smr::SlotRecord& run_slot(Value proposal);

  [[nodiscard]] const smr::Ledger& ledger() const { return ledger_; }
  [[nodiscard]] const smr::KvState& kv() const { return kv_; }
  [[nodiscard]] const ReplicaStats& stats() const { return stats_; }
  [[nodiscard]] ProcessId id() const { return config_.id; }
  [[nodiscard]] std::uint64_t next_slot() const {
    return ledger_.slots().size();
  }
  /// True when this node proposes the next slot.
  [[nodiscard]] bool proposes_next() const {
    return ledger_.next_proposer() == config_.id;
  }

 private:
  /// Runs one protocol instance ("bb" or "strong-ba") across the cluster,
  /// hosting only this node's process, and synthesizes the local-view
  /// RunReport the ledger commits.
  harness::RunReport run_distributed(std::string_view protocol,
                                     const harness::RunSpec& spec,
                                     const harness::RunInputs& inputs);

  ReplicaConfig config_;
  ThresholdFamily family_;
  smr::Ledger ledger_;
  smr::KvState kv_;
  ReplicaStats stats_;
};

}  // namespace mewc::node
