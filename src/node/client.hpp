// Client lane of a deployed replica: a small framed-TCP server that
// accepts kv commands from load generators and acks them once their slot
// commits.
//
// Wire format (wire::frame checksummed container, one frame per message):
//
//   op  (client -> node): u8 kind=0x10 | u64 op_id | u64 command-word
//   ack (node -> client): u8 kind=0x11 | u64 op_id | u64 slot
//                         | u64 kv_digest | u8 status
//
// The command word is a packed smr::Command (smr/kv_store.hpp) — one word,
// matching the paper's one-word-per-slot consensus payload. status 0 means
// the op's command committed in `slot`; status 1 means the slot resolved
// to something else (skipped, or a different value won), so the client
// should retry. kv_digest is the node's kv state digest after applying the
// slot — load generators cross-check it across nodes for convergence.
//
// Threading: one IO thread owns the sockets (accept/read/write, poll-based,
// mirrors net::TcpTransport's loop). pop() and ack() are called from the
// replica's slot loop; both only touch mutex-guarded queues. Acks for
// connections that have since closed are dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mewc::node {

struct ClientOp {
  std::uint64_t conn = 0;  // server-internal connection token
  std::uint64_t op_id = 0;
  std::uint64_t word = 0;  // packed smr::Command
};

struct ClientServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t ops_received = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t overflow_drops = 0;  // ops shed because the queue was full
  std::uint64_t decode_drops = 0;    // malformed frames
};

class ClientServer {
 public:
  /// `port` 0 binds an ephemeral port (see listen_port()).
  explicit ClientServer(std::uint16_t port) : port_(port) {}
  ~ClientServer();

  ClientServer(const ClientServer&) = delete;
  ClientServer& operator=(const ClientServer&) = delete;

  /// Binds, listens and starts the IO thread. False (with *error set) when
  /// the socket layer refuses.
  bool start(std::string* error);
  void shutdown();

  [[nodiscard]] std::uint16_t listen_port() const { return bound_port_; }

  /// Pops the oldest pending op (non-blocking). The replica's slot loop
  /// calls this when it is the next slot's proposer.
  bool pop(ClientOp& out);

  /// Queues the ack for `op` onto its originating connection.
  void ack(const ClientOp& op, std::uint64_t slot, std::uint64_t kv_digest,
           std::uint8_t status);

  [[nodiscard]] ClientServerStats stats() const;

 private:
  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> inbuf;
    std::vector<std::uint8_t> outbuf;  // guarded by mu_
    std::size_t out_off = 0;
  };

  void io_loop();
  void wake();
  void handle_readable(std::uint64_t token, Conn& conn);

  std::uint16_t port_ = 0;
  std::uint16_t bound_port_ = 0;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  std::thread io_;
  std::atomic<bool> stop_{false};

  mutable std::mutex mu_;
  std::map<std::uint64_t, Conn> conns_;  // token -> connection
  std::uint64_t next_token_ = 1;
  std::deque<ClientOp> ops_;
  ClientServerStats stats_;
};

}  // namespace mewc::node
