// Small statistics helpers for the experiment harnesses: summary stats and
// least-squares fits used to check complexity *shapes* (e.g. the log-log
// slope of words vs n should be ~1 for the adaptive protocols and ~2 for
// the quadratic baseline).
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace mewc::stats {

struct Summary {
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;
};

[[nodiscard]] inline Summary summarize(std::span<const double> xs) {
  MEWC_CHECK(!xs.empty());
  Summary s;
  s.min = xs.front();
  s.max = xs.front();
  double sum = 0;
  for (double x : xs) {
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    sum += x;
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(xs.size()));
  return s;
}

struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r2 = 0;  // coefficient of determination
};

/// Ordinary least squares y = slope * x + intercept.
[[nodiscard]] inline LinearFit fit_linear(std::span<const double> xs,
                                          std::span<const double> ys) {
  MEWC_CHECK(xs.size() == ys.size() && xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  LinearFit f;
  const double denom = n * sxx - sx * sx;
  MEWC_CHECK_MSG(denom != 0, "degenerate x values");
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;

  const double ymean = sy / n;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = f.slope * xs[i] + f.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - ymean) * (ys[i] - ymean);
  }
  f.r2 = ss_tot == 0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return f;
}

/// Fits y = c * x^p by least squares in log-log space and returns the
/// exponent p (the growth order) with its fit quality. All values must be
/// positive.
[[nodiscard]] inline LinearFit fit_power_law(std::span<const double> xs,
                                             std::span<const double> ys) {
  MEWC_CHECK(xs.size() == ys.size() && xs.size() >= 2);
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    MEWC_CHECK_MSG(xs[i] > 0 && ys[i] > 0, "power-law fit needs positives");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return fit_linear(lx, ly);  // slope == exponent
}

}  // namespace mewc::stats
