// 64-bit mixing and incremental hashing used for message digests.
//
// This is not a cryptographic hash; within the simulation, unforgeability is
// enforced by key custody (see crypto/keys.hpp), so the digest only needs
// good distribution and determinism across runs.
#pragma once

#include <cstdint>
#include <string_view>

namespace mewc {

/// splitmix64 finalizer; good avalanche, deterministic everywhere.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-sensitive combination of two words.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t v) {
  return mix64(seed ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// Incremental hasher for composing digests out of typed fields.
class Hasher {
 public:
  constexpr Hasher() = default;
  explicit constexpr Hasher(std::uint64_t seed) : state_(mix64(seed)) {}

  constexpr Hasher& feed(std::uint64_t v) {
    state_ = hash_combine(state_, v);
    return *this;
  }

  Hasher& feed(std::string_view s) {
    for (char c : s) state_ = hash_combine(state_, static_cast<unsigned char>(c));
    state_ = hash_combine(state_, s.size());
    return *this;
  }

  [[nodiscard]] constexpr std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = 0x6d657763ULL;  // "mewc"
};

}  // namespace mewc
