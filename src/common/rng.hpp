// Deterministic RNG (xoshiro256**) for workload generation and adversary
// scheduling. Every randomized test and bench takes an explicit seed so runs
// are reproducible bit-for-bit.
#pragma once

#include <cstdint>

#include "common/hash.hpp"

namespace mewc {

class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) {
    // Seed the four lanes through splitmix64, as recommended by the
    // xoshiro authors.
    std::uint64_t x = seed;
    for (auto& lane : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      lane = mix64(x);
    }
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be positive.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Bernoulli trial with probability num/den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace mewc
