// Invariant checking. MEWC_CHECK aborts with a message on violation; it is
// active in all build types because protocol-invariant violations must never
// be silently ignored in a correctness-focused reproduction.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mewc::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "MEWC_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace mewc::detail

#define MEWC_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) ::mewc::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define MEWC_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr))                                                        \
      ::mewc::detail::check_failed(#expr, __FILE__, __LINE__, (msg));   \
  } while (false)
