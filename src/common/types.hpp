// Core identifier and value types shared by every module.
//
// The paper's model (Section 2): a static set of n = 2t + 1 processes,
// values drawn from a finite domain, and a synchronous round structure.
#pragma once

#include <cstdint>
#include <limits>

namespace mewc {

/// Index of a process in the static set Pi = {0, ..., n-1}.
using ProcessId = std::uint32_t;

/// Synchronous round number. Round 0 never carries traffic; protocols start
/// sending in round 1.
using Round = std::uint32_t;

/// Sentinel for "no process" (e.g. a message with no addressee yet).
inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();

/// A protocol value from a finite domain, plus the distinguished "bottom"
/// (the paper's special non-value) and the reserved "idk" marker value used
/// by the Byzantine Broadcast reduction (Section 5: an idk quorum
/// certificate acts as a decidable value meaning "the sender never spoke").
struct Value {
  std::uint64_t raw = kBottomRaw;

  static constexpr std::uint64_t kBottomRaw =
      std::numeric_limits<std::uint64_t>::max();
  static constexpr std::uint64_t kIdkRaw = kBottomRaw - 1;

  constexpr Value() = default;
  explicit constexpr Value(std::uint64_t r) : raw(r) {}

  [[nodiscard]] constexpr bool is_bottom() const { return raw == kBottomRaw; }
  [[nodiscard]] constexpr bool is_idk() const { return raw == kIdkRaw; }

  friend constexpr bool operator==(Value a, Value b) { return a.raw == b.raw; }
  friend constexpr bool operator!=(Value a, Value b) { return a.raw != b.raw; }
  friend constexpr bool operator<(Value a, Value b) { return a.raw < b.raw; }
};

/// The paper's bottom value.
inline constexpr Value kBottom{Value::kBottomRaw};
/// Reserved value carried by idk quorum certificates (BB reduction).
inline constexpr Value kIdkValue{Value::kIdkRaw};

/// Number of processes for a given fault threshold, n = 2t + 1.
[[nodiscard]] constexpr std::uint32_t n_for_t(std::uint32_t t) {
  return 2 * t + 1;
}

/// Fault threshold for a given n (requires odd n = 2t + 1).
[[nodiscard]] constexpr std::uint32_t t_for_n(std::uint32_t n) {
  return (n - 1) / 2;
}

/// The paper's key quorum size ceil((n + t + 1) / 2) (Section 6): two
/// quorums of this size intersect in at least t + 1 processes, hence in at
/// least one correct process, even at resilience n = 2t + 1.
[[nodiscard]] constexpr std::uint32_t commit_quorum(std::uint32_t n,
                                                    std::uint32_t t) {
  return (n + t + 1 + 1) / 2;  // integer ceil((n+t+1)/2)
}

/// True when the run is in the adaptive regime of Section 6: enough correct
/// processes remain for a commit quorum to be formed from correct votes
/// alone, i.e. n - f >= ceil((n+t+1)/2). The paper states the slightly
/// conservative bound f < (n-t-1)/2; this is the exact condition its proofs
/// rely on.
[[nodiscard]] constexpr bool adaptive_regime(std::uint32_t n, std::uint32_t t,
                                             std::uint32_t f) {
  return n - f >= commit_quorum(n, t);
}

}  // namespace mewc
